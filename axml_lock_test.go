//go:build unix

package axml

import (
	"errors"
	"path/filepath"
	"testing"
)

// seedStoreFile writes a small document to a fresh store file and closes it.
func seedStoreFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.db")
	st, err := OpenFile(path, Config{Mode: RangePartial})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadXMLString(st, `<doc><a/><b/></doc>`); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenFileExcludesSecondWriter(t *testing.T) {
	path := seedStoreFile(t)
	st, err := ReopenFile(path, Config{Mode: RangePartial})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// While one writable store is open, a second writable open of the same
	// file must fail fast with the typed error.
	if _, err := ReopenFile(path, Config{Mode: RangePartial}); !errors.Is(err, ErrStoreLocked) {
		t.Fatalf("second writable open: got %v, want ErrStoreLocked", err)
	}
	// And so must a read-only open (a writer is exclusive).
	if _, err := ReopenFileReadOnly(path, Config{Mode: RangePartial}); !errors.Is(err, ErrStoreLocked) {
		t.Fatalf("read-only open under writer: got %v, want ErrStoreLocked", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Close released the lock.
	st2, err := ReopenFile(path, Config{Mode: RangePartial})
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	st2.Close()
}

func TestReopenFileReadOnly(t *testing.T) {
	path := seedStoreFile(t)
	r1, err := ReopenFileReadOnly(path, Config{Mode: RangePartial})
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	r2, err := ReopenFileReadOnly(path, Config{Mode: RangePartial})
	if err != nil {
		t.Fatalf("two read-only opens must coexist: %v", err)
	}
	defer r2.Close()
	// A writer is excluded while readers hold the shared lock.
	if _, err := ReopenFile(path, Config{Mode: RangePartial}); !errors.Is(err, ErrStoreLocked) {
		t.Fatalf("writer under readers: got %v, want ErrStoreLocked", err)
	}
	// Reads work on both handles.
	for _, st := range []*Store{r1, r2} {
		ids, err := Query(st, `//a`)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 1 {
			t.Fatalf("query on read-only store: got %d ids, want 1", len(ids))
		}
	}
	// Mutations are refused with ErrReadOnly.
	roots, err := Query(r1, `/doc`)
	if err != nil {
		t.Fatal(err)
	}
	frag, err := ParseFragment(`<c/>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.InsertIntoLast(roots[0], frag); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("insert on read-only store: got %v, want ErrReadOnly", err)
	}
	if err := r1.Close(); err != nil {
		t.Fatalf("close read-only store: %v", err)
	}
	if err := r2.Close(); err != nil {
		t.Fatalf("close read-only store: %v", err)
	}
	// Both readers gone: a writer can open again, and nothing was clobbered.
	st, err := ReopenFile(path, Config{Mode: RangePartial})
	if err != nil {
		t.Fatalf("writable open after readers closed: %v", err)
	}
	defer st.Close()
	if err := st.Verify(); err != nil {
		t.Fatalf("store damaged by read-only opens: %v", err)
	}
}

func TestReadOnlyRejectsFullIndex(t *testing.T) {
	path := seedStoreFile(t)
	if _, err := ReopenFileReadOnly(path, Config{Mode: FullIndex}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("FullIndex read-only open: got %v, want ErrReadOnly", err)
	}
}
