// Race stress: concurrent ScanNode and XPath readers against one writer
// whose inserts keep splitting ranges and bumping range versions. The store
// lock is shared on the read paths, so every lazily-cached location (partial
// index entries, replay checkpoints) is being learned, invalidated and
// re-learned while these readers run; the assertions catch any stale
// location being served — a wrong begin token, a torn subtree, or a
// disappearing live node. Run under -race (scripts/check.sh does).
package axml_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/token"
	"repro/internal/workload"
	"repro/internal/xmltok"
	"repro/internal/xpath"
)

func TestStressReadersVsSplittingWriter(t *testing.T) {
	s, err := core.Open(core.Config{Mode: core.RangePartial, PartialCapacity: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	gen := workload.New(11)
	for done := 0; done < 200; done += 50 {
		var frag []core.Token
		for j := 0; j < 50; j++ {
			frag = append(frag, gen.PurchaseOrder(done+j)...)
		}
		if _, err := s.Append(frag); err != nil {
			t.Fatal(err)
		}
	}
	first, ok, err := s.FirstNodeID()
	if err != nil || !ok {
		t.Fatal("no first node:", err)
	}
	var orders []core.NodeID
	for id, ok := first, true; ok; id, ok, err = s.NextSibling(id) {
		if err != nil {
			t.Fatal(err)
		}
		orders = append(orders, id)
	}
	if len(orders) != 200 {
		t.Fatalf("got %d top-level orders, want 200", len(orders))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var failed atomic.Bool
	fail := func(format string, args ...any) {
		if failed.CompareAndSwap(false, true) {
			t.Errorf(format, args...)
		}
	}

	// Writer: round-robins inserts across every order, splitting the coarse
	// ranges and bumping their versions, then deletes what it inserted so the
	// order nodes themselves stay live the whole time.
	note := xmltok.MustParseFragment(`<note>stress</note>`)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 400; i++ {
			o := orders[i%len(orders)]
			id, err := s.InsertIntoLast(o, note)
			if err != nil {
				fail("insert into %d: %v", o, err)
				return
			}
			if i%2 == 0 {
				if err := s.DeleteNode(id); err != nil {
					fail("delete %d: %v", id, err)
					return
				}
			}
		}
	}()

	// ScanNode readers: a served location is stale if the subtree does not
	// start with the requested order's begin token or does not balance.
	var ctr atomic.Uint64
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				o := orders[ctr.Add(1)%uint64(len(orders))]
				depth, n := 0, 0
				err := s.ScanNode(o, func(it core.Item) bool {
					if n == 0 {
						if it.ID != o {
							fail("scan of %d started at node %d", o, it.ID)
							return false
						}
						if it.Tok.Kind != token.BeginElement || it.Tok.Name != "purchase-order" {
							fail("scan of %d started at %v token %q", o, it.Tok.Kind, it.Tok.Name)
							return false
						}
					}
					n++
					if it.Tok.IsBegin() {
						depth++
					} else if it.Tok.IsEnd() {
						depth--
					}
					return true
				})
				if err != nil {
					fail("scan %d: %v", o, err)
					return
				}
				if depth != 0 {
					fail("torn subtree of %d: depth %d after %d items", o, depth, n)
					return
				}
				if !s.Exists(o) {
					fail("live node %d reported missing", o)
					return
				}
			}
		}()
	}

	// XPath readers: read + build + eval; the query must keep matching no
	// matter how the writer reshapes the ranges underneath.
	q, err := xpath.Parse(`purchase-order/line/item`)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				o := orders[ctr.Add(1)%uint64(len(orders))]
				items, err := s.ReadNode(o)
				if err != nil {
					fail("read %d: %v", o, err)
					return
				}
				d, err := xpath.BuildDoc(items)
				if err != nil {
					fail("build doc for %d: %v", o, err)
					return
				}
				ns, err := q.Eval(d)
				if err != nil || len(ns) == 0 {
					fail("xpath over %d: %d results, err %v", o, len(ns), err)
					return
				}
			}
		}()
	}

	wg.Wait()
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
