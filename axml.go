// Package axml is the public API of the adaptive XML store — a Go
// reproduction of "Adaptive XML Storage or The Importance of Being Lazy"
// (Duda & Kossmann, ETH Zurich).
//
// The store keeps an XML instance as a flat token sequence partitioned into
// Ranges (variable-sized units created by the application's insert pattern),
// indexes ranges coarsely, and learns exact node positions lazily through a
// bounded partial index. See DESIGN.md for the architecture and the package
// documentation of repro/internal/core for the mechanics.
//
// Quick start:
//
//	st, _ := axml.Open(axml.Config{Mode: axml.RangePartial})
//	defer st.Close()
//	root, _ := axml.LoadXMLString(st, `<orders/>`)
//	frag, _ := axml.ParseFragment(`<order id="1"/>`)
//	st.InsertIntoLast(root, frag)
//	ids, _ := axml.Query(st, `//order[@id="1"]`)
//	xml, _ := st.NodeXMLString(ids[0])
package axml

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/pagestore"
	"repro/internal/token"
	"repro/internal/txn"
	"repro/internal/xmltok"
	"repro/internal/xpath"
	"repro/internal/xquery"
)

// Core re-exports: the store and its configuration.
type (
	// Store is an adaptive XML store instance.
	Store = core.Store
	// Config selects the index mode, storage geometry and policies.
	Config = core.Config
	// Stats is a snapshot of store counters.
	Stats = core.Stats
	// NodeID identifies a stored node.
	NodeID = core.NodeID
	// IndexMode selects the indexing configuration.
	IndexMode = core.IndexMode
	// Token is one enriched SAX event of the flat XML representation.
	Token = core.Token
	// Item is a token paired with the id of the node it starts.
	Item = core.Item
	// TxManager coordinates concurrent transactions over one Store with
	// hierarchical locking, deadlock handling and a stuck-transaction
	// watchdog.
	TxManager = txn.Manager
	// Tx is one transaction: strict two-phase locked reads and updates with
	// rollback on Abort.
	Tx = txn.Tx
	// TxOptions tunes lock-wait timeouts, watchdog behavior and RunInTx
	// retry backoff.
	TxOptions = txn.Options
)

// Index modes (the experimental axis of the paper's Table 5).
const (
	// RangeOnly maintains only the coarse range index.
	RangeOnly = core.RangeOnly
	// RangePartial adds the lazy partial index (the paper's proposal).
	RangePartial = core.RangePartial
	// FullIndex eagerly indexes every node (the baseline).
	FullIndex = core.FullIndex
)

// Store errors, re-exported for errors.Is checks.
var (
	ErrNoSuchNode  = core.ErrNoSuchNode
	ErrNotElement  = core.ErrNotElement
	ErrBadFragment = core.ErrBadFragment
	ErrClosed      = core.ErrClosed
	// ErrReadOnly is returned by mutating operations after the store has
	// degraded to read-only because corruption was detected.
	ErrReadOnly = core.ErrReadOnly
	// ErrOverloaded is returned when admission control sheds an operation:
	// every slot is busy and the wait queue is full. The operation had no
	// effect; retrying after backoff is safe.
	ErrOverloaded = core.ErrOverloaded
	// ErrCorruptPage is wrapped by any read that hits a page whose checksum
	// does not match its contents.
	ErrCorruptPage = pagestore.ErrCorruptPage
	// ErrStoreLocked is returned by OpenFile/ReopenFile when another process
	// holds the store file's advisory lock.
	ErrStoreLocked = pagestore.ErrStoreLocked
	// ErrReadOnlyFile is returned by mutations on a store opened with
	// ReopenFileReadOnly.
	ErrReadOnlyFile = pagestore.ErrReadOnlyFile
	// ErrDeadlock is returned to the victim of a lock-wait cycle; RunInTx
	// retries it automatically.
	ErrDeadlock = txn.ErrDeadlock
	// ErrLockTimeout is returned when a lock wait exceeds its context
	// deadline or the manager's default timeout.
	ErrLockTimeout = txn.ErrLockTimeout
	// ErrTxDone is returned by operations on a committed or aborted Tx.
	ErrTxDone = txn.ErrTxDone
	// ErrManagerClosed is returned to lock waiters when the TxManager shuts
	// down under them.
	ErrManagerClosed = txn.ErrManagerClosed
	// ErrStuckAborted is returned by operations on a transaction the
	// watchdog force-aborted for holding locks too long.
	ErrStuckAborted = txn.ErrStuckAborted
)

// NewTxManager wraps a store with a transaction manager using default
// concurrency options.
func NewTxManager(s *Store) *TxManager { return txn.NewManager(s) }

// NewTxManagerOpts wraps a store with a transaction manager using explicit
// lock-timeout, watchdog and retry options.
func NewTxManagerOpts(s *Store, o TxOptions) *TxManager { return txn.NewManagerOpts(s, o) }

// Open creates a fresh store.
func Open(cfg Config) (*Store, error) { return core.Open(cfg) }

// OpenFile creates a store backed by a page file at path. Call Store.Close
// (or Flush) to persist, and ReopenFile to load it again.
func OpenFile(path string, cfg Config) (*Store, error) {
	pager, err := pagestore.OpenFilePager(path, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	cfg.Pager = pager
	s, err := core.Open(cfg)
	if err != nil {
		pager.Close() // release the advisory lock on failure
		return nil, err
	}
	return s, nil
}

// ReopenFile reloads a store previously written with OpenFile. The meta page
// of a store created by OpenFile on a fresh file is page 1. If a crashed
// journaled session (ReopenFileWAL, repair) left committed batches in the
// WAL sidecar, they are replayed into the page file first — opening around
// them would corrupt the store at the next replay.
func ReopenFile(path string, cfg Config) (*Store, error) {
	if err := replayWAL(path, defaultedPageSize(cfg)); err != nil {
		return nil, err
	}
	pager, err := pagestore.OpenFilePager(path, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	s, err := core.Reopen(cfg, pager, 1)
	if err != nil {
		pager.Close() // release the advisory lock on failure
		return nil, err
	}
	return s, nil
}

// ReopenFileReadOnly reloads a store for reading only, under a shared
// advisory lock: any number of read-only opens (across processes) coexist,
// but a writable open excludes them and vice versa. Every mutating store
// operation returns ErrReadOnly. FullIndex mode cannot open read-only.
func ReopenFileReadOnly(path string, cfg Config) (*Store, error) {
	pager, err := pagestore.OpenFilePagerOpts(path, cfg.PageSize, pagestore.FileOpts{ReadOnly: true})
	if err != nil {
		return nil, err
	}
	cfg.ReadOnly = true
	s, err := core.Reopen(cfg, pager, 1)
	if err != nil {
		pager.Close()
		return nil, err
	}
	return s, nil
}

// VerifyFile scrubs the store file at path: first every page checksum, raw,
// without opening the store — so corruption is reported page by page even
// when it would prevent the store from opening at all — then, if the scrub
// is clean, the store is opened and Store.Verify checks record chains and
// cross-structure invariants. With cfg.ReadOnly set, both passes run under
// a shared advisory lock and never write, so a store can be verified while
// other read-only processes have it open.
func VerifyFile(path string, cfg Config) error {
	pager, err := pagestore.OpenFilePagerOpts(path, cfg.PageSize, pagestore.FileOpts{ReadOnly: cfg.ReadOnly})
	if err != nil {
		return err
	}
	pool := pagestore.NewBufferPool(pager, 64)
	if errs := pool.Scrub(); len(errs) > 0 {
		pager.Close()
		return errors.Join(errs...)
	}
	if err := pager.Close(); err != nil {
		return err
	}
	var s *Store
	if cfg.ReadOnly {
		s, err = ReopenFileReadOnly(path, cfg)
	} else {
		s, err = ReopenFile(path, cfg)
	}
	if err != nil {
		return fmt.Errorf("open for verify: %w", err)
	}
	defer s.Close()
	return s.Verify()
}

// LoadXML parses a complete XML document from r and appends it to the
// store, returning the id of the root element.
func LoadXML(s *Store, r io.Reader) (NodeID, error) {
	toks, err := xmltok.Parse(r, xmltok.ParseOptions{StripWhitespace: true})
	if err != nil {
		return 0, err
	}
	return s.Append(toks)
}

// LoadXMLString is LoadXML over a string.
func LoadXMLString(s *Store, src string) (NodeID, error) {
	return LoadXML(s, strings.NewReader(src))
}

// LoadXMLStream parses and loads a document with constant memory: tokens
// flow from the scanner straight into ranges without materializing the
// whole document. Whitespace-only text nodes are dropped, matching LoadXML;
// use Store.AppendStream with a raw scanner for full fidelity.
func LoadXMLStream(s *Store, r io.Reader) (NodeID, error) {
	sc := xmltok.NewScanner(r)
	next := func() (Token, error) {
		for {
			t, err := sc.Next()
			if err != nil {
				return Token{}, err
			}
			if t.Kind == token.Text && strings.TrimSpace(t.Value) == "" {
				continue
			}
			return t, nil
		}
	}
	return s.AppendStream(next)
}

// ParseFragment parses an XML fragment into tokens suitable for the store's
// insert operations.
func ParseFragment(src string) ([]Token, error) {
	return xmltok.ParseFragmentString(src, xmltok.ParseOptions{StripWhitespace: true})
}

// Query evaluates an XPath expression against the store and returns the
// matching node ids in document order. The ids are valid targets for the
// store's XUpdate operations.
//
// Compiled plans are cached per store (keyed by the expression source) and
// eligible expressions — child/`//` paths with name tests, [@attr='v'] and
// positional predicates, unions thereof — execute as a single pass over the
// raw token sequence without materializing a navigational view.
func Query(s *Store, expr string) ([]NodeID, error) {
	return xpath.QueryIDs(s, expr)
}

// QueryCtx is Query under a context: cancellation and deadlines interrupt
// the evaluation between scan batches.
func QueryCtx(ctx context.Context, s *Store, expr string) ([]NodeID, error) {
	return xpath.QueryIDsCtx(ctx, s, expr)
}

// QueryFirst returns the first node matching expr in document order. The
// scan short-circuits at the first hit, so probing for one node is far
// cheaper than Query on large stores.
func QueryFirst(s *Store, expr string) (NodeID, bool, error) {
	return xpath.QueryFirstCtx(context.Background(), s, expr)
}

// QueryFirstCtx is QueryFirst under a context.
func QueryFirstCtx(ctx context.Context, s *Store, expr string) (NodeID, bool, error) {
	return xpath.QueryFirstCtx(ctx, s, expr)
}

// QueryExists reports whether any node matches expr, stopping at the first
// match.
func QueryExists(s *Store, expr string) (bool, error) {
	return xpath.QueryExistsCtx(context.Background(), s, expr)
}

// QueryExistsCtx is QueryExists under a context.
func QueryExistsCtx(ctx context.Context, s *Store, expr string) (bool, error) {
	return xpath.QueryExistsCtx(ctx, s, expr)
}

// QueryCount returns the number of nodes matching expr. For pushdown-eligible
// expressions (including count(path)) the count is computed inside the scan
// without collecting ids.
func QueryCount(s *Store, expr string) (int, error) {
	return xpath.QueryCountCtx(context.Background(), s, expr)
}

// QueryNode evaluates expr against the subtree rooted at anchor, as if that
// subtree were its own document, and returns matching ids in document order.
func QueryNode(s *Store, anchor NodeID, expr string) ([]NodeID, error) {
	return xpath.QueryNodeIDsCtx(context.Background(), s, anchor, expr)
}

// QueryValue evaluates an XPath expression and returns its string value
// (e.g. for count(...) or string(...) expressions).
func QueryValue(s *Store, expr string) (string, error) {
	return xpath.QueryValueCtx(context.Background(), s, expr)
}

// QueryValueCtx is QueryValue under a context.
func QueryValueCtx(ctx context.Context, s *Store, expr string) (string, error) {
	return xpath.QueryValueCtx(ctx, s, expr)
}

// XQuery evaluates an XQuery FLWOR expression against the store and returns
// the result sequence as a token fragment, insertable back into a store.
//
//	toks, _ := axml.XQuery(st, `for $b in //book where $b/price < 50
//	                            return <cheap>{$b/title}</cheap>`)
func XQuery(s *Store, query string) ([]Token, error) {
	return xquery.EvalStore(s, query)
}

// XQueryCtx is XQuery under a context: cancellation is polled per FLWOR
// tuple.
func XQueryCtx(ctx context.Context, s *Store, query string) ([]Token, error) {
	return xquery.EvalStoreCtx(ctx, s, query)
}

// XQueryString evaluates an XQuery expression and serializes the result.
func XQueryString(s *Store, query string) (string, error) {
	return xquery.EvalString(s, query)
}

// XQueryStringCtx is XQueryString under a context.
func XQueryStringCtx(ctx context.Context, s *Store, query string) (string, error) {
	return xquery.EvalStringCtx(ctx, s, query)
}
