package axml

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/pagestore"
	recov "repro/internal/recover"
	"repro/internal/wal"
)

// Recovery re-exports: reports produced by repair, verification, backup
// and restore.
type (
	// RepairReport is a salvage report plus whether a rebuild was applied.
	RepairReport = core.RepairReport
	// BackupMeta is the sidecar written next to every backup.
	BackupMeta = recov.BackupMeta
	// RestoreInfo reports what a restore did.
	RestoreInfo = recov.RestoreInfo
	// PageFault describes one quarantined page in a report.
	PageFault = recov.PageFault
	// Interval is an inclusive node-id interval (lost-data reporting).
	Interval = recov.Interval
)

func defaultedPageSize(cfg Config) int {
	if cfg.PageSize > 0 {
		return cfg.PageSize
	}
	return pagestore.DefaultPageSize
}

// storeMetaPage is where OpenFile places the record store's meta page on a
// fresh file (page 0 is reserved, page 1 is the first allocation).
const storeMetaPage = pagestore.PageID(1)

// replayWAL folds a leftover non-empty WAL sidecar into the page file
// before a plain (non-journaled) open. A crash during a journaled session
// — a WAL-backed CLI run, or repair, which is always journaled — can leave
// a committed batch in the sidecar; opening the file without replaying it
// would write around that batch and corrupt the store the next time the
// log is replayed.
func replayWAL(path string, pageSize int) error {
	st, err := os.Stat(path + ".wal")
	if err != nil || st.Size() == 0 {
		return nil // no sidecar, or nothing in it
	}
	wp, err := wal.Open(path, pageSize)
	if err != nil {
		return fmt.Errorf("replay leftover WAL: %w", err)
	}
	return wp.Close()
}

// OpenFileWAL is OpenFile with write-ahead logging: every Flush commits
// its pages as one atomic batch, so a crash never leaves a half-applied
// flush. A non-empty archiveDir additionally archives every committed
// batch as a numbered segment — the raw material of point-in-time restore.
func OpenFileWAL(path string, cfg Config, archiveDir string) (*Store, error) {
	pager, err := wal.OpenWithOptions(path, defaultedPageSize(cfg), wal.Options{ArchiveDir: archiveDir})
	if err != nil {
		return nil, err
	}
	cfg.Pager = pager
	s, err := core.Open(cfg)
	if err != nil {
		pager.Close()
		return nil, err
	}
	return s, nil
}

// ReopenFileWAL is ReopenFile with write-ahead logging (see OpenFileWAL).
// Any committed batches left in the sidecar log by a previous crash are
// replayed first.
func ReopenFileWAL(path string, cfg Config, archiveDir string) (*Store, error) {
	pager, err := wal.OpenWithOptions(path, defaultedPageSize(cfg), wal.Options{ArchiveDir: archiveDir})
	if err != nil {
		return nil, err
	}
	s, err := core.Reopen(cfg, pager, storeMetaPage)
	if err != nil {
		pager.Close()
		return nil, err
	}
	return s, nil
}

// RepairFile salvages the store file at path: every page is scanned raw
// and classified, the surviving record chain is reassembled, and all
// indexes are rebuilt from the token sequence alone — the paper's "no
// stored ids, everything derivable" bet, cashed in as crash recovery.
//
// With apply false (the dry run) nothing is written and the report says
// what a repair would do. With apply true the salvaged ranges are written
// as a fresh generation and the store is switched over atomically: the
// repair itself runs under the write-ahead log, so crashing mid-repair
// leaves the store either fully repaired or untouched. Unreadable data is
// quarantined and reported (Result.Missing), never silently dropped.
//
// archiveDir must name the store's WAL segment archive whenever one is
// kept (empty otherwise): it numbers the rebuild commit after the
// archive's high-water mark and archives it as a segment, so later
// point-in-time restores replay across the repair. Repairing an archived
// store without its archive would restart the LSN counter at 1 and the
// rebuild batch — plus any crash leftovers in the sidecar log — would be
// archived over the genuine early segments, corrupting the whole history.
func RepairFile(path string, cfg Config, apply bool, archiveDir string) (*RepairReport, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	wp, err := wal.OpenWithOptions(path, defaultedPageSize(cfg), wal.Options{ArchiveDir: archiveDir})
	if err != nil {
		return nil, err
	}
	rep, rerr := core.RepairPager(wp, storeMetaPage, apply)
	cerr := wp.Close()
	if rerr != nil {
		return rep, rerr
	}
	return rep, cerr
}

// BackupStoreFile copies the store file at src into a consistent backup
// at dest (plus a BackupMeta sidecar at dest+".meta"). Exclusive mode
// replays any WAL tail into the copy. Shared mode runs under a shared
// lock, coexisting with read-only openers, and folds committed-but-
// unapplied WAL batches in as an overlay instead. Every page is checksum-
// verified on the way out; a corrupt store refuses to back up (repair it
// first). archiveDir names the store's segment archive: it keeps the
// history contiguous across an exclusive backup and, in both modes, pins
// the sidecar LSN to the archive's high-water mark. A backup taken
// without it is marked NoRollForward — restorable as-is, but refused as a
// base for segment replay, because its LSN may undercount the image.
func BackupStoreFile(src, dest string, cfg Config, shared bool, archiveDir string) (BackupMeta, error) {
	if _, err := os.Stat(src); err != nil {
		return BackupMeta{}, err
	}
	return recov.BackupFile(src, dest, recov.BackupOptions{
		PageSize:   defaultedPageSize(cfg),
		MetaPage:   storeMetaPage,
		Shared:     shared,
		ArchiveDir: archiveDir,
	})
}

// RestoreFile materializes the store state at targetLSN into dest: the
// base backup's pages plus every archived WAL segment up to the target,
// staged in a temporary file and atomically renamed into place. targetLSN
// zero means the newest archived segment (or the backup itself if
// archiveDir is empty). The destination must not exist.
func RestoreFile(base, dest string, archiveDir string, targetLSN uint64) (RestoreInfo, error) {
	return recov.Restore(base, dest, recov.RestoreOptions{
		ArchiveDir: archiveDir,
		TargetLSN:  targetLSN,
	})
}

// PruneReport says what an archive prune did (or, on a dry run, would do).
type PruneReport struct {
	// BackupLSN is the newest roll-forward-capable backup sidecar LSN found
	// — the proven restore base that makes older segments redundant.
	BackupLSN uint64 `json:"backup_lsn"`
	// KeepFrom is the effective cutoff: segments with LSN < KeepFrom are
	// prunable, everything at or above stays.
	KeepFrom uint64 `json:"keep_from"`
	// Segments/Bytes count the prunable (dry run) or pruned (applied)
	// segments.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// Remaining counts the segments left in the archive after the prune.
	Remaining int `json:"remaining"`
	// Applied is false for a dry run.
	Applied bool `json:"applied"`
}

// PruneArchive removes archived WAL segments that are no longer needed for
// point-in-time restore, because a backup already contains them. backupsDir
// is scanned for backup sidecars (*.meta); the newest roll-forward-capable
// one (NoRollForward unset) anchors the cutoff: restore from that backup
// replays segments LSN+1.., so segments up to and including its LSN are
// redundant. Without such a sidecar PruneArchive refuses — pruning without
// a proven restore base silently destroys history.
//
// requestedLSN, when non-zero, lowers the cutoff: only segments with
// LSN < requestedLSN are pruned, and the cutoff never exceeds what the
// newest backup makes safe. With apply false (the dry run) nothing is
// removed and the report says what a prune would do.
func PruneArchive(archiveDir, backupsDir string, requestedLSN uint64, apply bool) (PruneReport, error) {
	var rep PruneReport
	sidecars, err := filepathGlobMeta(backupsDir)
	if err != nil {
		return rep, err
	}
	found := false
	for _, backupPath := range sidecars {
		m, err := recov.ReadBackupMeta(backupPath)
		if err != nil || m.NoRollForward {
			continue // unreadable or non-roll-forward sidecars never raise the cutoff
		}
		found = true
		if m.LSN > rep.BackupLSN {
			rep.BackupLSN = m.LSN
		}
	}
	if !found {
		return rep, fmt.Errorf("prune: no roll-forward-capable backup sidecar (*.meta) in %s; refusing to prune without a restore base", backupsDir)
	}
	// Segments LSN+1.. are still needed to roll the newest backup forward;
	// everything at or below its LSN is covered by the backup itself.
	rep.KeepFrom = rep.BackupLSN + 1
	if requestedLSN > 0 && requestedLSN < rep.KeepFrom {
		rep.KeepFrom = requestedLSN
	}
	segs, err := wal.Segments(archiveDir)
	if err != nil {
		return rep, err
	}
	for _, sg := range segs {
		if sg.LSN < rep.KeepFrom {
			rep.Segments++
			rep.Bytes += sg.Bytes
		} else {
			rep.Remaining++
		}
	}
	if !apply {
		return rep, nil
	}
	removed, bytes, err := wal.PruneSegmentsBelow(archiveDir, rep.KeepFrom)
	rep.Segments = removed
	rep.Bytes = bytes
	rep.Applied = err == nil
	return rep, err
}

// filepathGlobMeta lists backup files in dir that have a .meta sidecar,
// returning the backup paths (sidecar path minus the suffix).
func filepathGlobMeta(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("prune: backups dir: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if len(name) > len(".meta") && name[len(name)-len(".meta"):] == ".meta" {
			out = append(out, filepath.Join(dir, name[:len(name)-len(".meta")]))
		}
	}
	return out, nil
}

// VerifyFileReport is VerifyFile with a machine-readable result: the raw
// salvage scan's page-by-page report (which never needs the store to
// open), then — only if that pass is clean — the record-chain and
// invariant checks of Store.Verify. The returned error is non-nil exactly
// when the store has a problem; the report is non-nil whenever the scan
// itself could run.
func VerifyFileReport(path string, cfg Config) (*RepairReport, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, err // a verify must not create the file it verifies
	}
	pager, err := pagestore.OpenFilePagerOpts(path, defaultedPageSize(cfg), pagestore.FileOpts{ReadOnly: cfg.ReadOnly})
	if err != nil {
		return nil, err
	}
	rep, serr := core.SalvageScan(pager, storeMetaPage)
	cerr := pager.Close()
	if serr != nil {
		return nil, serr
	}
	if cerr != nil {
		return nil, cerr
	}
	if !rep.Clean {
		return rep, verifyFindings(rep)
	}
	var s *Store
	if cfg.ReadOnly {
		s, err = ReopenFileReadOnly(path, cfg)
	} else {
		s, err = ReopenFile(path, cfg)
	}
	if err != nil {
		return rep, fmt.Errorf("open for verify: %w", err)
	}
	defer s.Close()
	if err := s.Verify(); err != nil {
		return rep, err
	}
	return rep, nil
}

// verifyFindings condenses a non-clean salvage report into one error.
func verifyFindings(rep *RepairReport) error {
	msg := fmt.Sprintf("verify: %d bad page(s), %d lost record(s), %d conflicting record(s)",
		len(rep.BadPages), rep.Lost, rep.Conflicts)
	for _, f := range rep.BadPages {
		msg += fmt.Sprintf("\n  page %d: %s: %s", f.Page, f.Kind, f.Reason)
	}
	for _, iv := range rep.Missing {
		msg += fmt.Sprintf("\n  missing node ids %d..%d", iv.Start, iv.End)
	}
	return fmt.Errorf("%s", msg)
}
