// The importance of being lazy, live: a skewed read workload against a
// coarsely stored document. The partial index starts empty, learns exactly
// the positions the application touches, and the per-window read cost
// collapses as the hit rate climbs — with zero eager index maintenance.
package main

import (
	"fmt"
	"log"
	"time"

	axml "repro"
	"repro/internal/workload"
)

func main() {
	store, err := axml.Open(axml.Config{
		Mode:            axml.RangePartial,
		PartialCapacity: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// One bulk load = one giant range: the laziest possible start.
	gen := workload.New(42)
	if _, err := store.Append(gen.PurchaseOrdersDoc(5000)); err != nil {
		log.Fatal(err)
	}
	st := store.Stats()
	fmt.Printf("loaded %d nodes into %d range(s); partial index empty\n\n", st.Nodes, st.Ranges)

	// A skewed application: a hot set of nodes read over and over.
	maxID := st.Nodes
	perm := gen.Perm(int(maxID))
	zipf := gen.Zipf(maxID, 1.7)
	sample := func() axml.NodeID { return axml.NodeID(perm[zipf()-1] + 1) }

	fmt.Printf("%8s %10s %12s %10s %10s\n", "window", "reads", "elapsed", "hit rate", "entries")
	prev := store.Stats()
	for w := 1; w <= 8; w++ {
		const reads = 2000
		start := time.Now()
		for i := 0; i < reads; i++ {
			if err := store.ScanNode(sample(), func(axml.Item) bool { return true }); err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		st := store.Stats()
		lookups := (st.PartialHits + st.PartialMisses) - (prev.PartialHits + prev.PartialMisses)
		hits := st.PartialHits - prev.PartialHits
		rate := 0.0
		if lookups > 0 {
			rate = 100 * float64(hits) / float64(lookups)
		}
		fmt.Printf("%8d %10d %12s %9.1f%% %10d\n",
			w, reads, elapsed.Round(time.Microsecond), rate, st.PartialEntries)
		prev = st
	}

	// An update in the middle invalidates lazily — no index rebuild, the
	// next touch of an affected node just re-learns its position.
	fmt.Println("\nsplitting the hot range with an insert...")
	ids, err := axml.Query(store, "/purchase-orders/purchase-order[2500]")
	if err != nil || len(ids) == 0 {
		log.Fatal("query failed")
	}
	frag, _ := axml.ParseFragment(`<purchase-order id="PO-NEW"><customer>Lazy Inc</customer></purchase-order>`)
	if _, err := store.InsertAfter(ids[0], frag); err != nil {
		log.Fatal(err)
	}
	before := store.Stats().PartialInvalidations
	for i := 0; i < 2000; i++ {
		store.ScanNode(sample(), func(axml.Item) bool { return true })
	}
	st = store.Stats()
	fmt.Printf("lazy invalidations after the split: %d (entries re-learned on demand)\n",
		st.PartialInvalidations-before)
}
