// Transactions over the store (the paper's future-work concurrency design):
// strict two-phase locking over the document→ancestor→node hierarchy,
// deadlock detection, and logical undo. Two writers work disjoint subtrees
// concurrently; an abort rolls a multi-operation change back; an XQuery view
// over the committed state closes the loop.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"

	axml "repro"
	"repro/internal/core"
	"repro/internal/txn"
	"repro/internal/xmltok"
)

func main() {
	store, err := core.Open(core.Config{Mode: core.RangePartial})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	m := txn.NewManager(store)
	defer m.Close()

	// Seed: a warehouse with two zones.
	seed := m.Begin()
	if _, err := seed.Append(xmltok.MustParse(
		`<warehouse><zone id="A"/><zone id="B"/></warehouse>`)); err != nil {
		log.Fatal(err)
	}
	seed.Commit()
	// warehouse=1, zoneA=2 (@id=3), zoneB=4 (@id=5)

	// 1. Disjoint writers in parallel: each stocks its own zone.
	var wg sync.WaitGroup
	stock := func(zone core.NodeID, item string, n int) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			for {
				tx := m.Begin()
				frag := xmltok.MustParseFragment(fmt.Sprintf(`<item sku="%s-%d"/>`, item, i))
				_, err := tx.InsertIntoLast(zone, frag)
				if err == nil {
					tx.Commit()
					break
				}
				tx.Abort()
				if !errors.Is(err, txn.ErrDeadlock) {
					log.Fatal(err)
				}
			}
		}
	}
	wg.Add(2)
	go stock(2, "bolt", 50)
	go stock(4, "nut", 50)
	wg.Wait()
	count, _ := axml.QueryValue(store, "count(//item)")
	fmt.Printf("after concurrent stocking: %s items\n", count)

	// 2. A multi-operation transaction that aborts: nothing survives.
	tx := m.Begin()
	if _, err := tx.InsertIntoLast(2, xmltok.MustParseFragment(`<item sku="mistake"/>`)); err != nil {
		log.Fatal(err)
	}
	if err := tx.DeleteNode(4); err != nil { // drop zone B entirely
		log.Fatal(err)
	}
	mid, _ := axml.QueryValue(store, "count(//zone)")
	fmt.Printf("inside doomed transaction: %s zones\n", mid)
	if err := tx.Abort(); err != nil {
		log.Fatal(err)
	}
	after, _ := axml.QueryValue(store, "count(//zone)")
	bad, _ := axml.QueryValue(store, `count(//item[@sku="mistake"])`)
	fmt.Printf("after abort: %s zones, %s mistakes\n", after, bad)

	// 3. An XQuery report over the committed state.
	report, err := axml.XQueryString(store, `
	  for $z in //zone
	  order by $z/@id
	  return <zone id="{$z/@id}" items="{count($z/item)}"/>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("report:", report)
}
