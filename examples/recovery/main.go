// Crash recovery with the write-ahead-logged pager: flushed state survives a
// crash bit-for-bit; unflushed work is cleanly lost; torn log batches are
// detected and discarded. The store's indexes are derived state, rebuilt by
// one scan of the self-describing range records on reopen.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	axml "repro"
	"repro/internal/core"
	"repro/internal/wal"
	"repro/internal/xmltok"
)

func main() {
	dir, err := os.MkdirTemp("", "axml-recovery")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "store.db")

	// Phase 1: build, flush (durable point), then keep working and crash.
	jp, err := wal.Open(path, 4096)
	if err != nil {
		log.Fatal(err)
	}
	store, err := core.Open(core.Config{Mode: core.RangeOnly, PageSize: 4096, Pager: jp})
	if err != nil {
		log.Fatal(err)
	}
	root, _ := store.Append(xmltok.MustParse(`<ledger/>`))
	for i := 0; i < 100; i++ {
		frag := xmltok.MustParseFragment(fmt.Sprintf(`<entry n="%d"/>`, i))
		if _, err := store.InsertIntoLast(root, frag); err != nil {
			log.Fatal(err)
		}
	}
	if err := store.Flush(); err != nil { // WAL commit: durable
		log.Fatal(err)
	}
	fmt.Println("flushed 100 entries (durable point)")

	for i := 100; i < 150; i++ {
		frag := xmltok.MustParseFragment(fmt.Sprintf(`<entry n="%d"/>`, i))
		store.InsertIntoLast(root, frag)
	}
	fmt.Println("added 50 more entries, then... crash (no flush, no commit)")
	jp.CloseWithoutCommit() // simulated power cut

	// Phase 2: recover. The WAL replays complete batches; the incomplete
	// tail is discarded; indexes rebuild from the record scan.
	jp2, err := wal.Open(path, 4096)
	if err != nil {
		log.Fatal(err)
	}
	store2, err := core.Reopen(core.Config{Mode: core.RangePartial, PageSize: 4096}, jp2, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer store2.Close()

	n, err := axml.QueryValue(store2, "count(//entry)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery: %s entries (the flushed state, exactly)\n", n)
	if err := store2.CheckInvariants(); err != nil {
		log.Fatal("invariants: ", err)
	}
	// The recovered store is fully writable again.
	if _, err := store2.InsertIntoLast(1, xmltok.MustParseFragment(`<entry n="new"/>`)); err != nil {
		log.Fatal(err)
	}
	if err := store2.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered store accepts and persists new work")
}
