// Querying a stored document with the XPath engine, including schema
// validation with PSVI type annotations on the way in (store desideratum 7).
package main

import (
	"fmt"
	"log"

	axml "repro"
	"repro/internal/schema"
	"repro/internal/xmltok"
)

const catalog = `<catalog>
  <book id="b1" year="2003">
    <title>TCP/IP Illustrated</title>
    <author>Stevens</author>
    <price>65.95</price>
  </book>
  <book id="b2" year="1998">
    <title>Advanced Programming</title>
    <author>Stevens</author>
    <price>65.95</price>
  </book>
  <book id="b3" year="2000">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Buneman</author>
    <price>39.95</price>
  </book>
</catalog>`

const catalogSchema = `<schema>
  <element name="catalog" type="catalogType"/>
  <complexType name="catalogType">
    <element name="book" type="bookType" minOccurs="0" maxOccurs="unbounded"/>
  </complexType>
  <complexType name="bookType">
    <element name="title" type="xs:string"/>
    <element name="author" type="xs:string" maxOccurs="unbounded"/>
    <element name="price" type="xs:decimal"/>
    <attribute name="id" type="xs:string" required="true"/>
    <attribute name="year" type="xs:int"/>
  </complexType>
</schema>`

func main() {
	// Validate once; the type annotations travel with the tokens into the
	// store and never need recomputation.
	sch := schema.MustParse(catalogSchema)
	doc, err := xmltok.ParseString(catalog, xmltok.ParseOptions{StripWhitespace: true})
	if err != nil {
		log.Fatal(err)
	}
	annotated, err := sch.Validate(doc)
	if err != nil {
		log.Fatal("validation:", err)
	}

	store, err := axml.Open(axml.Config{Mode: axml.RangePartial})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	if _, err := store.Append(annotated); err != nil {
		log.Fatal(err)
	}

	queries := []string{
		`//book[@id="b2"]/title`,
		`//book[price<50]`,
		`//book[author="Stevens"]/@year`,
		`//book[count(author)=2]/title`,
		`//book[contains(title,"Web")]/author`,
	}
	for _, q := range queries {
		ids, err := axml.Query(store, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s ->", q)
		for _, id := range ids {
			xml, _ := store.NodeXMLString(id)
			fmt.Printf(" %s", xml)
		}
		fmt.Println()
	}

	for _, v := range []string{
		`count(//book)`,
		`string(//book[1]/title)`,
		`count(//book[@year>1999])`,
	} {
		val, err := axml.QueryValue(store, v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s -> %s\n", v, val)
	}

	// PSVI survives the round trip: show the annotation on a price element.
	items, _ := store.ReadAll()
	for _, it := range items {
		if it.Tok.Name == "price" && it.Tok.Kind.IsBegin() {
			fmt.Printf("\nPSVI: <price> carries type %q straight from storage\n",
				sch.TypeName(it.Tok.Type))
			break
		}
	}
}
