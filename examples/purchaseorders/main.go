// The paper's motivating workload (Section 4.1): "insert a <purchase-order>
// element as the last child of the root", repeated many times. Under a full
// index every insert pays one index entry per node; under the range index a
// whole order is one entry, and the partial index memorizes the root's end
// position so repeated inserts skip the position search entirely.
//
// The example runs the same append workload under the three configurations
// and prints the work each one did.
package main

import (
	"fmt"
	"log"
	"time"

	axml "repro"
	"repro/internal/workload"
)

const orders = 2000

func main() {
	configs := []struct {
		name string
		cfg  axml.Config
	}{
		{"full index", axml.Config{Mode: axml.FullIndex}},
		{"range index", axml.Config{Mode: axml.RangeOnly}},
		{"range + partial", axml.Config{Mode: axml.RangePartial}},
	}
	fmt.Printf("appending %d purchase orders as last child of the root\n\n", orders)
	fmt.Printf("%-16s %10s %12s %12s %14s\n", "config", "elapsed", "ranges", "idx entries", "toks scanned")
	for _, c := range configs {
		elapsed, st := run(c.cfg)
		entries := st.RangeIndexEntries + st.FullIndexEntries
		fmt.Printf("%-16s %10s %12d %12d %14d\n",
			c.name, elapsed.Round(time.Millisecond), st.Ranges, entries, st.TokensScanned)
	}
	fmt.Println("\nThe lazy configuration touches the fewest index entries and,")
	fmt.Println("thanks to the memorized end-of-root position, barely scans at all.")
}

func run(cfg axml.Config) (time.Duration, axml.Stats) {
	store, err := axml.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	root, err := axml.LoadXMLString(store, `<purchase-orders/>`)
	if err != nil {
		log.Fatal(err)
	}
	gen := workload.New(2005)
	frags := make([][]axml.Token, orders)
	for i := range frags {
		frags[i] = gen.PurchaseOrder(i)
	}
	start := time.Now()
	for _, frag := range frags {
		if _, err := store.InsertIntoLast(root, frag); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	// Sanity: all orders present.
	v, err := axml.QueryValue(store, "count(//purchase-order)")
	if err != nil {
		log.Fatal(err)
	}
	if v != fmt.Sprint(orders) {
		log.Fatalf("expected %d orders, found %s", orders, v)
	}
	return elapsed, store.Stats()
}
