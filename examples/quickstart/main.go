// Quickstart: open a store, load a document, query it, update it, read it
// back — the whole public API surface in one minute.
package main

import (
	"fmt"
	"log"

	axml "repro"
)

func main() {
	// An adaptive store: coarse range index plus the lazy partial index.
	store, err := axml.Open(axml.Config{Mode: axml.RangePartial})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Load the paper's Figure 1 document. Tokens 1..5 get node ids:
	// <ticket>=1, <hour>=2, "15"=3, <name>=4, "Paul"=5.
	root, err := axml.LoadXMLString(store,
		`<ticket><hour>15</hour><name>Paul</name></ticket>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("root element id:", root)

	// Query with XPath; results are node ids usable as update targets.
	ids, err := axml.Query(store, "//name")
	if err != nil {
		log.Fatal(err)
	}
	xml, _ := store.NodeXMLString(ids[0])
	fmt.Println("query //name   :", xml)

	// XUpdate: insert a seat as the last child of the ticket.
	frag, err := axml.ParseFragment(`<seat>12A</seat>`)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.InsertIntoLast(root, frag); err != nil {
		log.Fatal(err)
	}

	// Replace the hour.
	hour, _ := axml.Query(store, "//hour")
	newHour, _ := axml.ParseFragment(`<hour>16</hour>`)
	if _, err := store.ReplaceNode(hour[0], newHour); err != nil {
		log.Fatal(err)
	}

	// Read the whole instance back.
	out, err := store.XMLString()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after updates  :", out)

	// The store adapted: the insert split the load range lazily.
	st := store.Stats()
	fmt.Printf("stats          : %d nodes, %d ranges, %d splits, partial entries %d\n",
		st.Nodes, st.Ranges, st.Splits, st.PartialEntries)
}
