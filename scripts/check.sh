#!/bin/sh
# check.sh — the repo's full verification gate.
#
# Runs formatting, vet, build, the full test suite, and the race detector
# over the concurrency-sensitive packages. Exits non-zero on the first
# failure. CI and pre-commit hooks should call exactly this script.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (lock, core, txn, fault, wal, pagestore, recover, budget, replica, server, failover, retryx, xpath, xquery)"
go test -race ./internal/lock ./internal/core ./internal/txn ./internal/fault ./internal/wal ./internal/pagestore ./internal/recover ./internal/budget ./internal/replica ./internal/server ./internal/failover ./internal/retryx ./internal/xpath ./internal/xquery

echo "== go test -race (root-package stress, chaos soak, overload paths)"
go test -race -run 'Stress|Concurrent|Chaos|Overload|Deadline' .

echo "== go test -race (partition chaos: net faults, kill -9 primary, fleet + automatic failover)"
go test -race -run 'TestPartitionChaos|TestNetChaos|TestFleet|TestFailover' ./internal/server ./internal/fault

echo "ok: all checks passed"
