#!/bin/sh
# bench.sh — parallel read-path benchmark runner (experiment E8).
#
# Runs the root-package parallel benchmarks at 1, 2, 4 and 8 goroutines with
# allocation accounting and distills the results into BENCH_parallel.json
# (override the path with $1), so nightly runs leave a machine-readable
# scaling trajectory to regress against. AXML_BENCHTIME overrides the
# per-benchmark measuring time (default 1s).
#
# If a previous BENCH_parallel.json exists it becomes the baseline: any
# benchmark present in both runs that regresses more than 15% in ns/op fails
# the script (after the new file is written, so the numbers are inspectable).
# Set AXML_BENCH_NOGATE=1 to record a new baseline without the comparison —
# e.g. when moving to different hardware.
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_parallel.json}"
raw=$(mktemp)
base=$(mktemp)
trap 'rm -f "$raw" "$base"' EXIT
have_base=0
if [ -f "$out" ] && [ -z "${AXML_BENCH_NOGATE:-}" ]; then
    cp "$out" "$base"
    have_base=1
fi

go test -run '^$' -bench 'Parallel|ColdCoarse' -benchmem \
    -cpu 1,2,4,8 -benchtime "${AXML_BENCHTIME:-1s}" . | tee "$raw"

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)

awk -v commit="$commit" -v stamp="$stamp" '
BEGIN {
    printf "{\n  \"commit\": \"%s\",\n  \"generated\": \"%s\",\n  \"benchmarks\": [", commit, stamp
    n = 0
}
/^Benchmark/ && /ns\/op/ {
    name = $1
    cpus = 1
    if (match(name, /-[0-9]+$/)) {
        cpus = substr(name, RSTART + 1)
        name = substr(name, 1, RSTART - 1)
    }
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = "0"; allocs = "0"
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"cpus\": %d, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
        name, cpus, ns, bytes, allocs
}
END { printf "\n  ]\n}\n" }
' "$raw" > "$out"

echo "wrote $out"

if [ "$have_base" = 1 ]; then
    echo "== regression gate (baseline: previous $out, tolerance 15%)"
    awk '
    # Both files are our own one-entry-per-line JSON; pull name/cpus/ns with
    # match() so the gate needs no JSON tooling.
    function parse(line) {
        if (match(line, /"name": "[^"]+"/) == 0) return 0
        name = substr(line, RSTART + 9, RLENGTH - 10)
        match(line, /"cpus": [0-9]+/);      cpus = substr(line, RSTART + 8, RLENGTH - 8)
        match(line, /"ns_per_op": [0-9.]+/); ns  = substr(line, RSTART + 13, RLENGTH - 13)
        key = name "-" cpus
        return 1
    }
    NR == FNR { if (parse($0)) old[key] = ns; next }
    { if (parse($0) && (key in old) && ns + 0 > old[key] * 1.15) {
        printf "REGRESSION %s: %s -> %s ns/op (+%.1f%%)\n", key, old[key], ns,
            (ns / old[key] - 1) * 100
        bad = 1
    } }
    END { exit bad }
    ' "$base" "$out" || {
        echo "bench regression beyond 15%; see above (AXML_BENCH_NOGATE=1 to rebaseline)" >&2
        exit 1
    }
    echo "gate: no benchmark regressed beyond 15%"
fi
