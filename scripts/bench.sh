#!/bin/sh
# bench.sh — parallel read-path benchmark runner (experiment E8).
#
# Runs the root-package parallel benchmarks at 1, 2, 4 and 8 goroutines with
# allocation accounting and distills the results into BENCH_parallel.json
# (override the path with $1), so nightly runs leave a machine-readable
# scaling trajectory to regress against. AXML_BENCHTIME overrides the
# per-benchmark measuring time (default 1s).
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_parallel.json}"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'Parallel|ColdCoarse' -benchmem \
    -cpu 1,2,4,8 -benchtime "${AXML_BENCHTIME:-1s}" . | tee "$raw"

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)

awk -v commit="$commit" -v stamp="$stamp" '
BEGIN {
    printf "{\n  \"commit\": \"%s\",\n  \"generated\": \"%s\",\n  \"benchmarks\": [", commit, stamp
    n = 0
}
/^Benchmark/ && /ns\/op/ {
    name = $1
    cpus = 1
    if (match(name, /-[0-9]+$/)) {
        cpus = substr(name, RSTART + 1)
        name = substr(name, 1, RSTART - 1)
    }
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = "0"; allocs = "0"
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"cpus\": %d, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
        name, cpus, ns, bytes, allocs
}
END { printf "\n  ]\n}\n" }
' "$raw" > "$out"

echo "wrote $out"
