package axml_test

import (
	"fmt"
	"log"

	axml "repro"
)

// The basic lifecycle: open, load, query, update, serialize.
func Example() {
	store, err := axml.Open(axml.Config{Mode: axml.RangePartial})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	root, _ := axml.LoadXMLString(store, `<ticket><hour>15</hour><name>Paul</name></ticket>`)
	frag, _ := axml.ParseFragment(`<seat>12A</seat>`)
	store.InsertIntoLast(root, frag)

	xml, _ := store.XMLString()
	fmt.Println(xml)
	// Output: <ticket><hour>15</hour><name>Paul</name><seat>12A</seat></ticket>
}

// XPath results are node ids — valid targets for the XUpdate operations.
func ExampleQuery() {
	store, _ := axml.Open(axml.Config{})
	defer store.Close()
	axml.LoadXMLString(store, `<orders><order id="1"/><order id="2"/></orders>`)

	ids, _ := axml.Query(store, `//order[@id="2"]`)
	frag, _ := axml.ParseFragment(`<item>bolt</item>`)
	store.InsertIntoLast(ids[0], frag)

	xml, _ := store.NodeXMLString(ids[0])
	fmt.Println(xml)
	// Output: <order id="2"><item>bolt</item></order>
}

// XQuery FLWOR expressions produce token fragments.
func ExampleXQueryString() {
	store, _ := axml.Open(axml.Config{})
	defer store.Close()
	axml.LoadXMLString(store, `<inv><it p="3">a</it><it p="1">b</it></inv>`)

	out, _ := axml.XQueryString(store, `
	  for $i in //it
	  order by $i/@p
	  return <v>{$i/text()}</v>`)
	fmt.Println(out)
	// Output: <v>b</v><v>a</v>
}

// Structural navigation is computed from the flat token sequence and
// memorized lazily by the partial index.
func ExampleStore_Parent() {
	store, _ := axml.Open(axml.Config{Mode: axml.RangePartial})
	defer store.Close()
	root, _ := axml.LoadXMLString(store, `<a><b><c/></b></a>`)

	ids, _ := axml.Query(store, `//c`)
	parent, _, _ := store.Parent(ids[0])
	grand, _, _ := store.Parent(parent)
	fmt.Println(grand == root)
	// Output: true
}
