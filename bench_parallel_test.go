// Parallel read-path benchmarks (experiment E8, DESIGN.md §9): the paper's
// lazy structures are caches that warm on access, which is exactly the shape
// that should let concurrent reads scale with cores. These targets measure
// random subtree reads, XPath evaluation, and a mixed reader/writer workload
// under b.RunParallel; scripts/bench.sh runs them at -cpu 1,2,4,8 and emits
// BENCH_parallel.json so later PRs have a trajectory to regress against.
package axml_test

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
	"repro/internal/xpath"
	"repro/internal/xquery"
)

// loadStoreBatched builds a purchase-order store appending `batch` orders per
// Append call — large batches produce the paper's "few, coarse" ranges whose
// locate replays dominate random-read cost (Table 5's 33 kb/s row).
func loadStoreBatched(b *testing.B, cfg core.Config, orders, batch int) *core.Store {
	b.Helper()
	s, err := core.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.New(2005)
	for done := 0; done < orders; done += batch {
		var frag []core.Token
		for j := 0; j < batch && done+j < orders; j++ {
			frag = append(frag, gen.PurchaseOrder(done+j)...)
		}
		if _, err := s.Append(frag); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// zipfKeys precomputes a hot-set key sample over the store's id space.
func zipfKeys(s *core.Store, n int, seed int64) []core.NodeID {
	gen := workload.New(seed)
	maxID := s.Stats().Nodes
	perm := gen.Perm(int(maxID))
	sample := gen.Zipf(maxID, 1.8)
	keys := make([]core.NodeID, n)
	for i := range keys {
		keys[i] = core.NodeID(perm[sample()-1] + 1)
	}
	return keys
}

// BenchmarkParallelRandomRead measures concurrent point subtree reads on a
// coarse-range store with the partial index on — the workload the sharded
// buffer pool and striped partial index exist for. Run with -cpu 1,2,4,8 to
// see the scaling curve.
func BenchmarkParallelRandomRead(b *testing.B) {
	s := loadStoreBatched(b, core.Config{Mode: core.RangePartial}, 2000, 500)
	defer s.Close()
	keys := zipfKeys(s, 8192, 99)
	var ctr atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := keys[ctr.Add(1)%uint64(len(keys))]
			if err := s.ScanNode(k, func(core.Item) bool { return true }); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkParallelExists measures the cheapest read op — a pure existence
// probe — which must not take the exclusive store lock.
func BenchmarkParallelExists(b *testing.B) {
	s := loadStoreBatched(b, core.Config{Mode: core.RangePartial}, 2000, 500)
	defer s.Close()
	keys := zipfKeys(s, 8192, 7)
	var ctr atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if !s.Exists(keys[ctr.Add(1)%uint64(len(keys))]) {
				b.Error("missing node")
				return
			}
		}
	})
}

// BenchmarkParallelXPath evaluates an anchored path per goroutine through
// the store-level query API: the plan comes from the keyed plan cache and
// executes as a pushdown scan over the order's raw token subtree — no
// navigational view, no intermediate node sets.
func BenchmarkParallelXPath(b *testing.B) {
	s := loadStoreBatched(b, core.Config{Mode: core.RangePartial}, 400, 100)
	defer s.Close()
	first, ok, err := s.FirstNodeID()
	if err != nil || !ok {
		b.Fatal("no root:", err)
	}
	var orders []core.NodeID
	for id, ok := first, true; ok && len(orders) < 256; id, ok, err = s.NextSibling(id) {
		if err != nil {
			b.Fatal(err)
		}
		orders = append(orders, id)
	}
	ctx := context.Background()
	var ctr atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := orders[ctr.Add(1)%uint64(len(orders))]
			ids, err := xpath.QueryNodeIDsCtx(ctx, s, id, `purchase-order/line/item`)
			if err != nil || len(ids) == 0 {
				b.Error("empty result:", err)
				return
			}
		}
	})
}

// BenchmarkParallelXPathComplex runs a whole-store query mix — an attribute+
// positional multi-predicate path, a two-branch union (fused into one scan),
// and one FLWOR per eight ops — with the plan cache on and off. The cache-off
// axis re-parses and re-plans every operation, isolating what the keyed cache
// buys; the reported cachehit metric must stay above 0.90 on the cache axis.
func BenchmarkParallelXPathComplex(b *testing.B) {
	const (
		qMulti = `//line[@no='2'][1]/item`
		qUnion = `//purchase-order[@status='open']/customer | //purchase-order[@status='billed']/date`
		qFLWOR = `for $l in //line[@no='1'] where $l/qty > 50 return <hot>{$l/item}</hot>`
	)
	for _, ax := range []struct {
		name    string
		entries int
	}{{"cache", 0}, {"nocache", -1}} {
		b.Run(ax.name, func(b *testing.B) {
			s := loadStoreBatched(b, core.Config{Mode: core.RangePartial, PlanCacheEntries: ax.entries}, 400, 100)
			defer s.Close()
			ctx := context.Background()
			var ctr atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					switch i := ctr.Add(1); i % 8 {
					case 0:
						if _, err := xquery.EvalStoreCtx(ctx, s, qFLWOR); err != nil {
							b.Error(err)
							return
						}
					case 1, 2, 3:
						if _, err := xpath.QueryIDsCtx(ctx, s, qUnion); err != nil {
							b.Error(err)
							return
						}
					default:
						if _, err := xpath.QueryIDsCtx(ctx, s, qMulti); err != nil {
							b.Error(err)
							return
						}
					}
				}
			})
			b.StopTimer()
			st := s.Stats()
			if lookups := st.PlanCacheHits + st.PlanCacheMisses; lookups > 0 {
				b.ReportMetric(float64(st.PlanCacheHits)/float64(lookups), "cachehit")
			}
		})
	}
}

// BenchmarkParallelMixed runs mostly-read traffic with an occasional writer
// (1 insert per 64 ops): the readers must keep scaling while XUpdate inserts
// split ranges under the exclusive lock.
func BenchmarkParallelMixed(b *testing.B) {
	s := loadStoreBatched(b, core.Config{Mode: core.RangePartial}, 1000, 250)
	defer s.Close()
	root, ok, err := s.FirstNodeID()
	if err != nil || !ok {
		b.Fatal("no root:", err)
	}
	keys := zipfKeys(s, 8192, 42)
	frag := workload.New(7).PurchaseOrder(1)
	var ctr atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			if i%64 == 0 {
				if _, err := s.InsertIntoLast(root, frag); err != nil {
					b.Error(err)
					return
				}
				continue
			}
			if err := s.ScanNode(keys[i%uint64(len(keys))], func(core.Item) bool { return true }); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkSiblingWalk walks the whole top-level sibling chain once per
// iteration. NextSibling is locate + end-scan + advance, the paths whose
// token stepping should touch only kind bytes and length prefixes — its
// allocation count is the token-codec overhead measure in EXPERIMENTS.md.
func BenchmarkSiblingWalk(b *testing.B) {
	s := loadStoreBatched(b, core.Config{Mode: core.RangeOnly}, 400, 100)
	defer s.Close()
	first, ok, err := s.FirstNodeID()
	if err != nil || !ok {
		b.Fatal("no root:", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for id, ok := first, true; ok; id, ok, err = s.NextSibling(id) {
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != 400 {
			b.Fatalf("walked %d siblings, want 400", n)
		}
	}
}

// BenchmarkColdCoarseRandomRead measures concurrent locate replay cost on a
// coarse RangeOnly store (no partial index): every read replays tokens from
// the head of a large range unless intra-range replay checkpoints cut the
// scan short. Replays share nothing but the buffer pool and the pooled
// scratch buffers, so aggregate throughput must scale with cores.
func BenchmarkColdCoarseRandomRead(b *testing.B) {
	s := loadStoreBatched(b, core.Config{Mode: core.RangeOnly}, 2000, 500)
	defer s.Close()
	gen := workload.New(4)
	maxID := s.Stats().Nodes
	sample := gen.Uniform(maxID)
	keys := make([]core.NodeID, 8192)
	for i := range keys {
		keys[i] = core.NodeID(sample())
	}
	var ctr atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := keys[ctr.Add(1)%uint64(len(keys))]
			if err := s.ScanNode(k, func(core.Item) bool { return true }); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
