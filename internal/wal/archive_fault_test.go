package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// openArchived opens a fault-wrapped journaled pager with segment
// archiving into <dir>/segments.
func openArchived(t *testing.T, inj *fault.Injector) (*Pager, string, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.db")
	arch := filepath.Join(dir, "segments")
	p, err := OpenWithOptions(path, 512, Options{
		ArchiveDir: arch,
		WrapPager:  func(ip InnerPager) InnerPager { return fault.NewPager(inj, ip) },
		WrapLog:    func(f File) File { return fault.NewFile(inj, f) },
		Retries:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, path, arch
}

// A commit whose page-file apply fails has already archived its segment
// (the archive step follows the log fsync). Abandoning the batch via
// DiscardPending must remove that segment: the LSN was never committed,
// and the next successful commit reuses it for a different batch — a
// restore replaying the stale segment would resurrect the rejected write.
func TestDiscardDropsSegmentOfFailedApply(t *testing.T) {
	inj := fault.NewInjector(fault.Config{})
	p, _, arch := openArchived(t, inj)

	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WritePage(id, bytes.Repeat([]byte{0x11}, 512)); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil { // LSN 1
		t.Fatal(err)
	}

	// Second batch: the disk fills between the log write and the apply.
	if err := p.WritePage(id, bytes.Repeat([]byte{0x22}, 512)); err != nil {
		t.Fatal(err)
	}
	inj.ArmDiskFull(2) // write 1 = log append (succeeds), write 2 = page apply
	if err := p.Commit(); !errors.Is(err, fault.ErrDiskFull) {
		t.Fatalf("commit: got %v, want ErrDiskFull", err)
	}
	if p.LSN() != 1 {
		t.Fatalf("LSN advanced to %d on a failed apply", p.LSN())
	}
	seg2 := filepath.Join(arch, SegmentFileName(2))
	if _, err := os.Stat(seg2); err != nil {
		t.Fatalf("segment 2 was not archived before the apply: %v", err)
	}

	inj.FreeSpace()
	p.DiscardPending()
	if _, err := os.Stat(seg2); !os.IsNotExist(err) {
		t.Fatal("discard left the rejected batch's segment in the archive")
	}
	if max, err := MaxArchivedLSN(arch); err != nil || max != 1 {
		t.Fatalf("archive high-water after discard: %d (err %v), want 1", max, err)
	}

	// The next commit reuses LSN 2; the archive must describe that batch.
	third := bytes.Repeat([]byte{0x33}, 512)
	if err := p.WritePage(id, third); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if p.LSN() != 2 {
		t.Fatalf("LSN after recommit: %d, want 2", p.LSN())
	}
	pages, lsn, err := ReadSegment(seg2, 512)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 2 || len(pages) != 1 || !bytes.Equal(pages[0].Data, third) {
		t.Fatal("segment 2 does not describe the batch that actually committed as LSN 2")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// Once the page-file apply is durable the commit is a fact: a failure in
// the log truncation afterwards must not leave the LSN un-advanced, or the
// next commit would reuse it and silently rewrite an archived segment with
// different bytes, voiding the history for restores.
func TestTruncateFailureDoesNotReuseLSN(t *testing.T) {
	inj := fault.NewInjector(fault.Config{})
	p, path, arch := openArchived(t, inj)

	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WritePage(id, bytes.Repeat([]byte{0xAA}, 512)); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil { // LSN 1
		t.Fatal(err)
	}

	second := bytes.Repeat([]byte{0xBB}, 512)
	if err := p.WritePage(id, second); err != nil {
		t.Fatal(err)
	}
	// Mutating ops in this commit: log write, log sync, page apply,
	// page-file sync, then the log truncate — crash there.
	inj.ArmCrash(5)
	if err := p.Commit(); !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("commit: got %v, want ErrCrashed at the truncate", err)
	}
	if p.LSN() != 2 {
		t.Fatalf("LSN %d after a post-apply truncate failure, want 2: the batch is durably applied", p.LSN())
	}
	if p.Pending() != 0 {
		t.Fatalf("%d pages still pending for a batch that durably committed", p.Pending())
	}

	// Simulate process death; reopening replays the un-truncated log —
	// idempotent re-apply, identical re-archive — and resumes at LSN 2.
	if err := p.CloseWithoutCommit(); err != nil {
		t.Fatal(err)
	}
	p2, err := OpenWithOptions(path, 512, Options{ArchiveDir: arch})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.LSN() != 2 {
		t.Fatalf("LSN after reopen: %d, want 2", p2.LSN())
	}
	got := make([]byte, 512)
	if err := p2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, second) {
		t.Fatal("committed batch lost across the truncate failure")
	}
	if err := p2.WritePage(id, bytes.Repeat([]byte{0xCC}, 512)); err != nil {
		t.Fatal(err)
	}
	if err := p2.Commit(); err != nil {
		t.Fatal(err)
	}
	if p2.LSN() != 3 {
		t.Fatalf("next commit got LSN %d, want 3 (no reuse of 2)", p2.LSN())
	}
	pages, lsn, err := ReadSegment(filepath.Join(arch, SegmentFileName(2)), 512)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 2 || len(pages) != 1 || !bytes.Equal(pages[0].Data, second) {
		t.Fatal("segment 2 no longer describes the batch that committed as LSN 2")
	}
}
