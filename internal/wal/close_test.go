package wal

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/pagestore"
)

func openFaulty(t *testing.T, inj *fault.Injector) (*Pager, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := OpenWithOptions(path, 512, Options{
		WrapPager: func(ip InnerPager) InnerPager { return fault.NewPager(inj, ip) },
		WrapLog:   func(f File) File { return fault.NewFile(inj, f) },
		Retries:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, path
}

// Close after a failed Commit must not hang on to the half-applied pending
// set: it closes both files, discards the pending pages, reports the commit
// error — and leaves the log on disk exactly as the commit left it, so the
// next Open replays (or discards) it correctly.
func TestCloseAfterFailedCommitDurableBatch(t *testing.T) {
	inj := fault.NewInjector(fault.Config{})
	p, path := openFaulty(t, inj)
	id, err := p.Allocate() // op 1
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 512)
	if err := p.WritePage(id, data); err != nil {
		t.Fatal(err)
	}
	// Crash at the page apply: ops from now are log write (1), log sync
	// (2), page write (3). The batch is durable in the log when the commit
	// fails.
	inj.ArmCrash(3)
	if err := p.Commit(); !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("commit: got %v, want ErrCrashed", err)
	}
	if p.Pending() != 1 {
		t.Fatalf("failed commit dropped the pending set (%d pending)", p.Pending())
	}
	if err := p.Close(); !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("close after failed commit: got %v, want the commit error", err)
	}
	if p.Pending() != 0 {
		t.Fatalf("close left %d pages pending", p.Pending())
	}
	if err := p.WritePage(id, data); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: got %v, want ErrClosed", err)
	}
	// The synced log must replay the committed batch on reopen.
	p2, err := Open(path, 512)
	if err != nil {
		t.Fatalf("reopen after failed close: %v", err)
	}
	defer p2.Close()
	got := make([]byte, 512)
	if err := p2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("durable batch was not recovered after Close-with-failed-Commit")
	}
}

// Same scenario, but the crash lands on the log write itself: nothing is
// durable, and reopening must yield the pre-commit state, not an error.
func TestCloseAfterFailedCommitNothingDurable(t *testing.T) {
	inj := fault.NewInjector(fault.Config{})
	p, path := openFaulty(t, inj)
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xCD}, 512)
	if err := p.WritePage(id, data); err != nil {
		t.Fatal(err)
	}
	inj.ArmCrash(1) // the log write fails; log stays empty
	if err := p.Commit(); !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("commit: got %v, want ErrCrashed", err)
	}
	if err := p.Close(); !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("close: got %v, want the commit error", err)
	}
	p2, err := Open(path, 512)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.Close()
	got := make([]byte, 512)
	if err := p2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("uncommitted batch leaked to the page file")
	}
}

// A second Close is a no-op even after a failed first Close.
func TestDoubleCloseAfterFailure(t *testing.T) {
	inj := fault.NewInjector(fault.Config{})
	p, _ := openFaulty(t, inj)
	id, _ := p.Allocate()
	p.WritePage(id, make([]byte, 512))
	inj.ArmCrash(1)
	if err := p.Close(); err == nil {
		t.Fatal("close should surface the commit failure")
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

var _ pagestore.Pager = (*Pager)(nil)
