package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// writeFakeSegment drops a segment file of n bytes for LSN into dir.
// Retention only looks at names and sizes, so the contents are arbitrary.
func writeFakeSegment(t *testing.T, dir string, lsn uint64, n int) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, SegmentFileName(lsn)), make([]byte, n), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentsSortedAndFiltered pins the listing contract: ascending LSN
// order, non-segment files ignored, missing directory = empty archive.
func TestSegmentsSortedAndFiltered(t *testing.T) {
	dir := t.TempDir()
	writeFakeSegment(t, dir, 3, 30)
	writeFakeSegment(t, dir, 1, 10)
	writeFakeSegment(t, dir, 2, 20)
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("Segments = %d entries, want 3", len(segs))
	}
	for i, want := range []uint64{1, 2, 3} {
		if segs[i].LSN != want {
			t.Fatalf("segs[%d].LSN = %d, want %d", i, segs[i].LSN, want)
		}
		if segs[i].Bytes != int64(want*10) {
			t.Fatalf("segs[%d].Bytes = %d, want %d", i, segs[i].Bytes, want*10)
		}
	}

	missing, err := Segments(filepath.Join(dir, "nope"))
	if err != nil || missing != nil {
		t.Fatalf("missing dir: got %v, %v; want nil, nil", missing, err)
	}
}

// TestArchiveUsage pins the totals Stats surfaces to operators.
func TestArchiveUsage(t *testing.T) {
	dir := t.TempDir()
	writeFakeSegment(t, dir, 1, 100)
	writeFakeSegment(t, dir, 2, 250)

	n, bytes, err := ArchiveUsage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || bytes != 350 {
		t.Fatalf("ArchiveUsage = %d segments, %d bytes; want 2, 350", n, bytes)
	}

	n, bytes, err = ArchiveUsage(filepath.Join(dir, "nope"))
	if err != nil || n != 0 || bytes != 0 {
		t.Fatalf("missing dir: got %d, %d, %v; want 0, 0, nil", n, bytes, err)
	}
}

// TestPruneSegmentsBelow pins the boundary: LSN < keepFrom is removed,
// LSN == keepFrom survives. A backup at LSN B rolls forward from segments
// > B, so keepFrom = B+1 keeps exactly what restore needs.
func TestPruneSegmentsBelow(t *testing.T) {
	dir := t.TempDir()
	for lsn := uint64(1); lsn <= 5; lsn++ {
		writeFakeSegment(t, dir, lsn, 10)
	}

	removed, bytes, err := PruneSegmentsBelow(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 || bytes != 20 {
		t.Fatalf("prune below 3: removed %d (%d bytes), want 2 (20)", removed, bytes)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 || segs[0].LSN != 3 {
		t.Fatalf("after prune: %v, want LSNs 3..5", segs)
	}

	// keepFrom 0 and 1 are no-ops: nothing is strictly below.
	if removed, _, err := PruneSegmentsBelow(dir, 1); err != nil || removed != 0 {
		t.Fatalf("prune below 1: removed %d, err %v; want 0, nil", removed, err)
	}
	if removed, _, err := PruneSegmentsBelow(filepath.Join(dir, "nope"), 99); err != nil || removed != 0 {
		t.Fatalf("prune missing dir: removed %d, err %v; want 0, nil", removed, err)
	}
}
