package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Epoch metadata for the segment archive.
//
// Failover stamps every leadership change into the archive so a segment's
// provenance is decidable after the fact: which primacy wrote LSN n? The
// binary segment format is untouched — segments are content-addressed by
// LSN and their CRC already guards integrity — so the epoch mapping lives
// beside them in a tiny JSON manifest, `epochs.json`, maintained with the
// same tmp+fsync+rename discipline as every other sidecar. Each entry
// says "from this LSN on, segments were written under this epoch"; the
// list is append-only and both columns are strictly increasing.

// EpochManifestName is the manifest's filename inside the archive dir.
const EpochManifestName = "epochs.json"

// EpochEntry marks the first LSN written under an epoch.
type EpochEntry struct {
	Epoch   uint64 `json:"epoch"`
	FromLSN uint64 `json:"from_lsn"`
}

// ReadEpochs loads the archive's epoch manifest. A missing manifest is a
// pre-failover archive: implicitly all epoch 1 from LSN 1.
func ReadEpochs(archiveDir string) ([]EpochEntry, error) {
	b, err := os.ReadFile(filepath.Join(archiveDir, EpochManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return []EpochEntry{{Epoch: 1, FromLSN: 1}}, nil
		}
		return nil, err
	}
	var entries []EpochEntry
	if err := json.Unmarshal(b, &entries); err != nil {
		return nil, fmt.Errorf("wal: epoch manifest: %w", err)
	}
	if len(entries) == 0 {
		return []EpochEntry{{Epoch: 1, FromLSN: 1}}, nil
	}
	// Both columns must be strictly increasing, checked pairwise and
	// explicitly: a sortedness predicate over a conjunctive less would
	// only reject entries where BOTH columns decrease, waving through
	// duplicates and single-column regressions.
	for i := 1; i < len(entries); i++ {
		if entries[i].Epoch <= entries[i-1].Epoch || entries[i].FromLSN <= entries[i-1].FromLSN {
			return nil, fmt.Errorf("wal: epoch manifest: entries not strictly increasing: %+v", entries)
		}
	}
	return entries, nil
}

// AppendEpoch records a leadership change: segments from fromLSN on are
// written under epoch. The write is durable before return. Appending an
// entry equal to the current tail is a no-op (promotion retries are
// idempotent); anything non-increasing is an error.
func AppendEpoch(archiveDir string, epoch, fromLSN uint64) error {
	entries, err := ReadEpochs(archiveDir)
	if err != nil {
		return err
	}
	tail := entries[len(entries)-1]
	if epoch == tail.Epoch && fromLSN == tail.FromLSN {
		return nil
	}
	// Both columns must strictly advance (the exact-duplicate retry case
	// returned above) — the same invariant ReadEpochs enforces, so this
	// writer can never produce a manifest the reader refuses.
	if epoch <= tail.Epoch || fromLSN <= tail.FromLSN {
		return fmt.Errorf("wal: epoch manifest: appending {%d,%d} after {%d,%d}", epoch, fromLSN, tail.Epoch, tail.FromLSN)
	}
	entries = append(entries, EpochEntry{Epoch: epoch, FromLSN: fromLSN})
	b, err := json.Marshal(entries)
	if err != nil {
		return err
	}
	path := filepath.Join(archiveDir, EpochManifestName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// CurrentEpoch returns the archive's latest recorded epoch.
func CurrentEpoch(archiveDir string) (uint64, error) {
	entries, err := ReadEpochs(archiveDir)
	if err != nil {
		return 0, err
	}
	return entries[len(entries)-1].Epoch, nil
}

// SegmentEpoch answers which epoch the segment holding lsn was written
// under: the last entry whose FromLSN is <= lsn. An lsn below every entry
// predates the manifest and reports epoch 1.
func SegmentEpoch(archiveDir string, lsn uint64) (uint64, error) {
	entries, err := ReadEpochs(archiveDir)
	if err != nil {
		return 0, err
	}
	epoch := uint64(1)
	for _, e := range entries {
		if e.FromLSN > lsn {
			break
		}
		epoch = e.Epoch
	}
	return epoch, nil
}
