package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func tempPaths(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.db")
	return path, path + ".wal"
}

func TestBasicWriteCommitRead(t *testing.T) {
	path, _ := tempPaths(t)
	p, err := Open(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	copy(buf, "journaled data")
	if err := p.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	// Pending writes are visible to reads before commit.
	got := make([]byte, 512)
	if err := p.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("pending read mismatch")
	}
	if p.Pending() != 1 {
		t.Fatalf("pending = %d", p.Pending())
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if p.Pending() != 0 {
		t.Fatal("pending not cleared")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen: data durable, no WAL left.
	p2, err := Open(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if err := p2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("durable read mismatch")
	}
}

func TestCrashBeforeCommitLosesNothingDurable(t *testing.T) {
	path, walPath := tempPaths(t)
	p, _ := Open(path, 512)
	id, _ := p.Allocate()
	committed := make([]byte, 512)
	copy(committed, "committed state")
	p.WritePage(id, committed)
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	// New write, then crash without commit.
	uncommitted := make([]byte, 512)
	copy(uncommitted, "uncommitted state")
	p.WritePage(id, uncommitted)
	p.CloseWithoutCommit()

	p2, err := Open(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got := make([]byte, 512)
	if err := p2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, committed) {
		t.Errorf("after crash: %q, want committed state", got[:20])
	}
	// The reopened pager recreates its (empty) log.
	if st, err := os.Stat(walPath); err != nil || st.Size() != 0 {
		t.Errorf("wal after recovery: %v, size %d", err, st.Size())
	}
}

func TestRecoveryReplaysCompleteBatch(t *testing.T) {
	// Simulate a crash after the WAL fsync but before the apply: write the
	// WAL by hand via Commit, then undo the main-file apply by truncating
	// the main file back, then recover.
	path, walPath := tempPaths(t)
	p, _ := Open(path, 512)
	id, _ := p.Allocate()
	data := make([]byte, 512)
	copy(data, "batch payload")
	p.WritePage(id, data)

	// Capture the WAL image Commit would write, then "crash" before apply:
	// emulate by writing the WAL file manually and closing without commit.
	p.buf = p.buf[:0]
	p.appendRecord(recPage, uint32(id), data)
	p.appendRecord(recCommit, 1, nil)
	if err := os.WriteFile(walPath, p.buf, 0o644); err != nil {
		t.Fatal(err)
	}
	p.CloseWithoutCommit()

	// Recovery must apply the batch.
	p2, err := Open(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got := make([]byte, 512)
	if err := p2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("recovered page = %q", got[:20])
	}
}

func TestRecoveryDiscardsTornBatch(t *testing.T) {
	path, walPath := tempPaths(t)
	p, _ := Open(path, 512)
	id, _ := p.Allocate()
	data := make([]byte, 512)
	copy(data, "will be torn")
	p.WritePage(id, data)
	p.buf = p.buf[:0]
	p.appendRecord(recPage, uint32(id), data)
	p.appendRecord(recCommit, 1, nil)
	// Torn write: drop the last 10 bytes (commit record corrupted).
	if err := os.WriteFile(walPath, p.buf[:len(p.buf)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	p.CloseWithoutCommit()

	p2, err := Open(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got := make([]byte, 512)
	if err := p2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("torn batch was applied")
		}
	}
}

func TestRecoveryDetectsCorruptCRC(t *testing.T) {
	path, walPath := tempPaths(t)
	p, _ := Open(path, 512)
	id, _ := p.Allocate()
	data := make([]byte, 512)
	p.WritePage(id, data)
	p.buf = p.buf[:0]
	p.appendRecord(recPage, uint32(id), data)
	p.appendRecord(recCommit, 1, nil)
	img := append([]byte{}, p.buf...)
	img[8] ^= 0xFF // flip a payload byte: CRC of the page record breaks
	os.WriteFile(walPath, img, 0o644)
	p.CloseWithoutCommit()

	// The corrupt record truncates the log: open succeeds, nothing applied.
	p2, err := Open(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	p2.Close()
}

func TestMultiBatchRecovery(t *testing.T) {
	// Two complete batches in the log (crash happened during the second
	// apply): both must be replayed, last writer wins.
	path, walPath := tempPaths(t)
	p, _ := Open(path, 512)
	id, _ := p.Allocate()
	v1 := bytes.Repeat([]byte{1}, 512)
	v2 := bytes.Repeat([]byte{2}, 512)
	p.buf = p.buf[:0]
	p.appendRecord(recPage, uint32(id), v1)
	p.appendRecord(recCommit, 1, nil)
	p.appendRecord(recPage, uint32(id), v2)
	p.appendRecord(recCommit, 1, nil)
	os.WriteFile(walPath, p.buf, 0o644)
	p.CloseWithoutCommit()

	p2, err := Open(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got := make([]byte, 512)
	p2.ReadPage(id, got)
	if got[0] != 2 {
		t.Errorf("page value %d, want 2 (second batch)", got[0])
	}
}

func TestFreedPendingPageNotCommitted(t *testing.T) {
	path, _ := tempPaths(t)
	p, _ := Open(path, 512)
	defer p.Close()
	id, _ := p.Allocate()
	data := make([]byte, 512)
	p.WritePage(id, data)
	if err := p.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if p.Pending() != 0 {
		t.Error("freed page still pending")
	}
}

func TestClosedPagerRejectsOps(t *testing.T) {
	path, _ := tempPaths(t)
	p, _ := Open(path, 512)
	id, _ := p.Allocate()
	p.Close()
	buf := make([]byte, 512)
	if _, err := p.Allocate(); err == nil {
		t.Error("allocate after close")
	}
	if err := p.ReadPage(id, buf); err == nil {
		t.Error("read after close")
	}
	if err := p.WritePage(id, buf); err == nil {
		t.Error("write after close")
	}
	if err := p.Commit(); err == nil {
		t.Error("commit after close")
	}
	if err := p.Close(); err != nil {
		t.Error("double close should be nil")
	}
}

func TestRecoveryRejectsWrongPageSize(t *testing.T) {
	path, walPath := tempPaths(t)
	p, _ := Open(path, 512)
	id, _ := p.Allocate()
	img := make([]byte, 512)
	p.buf = p.buf[:0]
	p.appendRecord(recPage, uint32(id), img)
	p.appendRecord(recCommit, 1, nil)
	os.WriteFile(walPath, p.buf, 0o644)
	p.CloseWithoutCommit()
	// Reopen with a different page size: the logged image no longer fits.
	if _, err := Open(path, 1024); err == nil {
		t.Error("page-size mismatch should fail recovery")
	}
}

func TestRecoveryRejectsBadCommitCount(t *testing.T) {
	path, walPath := tempPaths(t)
	p, _ := Open(path, 512)
	id, _ := p.Allocate()
	img := make([]byte, 512)
	p.buf = p.buf[:0]
	p.appendRecord(recPage, uint32(id), img)
	p.appendRecord(recCommit, 7, nil) // names 7 pages, batch has 1
	os.WriteFile(walPath, p.buf, 0o644)
	p.CloseWithoutCommit()
	if _, err := Open(path, 512); err == nil {
		t.Error("commit-count mismatch should fail recovery")
	}
}

func TestRecoveryRejectsUnknownRecordType(t *testing.T) {
	path, walPath := tempPaths(t)
	p, _ := Open(path, 512)
	p.buf = p.buf[:0]
	p.appendRecord(9, 0, nil) // bogus type with a valid CRC
	os.WriteFile(walPath, p.buf, 0o644)
	p.CloseWithoutCommit()
	if _, err := Open(path, 512); err == nil {
		t.Error("unknown record type should fail recovery")
	}
}

func TestEmptyCommitIsNoop(t *testing.T) {
	path, _ := tempPaths(t)
	p, _ := Open(path, 512)
	defer p.Close()
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	wal, err := p.DumpWAL()
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) != 0 {
		t.Errorf("empty commit wrote %d wal bytes", len(wal))
	}
}
