// Package wal adds write-ahead logging to the page store, making flushes
// atomic: a batch of page writes either reaches the page file completely or
// not at all, no matter where a crash lands.
//
// The protocol is physical page-image logging with batch commit:
//
//  1. WritePage appends the page image to the log buffer and holds the page
//     in a pending set (reads see pending pages);
//  2. Commit writes a terminator, fsyncs the log, applies the pending pages
//     to the page file, fsyncs it, and truncates the log;
//  3. recovery on open replays every *complete* batch found in the log (a
//     crash mid-apply re-applies; a crash mid-log discards the incomplete
//     batch) and truncates it.
//
// Every record carries a CRC so torn log writes are detected, and the
// terminator carries the batch page count so a torn batch is never
// replayed.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/pagestore"
)

// Log record types.
const (
	recPage   = 1
	recCommit = 2
)

// record layout: type(1) pageID(4) length(4) payload crc32(4)
// commit records have pageID = batch page count and an 8-byte payload
// carrying the batch's commit LSN (legacy logs have an empty payload and
// LSN 0, which disables archiving for that batch).
const recHeader = 1 + 4 + 4

// Journal errors.
var (
	ErrClosed = errors.New("wal: journaled pager is closed")
)

// InnerPager is what the journal needs from the page file below it: raw
// paged I/O plus durable flushing. *pagestore.FilePager satisfies it; fault
// injection wraps it.
type InnerPager interface {
	pagestore.Pager
	Sync() error
}

// File is the subset of *os.File operations the journal performs on its
// sidecar log. Fault injection wraps it to exercise crash and torn-write
// behavior at every log I/O boundary.
type File interface {
	io.WriterAt
	io.Reader
	io.Seeker
	Sync() error
	Truncate(size int64) error
	Close() error
}

// Default bounded-retry policy for transient commit errors.
const (
	defaultRetries = 3
	defaultBackoff = 500 * time.Microsecond
)

// Options tunes a journaled pager. The zero value gives the default
// behavior: unwrapped I/O and a small bounded retry with exponential
// backoff for transient commit errors.
type Options struct {
	// WrapPager, when set, wraps the inner page-file pager (fault injection
	// in tests). It is applied after recovery has run.
	WrapPager func(InnerPager) InnerPager
	// WrapLog, when set, wraps the sidecar log file.
	WrapLog func(File) File
	// ArchiveDir, when set, archives every committed batch as a numbered
	// segment file in that directory — the raw material of point-in-time
	// restore. The segment is written and fsynced after the log fsync (the
	// batch's durability point) and before the log is truncated, so a crash
	// anywhere in between is repaired on the next open: recovery re-archives
	// the replayed batch under its logged LSN. A batch whose page-file apply
	// fails and is then abandoned has its segment deleted by DiscardPending,
	// so an archived segment never survives naming an LSN the store did not
	// durably commit.
	ArchiveDir string
	// WrapSegment, when set, wraps archive segment files (fault injection).
	WrapSegment func(File) File
	// MinLSN floors the commit counter: the first commit of this pager gets
	// at least MinLSN+1, even when recovery and the archive high-water mark
	// say less. A promoted replica uses it — its page image already
	// contains every commit up to the applied LSN, but its local archive
	// may hold fewer segments (or none, right after bootstrap), and letting
	// the counter restart below the applied point would reuse LSNs the
	// history has already assigned.
	MinLSN uint64
	// Retries bounds how often a transient commit-path error is retried.
	// 0 means the default (3); negative disables retrying.
	Retries int
	// Backoff is the initial retry backoff, doubled per attempt.
	// 0 means the default (500µs).
	Backoff time.Duration
}

// Pager wraps a page file with write-ahead logging. It implements
// pagestore.Pager; page writes are buffered until Commit.
//
// The pager is safe for concurrent use — the sharded buffer pool above it
// issues reads (and eviction write-backs) from several lock stripes at
// once. Reads of the pending set share an RWMutex; mutations (WritePage,
// Free, Commit, DiscardPending, Close) take it exclusively.
type Pager struct {
	mu         sync.RWMutex
	inner      InnerPager
	walPath    string
	wal        File
	pending    map[pagestore.PageID][]byte
	order      []pagestore.PageID
	undo       []PageImage // before-images of pages a failed apply overwrote
	buf        []byte
	retries    int
	backoff    time.Duration
	lsn        uint64 // last committed batch
	archiveDir string
	wrapSeg    func(File) File
	closed     bool
}

// Open opens (creating if needed) a journaled page file. Any complete
// batches left in the sidecar log <path>.wal are replayed first.
func Open(path string, pageSize int) (*Pager, error) {
	return OpenWithOptions(path, pageSize, Options{})
}

// OpenWithOptions is Open with fault-injection wrappers and retry tuning.
func OpenWithOptions(path string, pageSize int, opt Options) (*Pager, error) {
	walPath := path + ".wal"
	replayedLSN, err := recover_(path, walPath, pageSize, opt.ArchiveDir, opt.WrapSegment)
	if err != nil {
		return nil, err
	}
	lsn := replayedLSN
	if opt.ArchiveDir != "" {
		archived, err := MaxArchivedLSN(opt.ArchiveDir)
		if err != nil {
			return nil, err
		}
		if archived > lsn {
			lsn = archived
		}
	}
	if opt.MinLSN > lsn {
		lsn = opt.MinLSN
	}
	fp, err := pagestore.OpenFilePager(path, pageSize)
	if err != nil {
		return nil, err
	}
	var inner InnerPager = fp
	if opt.WrapPager != nil {
		inner = opt.WrapPager(inner)
	}
	wf, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		inner.Close()
		return nil, err
	}
	var wal File = wf
	if opt.WrapLog != nil {
		wal = opt.WrapLog(wal)
	}
	retries := opt.Retries
	switch {
	case retries == 0:
		retries = defaultRetries
	case retries < 0:
		retries = 0
	}
	backoff := opt.Backoff
	if backoff <= 0 {
		backoff = defaultBackoff
	}
	return &Pager{
		inner:      inner,
		walPath:    walPath,
		wal:        wal,
		pending:    make(map[pagestore.PageID][]byte),
		retries:    retries,
		backoff:    backoff,
		lsn:        lsn,
		archiveDir: opt.ArchiveDir,
		wrapSeg:    opt.WrapSegment,
	}, nil
}

// recover_ replays complete batches from the log into the page file. When
// archiveDir is set, every replayed batch is (re-)archived under its logged
// LSN first — the batch was durable before the crash, so its segment must
// exist (a crash between the log fsync and the segment write would
// otherwise leave a gap in the archive). It returns the highest LSN
// replayed (0 when the log was empty or pre-LSN).
func recover_(path, walPath string, pageSize int, archiveDir string, wrapSeg func(File) File) (uint64, error) {
	data, err := os.ReadFile(walPath)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	if len(data) == 0 {
		return 0, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	type pageImage struct {
		id  pagestore.PageID
		img []byte
	}
	var batch []pageImage
	var lastLSN uint64
	applied := false
	pos, batchStart := 0, 0
	for pos < len(data) {
		typ, id, payload, next, ok := readRecord(data, pos)
		if !ok {
			break // torn tail: discard the rest
		}
		switch typ {
		case recPage:
			if len(payload) != pageSize {
				return 0, fmt.Errorf("wal: page image of %d bytes, page size %d", len(payload), pageSize)
			}
			batch = append(batch, pageImage{id: pagestore.PageID(id), img: payload})
		case recCommit:
			if int(id) != len(batch) {
				return 0, fmt.Errorf("wal: commit names %d pages, batch has %d", id, len(batch))
			}
			var lsn uint64
			if len(payload) == 8 {
				lsn = binary.LittleEndian.Uint64(payload)
			}
			if archiveDir != "" && lsn != 0 {
				// The segment bytes are exactly the batch's log bytes.
				if err := writeSegment(archiveDir, lsn, data[batchStart:next], wrapSeg); err != nil {
					return 0, err
				}
			}
			for _, p := range batch {
				off := int64(p.id) * int64(pageSize)
				if _, err := f.WriteAt(p.img, off); err != nil {
					return 0, err
				}
			}
			if lsn > lastLSN {
				lastLSN = lsn
			}
			applied = true
			batch = batch[:0]
			batchStart = next
		default:
			return 0, fmt.Errorf("wal: unknown record type %d", typ)
		}
		pos = next
	}
	if applied {
		if err := f.Sync(); err != nil {
			return 0, err
		}
	}
	return lastLSN, os.Remove(walPath)
}

// readRecord parses one record at pos. ok=false on truncation or CRC
// mismatch (a torn write).
func readRecord(data []byte, pos int) (typ byte, id uint32, payload []byte, next int, ok bool) {
	if pos+recHeader > len(data) {
		return 0, 0, nil, 0, false
	}
	typ = data[pos]
	id = binary.LittleEndian.Uint32(data[pos+1:])
	length := int(binary.LittleEndian.Uint32(data[pos+5:]))
	end := pos + recHeader + length + 4
	if length < 0 || end > len(data) {
		return 0, 0, nil, 0, false
	}
	payload = data[pos+recHeader : pos+recHeader+length]
	want := binary.LittleEndian.Uint32(data[end-4:])
	if crc32.ChecksumIEEE(data[pos:end-4]) != want {
		return 0, 0, nil, 0, false
	}
	return typ, id, payload, end, true
}

func (p *Pager) appendRecord(typ byte, id uint32, payload []byte) {
	start := len(p.buf)
	p.buf = append(p.buf, typ)
	p.buf = binary.LittleEndian.AppendUint32(p.buf, id)
	p.buf = binary.LittleEndian.AppendUint32(p.buf, uint32(len(payload)))
	p.buf = append(p.buf, payload...)
	crc := crc32.ChecksumIEEE(p.buf[start:])
	p.buf = binary.LittleEndian.AppendUint32(p.buf, crc)
}

// PageSize implements pagestore.Pager.
func (p *Pager) PageSize() int { return p.inner.PageSize() }

// Allocate implements pagestore.Pager. Allocations go straight to the inner
// pager: an allocated-but-uncommitted page is harmless after a crash.
func (p *Pager) Allocate() (pagestore.PageID, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return pagestore.InvalidPage, ErrClosed
	}
	return p.inner.Allocate()
}

// ReadPage implements pagestore.Pager, seeing pending (uncommitted) writes.
// Concurrent reads share the lock; the inner pager serializes its own I/O.
func (p *Pager) ReadPage(id pagestore.PageID, buf []byte) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	if img, ok := p.pending[id]; ok {
		copy(buf, img)
		return nil
	}
	return p.inner.ReadPage(id, buf)
}

// WritePage implements pagestore.Pager: the write is logged and held
// pending until Commit.
func (p *Pager) WritePage(id pagestore.PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	img, ok := p.pending[id]
	if !ok {
		img = make([]byte, p.inner.PageSize())
		p.pending[id] = img
		p.order = append(p.order, id)
	}
	copy(img, buf)
	return nil
}

// Free implements pagestore.Pager.
func (p *Pager) Free(id pagestore.PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	delete(p.pending, id)
	return p.inner.Free(id)
}

// PageCount implements pagestore.Pager.
func (p *Pager) PageCount() int { return p.inner.PageCount() }

// MaxPageID exposes the inner pager's scrub extent when it tracks one
// (checksum scrubs reach through the journal).
func (p *Pager) MaxPageID() pagestore.PageID {
	if m, ok := p.inner.(interface{ MaxPageID() pagestore.PageID }); ok {
		return m.MaxPageID()
	}
	return pagestore.InvalidPage
}

// retry runs op, retrying transient failures (errors exposing a true
// Temporary() bool, the net.Error idiom) with bounded exponential backoff.
// Permanent errors — including simulated crashes — return immediately.
func (p *Pager) retry(op func() error) error {
	err := op()
	backoff := p.backoff
	for attempt := 0; err != nil && attempt < p.retries; attempt++ {
		var te interface{ Temporary() bool }
		if !errors.As(err, &te) || !te.Temporary() {
			return err
		}
		time.Sleep(backoff)
		backoff *= 2
		err = op()
	}
	return err
}

// Commit makes all pending page writes durable atomically: log, fsync,
// archive (when configured), apply, fsync, truncate. Transient I/O errors
// are retried with backoff; a persistent failure leaves the pending set
// intact (retryable by the caller) and the log replayable.
func (p *Pager) Commit() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.commitLocked()
}

func (p *Pager) commitLocked() error {
	if p.closed {
		return ErrClosed
	}
	if len(p.pending) == 0 {
		return nil
	}
	next := p.lsn + 1
	var lsnBuf [8]byte
	binary.LittleEndian.PutUint64(lsnBuf[:], next)
	p.buf = p.buf[:0]
	n := 0
	for _, id := range p.order {
		img, ok := p.pending[id]
		if !ok {
			continue // freed while pending
		}
		p.appendRecord(recPage, uint32(id), img)
		n++
	}
	p.appendRecord(recCommit, uint32(n), lsnBuf[:])
	if err := p.retry(func() error {
		_, werr := p.wal.WriteAt(p.buf, 0)
		return werr
	}); err != nil {
		return err
	}
	if err := p.retry(p.wal.Sync); err != nil {
		return err
	}
	// The batch is durable; archive its segment before the log can be
	// truncated. A crash from here on is repaired by recovery, which
	// re-archives the batch from the intact log.
	if p.archiveDir != "" {
		if err := p.retry(func() error { return writeSegment(p.archiveDir, next, p.buf, p.wrapSeg) }); err != nil {
			return err
		}
	}
	// Apply to the page file, capturing each page's before-image first.
	// The apply order is the buffer pool's flush order — effectively
	// arbitrary — so a mid-apply failure (disk full, say) leaves an
	// unpredictable subset of the batch on disk. If the caller then
	// abandons the batch (DiscardPending) instead of rolling it forward,
	// these images are what restores the page file to its pre-batch state.
	p.undo = p.undo[:0]
	for _, id := range p.order {
		img, ok := p.pending[id]
		if !ok {
			continue
		}
		id := id
		old := make([]byte, p.inner.PageSize())
		if rerr := p.inner.ReadPage(id, old); rerr == nil {
			p.undo = append(p.undo, PageImage{ID: id, Data: old})
		}
		if err := p.retry(func() error { return p.inner.WritePage(id, img) }); err != nil {
			return err
		}
	}
	if err := p.retry(p.inner.Sync); err != nil {
		return err
	}
	p.undo = nil
	// The batch is durably applied: from here on the commit is a fact,
	// whatever happens to the log bookkeeping below. Advance the LSN and
	// drop the pending set before truncating, so a truncate failure can
	// never lead to this LSN being reused for a different batch — its
	// archived segment already exists and must stay authoritative. A
	// failed truncate is also harmless to correctness: the log still
	// holds this batch, and replaying it on the next open re-applies the
	// same images and re-archives the identical segment.
	p.pending = make(map[pagestore.PageID][]byte)
	p.order = p.order[:0]
	p.lsn = next
	if err := p.retry(func() error { return p.wal.Truncate(0) }); err != nil {
		return err
	}
	return p.retry(p.wal.Sync)
}

// Pending returns the number of uncommitted page writes (tests, stats).
func (p *Pager) Pending() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.pending)
}

// LSN returns the last committed batch's log sequence number. It counts
// from the archive high-water mark at open (plus any batch replayed by
// recovery), so with archiving enabled it is stable across reopens; without
// an archive directory it restarts at zero each open.
func (p *Pager) LSN() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.lsn
}

// DiscardPending abandons the current uncommitted batch: every buffered
// page write is dropped and the log file is truncated. Repair uses it on a
// degraded store — the dirty in-memory state is suspect, and the durable
// on-disk image is the salvage source of truth. Truncating matters as much
// as dropping the buffers: a failed commit can leave a complete batch in
// the log (durable, never applied, never reported committed), and replaying
// those pre-repair page images over a rebuilt store would corrupt it. The
// truncate is best-effort: if it fails, the next clean commit or reopen
// truncates the log anyway.
//
// With archiving enabled, discarding also removes any segment numbered
// above the last applied commit: a commit that failed between its log
// fsync and its page-file apply has already archived the batch's segment,
// and once the batch is abandoned here that segment names an LSN the store
// never committed — a restore replaying it would resurrect the rejected
// batch.
func (p *Pager) DiscardPending() {
	p.mu.Lock()
	defer p.mu.Unlock()
	// A commit that failed partway through its apply loop has overwritten
	// some (order-dependent) subset of the batch's pages. Abandoning the
	// batch means those pages must not keep their new images — a later
	// salvage could resurrect half of a rejected batch. Write the captured
	// before-images back, best-effort: if the disk is still failing, the
	// subsequent salvage works from whatever is readable, as before.
	if len(p.undo) > 0 {
		for _, u := range p.undo {
			_ = p.inner.WritePage(u.ID, u.Data)
		}
		_ = p.inner.Sync()
		p.undo = nil
	}
	p.pending = make(map[pagestore.PageID][]byte)
	p.order = p.order[:0]
	p.buf = p.buf[:0]
	if err := p.wal.Truncate(0); err == nil {
		_ = p.wal.Sync()
	}
	if p.archiveDir != "" {
		_ = DropSegmentsAbove(p.archiveDir, p.lsn)
	}
}

// Archiving reports whether committed batches are archived as segments (an
// ArchiveDir was configured). When true, LSN counts from the archive
// high-water mark and is stable across reopens — the property backup
// sidecars rely on to use their LSN as a roll-forward point.
func (p *Pager) Archiving() bool { return p.archiveDir != "" }

// ArchiveDir returns the segment archive directory ("" when not archiving).
func (p *Pager) ArchiveDir() string { return p.archiveDir }

// ArchiveStats reports the archive directory's segment count and total
// bytes on disk — retention pressure, surfaced by the store's Stats so
// operators see growth before the disk fills. Zeros when archiving is off
// or the directory cannot be read (stats must never fail an operation).
func (p *Pager) ArchiveStats() (segments int, bytes int64) {
	if p.archiveDir == "" {
		return 0, 0
	}
	segments, bytes, err := ArchiveUsage(p.archiveDir)
	if err != nil {
		return 0, 0
	}
	return segments, bytes
}

// Close commits outstanding writes and closes both files. If the commit
// fails, the pager still closes: pending pages are discarded and the log is
// left as-is on disk, so the next Open replays whatever batch (if any)
// became durable — never a half-applied state. The commit error is
// returned.
func (p *Pager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	cerr := p.commitLocked()
	p.closed = true
	p.pending = make(map[pagestore.PageID][]byte)
	p.order = nil
	werr := p.wal.Close()
	ierr := p.inner.Close()
	if cerr != nil {
		return cerr
	}
	if werr != nil {
		return werr
	}
	return ierr
}

// CloseWithoutCommit abandons pending writes (crash simulation in tests).
func (p *Pager) CloseWithoutCommit() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.wal.Close()
	return p.inner.Close()
}

// DumpWAL returns the raw log contents (tests).
func (p *Pager) DumpWAL() ([]byte, error) {
	if _, err := p.wal.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return io.ReadAll(p.wal)
}
