// Package wal adds write-ahead logging to the page store, making flushes
// atomic: a batch of page writes either reaches the page file completely or
// not at all, no matter where a crash lands.
//
// The protocol is physical page-image logging with batch commit:
//
//  1. WritePage appends the page image to the log buffer and holds the page
//     in a pending set (reads see pending pages);
//  2. Commit writes a terminator, fsyncs the log, applies the pending pages
//     to the page file, fsyncs it, and truncates the log;
//  3. recovery on open replays every *complete* batch found in the log (a
//     crash mid-apply re-applies; a crash mid-log discards the incomplete
//     batch) and truncates it.
//
// Every record carries a CRC so torn log writes are detected, and the
// terminator carries the batch page count so a torn batch is never
// replayed.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/pagestore"
)

// Log record types.
const (
	recPage   = 1
	recCommit = 2
)

// record layout: type(1) pageID(4) length(4) payload crc32(4)
// commit records have pageID = batch page count and empty payload.
const recHeader = 1 + 4 + 4

// Journal errors.
var (
	ErrClosed = errors.New("wal: journaled pager is closed")
)

// Pager wraps a FilePager with write-ahead logging. It implements
// pagestore.Pager; page writes are buffered until Commit.
type Pager struct {
	inner   *pagestore.FilePager
	walPath string
	wal     *os.File
	pending map[pagestore.PageID][]byte
	order   []pagestore.PageID
	buf     []byte
	closed  bool
}

// Open opens (creating if needed) a journaled page file. Any complete
// batches left in the sidecar log <path>.wal are replayed first.
func Open(path string, pageSize int) (*Pager, error) {
	walPath := path + ".wal"
	if err := recover_(path, walPath, pageSize); err != nil {
		return nil, err
	}
	inner, err := pagestore.OpenFilePager(path, pageSize)
	if err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		inner.Close()
		return nil, err
	}
	return &Pager{
		inner:   inner,
		walPath: walPath,
		wal:     wal,
		pending: make(map[pagestore.PageID][]byte),
	}, nil
}

// recover_ replays complete batches from the log into the page file.
func recover_(path, walPath string, pageSize int) error {
	data, err := os.ReadFile(walPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	if len(data) == 0 {
		return nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()

	type pageImage struct {
		id  pagestore.PageID
		img []byte
	}
	var batch []pageImage
	applied := false
	pos := 0
	for pos < len(data) {
		typ, id, payload, next, ok := readRecord(data, pos)
		if !ok {
			break // torn tail: discard the rest
		}
		pos = next
		switch typ {
		case recPage:
			if len(payload) != pageSize {
				return fmt.Errorf("wal: page image of %d bytes, page size %d", len(payload), pageSize)
			}
			batch = append(batch, pageImage{id: pagestore.PageID(id), img: payload})
		case recCommit:
			if int(id) != len(batch) {
				return fmt.Errorf("wal: commit names %d pages, batch has %d", id, len(batch))
			}
			for _, p := range batch {
				off := int64(p.id) * int64(pageSize)
				if _, err := f.WriteAt(p.img, off); err != nil {
					return err
				}
			}
			applied = true
			batch = batch[:0]
		default:
			return fmt.Errorf("wal: unknown record type %d", typ)
		}
	}
	if applied {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return os.Remove(walPath)
}

// readRecord parses one record at pos. ok=false on truncation or CRC
// mismatch (a torn write).
func readRecord(data []byte, pos int) (typ byte, id uint32, payload []byte, next int, ok bool) {
	if pos+recHeader > len(data) {
		return 0, 0, nil, 0, false
	}
	typ = data[pos]
	id = binary.LittleEndian.Uint32(data[pos+1:])
	length := int(binary.LittleEndian.Uint32(data[pos+5:]))
	end := pos + recHeader + length + 4
	if length < 0 || end > len(data) {
		return 0, 0, nil, 0, false
	}
	payload = data[pos+recHeader : pos+recHeader+length]
	want := binary.LittleEndian.Uint32(data[end-4:])
	if crc32.ChecksumIEEE(data[pos:end-4]) != want {
		return 0, 0, nil, 0, false
	}
	return typ, id, payload, end, true
}

func (p *Pager) appendRecord(typ byte, id uint32, payload []byte) {
	start := len(p.buf)
	p.buf = append(p.buf, typ)
	p.buf = binary.LittleEndian.AppendUint32(p.buf, id)
	p.buf = binary.LittleEndian.AppendUint32(p.buf, uint32(len(payload)))
	p.buf = append(p.buf, payload...)
	crc := crc32.ChecksumIEEE(p.buf[start:])
	p.buf = binary.LittleEndian.AppendUint32(p.buf, crc)
}

// PageSize implements pagestore.Pager.
func (p *Pager) PageSize() int { return p.inner.PageSize() }

// Allocate implements pagestore.Pager. Allocations go straight to the inner
// pager: an allocated-but-uncommitted page is harmless after a crash.
func (p *Pager) Allocate() (pagestore.PageID, error) {
	if p.closed {
		return pagestore.InvalidPage, ErrClosed
	}
	return p.inner.Allocate()
}

// ReadPage implements pagestore.Pager, seeing pending (uncommitted) writes.
func (p *Pager) ReadPage(id pagestore.PageID, buf []byte) error {
	if p.closed {
		return ErrClosed
	}
	if img, ok := p.pending[id]; ok {
		copy(buf, img)
		return nil
	}
	return p.inner.ReadPage(id, buf)
}

// WritePage implements pagestore.Pager: the write is logged and held
// pending until Commit.
func (p *Pager) WritePage(id pagestore.PageID, buf []byte) error {
	if p.closed {
		return ErrClosed
	}
	img, ok := p.pending[id]
	if !ok {
		img = make([]byte, p.inner.PageSize())
		p.pending[id] = img
		p.order = append(p.order, id)
	}
	copy(img, buf)
	return nil
}

// Free implements pagestore.Pager.
func (p *Pager) Free(id pagestore.PageID) error {
	if p.closed {
		return ErrClosed
	}
	delete(p.pending, id)
	return p.inner.Free(id)
}

// PageCount implements pagestore.Pager.
func (p *Pager) PageCount() int { return p.inner.PageCount() }

// Commit makes all pending page writes durable atomically: log, fsync,
// apply, fsync, truncate.
func (p *Pager) Commit() error {
	if p.closed {
		return ErrClosed
	}
	if len(p.pending) == 0 {
		return nil
	}
	p.buf = p.buf[:0]
	n := 0
	for _, id := range p.order {
		img, ok := p.pending[id]
		if !ok {
			continue // freed while pending
		}
		p.appendRecord(recPage, uint32(id), img)
		n++
	}
	p.appendRecord(recCommit, uint32(n), nil)
	if _, err := p.wal.WriteAt(p.buf, 0); err != nil {
		return err
	}
	if err := p.wal.Sync(); err != nil {
		return err
	}
	// Apply to the page file.
	for _, id := range p.order {
		img, ok := p.pending[id]
		if !ok {
			continue
		}
		if err := p.inner.WritePage(id, img); err != nil {
			return err
		}
	}
	if err := p.inner.Sync(); err != nil {
		return err
	}
	// The batch is durable in the main file: drop the log.
	if err := p.wal.Truncate(0); err != nil {
		return err
	}
	if err := p.wal.Sync(); err != nil {
		return err
	}
	p.pending = make(map[pagestore.PageID][]byte)
	p.order = p.order[:0]
	return nil
}

// Pending returns the number of uncommitted page writes (tests, stats).
func (p *Pager) Pending() int { return len(p.pending) }

// Close commits outstanding writes and closes both files.
func (p *Pager) Close() error {
	if p.closed {
		return nil
	}
	if err := p.Commit(); err != nil {
		return err
	}
	p.closed = true
	if err := p.wal.Close(); err != nil {
		return err
	}
	return p.inner.Close()
}

// CloseWithoutCommit abandons pending writes (crash simulation in tests).
func (p *Pager) CloseWithoutCommit() error {
	p.closed = true
	p.wal.Close()
	return p.inner.Close()
}

// DumpWAL returns the raw log contents (tests).
func (p *Pager) DumpWAL() ([]byte, error) {
	if _, err := p.wal.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return io.ReadAll(p.wal)
}
