// WAL segment archiving: every committed batch can be preserved as a
// numbered segment file, turning the log from a crash-recovery scratchpad
// into a replayable history. A base backup plus the segments after its LSN
// reconstruct the store at any archived commit — point-in-time restore.
//
// A segment holds exactly the batch's log bytes (page records plus the
// commit record), so the same parser validates both.
package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/pagestore"
)

// segmentSuffix names archived batch files: <16-hex-digit LSN>.seg.
const segmentSuffix = ".seg"

// SegmentFileName returns the archive file name for a commit LSN.
func SegmentFileName(lsn uint64) string {
	return fmt.Sprintf("%016x%s", lsn, segmentSuffix)
}

// MaxArchivedLSN scans an archive directory for the highest segment number.
// A missing directory reads as empty (LSN 0).
func MaxArchivedLSN(dir string) (uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	var max uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		lsn, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 16, 64)
		if err != nil {
			continue
		}
		if lsn > max {
			max = lsn
		}
	}
	return max, nil
}

// WriteSegment durably writes one batch's log bytes as segment `lsn`,
// creating the directory if needed. Rewriting an existing segment is fine:
// recovery re-archives replayed batches, and the bytes are identical.
// Besides the commit path, replication followers use it to keep a local
// copy of every segment they apply, so a promoted follower owns its whole
// point-in-time history.
func WriteSegment(dir string, lsn uint64, batch []byte, wrap func(File) File) error {
	return writeSegment(dir, lsn, batch, wrap)
}

func writeSegment(dir string, lsn uint64, batch []byte, wrap func(File) File) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, SegmentFileName(lsn))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var sf File = f
	if wrap != nil {
		sf = wrap(sf)
	}
	if _, err := sf.WriteAt(batch, 0); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Sync(); err != nil {
		sf.Close()
		return err
	}
	return sf.Close()
}

// DropSegmentsAbove removes every archived segment numbered above lsn: the
// debris of a discarded batch whose segment was written (the archive step
// runs right after the log fsync) before its page-file apply failed. The
// archive is restore's ground truth, so a segment for a never-committed
// LSN must not survive the discard. Removal failures are reported but the
// sweep continues; a missing directory is an empty archive.
func DropSegmentsAbove(dir string, lsn uint64) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var first error
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 16, 64)
		if err != nil {
			continue
		}
		if n > lsn {
			if rerr := os.Remove(filepath.Join(dir, name)); rerr != nil && first == nil {
				first = rerr
			}
		}
	}
	return first
}

// SegmentInfo describes one archived segment file.
type SegmentInfo struct {
	LSN   uint64
	Bytes int64
	Name  string
}

// Segments lists the archived segments in dir. A missing directory reads
// as an empty archive. Non-segment files are ignored.
//
// The result is guaranteed strictly ordered: sorted by LSN ascending with
// no duplicates, whatever order the filesystem returned the directory
// entries in — tailing consumers (replication followers, restore) rely on
// out[i].LSN < out[i+1].LSN to apply segments in commit order. Two
// differently-named files parsing to the same LSN (a hand-renamed
// "1.seg" next to the canonical zero-padded name, say) make the archive
// ambiguous — which bytes are commit 1? — so Segments fails instead of
// letting a consumer pick one arbitrarily. Ordering says nothing about
// contiguity: use Contiguous to clip a listing to the gap-free run a
// tailing consumer may safely apply.
func Segments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []SegmentInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		lsn, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 16, 64)
		if err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		out = append(out, SegmentInfo{LSN: lsn, Bytes: info.Size(), Name: name})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LSN < out[j].LSN })
	for i := 1; i < len(out); i++ {
		if out[i].LSN == out[i-1].LSN {
			return nil, fmt.Errorf("wal: archive %s: segments %s and %s both claim LSN %d",
				dir, out[i-1].Name, out[i].Name, out[i].LSN)
		}
	}
	return out, nil
}

// SegmentsAfter lists the archived segments with LSN strictly greater than
// after, sorted ascending — the poll primitive of the segment-watch API a
// replication follower tails the archive with. The same ordering and
// no-duplicate guarantees as Segments apply.
func SegmentsAfter(dir string, after uint64) ([]SegmentInfo, error) {
	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	i := sort.Search(len(segs), func(i int) bool { return segs[i].LSN > after })
	return segs[i:], nil
}

// Contiguous clips a sorted segment listing to the longest prefix forming
// the gap-free run after+1, after+2, ... — the segments a tailing consumer
// may apply in order without skipping a commit. An empty result with a
// non-empty input means the next needed segment (after+1) is not present:
// either it has not been archived yet, or it was pruned and the consumer
// has fallen off the retained history.
func Contiguous(segs []SegmentInfo, after uint64) []SegmentInfo {
	next := after + 1
	for i, s := range segs {
		if s.LSN != next {
			return segs[:i]
		}
		next++
	}
	return segs
}

// ArchiveUsage totals the archive directory: segment count and bytes on
// disk. Operators watch this to see retention pressure before the disk
// fills; it is surfaced through Store.Stats.
func ArchiveUsage(dir string) (segments int, bytes int64, err error) {
	segs, err := Segments(dir)
	if err != nil {
		return 0, 0, err
	}
	for _, s := range segs {
		bytes += s.Bytes
	}
	return len(segs), bytes, nil
}

// PruneSegmentsBelow removes every archived segment with LSN strictly below
// keepFrom, returning how many segments and bytes were reclaimed. Segments
// at or above keepFrom are untouched. The caller is responsible for picking
// a safe keepFrom — a base backup at LSN B needs the segments above B to
// roll forward, so keepFrom must not exceed B+1 (the CLI's prune command
// enforces this against backup sidecars). A missing directory is an empty
// archive. Removal stops at the first error, reporting what was reclaimed
// up to that point.
func PruneSegmentsBelow(dir string, keepFrom uint64) (removed int, bytes int64, err error) {
	segs, err := Segments(dir)
	if err != nil {
		return 0, 0, err
	}
	for _, s := range segs {
		if s.LSN >= keepFrom {
			break
		}
		if rerr := os.Remove(filepath.Join(dir, s.Name)); rerr != nil {
			return removed, bytes, rerr
		}
		removed++
		bytes += s.Bytes
	}
	return removed, bytes, nil
}

// PageImage is one page write recovered from a segment or log.
type PageImage struct {
	ID   pagestore.PageID
	Data []byte
}

// ReadSegment parses one archived segment file: its page images and the
// commit LSN it carries. A torn, truncated or multi-batch segment is an
// error — segments are written whole and fsynced, so damage means the
// archive cannot be trusted for restore.
func ReadSegment(path string, pageSize int) ([]PageImage, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return ParseSegment(filepath.Base(path), data, pageSize)
}

// ParseSegment validates raw segment bytes (as fetched by a replication
// transport, which may not have a local file to point ReadSegment at) and
// returns the page images and commit LSN. name labels errors. Every record
// CRC is checked and exactly one complete batch must be present; a short
// or torn fetch therefore fails here rather than applying half a commit.
func ParseSegment(name string, data []byte, pageSize int) ([]PageImage, uint64, error) {
	var pages []PageImage
	pos := 0
	for pos < len(data) {
		typ, id, payload, next, ok := readRecord(data, pos)
		if !ok {
			return nil, 0, fmt.Errorf("wal: segment %s: torn record at offset %d", name, pos)
		}
		switch typ {
		case recPage:
			if len(payload) != pageSize {
				return nil, 0, fmt.Errorf("wal: segment %s: page image of %d bytes, page size %d", name, len(payload), pageSize)
			}
			pages = append(pages, PageImage{ID: pagestore.PageID(id), Data: payload})
		case recCommit:
			if int(id) != len(pages) {
				return nil, 0, fmt.Errorf("wal: segment %s: commit names %d pages, segment has %d", name, id, len(pages))
			}
			if next != len(data) {
				return nil, 0, fmt.Errorf("wal: segment %s: %d trailing bytes after commit", name, len(data)-next)
			}
			var lsn uint64
			if len(payload) == 8 {
				lsn = binary.LittleEndian.Uint64(payload)
			}
			return pages, lsn, nil
		default:
			return nil, 0, fmt.Errorf("wal: segment %s: unknown record type %d", name, typ)
		}
		pos = next
	}
	return nil, 0, fmt.Errorf("wal: segment %s: no commit record", name)
}

// ParseLog scans raw sidecar-log bytes and overlays the page images of
// every complete batch (later batches win), returning the overlay and the
// last commit LSN seen. Torn tails are silently discarded, mirroring
// recovery. Online backup uses this to apply the "WAL barrier": a shared-
// lock reader folds in batches a concurrent writer has made durable but not
// yet applied to the page file.
func ParseLog(data []byte, pageSize int) (map[pagestore.PageID][]byte, uint64, error) {
	overlay := make(map[pagestore.PageID][]byte)
	var batch []PageImage
	var lastLSN uint64
	pos := 0
	for pos < len(data) {
		typ, id, payload, next, ok := readRecord(data, pos)
		if !ok {
			break
		}
		switch typ {
		case recPage:
			if len(payload) != pageSize {
				return nil, 0, fmt.Errorf("wal: page image of %d bytes, page size %d", len(payload), pageSize)
			}
			batch = append(batch, PageImage{ID: pagestore.PageID(id), Data: payload})
		case recCommit:
			if int(id) != len(batch) {
				return nil, 0, fmt.Errorf("wal: commit names %d pages, batch has %d", id, len(batch))
			}
			for _, p := range batch {
				img := make([]byte, pageSize)
				copy(img, p.Data)
				overlay[p.ID] = img
			}
			if len(payload) == 8 {
				if lsn := binary.LittleEndian.Uint64(payload); lsn > lastLSN {
					lastLSN = lsn
				}
			}
			batch = batch[:0]
		default:
			return nil, 0, fmt.Errorf("wal: unknown record type %d", typ)
		}
		pos = next
	}
	return overlay, lastLSN, nil
}
