// The segment-watch API a replication follower tails the archive with:
// strict listing order, duplicate-LSN refusal, the contiguity clip, and
// raw-byte validation via ParseSegment.
package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSegmentsRejectsDuplicateLSNs pins the ambiguity check: two
// differently-named files that both parse to the same LSN make "which
// bytes are commit 1?" unanswerable, so the listing must fail rather than
// pick one.
func TestSegmentsRejectsDuplicateLSNs(t *testing.T) {
	dir := t.TempDir()
	writeFakeSegment(t, dir, 1, 10)
	// A hand-renamed, non-zero-padded alias of the same LSN.
	if err := os.WriteFile(filepath.Join(dir, "1.seg"), make([]byte, 20), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Segments(dir); err == nil {
		t.Fatal("Segments accepted two files claiming the same LSN")
	} else if !strings.Contains(err.Error(), "LSN 1") {
		t.Fatalf("duplicate error does not name the LSN: %v", err)
	}
	if _, err := SegmentsAfter(dir, 0); err == nil {
		t.Fatal("SegmentsAfter accepted a duplicate-LSN archive")
	}
}

// TestSegmentsAfter pins the poll primitive: strictly-greater filtering on
// an ordered listing.
func TestSegmentsAfter(t *testing.T) {
	dir := t.TempDir()
	for _, lsn := range []uint64{5, 2, 9, 3} {
		writeFakeSegment(t, dir, lsn, int(lsn))
	}
	cases := []struct {
		after uint64
		want  []uint64
	}{
		{0, []uint64{2, 3, 5, 9}},
		{2, []uint64{3, 5, 9}},
		{4, []uint64{5, 9}},
		{9, nil},
		{100, nil},
	}
	for _, c := range cases {
		segs, err := SegmentsAfter(dir, c.after)
		if err != nil {
			t.Fatalf("SegmentsAfter(%d): %v", c.after, err)
		}
		if len(segs) != len(c.want) {
			t.Fatalf("SegmentsAfter(%d) = %d entries, want %d", c.after, len(segs), len(c.want))
		}
		for i, w := range c.want {
			if segs[i].LSN != w {
				t.Fatalf("SegmentsAfter(%d)[%d].LSN = %d, want %d", c.after, i, segs[i].LSN, w)
			}
		}
	}
}

// TestContiguous pins the gap clip a follower applies before touching any
// segment: only the unbroken run after+1, after+2, ... is safe to apply.
func TestContiguous(t *testing.T) {
	mk := func(lsns ...uint64) []SegmentInfo {
		out := make([]SegmentInfo, len(lsns))
		for i, l := range lsns {
			out[i] = SegmentInfo{LSN: l}
		}
		return out
	}
	cases := []struct {
		name  string
		segs  []SegmentInfo
		after uint64
		want  int
	}{
		{"empty", nil, 0, 0},
		{"full run", mk(1, 2, 3), 0, 3},
		{"gap mid-run", mk(1, 2, 4, 5), 0, 2},
		{"missing head", mk(2, 3), 0, 0},
		{"resume mid-history", mk(4, 5, 7), 3, 2},
		{"resume at gap", mk(5, 6), 3, 0},
	}
	for _, c := range cases {
		got := Contiguous(c.segs, c.after)
		if len(got) != c.want {
			t.Errorf("%s: Contiguous = %d segments, want %d", c.name, len(got), c.want)
		}
		for i, s := range got {
			if s.LSN != c.after+1+uint64(i) {
				t.Errorf("%s: run[%d].LSN = %d, breaks contiguity", c.name, i, s.LSN)
			}
		}
	}
}

// TestParseSegmentValidatesRawBytes pins transport-side validation: a real
// archived segment round-trips through ParseSegment, and every torn,
// truncated or padded variant of its bytes is refused.
func TestParseSegmentValidatesRawBytes(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "s.db")
	arch := filepath.Join(dir, "arch")
	const ps = 512

	p, err := OpenWithOptions(db, ps, Options{ArchiveDir: arch})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ps)
	for i := range buf {
		buf[i] = byte(i)
	}
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	name := SegmentFileName(1)
	data, err := os.ReadFile(filepath.Join(arch, name))
	if err != nil {
		t.Fatal(err)
	}

	pages, lsn, err := ParseSegment(name, data, ps)
	if err != nil {
		t.Fatalf("ParseSegment on intact bytes: %v", err)
	}
	if lsn != 1 {
		t.Fatalf("segment LSN = %d, want 1", lsn)
	}
	if len(pages) == 0 {
		t.Fatal("segment parsed to zero page images")
	}

	// Torn fetch: every proper prefix must fail (a transport under
	// concurrent shipping returns exactly these).
	for _, cut := range []int{0, 1, len(data) / 2, len(data) - 1} {
		if _, _, err := ParseSegment(name, data[:cut], ps); err == nil {
			t.Errorf("ParseSegment accepted a %d/%d-byte torn prefix", cut, len(data))
		}
	}
	// Trailing garbage after the commit record.
	if _, _, err := ParseSegment(name, append(append([]byte{}, data...), 0xAB), ps); err == nil {
		t.Error("ParseSegment accepted trailing bytes after the commit")
	}
	// A flipped byte in a record body breaks that record's CRC.
	bad := append([]byte{}, data...)
	bad[len(bad)/2] ^= 0xFF
	if _, _, err := ParseSegment(name, bad, ps); err == nil {
		t.Error("ParseSegment accepted a corrupted record")
	}
	// Wrong page size: the page image length no longer matches.
	if _, _, err := ParseSegment(name, data, ps*2); err == nil {
		t.Error("ParseSegment accepted a segment under the wrong page size")
	}
}
