package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func TestEpochManifestMissingDefaultsToEpochOne(t *testing.T) {
	dir := t.TempDir()
	entries, err := ReadEpochs(dir)
	if err != nil {
		t.Fatalf("ReadEpochs: %v", err)
	}
	if len(entries) != 1 || entries[0].Epoch != 1 || entries[0].FromLSN != 1 {
		t.Fatalf("default manifest = %+v, want [{1 1}]", entries)
	}
	e, err := CurrentEpoch(dir)
	if err != nil || e != 1 {
		t.Fatalf("CurrentEpoch = %d, %v; want 1", e, err)
	}
	e, err = SegmentEpoch(dir, 42)
	if err != nil || e != 1 {
		t.Fatalf("SegmentEpoch(42) = %d, %v; want 1", e, err)
	}
}

func TestEpochManifestAppendAndLookup(t *testing.T) {
	dir := t.TempDir()
	// Promotion at epoch 2 starting from LSN 10, epoch 5 from LSN 25.
	if err := AppendEpoch(dir, 2, 10); err != nil {
		t.Fatalf("AppendEpoch(2,10): %v", err)
	}
	if err := AppendEpoch(dir, 5, 25); err != nil {
		t.Fatalf("AppendEpoch(5,25): %v", err)
	}
	e, err := CurrentEpoch(dir)
	if err != nil || e != 5 {
		t.Fatalf("CurrentEpoch = %d, %v; want 5", e, err)
	}
	for _, tc := range []struct{ lsn, want uint64 }{
		{1, 1}, {9, 1}, {10, 2}, {24, 2}, {25, 5}, {1000, 5},
	} {
		got, err := SegmentEpoch(dir, tc.lsn)
		if err != nil {
			t.Fatalf("SegmentEpoch(%d): %v", tc.lsn, err)
		}
		if got != tc.want {
			t.Errorf("SegmentEpoch(%d) = %d, want %d", tc.lsn, got, tc.want)
		}
	}
}

func TestEpochManifestAppendIdempotentAndMonotonic(t *testing.T) {
	dir := t.TempDir()
	if err := AppendEpoch(dir, 3, 7); err != nil {
		t.Fatalf("AppendEpoch: %v", err)
	}
	// Exact duplicate of the tail: promotion retry, no-op.
	if err := AppendEpoch(dir, 3, 7); err != nil {
		t.Fatalf("idempotent AppendEpoch: %v", err)
	}
	entries, err := ReadEpochs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("manifest = %+v, want 2 entries", entries)
	}
	// Non-increasing epoch or regressing LSN: refused.
	if err := AppendEpoch(dir, 3, 9); err == nil {
		t.Fatal("want error appending same epoch with different LSN")
	}
	if err := AppendEpoch(dir, 2, 9); err == nil {
		t.Fatal("want error appending lower epoch")
	}
	if err := AppendEpoch(dir, 9, 3); err == nil {
		t.Fatal("want error appending regressing LSN")
	}
}

func TestEpochManifestRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, EpochManifestName)
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEpochs(dir); err == nil {
		t.Fatal("want error for corrupt manifest")
	}
	// Out-of-order entries are rejected too.
	if err := os.WriteFile(path, []byte(`[{"epoch":5,"from_lsn":9},{"epoch":2,"from_lsn":3}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEpochs(dir); err == nil {
		t.Fatal("want error for out-of-order manifest")
	}
	// Single-column regressions and duplicates must be rejected as well —
	// a corruption where only one column decreases (or repeats) would make
	// SegmentEpoch report wrong provenance if waved through.
	for _, bad := range []string{
		`[{"epoch":2,"from_lsn":10},{"epoch":1,"from_lsn":20}]`, // epoch regresses, LSN advances
		`[{"epoch":1,"from_lsn":20},{"epoch":2,"from_lsn":10}]`, // LSN regresses, epoch advances
		`[{"epoch":2,"from_lsn":10},{"epoch":2,"from_lsn":20}]`, // duplicate epoch
		`[{"epoch":2,"from_lsn":10},{"epoch":3,"from_lsn":10}]`, // duplicate LSN
	} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadEpochs(dir); err == nil {
			t.Fatalf("want error for manifest %s", bad)
		}
	}
}
