package wal_test

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/pagestore"
	"repro/internal/wal"
	"repro/internal/xmltok"
)

// End-to-end: the XML store on a journaled pager survives a crash between
// flushes with the last flushed state intact. Lives in an external test
// package: it pulls in core, which depends on the recovery layer, which
// depends on this package.
func TestStoreCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	jp, err := wal.Open(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Open(core.Config{Mode: core.RangeOnly, PageSize: 2048, Pager: jp})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(xmltok.MustParse(`<doc><stable/></doc>`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil { // durable point
		t.Fatal(err)
	}
	want, _ := s.XMLString()
	// More work after the flush...
	if _, err := s.InsertIntoLast(1, xmltok.MustParseFragment(`<lost/>`)); err != nil {
		t.Fatal(err)
	}
	// ...then crash: no flush, no commit.
	jp.CloseWithoutCommit()

	jp2, err := wal.Open(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := core.Reopen(core.Config{Mode: core.RangeOnly, PageSize: 2048}, jp2, pagestore.PageID(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.XMLString()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("after crash:\n got %s\nwant %s", got, want)
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// The recovered store accepts new work.
	if _, err := s2.InsertIntoLast(1, xmltok.MustParseFragment(`<recovered/>`)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
}
