// Package failover closes the last human loop in the serving fleet: when
// the primary dies, a follower promotes itself — safely.
//
// The protocol is a lease-based failure detector plus a quorum election,
// with epoch fencing making split-brain impossible rather than unlikely:
//
//   - The primary heartbeats an epoch-stamped lease to every fleet member.
//     It may accept writes only while a quorum acked its lease within the
//     validity window; a partitioned primary therefore fences its own
//     writes before anyone else can be elected.
//   - Followers run a timeout-with-suspicion detector: a missed lease
//     raises suspicion, and only sustained silence triggers an election —
//     one slow heartbeat never deposes a healthy leader.
//   - An election proposes epoch+1. A voter grants at most one candidacy
//     per epoch (durably, surviving kill -9), refuses while its leader's
//     lease is still fresh, and refuses candidates behind its own applied
//     LSN (ties broken toward the lower node ID) — so the quorum winner is
//     the best-positioned candidate. Granting a vote is also a promise to
//     stop acking the old leader's lease; by quorum intersection the old
//     primary's lease has lapsed before the winner can have won.
//   - The winner drains whatever segments remain reachable, promotes via
//     the server's existing promotion path under the new epoch, and starts
//     heartbeating. The new epoch is persisted in the term file, the
//     replica sidecar, and the WAL archive's epoch manifest.
//   - Every write and segment-ship frame carries an epoch stamp; a node or
//     client presenting a stale epoch gets a typed ErrFenced. A node that
//     was primary at a lower epoch latches Fenced durably the moment it
//     learns of its successor: a resurrected old primary can neither
//     accept writes (no quorum will ack its lease) nor ship segments.
//
// Timing assumption: leases trade clock-rate skew for availability, as
// every lease system does. The validity window the leader enforces on
// itself is one interval shorter than the timeout voters enforce, so
// modest skew is absorbed; wildly broken clocks are out of scope.
package failover

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
)

// ErrFenced is the typed refusal every stale-epoch presenter gets: a
// write or segment-ship request stamped with the wrong epoch, a write on
// a primary whose lease lapsed, any operation on a node that has been
// superseded. Not retryable against the same node — fleet clients
// rediscover the current primary instead.
var ErrFenced = errors.New("failover: stale epoch — fenced")

func init() {
	core.RegisterErrCode(core.CodeFenced, ErrFenced, false)
}

// MaxEpochJump bounds how far a single remote message may advance this
// node's view of the established (or promised) epoch. Epochs move by one
// per leadership change, and even a fleet thrashing through contested
// elections advances a handful per round — so a jump of tens of
// thousands is not a fleet state, it is corruption or a hostile frame.
// Without the bound, one LEASE frame carrying epoch 2^64-1 would durably
// latch Fenced on a healthy primary (adoptLocked), and one VOTE frame
// could inflate VotedEpoch so a later candidacy's VotedEpoch+1 overflows
// to zero and wedges the fleet. Implausible jumps are refused without
// adopting anything; the sender, if honest, retries and converges.
const MaxEpochJump = 1 << 16

// plausibleJumpLocked reports whether adopting epoch is a sane move from
// the current term. Callers hold c.mu and have established
// epoch > c.term.Epoch.
func (c *Coordinator) plausibleJumpLocked(epoch uint64) bool {
	return epoch-c.term.Epoch <= MaxEpochJump
}

// Peer is one fleet member. The fleet list, including the local node,
// must be identical on every member — quorum arithmetic depends on it.
type Peer struct {
	ID   string
	Addr string
}

// Config tunes one node's coordinator.
type Config struct {
	// NodeID is this node's identity; it must appear in Peers.
	NodeID string
	// Peers is the whole fleet, self included.
	Peers []Peer
	// TermPath is where the durable term state lives (epoch, vote promise,
	// fence latch). Required.
	TermPath string
	// LeaseInterval is the heartbeat period. Default 500ms.
	LeaseInterval time.Duration
	// LeaseTimeout is how long a follower waits past the last lease before
	// suspecting the leader, and how long a voter protects a quiet leader.
	// Default 4x LeaseInterval.
	LeaseTimeout time.Duration
	// SuspectTicks is how many consecutive detector ticks past LeaseTimeout
	// must accumulate before an election starts. Default 2.
	SuspectTicks int
	// Quorum overrides the vote/ack threshold. 0 means majority of the
	// fleet: len(Peers)/2 + 1.
	Quorum int
	// PromoteBudget bounds the drain-and-promote step after a won
	// election. A bigger budget lets a lagging winner drain more of the
	// dead primary's reachable segments before reopening read-write; it
	// extends unavailability, never unsafety (fencing is epoch-based, and
	// a vote granted to the winner keeps rivals out regardless of how long
	// the promotion takes). Default 10x LeaseTimeout.
	PromoteBudget time.Duration
	// Logf receives protocol events. Nil discards.
	Logf func(format string, args ...any)
}

// Node is the coordinator's view of the server it runs inside. All
// methods must be safe for concurrent use.
type Node interface {
	// Role reports "primary" or "replica" — the serving role right now,
	// reflecting completed promotions.
	Role() string
	// AppliedLSN is the node's replication position (a primary reports its
	// archived position).
	AppliedLSN() uint64
	// Promote drains what remains reachable and promotes the node to
	// primary under the given epoch. Called only after a won election.
	Promote(ctx context.Context, epoch uint64) error
	// ObserveEpoch mirrors a newly established epoch into the node's own
	// durable state (the replica sidecar). Best-effort; the term file is
	// the coordinator's source of truth.
	ObserveEpoch(epoch uint64)
}

// PeerClient carries the two protocol messages to a fleet member.
type PeerClient interface {
	Lease(ctx context.Context, addr string, req LeaseRequest) (LeaseReply, error)
	RequestVote(ctx context.Context, addr string, req VoteRequest) (VoteReply, error)
}

// LeaseRequest is the primary's heartbeat.
type LeaseRequest struct {
	Epoch    uint64
	LeaderID string
	LSN      uint64
}

// LeaseReply is a fleet member's answer. OK means the member accepts this
// leader for this epoch and the lease counts toward quorum; !OK with a
// higher Epoch tells a stale leader it has been superseded.
type LeaseReply struct {
	Epoch uint64
	OK    bool
}

// VoteRequest is a candidate's solicitation for epoch (its current + 1).
type VoteRequest struct {
	Epoch       uint64
	CandidateID string
	LSN         uint64
}

// VoteReply reports the voter's decision and position. VotedEpoch is the
// voter's highest granted epoch — a refused candidate uses it to jump its
// next proposal past the voter's promise instead of leapfrogging one
// epoch at a time against a rival candidate.
type VoteReply struct {
	Granted    bool
	Epoch      uint64
	VotedEpoch uint64
	VoterID    string
	VoterLSN   uint64
}

// Status is a point-in-time snapshot for stats and health surfaces.
type Status struct {
	NodeID     string `json:"node_id"`
	Role       string `json:"role"`
	Epoch      uint64 `json:"epoch"`
	VotedEpoch uint64 `json:"voted_epoch"`
	Fenced     bool   `json:"fenced"`
	LeaderID   string `json:"leader_id,omitempty"`
	// LeaseAgeMs: for a leader, time since the last quorum ack; for a
	// follower, time since the last accepted lease. -1 before the first.
	LeaseAgeMs  int64  `json:"lease_age_ms"`
	Suspicion   int    `json:"suspicion"`
	Elections   uint64 `json:"elections"`
	LeaseRounds uint64 `json:"lease_rounds"`
}

// Coordinator runs the failover protocol for one node. Create with New,
// wire its OnLease/OnVote into the server's dispatch and its CheckWrite/
// CheckShip into the data path, then Start it.
type Coordinator struct {
	cfg    Config
	node   Node
	peers  PeerClient
	others []Peer

	mu           sync.Mutex
	term         TermState
	leaderID     string
	lastLease    time.Time // follower: last accepted heartbeat
	lastQuorum   time.Time // leader: last quorum ack
	haveQuorum   bool
	suspicion    int
	nextElection time.Time
	elections    uint64
	leaseRounds  uint64
	votedFor     string    // who the VotedEpoch grant went to ("?" = unknown, pre-restart)
	voteTime     time.Time // when the grant was made (promise window anchor)

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New validates the config, loads (or initializes) the durable term state,
// and returns a stopped coordinator.
func New(cfg Config, node Node, peers PeerClient) (*Coordinator, error) {
	if cfg.NodeID == "" {
		return nil, errors.New("failover: NodeID required")
	}
	if cfg.TermPath == "" {
		return nil, errors.New("failover: TermPath required")
	}
	if cfg.LeaseInterval <= 0 {
		cfg.LeaseInterval = 500 * time.Millisecond
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 4 * cfg.LeaseInterval
	}
	if cfg.LeaseTimeout <= cfg.LeaseInterval {
		return nil, fmt.Errorf("failover: LeaseTimeout %v must exceed LeaseInterval %v", cfg.LeaseTimeout, cfg.LeaseInterval)
	}
	if cfg.SuspectTicks <= 0 {
		cfg.SuspectTicks = 2
	}
	if cfg.PromoteBudget <= 0 {
		cfg.PromoteBudget = 10 * cfg.LeaseTimeout
	}
	var others []Peer
	self := false
	seen := map[string]bool{}
	for _, p := range cfg.Peers {
		if p.ID == "" {
			return nil, errors.New("failover: peer with empty ID")
		}
		if seen[p.ID] {
			return nil, fmt.Errorf("failover: duplicate peer ID %q", p.ID)
		}
		seen[p.ID] = true
		if p.ID == cfg.NodeID {
			self = true
			continue
		}
		others = append(others, p)
	}
	if len(cfg.Peers) > 0 && !self {
		return nil, fmt.Errorf("failover: NodeID %q not in fleet list", cfg.NodeID)
	}
	term, err := loadTerm(cfg.TermPath)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:    cfg,
		node:   node,
		peers:  peers,
		others: others,
		term:   term,
		// Startup grace: give an existing leader one full timeout to reach
		// us before the detector can suspect anything.
		lastLease: time.Now(),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if term.VotedEpoch > term.Epoch {
		// We granted a vote before a crash and don't know to whom or when.
		// Treat the promise as live from startup: conservative, and the
		// window is bounded, so no permanent livelock.
		c.votedFor = "?"
		c.voteTime = time.Now()
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf("failover["+c.cfg.NodeID+"]: "+format, args...)
	}
}

func (c *Coordinator) quorum() int {
	if c.cfg.Quorum > 0 {
		return c.cfg.Quorum
	}
	n := len(c.cfg.Peers)
	if n == 0 {
		n = 1
	}
	return n/2 + 1
}

// leaseValidity is the window the leader enforces on itself — one
// interval shorter than the timeout voters enforce, so the leader always
// fences its own writes before any voter would depose it.
func (c *Coordinator) leaseValidity() time.Duration {
	v := c.cfg.LeaseTimeout - c.cfg.LeaseInterval
	if v < c.cfg.LeaseTimeout/2 {
		v = c.cfg.LeaseTimeout / 2
	}
	return v
}

// promiseWindow bounds how long a vote grant nacks the incumbent's lease:
// long enough to cover the candidate's election round (rpcTimeout) plus
// its promotion budget (LeaseTimeout), after which an unestablished
// candidacy is dead and resuming acks to a live leader is safe. Without
// the bound, a partitioned node that inflated its VotedEpoch through
// failed self-elections would nack the healthy leader forever.
func (c *Coordinator) promiseWindow() time.Duration {
	return 2 * c.cfg.LeaseTimeout
}

// promiseActiveLocked reports whether a vote grant currently obliges us to
// nack a lease at the given epoch. A self-vote never does: receiving a
// live leader's lease just means our own candidacy lost — we abandon it
// (the election path re-checks lastLease before promoting) rather than
// deadlock the fleet. Callers hold c.mu.
func (c *Coordinator) promiseActiveLocked(leaseEpoch uint64) bool {
	if c.term.VotedEpoch <= leaseEpoch {
		return false
	}
	if c.votedFor == c.cfg.NodeID {
		return false
	}
	return time.Since(c.voteTime) <= c.promiseWindow()
}

func (c *Coordinator) rpcTimeout() time.Duration {
	t := c.cfg.LeaseTimeout / 2
	if t < 50*time.Millisecond {
		t = 50 * time.Millisecond
	}
	return t
}

func (c *Coordinator) leading() bool { return c.node.Role() == "primary" }

// Start launches the protocol loop. The first round runs immediately, so
// a sole healthy primary holds its lease within one RPC round trip of
// startup rather than one full interval.
func (c *Coordinator) Start() {
	c.startOnce.Do(func() { go c.run() })
}

// Close stops the loop. It does not unfence or otherwise mutate state.
func (c *Coordinator) Close() error {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.startOnce.Do(func() { close(c.done) }) // never started: mark done
	<-c.done
	return nil
}

func (c *Coordinator) run() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.LeaseInterval)
	defer t.Stop()
	c.step()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.step()
		}
	}
}

func (c *Coordinator) step() {
	if c.Fenced() {
		return
	}
	if c.leading() {
		c.leaseRound()
	} else {
		c.detect()
	}
}

// leaseRound broadcasts the heartbeat and tallies acks. Self counts: a
// single-node fleet holds its own lease.
func (c *Coordinator) leaseRound() {
	c.mu.Lock()
	epoch := c.term.Epoch
	c.leaseRounds++
	c.mu.Unlock()
	lsn := c.node.AppliedLSN()

	// The validity window must be anchored at the round's START: voters
	// record lastLease at receipt, which is up to one RPC timeout before
	// wg.Wait() returns. Anchoring after the wait would start the leader's
	// self-enforced clock later than every voter's timeout clock and eat
	// the one-interval safety margin — a partitioned primary could still
	// pass CheckWrite while its successor is being elected.
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), c.rpcTimeout())
	defer cancel()
	var (
		tally   sync.Mutex
		acks    = 1
		maxSeen uint64
		wg      sync.WaitGroup
	)
	for _, p := range c.others {
		wg.Add(1)
		go func(p Peer) {
			defer wg.Done()
			rep, err := c.peers.Lease(ctx, p.Addr, LeaseRequest{Epoch: epoch, LeaderID: c.cfg.NodeID, LSN: lsn})
			if err != nil {
				return
			}
			tally.Lock()
			defer tally.Unlock()
			if rep.Epoch > maxSeen {
				maxSeen = rep.Epoch
			}
			if rep.OK {
				acks++
			}
		}(p)
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	if maxSeen > c.term.Epoch {
		if !c.plausibleJumpLocked(maxSeen) {
			c.logf("ignoring implausible epoch %d in lease ack (at %d)", maxSeen, c.term.Epoch)
			return
		}
		c.adoptLocked(maxSeen) // superseded: this latches Fenced for a leader
		return
	}
	if acks >= c.quorum() {
		if start.After(c.lastQuorum) {
			c.lastQuorum = start
		}
		c.haveQuorum = true
	}
}

// detect is the follower-side failure detector: timeout raises suspicion,
// sustained suspicion triggers an election.
func (c *Coordinator) detect() {
	c.mu.Lock()
	if c.term.Fenced {
		c.mu.Unlock()
		return
	}
	if time.Since(c.lastLease) <= c.cfg.LeaseTimeout {
		c.suspicion = 0
		c.mu.Unlock()
		return
	}
	c.suspicion++
	if c.suspicion < c.cfg.SuspectTicks || time.Now().Before(c.nextElection) {
		c.mu.Unlock()
		return
	}
	// Vote for self, durably, before soliciting anyone — a crash mid-
	// election must not let this node grant the same epoch elsewhere.
	proposed := c.term.Epoch + 1
	if c.term.VotedEpoch >= proposed {
		proposed = c.term.VotedEpoch + 1
	}
	c.term.VotedEpoch = proposed
	c.votedFor = c.cfg.NodeID
	c.voteTime = time.Now()
	if err := saveTerm(c.cfg.TermPath, c.term); err != nil {
		c.logf("cannot persist candidacy: %v", err)
		c.mu.Unlock()
		return
	}
	c.elections++
	// Randomized retry spacing decorrelates rival candidates.
	c.nextElection = time.Now().Add(c.cfg.LeaseInterval +
		time.Duration(rand.Int63n(int64(c.cfg.LeaseTimeout))))
	c.mu.Unlock()

	c.runElection(proposed)
}

func (c *Coordinator) runElection(proposed uint64) {
	lsn := c.node.AppliedLSN()
	c.logf("election: proposing epoch %d at LSN %d", proposed, lsn)
	// Same anchoring rule as leaseRound: a won election doubles as the
	// first lease quorum, and voters started their timeout clocks at
	// grant receipt — before the RPC fan-out returned.
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), c.rpcTimeout())
	var (
		tally    sync.Mutex
		granted  = 1
		maxSeen  uint64
		maxVoted uint64
		wg       sync.WaitGroup
	)
	for _, p := range c.others {
		wg.Add(1)
		go func(p Peer) {
			defer wg.Done()
			rep, err := c.peers.RequestVote(ctx, p.Addr, VoteRequest{Epoch: proposed, CandidateID: c.cfg.NodeID, LSN: lsn})
			if err != nil {
				return
			}
			tally.Lock()
			defer tally.Unlock()
			if rep.Epoch > maxSeen {
				maxSeen = rep.Epoch
			}
			if rep.VotedEpoch > maxVoted {
				maxVoted = rep.VotedEpoch
			}
			if rep.Granted {
				granted++
			}
		}(p)
	}
	wg.Wait()
	cancel()

	c.mu.Lock()
	if maxSeen > c.term.Epoch {
		if !c.plausibleJumpLocked(maxSeen) {
			c.logf("ignoring implausible epoch %d in vote reply (at %d)", maxSeen, c.term.Epoch)
			c.mu.Unlock()
			return
		}
		// Someone is ahead of us; adopt and stand down for a grace period.
		c.adoptLocked(maxSeen)
		c.lastLease = time.Now()
		c.suspicion = 0
		c.mu.Unlock()
		return
	}
	if granted < c.quorum() {
		c.logf("election: epoch %d got %d/%d votes", proposed, granted, c.quorum())
		if maxVoted > c.term.VotedEpoch && maxVoted-c.term.Epoch <= MaxEpochJump {
			// A voter already promised a higher epoch (likely to a rival
			// candidate). Raise our own floor so the next proposal jumps
			// past it instead of leapfrogging one epoch per round. Not a
			// grant to anyone, so raising VotedEpoch is safe — it can only
			// make us refuse more. The same plausibility bound as adoption
			// applies: a corrupt or hostile VotedEpoch must not poison our
			// own next proposal into overflow territory.
			c.term.VotedEpoch = maxVoted
			if err := saveTerm(c.cfg.TermPath, c.term); err != nil {
				c.logf("cannot persist raised vote floor %d: %v", maxVoted, err)
			}
		}
		c.mu.Unlock()
		return
	}
	if time.Since(c.lastLease) <= c.cfg.LeaseTimeout {
		// The incumbent's lease resurfaced while we campaigned (we ack it
		// despite our own self-vote — a candidacy never blocks a live
		// leader). Promoting now could race its still-valid quorum: abandon.
		c.logf("election: epoch %d won but leader resurfaced; abandoning", proposed)
		c.suspicion = 0
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()

	// Won. Every granting voter had seen no lease for a full timeout, and
	// any quorum the old primary could have been acked by intersects the
	// vote quorum — so the old primary's self-enforced validity window has
	// already lapsed and its writes are fenced. Drain and promote.
	c.logf("election: won epoch %d with %d/%d votes; promoting", proposed, granted, len(c.cfg.Peers))
	pctx, pcancel := context.WithTimeout(context.Background(), c.cfg.PromoteBudget)
	err := c.node.Promote(pctx, proposed)
	pcancel()
	if err != nil {
		c.logf("promotion at epoch %d failed: %v", proposed, err)
		return
	}
	c.mu.Lock()
	c.term.Epoch = proposed
	if err := saveTerm(c.cfg.TermPath, c.term); err != nil {
		c.logf("cannot persist won epoch %d: %v", proposed, err)
	}
	c.leaderID = c.cfg.NodeID
	// The vote quorum doubles as the first lease quorum: writes are
	// accepted immediately, and the heartbeat loop takes over next tick.
	// Anchored at the vote fan-out's start — if promotion ate the whole
	// validity window, writes stay fenced until the broadcast below
	// re-establishes a fresh quorum, which is the conservative outcome.
	if start.After(c.lastQuorum) {
		c.lastQuorum = start
	}
	c.haveQuorum = true
	c.suspicion = 0
	c.mu.Unlock()
	c.node.ObserveEpoch(proposed)
	// Broadcast the new epoch immediately — fences the old primary on
	// first contact and squashes any rival candidacy before its next
	// detector tick, instead of waiting out a full lease interval.
	c.leaseRound()
}

// adoptLocked moves the established epoch forward. A node that was
// serving as primary at a lower epoch has been superseded: it latches
// Fenced, durably, and never serves writes again. Callers hold c.mu.
func (c *Coordinator) adoptLocked(epoch uint64) {
	if epoch <= c.term.Epoch {
		return
	}
	c.term.Epoch = epoch
	if c.term.VotedEpoch < epoch {
		c.term.VotedEpoch = epoch
	}
	if c.leading() {
		c.term.Fenced = true
		c.logf("superseded by epoch %d: fenced", epoch)
	}
	if err := saveTerm(c.cfg.TermPath, c.term); err != nil {
		c.logf("cannot persist adopted epoch %d: %v", epoch, err)
	}
	c.node.ObserveEpoch(epoch)
}

// OnLease handles a heartbeat from a claimed leader (wired from the
// server's dispatch). It never errors: the reply carries everything a
// stale or current leader needs to know.
func (c *Coordinator) OnLease(req LeaseRequest) LeaseReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Epoch < c.term.Epoch {
		return LeaseReply{Epoch: c.term.Epoch, OK: false}
	}
	if req.Epoch > c.term.Epoch {
		if !c.plausibleJumpLocked(req.Epoch) {
			c.logf("refusing implausible lease epoch %d from %s (at %d)", req.Epoch, req.LeaderID, c.term.Epoch)
			return LeaseReply{Epoch: c.term.Epoch, OK: false}
		}
		c.adoptLocked(req.Epoch)
	}
	if c.term.Fenced {
		return LeaseReply{Epoch: c.term.Epoch, OK: false}
	}
	if c.promiseActiveLocked(req.Epoch) {
		// Promised a newer candidate: stop acking this leader so its lease
		// lapses before the candidate can win.
		return LeaseReply{Epoch: c.term.Epoch, OK: false}
	}
	c.lastLease = time.Now()
	c.leaderID = req.LeaderID
	c.suspicion = 0
	return LeaseReply{Epoch: c.term.Epoch, OK: true}
}

// OnVote handles a vote solicitation (wired from the server's dispatch).
func (c *Coordinator) OnVote(req VoteRequest) VoteReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := VoteReply{Epoch: c.term.Epoch, VotedEpoch: c.term.VotedEpoch, VoterID: c.cfg.NodeID, VoterLSN: c.node.AppliedLSN()}
	if req.Epoch <= c.term.Epoch || req.Epoch <= c.term.VotedEpoch {
		return rep // already established or already promised this epoch
	}
	if !c.plausibleJumpLocked(req.Epoch) {
		// Granting would durably set VotedEpoch to an absurd value —
		// a later candidacy's VotedEpoch+1 could overflow to zero and
		// wedge the fleet. Refuse without recording anything.
		c.logf("refusing implausible vote epoch %d from %s (at %d)", req.Epoch, req.CandidateID, c.term.Epoch)
		return rep
	}
	if !c.term.Fenced {
		// Protect a live leader: refuse while its lease is fresh.
		if c.leading() {
			if c.haveQuorum && time.Since(c.lastQuorum) <= c.cfg.LeaseTimeout {
				return rep
			}
		} else if time.Since(c.lastLease) <= c.cfg.LeaseTimeout {
			return rep
		}
		// Rank: refuse candidates behind our own position (highest applied
		// LSN wins, ties toward the lower node ID) — we would rather lead.
		// A fenced node skips this: its position may include doomed
		// commits from its severed timeline and must not block progress.
		if !c.leading() {
			if req.LSN < rep.VoterLSN || (req.LSN == rep.VoterLSN && req.CandidateID > c.cfg.NodeID) {
				return rep
			}
		}
	}
	c.term.VotedEpoch = req.Epoch
	c.votedFor = req.CandidateID
	c.voteTime = time.Now()
	if err := saveTerm(c.cfg.TermPath, c.term); err != nil {
		c.logf("cannot persist vote for epoch %d: %v", req.Epoch, err)
		return rep // an unpersisted grant is no grant
	}
	c.logf("granted epoch %d to %s (LSN %d vs ours %d)", req.Epoch, req.CandidateID, req.LSN, rep.VoterLSN)
	// Granting resets our own detector: give the candidate a full timeout
	// to establish itself before we'd consider a rival candidacy.
	c.lastLease = time.Now()
	c.suspicion = 0
	rep.Granted = true
	rep.VotedEpoch = c.term.VotedEpoch
	return rep
}

// CheckWrite gates a mutation. reqEpoch 0 means the client is not
// epoch-aware (plain clients); any other value must match the node's
// established epoch exactly. A leader additionally needs a live quorum
// lease — this is what fences a partitioned primary's writes before a
// rival can be elected.
func (c *Coordinator) CheckWrite(reqEpoch uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.term.Fenced {
		return fmt.Errorf("%w: node superseded at epoch %d", ErrFenced, c.term.Epoch)
	}
	if reqEpoch != 0 && reqEpoch != c.term.Epoch {
		return fmt.Errorf("%w: request stamped epoch %d, node at epoch %d", ErrFenced, reqEpoch, c.term.Epoch)
	}
	if c.leading() {
		if !c.haveQuorum || time.Since(c.lastQuorum) > c.leaseValidity() {
			return fmt.Errorf("%w: no quorum lease at epoch %d", ErrFenced, c.term.Epoch)
		}
	}
	return nil
}

// CheckShip gates the segment-ship path (Segments/FetchSegment). Same
// epoch-match rule as writes, minus the lease requirement: followers ship
// to cascading replicas without holding any lease.
func (c *Coordinator) CheckShip(reqEpoch uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.term.Fenced {
		return fmt.Errorf("%w: node superseded at epoch %d", ErrFenced, c.term.Epoch)
	}
	if reqEpoch != 0 && reqEpoch != c.term.Epoch {
		return fmt.Errorf("%w: request stamped epoch %d, node at epoch %d", ErrFenced, reqEpoch, c.term.Epoch)
	}
	return nil
}

// Epoch returns the established epoch.
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.term.Epoch
}

// Fenced reports whether this node has been superseded.
func (c *Coordinator) Fenced() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.term.Fenced
}

// Status snapshots the coordinator for stats and health surfaces.
func (c *Coordinator) Status() Status {
	role := c.node.Role()
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{
		NodeID:      c.cfg.NodeID,
		Role:        role,
		Epoch:       c.term.Epoch,
		VotedEpoch:  c.term.VotedEpoch,
		Fenced:      c.term.Fenced,
		LeaderID:    c.leaderID,
		LeaseAgeMs:  -1,
		Suspicion:   c.suspicion,
		Elections:   c.elections,
		LeaseRounds: c.leaseRounds,
	}
	if role == "primary" {
		if c.haveQuorum {
			s.LeaseAgeMs = time.Since(c.lastQuorum).Milliseconds()
		}
	} else if !c.lastLease.IsZero() {
		s.LeaseAgeMs = time.Since(c.lastLease).Milliseconds()
	}
	return s
}
