package failover

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// TermState is the durable per-node failover state. It is tiny and written
// rarely (epoch adoptions, vote grants, fencing), but it must survive
// kill -9: a node that granted a vote and forgot it could grant the same
// epoch twice, and a fenced ex-primary that forgot it was fenced could
// resurrect and accept writes. The file is written with the same
// tmp+fsync+rename discipline as the replica sidecar.
type TermState struct {
	// Epoch is the established leadership epoch: the highest epoch this
	// node has seen carried by an elected leader (or won itself). Fencing
	// decisions compare against this, never against VotedEpoch.
	Epoch uint64 `json:"epoch"`
	// VotedEpoch is the highest epoch this node has granted a vote for
	// (including votes for itself). A proposal must exceed it to be granted
	// — the at-most-one-grant-per-epoch rule quorum safety rests on. A
	// granted-but-unestablished epoch never fences anyone: a lone flaky
	// candidate must not be able to depose a healthy primary.
	VotedEpoch uint64 `json:"voted_epoch"`
	// Fenced latches once this node, while acting as primary, observed a
	// higher established epoch: it has been superseded and must never
	// accept writes or ship segments again. Rebuild it as a replica of the
	// new primary to bring it back.
	Fenced bool `json:"fenced,omitempty"`
}

// loadTerm reads the term file. A missing file is a fresh node: epoch 1,
// nothing voted, not fenced.
func loadTerm(path string) (TermState, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return TermState{Epoch: 1, VotedEpoch: 1}, nil
		}
		return TermState{}, err
	}
	var t TermState
	if err := json.Unmarshal(b, &t); err != nil {
		return TermState{}, fmt.Errorf("failover: term file %s: %w", path, err)
	}
	if t.Epoch == 0 || t.VotedEpoch < t.Epoch {
		return TermState{}, fmt.Errorf("failover: term file %s: inconsistent state %+v", path, t)
	}
	return t, nil
}

// saveTerm durably replaces the term file: write a temp file, fsync it,
// rename over the old one. The rename is the commit point.
func saveTerm(path string, t TermState) error {
	b, err := json.Marshal(t)
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
