package failover

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// fakeNode is a controllable Node.
type fakeNode struct {
	mu       sync.Mutex
	role     string
	lsn      uint64
	promoted []uint64
	observed []uint64
	promErr  error
}

func (n *fakeNode) Role() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

func (n *fakeNode) AppliedLSN() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lsn
}

func (n *fakeNode) Promote(_ context.Context, epoch uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.promErr != nil {
		return n.promErr
	}
	n.promoted = append(n.promoted, epoch)
	n.role = "primary"
	return nil
}

func (n *fakeNode) ObserveEpoch(epoch uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.observed = append(n.observed, epoch)
}

// fakeFleet routes Lease/RequestVote calls between in-process coordinators
// by address, with a per-link partition switch.
type fakeFleet struct {
	mu    sync.Mutex
	nodes map[string]*Coordinator // addr -> coordinator
	cut   map[string]bool         // addr unreachable
}

func newFakeFleet() *fakeFleet {
	return &fakeFleet{nodes: map[string]*Coordinator{}, cut: map[string]bool{}}
}

func (f *fakeFleet) register(addr string, c *Coordinator) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nodes[addr] = c
}

func (f *fakeFleet) partition(addr string, on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cut[addr] = on
}

// link resolves a call from `from` to `to`; a partitioned address is cut
// off symmetrically — neither its inbound nor its outbound traffic flows.
func (f *fakeFleet) link(from, to string) (*Coordinator, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cut[from] || f.cut[to] {
		return nil, errors.New("fake fleet: partitioned")
	}
	c, ok := f.nodes[to]
	if !ok {
		return nil, errors.New("fake fleet: no such node")
	}
	return c, nil
}

// client returns the PeerClient one node uses — it remembers the caller's
// own address so partitions are symmetric.
func (f *fakeFleet) client(selfAddr string) PeerClient {
	return &fleetClient{f: f, self: selfAddr}
}

type fleetClient struct {
	f    *fakeFleet
	self string
}

func (fc *fleetClient) Lease(_ context.Context, addr string, req LeaseRequest) (LeaseReply, error) {
	c, err := fc.f.link(fc.self, addr)
	if err != nil {
		return LeaseReply{}, err
	}
	return c.OnLease(req), nil
}

func (fc *fleetClient) RequestVote(_ context.Context, addr string, req VoteRequest) (VoteReply, error) {
	c, err := fc.f.link(fc.self, addr)
	if err != nil {
		return VoteReply{}, err
	}
	return c.OnVote(req), nil
}

func fastCfg(t *testing.T, id string, peers []Peer) Config {
	t.Helper()
	return Config{
		NodeID:        id,
		Peers:         peers,
		TermPath:      filepath.Join(t.TempDir(), id+".term"),
		LeaseInterval: 20 * time.Millisecond,
		LeaseTimeout:  80 * time.Millisecond,
		SuspectTicks:  2,
		Logf:          t.Logf,
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// threeNode builds a three-member fleet with n1 primary, starts nothing.
func threeNode(t *testing.T) (fleet *fakeFleet, cs map[string]*Coordinator, ns map[string]*fakeNode) {
	t.Helper()
	peers := []Peer{{ID: "n1", Addr: "a1"}, {ID: "n2", Addr: "a2"}, {ID: "n3", Addr: "a3"}}
	fleet = newFakeFleet()
	cs = map[string]*Coordinator{}
	ns = map[string]*fakeNode{}
	for i, p := range peers {
		role := "replica"
		if i == 0 {
			role = "primary"
		}
		n := &fakeNode{role: role}
		c, err := New(fastCfg(t, p.ID, peers), n, fleet.client(p.Addr))
		if err != nil {
			t.Fatalf("New(%s): %v", p.ID, err)
		}
		fleet.register(p.Addr, c)
		cs[p.ID] = c
		ns[p.ID] = n
		t.Cleanup(func() { c.Close() })
	}
	return fleet, cs, ns
}

func TestConfigValidation(t *testing.T) {
	peers := []Peer{{ID: "n1", Addr: "a1"}, {ID: "n2", Addr: "a2"}}
	n := &fakeNode{role: "replica"}
	if _, err := New(Config{Peers: peers, TermPath: "x"}, n, newFakeFleet().client("self")); err == nil {
		t.Fatal("want error for missing NodeID")
	}
	if _, err := New(Config{NodeID: "n1", Peers: peers}, n, newFakeFleet().client("self")); err == nil {
		t.Fatal("want error for missing TermPath")
	}
	if _, err := New(Config{NodeID: "nx", Peers: peers, TermPath: "x"}, n, newFakeFleet().client("self")); err == nil {
		t.Fatal("want error for NodeID not in fleet")
	}
	dup := []Peer{{ID: "n1", Addr: "a1"}, {ID: "n1", Addr: "a2"}}
	if _, err := New(Config{NodeID: "n1", Peers: dup, TermPath: "x"}, n, newFakeFleet().client("self")); err == nil {
		t.Fatal("want error for duplicate peer ID")
	}
}

func TestHealthyPrimaryHoldsLeaseAndAcceptsWrites(t *testing.T) {
	_, cs, _ := threeNode(t)
	for _, c := range cs {
		c.Start()
	}
	waitFor(t, 2*time.Second, "primary quorum lease", func() bool {
		return cs["n1"].CheckWrite(0) == nil
	})
	// Epoch-stamped writes at the current epoch pass; stale epochs fence.
	if err := cs["n1"].CheckWrite(cs["n1"].Epoch()); err != nil {
		t.Fatalf("CheckWrite(current epoch): %v", err)
	}
	if err := cs["n1"].CheckWrite(cs["n1"].Epoch() + 7); !errors.Is(err, ErrFenced) {
		t.Fatalf("CheckWrite(wrong epoch) = %v, want ErrFenced", err)
	}
	// Followers keep their suspicion at zero under a healthy leader.
	time.Sleep(200 * time.Millisecond)
	if s := cs["n2"].Status(); s.Suspicion != 0 || s.LeaderID != "n1" {
		t.Fatalf("follower status under healthy leader: %+v", s)
	}
}

func TestPartitionedPrimarySelfFencesWrites(t *testing.T) {
	fleet, cs, _ := threeNode(t)
	for _, c := range cs {
		c.Start()
	}
	waitFor(t, 2*time.Second, "primary quorum lease", func() bool {
		return cs["n1"].CheckWrite(0) == nil
	})
	// Cut the primary off from both followers: its lease lapses and its own
	// CheckWrite starts refusing, before anyone else is even elected.
	fleet.partition("a2", true)
	fleet.partition("a3", true)
	waitFor(t, 2*time.Second, "self-fenced writes", func() bool {
		return errors.Is(cs["n1"].CheckWrite(0), ErrFenced)
	})
}

func TestFailoverElectsHighestLSN(t *testing.T) {
	fleet, cs, ns := threeNode(t)
	ns["n2"].mu.Lock()
	ns["n2"].lsn = 5
	ns["n2"].mu.Unlock()
	ns["n3"].mu.Lock()
	ns["n3"].lsn = 9 // n3 is further ahead and must win
	ns["n3"].mu.Unlock()
	for _, c := range cs {
		c.Start()
	}
	waitFor(t, 2*time.Second, "primary quorum lease", func() bool {
		return cs["n1"].CheckWrite(0) == nil
	})
	// Kill the primary (unreachable both ways).
	fleet.partition("a1", true)
	cs["n1"].Close()

	waitFor(t, 5*time.Second, "n3 promotion", func() bool {
		return ns["n3"].Role() == "primary" && cs["n3"].CheckWrite(0) == nil
	})
	if got := ns["n2"].Role(); got != "replica" {
		t.Fatalf("n2 role = %q, want replica", got)
	}
	if e := cs["n3"].Epoch(); e < 2 {
		t.Fatalf("winner epoch = %d, want >= 2", e)
	}
	ns["n3"].mu.Lock()
	promoted := append([]uint64(nil), ns["n3"].promoted...)
	ns["n3"].mu.Unlock()
	if len(promoted) != 1 {
		t.Fatalf("n3 promoted %v, want exactly one promotion", promoted)
	}
}

func TestRevivedOldPrimaryIsFenced(t *testing.T) {
	fleet, cs, ns := threeNode(t)
	ns["n3"].mu.Lock()
	ns["n3"].lsn = 9
	ns["n3"].mu.Unlock()
	for _, c := range cs {
		c.Start()
	}
	waitFor(t, 2*time.Second, "primary quorum lease", func() bool {
		return cs["n1"].CheckWrite(0) == nil
	})
	fleet.partition("a1", true)
	waitFor(t, 5*time.Second, "n3 promotion", func() bool {
		return ns["n3"].Role() == "primary" && cs["n3"].CheckWrite(0) == nil
	})

	// Heal the partition: the revived old primary's next lease round sees
	// the higher epoch and latches Fenced — durably.
	fleet.partition("a1", false)
	waitFor(t, 5*time.Second, "old primary fenced", func() bool {
		return cs["n1"].Fenced()
	})
	if err := cs["n1"].CheckWrite(0); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced CheckWrite = %v, want ErrFenced", err)
	}
	if err := cs["n1"].CheckShip(0); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced CheckShip = %v, want ErrFenced", err)
	}
	// Fencing survives kill -9: reload the term file.
	term, err := loadTerm(cs["n1"].cfg.TermPath)
	if err != nil {
		t.Fatalf("loadTerm: %v", err)
	}
	if !term.Fenced || term.Epoch < cs["n3"].Epoch() {
		t.Fatalf("persisted term %+v, want fenced at epoch >= %d", term, cs["n3"].Epoch())
	}
	// ErrFenced is registered and not retryable.
	if got := core.ErrCodeOf(cs["n1"].CheckWrite(0)); got != core.CodeFenced {
		t.Fatalf("ErrCodeOf = %d, want CodeFenced", got)
	}
	if core.Retryable(cs["n1"].CheckWrite(0)) {
		t.Fatal("ErrFenced must not be retryable")
	}
}

func TestLoneCandidateCannotDeposeHealthyPrimary(t *testing.T) {
	fleet, cs, ns := threeNode(t)
	for _, c := range cs {
		c.Start()
	}
	waitFor(t, 2*time.Second, "primary quorum lease", func() bool {
		return cs["n1"].CheckWrite(0) == nil
	})
	// n3 alone loses contact with everyone: it will propose epochs forever
	// but can never reach quorum, and its tentative epochs must not fence
	// the healthy primary.
	fleet.partition("a3", true)
	time.Sleep(500 * time.Millisecond) // several election attempts' worth
	if err := cs["n1"].CheckWrite(0); err != nil {
		t.Fatalf("healthy primary fenced by lone candidate: %v", err)
	}
	if cs["n1"].Fenced() {
		t.Fatal("healthy primary latched Fenced")
	}
	// Heal: n3 rejoins as a follower of the still-current leader.
	fleet.partition("a3", false)
	waitFor(t, 2*time.Second, "n3 rejoins", func() bool {
		s := cs["n3"].Status()
		return s.LeaderID == "n1" && s.Suspicion == 0
	})
	if ns["n3"].Role() != "replica" {
		t.Fatal("n3 must not have promoted")
	}
}

func TestVoteRankRefusesLaggingCandidate(t *testing.T) {
	peers := []Peer{{ID: "n1", Addr: "a1"}, {ID: "n2", Addr: "a2"}, {ID: "n3", Addr: "a3"}}
	n2 := &fakeNode{role: "replica", lsn: 10}
	c2, err := New(fastCfg(t, "n2", peers), n2, newFakeFleet().client("self"))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Make n2's leader info stale so the "protect a live leader" clause
	// doesn't mask the rank check.
	c2.mu.Lock()
	c2.lastLease = time.Now().Add(-time.Minute)
	c2.mu.Unlock()

	// A candidate behind n2's LSN is refused.
	rep := c2.OnVote(VoteRequest{Epoch: 2, CandidateID: "n3", LSN: 4})
	if rep.Granted {
		t.Fatal("granted vote to lagging candidate")
	}
	if rep.VoterLSN != 10 {
		t.Fatalf("VoterLSN = %d, want 10", rep.VoterLSN)
	}
	// Equal LSN, higher ID than ours: refused (lowest ID wins ties).
	if rep := c2.OnVote(VoteRequest{Epoch: 2, CandidateID: "n9", LSN: 10}); rep.Granted {
		t.Fatal("granted tie to higher node ID")
	}
	// Equal LSN, lower ID: granted.
	if rep := c2.OnVote(VoteRequest{Epoch: 2, CandidateID: "n0", LSN: 10}); !rep.Granted {
		t.Fatal("refused tie to lower node ID")
	}
	// One grant per epoch, even for the same candidate again.
	if rep := c2.OnVote(VoteRequest{Epoch: 2, CandidateID: "n0", LSN: 10}); rep.Granted {
		t.Fatal("granted the same epoch twice")
	}
	// Vote promise: the old leader's lease is nacked after a grant for a
	// newer epoch.
	if rep := c2.OnLease(LeaseRequest{Epoch: 1, LeaderID: "n1", LSN: 10}); rep.OK {
		t.Fatal("acked old leader's lease after promising a newer epoch")
	}
}

func TestVotePersistsAcrossRestart(t *testing.T) {
	peers := []Peer{{ID: "n1", Addr: "a1"}, {ID: "n2", Addr: "a2"}, {ID: "n3", Addr: "a3"}}
	cfg := fastCfg(t, "n2", peers)
	n2 := &fakeNode{role: "replica"}
	c2, err := New(cfg, n2, newFakeFleet().client("self"))
	if err != nil {
		t.Fatal(err)
	}
	c2.mu.Lock()
	c2.lastLease = time.Now().Add(-time.Minute)
	c2.mu.Unlock()
	if rep := c2.OnVote(VoteRequest{Epoch: 5, CandidateID: "n3", LSN: 99}); !rep.Granted {
		t.Fatal("vote refused")
	}
	c2.Close()

	// Same term file, new coordinator: the promise survives.
	c2b, err := New(cfg, n2, newFakeFleet().client("self"))
	if err != nil {
		t.Fatal(err)
	}
	defer c2b.Close()
	c2b.mu.Lock()
	c2b.lastLease = time.Now().Add(-time.Minute)
	c2b.mu.Unlock()
	if rep := c2b.OnVote(VoteRequest{Epoch: 5, CandidateID: "n1", LSN: 1000}); rep.Granted {
		t.Fatal("re-granted epoch 5 after restart")
	}
	if rep := c2b.OnVote(VoteRequest{Epoch: 6, CandidateID: "n1", LSN: 1000}); !rep.Granted {
		t.Fatal("refused fresh epoch 6 after restart")
	}
}

func TestSingleNodeFleetHoldsOwnLease(t *testing.T) {
	peers := []Peer{{ID: "solo", Addr: "a1"}}
	n := &fakeNode{role: "primary"}
	c, err := New(fastCfg(t, "solo", peers), n, newFakeFleet().client("self"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Start()
	waitFor(t, 2*time.Second, "solo lease", func() bool {
		return c.CheckWrite(0) == nil
	})
	if q := c.quorum(); q != 1 {
		t.Fatalf("solo quorum = %d, want 1", q)
	}
}

func TestCheckShipEpochMismatch(t *testing.T) {
	peers := []Peer{{ID: "n1", Addr: "a1"}}
	n := &fakeNode{role: "replica"}
	c, err := New(fastCfg(t, "n1", peers), n, newFakeFleet().client("self"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CheckShip(0); err != nil {
		t.Fatalf("CheckShip(0): %v", err)
	}
	if err := c.CheckShip(c.Epoch()); err != nil {
		t.Fatalf("CheckShip(current): %v", err)
	}
	if err := c.CheckShip(c.Epoch() + 3); !errors.Is(err, ErrFenced) {
		t.Fatalf("CheckShip(wrong) = %v, want ErrFenced", err)
	}
}

// TestImplausibleEpochJumpRefused: a hostile or corrupt frame carrying an
// absurd epoch must not durably fence a healthy primary (via OnLease →
// adopt) or inflate a voter's promise so a later proposal's VotedEpoch+1
// overflows. Plausible jumps keep adopting normally.
func TestImplausibleEpochJumpRefused(t *testing.T) {
	_, cs, _ := threeNode(t) // not started: drive the handlers directly
	huge := uint64(math.MaxUint64)

	// Primary: the review scenario — one LEASE at 2^64-1 must not latch
	// Fenced (which would mean permanent write refusal and a manual
	// rebuild).
	rep := cs["n1"].OnLease(LeaseRequest{Epoch: huge, LeaderID: "evil"})
	if rep.OK {
		t.Fatal("implausible lease epoch was acked")
	}
	if cs["n1"].Fenced() {
		t.Fatal("implausible lease epoch fenced the primary")
	}
	if e := cs["n1"].Epoch(); e != 1 {
		t.Fatalf("primary adopted implausible epoch: %d", e)
	}

	// Follower: same refusal, nothing adopted.
	rep = cs["n2"].OnLease(LeaseRequest{Epoch: huge, LeaderID: "evil"})
	if rep.OK || cs["n2"].Epoch() != 1 {
		t.Fatalf("follower accepted implausible lease: ok=%v epoch=%d", rep.OK, cs["n2"].Epoch())
	}

	// Vote: must not be granted, and VotedEpoch must not move — otherwise
	// this node's own next candidacy proposes VotedEpoch+1 == 0.
	vrep := cs["n2"].OnVote(VoteRequest{Epoch: huge, CandidateID: "evil", LSN: 1 << 40})
	if vrep.Granted {
		t.Fatal("implausible vote epoch was granted")
	}
	if got := cs["n2"].Status().VotedEpoch; got != 1 {
		t.Fatalf("VotedEpoch inflated to %d by refused vote", got)
	}

	// A sane jump (real fleets move by ones) still adopts.
	rep = cs["n2"].OnLease(LeaseRequest{Epoch: 5, LeaderID: "n1"})
	if !rep.OK || cs["n2"].Epoch() != 5 {
		t.Fatalf("plausible epoch jump refused: ok=%v epoch=%d", rep.OK, cs["n2"].Epoch())
	}
}

// slowAckPeers acks every lease after a fixed delay — a stand-in for RPC
// latency inside the coordinator's timeout.
type slowAckPeers struct{ delay time.Duration }

func (s slowAckPeers) Lease(_ context.Context, _ string, req LeaseRequest) (LeaseReply, error) {
	time.Sleep(s.delay)
	return LeaseReply{Epoch: req.Epoch, OK: true}, nil
}

func (s slowAckPeers) RequestVote(_ context.Context, _ string, req VoteRequest) (VoteReply, error) {
	time.Sleep(s.delay)
	return VoteReply{Granted: true, Epoch: req.Epoch - 1, VotedEpoch: req.Epoch}, nil
}

// TestLeaseValidityAnchoredAtRoundStart: voters record lastLease at
// receipt, up to one RPC round before the leader tallies acks — so the
// leader's self-enforced validity window must be measured from the
// round's START. Anchoring after the wait would let a partitioned primary
// pass CheckWrite while a successor is being elected.
func TestLeaseValidityAnchoredAtRoundStart(t *testing.T) {
	peers := []Peer{{ID: "n1", Addr: "a1"}, {ID: "n2", Addr: "a2"}}
	cfg := Config{
		NodeID:        "n1",
		Peers:         peers,
		TermPath:      filepath.Join(t.TempDir(), "n1.term"),
		LeaseInterval: 20 * time.Millisecond,
		LeaseTimeout:  400 * time.Millisecond, // rpcTimeout 200ms > the 120ms delay
		Logf:          t.Logf,
	}
	delay := 120 * time.Millisecond
	c, err := New(cfg, &fakeNode{role: "primary"}, slowAckPeers{delay: delay})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.leaseRound() // one synchronous round, no background loop
	s := c.Status()
	if s.LeaseAgeMs < delay.Milliseconds()-10 {
		t.Fatalf("lease age %dms right after a %v-slow round: validity anchored at tally time, not round start", s.LeaseAgeMs, delay)
	}
	// The round still establishes a usable lease: age is inside validity.
	if err := c.CheckWrite(0); err != nil {
		t.Fatalf("CheckWrite after slow-but-acked round: %v", err)
	}
}

func TestStatusSnapshot(t *testing.T) {
	_, cs, _ := threeNode(t)
	for _, c := range cs {
		c.Start()
	}
	waitFor(t, 2*time.Second, "primary quorum lease", func() bool {
		return cs["n1"].CheckWrite(0) == nil
	})
	s := cs["n1"].Status()
	if s.NodeID != "n1" || s.Role != "primary" || s.Epoch == 0 || s.Fenced {
		t.Fatalf("primary status: %+v", s)
	}
	if s.LeaseAgeMs < 0 {
		t.Fatalf("primary LeaseAgeMs = %d, want >= 0", s.LeaseAgeMs)
	}
	waitFor(t, 2*time.Second, "follower sees leader", func() bool {
		return cs["n2"].Status().LeaderID == "n1"
	})
}
