package idscheme

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/token"
)

// Dewey labels: the node's path of sibling ordinals from the root
// (1.3.2 = second child of the third child of the first root node). Totally
// ordered in document order and self-describing (the label encodes the
// ancestor path), but inserting between two adjacent siblings requires
// relabeling the right sibling's subtree — which is why the paper's
// update-oriented store does not use them raw.

// Dewey implements Scheme with path-of-ordinals labels.
type Dewey struct{}

// Name implements Scheme.
func (Dewey) Name() string { return "dewey" }

// Initial implements Scheme.
func (Dewey) Initial() Label { return encodeComponents([]int64{1}) }

// NewFactory implements Scheme.
func (Dewey) NewFactory(first Label) Factory {
	comps, _ := decodeComponents(first)
	if len(comps) == 0 {
		comps = []int64{1}
	}
	return &deweyFactory{path: comps, fresh: true}
}

type deweyFactory struct {
	path  []int64
	fresh bool // true before the first node token is consumed
}

func (f *deweyFactory) Next(t token.Token) (Label, bool) {
	switch {
	case t.StartsNode():
		if f.fresh {
			f.fresh = false
		} else {
			f.path[len(f.path)-1]++
		}
		l := encodeComponents(f.path)
		if t.IsBegin() {
			// Descend: children start at ordinal 1... the next node token
			// will bump it to 1 via the ++ path, so push 0.
			f.path = append(f.path, 0)
		}
		return l, true
	case t.IsEnd():
		if len(f.path) > 1 {
			f.path = f.path[:len(f.path)-1]
		}
		return nil, false
	default:
		return nil, false
	}
}

// Compare implements Scheme: lexicographic on components; a prefix precedes
// its extensions (ancestors come first in document order).
func (Dewey) Compare(a, b Label) int { return compareComponents(a, b) }

// Between implements Scheme. Dewey cannot label between two adjacent
// sibling ordinals without fractional components; we follow the classic
// definition and report the relabeling requirement.
func (Dewey) Between(a, b Label) (Label, error) {
	ac, err := decodeComponents(a)
	if err != nil {
		return nil, err
	}
	bc, err := decodeComponents(b)
	if err != nil {
		return nil, err
	}
	// A gap exists only if the final ordinals differ by more than one at
	// the same depth under the same parent.
	if len(ac) == len(bc) && len(ac) > 0 {
		same := true
		for i := 0; i < len(ac)-1; i++ {
			if ac[i] != bc[i] {
				same = false
				break
			}
		}
		if same && bc[len(bc)-1]-ac[len(ac)-1] > 1 {
			mid := append(append([]int64{}, ac[:len(ac)-1]...), (ac[len(ac)-1]+bc[len(bc)-1])/2)
			return encodeComponents(mid), nil
		}
	}
	return nil, ErrNoBetween
}

// String implements Scheme.
func (Dewey) String(l Label) string {
	comps, err := decodeComponents(l)
	if err != nil {
		return fmt.Sprintf("bad(% x)", []byte(l))
	}
	parts := make([]string, len(comps))
	for i, c := range comps {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, ".")
}

// Component codec shared by Dewey and ORDPATH: signed varints.

func encodeComponents(comps []int64) Label {
	var out Label
	for _, c := range comps {
		out = binary.AppendVarint(out, c)
	}
	return out
}

func decodeComponents(l Label) ([]int64, error) {
	var out []int64
	b := []byte(l)
	for len(b) > 0 {
		v, n := binary.Varint(b)
		if n <= 0 {
			return nil, fmt.Errorf("idscheme: corrupt label component")
		}
		out = append(out, v)
		b = b[n:]
	}
	return out, nil
}

func compareComponents(a, b Label) int {
	ac, errA := decodeComponents(a)
	bc, errB := decodeComponents(b)
	if errA != nil || errB != nil {
		return strings.Compare(string(a), string(b))
	}
	for i := 0; i < len(ac) && i < len(bc); i++ {
		switch {
		case ac[i] < bc[i]:
			return -1
		case ac[i] > bc[i]:
			return 1
		}
	}
	switch {
	case len(ac) < len(bc):
		return -1
	case len(ac) > len(bc):
		return 1
	}
	return 0
}
