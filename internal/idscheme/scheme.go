// Package idscheme implements node-identifier schemes for XML stores and
// demonstrates the paper's Section 6 claim that the choice of scheme is
// orthogonal to the range-based storage model.
//
// A scheme must provide the two properties the store relies on:
//
//  1. the idFactory property — given the identifier of a range's first node
//     and the token stream, the identifiers of all following nodes can be
//     regenerated without storing them (Factory);
//  2. stability — an identifier assigned at insert time never changes.
//
// Schemes differ in a third property, document-order comparability across
// inserts: sequential integers are comparable only within one insert batch;
// Dewey and ORDPATH labels are totally ordered in document order, with
// ORDPATH (O'Neil et al., SIGMOD 2004) additionally supporting inserts at
// any position without relabeling ("careting in").
package idscheme

import (
	"errors"
	"fmt"

	"repro/internal/token"
)

// Label is an opaque, scheme-specific node identifier encoding.
type Label []byte

// Scheme generates and compares node labels.
type Scheme interface {
	// Name identifies the scheme.
	Name() string
	// Initial returns the label of the first node of a fresh document.
	Initial() Label
	// NewFactory returns an idFactory that assigns labels to the
	// node-starting tokens of a depth-first token walk, beginning with the
	// given first label. The factory maintains whatever ancestor context
	// the scheme needs.
	NewFactory(first Label) Factory
	// Compare orders two labels. For Sequential the order is allocation
	// order; for Dewey and ORDPATH it is document order.
	Compare(a, b Label) int
	// Between returns a fresh label strictly between a and b in document
	// order without changing either, for schemes that support stable
	// mid-document inserts. Schemes that would need to relabel return
	// ErrNoBetween.
	Between(a, b Label) (Label, error)
	// String renders a label for humans.
	String(l Label) string
}

// Factory implements the paper's idFactory: it consumes tokens in document
// order and emits the label for each node-starting token.
type Factory interface {
	// Next advances over one token. ok is true when the token starts a node
	// and therefore received the returned label.
	Next(t token.Token) (l Label, ok bool)
}

// ErrNoBetween is returned by schemes that cannot label between two
// existing labels without relabeling.
var ErrNoBetween = errors.New("idscheme: scheme cannot label between existing ids without relabeling")

// Sequential is the store's default scheme: unique integers in allocation
// order (the paper's experimental setup). Stable, minimal storage, but
// comparable in document order only within a single insert batch.
type Sequential struct{}

// Name implements Scheme.
func (Sequential) Name() string { return "sequential" }

// Initial implements Scheme.
func (Sequential) Initial() Label { return encodeUint(1) }

// NewFactory implements Scheme.
func (Sequential) NewFactory(first Label) Factory {
	v, _ := decodeUint(first)
	return &seqFactory{next: v}
}

type seqFactory struct{ next uint64 }

func (f *seqFactory) Next(t token.Token) (Label, bool) {
	if !t.StartsNode() {
		return nil, false
	}
	l := encodeUint(f.next)
	f.next++
	return l, true
}

// Compare implements Scheme.
func (Sequential) Compare(a, b Label) int {
	av, _ := decodeUint(a)
	bv, _ := decodeUint(b)
	switch {
	case av < bv:
		return -1
	case av > bv:
		return 1
	}
	return 0
}

// Between implements Scheme: sequential integers cannot be inserted between.
func (Sequential) Between(a, b Label) (Label, error) { return nil, ErrNoBetween }

// String implements Scheme.
func (Sequential) String(l Label) string {
	v, err := decodeUint(l)
	if err != nil {
		return fmt.Sprintf("bad(% x)", []byte(l))
	}
	return fmt.Sprintf("#%d", v)
}

func encodeUint(v uint64) Label {
	out := make(Label, 8)
	for i := 7; i >= 0; i-- {
		out[i] = byte(v)
		v >>= 8
	}
	return out
}

func decodeUint(l Label) (uint64, error) {
	if len(l) != 8 {
		return 0, fmt.Errorf("idscheme: sequential label must be 8 bytes, got %d", len(l))
	}
	var v uint64
	for _, b := range l {
		v = v<<8 | uint64(b)
	}
	return v, nil
}
