package idscheme

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/token"
	"repro/internal/xmltok"
)

func figure1() []token.Token {
	return xmltok.MustParse(`<ticket><hour>15</hour><name>Paul</name></ticket>`)
}

// run assigns labels to every node of a token walk.
func run(s Scheme, toks []token.Token) []Label {
	f := s.NewFactory(s.Initial())
	var out []Label
	for _, t := range toks {
		if l, ok := f.Next(t); ok {
			out = append(out, l)
		}
	}
	return out
}

func labelsToStrings(s Scheme, ls []Label) []string {
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = s.String(l)
	}
	return out
}

func TestSequentialFactory(t *testing.T) {
	s := Sequential{}
	labels := run(s, figure1())
	want := []string{"#1", "#2", "#3", "#4", "#5"}
	got := labelsToStrings(s, labels)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels = %v, want %v", got, want)
		}
	}
	if s.Compare(labels[0], labels[4]) >= 0 {
		t.Error("sequential order broken")
	}
	if _, err := s.Between(labels[0], labels[1]); err != ErrNoBetween {
		t.Errorf("sequential Between: %v", err)
	}
}

func TestDeweyFactory(t *testing.T) {
	s := Dewey{}
	got := labelsToStrings(s, run(s, figure1()))
	want := []string{"1", "1.1", "1.1.1", "1.2", "1.2.1"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels = %v, want %v", got, want)
		}
	}
}

func TestOrdPathFactory(t *testing.T) {
	s := OrdPath{}
	got := labelsToStrings(s, run(s, figure1()))
	want := []string{"1", "1.1", "1.1.1", "1.3", "1.3.1"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels = %v, want %v", got, want)
		}
	}
}

// Document-order comparability: labels assigned by one factory walk must be
// strictly increasing for hierarchical schemes.
func TestDocumentOrderComparable(t *testing.T) {
	doc := xmltok.MustParse(
		`<a x="1"><b><c/>text<d k="v">t2</d></b><e/><!--c--><f><g><h/></g></f></a>`)
	for _, s := range []Scheme{Dewey{}, OrdPath{}} {
		t.Run(s.Name(), func(t *testing.T) {
			labels := run(s, doc)
			for i := 1; i < len(labels); i++ {
				if s.Compare(labels[i-1], labels[i]) >= 0 {
					t.Fatalf("labels %d,%d out of order: %s >= %s",
						i-1, i, s.String(labels[i-1]), s.String(labels[i]))
				}
			}
			// Self-comparison.
			if s.Compare(labels[0], labels[0]) != 0 {
				t.Error("self compare != 0")
			}
		})
	}
}

func TestOrdPathBetweenBasics(t *testing.T) {
	s := OrdPath{}
	mk := func(comps ...int64) Label { return encodeComponents(comps) }
	cases := []struct {
		a, b []int64
		want string // expected rendering, "" = just check order
	}{
		{[]int64{1, 1}, []int64{1, 3}, "1.2.1"}, // caret in
		{[]int64{1, 1}, []int64{1, 5}, "1.3"},   // room: plain odd
		{[]int64{1, 1}, []int64{1, 7}, "1.3"},   // prefer odd
		{[]int64{1}, []int64{3}, "2.1"},         // top-level caret
		{[]int64{1}, []int64{1, 1}, ""},         // ancestor/descendant
		{[]int64{1, 2, 1}, []int64{1, 3}, ""},   // after a caret chain
		{[]int64{1, 1, 5}, []int64{1, 3}, ""},   // deep left edge
	}
	for _, c := range cases {
		a, b := mk(c.a...), mk(c.b...)
		z, err := s.Between(a, b)
		if err != nil {
			t.Fatalf("Between(%s, %s): %v", s.String(a), s.String(b), err)
		}
		if s.Compare(a, z) >= 0 || s.Compare(z, b) >= 0 {
			t.Fatalf("Between(%s, %s) = %s not strictly between",
				s.String(a), s.String(b), s.String(z))
		}
		if c.want != "" && s.String(z) != c.want {
			t.Errorf("Between(%s, %s) = %s, want %s",
				s.String(a), s.String(b), s.String(z), c.want)
		}
	}
	// Degenerate input.
	if _, err := s.Between(mk(3), mk(1)); err == nil {
		t.Error("Between(a >= b) should fail")
	}
	if _, err := s.Between(mk(1), mk(1)); err == nil {
		t.Error("Between(a, a) should fail")
	}
}

// The headline ORDPATH property: unbounded repeated insertion between two
// fixed labels, with no relabeling, preserving strict order throughout.
func TestOrdPathRepeatedCareting(t *testing.T) {
	s := OrdPath{}
	lo := encodeComponents([]int64{1, 1})
	hi := encodeComponents([]int64{1, 3})
	labels := []Label{lo, hi}
	// Insert 200 labels, alternating position, as a worst case.
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		j := r.Intn(len(labels) - 1)
		z, err := s.Between(labels[j], labels[j+1])
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		labels = append(labels[:j+1], append([]Label{z}, labels[j+1:]...)...)
	}
	for i := 1; i < len(labels); i++ {
		if s.Compare(labels[i-1], labels[i]) >= 0 {
			t.Fatalf("order violated at %d: %s >= %s",
				i, s.String(labels[i-1]), s.String(labels[i]))
		}
	}
	if !sort.SliceIsSorted(labels, func(i, j int) bool {
		return s.Compare(labels[i], labels[j]) < 0
	}) {
		t.Fatal("labels not sorted")
	}
}

func TestDeweyBetween(t *testing.T) {
	s := Dewey{}
	// Gap: ok.
	a := encodeComponents([]int64{1, 1})
	b := encodeComponents([]int64{1, 5})
	z, err := s.Between(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s.String(z) != "1.3" {
		t.Errorf("Between = %s", s.String(z))
	}
	// Adjacent ordinals: relabeling required.
	b2 := encodeComponents([]int64{1, 2})
	if _, err := s.Between(a, b2); err != ErrNoBetween {
		t.Errorf("adjacent Dewey Between: %v", err)
	}
	// Different parents: no shortcut.
	c := encodeComponents([]int64{2, 5})
	if _, err := s.Between(a, c); err != ErrNoBetween {
		t.Errorf("cross-parent Dewey Between: %v", err)
	}
}

// Label regeneration property (the paper's idFactory requirement): running
// the factory twice over the same tokens yields identical labels — labels
// need not be stored.
func TestFactoryDeterminism(t *testing.T) {
	doc := xmltok.MustParse(`<r><a b="c"><d/>t</a><e/></r>`)
	for _, s := range []Scheme{Sequential{}, Dewey{}, OrdPath{}} {
		l1 := run(s, doc)
		l2 := run(s, doc)
		if len(l1) != len(l2) {
			t.Fatalf("%s: lengths differ", s.Name())
		}
		for i := range l1 {
			if s.Compare(l1[i], l2[i]) != 0 {
				t.Fatalf("%s: label %d differs", s.Name(), i)
			}
		}
	}
}

func TestLabelSizes(t *testing.T) {
	// Sequential labels are fixed 8 bytes; hierarchical labels grow with
	// depth — the storage-overhead tradeoff of Section 6.1.
	deepDoc := func(depth int) []token.Token {
		var toks []token.Token
		for i := 0; i < depth; i++ {
			toks = append(toks, token.Elem("d"))
		}
		for i := 0; i < depth; i++ {
			toks = append(toks, token.EndElem())
		}
		return toks
	}
	seq := run(Sequential{}, deepDoc(20))
	dew := run(Dewey{}, deepDoc(20))
	if len(seq[19]) != 8 {
		t.Errorf("sequential label size %d", len(seq[19]))
	}
	if len(dew[19]) <= len(dew[0]) {
		t.Error("dewey labels should grow with depth")
	}
}

func TestBadLabels(t *testing.T) {
	if _, err := decodeUint(Label{1, 2}); err == nil {
		t.Error("short sequential label should fail")
	}
	if _, err := decodeComponents(Label{0x80}); err == nil {
		t.Error("truncated varint should fail")
	}
	s := Sequential{}
	if s.String(Label{1}) == "" {
		t.Error("bad label should still render")
	}
	if (OrdPath{}).String(Label{0x80}) == "" {
		t.Error("bad ordpath label should still render")
	}
}

func TestSchemeNames(t *testing.T) {
	names := []string{Sequential{}.Name(), Dewey{}.Name(), OrdPath{}.Name()}
	want := []string{"sequential", "dewey", "ordpath"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("scheme name %d = %q, want %q", i, names[i], want[i])
		}
	}
}

func BenchmarkFactory(b *testing.B) {
	doc := xmltok.MustParse(`<r><a b="c"><d/>text</a><e><f/><g/></e></r>`)
	for _, s := range []Scheme{Sequential{}, Dewey{}, OrdPath{}} {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f := s.NewFactory(s.Initial())
				for _, t := range doc {
					f.Next(t)
				}
			}
		})
	}
}

func BenchmarkCompare(b *testing.B) {
	for _, s := range []Scheme{Sequential{}, Dewey{}, OrdPath{}} {
		labels := run(s, xmltok.MustParse(`<r><a><b><c><d/></c></b></a></r>`))
		x, y := labels[1], labels[len(labels)-1]
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Compare(x, y)
			}
		})
	}
}

func BenchmarkOrdPathBetween(b *testing.B) {
	s := OrdPath{}
	lo := encodeComponents([]int64{1, 1})
	hi := encodeComponents([]int64{1, 3})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z, err := s.Between(lo, hi)
		if err != nil {
			b.Fatal(err)
		}
		hi = z // keep careting deeper: worst case growth
		if i%64 == 0 {
			hi = encodeComponents([]int64{1, 3})
		}
	}
}
