package idscheme

import (
	"fmt"
	"strings"

	"repro/internal/token"
)

// ORDPATH labels (O'Neil, O'Neil, Pal, Cseri, Schaller, Westbury: "ORDPATHs:
// Insert-Friendly XML Node Labels", SIGMOD 2004) — the scheme the paper
// cites for ids that are both stable and fully comparable in document order.
//
// A label is a sequence of integer components. Freshly assigned ordinals are
// odd (1, 3, 5, ...); even components are "carets" that do not open a tree
// level but create room between two adjacent odd ordinals, so a node can be
// inserted between any two existing labels without relabeling anything:
// between 1.3 and 1.5 comes 1.4.1 (4 is a caret), between 1.4.1 and 1.5
// comes 1.4.3, and so on.

// OrdPath implements Scheme with insert-friendly hierarchical labels.
type OrdPath struct{}

// Name implements Scheme.
func (OrdPath) Name() string { return "ordpath" }

// Initial implements Scheme.
func (OrdPath) Initial() Label { return encodeComponents([]int64{1}) }

// NewFactory implements Scheme. Fresh assignment uses odd ordinals only;
// carets appear solely through Between.
func (OrdPath) NewFactory(first Label) Factory {
	comps, _ := decodeComponents(first)
	if len(comps) == 0 {
		comps = []int64{1}
	}
	return &ordFactory{path: comps, fresh: true}
}

type ordFactory struct {
	path  []int64
	fresh bool
}

func (f *ordFactory) Next(t token.Token) (Label, bool) {
	switch {
	case t.StartsNode():
		if f.fresh {
			f.fresh = false
		} else {
			f.path[len(f.path)-1] += 2 // next odd sibling ordinal
		}
		l := encodeComponents(f.path)
		if t.IsBegin() {
			f.path = append(f.path, -1) // first child will bump to 1
		}
		return l, true
	case t.IsEnd():
		if len(f.path) > 1 {
			f.path = f.path[:len(f.path)-1]
		}
		return nil, false
	default:
		return nil, false
	}
}

// Compare implements Scheme: component-wise, prefix-first — document order.
func (OrdPath) Compare(a, b Label) int { return compareComponents(a, b) }

// Between implements Scheme: a fresh label strictly between a and b (in
// document order) that leaves both unchanged — the ORDPATH careting rule.
func (OrdPath) Between(a, b Label) (Label, error) {
	ac, err := decodeComponents(a)
	if err != nil {
		return nil, err
	}
	bc, err := decodeComponents(b)
	if err != nil {
		return nil, err
	}
	if compareComponents(a, b) >= 0 {
		return nil, fmt.Errorf("idscheme: Between requires a < b")
	}
	return encodeComponents(ordBetween(ac, bc)), nil
}

func ordBetween(ac, bc []int64) []int64 {
	// First differing component index.
	i := 0
	for i < len(ac) && i < len(bc) && ac[i] == bc[i] {
		i++
	}
	prefix := append([]int64{}, ac[:i]...)

	if i == len(ac) {
		// a is a strict prefix (ancestor, order-wise) of b. Any extension of
		// the prefix whose next component precedes bc[i] sorts between.
		y := bc[i]
		v := y - 1
		if v&1 == 0 {
			v = y - 2
		}
		return append(prefix, v) // odd component strictly below y
	}

	x, y := ac[i], bc[i]
	switch {
	case y-x >= 2:
		// Room at this level.
		v := x + 1
		if v&1 != 0 {
			return append(prefix, v)
		}
		if v+1 < y {
			return append(prefix, v+1) // prefer a plain odd ordinal
		}
		return append(prefix, v, 1) // caret in: even component + odd 1
	default: // y == x+1
		// No room: extend under a's component, past a's remaining suffix.
		out := append(prefix, x)
		if i+1 == len(ac) {
			return append(out, 1)
		}
		return append(out, ac[i+1]+2)
	}
}

// String implements Scheme.
func (OrdPath) String(l Label) string {
	comps, err := decodeComponents(l)
	if err != nil {
		return fmt.Sprintf("bad(% x)", []byte(l))
	}
	parts := make([]string, len(comps))
	for i, c := range comps {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, ".")
}
