// Automatic failover under real violence: a three-node fleet (subprocess
// primary, two in-process followers) loses its primary to kill -9 in the
// middle of a commit stream while one follower sits behind an active
// network partition. While the partition holds, nobody may promote — the
// quorum rule, demonstrated, not assumed. Once it heals, a follower must
// promote itself within the detection budget, with zero acknowledged
// writes lost; a revived old primary must be fenced with the typed error
// on both the write and the segment-ship path; and every node must Verify
// clean after convergence.
package server_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	axml "repro"
	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/fault"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// Failover protocol timings shared by the parent test and the helper
// subprocess (same binary, same constants). Generous enough for -race on
// loaded CI, short enough that a full failover fits a test.
const (
	foPeersEnv = "AXMLSERVED_FAILOVER_PEERS"
	foLeaseIv  = 100 * time.Millisecond
	foLeaseTO  = 600 * time.Millisecond
)

func foStoreCfg() core.Config {
	return core.Config{Mode: core.RangePartial, PageSize: 512}
}

func foPeerOpts() server.ClientOptions {
	// DialTimeout below the coordinator's RPC timeout so a blackholed
	// peer cannot stretch a lease round past the leader's own validity
	// window — a minority partition must not fence the primary's writes.
	return server.ClientOptions{DialTimeout: 250 * time.Millisecond}
}

// TestHelperFailoverPrimary is not a test: it is the fleet primary the
// failover chaos test kills -9. It serves a WAL-backed store with a
// failover coordinator attached (fleet peers from the environment) and a
// base backup published for the followers, until killed.
func TestHelperFailoverPrimary(t *testing.T) {
	dir := os.Getenv(helperEnv)
	peerSpec := os.Getenv(foPeersEnv)
	if dir == "" || peerSpec == "" {
		t.Skip("helper process entry point")
	}
	st, err := axml.OpenFileWAL(filepath.Join(dir, "store.db"), helperCfg(), filepath.Join(dir, "segments"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.BackupTo(filepath.Join(dir, "base.bak")); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Options{Store: st, ArchiveDir: filepath.Join(dir, "segments"), NodeID: "p"})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := []failover.Peer{{ID: "p", Addr: ln.Addr().String()}}
	for _, kv := range splitList(peerSpec) {
		id, addr, ok := cutEq(kv)
		if !ok {
			t.Fatalf("bad peer spec %q", kv)
		}
		peers = append(peers, failover.Peer{ID: id, Addr: addr})
	}
	if _, err := srv.AttachFailover(failover.Config{
		NodeID:        "p",
		Peers:         peers,
		TermPath:      filepath.Join(dir, "p.term"),
		LeaseInterval: foLeaseIv,
		LeaseTimeout:  foLeaseTO,
	}, server.NewFleetPeers(foPeerOpts())); err != nil {
		t.Fatal(err)
	}
	// Atomic publish so the parent never reads a half-written address.
	tmp := os.Getenv(helperAddrEnv) + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, os.Getenv(helperAddrEnv)); err != nil {
		t.Fatal(err)
	}
	srv.Serve(ln) // until SIGKILL
}

func splitList(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != ',' {
			i++
		}
		if i > 0 {
			out = append(out, s[:i])
		}
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return out
}

func cutEq(kv string) (string, string, bool) {
	for i := 0; i < len(kv); i++ {
		if kv[i] == '=' {
			return kv[:i], kv[i+1:], i > 0 && i < len(kv)-1
		}
	}
	return "", "", false
}

// gatedPeers simulates the outbound half of a symmetric partition: while
// cut, every lease and vote this node tries to send fails. Combined with
// a blackholed listener (the inbound half) the node is fully isolated.
type gatedPeers struct {
	inner failover.PeerClient
	cut   atomic.Bool
}

func (g *gatedPeers) Lease(ctx context.Context, addr string, req failover.LeaseRequest) (failover.LeaseReply, error) {
	if g.cut.Load() {
		return failover.LeaseReply{}, errors.New("test: outbound partitioned")
	}
	return g.inner.Lease(ctx, addr, req)
}

func (g *gatedPeers) RequestVote(ctx context.Context, addr string, req failover.VoteRequest) (failover.VoteReply, error) {
	if g.cut.Load() {
		return failover.VoteReply{}, errors.New("test: outbound partitioned")
	}
	return g.inner.RequestVote(ctx, addr, req)
}

// foNode is one in-process follower of the chaos fleet.
type foNode struct {
	id      string
	db      string
	archive string
	addr    string
	f       *replica.Follower
	srv     *server.Server
}

// startFoFollower bootstraps a follower from the helper's base backup,
// tailing the shared segment archive (the shared-storage deployment the
// drain-before-promote guarantee is built for), serves it on ln with a
// failover coordinator attached, and keeps its tail loop polling fast.
func startFoFollower(t *testing.T, dir, id string, ln net.Listener, fleet []failover.Peer, gate *gatedPeers) *foNode {
	t.Helper()
	n := &foNode{
		id:      id,
		db:      filepath.Join(dir, id+".db"),
		archive: filepath.Join(dir, id+".archive"),
		addr:    ln.Addr().String(),
	}
	tr := replica.NewDirTransport(filepath.Join(dir, "segments"), replica.DirTransportOptions{})
	f, err := replica.Open(n.db, tr, replica.Options{
		Store:        foStoreCfg(),
		Base:         filepath.Join(dir, "base.bak"),
		ArchiveDir:   n.archive,
		PollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	srv, err := server.New(server.Options{Follower: f, NodeID: id})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	peers := server.NewFleetPeers(foPeerOpts())
	gate.inner = peers
	if _, err := srv.AttachFailover(failover.Config{
		NodeID:        id,
		Peers:         fleet,
		TermPath:      filepath.Join(dir, id+".term"),
		LeaseInterval: foLeaseIv,
		LeaseTimeout:  foLeaseTO,
		Logf:          t.Logf,
	}, gate); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.CloseFailover()
		peers.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		f.Close()
		if ps := srv.PromotedStore(); ps != nil {
			ps.Close()
		}
	})
	n.f, n.srv = f, srv
	return n
}

// TestFailoverChaosKill9PrimaryWithPartition is the acceptance scenario.
func TestFailoverChaosKill9PrimaryWithPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	dir := t.TempDir()
	ctx := context.Background()

	// Follower listeners exist before the helper starts — their addresses
	// go into the helper's fleet list. B's carries the network chaos.
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	chB := fault.NewNetChaos(11)
	wrappedB := chB.WrapListener(lnB)
	t.Cleanup(chB.Heal)

	// The primary, in a process of its own so kill -9 is real.
	addrFile := filepath.Join(dir, "addr")
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperFailoverPrimary$", "-test.v")
	cmd.Env = append(os.Environ(),
		helperEnv+"="+dir,
		helperAddrEnv+"="+addrFile,
		foPeersEnv+"=a="+lnA.Addr().String()+",b="+lnB.Addr().String(),
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	var paddr string
	waitFor(t, func() bool {
		b, err := os.ReadFile(addrFile)
		if err != nil {
			return false
		}
		paddr = string(b)
		return paddr != ""
	})

	fleet := []failover.Peer{
		{ID: "p", Addr: paddr},
		{ID: "a", Addr: lnA.Addr().String()},
		{ID: "b", Addr: lnB.Addr().String()},
	}
	gateA, gateB := &gatedPeers{}, &gatedPeers{}
	a := startFoFollower(t, dir, "a", lnA, fleet, gateA)
	b := startFoFollower(t, dir, "b", wrappedB, fleet, gateB)

	// The root document, written through the wire. The first writes race
	// the primary's first quorum lease, so retry until it lands.
	c, err := server.Dial(paddr, server.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var root core.NodeID
	waitFor(t, func() bool {
		lctx, cancel := context.WithTimeout(ctx, time.Second)
		defer cancel()
		id, lerr := c.LoadIdem(lctx, `<log/>`, "boot-1")
		if lerr != nil {
			return false
		}
		root = id
		return true
	})

	// Writers hammer the primary. Only acked inserts count; errors mean
	// redial and keep going — the kill, and any transient quorum-lease
	// hiccup, must never stop the attempt stream on their own.
	var acked, attempted atomic.Int64
	stopWrite := make(chan struct{})
	var wg sync.WaitGroup
	for wkr := 0; wkr < 2; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			cc, err := server.Dial(paddr, server.ClientOptions{})
			if err != nil {
				cc = nil
			}
			defer func() {
				if cc != nil {
					cc.Close()
				}
			}()
			for i := 0; ; i++ {
				select {
				case <-stopWrite:
					return
				default:
				}
				if cc == nil {
					nc, derr := server.Dial(paddr, server.ClientOptions{DialTimeout: 500 * time.Millisecond})
					if derr != nil {
						time.Sleep(10 * time.Millisecond)
						continue
					}
					cc = nc
				}
				attempted.Add(1)
				wctx, wcancel := context.WithTimeout(ctx, 2*time.Second)
				_, werr := cc.Insert(wctx, server.InsertLast, root, fmt.Sprintf(`<e w="%d" i="%d"/>`, wkr, i))
				wcancel()
				if werr != nil {
					cc.Close()
					cc = nil
					continue
				}
				acked.Add(1)
				time.Sleep(time.Millisecond)
			}
		}(wkr)
	}

	// Phase 1: a healthy fleet commits and replicates.
	waitFor(t, func() bool { return acked.Load() >= 40 && a.f.Stats().AppliedLSN > 0 })

	// Phase 2: partition follower B, fully and symmetrically. The primary
	// keeps its quorum through A — writes must keep flowing.
	chB.Partition()
	gateB.cut.Store(true)
	ackedAtPartition := acked.Load()
	waitFor(t, func() bool { return acked.Load() >= ackedAtPartition+20 })

	// Phase 3: kill -9 the primary mid-commit-stream, partition active.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	killed = true
	cmd.Wait()
	close(stopWrite)
	wg.Wait()
	ackedN, attemptedN := acked.Load(), attempted.Load()
	t.Logf("kill -9 after %d acked / %d attempted commits (%d acked under the partition)",
		ackedN, attemptedN, ackedN-ackedAtPartition)

	// While the partition holds, promotion is impossible: A cannot reach
	// B for its vote, B cannot send one. Watch long enough for the
	// detector to fire and elections to be attempted — and verify nobody
	// promotes anyway. This is the split-brain half of the guarantee.
	windowEnd := time.Now().Add(2 * time.Second)
	for time.Now().Before(windowEnd) {
		if a.srv.PromotedStore() != nil || b.srv.PromotedStore() != nil {
			t.Fatal("a follower promoted during the partition — quorum rule violated")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stA, stB := a.srv.Failover().Status(), b.srv.Failover().Status()
	t.Logf("under partition: a %+v; b %+v", stA, stB)

	// Phase 4: heal. Now a quorum exists and exactly one follower must
	// promote within the detection budget: lease timeout + suspicion
	// ticks + randomized election spacing + one vote-floor-jump round +
	// the drain, with slack for -race on loaded CI.
	chB.Heal()
	gateB.cut.Store(false)
	healAt := time.Now()
	detectBudget := 10*foLeaseTO + 2*time.Second
	var winner, loser *foNode
	for winner == nil {
		if time.Since(healAt) > detectBudget {
			t.Fatalf("no follower promoted within the detection budget %v (a %+v; b %+v)",
				detectBudget, a.srv.Failover().Status(), b.srv.Failover().Status())
		}
		switch {
		case a.srv.PromotedStore() != nil:
			winner, loser = a, b
		case b.srv.PromotedStore() != nil:
			winner, loser = b, a
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	promotedIn := time.Since(healAt)
	co := winner.srv.Failover()
	epoch := co.Epoch()
	t.Logf("follower %s promoted %v after heal at epoch %d", winner.id, promotedIn, epoch)
	if epoch < 2 {
		t.Fatalf("promotion kept epoch %d, want >= 2", epoch)
	}
	// Let the new leader's first lease rounds land, then confirm there is
	// exactly one primary — the loser stayed a follower.
	time.Sleep(3 * foLeaseIv)
	if loser.srv.PromotedStore() != nil {
		t.Fatal("both followers promoted — split brain")
	}

	// Zero acknowledged writes lost: the winner drained the dead
	// primary's archive before reopening, so every acked commit is in its
	// store. (Commits whose ack died with the primary may or may not be —
	// hence the attempted upper bound, same as every chaos suite here.)
	wst := winner.srv.PromotedStore()
	v, err := axml.QueryValue(wst, `count(/log/e)`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("count = %q", v)
	}
	if n < ackedN || n > attemptedN {
		t.Fatalf("new primary has %d commits, want between %d acked and %d attempted — an acknowledged write was lost", n, ackedN, attemptedN)
	}
	if err := wst.Verify(); err != nil {
		t.Fatalf("new primary verify: %v", err)
	}
	// The archive's epoch manifest records the new primacy.
	if got, err := wal.CurrentEpoch(winner.archive); err != nil || got != epoch {
		t.Fatalf("winner archive epoch manifest = %d, %v; want %d", got, err, epoch)
	}

	// The fleet client needs no operator: it rediscovers the new primary
	// (the dead endpoint still listed) and writes land under the new epoch.
	fc := dialFleet(t, server.FleetOptions{HealthTTL: 50 * time.Millisecond, Retry: quickRetry()},
		paddr, a.addr, b.addr)
	for i := 0; i < 5; i++ {
		wctx, wcancel := context.WithTimeout(ctx, 5*time.Second)
		_, werr := fc.Insert(wctx, server.InsertLast, root, fmt.Sprintf(`<post i="%d"/>`, i))
		wcancel()
		if werr != nil {
			t.Fatalf("fleet write %d after failover: %v", i, werr)
		}
	}
	if v, err := axml.QueryValue(wst, `count(/log/post)`); err != nil || v != "5" {
		t.Fatalf("post-failover fleet writes on new primary: %q, %v; want 5", v, err)
	}

	// Phase 5: resurrect the old primary from its surviving files. Its
	// Verify must be clean — the kill tore nothing — and the moment its
	// coordinator hears of the new epoch it must fence, with the typed
	// error on the write path AND the segment-ship path.
	pst, err := axml.ReopenFileWAL(filepath.Join(dir, "store.db"), helperCfg(), filepath.Join(dir, "segments"))
	if err != nil {
		t.Fatal(err)
	}
	defer pst.Close()
	if err := pst.Verify(); err != nil {
		t.Fatalf("revived old primary verify: %v", err)
	}
	psrv, err := server.New(server.Options{Store: pst, ArchiveDir: filepath.Join(dir, "segments"), NodeID: "p"})
	if err != nil {
		t.Fatal(err)
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go psrv.Serve(pln)
	pPeers := server.NewFleetPeers(foPeerOpts())
	if _, err := psrv.AttachFailover(failover.Config{
		NodeID:        "p",
		Peers:         fleet,
		TermPath:      filepath.Join(dir, "p.term"), // the helper's own term file
		LeaseInterval: foLeaseIv,
		LeaseTimeout:  foLeaseTO,
		Logf:          t.Logf,
	}, pPeers); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		psrv.CloseFailover()
		pPeers.Close()
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		psrv.Shutdown(sctx)
	})
	// Its first heartbeats at the stale epoch meet the new one and latch
	// the fence, durably.
	waitFor(t, func() bool { return psrv.Failover().Fenced() })

	pc, err := server.Dial(pln.Addr().String(), server.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	fctx, fcancel := context.WithTimeout(ctx, 5*time.Second)
	defer fcancel()
	if _, werr := pc.Insert(fctx, server.InsertLast, root, `<zombie/>`); !errors.Is(werr, failover.ErrFenced) {
		t.Fatalf("write on revived old primary: got %v, want ErrFenced", werr)
	} else if core.Retryable(werr) {
		t.Fatal("ErrFenced must not classify retryable against the same node")
	}
	pc.SetEpoch(1) // even stamped with its own old epoch
	if _, werr := pc.Insert(fctx, server.InsertLast, root, `<zombie/>`); !errors.Is(werr, failover.ErrFenced) {
		t.Fatalf("stale-epoch write on revived old primary: got %v, want ErrFenced", werr)
	}
	if _, serr := pc.Segments(fctx, 0); !errors.Is(serr, failover.ErrFenced) {
		t.Fatalf("segment listing on revived old primary: got %v, want ErrFenced", serr)
	}
	if _, serr := pc.FetchSegment(fctx, 1); !errors.Is(serr, failover.ErrFenced) {
		t.Fatalf("segment fetch on revived old primary: got %v, want ErrFenced", serr)
	}
	if v, err := axml.QueryValue(wst, `count(/log/zombie)`); err != nil || v != "0" {
		t.Fatalf("zombie writes reached the new timeline: %q, %v", v, err)
	}

	// Phase 6: convergence. The loser re-points at the winner — over the
	// network, epoch-stamped, served from the winner's own archive — and
	// must land Verify-clean at the same position and content.
	if err := loser.f.Close(); err != nil {
		t.Fatal(err)
	}
	ntr := server.NewNetTransport(winner.addr, server.NetTransportOptions{
		Epoch: func() uint64 { return co.Epoch() },
	})
	f2, err := replica.Open(loser.db, ntr, replica.Options{
		Store:      foStoreCfg(),
		ArchiveDir: loser.archive,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	waitFor(t, func() bool {
		cctx, ccancel := context.WithTimeout(ctx, 2*time.Second)
		defer ccancel()
		if err := f2.CatchUp(cctx); err != nil {
			return false
		}
		return f2.Stats().AppliedLSN == wst.Stats().ArchiveLSN
	})
	verifyReplica(t, f2)
	if got := f2.Epoch(); got != epoch {
		t.Fatalf("loser sidecar epoch %d after convergence, want %d", got, epoch)
	}
	var gotE, gotP string
	if err := f2.Read(replica.ReadOptions{}, func(s *core.Store) error {
		var rerr error
		if gotE, rerr = axml.QueryValue(s, `count(/log/e)`); rerr != nil {
			return rerr
		}
		gotP, rerr = axml.QueryValue(s, `count(/log/post)`)
		return rerr
	}); err != nil {
		t.Fatal(err)
	}
	if gotE != v0(n) || gotP != "5" {
		t.Fatalf("converged follower has %s commits and %s post-failover writes, want %d and 5", gotE, gotP, n)
	}
	t.Logf("converged: %d commits + 5 post-failover writes on every node, epoch %d everywhere", n, epoch)
}

func v0(n int64) string { return strconv.FormatInt(n, 10) }

// TestFailoverInProcessPromotionAfterLeaderDeath is the fast, in-process
// half of the failover coverage (no subprocess, runs under -short): a
// three-node fleet over real listeners loses its primary to a shutdown,
// the lowest-ID caught-up follower self-promotes under epoch 2, and a
// fleet client writes to the new primary with no operator involved.
func TestFailoverInProcessPromotionAfterLeaderDeath(t *testing.T) {
	dir := t.TempDir()
	w := startWALPrimary(t, server.Options{NodeID: "p"})

	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fleet := []failover.Peer{
		{ID: "p", Addr: w.addr},
		{ID: "a", Addr: lnA.Addr().String()},
		{ID: "b", Addr: lnB.Addr().String()},
	}
	attach := func(srv *server.Server, id string) *failover.Coordinator {
		t.Helper()
		peers := server.NewFleetPeers(foPeerOpts())
		co, err := srv.AttachFailover(failover.Config{
			NodeID:        id,
			Peers:         fleet,
			TermPath:      filepath.Join(dir, id+".term"),
			LeaseInterval: 50 * time.Millisecond,
			LeaseTimeout:  300 * time.Millisecond,
			Logf:          t.Logf,
		}, peers)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			srv.CloseFailover()
			peers.Close()
		})
		return co
	}

	// Followers tail the primary over the network and serve on their own
	// listeners, coordinators attached.
	mk := func(id string, ln net.Listener) (*replica.Follower, *server.Server) {
		t.Helper()
		f := w.follower(t, id, server.NetTransportOptions{})
		srv, err := server.New(server.Options{Follower: f, NodeID: id})
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() {
			sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer scancel()
			srv.Shutdown(sctx)
			if ps := srv.PromotedStore(); ps != nil {
				ps.Close()
			}
		})
		return f, srv
	}
	fA, srvA := mk("a", lnA)
	fB, srvB := mk("b", lnB)
	attach(w.srv, "p")
	attach(srvA, "a")
	attach(srvB, "b")

	// The leader establishes its lease; both followers learn who leads.
	waitFor(t, func() bool {
		s := w.srv.Failover().Status()
		return s.Role == "primary" && s.LeaseAgeMs >= 0
	})
	waitFor(t, func() bool {
		return srvA.Failover().Status().LeaderID == "p" && srvB.Failover().Status().LeaderID == "p"
	})

	// Epoch-0 wire writes pass the leader's quorum-lease gate, and the
	// health surface carries the failover fields.
	ctx := context.Background()
	c := w.dial(server.ClientOptions{})
	var last core.NodeID
	for i := 0; i < 5; i++ {
		id, err := c.Insert(ctx, server.InsertLast, w.root, fmt.Sprintf(`<e n="%d"/>`, i))
		if err != nil {
			t.Fatalf("write under quorum lease: %v", err)
		}
		last = id
	}
	_ = last
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.NodeID != "p" || h.Epoch != 1 || h.Fenced {
		t.Fatalf("primary health = %+v, want node p at epoch 1, unfenced", h)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Failover == nil || st.Failover.Role != "primary" {
		t.Fatalf("stats failover block = %+v, want primary status", st.Failover)
	}

	// Both followers level with the primary, then the primary dies (a
	// clean death here; the chaos test does it with kill -9).
	waitFor(t, func() bool {
		aok := fA.CatchUp(ctx) == nil && fA.Stats().AppliedLSN == w.wp.LSN()
		bok := fB.CatchUp(ctx) == nil && fB.Stats().AppliedLSN == w.wp.LSN()
		return aok && bok
	})
	wantV, err := w.st.XMLString()
	if err != nil {
		t.Fatal(err)
	}
	w.srv.CloseFailover()
	sctx, scancel := context.WithTimeout(ctx, 5*time.Second)
	defer scancel()
	w.srv.Shutdown(sctx)

	// Detection, election, promotion — no operator. Equal LSNs, so the
	// tie breaks to the lower node ID: a.
	waitFor(t, func() bool { return srvA.PromotedStore() != nil })
	if srvB.PromotedStore() != nil {
		t.Fatal("both followers promoted — split brain")
	}
	co := srvA.Failover()
	if got := co.Epoch(); got < 2 {
		t.Fatalf("promoted under epoch %d, want >= 2", got)
	}

	// The fleet client, pointed at the whole original fleet, routes
	// writes to the new primary under the new epoch.
	fc := dialFleet(t, server.FleetOptions{HealthTTL: 30 * time.Millisecond, Retry: quickRetry()},
		w.addr, lnA.Addr().String(), lnB.Addr().String())
	wctx, wcancel := context.WithTimeout(ctx, 5*time.Second)
	defer wcancel()
	if _, err := fc.Insert(wctx, server.InsertLast, w.root, `<after-failover/>`); err != nil {
		t.Fatalf("fleet write after automatic failover: %v", err)
	}
	ast := srvA.PromotedStore()
	if err := ast.Verify(); err != nil {
		t.Fatalf("promoted store verify: %v", err)
	}
	got, err := ast.XMLString()
	if err != nil {
		t.Fatal(err)
	}
	want := wantV[:len(wantV)-len("</log>")] + "<after-failover/></log>"
	if got != want {
		t.Fatalf("promoted store serves %q, want %q", got, want)
	}
}
