// White-box tests for the per-tenant admission gate: queue-slot hygiene
// when a queued caller's context dies, idempotent release, and FIFO grant
// order with shedding at a full queue.
package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

// gateWaitFor polls until cond holds or the test deadline budget runs out.
func gateWaitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTenantGateCtxCancelWhileQueued(t *testing.T) {
	g := newTenantGate(Tenant{Name: "t", MaxConcurrentOps: 1, MaxQueuedOps: 2})

	hold, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		rel, err := g.acquire(ctx)
		if rel != nil {
			rel()
		}
		errCh <- err
	}()
	gateWaitFor(t, "waiter to queue", func() bool { return g.waiting.Load() == 1 })

	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire after cancel: got %v, want context.Canceled", err)
	}

	// The abandoned waiter must give back both its queue slot and its
	// waiting count; the gate keeps granting as if it never queued.
	gateWaitFor(t, "queue slot to drain", func() bool {
		return g.waiting.Load() == 0 && len(g.queue) == 0
	})
	hold()
	rel, err := g.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after canceled waiter: %v", err)
	}
	rel()
	if n := g.inOps.Load(); n != 0 {
		t.Fatalf("inOps = %d after all releases, want 0", n)
	}
}

func TestTenantGateDoubleReleaseSafe(t *testing.T) {
	g := newTenantGate(Tenant{Name: "t", MaxConcurrentOps: 1})

	rel, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // must be a no-op, not a second semaphore drain

	// Capacity is still exactly one: a holder plus a short-deadline second
	// acquire proves no extra slot was minted by the double release.
	hold, err := g.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after double release: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := g.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second concurrent acquire: got %v, want DeadlineExceeded (cap must stay 1)", err)
	}
	hold()
	if n := g.inOps.Load(); n != 0 {
		t.Fatalf("inOps = %d, want 0", n)
	}

	// The unlimited gate's release must be idempotent too.
	u := newTenantGate(Tenant{Name: "u"})
	urel, err := u.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	urel()
	urel()
	if n := u.inOps.Load(); n != 0 {
		t.Fatalf("unlimited gate inOps = %d after double release, want 0", n)
	}
}

func TestTenantGateFIFOFairnessAtFullQueue(t *testing.T) {
	const waiters = 3
	g := newTenantGate(Tenant{Name: "t", MaxConcurrentOps: 1, MaxQueuedOps: waiters})

	hold, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Enqueue waiters strictly one at a time so arrival order is known.
	grants := make(chan int, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		before := g.waiting.Load()
		go func() {
			rel, err := g.acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			grants <- i
			rel()
		}()
		gateWaitFor(t, "waiter to queue", func() bool { return g.waiting.Load() == before+1 })
	}

	// Queue is now full: the next arrival sheds instead of waiting.
	if _, err := g.acquire(context.Background()); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("acquire at full queue: got %v, want ErrQuotaExceeded", err)
	}
	if n := g.shed.Load(); n != 1 {
		t.Fatalf("shed = %d, want 1", n)
	}

	// Releasing the held slot drains the queue in arrival order: blocked
	// channel sends are granted FIFO by the runtime, and each waiter
	// releases immediately, handing the slot to the next in line.
	hold()
	for want := 0; want < waiters; want++ {
		select {
		case got := <-grants:
			if got != want {
				t.Fatalf("grant order: got waiter %d in position %d", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for grant %d", want)
		}
	}
	gateWaitFor(t, "gate to go idle", func() bool {
		return g.inOps.Load() == 0 && g.waiting.Load() == 0 && len(g.queue) == 0
	})
}
