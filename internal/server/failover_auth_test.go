// Failover-plane authorization: LEASE / VOTE frames are fleet-internal
// control traffic. A tenant token — or any session at all, once a fleet
// credential exists — must not be able to speak them: one hostile LEASE
// at a huge epoch would otherwise durably fence the primary, and a
// hostile VOTE could inflate promises until an election wraps to zero.
package server_test

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/failover"
	"repro/internal/server"
)

// attachFO wires a single-node failover coordinator into a test server.
func attachFO(t *testing.T, e *env) {
	t.Helper()
	_, err := e.srv.AttachFailover(failover.Config{
		NodeID:   "p",
		Peers:    []failover.Peer{{ID: "p", Addr: e.addr}},
		TermPath: filepath.Join(t.TempDir(), "p.term"),
		Logf:     t.Logf,
	}, server.NewFleetPeers(server.ClientOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.srv.CloseFailover)
}

func TestFleetPlaneRequiresFleetCredential(t *testing.T) {
	e := start(t, memCfg(), server.Options{
		Tenants:    map[string]server.Tenant{"tok-a": {Name: "a"}},
		FleetToken: "fleet-secret",
		NodeID:     "p",
	})
	attachFO(t, e)
	ctx := context.Background()

	// A tenant session keeps its data plane but is refused the failover
	// plane — both frame types.
	tc := e.dial(server.ClientOptions{Token: "tok-a"})
	if err := tc.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Lease(ctx, failover.LeaseRequest{Epoch: 1, LeaderID: "evil"}); !errors.Is(err, server.ErrAuth) {
		t.Fatalf("tenant lease = %v, want ErrAuth", err)
	}
	if _, err := tc.RequestVote(ctx, failover.VoteRequest{Epoch: 2, CandidateID: "evil"}); !errors.Is(err, server.ErrAuth) {
		t.Fatalf("tenant vote = %v, want ErrAuth", err)
	}

	// The dedicated fleet credential speaks it.
	fc := e.dial(server.ClientOptions{Token: "fleet-secret"})
	rep, err := fc.Lease(ctx, failover.LeaseRequest{Epoch: 1, LeaderID: "p"})
	if err != nil {
		t.Fatalf("fleet lease: %v", err)
	}

	// Even an authorized sender cannot jump the epoch absurdly: the
	// review scenario — LEASE at 2^64-1 — must neither fence the node nor
	// move its epoch, and writes keep flowing.
	hostile, err := fc.Lease(ctx, failover.LeaseRequest{Epoch: math.MaxUint64, LeaderID: "evil"})
	if err != nil {
		t.Fatal(err)
	}
	if hostile.OK || hostile.Epoch != rep.Epoch {
		t.Fatalf("hostile max-epoch lease: %+v (epoch was %d)", hostile, rep.Epoch)
	}
	if _, err := tc.Load(ctx, `<r/>`); err != nil {
		t.Fatalf("write after hostile lease: %v — node must not be fenced", err)
	}
}

func TestFleetPlaneClosedWhenTenantsWithoutFleetToken(t *testing.T) {
	e := start(t, memCfg(), server.Options{
		Tenants: map[string]server.Tenant{"tok-a": {Name: "a"}},
		NodeID:  "p",
	})
	attachFO(t, e)
	tc := e.dial(server.ClientOptions{Token: "tok-a"})
	if _, err := tc.Lease(context.Background(), failover.LeaseRequest{Epoch: 1, LeaderID: "x"}); !errors.Is(err, server.ErrAuth) {
		t.Fatalf("lease on tokenless authenticated fleet = %v, want ErrAuth", err)
	}
}

func TestFleetPlaneOpenOnUnauthenticatedServer(t *testing.T) {
	// No credentials configured anywhere: the plane stays open (dev and
	// test fleets); setting a FleetToken is what locks it down.
	e := start(t, memCfg(), server.Options{NodeID: "p"})
	attachFO(t, e)
	c := e.dial(server.ClientOptions{})
	if _, err := c.Lease(context.Background(), failover.LeaseRequest{Epoch: 1, LeaderID: "p"}); err != nil {
		t.Fatalf("lease on open server: %v", err)
	}
}

func TestFleetTokenMustNotCollideWithTenantToken(t *testing.T) {
	e := start(t, memCfg(), server.Options{})
	_, err := server.New(server.Options{
		Store:      e.st,
		Tenants:    map[string]server.Tenant{"shared": {Name: "a"}},
		FleetToken: "shared",
	})
	if err == nil {
		t.Fatal("want error for FleetToken equal to a tenant token")
	}
}
