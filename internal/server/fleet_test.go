// The resilient fleet client end to end: freshest-replica read routing
// that degrades down the ranked order instead of erroring, bounded
// staleness falling through a too-stale replica to the primary,
// idempotency-tokened writes riding through connection cuts without
// double-applying, write failover to a replica promoted in place, and
// hedged reads cutting tail latency.
package server_test

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	axml "repro"
	"repro/internal/replica"
	"repro/internal/retryx"
	"repro/internal/server"
)

// replicaSrv is one served follower: the follower itself plus the server
// fronting it on its own loopback port.
type replicaSrv struct {
	f    *replica.Follower
	srv  *server.Server
	addr string
}

func (w *walEnv) serveFollower(t *testing.T, name string) *replicaSrv {
	t.Helper()
	f := w.follower(t, name, server.NetTransportOptions{})
	srv, err := server.New(server.Options{Follower: f})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return &replicaSrv{f: f, srv: srv, addr: ln.Addr().String()}
}

func dialFleet(t *testing.T, opt server.FleetOptions, eps ...string) *server.FleetClient {
	t.Helper()
	fc, err := server.DialFleet(eps, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fc.Close() })
	return fc
}

func quickRetry() retryx.Policy {
	return retryx.Policy{MaxAttempts: 8, Initial: 20 * time.Millisecond, Max: 100 * time.Millisecond}
}

// TestFleetReadsRouteToFreshestReplica: with two replicas at different
// applied LSNs, reads land on the fresher one — and when its server dies,
// the same read degrades to the lagging replica with zero surfaced error.
func TestFleetReadsRouteToFreshestReplica(t *testing.T) {
	w := startWALPrimary(t, server.Options{})
	for i := 0; i < 3; i++ {
		w.commit()
	}
	r1 := w.serveFollower(t, "r1")
	r2 := w.serveFollower(t, "r2")
	ctx := context.Background()
	if err := r1.f.CatchUp(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r2.f.CatchUp(ctx); err != nil {
		t.Fatal(err)
	}
	w.commit()
	w.commit()
	if err := r1.f.CatchUp(ctx); err != nil { // r1 fresh; r2 two segments behind
		t.Fatal(err)
	}

	fc := dialFleet(t, server.FleetOptions{HealthTTL: 5 * time.Second, Retry: quickRetry()},
		w.addr, r1.addr, r2.addr)

	v, err := fc.Value(ctx, `count(/log/e)`)
	if err != nil {
		t.Fatal(err)
	}
	if v != "5" {
		t.Fatalf("read served count=%s, want 5 — routed to a stale replica", v)
	}

	// Health probes are now cached for the TTL, so the next read costs
	// exactly one op — on the freshest replica, nowhere else.
	p0, a0, b0 := w.srv.Stats().OpsTotal, r1.srv.Stats().OpsTotal, r2.srv.Stats().OpsTotal
	if v, err = fc.Value(ctx, `count(/log/e)`); err != nil || v != "5" {
		t.Fatalf("second read: %q, %v", v, err)
	}
	if d := r1.srv.Stats().OpsTotal - a0; d != 1 {
		t.Fatalf("freshest replica served %d ops, want 1", d)
	}
	if d := r2.srv.Stats().OpsTotal - b0; d != 0 {
		t.Fatalf("lagging replica served %d ops, want 0", d)
	}
	if d := w.srv.Stats().OpsTotal - p0; d != 0 {
		t.Fatalf("primary served %d ops, want 0 — reads must offload to replicas", d)
	}

	// Kill the freshest replica's server. Its health is still cached as
	// good, so the read is attempted there, fails at the connection, and
	// walks to the next rank — the lagging replica — without an error.
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	r1.srv.Shutdown(sctx)
	v, err = fc.Value(ctx, `count(/log/e)`)
	if err != nil {
		t.Fatalf("read after replica death surfaced an error: %v", err)
	}
	if v != "3" {
		t.Fatalf("degraded read count=%s, want 3 (the lagging replica's view; an empty gate accepts staleness)", v)
	}
}

// TestFleetBoundedStalenessFallsThroughToPrimary: a session read gate the
// replica cannot satisfy makes it refuse with ErrTooStale, and the fleet
// walks that refusal through to the primary instead of surfacing it.
func TestFleetBoundedStalenessFallsThroughToPrimary(t *testing.T) {
	w := startWALPrimary(t, server.Options{})
	w.commit()
	r := w.serveFollower(t, "r1")
	ctx := context.Background()
	if err := r.f.CatchUp(ctx); err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 2; i++ {
		last = w.commit() // replica now lags by two segments
	}

	// Directly, the lagging replica refuses the gated read.
	gate := server.ClientOptions{Gate: replica.ReadOptions{MinLSN: last}}
	c, err := server.Dial(r.addr, gate)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Value(ctx, `count(/log/e)`); !errors.Is(err, replica.ErrTooStale) {
		t.Fatalf("gated read on lagging replica: got %v, want ErrTooStale", err)
	}

	// Through the fleet, the same gate routes the read to the primary.
	fc := dialFleet(t, server.FleetOptions{Client: gate, Retry: quickRetry()}, w.addr, r.addr)
	v, err := fc.Value(ctx, `count(/log/e)`)
	if err != nil {
		t.Fatalf("gated fleet read surfaced an error: %v", err)
	}
	if v != "3" {
		t.Fatalf("gated fleet read count=%s, want 3 (the primary's fresh view)", v)
	}
}

// TestFleetWriteRidesThroughConnectionCut: severing the fleet's session
// between writes must be invisible — redial, retry with the same
// idempotency token, no double-apply, no drop.
func TestFleetWriteRidesThroughConnectionCut(t *testing.T) {
	w := startWALPrimary(t, server.Options{})
	fc := dialFleet(t, server.FleetOptions{Retry: quickRetry()}, w.addr)
	ctx := context.Background()

	if _, err := fc.Insert(ctx, server.InsertLast, w.root, `<e n="a"/>`); err != nil {
		t.Fatal(err)
	}
	w.srv.CloseClientConns()
	if _, err := fc.Insert(ctx, server.InsertLast, w.root, `<e n="b"/>`); err != nil {
		t.Fatalf("write after connection cut: %v", err)
	}
	v, err := fc.Value(ctx, `count(/log/e)`)
	if err != nil {
		t.Fatal(err)
	}
	if v != "2" {
		t.Fatalf("count = %s, want 2 — the cut must neither double-apply nor drop a write", v)
	}
}

// TestFleetWriteFailoverToPromotedReplica: the primary dies, the operator
// promotes the serving replica in place, and the same fleet handle
// re-discovers the new primary and keeps writing — client-side failover.
func TestFleetWriteFailoverToPromotedReplica(t *testing.T) {
	w := startWALPrimary(t, server.Options{})
	w.commit()
	r := w.serveFollower(t, "r1")
	ctx := context.Background()
	if err := r.f.CatchUp(ctx); err != nil {
		t.Fatal(err)
	}

	fc := dialFleet(t, server.FleetOptions{
		HealthTTL: 10 * time.Millisecond,
		Retry:     retryx.Policy{MaxAttempts: 10, Initial: 10 * time.Millisecond, Max: 50 * time.Millisecond},
	}, w.addr, r.addr)

	// Normal operation: writes discover and land on the primary.
	if _, err := fc.Insert(ctx, server.InsertLast, w.root, `<e n="pre"/>`); err != nil {
		t.Fatal(err)
	}
	if addr, err := fc.PrimaryAddr(ctx); err != nil || addr != w.addr {
		t.Fatalf("PrimaryAddr = %q, %v; want %q", addr, err, w.addr)
	}

	// The primary dies; the replica is promoted in place (same listener).
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	w.srv.Shutdown(sctx)
	st, err := r.srv.Promote()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })

	// The next write hits the dead primary, retries, re-discovers the
	// promoted replica via its health role, and lands there.
	if _, err := fc.Insert(ctx, server.InsertLast, w.root, `<e n="post"/>`); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	if addr, err := fc.PrimaryAddr(ctx); err != nil || addr != r.addr {
		t.Fatalf("PrimaryAddr = %q, %v; want promoted replica %q", addr, err, r.addr)
	}
	// The promoted store serves its replicated history plus the new write.
	// (The pre-failover write was never replicated before the primary died
	// — bounded, explicit loss, exactly what promotion semantics promise.)
	v, err := fc.Value(ctx, `count(/log/e)`)
	if err != nil {
		t.Fatal(err)
	}
	if v != "2" {
		t.Fatalf("count = %s after failover, want 2 (one replicated commit + one post-failover write)", v)
	}
}

// TestFleetHedgedReadCutsTailLatency: two endpoints with identical data,
// the first sitting on injected per-page latency — the hedge fires after
// HedgeDelay and the fast endpoint's answer wins long before the slow
// one would have finished.
func TestFleetHedgedReadCutsTailLatency(t *testing.T) {
	e1 := start(t, slowCfg(), server.Options{})
	e2 := start(t, memCfg(), server.Options{})
	ctx := context.Background()
	doc := `<inv>` + strings.Repeat(`<item>payload payload payload payload</item>`, 150) + `</inv>`
	for _, e := range []*env{e1, e2} {
		if _, err := axml.LoadXMLString(e.st, doc); err != nil {
			t.Fatal(err)
		}
	}
	e1.inj.ArmLatency(300 * time.Millisecond) // per page miss — a full scan takes many seconds
	defer e1.inj.DisarmLatency()

	fc := dialFleet(t, server.FleetOptions{
		HedgeDelay: 25 * time.Millisecond,
		Retry:      quickRetry(),
	}, e1.addr, e2.addr)

	begin := time.Now()
	v, err := fc.Value(ctx, `count(//item)`)
	if err != nil {
		t.Fatal(err)
	}
	if v != "150" {
		t.Fatalf("hedged read answered %q, want 150", v)
	}
	if el := time.Since(begin); el > 2500*time.Millisecond {
		t.Fatalf("hedged read took %v — the hedge to the fast endpoint never fired", el)
	}
}
