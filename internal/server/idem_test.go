// Idempotency-token dedup: re-sending a token replays the committed ack
// instead of applying twice — across retries, across reconnects, scoped
// per tenant — and failed attempts leave no record.
package server_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
)

func TestIdemTokenDedupesMutation(t *testing.T) {
	e := start(t, memCfg(), server.Options{})
	c := e.dial(server.ClientOptions{})
	ctx := context.Background()

	root, err := c.Load(ctx, `<log/>`)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := c.InsertIdem(ctx, server.InsertLast, root, `<e/>`, "tok-1")
	if err != nil {
		t.Fatal(err)
	}
	// The "retry": same token, same mutation. Must replay, not re-apply.
	id2, err := c.InsertIdem(ctx, server.InsertLast, root, `<e/>`, "tok-1")
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("replayed ack returned node %d, original %d", id2, id1)
	}
	rows, err := c.Query(ctx, `/log/e`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d elements inserted for one token, want 1", len(rows))
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.IdemReplays != 1 {
		t.Fatalf("IdemReplays = %d, want 1", st.Server.IdemReplays)
	}
}

// TestIdemTokenSurvivesReconnect: the ambiguous-outcome scenario. The ack
// may be lost with the connection, so the dedup record must live on the
// server, keyed by tenant — a fresh session replaying the token gets the
// original ack.
func TestIdemTokenSurvivesReconnect(t *testing.T) {
	e := start(t, memCfg(), server.Options{})
	ctx := context.Background()

	c1 := e.dial(server.ClientOptions{})
	root, err := c1.Load(ctx, `<log/>`)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := c1.InsertIdem(ctx, server.InsertLast, root, `<e/>`, "ambiguous-tok")
	if err != nil {
		t.Fatal(err)
	}
	c1.Close() // the client never saw the ack, reconnects, retries

	c2 := e.dial(server.ClientOptions{})
	id2, err := c2.InsertIdem(ctx, server.InsertLast, root, `<e/>`, "ambiguous-tok")
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("retry on a fresh session got node %d, original %d", id2, id1)
	}
	rows, err := c2.Query(ctx, `/log/e`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d elements after cross-session retry, want 1", len(rows))
	}
}

// TestIdemTokenScopedPerTenant: two tenants using the same token string
// must not see each other's acks.
func TestIdemTokenScopedPerTenant(t *testing.T) {
	e := start(t, memCfg(), server.Options{
		Tenants: map[string]server.Tenant{
			"tok-a": {Name: "a"},
			"tok-b": {Name: "b"},
		},
	})
	ctx := context.Background()
	ca := e.dial(server.ClientOptions{Token: "tok-a"})
	cb := e.dial(server.ClientOptions{Token: "tok-b"})

	root, err := ca.Load(ctx, `<log/>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.InsertIdem(ctx, server.InsertLast, root, `<a/>`, "shared"); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.InsertIdem(ctx, server.InsertLast, root, `<b/>`, "shared"); err != nil {
		t.Fatal(err)
	}
	rows, err := ca.Query(ctx, `/log/*`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d elements, want 2 — tenants must not share dedup records", len(rows))
	}
}

// TestIdemFailureNotCached: a failed attempt must leave no dedup record;
// the retry re-executes and can succeed.
func TestIdemFailureNotCached(t *testing.T) {
	e := start(t, memCfg(), server.Options{})
	c := e.dial(server.ClientOptions{})
	ctx := context.Background()

	// First attempt fails: no such target node.
	_, err := c.InsertIdem(ctx, server.InsertLast, core.NodeID(999999), `<e/>`, "tok-f")
	if !errors.Is(err, core.ErrNoSuchNode) {
		t.Fatalf("expected ErrNoSuchNode, got %v", err)
	}
	root, err := c.Load(ctx, `<log/>`)
	if err != nil {
		t.Fatal(err)
	}
	// Retry with the same token against a now-valid target must execute.
	if _, err := c.InsertIdem(ctx, server.InsertLast, root, `<e/>`, "tok-f"); err != nil {
		t.Fatalf("retry after cached-failure: %v", err)
	}
	rows, err := c.Query(ctx, `/log/e`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d elements, want 1", len(rows))
	}
}

// TestIdemCacheBounded: the FIFO cap holds — old tokens fall out, new ones
// keep landing, memory stays bounded — and a sequenced token replayed
// *after* eviction is refused with the typed ambiguous-outcome error, not
// silently re-executed. Silent re-execution was the old eviction-boundary
// bug: the client's retry contract says "same token → at most one apply",
// and the server breaking it exactly when the cache is busiest was the
// worst possible failure mode.
func TestIdemCacheBounded(t *testing.T) {
	e := start(t, memCfg(), server.Options{IdemCacheSize: 8})
	c := e.dial(server.ClientOptions{})
	ctx := context.Background()
	root, err := c.Load(ctx, `<log/>`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		tok := fmt.Sprintf("tok-%d", i)
		if _, err := c.InsertIdem(ctx, server.InsertLast, root, `<e/>`, tok); err != nil {
			t.Fatal(err)
		}
	}
	// tok-0 has been evicted. The replay must come back as the typed
	// ambiguous-outcome refusal — never a second apply.
	_, err = c.InsertIdem(ctx, server.InsertLast, root, `<e/>`, "tok-0")
	if !errors.Is(err, server.ErrIdemAmbiguous) {
		t.Fatalf("evicted-token replay: got %v, want ErrIdemAmbiguous", err)
	}
	if core.Retryable(err) {
		t.Fatal("ErrIdemAmbiguous must not classify retryable: blind re-sends cannot resolve ambiguity")
	}
	rows, err := c.Query(ctx, `/log/e`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 32 {
		t.Fatalf("%d elements, want 32 — the ambiguous replay must not re-execute", len(rows))
	}
	// The freshest tokens are still cached: replay, not re-execution and
	// not a refusal.
	if _, err := c.InsertIdem(ctx, server.InsertLast, root, `<e/>`, "tok-31"); err != nil {
		t.Fatal(err)
	}
	// A brand-new token beyond the horizon executes normally.
	if _, err := c.InsertIdem(ctx, server.InsertLast, root, `<e/>`, "tok-100"); err != nil {
		t.Fatal(err)
	}
	rows, err = c.Query(ctx, `/log/e`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 33 {
		t.Fatalf("%d elements, want 33 (32 + one new token; cached replay adds none)", len(rows))
	}
}

// TestIdemUnsequencedTokenKeepsLegacySemantics: tokens outside the
// "<prefix>-<seq>" minting scheme cannot be tracked by the eviction
// horizon; for them the cache keeps its historical best-effort behavior
// (an evicted token re-executes) rather than refusing everything.
func TestIdemUnsequencedTokenKeepsLegacySemantics(t *testing.T) {
	e := start(t, memCfg(), server.Options{IdemCacheSize: 4})
	c := e.dial(server.ClientOptions{})
	ctx := context.Background()
	root, err := c.Load(ctx, `<log/>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.InsertIdem(ctx, server.InsertLast, root, `<e/>`, "opaque"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		tok := fmt.Sprintf("fill-%d", i)
		if _, err := c.InsertIdem(ctx, server.InsertLast, root, `<e/>`, tok); err != nil {
			t.Fatal(err)
		}
	}
	// "opaque" has been evicted but carries no sequence: best-effort
	// re-execution, as before wire v3.
	if _, err := c.InsertIdem(ctx, server.InsertLast, root, `<e/>`, "opaque"); err != nil {
		t.Fatalf("unsequenced evicted token: %v, want re-execution", err)
	}
	rows, err := c.Query(ctx, `/log/e`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d elements, want 10", len(rows))
	}
}
