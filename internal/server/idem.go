package server

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Idempotency-token dedup (DESIGN.md §13). A mutation whose ack is lost in
// flight — connection cut between the server's commit and the client's
// read — is *ambiguous*: the client cannot know whether it committed.
// Blind re-send would double-apply. The contract: a client that attaches a
// token may re-send the identical mutation after an ambiguous outcome, and
// the server replays the original committed ack instead of executing
// twice.
//
// Only committed successes are cached. A failed attempt leaves no record,
// so a retry re-executes from scratch — exactly what the caller wants for
// a shed or a deadline. Failure outcomes need no dedup: nothing was
// applied.

// idemKey scopes a token to its tenant gate, by identity: two tenants
// reusing the same token string never collide, and the auth-disabled
// shared gate still scopes consistently across sessions.
type idemKey struct {
	gate  *tenantGate
	token string
}

type idemEntry struct {
	typ     byte
	payload []byte
}

// idemCache is a bounded FIFO of recent committed mutation responses.
// Oldest entries fall out first; any client retrying within a sane backoff
// window is far inside the horizon. FIFO (not LRU) on purpose: a replayed
// token must NOT refresh its slot — the entry exists to absorb a short
// retry burst, not to live forever.
type idemCache struct {
	mu   sync.Mutex
	max  int
	m    map[idemKey]idemEntry
	fifo []idemKey
	head int
	hits atomic.Int64
	// horizon records, per (gate, token prefix), the highest sequence
	// number evicted from the ring. FleetClient tokens are
	// "<prefix>-<seq>" with seq strictly increasing per client; a miss
	// whose seq is at or below the horizon is a token that *was* cached
	// and fell out — the outcome is ambiguous and re-executing could
	// double-apply, so the lookup reports evicted=true and the handler
	// refuses with ErrIdemAmbiguous instead of running the mutation
	// again. Tokens that never parse (no "-<digits>" tail) skip the
	// horizon: for those the cache keeps its historical best-effort
	// semantics. The horizon map is itself FIFO-bounded so a hostile
	// client minting prefixes cannot grow it without bound.
	//
	// Known trade-off: the horizon is one scalar per prefix, so it cannot
	// distinguish "this seq was cached and fell out" from "this seq never
	// arrived but a NEWER one was already evicted". With concurrent
	// in-flight writes from one client, a delayed first-ever request can
	// land below the horizon and be refused with ErrIdemAmbiguous even
	// though it never executed — a false ambiguity, never a false
	// re-execution. That is the safe direction (the caller reconciles by
	// reading, exactly as for a true eviction), and it requires the cache
	// to cycle through IdemCacheSize entries (default 4096) while a
	// request is still in flight — far beyond any sane client concurrency.
	// Eliminating it would need per-seq tracking, i.e. a second cache as
	// big as the first.
	horizon     map[idemPrefix]uint64
	horizonFIFO []idemPrefix
	horizonHead int
}

// idemPrefix scopes an eviction horizon to one tenant gate and one
// client's token prefix.
type idemPrefix struct {
	gate   *tenantGate
	prefix string
}

// maxHorizons bounds the eviction-horizon map independently of the entry
// ring; each horizon is one uint64 per distinct (gate, prefix).
const maxHorizons = 4096

// splitIdemToken parses "<prefix>-<decimal seq>". ok is false for tokens
// that do not follow the fleet's minting scheme.
func splitIdemToken(tok string) (prefix string, seq uint64, ok bool) {
	i := strings.LastIndexByte(tok, '-')
	if i <= 0 || i == len(tok)-1 {
		return "", 0, false
	}
	n, err := strconv.ParseUint(tok[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return tok[:i], n, true
}

func newIdemCache(max int) *idemCache {
	return &idemCache{
		max:     max,
		m:       make(map[idemKey]idemEntry, max),
		horizon: make(map[idemPrefix]uint64),
	}
}

// get looks a token up. evicted=true (only meaningful when found=false)
// means the token's sequence number is at or below the recorded eviction
// horizon for its prefix: it was once cached and has been forgotten, so
// the original outcome is unknowable.
func (ic *idemCache) get(k idemKey) (e idemEntry, found, evicted bool) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	e, found = ic.m[k]
	if found {
		ic.hits.Add(1)
		return e, true, false
	}
	if prefix, seq, ok := splitIdemToken(k.token); ok {
		if h, ok := ic.horizon[idemPrefix{k.gate, prefix}]; ok && seq <= h {
			evicted = true
		}
	}
	return e, false, evicted
}

func (ic *idemCache) put(k idemKey, e idemEntry) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if _, dup := ic.m[k]; dup {
		return // first committed outcome wins; replays never overwrite
	}
	if len(ic.m) >= ic.max {
		// The ring is full: the slot at head holds the oldest key. Evict
		// it, store the newest in its place, advance head to the next
		// oldest.
		old := ic.fifo[ic.head]
		delete(ic.m, old)
		ic.recordEvictionLocked(old)
		ic.fifo[ic.head] = k
		ic.head = (ic.head + 1) % len(ic.fifo)
		ic.m[k] = e
		return
	}
	ic.m[k] = e
	ic.fifo = append(ic.fifo, k)
}

// recordEvictionLocked advances the eviction horizon for the evicted
// token's prefix. Horizons only move forward: eviction order can differ
// from sequence order when a client's retries interleave.
func (ic *idemCache) recordEvictionLocked(k idemKey) {
	prefix, seq, ok := splitIdemToken(k.token)
	if !ok {
		return
	}
	hk := idemPrefix{k.gate, prefix}
	if cur, exists := ic.horizon[hk]; exists {
		if seq > cur {
			ic.horizon[hk] = seq
		}
		return
	}
	if len(ic.horizon) >= maxHorizons {
		old := ic.horizonFIFO[ic.horizonHead]
		delete(ic.horizon, old)
		ic.horizonFIFO[ic.horizonHead] = hk
		ic.horizonHead = (ic.horizonHead + 1) % len(ic.horizonFIFO)
	} else {
		ic.horizonFIFO = append(ic.horizonFIFO, hk)
	}
	ic.horizon[hk] = seq
}
