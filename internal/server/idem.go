package server

import (
	"sync"
	"sync/atomic"
)

// Idempotency-token dedup (DESIGN.md §13). A mutation whose ack is lost in
// flight — connection cut between the server's commit and the client's
// read — is *ambiguous*: the client cannot know whether it committed.
// Blind re-send would double-apply. The contract: a client that attaches a
// token may re-send the identical mutation after an ambiguous outcome, and
// the server replays the original committed ack instead of executing
// twice.
//
// Only committed successes are cached. A failed attempt leaves no record,
// so a retry re-executes from scratch — exactly what the caller wants for
// a shed or a deadline. Failure outcomes need no dedup: nothing was
// applied.

// idemKey scopes a token to its tenant gate, by identity: two tenants
// reusing the same token string never collide, and the auth-disabled
// shared gate still scopes consistently across sessions.
type idemKey struct {
	gate  *tenantGate
	token string
}

type idemEntry struct {
	typ     byte
	payload []byte
}

// idemCache is a bounded FIFO of recent committed mutation responses.
// Oldest entries fall out first; any client retrying within a sane backoff
// window is far inside the horizon. FIFO (not LRU) on purpose: a replayed
// token must NOT refresh its slot — the entry exists to absorb a short
// retry burst, not to live forever.
type idemCache struct {
	mu   sync.Mutex
	max  int
	m    map[idemKey]idemEntry
	fifo []idemKey
	head int
	hits atomic.Int64
}

func newIdemCache(max int) *idemCache {
	return &idemCache{max: max, m: make(map[idemKey]idemEntry, max)}
}

func (ic *idemCache) get(k idemKey) (idemEntry, bool) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	e, ok := ic.m[k]
	if ok {
		ic.hits.Add(1)
	}
	return e, ok
}

func (ic *idemCache) put(k idemKey, e idemEntry) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if _, dup := ic.m[k]; dup {
		return // first committed outcome wins; replays never overwrite
	}
	if len(ic.m) >= ic.max {
		// The ring is full: the slot at head holds the oldest key. Evict
		// it, store the newest in its place, advance head to the next
		// oldest.
		delete(ic.m, ic.fifo[ic.head])
		ic.fifo[ic.head] = k
		ic.head = (ic.head + 1) % len(ic.fifo)
		ic.m[k] = e
		return
	}
	ic.m[k] = e
	ic.fifo = append(ic.fifo, k)
}
