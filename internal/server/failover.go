package server

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/failover"
)

// Failover integration: the coordinator (internal/failover) runs inside
// the served node and speaks its protocol over this package's wire — the
// LEASE / VOTE frames added in protocol v3 — so the failure detector and
// election traverse exactly the network paths client traffic does. A
// partition that cuts clients off also cuts the lease, and the two views
// of "dead" cannot diverge.

// serverNode adapts a Server to the coordinator's Node interface.
type serverNode struct{ s *Server }

func (n serverNode) Role() string { return n.s.role() }

// AppliedLSN is the node's replication position: the archive LSN on a
// primary (original or promoted), the durably applied LSN on a follower.
// Elections compare these to pick the candidate that loses nothing.
func (n serverNode) AppliedLSN() uint64 {
	if p := n.s.promoted.Load(); p != nil {
		return p.Stats().ArchiveLSN
	}
	if f := n.s.opt.Follower; f != nil {
		return f.Stats().AppliedLSN
	}
	return n.s.opt.Store.Stats().ArchiveLSN
}

// Promote drains whatever segments are still reachable, then promotes the
// follower under the new epoch. The drain is best-effort and bounded by
// ctx: during a real failover the old primary is gone, so CatchUp stops
// making progress quickly — the loop exits on the first pass that gains
// no LSN ground.
func (n serverNode) Promote(ctx context.Context, epoch uint64) error {
	f := n.s.opt.Follower
	if f == nil {
		return fmt.Errorf("server: node %s is not a follower; cannot promote", n.s.opt.NodeID)
	}
	for ctx.Err() == nil {
		before := f.Stats().AppliedLSN
		if err := f.CatchUp(ctx); err != nil {
			break
		}
		if f.Stats().AppliedLSN == before {
			break
		}
	}
	_, err := n.s.PromoteAt(epoch)
	return err
}

// ObserveEpoch mirrors a newly established epoch into the replica sidecar
// so apply-side fencing and offline inspection see it. Best-effort: the
// coordinator's term file is authoritative.
func (n serverNode) ObserveEpoch(epoch uint64) {
	if f := n.s.opt.Follower; f != nil && n.s.promoted.Load() == nil {
		_ = f.AdvanceEpoch(epoch)
	}
}

// AttachFailover builds, installs and starts the failover coordinator for
// this node. cfg.NodeID defaults to Options.NodeID. peers carries lease
// and vote RPCs to the rest of the fleet — FleetPeers speaks this
// package's own wire protocol. The returned coordinator is owned by the
// server; CloseFailover (or the coordinator's Close) stops it.
func (s *Server) AttachFailover(cfg failover.Config, peers failover.PeerClient) (*failover.Coordinator, error) {
	if cfg.NodeID == "" {
		cfg.NodeID = s.opt.NodeID
	}
	co, err := failover.New(cfg, serverNode{s}, peers)
	if err != nil {
		return nil, err
	}
	s.fo.Store(co)
	co.Start()
	return co, nil
}

// Failover returns the attached coordinator, or nil on standalone nodes.
func (s *Server) Failover() *failover.Coordinator { return s.fo.Load() }

// CloseFailover stops the coordinator, if one is attached.
func (s *Server) CloseFailover() {
	if co := s.fo.Swap(nil); co != nil {
		co.Close()
	}
}

// checkWriteEpoch fences a mutation before any of it executes (and before
// the idempotency lookup — a fenced node must not even replay acks, or a
// partitioned client could mistake them for live leadership).
func (s *Server) checkWriteEpoch(reqEpoch uint64) error {
	if co := s.fo.Load(); co != nil {
		return co.CheckWrite(reqEpoch)
	}
	return nil
}

// checkShipEpoch fences the segment-ship path: a deposed primary must not
// feed its abandoned timeline to followers.
func (s *Server) checkShipEpoch(reqEpoch uint64) error {
	if co := s.fo.Load(); co != nil {
		return co.CheckShip(reqEpoch)
	}
	return nil
}

// handleFailover serves one LEASE or VOTE frame. These arrive on the
// ping fast-path — no tenant gate, no drain cutoff — so the payload still
// carries the common request header, which is decoded and discarded here.
func (c *conn) handleFailover(typ byte, payload []byte) error {
	s := c.srv
	co := s.fo.Load()
	if co == nil {
		return fmt.Errorf("%w: node does not run a failover coordinator", ErrBadRequest)
	}
	d := &dec{payload}
	for i := 0; i < 3; i++ { // deadlineMs, minLSN, staleMs — unused here
		if _, err := d.u64(); err != nil {
			return err
		}
	}
	switch typ {
	case msgLease:
		epoch, err := d.u64()
		if err != nil {
			return err
		}
		leaderID, err := d.str()
		if err != nil {
			return err
		}
		lsn, err := d.u64()
		if err != nil {
			return err
		}
		rep := co.OnLease(failover.LeaseRequest{Epoch: epoch, LeaderID: leaderID, LSN: lsn})
		var e enc
		e.u64(rep.Epoch)
		ok := byte(0)
		if rep.OK {
			ok = 1
		}
		e.byt(ok)
		return c.writeFrame(msgLeaseAck, e.payload())
	case msgVote:
		epoch, err := d.u64()
		if err != nil {
			return err
		}
		candidateID, err := d.str()
		if err != nil {
			return err
		}
		lsn, err := d.u64()
		if err != nil {
			return err
		}
		rep := co.OnVote(failover.VoteRequest{Epoch: epoch, CandidateID: candidateID, LSN: lsn})
		var e enc
		granted := byte(0)
		if rep.Granted {
			granted = 1
		}
		e.byt(granted)
		e.u64(rep.Epoch)
		e.u64(rep.VotedEpoch)
		e.str(rep.VoterID)
		e.u64(rep.VoterLSN)
		return c.writeFrame(msgVoteRes, e.payload())
	default:
		return fmt.Errorf("%w: unknown failover frame 0x%02x", ErrProtocol, typ)
	}
}

// FleetPeers carries the coordinator's lease and vote RPCs over the wire
// protocol: one lazily dialed client per peer address, redialed after
// connection errors. It implements failover.PeerClient.
type FleetPeers struct {
	opt ClientOptions

	mu    sync.Mutex
	conns map[string]*Client
}

// NewFleetPeers builds a peer transport. opt.Addr is ignored; each call
// dials the address it is given.
func NewFleetPeers(opt ClientOptions) *FleetPeers {
	return &FleetPeers{opt: opt, conns: make(map[string]*Client)}
}

func (p *FleetPeers) client(addr string) (*Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.conns[addr]; ok {
		return c, nil
	}
	c, err := Dial(addr, p.opt)
	if err != nil {
		return nil, err
	}
	p.conns[addr] = c
	return c, nil
}

func (p *FleetPeers) drop(addr string) {
	p.mu.Lock()
	c := p.conns[addr]
	delete(p.conns, addr)
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Lease delivers one lease heartbeat to addr.
func (p *FleetPeers) Lease(ctx context.Context, addr string, req failover.LeaseRequest) (failover.LeaseReply, error) {
	c, err := p.client(addr)
	if err != nil {
		return failover.LeaseReply{}, err
	}
	rep, err := c.Lease(ctx, req)
	if err != nil {
		p.drop(addr)
	}
	return rep, err
}

// RequestVote solicits one vote from addr.
func (p *FleetPeers) RequestVote(ctx context.Context, addr string, req failover.VoteRequest) (failover.VoteReply, error) {
	c, err := p.client(addr)
	if err != nil {
		return failover.VoteReply{}, err
	}
	rep, err := c.RequestVote(ctx, req)
	if err != nil {
		p.drop(addr)
	}
	return rep, err
}

// Close closes every dialed peer connection.
func (p *FleetPeers) Close() error {
	p.mu.Lock()
	conns := p.conns
	p.conns = make(map[string]*Client)
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return nil
}

var _ failover.PeerClient = (*FleetPeers)(nil)
