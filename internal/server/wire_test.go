// Wire-format invariants: frame caps enforced before allocation, hostile
// payloads fail typed instead of panicking, and every registered sentinel
// survives the error mapping with errors.Is intact.
package server

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/replica"
	_ "repro/internal/txn" // register its wire codes for the sweep
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frame")
	if err := writeFrame(&buf, msgQuery, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&buf, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgQuery || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: type 0x%02x payload %q", typ, got)
	}
}

func TestFrameCapEnforcedBeforeRead(t *testing.T) {
	// An oversized declared length must be refused from the header alone —
	// the reader would block forever (or allocate wildly) otherwise.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	_, _, err := readFrame(&buf, 1024)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}

	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	_, _, err = readFrame(&buf, 1024)
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("zero-length frame: got %v, want ErrProtocol", err)
	}
}

func TestDecTruncationIsTyped(t *testing.T) {
	// Every decoder failure on a hostile payload must be ErrProtocol, never
	// a panic or a silent wrong value.
	d := &dec{b: []byte{0x85}} // truncated uvarint continuation
	if _, err := d.u64(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("truncated uvarint: %v", err)
	}
	d = &dec{b: []byte{0x05, 'a', 'b'}} // string declares 5, has 2
	if _, err := d.str(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("truncated string: %v", err)
	}
	d = &dec{}
	if _, err := d.byt(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("empty byte: %v", err)
	}
}

// TestErrRoundTripAllRegistered sweeps the whole registry: every sentinel
// any layer has registered must cross the wire and still answer errors.Is.
// This is the contract the client library sells; a sentinel that stops
// round-tripping is a wire-compatibility break.
func TestErrRoundTripAllRegistered(t *testing.T) {
	codes := core.RegisteredErrCodes()
	if len(codes) < 25 {
		t.Fatalf("only %d registered codes — registration inits missing?", len(codes))
	}
	for _, code := range codes {
		sentinel, ok := core.SentinelFor(code)
		if !ok {
			t.Fatalf("code %d registered but unresolvable", code)
		}
		wrapped := fmt.Errorf("op failed: %w", sentinel)
		got := decodeErr(encodeErr(wrapped))
		if !errors.Is(got, sentinel) {
			t.Errorf("code %d (%v): errors.Is lost across the wire: %v", code, sentinel, got)
		}
		if got.Error() != wrapped.Error() {
			t.Errorf("code %d: message %q, want %q", code, got.Error(), wrapped.Error())
		}
	}
}

// TestErrRoundTripMultiCause pins the case the registry exists for: a
// gated replica read that is simultaneously too stale and stalled must
// carry both sentinels to the client — a single "primary code" would
// break one of the two errors.Is checks callers already rely on.
func TestErrRoundTripMultiCause(t *testing.T) {
	src := errors.Join(replica.ErrTooStale, replica.ErrReplicaStalled)
	got := decodeErr(encodeErr(src))
	if !errors.Is(got, replica.ErrTooStale) || !errors.Is(got, replica.ErrReplicaStalled) {
		t.Fatalf("multi-cause lost: %v", got)
	}
	var we *wireError
	if !errors.As(got, &we) {
		t.Fatalf("decoded error is %T", got)
	}
	if len(we.Codes()) != 2 {
		t.Fatalf("codes = %v, want exactly the two causes", we.Codes())
	}
}

// TestErrRoundTripUnknown: an unregistered error maps to CodeUnknown and
// still carries its message.
func TestErrRoundTripUnknown(t *testing.T) {
	got := decodeErr(encodeErr(errors.New("novel failure")))
	var we *wireError
	if !errors.As(got, &we) {
		t.Fatalf("decoded error is %T", got)
	}
	if len(we.Codes()) != 1 || we.Codes()[0] != core.CodeUnknown {
		t.Fatalf("codes = %v, want [CodeUnknown]", we.Codes())
	}
	if got.Error() != "novel failure" {
		t.Fatalf("message = %q", got.Error())
	}
}

func TestHostileErrFrame(t *testing.T) {
	// A forged error frame claiming 2^32 codes must be refused, not looped.
	var e enc
	e.u64(1 << 32)
	if err := decodeErr(e.payload()); !errors.Is(err, ErrProtocol) {
		t.Fatalf("hostile code count: %v", err)
	}
}

// TestRetryabilityRegistryCoverage pins the retryability classification of
// every registered code, exhaustively. Adding a new sentinel without
// deciding its retryability here fails the test — the registry is the one
// list the resilient client, the replication transports, and RunInTx all
// classify from, so "forgot to decide" must be a compile-adjacent failure,
// not a silent non-retryable default in production.
func TestRetryabilityRegistryCoverage(t *testing.T) {
	want := map[core.ErrCode]bool{
		core.CodeNoSuchNode:    false,
		core.CodeNotElement:    false,
		core.CodeBadFragment:   false,
		core.CodeClosed:        false,
		core.CodeReadOnly:      false,
		core.CodeOverloaded:    true,
		core.CodeIntoAttribute: false,
		core.CodeAttrContext:   false,

		core.CodeDeadlineExceeded: false,
		core.CodeCanceled:         false,

		core.CodeCorruptPage:  false,
		core.CodeStoreLocked:  false,
		core.CodeReadOnlyFile: false,

		core.CodeDeadlock:      true,
		core.CodeLockTimeout:   false,
		core.CodeTxDone:        false,
		core.CodeManagerClosed: false,
		core.CodeStuckAborted:  false,

		core.CodeReplicaStalled:    false,
		core.CodeTooStale:          false,
		core.CodePromoted:          false,
		core.CodeNotBootstrapped:   false,
		core.CodeNoRollForwardBase: false,

		core.CodeAuth:          false,
		core.CodeFrameTooLarge: false,
		core.CodeProtocol:      false,
		core.CodeDraining:      true,
		core.CodeQuotaExceeded: true,
		core.CodeBadRequest:    false,
		core.CodeSegmentGone:   false,

		// Ambiguous idempotency outcomes need reconciliation, not a blind
		// retry; a fenced epoch never heals on the same node.
		core.CodeIdemAmbiguous: false,
		core.CodeFenced:        false,
	}
	codes := core.RegisteredErrCodes()
	if len(codes) != len(want) {
		t.Fatalf("%d registered codes, %d classified here — classify the new code in this test's want map", len(codes), len(want))
	}
	for _, code := range codes {
		wantRetry, ok := want[code]
		if !ok {
			t.Errorf("code %d registered but not classified in this test", code)
			continue
		}
		if got := core.CodeRetryable(code); got != wantRetry {
			t.Errorf("code %d: CodeRetryable = %v, want %v", code, got, wantRetry)
		}
		// The error-level classifier must agree with the code-level one for a
		// chain wrapping exactly this sentinel.
		sentinel, _ := core.SentinelFor(code)
		if got := core.Retryable(fmt.Errorf("op: %w", sentinel)); got != wantRetry {
			t.Errorf("code %d: Retryable(wrapped sentinel) = %v, want %v", code, got, wantRetry)
		}
	}
	// A multi-cause chain is retryable if any cause is: the wire error for a
	// quota shed wrapped in a drain notice must still earn a retry.
	if !core.Retryable(errors.Join(ErrDraining, core.ErrClosed)) {
		t.Error("multi-cause chain with a retryable member must be retryable")
	}
	if core.Retryable(errors.New("novel failure")) {
		t.Error("unregistered error must not be retryable")
	}
	if core.Retryable(nil) {
		t.Error("nil must not be retryable")
	}
}
