// Partition and flaky-network chaos over the replication and fleet
// stacks: a follower tailing a primary through a misbehaving network
// (full partitions, mid-frame cuts, silent bit flips, latency) must
// stall cleanly and resume exactly where it left off; a primary killed
// -9 mid-segment-stream must leave its followers Verify-clean and
// resumable; and through all of it the fleet client keeps serving
// idempotent reads with zero surfaced errors.
package server_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	axml "repro"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// startChaosPrimary is startWALPrimary behind a chaos-wrapped listener:
// every connection the primary serves — client sessions and replication
// transports alike — misbehaves on the controller's schedule.
func startChaosPrimary(t *testing.T, opt server.Options) (*walEnv, *fault.NetChaos) {
	t.Helper()
	dir := t.TempDir()
	arch := filepath.Join(dir, "segments")
	wp, err := wal.OpenWithOptions(filepath.Join(dir, "primary.db"), 512, wal.Options{ArchiveDir: arch})
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Open(core.Config{Mode: core.RangeOnly, PageSize: 512, Pager: wp})
	if err != nil {
		t.Fatal(err)
	}
	opt.ArchiveDir = arch
	opt.Store = st
	srv, err := server.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ch := fault.NewNetChaos(42)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ch.WrapListener(ln)) }()
	t.Cleanup(func() {
		ch.Heal()
		ch.DisarmLatency()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		st.Close()
	})
	e := &env{t: t, srv: srv, st: st, addr: ln.Addr().String(), done: done}
	root, err := axml.LoadXMLString(st, `<log/>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	return &walEnv{env: e, wp: wp, arch: arch, dir: dir, root: root}, ch
}

// TestPartitionChaosFollowerStallsThenResumes: a full partition makes
// catch-up fail within its deadline — never hang, never corrupt — and
// after the heal the follower resumes from its durable position.
func TestPartitionChaosFollowerStallsThenResumes(t *testing.T) {
	w, ch := startChaosPrimary(t, server.Options{})
	w.commit()
	f := w.follower(t, "follower", server.NetTransportOptions{})
	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}

	var last uint64
	for i := 0; i < 3; i++ {
		last = w.commit()
	}

	ch.Partition()
	pctx, pcancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	err := f.CatchUp(pctx)
	pcancel()
	if err == nil {
		t.Fatal("catch-up reported success across a full partition")
	}
	verifyReplica(t, f) // the stall left nothing half-applied

	ch.Heal()
	hctx, hcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer hcancel()
	if err := f.CatchUp(hctx); err != nil {
		t.Fatalf("catch-up after heal: %v", err)
	}
	if st := f.Stats(); st.AppliedLSN != last || st.LagSegments != 0 {
		t.Fatalf("resumed to LSN %d with %d lag, want %d and 0", st.AppliedLSN, st.LagSegments, last)
	}
	want, err := w.st.XMLString()
	if err != nil {
		t.Fatal(err)
	}
	if got := replicaXML(t, f); got != want {
		t.Fatal("follower diverged across partition + heal")
	}
	verifyReplica(t, f)
}

// TestPartitionChaosMidFrameCutAndCorruption: a connection cut in the
// middle of a segment frame redials and resumes; a silent one-bit flip
// in segment data is caught by CRC validation and refetched — neither
// ever reaches the follower's store.
func TestPartitionChaosMidFrameCutAndCorruption(t *testing.T) {
	w, ch := startChaosPrimary(t, server.Options{})
	w.commit()
	f := w.follower(t, "follower", server.NetTransportOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := f.CatchUp(ctx); err != nil {
		t.Fatal(err)
	}

	// Cut the stream 30 bytes into the next response burst — inside the
	// segment-data frame for this commit.
	last := w.commit()
	ch.ArmCut(30)
	if err := f.CatchUp(ctx); err != nil {
		t.Fatalf("catch-up across mid-frame cut: %v", err)
	}
	if got := f.Stats().AppliedLSN; got != last {
		t.Fatalf("applied LSN %d after cut, want %d", got, last)
	}
	if ch.Cuts() != 1 {
		t.Fatalf("Cuts = %d, want 1 — the cut never fired", ch.Cuts())
	}

	// Flip one bit 100 bytes into the next burst — inside segment data.
	// The fetch must be rejected by validation and silently refetched.
	last = w.commit()
	ch.ArmCorrupt(100)
	if err := f.CatchUp(ctx); err != nil {
		t.Fatalf("catch-up across silent corruption: %v", err)
	}
	if got := f.Stats().AppliedLSN; got != last {
		t.Fatalf("applied LSN %d after corruption, want %d", got, last)
	}
	if ch.Corruptions() != 1 {
		t.Fatalf("Corruptions = %d, want 1 — the flip never fired", ch.Corruptions())
	}

	want, err := w.st.XMLString()
	if err != nil {
		t.Fatal(err)
	}
	if got := replicaXML(t, f); got != want {
		t.Fatal("follower diverged across cut + corruption")
	}
	verifyReplica(t, f)
}

// TestPartitionChaosKill9PrimaryMidSegmentStream: SIGKILL the serving
// primary process while a follower is actively streaming segments and
// writers are committing. The follower must end Verify-clean and resume
// against a restarted primary, and the fleet client must keep serving
// idempotent reads with zero surfaced errors throughout.
func TestPartitionChaosKill9PrimaryMidSegmentStream(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperServedProcess$", "-test.v")
	cmd.Env = append(os.Environ(), helperEnv+"="+dir, helperAddrEnv+"="+addrFile)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	var addr string
	waitFor(t, func() bool {
		b, err := os.ReadFile(addrFile)
		if err != nil {
			return false
		}
		addr = string(b)
		return addr != ""
	})

	ctx := context.Background()
	c, err := server.Dial(addr, server.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	root, err := c.Load(ctx, `<log/>`)
	if err != nil {
		t.Fatal(err)
	}

	// A follower tails the helper over the network, bootstrapped from the
	// base backup the helper published, and is served on its own port.
	fcfg := core.Config{Mode: core.RangePartial, PageSize: 512}
	tr := server.NewNetTransport(addr, server.NetTransportOptions{})
	f, err := replica.Open(filepath.Join(dir, "follower.db"), tr,
		replica.Options{Store: fcfg, Base: filepath.Join(dir, "base.bak")})
	if err != nil {
		t.Fatal(err)
	}
	base0 := f.Stats().AppliedLSN
	fsrv, err := server.New(server.Options{Follower: f})
	if err != nil {
		t.Fatal(err)
	}
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fsrv.Serve(fln)

	stopTail := make(chan struct{})
	var tailWg sync.WaitGroup
	tailWg.Add(1)
	go func() {
		defer tailWg.Done()
		for {
			select {
			case <-stopTail:
				return
			default:
			}
			cctx, ccancel := context.WithTimeout(ctx, 2*time.Second)
			f.CatchUp(cctx) // errors are expected once the primary dies
			ccancel()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Writers hammer the primary; only acked inserts count.
	var acked, attempted atomic.Int64
	stopWrite := make(chan struct{})
	var wg sync.WaitGroup
	for wkr := 0; wkr < 2; wkr++ {
		cc, err := server.Dial(addr, server.ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(cc *server.Client, wkr int) {
			defer wg.Done()
			defer cc.Close()
			for i := 0; ; i++ {
				select {
				case <-stopWrite:
					return
				default:
				}
				attempted.Add(1)
				if _, err := cc.Insert(ctx, server.InsertLast, root, fmt.Sprintf(`<e w="%d" i="%d"/>`, wkr, i)); err != nil {
					return // the kill landed mid-conversation
				}
				acked.Add(1)
			}
		}(cc, wkr)
	}

	// The fleet client reads through the whole ordeal. Zero errors, ever:
	// the follower outranks the primary for reads and never goes away.
	fc, err := server.DialFleet([]string{fln.Addr().String(), addr}, server.FleetOptions{
		HealthTTL: 50 * time.Millisecond,
		Retry:     quickRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	var reads atomic.Int64
	stopRead := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			rctx, rcancel := context.WithTimeout(ctx, 3*time.Second)
			_, err := fc.Value(rctx, `count(/log/e)`)
			rcancel()
			reads.Add(1)
			if err != nil {
				t.Errorf("fleet read surfaced an error: %v", err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Kill only once replication is demonstrably mid-stream: commits acked
	// and the follower visibly advancing past its base.
	waitFor(t, func() bool { return acked.Load() >= 30 && f.Stats().AppliedLSN > base0 })
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	killed = true
	cmd.Wait()
	close(stopWrite)
	wg.Wait()
	time.Sleep(300 * time.Millisecond) // reads keep flowing past the death
	close(stopRead)
	rwg.Wait()
	close(stopTail)
	tailWg.Wait()
	c.Close()
	if reads.Load() == 0 {
		t.Fatal("the reader never read — the zero-error claim is vacuous")
	}
	t.Logf("kill -9 after %d acked / %d attempted commits; %d fleet reads, zero errors; follower at LSN %d",
		acked.Load(), attempted.Load(), reads.Load(), f.Stats().AppliedLSN)

	// The follower is Verify-clean right where the kill left it...
	verifyReplica(t, f)
	applied := f.Stats().AppliedLSN

	// ...and resumable: restart the primary from its files, re-point the
	// follower at it, and it catches up to the replayed history.
	sctx, scancel := context.WithTimeout(ctx, 5*time.Second)
	defer scancel()
	fsrv.Shutdown(sctx)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := axml.ReopenFileWAL(filepath.Join(dir, "store.db"), helperCfg(), filepath.Join(dir, "segments"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Verify(); err != nil {
		t.Fatalf("restarted primary verify: %v", err)
	}
	srv2, err := server.New(server.Options{Store: st, ArchiveDir: filepath.Join(dir, "segments")})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln2)
	defer func() {
		s2ctx, s2cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer s2cancel()
		srv2.Shutdown(s2ctx)
	}()
	tr2 := server.NewNetTransport(ln2.Addr().String(), server.NetTransportOptions{})
	f2, err := replica.Open(filepath.Join(dir, "follower.db"), tr2, replica.Options{Store: fcfg})
	if err != nil {
		t.Fatalf("follower did not reopen after the kill: %v", err)
	}
	defer f2.Close()
	rctx, rcancel := context.WithTimeout(ctx, 15*time.Second)
	defer rcancel()
	if err := f2.CatchUp(rctx); err != nil {
		t.Fatalf("catch-up against restarted primary: %v", err)
	}
	if got := f2.Stats().AppliedLSN; got < applied {
		t.Fatalf("resume went backwards: LSN %d < %d", got, applied)
	}
	verifyReplica(t, f2)

	// Counts line up end to end: follower == restarted primary, and the
	// primary replayed at least every acked commit.
	want, err := axml.QueryValue(st, `count(//e)`)
	if err != nil {
		t.Fatal(err)
	}
	var got string
	if err := f2.Read(replica.ReadOptions{}, func(s *core.Store) error {
		var rerr error
		got, rerr = axml.QueryValue(s, `count(//e)`)
		return rerr
	}); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("follower has %s commits, restarted primary %s", got, want)
	}
	n, err := strconv.ParseInt(want, 10, 64)
	if err != nil {
		t.Fatalf("count = %q", want)
	}
	if n < acked.Load() || n > attempted.Load() {
		t.Fatalf("replayed %d commits, want between %d acked and %d attempted", n, acked.Load(), attempted.Load())
	}
}

// TestPartitionChaosSoak: several seconds of randomized network faults —
// partitions, mid-frame cuts, bit flips, latency bursts, connection
// resets — against a primary serving fleet writes while a follower tails
// it. Invariants at the end: the follower converges byte-identical and
// Verify-clean, every acked write is present exactly once, and the fleet
// reader (served by the follower's clean listener) saw zero errors.
func TestPartitionChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	w, ch := startChaosPrimary(t, server.Options{})
	f := w.follower(t, "follower", server.NetTransportOptions{})
	ctx := context.Background()
	if err := f.CatchUp(ctx); err != nil {
		t.Fatal(err)
	}
	fsrv, err := server.New(server.Options{Follower: f})
	if err != nil {
		t.Fatal(err)
	}
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fsrv.Serve(fln)
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		fsrv.Shutdown(sctx)
	})

	fc, err := server.DialFleet([]string{fln.Addr().String(), w.addr}, server.FleetOptions{
		HealthTTL: 100 * time.Millisecond,
		Retry:     quickRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Tailer: catch up continuously through whatever the network does.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cctx, ccancel := context.WithTimeout(ctx, 2*time.Second)
			f.CatchUp(cctx) // errors expected under chaos
			ccancel()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Writer: idempotency-tokened fleet writes through the chaotic
	// listener. Errors are tolerated (the network is lying); what is acked
	// must be present exactly once at the end.
	var acked, attempted, writeErrs atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			attempted.Add(1)
			wctx, wcancel := context.WithTimeout(ctx, 2*time.Second)
			_, err := fc.Insert(wctx, server.InsertLast, w.root, fmt.Sprintf(`<e i="%d"/>`, i))
			wcancel()
			if err != nil {
				writeErrs.Add(1)
			} else {
				acked.Add(1)
			}
		}
	}()

	// Reader: idempotent reads, zero tolerated errors — the follower's
	// clean listener outranks the chaotic primary.
	var reads atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rctx, rcancel := context.WithTimeout(ctx, 3*time.Second)
			_, err := fc.Value(rctx, `count(/log/e)`)
			rcancel()
			reads.Add(1)
			if err != nil {
				t.Errorf("fleet read surfaced an error under chaos: %v", err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Chaos driver: randomized faults for the soak window.
	rng := rand.New(rand.NewSource(7))
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		switch rng.Intn(5) {
		case 0:
			ch.Partition()
			time.Sleep(time.Duration(30+rng.Intn(50)) * time.Millisecond)
			ch.Heal()
		case 1:
			ch.ArmCut(int64(rng.Intn(2000)))
		case 2:
			ch.ArmCorrupt(int64(rng.Intn(2000)))
		case 3:
			ch.ArmLatency(time.Duration(1+rng.Intn(4)) * time.Millisecond)
			time.Sleep(50 * time.Millisecond)
			ch.DisarmLatency()
		case 4:
			w.srv.CloseClientConns()
		}
		time.Sleep(time.Duration(10+rng.Intn(20)) * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	ch.Heal()
	ch.DisarmLatency()

	// Convergence: the follower reaches the primary's archived position.
	waitFor(t, func() bool {
		cctx, ccancel := context.WithTimeout(ctx, 2*time.Second)
		defer ccancel()
		if err := f.CatchUp(cctx); err != nil {
			return false
		}
		return f.Stats().AppliedLSN == w.wp.LSN()
	})
	verifyReplica(t, f)
	want, err := w.st.XMLString()
	if err != nil {
		t.Fatal(err)
	}
	if got := replicaXML(t, f); got != want {
		t.Fatal("follower diverged from primary after the soak")
	}
	// Every acked write is present exactly once; nothing double-applied.
	v, err := axml.QueryValue(w.st, `count(/log/e)`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("count = %q", v)
	}
	if n < acked.Load() || n > attempted.Load() {
		t.Fatalf("%d committed writes, want between %d acked and %d attempted — a retry double-applied or an ack was dropped", n, acked.Load(), attempted.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("the reader never read — the zero-error claim is vacuous")
	}
	if err := w.st.Verify(); err != nil {
		t.Fatalf("primary verify after soak: %v", err)
	}
	t.Logf("soak: %d acked / %d attempted writes (%d typed errors), %d clean reads, %d cuts, %d corruptions",
		acked.Load(), attempted.Load(), writeErrs.Load(), reads.Load(), ch.Cuts(), ch.Corruptions())
}
