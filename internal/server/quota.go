package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Tenant configures one tenant's admission quota. The gate sits *in front
// of* the store's own admission controller: a tenant at its quota sheds
// with ErrQuotaExceeded before it can queue on (and crowd) the shared
// store-wide semaphore, so one tenant's burst cannot starve another's
// steady traffic.
type Tenant struct {
	// Name labels the tenant in stats and logs.
	Name string
	// MaxConcurrentOps bounds the tenant's operations executing at once.
	// 0 means unlimited (the shared admission controller still applies).
	MaxConcurrentOps int
	// MaxQueuedOps bounds how many of the tenant's operations may wait for
	// a slot before new ones shed. 0 defaults to 4x MaxConcurrentOps.
	MaxQueuedOps int
}

// tenantGate is the runtime form: a semaphore plus a bounded FIFO wait
// queue, the same shape as core's admission controller.
type tenantGate struct {
	name    string
	sem     chan struct{} // nil: unlimited
	queue   chan struct{}
	waiting atomic.Int64
	shed    atomic.Int64
	inOps   atomic.Int64
}

func newTenantGate(cfg Tenant) *tenantGate {
	g := &tenantGate{name: cfg.Name}
	if cfg.MaxConcurrentOps > 0 {
		g.sem = make(chan struct{}, cfg.MaxConcurrentOps)
		qn := cfg.MaxQueuedOps
		if qn <= 0 {
			qn = 4 * cfg.MaxConcurrentOps
		}
		g.queue = make(chan struct{}, qn)
	}
	return g
}

// acquire claims a slot, waiting in FIFO order while the queue has room.
// A full queue sheds immediately with ErrQuotaExceeded; a caller whose
// deadline expires while queued leaves with the context error. The
// returned release is idempotent: op teardown paths can overlap (a drain
// racing normal completion), and a double release must not mint an extra
// slot another tenant op would then squeeze through.
func (g *tenantGate) acquire(ctx context.Context) (release func(), err error) {
	if g.sem == nil {
		g.inOps.Add(1)
		var once sync.Once
		return func() { once.Do(func() { g.inOps.Add(-1) }) }, nil
	}
	grant := func() func() {
		g.inOps.Add(1)
		var once sync.Once
		return func() {
			once.Do(func() {
				g.inOps.Add(-1)
				<-g.sem
			})
		}
	}
	select {
	case g.sem <- struct{}{}:
		return grant(), nil
	default:
	}
	select {
	case g.queue <- struct{}{}:
	default:
		g.shed.Add(1)
		return nil, fmt.Errorf("%w: tenant %q at %d concurrent ops with a full wait queue",
			ErrQuotaExceeded, g.name, cap(g.sem))
	}
	g.waiting.Add(1)
	defer func() {
		g.waiting.Add(-1)
		<-g.queue
	}()
	select {
	case g.sem <- struct{}{}:
		return grant(), nil
	case <-ctx.Done():
		return nil, fmt.Errorf("tenant %q queued past deadline: %w", g.name, ctx.Err())
	}
}
