// The HTTP facade's replication surface: /readyz carries the applied
// LSN and lag for load balancers, flips to 503 with the stall cause when
// the follower's stream is wedged, and /stats exposes the full replica
// counters. These are the fields the fleet runbook tells operators to
// alert on, so their shape is pinned here.
package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wal"
)

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestHTTPReadyzReportsReplicationPosition(t *testing.T) {
	w := startWALPrimary(t, server.Options{})
	last := w.commit()
	f := w.follower(t, "follower", server.NetTransportOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.CatchUp(ctx); err != nil {
		t.Fatal(err)
	}
	applied := f.Stats().AppliedLSN
	if applied < last {
		t.Fatalf("follower applied %d, behind the committed %d", applied, last)
	}

	fsrv, err := server.New(server.Options{Follower: f})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(fsrv.HTTPHandler())
	defer ts.Close()
	pts := httptest.NewServer(w.srv.HTTPHandler())
	defer pts.Close()

	var h server.HealthReport
	if code := getJSON(t, ts.URL+"/readyz", &h); code != http.StatusOK {
		t.Fatalf("replica /readyz = %d, want 200", code)
	}
	if !h.Ready || h.Role != "replica" {
		t.Fatalf("replica /readyz: ready=%v role=%q", h.Ready, h.Role)
	}
	if h.AppliedLSN != applied || h.LagSegments != 0 || h.StallCause != "" {
		t.Fatalf("replica /readyz position: applied=%d lag=%d stall=%q, want applied=%d lag=0",
			h.AppliedLSN, h.LagSegments, h.StallCause, applied)
	}

	// The primary reports its archive high-water mark in the same field,
	// so one probe shape works for the whole fleet.
	var ph server.HealthReport
	if code := getJSON(t, pts.URL+"/readyz", &ph); code != http.StatusOK {
		t.Fatalf("primary /readyz = %d, want 200", code)
	}
	if ph.Role != "primary" || ph.AppliedLSN != w.wp.LSN() {
		t.Fatalf("primary /readyz: role=%q applied=%d, want primary/%d", ph.Role, ph.AppliedLSN, w.wp.LSN())
	}

	// /stats carries the full replica counters under "replica".
	var st server.StatsReport
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("replica /stats = %d, want 200", code)
	}
	if st.Role != "replica" || st.Replica == nil {
		t.Fatalf("replica /stats: role=%q replica=%v", st.Role, st.Replica)
	}
	if st.Replica.AppliedLSN != applied || st.Replica.Stalled {
		t.Fatalf("replica /stats counters: applied=%d stalled=%v, want applied=%d healthy",
			st.Replica.AppliedLSN, st.Replica.Stalled, applied)
	}
}

func TestHTTPReadyz503OnStickyStall(t *testing.T) {
	w := startWALPrimary(t, server.Options{})
	w.commit()
	f := w.follower(t, "follower", server.NetTransportOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.CatchUp(ctx); err != nil {
		t.Fatal(err)
	}
	applied := f.Stats().AppliedLSN

	// Prune the exact segment the follower needs next while a later one
	// exists: the history is gone from under it — a sticky stall, not a
	// transient error.
	gone := w.commit()
	w.commit()
	if err := os.Remove(filepath.Join(w.arch, wal.SegmentFileName(gone))); err != nil {
		t.Fatal(err)
	}
	if err := f.CatchUp(ctx); err == nil {
		t.Fatal("catch-up across a pruned segment succeeded; expected a stall")
	}

	fsrv, err := server.New(server.Options{Follower: f})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(fsrv.HTTPHandler())
	defer ts.Close()

	var h server.HealthReport
	if code := getJSON(t, ts.URL+"/readyz", &h); code != http.StatusServiceUnavailable {
		t.Fatalf("stalled replica /readyz = %d, want 503", code)
	}
	if h.Ready {
		t.Fatal("stalled replica reports ready")
	}
	if h.StallCause == "" || !strings.Contains(h.Reason, "replica stalled") {
		t.Fatalf("stall not surfaced: reason=%q stall_cause=%q", h.Reason, h.StallCause)
	}
	if h.AppliedLSN != applied {
		t.Fatalf("stalled /readyz applied_lsn = %d, want the pre-stall position %d", h.AppliedLSN, applied)
	}

	// The stall is sticky — a second probe reports the same thing, and
	// /stats carries it too.
	var st server.StatsReport
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats on stalled replica = %d, want 200 (stats always answer)", code)
	}
	if st.Replica == nil || !st.Replica.Stalled || st.Replica.StallCause == "" {
		t.Fatalf("/stats does not carry the stall: %+v", st.Replica)
	}
}
