package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/replica"
)

// Options configures a Server. Exactly one of Store and Follower must be
// set: a primary serves reads and writes, a follower serves gated reads
// and sheds writes with ErrReadOnly.
type Options struct {
	// Store is the primary backend.
	Store *core.Store
	// Follower is the replica backend; reads go through its staleness
	// gates, writes are refused.
	Follower *replica.Follower

	// ArchiveDir, when set, enables the replication stream: followers may
	// list (SEGMENTS) and fetch (FETCH_SEGMENT) WAL segments from this
	// directory — the primary's own archive, or a follower's local copy
	// when cascading. Empty disables the two ops.
	ArchiveDir string

	// NodeID names this node in a failover fleet (AttachFailover). Empty
	// for standalone servers.
	NodeID string

	// Tenants maps auth tokens to tenant quotas. An empty map disables
	// authentication: every session lands in one shared unlimited tenant.
	Tenants map[string]Tenant

	// FleetToken is the failover-plane credential: only sessions that
	// authenticate with it may send LEASE / VOTE frames. Tenant tokens
	// never grant the plane — a tenant must not be able to fence a
	// primary or inflate vote promises. When empty, the plane is open
	// only on an unauthenticated server (no credentials configured at
	// all, e.g. a dev fleet on localhost); a server running with Tenants
	// and no FleetToken refuses every failover frame.
	FleetToken string

	// MaxConns bounds concurrently served connections. Default 256.
	MaxConns int
	// MaxAcceptQueue bounds accepted connections waiting FIFO for a slot;
	// beyond it new connections shed with ErrOverloaded. Default MaxConns.
	MaxAcceptQueue int
	// MaxFrame caps one frame's declared wire size. Default DefaultMaxFrame.
	MaxFrame int
	// IdemCacheSize bounds the idempotency-token dedup cache (committed
	// mutation acks kept for replay after an ambiguous outcome). Default
	// 4096 entries.
	IdemCacheSize int

	// ReadTimeout bounds reading a frame body once its length header has
	// arrived — a client dribbling bytes (slowloris) is cut here, and this
	// also bounds writes of response frames. Default 10s.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response frame to a slow reader.
	// Default 10s.
	WriteTimeout time.Duration
	// IdleTimeout bounds how long a session may sit between requests.
	// Default 2m.
	IdleTimeout time.Duration

	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxConns <= 0 {
		o.MaxConns = 256
	}
	if o.MaxAcceptQueue <= 0 {
		o.MaxAcceptQueue = o.MaxConns
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.IdemCacheSize <= 0 {
		o.IdemCacheSize = 4096
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 10 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	return o
}

// ServedStats counts what the service layer has done and shed.
type ServedStats struct {
	ConnsActive     int64 `json:"conns_active"`
	ConnsTotal      int64 `json:"conns_total"`
	ConnsShed       int64 `json:"conns_shed"`
	ConnsQueued     int64 `json:"conns_queued"`
	OpsInFlight     int64 `json:"ops_in_flight"`
	OpsTotal        int64 `json:"ops_total"`
	OpsShedQuota    int64 `json:"ops_shed_quota"`
	IdemReplays     int64 `json:"idem_replays"`
	FrameViolations int64 `json:"frame_violations"`
	Draining        bool  `json:"draining"`
}

// Server serves the wire protocol over one store or one replica.
type Server struct {
	opt       Options
	tenants   map[string]*tenantGate // auth token -> gate
	open      *tenantGate            // auth-disabled shared gate, nil otherwise
	fleetGate *tenantGate            // gate for FleetToken sessions, nil when unset

	connSlots    chan struct{}
	slotWaiters  atomic.Int64
	drainCh      chan struct{} // closed when drain begins; wakes slot waiters
	draining     atomic.Bool
	drainOnce    sync.Once
	shutdownDone chan struct{} // closed when Shutdown finishes

	idem *idemCache

	// promoted is set when a follower-backed server is promoted in place:
	// the same listener keeps serving, but reads and writes switch to the
	// promoted store and health reports role "primary".
	promoted atomic.Pointer[core.Store]

	// fo is the failover coordinator, when this node runs in a fleet
	// (AttachFailover). It answers LEASE / VOTE frames and fences
	// stale-epoch writes and segment ships.
	fo atomic.Pointer[failover.Coordinator]

	opMu sync.Mutex // serializes op begin vs drain cutoff
	ops  sync.WaitGroup

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*conn]struct{}
	seq    atomic.Uint64 // session ids
	closed bool

	connsTotal      atomic.Int64
	connsShed       atomic.Int64
	opsInFlight     atomic.Int64
	opsTotal        atomic.Int64
	frameViolations atomic.Int64
}

// New validates opt and builds a Server.
func New(opt Options) (*Server, error) {
	if (opt.Store == nil) == (opt.Follower == nil) {
		return nil, errors.New("server: exactly one of Store and Follower must be set")
	}
	opt = opt.withDefaults()
	s := &Server{
		opt:          opt,
		tenants:      make(map[string]*tenantGate, len(opt.Tenants)),
		connSlots:    make(chan struct{}, opt.MaxConns),
		drainCh:      make(chan struct{}),
		shutdownDone: make(chan struct{}),
		conns:        make(map[*conn]struct{}),
		idem:         newIdemCache(opt.IdemCacheSize),
	}
	for token, t := range opt.Tenants {
		if token == "" {
			return nil, errors.New("server: empty auth token")
		}
		s.tenants[token] = newTenantGate(t)
	}
	if len(s.tenants) == 0 {
		s.open = newTenantGate(Tenant{Name: "default"})
	}
	if opt.FleetToken != "" {
		if _, clash := s.tenants[opt.FleetToken]; clash {
			return nil, errors.New("server: FleetToken must not equal a tenant token")
		}
		s.fleetGate = newTenantGate(Tenant{Name: "fleet"})
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// Serve accepts connections on ln until Shutdown or a fatal accept error.
// It returns nil after a clean drain.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.connsTotal.Add(1)
		go s.serveConn(nc)
	}
}

// Draining reports whether drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// CloseClientConns severs every currently served connection without
// draining — a fault drill, not a shutdown. Clients see a connection
// reset; the server keeps accepting. The resilient client and the network
// replication transport are expected to ride through this invisibly.
func (s *Server) CloseClientConns() {
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.nc.Close()
	}
}

// Promote ends this server's follower role in place: the underlying
// replica is promoted (durably fenced against its old primary) and this
// same server — same listener, same sessions — starts serving writes
// from the promoted store and reporting role "primary", which is how the
// fleet client discovers the failover. The store is returned so the
// caller owns its lifecycle; it must outlive the server. Promoting a
// store-backed server is an error.
func (s *Server) Promote() (*core.Store, error) { return s.PromoteAt(0) }

// PromoteAt is Promote under a leadership epoch: the promotion is recorded
// in the replica sidecar and the WAL epoch manifest, fencing the new
// timeline against the old primary's. Epoch 0 keeps the legacy manual
// promotion semantics (no epoch recorded).
func (s *Server) PromoteAt(epoch uint64) (*core.Store, error) {
	if s.opt.Follower == nil {
		return nil, errors.New("server: not a replica; nothing to promote")
	}
	st, err := s.opt.Follower.PromoteAt(epoch)
	if err != nil {
		return nil, err
	}
	s.promoted.Store(st)
	return st, nil
}

// PromotedStore returns the store a PromoteAt installed, or nil. The
// caller owns its lifecycle (Close on shutdown).
func (s *Server) PromotedStore() *core.Store { return s.promoted.Load() }

// Stats snapshots the service-layer counters.
func (s *Server) Stats() ServedStats {
	return ServedStats{
		ConnsActive:     int64(len(s.connSlots)),
		ConnsTotal:      s.connsTotal.Load(),
		ConnsShed:       s.connsShed.Load(),
		ConnsQueued:     s.slotWaiters.Load(),
		OpsInFlight:     s.opsInFlight.Load(),
		OpsTotal:        s.opsTotal.Load(),
		OpsShedQuota:    s.quotaShed(),
		IdemReplays:     s.idem.hits.Load(),
		FrameViolations: s.frameViolations.Load(),
		Draining:        s.draining.Load(),
	}
}

func (s *Server) quotaShed() int64 {
	var n int64
	if s.open != nil {
		n += s.open.shed.Load()
	}
	for _, g := range s.tenants {
		n += g.shed.Load()
	}
	return n
}

// beginServerOp admits one operation against the drain cutoff. The mutex
// makes "reject new ops" and "wait for in-flight ops" a single atomic
// boundary: no op can slip in between Shutdown's cutoff and its Wait.
func (s *Server) beginServerOp() (func(), error) {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	if s.draining.Load() {
		return nil, fmt.Errorf("%w: drain in progress", ErrDraining)
	}
	s.ops.Add(1)
	s.opsInFlight.Add(1)
	s.opsTotal.Add(1)
	return func() {
		s.opsInFlight.Add(-1)
		s.ops.Done()
	}, nil
}

// Shutdown drains the server: stop accepting, finish in-flight operations,
// fsync the store, close every connection. ctx bounds how long in-flight
// operations may take; when it expires remaining connections are severed
// and ctx.Err() returned — the store itself stays crash-consistent (that
// is the WAL's job), only clients see the cut.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.drainOnce.Do(func() {
		// Atomic drain cutoff: after this, beginServerOp refuses.
		s.opMu.Lock()
		s.draining.Store(true)
		s.opMu.Unlock()
		close(s.drainCh)

		s.mu.Lock()
		ln := s.ln
		conns := make([]*conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		if ln != nil {
			ln.Close()
		}
		// Sever idle connections now; busy ones finish their current op
		// (the conn loop checks the drain flag after every op).
		for _, c := range conns {
			if !c.inOp.Load() {
				c.nc.Close()
			}
		}

		done := make(chan struct{})
		go func() {
			s.ops.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
		}
		// Force-close whatever remains (no-op after a clean drain).
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.closed = true
		s.mu.Unlock()

		if s.opt.Store != nil {
			if ferr := s.opt.Store.Flush(); ferr != nil && !errors.Is(ferr, core.ErrReadOnly) && err == nil {
				err = ferr
			}
		}
		close(s.shutdownDone)
	})
	<-s.shutdownDone
	return err
}

// conn is one served connection.
type conn struct {
	srv  *Server
	nc   net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	gate *tenantGate
	sid  uint64
	// ver is the protocol version the hello negotiated. v2 sessions carry
	// no epoch field in mutation and segment-ship payloads; the decoders
	// treat them as unstamped (epoch 0).
	ver uint64
	// fleet marks a session authorized for the failover plane (LEASE /
	// VOTE): it presented Options.FleetToken, or the server runs with no
	// credentials at all.
	fleet bool
	inOp  atomic.Bool
}

// serveConn runs a connection's whole life: slot admission, handshake,
// request loop, teardown.
func (s *Server) serveConn(nc net.Conn) {
	if s.draining.Load() {
		s.refuse(nc, fmt.Errorf("%w: drain in progress", ErrDraining))
		return
	}
	if !s.admitConn(nc) {
		return
	}
	defer func() { <-s.connSlots }()

	c := &conn{srv: s, nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		nc.Close()
	}()

	if err := c.handshake(); err != nil {
		c.writeErr(err)
		return
	}
	for {
		closeAfter, err := c.serveRequest()
		if err != nil {
			// Framing violations get a best-effort typed error frame so
			// the client learns *why* before the cut.
			if errors.Is(err, ErrProtocol) || errors.Is(err, ErrFrameTooLarge) {
				s.frameViolations.Add(1)
				c.writeErr(err)
			}
			return
		}
		if closeAfter {
			return
		}
	}
}

// admitConn claims a connection slot. The fast path takes a free slot;
// otherwise the connection waits FIFO in a bounded queue (Go's channel
// semantics wake blocked senders in order) and sheds with ErrOverloaded
// when the queue itself is full.
func (s *Server) admitConn(nc net.Conn) bool {
	select {
	case s.connSlots <- struct{}{}:
		return true
	default:
	}
	if s.slotWaiters.Add(1) > int64(s.opt.MaxAcceptQueue) {
		s.slotWaiters.Add(-1)
		s.connsShed.Add(1)
		s.refuse(nc, fmt.Errorf("%w: %d connections served and %d queued",
			core.ErrOverloaded, s.opt.MaxConns, s.opt.MaxAcceptQueue))
		return false
	}
	defer s.slotWaiters.Add(-1)
	select {
	case s.connSlots <- struct{}{}:
		return true
	case <-s.drainCh:
		s.refuse(nc, fmt.Errorf("%w: drain in progress", ErrDraining))
		return false
	}
}

// refuse sends one best-effort error frame and closes.
func (s *Server) refuse(nc net.Conn, err error) {
	nc.SetWriteDeadline(time.Now().Add(s.opt.WriteTimeout))
	writeFrame(nc, msgErr, encodeErr(err))
	nc.Close()
}

// handshake reads the hello frame under the read timeout (a client that
// connects and stalls is cut quickly — it has no session yet) and binds
// the session to a tenant.
func (c *conn) handshake() error {
	s := c.srv
	c.nc.SetReadDeadline(time.Now().Add(s.opt.ReadTimeout))
	typ, payload, err := readFrame(c.br, s.opt.MaxFrame)
	if err != nil {
		return err
	}
	if typ != msgHello {
		return fmt.Errorf("%w: expected hello, got 0x%02x", ErrProtocol, typ)
	}
	d := dec{payload}
	ver, err := d.u64()
	if err != nil {
		return err
	}
	if ver < MinProtocolVersion || ver > ProtocolVersion {
		return fmt.Errorf("%w: protocol version %d, server speaks %d-%d", ErrProtocol, ver, MinProtocolVersion, ProtocolVersion)
	}
	c.ver = ver
	token, err := d.str()
	if err != nil {
		return err
	}
	switch {
	case s.fleetGate != nil && token == s.opt.FleetToken:
		// The dedicated fleet credential; this is the ONLY token that
		// grants the failover plane on a server with a FleetToken set.
		c.fleet = true
		c.gate = s.fleetGate
	case s.open != nil:
		c.gate = s.open
		// With no credentials configured anywhere the plane is open; the
		// moment a FleetToken exists, anonymous sessions lose it.
		c.fleet = s.fleetGate == nil
	default:
		g, ok := s.tenants[token]
		if !ok {
			return fmt.Errorf("%w: unknown token", ErrAuth)
		}
		c.gate = g
	}
	c.sid = s.seq.Add(1)
	var e enc
	e.u64(c.sid)
	e.u64(uint64(s.opt.MaxFrame))
	role := byte(0)
	if s.opt.Follower != nil {
		role = 1
	}
	e.byt(role)
	return c.writeFrame(msgHelloOK, e.payload())
}

// serveRequest reads and executes one request. The length header waits
// under the idle timeout; once it arrives the body must finish within the
// read timeout — a dribbling client cannot pin the session.
func (c *conn) serveRequest() (closeAfter bool, err error) {
	s := c.srv
	c.nc.SetReadDeadline(time.Now().Add(s.opt.IdleTimeout))
	n, err := readFrameLen(c.br)
	if err != nil {
		return false, err
	}
	c.nc.SetReadDeadline(time.Now().Add(s.opt.ReadTimeout))
	typ, payload, err := readFrameBody(c.br, n, s.opt.MaxFrame)
	if err != nil {
		return false, err
	}

	if typ == msgPing {
		return false, c.writeFrame(msgPong, nil)
	}
	// Failover-plane frames bypass tenant quotas and the drain cutoff,
	// like ping: an overloaded or draining node must still answer the
	// failure detector, or load alone would read as death and trigger a
	// spurious election. They do NOT bypass the fleet credential — a
	// tenant that could inject LEASE / VOTE frames could durably fence
	// the primary or wedge elections.
	if typ == msgLease || typ == msgVote {
		if !c.fleet {
			return false, c.writeErr(fmt.Errorf("%w: failover plane requires the fleet credential", ErrAuth))
		}
		if err := c.handleFailover(typ, payload); err != nil {
			if errors.Is(err, ErrProtocol) {
				s.frameViolations.Add(1)
				c.writeErr(err)
				return false, err
			}
			return false, c.writeErr(err)
		}
		return false, nil
	}

	finish, err := s.beginServerOp()
	if err != nil {
		// Drain cutoff: tell the client, then close so it reconnects
		// against a live server.
		c.writeErr(err)
		return true, nil
	}
	// The response — success frames or the typed error — goes out before
	// finish(): a draining Shutdown waits for in-flight ops, and "in
	// flight" must include telling the client what happened.
	c.inOp.Store(true)
	opErr := c.runOp(typ, payload)
	var werr error
	framing := opErr != nil && (errors.Is(opErr, ErrProtocol) || errors.Is(opErr, ErrFrameTooLarge))
	if opErr != nil && !framing {
		werr = c.writeErr(opErr)
	}
	c.inOp.Store(false)
	finish()

	if framing {
		return false, opErr // framing broken: close with best-effort frame upstream
	}
	if werr != nil {
		return false, werr
	}
	return s.draining.Load(), nil
}

// runOp decodes the request header (deadline, read gate) and dispatches.
func (c *conn) runOp(typ byte, payload []byte) error {
	s := c.srv
	d := &dec{payload}
	deadlineMs, err := d.u64()
	if err != nil {
		return err
	}
	minLSN, err := d.u64()
	if err != nil {
		return err
	}
	staleMs, err := d.u64()
	if err != nil {
		return err
	}
	ctx := context.Background()
	if deadlineMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(deadlineMs)*time.Millisecond)
		defer cancel()
	}
	gate := replica.ReadOptions{MinLSN: minLSN, MaxStaleness: time.Duration(staleMs) * time.Millisecond}

	release, err := c.gate.acquire(ctx)
	if err != nil {
		return err
	}
	defer release()

	return s.dispatch(c, ctx, typ, d, gate)
}

// writeFrame writes one response frame under the write timeout, flushing
// so a streamed row is on the wire before the next one is computed.
func (c *conn) writeFrame(typ byte, payload []byte) error {
	c.nc.SetWriteDeadline(time.Now().Add(c.srv.opt.WriteTimeout))
	if err := writeFrame(c.bw, typ, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *conn) writeErr(err error) error {
	return c.writeFrame(msgErr, encodeErr(err))
}

// reqEpoch decodes the leadership-epoch stamp (wire v3). A v2 session's
// payloads carry no epoch field; those requests are unstamped (epoch 0),
// the same as a v3 client that has not learned an epoch yet.
func (c *conn) reqEpoch(d *dec) (uint64, error) {
	if c.ver < 3 {
		return 0, nil
	}
	return d.u64()
}
