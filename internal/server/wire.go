// Package server is the network service layer: axmlserved's length-prefixed
// binary wire protocol (plus a thin HTTP/JSON facade in http.go) over one
// store or one read replica. Robustness is the design center, not a layer
// on top:
//
//   - client deadlines travel in every request header and become the
//     context the store's own OpTimeout machinery already honors;
//   - connections are bounded with FIFO-fair accept queuing that sheds
//     with the same typed ErrOverloaded the admission controller uses;
//   - per-frame read/write timeouts and a hard frame-size cap defeat
//     slowloris and oversized-frame abuse;
//   - every typed error in the taxonomy (DESIGN.md §10) crosses the wire
//     as its stable code set (core/errcode.go) and is reconstructed on the
//     client so errors.Is answers exactly as it would in-process;
//   - SIGTERM drains gracefully: stop accepting, finish in-flight ops
//     under a deadline, fsync, close.
//
// Wire format (DESIGN.md §12): one frame is
//
//	| uint32 big-endian length | byte type | payload (length-1 bytes) |
//
// Length counts the type byte, so the minimum frame is 5 bytes on the
// wire. Payload fields are unsigned varints and uvarint-length-prefixed
// strings. Each request carries its deadline (milliseconds, 0 = none) and,
// for reads, a replica gate (MinLSN, MaxStaleness) that primaries ignore.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"

	"repro/internal/core"
)

// ProtocolVersion is what this code speaks and sends in hello frames.
// Version 2 added the replication stream (SEGMENTS / FETCH_SEGMENT) and
// the idempotency token every mutation payload now carries. Version 3
// added the failover plane (LEASE / VOTE) and the leadership-epoch stamp
// on every mutation and segment-ship request — the fencing half of
// automatic failover.
//
// The server accepts [MinProtocolVersion, ProtocolVersion] so a fleet
// upgrades rolling, not flag-day: v2 clients and replicas keep working
// against v3 servers, their payloads decoded without the epoch field and
// treated as unstamped (epoch 0) — exactly how a v3 server treats a v3
// client that has not learned an epoch yet. Upgrade servers first, then
// clients; a v3 client against a v2 server is refused by the old server.
const (
	ProtocolVersion    = 3
	MinProtocolVersion = 2
)

// DefaultMaxFrame caps one frame's wire size (length field) unless
// Options/ClientOptions override it.
const DefaultMaxFrame = 1 << 20

// Message types. Client requests are < 0x80, server responses >= 0x80.
const (
	msgHello    byte = 0x01
	msgPing     byte = 0x02
	msgQuery    byte = 0x10
	msgValue    byte = 0x11
	msgReadNode byte = 0x12
	msgStats    byte = 0x13
	msgHealth   byte = 0x14
	msgInsert   byte = 0x20
	msgDelete   byte = 0x21
	msgLoad     byte = 0x22

	// Replication stream: a follower lists archived segments beyond its
	// applied LSN, then fetches them one at a time. A fetch response is
	// chunked (msgSegData frames, then msgDone with the total) so a segment
	// larger than the frame cap still crosses the wire.
	msgSegments     byte = 0x30
	msgFetchSegment byte = 0x31

	// Failover plane (wire v3): the primary's epoch-stamped lease
	// heartbeat and a candidate's vote solicitation. Handled ahead of
	// tenant quotas and the drain cutoff, like ping — an overloaded or
	// draining node must still answer the failure detector, or load alone
	// would read as death and trigger spurious elections.
	msgLease byte = 0x40
	msgVote  byte = 0x41

	msgHelloOK  byte = 0x80
	msgErr      byte = 0x81
	msgPong     byte = 0x82
	msgRow      byte = 0x83
	msgDone     byte = 0x84
	msgValueRes byte = 0x85
	msgJSON     byte = 0x86
	msgNodeID   byte = 0x87
	msgOK       byte = 0x88
	msgSegList  byte = 0x89
	msgSegData  byte = 0x8A
	msgLeaseAck byte = 0x8B
	msgVoteRes  byte = 0x8C
)

// InsertOp selects which XUpdate primitive an insert request runs.
type InsertOp byte

// Insert operations, wire-stable.
const (
	InsertLast InsertOp = iota
	InsertFirst
	InsertBefore
	InsertAfter
	Replace
	ReplaceContent
)

// Typed service-layer errors, registered in the wire-code registry like
// every other layer's sentinels.
var (
	// ErrAuth rejects a handshake with an unknown token, or a request on a
	// connection that never completed its handshake.
	ErrAuth = errors.New("server: authentication failed")
	// ErrFrameTooLarge rejects a frame whose declared length exceeds the
	// negotiated cap. The connection closes: the stream's framing can no
	// longer be trusted (the declared bytes were never read).
	ErrFrameTooLarge = errors.New("server: frame exceeds the maximum size")
	// ErrProtocol rejects a malformed frame or an out-of-order message;
	// the connection closes.
	ErrProtocol = errors.New("server: protocol violation")
	// ErrDraining sheds an operation arriving after drain began. The
	// caller should reconnect elsewhere; in-flight operations finish.
	ErrDraining = errors.New("server: draining, not accepting new operations")
	// ErrQuotaExceeded sheds an operation whose tenant is at its quota
	// with a full wait queue. Like ErrOverloaded, retry after backoff.
	ErrQuotaExceeded = errors.New("server: tenant quota exceeded")
	// ErrBadRequest rejects a request whose payload decoded but made no
	// sense (bad insert op, unparsable fragment target...). The connection
	// stays open.
	ErrBadRequest = errors.New("server: malformed request")
	// ErrIdemAmbiguous refuses an idempotency token that fell out of the
	// dedup window: the original outcome is unknowable, and silently
	// re-executing could double-apply. The caller must reconcile by
	// reading — re-sending the same token cannot resolve the ambiguity.
	ErrIdemAmbiguous = errors.New("server: idempotency token expired from the dedup window; outcome ambiguous")
)

// Quota sheds and drain refusals are retryable — the quota clears as the
// tenant's in-flight ops finish, and a draining server's fleet has a
// healthy peer to reconnect to. Auth, protocol and request-shape failures
// are deterministic: the same bytes fail the same way forever.
func init() {
	core.RegisterErrCode(core.CodeAuth, ErrAuth, false)
	core.RegisterErrCode(core.CodeFrameTooLarge, ErrFrameTooLarge, false)
	core.RegisterErrCode(core.CodeProtocol, ErrProtocol, false)
	core.RegisterErrCode(core.CodeDraining, ErrDraining, true)
	core.RegisterErrCode(core.CodeQuotaExceeded, ErrQuotaExceeded, true)
	core.RegisterErrCode(core.CodeBadRequest, ErrBadRequest, false)
	core.RegisterErrCode(core.CodeIdemAmbiguous, ErrIdemAmbiguous, false)
	// fs.ErrNotExist rides code 66 so a network follower's missing-segment
	// check (errors.Is against fs.ErrNotExist) answers exactly as a local
	// directory read's would. Not retryable by policy: the follower itself
	// decides between "next poll" and "stall" — blind re-runs decide wrong.
	core.RegisterErrCode(core.CodeSegmentGone, fs.ErrNotExist, false)
}

// writeFrame writes one frame. The caller is responsible for any write
// deadline on w.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	hdr := make([]byte, 5, 5+len(payload))
	binary.BigEndian.PutUint32(hdr, uint32(1+len(payload)))
	hdr[4] = typ
	_, err := w.Write(append(hdr, payload...))
	return err
}

// readFrameLen reads the 4-byte length header. It is split from
// readFrameBody so the server can run the two phases under different
// deadlines: a long idle timeout waiting for the header, a short read
// timeout for the body — the slowloris defense.
func readFrameLen(r io.Reader) (uint32, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(hdr[:]), nil
}

// readFrameBody validates the declared length against the cap *before*
// reading — an attacker-declared length never allocates or waits for bytes
// that will not be honored — then reads type byte and payload.
func readFrameBody(r io.Reader, n uint32, maxFrame int) (byte, []byte, error) {
	if n == 0 {
		return 0, nil, fmt.Errorf("%w: zero-length frame", ErrProtocol)
	}
	if int64(n) > int64(maxFrame) {
		return 0, nil, fmt.Errorf("%w: declared %d bytes, cap %d", ErrFrameTooLarge, n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// readFrame reads one complete frame under a single deadline regime.
func readFrame(r io.Reader, maxFrame int) (byte, []byte, error) {
	n, err := readFrameLen(r)
	if err != nil {
		return 0, nil, err
	}
	return readFrameBody(r, n, maxFrame)
}

// enc builds a payload: uvarints and uvarint-length-prefixed strings.
type enc struct{ b []byte }

func (e *enc) u64(v uint64)    { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) byt(v byte)      { e.b = append(e.b, v) }
func (e *enc) str(s string)    { e.u64(uint64(len(s))); e.b = append(e.b, s...) }
func (e *enc) bytes(p []byte)  { e.u64(uint64(len(p))); e.b = append(e.b, p...) }
func (e *enc) payload() []byte { return e.b }

// dec consumes a payload; every method fails cleanly on truncation so a
// hostile payload cannot panic the session.
type dec struct{ b []byte }

func (d *dec) u64() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", ErrProtocol)
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *dec) byt() (byte, error) {
	if len(d.b) == 0 {
		return 0, fmt.Errorf("%w: truncated byte", ErrProtocol)
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}

func (d *dec) str() (string, error) {
	n, err := d.u64()
	if err != nil {
		return "", err
	}
	if uint64(len(d.b)) < n {
		return "", fmt.Errorf("%w: truncated string (declared %d, have %d)", ErrProtocol, n, len(d.b))
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s, nil
}

// encodeErr maps an error chain onto the wire: every registered code the
// chain matches (core.ErrCodesOf), then the message. The full code set —
// not a single primary — is what lets multi-cause errors (a gated replica
// read shed both ErrTooStale and ErrReplicaStalled) round-trip errors.Is.
func encodeErr(err error) []byte {
	codes := core.ErrCodesOf(err)
	var e enc
	e.u64(uint64(len(codes)))
	for _, c := range codes {
		e.u64(uint64(c))
	}
	e.str(err.Error())
	return e.payload()
}

// wireError is the client-side reconstruction of a server error frame: the
// original message plus every sentinel the server's chain matched, exposed
// through Unwrap so errors.Is answers exactly as it would in-process.
type wireError struct {
	codes  []core.ErrCode
	msg    string
	causes []error
}

func (e *wireError) Error() string   { return e.msg }
func (e *wireError) Unwrap() []error { return e.causes }

// Codes returns the stable wire codes the server attached.
func (e *wireError) Codes() []core.ErrCode { return e.codes }

// decodeErr rebuilds a wireError from an error-frame payload.
func decodeErr(payload []byte) error {
	d := dec{payload}
	n, err := d.u64()
	if err != nil {
		return err
	}
	if n > 64 {
		return fmt.Errorf("%w: %d error codes in one frame", ErrProtocol, n)
	}
	we := &wireError{}
	for i := uint64(0); i < n; i++ {
		c, err := d.u64()
		if err != nil {
			return err
		}
		code := core.ErrCode(c)
		we.codes = append(we.codes, code)
		if s, ok := core.SentinelFor(code); ok {
			we.causes = append(we.causes, s)
		}
	}
	msg, err := d.str()
	if err != nil {
		return err
	}
	we.msg = msg
	return we
}
