// Service-layer behavior end to end over real TCP: sessions and auth,
// CRUD and streamed queries, deadline propagation into the store, tenant
// quotas, FIFO-fair connection admission, replica fronting with staleness
// gates, the HTTP facade, and graceful drain.
package server_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	axml "repro"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/pagestore"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

type syncedMemPager struct{ *pagestore.MemPager }

func (syncedMemPager) Sync() error { return nil }

// env is one running server plus its backend.
type env struct {
	t    *testing.T
	srv  *server.Server
	st   *core.Store
	inj  *fault.Injector
	addr string
	done chan error
}

// start brings up a server over an in-memory store with fault injection
// underneath, serves on a loopback port, and tears everything down with
// the test.
func start(t *testing.T, cfg core.Config, opt server.Options) *env {
	t.Helper()
	inj := fault.NewInjector(fault.Config{})
	if cfg.Pager == nil {
		cfg.Pager = fault.NewPager(inj, syncedMemPager{pagestore.NewMemPager(cfg.PageSize)})
	}
	st, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Store == nil && opt.Follower == nil {
		opt.Store = st
	}
	srv, err := server.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	e := &env{t: t, srv: srv, st: st, inj: inj, addr: ln.Addr().String(), done: make(chan error, 1)}
	go func() { e.done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		st.Close()
	})
	return e
}

func (e *env) dial(opt server.ClientOptions) *server.Client {
	e.t.Helper()
	c, err := server.Dial(e.addr, opt)
	if err != nil {
		e.t.Fatal(err)
	}
	e.t.Cleanup(func() { c.Close() })
	return c
}

func memCfg() core.Config {
	return core.Config{Mode: core.RangePartial, PageSize: 512, OpTimeout: 5 * time.Second}
}

// slowCfg thrashes the buffer pool so injected per-page latency actually
// accumulates — ops stay observably in flight.
func slowCfg() core.Config {
	cfg := memCfg()
	cfg.PoolPages = 8
	return cfg
}

func TestEndToEndCRUD(t *testing.T) {
	e := start(t, memCfg(), server.Options{})
	c := e.dial(server.ClientOptions{})
	ctx := context.Background()

	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	root, err := c.Load(ctx, `<inv><item sku="a"><qty>2</qty></item><item sku="b"><qty>7</qty></item></inv>`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query(ctx, `//item[@sku="b"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !strings.Contains(rows[0].XML, `sku="b"`) {
		t.Fatalf("query rows: %+v", rows)
	}
	v, err := c.Value(ctx, `count(//item)`)
	if err != nil {
		t.Fatal(err)
	}
	if v != "2" {
		t.Fatalf("count = %q", v)
	}
	id, err := c.Insert(ctx, server.InsertLast, root, `<item sku="c"/>`)
	if err != nil {
		t.Fatal(err)
	}
	xml, err := c.ReadNode(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xml, `sku="c"`) {
		t.Fatalf("read back: %q", xml)
	}
	if err := c.Delete(ctx, rows[0].ID); err != nil {
		t.Fatal(err)
	}
	if v, _ = c.Value(ctx, `count(//item)`); v != "2" {
		t.Fatalf("after delete: count = %q", v)
	}
	// The ack promised durability/visibility: the store agrees directly.
	if got, _ := axml.QueryValue(e.st, `count(//item)`); got != "2" {
		t.Fatalf("store disagrees: %q", got)
	}
	if err := e.st.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestAuthTokens(t *testing.T) {
	e := start(t, memCfg(), server.Options{
		Tenants: map[string]server.Tenant{"tok-a": {Name: "a"}},
	})
	if _, err := server.Dial(e.addr, server.ClientOptions{Token: "wrong"}); !errors.Is(err, server.ErrAuth) {
		t.Fatalf("bad token: %v, want ErrAuth", err)
	}
	c := e.dial(server.ClientOptions{Token: "tok-a"})
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.SessionID() == 0 {
		t.Fatal("no session id assigned")
	}
}

// TestDeadlinePropagation: the client's context deadline must travel the
// wire and cut the operation inside the store — the response is a typed
// deadline error, not a hung connection.
func TestDeadlinePropagation(t *testing.T) {
	e := start(t, slowCfg(), server.Options{})
	c := e.dial(server.ClientOptions{})
	if _, err := c.Load(context.Background(), bigDoc(200)); err != nil {
		t.Fatal(err)
	}
	e.inj.ArmLatency(3 * time.Millisecond)
	defer e.inj.DisarmLatency()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Query(ctx, `//row`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline did not propagate: %v", err)
	}
	// The session died with the cut; a fresh one serves immediately once
	// the slowness clears.
	e.inj.DisarmLatency()
	c2 := e.dial(server.ClientOptions{})
	if _, err := c2.Query(context.Background(), `//row[1]`); err != nil {
		t.Fatal(err)
	}
}

// TestTenantQuotaSheds: one tenant at its concurrency quota with a full
// wait queue sheds with ErrQuotaExceeded while another tenant's traffic
// is untouched — the point of per-tenant gates in front of the shared
// admission controller.
func TestTenantQuotaSheds(t *testing.T) {
	e := start(t, slowCfg(), server.Options{
		Tenants: map[string]server.Tenant{
			"tok-a": {Name: "a", MaxConcurrentOps: 1, MaxQueuedOps: 1},
			"tok-b": {Name: "b"},
		},
	})
	if _, err := e.dial(server.ClientOptions{Token: "tok-b"}).Load(context.Background(), bigDoc(300)); err != nil {
		t.Fatal(err)
	}
	e.inj.ArmLatency(2 * time.Millisecond)
	defer e.inj.DisarmLatency()

	const n = 6
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		c := e.dial(server.ClientOptions{Token: "tok-a"})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Value(context.Background(), `count(//row)`)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	var shed int
	for err := range errs {
		if errors.Is(err, server.ErrQuotaExceeded) {
			shed++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if shed == 0 {
		t.Fatal("no request shed with ErrQuotaExceeded (quota 1, queue 1, 6 concurrent)")
	}
	// Tenant b sails through while a is saturated.
	if _, err := e.dial(server.ClientOptions{Token: "tok-b"}).Value(context.Background(), `count(//row)`); err != nil {
		t.Fatalf("tenant b collateral damage: %v", err)
	}
}

// TestConnAdmissionFIFO: connections beyond MaxConns wait FIFO; beyond
// the accept queue they shed with the same typed ErrOverloaded the core
// admission controller uses.
func TestConnAdmissionFIFO(t *testing.T) {
	e := start(t, memCfg(), server.Options{MaxConns: 1, MaxAcceptQueue: 1})
	c1 := e.dial(server.ClientOptions{})
	if err := c1.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	// c2 queues: its Dial blocks in the handshake until a slot frees.
	type dialRes struct {
		c   *server.Client
		err error
	}
	c2ch := make(chan dialRes, 1)
	go func() {
		c, err := server.Dial(e.addr, server.ClientOptions{DialTimeout: 10 * time.Second})
		c2ch <- dialRes{c, err}
	}()
	waitFor(t, func() bool { return e.srv.Stats().ConnsQueued == 1 })
	// c3 finds the queue full and is shed immediately.
	if _, err := server.Dial(e.addr, server.ClientOptions{}); !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("third conn: %v, want ErrOverloaded", err)
	}
	// Releasing c1 admits the queued c2 — FIFO, nobody starves.
	c1.Close()
	select {
	case r := <-c2ch:
		if r.err != nil {
			t.Fatalf("queued dial failed: %v", r.err)
		}
		if err := r.c.Ping(context.Background()); err != nil {
			t.Fatal(err)
		}
		r.c.Close()
	case <-time.After(10 * time.Second):
		t.Fatal("queued connection never admitted")
	}
}

// TestGracefulDrain: Shutdown finishes the in-flight operation, refuses
// new work with ErrDraining, fsyncs, and Serve returns nil.
func TestGracefulDrain(t *testing.T) {
	e := start(t, slowCfg(), server.Options{})
	c := e.dial(server.ClientOptions{})
	if _, err := c.Load(context.Background(), bigDoc(300)); err != nil {
		t.Fatal(err)
	}
	e.inj.ArmLatency(time.Millisecond)
	defer e.inj.DisarmLatency()

	opDone := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), `//row`)
		opDone <- err
	}()
	waitFor(t, func() bool { return e.srv.Stats().OpsInFlight > 0 })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The in-flight query finished cleanly despite the drain.
	if err := <-opDone; err != nil {
		t.Fatalf("in-flight op during drain: %v", err)
	}
	// New connections are refused with the typed drain error.
	if _, err := server.Dial(e.addr, server.ClientOptions{}); err == nil || !errors.Is(err, server.ErrDraining) {
		// The listener may already be gone entirely; a refused TCP connect
		// is also a valid post-drain answer.
		var ne net.Error
		if err == nil || !(errors.As(err, &ne) || strings.Contains(err.Error(), "refused")) {
			t.Fatalf("post-drain dial: %v", err)
		}
	}
	if err := <-e.done; err != nil {
		t.Fatalf("Serve returned %v after drain, want nil", err)
	}
	if err := e.st.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaServing: a server fronting a follower serves gated reads,
// sheds writes with ErrReadOnly, and maps gate failures (ErrTooStale) to
// the client intact.
func TestReplicaServing(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "primary.db")
	arch := filepath.Join(dir, "segments")
	wp, err := wal.OpenWithOptions(db, 512, wal.Options{ArchiveDir: arch})
	if err != nil {
		t.Fatal(err)
	}
	pcfg := core.Config{Mode: core.RangeOnly, PageSize: 512, Pager: wp}
	pst, err := core.Open(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pst.Close()
	if _, err := axml.LoadXMLString(pst, `<log><e n="0"/></log>`); err != nil {
		t.Fatal(err)
	}
	if err := pst.Flush(); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "base.bak")
	if _, err := pst.BackupTo(base); err != nil {
		t.Fatal(err)
	}

	f, err := replica.Open(filepath.Join(dir, "follower.db"), replica.NewDirTransport(arch, replica.DirTransportOptions{}),
		replica.Options{Store: core.Config{Mode: core.RangeOnly, PageSize: 512}, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv, err := server.New(server.Options{Follower: f})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	c, err := server.Dial(ln.Addr().String(), server.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.IsReplica() {
		t.Fatal("session does not report replica role")
	}
	ctx := context.Background()
	if v, err := c.Value(ctx, `count(//e)`); err != nil || v != "1" {
		t.Fatalf("replica read: %q, %v", v, err)
	}
	// Writes shed with the typed read-only refusal.
	if _, err := c.Load(ctx, `<e/>`); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("replica write: %v, want ErrReadOnly", err)
	}
	// A gate the follower cannot meet sheds with ErrTooStale over the wire.
	applied := f.Stats().AppliedLSN
	cg, err := server.Dial(ln.Addr().String(), server.ClientOptions{Gate: replica.ReadOptions{MinLSN: applied + 10}})
	if err != nil {
		t.Fatal(err)
	}
	defer cg.Close()
	if _, err := cg.Value(ctx, `count(//e)`); !errors.Is(err, replica.ErrTooStale) {
		t.Fatalf("gated read: %v, want ErrTooStale", err)
	}
	// Health over the wire reflects the replica role.
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Role != "replica" || h.Replica == nil {
		t.Fatalf("health: %+v", h)
	}
}

// TestErrorRoundTripEndToEnd drives representative typed failures through
// a live server: what errors.Is says in-process it must say on the client.
func TestErrorRoundTripEndToEnd(t *testing.T) {
	e := start(t, memCfg(), server.Options{})
	c := e.dial(server.ClientOptions{})
	ctx := context.Background()
	if _, err := c.Load(ctx, `<doc><a/></doc>`); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, core.NodeID(999999)); !errors.Is(err, core.ErrNoSuchNode) {
		t.Fatalf("missing node: %v, want ErrNoSuchNode", err)
	}
	if _, err := c.Query(ctx, `//[broken`); !errors.Is(err, server.ErrBadRequest) {
		t.Fatalf("bad xpath: %v, want ErrBadRequest", err)
	}
	if _, err := c.Load(ctx, `<unclosed>`); !errors.Is(err, server.ErrBadRequest) {
		t.Fatalf("bad fragment: %v, want ErrBadRequest", err)
	}
}

func TestHTTPFacade(t *testing.T) {
	e := start(t, memCfg(), server.Options{})
	c := e.dial(server.ClientOptions{})
	if _, err := c.Load(context.Background(), `<doc><a/><a/></doc>`); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(e.srv.HTTPHandler())
	defer ts.Close()

	if code, body := httpGet(t, ts.URL+"/healthz"); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if code, body := httpGet(t, ts.URL+"/readyz"); code != 200 || !strings.Contains(body, `"ready":true`) {
		t.Fatalf("readyz: %d %q", code, body)
	}
	if code, body := httpGet(t, ts.URL+"/stats"); code != 200 || !strings.Contains(body, `"role":"primary"`) {
		t.Fatalf("stats: %d %q", code, body)
	}
	if code, body := httpGet(t, ts.URL+"/query?expr="+`%2F%2Fa`); code != 200 || strings.Count(body, `"id"`) != 2 {
		t.Fatalf("query: %d %q", code, body)
	}
	if code, body := httpGet(t, ts.URL+"/value?expr=count(%2F%2Fa)"); code != 200 || !strings.Contains(body, `"2"`) {
		t.Fatalf("value: %d %q", code, body)
	}
	if code, body := httpGet(t, ts.URL+"/query?expr=%2F%2F%5Bbroken"); code != 400 || !strings.Contains(body, "codes") {
		t.Fatalf("bad query: %d %q", code, body)
	}

	// Drain flips readiness to 503 while liveness stays 200: the probe
	// pair tells the orchestrator "alive, stop routing".
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if code, _ := httpGet(t, ts.URL+"/healthz"); code != 200 {
		t.Fatalf("healthz after drain: %d", code)
	}
	if code, body := httpGet(t, ts.URL+"/readyz"); code != 503 || !strings.Contains(body, "draining") {
		t.Fatalf("readyz after drain: %d %q", code, body)
	}
}

// bigDoc builds a flat document large enough that scans take real time
// under injected latency.
func bigDoc(rows int) string {
	var sb strings.Builder
	sb.WriteString("<t>")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, `<row n="%d">v%d</row>`, i, i)
	}
	sb.WriteString("</t>")
	return sb.String()
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never met")
}
