package server

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/token"
	"repro/internal/xmltok"
	"repro/internal/xpath"
)

// StatsReport is the msgStats / HTTP /stats payload: service-layer
// counters plus whichever backend is behind them.
type StatsReport struct {
	Server  ServedStats    `json:"server"`
	Role    string         `json:"role"` // "primary" | "replica"
	Store   *core.Stats    `json:"store,omitempty"`
	Replica *replica.Stats `json:"replica,omitempty"`
}

// HealthReport is the msgHealth / HTTP /readyz payload. Ready reflects
// the real store state: false while draining, degraded-read-only, or
// replica-stalled — exactly the conditions a load balancer should route
// around.
type HealthReport struct {
	Ready    bool               `json:"ready"`
	Draining bool               `json:"draining"`
	Role     string             `json:"role"`
	Reason   string             `json:"reason,omitempty"`
	Health   core.HealthSummary `json:"health"`
	Replica  *replica.Stats     `json:"replica,omitempty"`
}

func (s *Server) role() string {
	if s.opt.Follower != nil {
		return "replica"
	}
	return "primary"
}

// withRead runs fn against the read backend. On a replica the caller's
// gate (MinLSN / MaxStaleness from the request header) is enforced; a
// primary is never stale, so the gate is moot there.
func (s *Server) withRead(gate replica.ReadOptions, fn func(*core.Store) error) error {
	if s.opt.Follower != nil {
		return s.opt.Follower.Read(gate, fn)
	}
	return fn(s.opt.Store)
}

// writeStore returns the mutable backend or the typed refusal.
func (s *Server) writeStore() (*core.Store, error) {
	if s.opt.Follower != nil {
		return nil, fmt.Errorf("%w: replica serves reads only", core.ErrReadOnly)
	}
	return s.opt.Store, nil
}

// statsReport assembles the full report.
func (s *Server) statsReport() StatsReport {
	rep := StatsReport{Server: s.Stats(), Role: s.role()}
	if s.opt.Follower != nil {
		rs := s.opt.Follower.Stats()
		rep.Replica = &rs
	} else {
		st := s.opt.Store.Stats()
		rep.Store = &st
	}
	return rep
}

// healthReport assembles the readiness view from live backend state.
func (s *Server) healthReport() HealthReport {
	h := HealthReport{Ready: true, Draining: s.draining.Load(), Role: s.role()}
	if h.Draining {
		h.Ready = false
		h.Reason = "draining"
	}
	if s.opt.Follower != nil {
		rs := s.opt.Follower.Stats()
		h.Replica = &rs
		switch {
		case rs.Promoted:
			h.Role = "primary"
		case rs.Stalled && h.Ready:
			h.Ready = false
			h.Reason = "replica stalled: " + rs.StallCause
		}
		s.opt.Follower.Read(replica.ReadOptions{}, func(st *core.Store) error {
			h.Health = st.Health()
			return nil
		})
	} else {
		h.Health = s.opt.Store.Health()
	}
	if h.Health.Degraded && h.Ready {
		h.Ready = false
		h.Reason = "store degraded: " + h.Health.ReadOnlyCause
	}
	return h
}

// dispatch runs one decoded request. d has been advanced past the common
// header; what remains is op-specific.
func (s *Server) dispatch(c *conn, ctx context.Context, typ byte, d *dec, gate replica.ReadOptions) error {
	switch typ {
	case msgQuery:
		expr, err := d.str()
		if err != nil {
			return err
		}
		return s.handleQuery(c, ctx, expr, gate)
	case msgValue:
		expr, err := d.str()
		if err != nil {
			return err
		}
		return s.handleValue(c, ctx, expr, gate)
	case msgReadNode:
		id, err := d.u64()
		if err != nil {
			return err
		}
		return s.handleReadNode(c, ctx, core.NodeID(id), gate)
	case msgStats:
		return c.writeJSON(s.statsReport())
	case msgHealth:
		return c.writeJSON(s.healthReport())
	case msgInsert:
		return s.handleInsert(c, ctx, d)
	case msgDelete:
		id, err := d.u64()
		if err != nil {
			return err
		}
		return s.handleDelete(c, ctx, core.NodeID(id))
	case msgLoad:
		frag, err := d.str()
		if err != nil {
			return err
		}
		return s.handleLoad(c, ctx, frag)
	default:
		return fmt.Errorf("%w: unknown request type 0x%02x", ErrProtocol, typ)
	}
}

func (c *conn) writeJSON(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return c.writeFrame(msgJSON, b)
}

// nodeXML renders one node's subtree under the caller's deadline —
// NodeXMLString's logic on top of the ctx-aware read path.
func nodeXML(ctx context.Context, st *core.Store, id core.NodeID) (string, error) {
	items, err := st.ReadNodeCtx(ctx, id)
	if err != nil {
		return "", err
	}
	toks := make([]core.Token, 0, len(items))
	for _, it := range items {
		toks = append(toks, it.Tok)
	}
	if len(toks) > 0 && toks[0].Kind == token.BeginAttribute {
		return fmt.Sprintf("%s=%q", toks[0].Name, toks[0].Value), nil
	}
	return xmltok.ToString(toks)
}

// handleQuery streams matches as they serialize: one msgRow per node,
// then msgDone with the count. Each row flushes under the write timeout,
// so a slow reader stalls its own session only — and only briefly.
func (s *Server) handleQuery(c *conn, ctx context.Context, expr string, gate replica.ReadOptions) error {
	compiled, err := xpath.Parse(expr)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	var sent uint64
	err = s.withRead(gate, func(st *core.Store) error {
		doc, err := xpath.FromStoreCtx(ctx, st)
		if err != nil {
			return err
		}
		nodes, err := compiled.Eval(doc)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		ids := make([]core.NodeID, 0, len(nodes))
		for _, n := range nodes {
			if n.Kind != xpath.Root {
				ids = append(ids, n.ID)
			}
		}
		for _, id := range ids {
			if err := ctx.Err(); err != nil {
				return err
			}
			xml, err := nodeXML(ctx, st, id)
			if err != nil {
				return err
			}
			var e enc
			e.u64(uint64(id))
			e.str(xml)
			if err := c.writeFrame(msgRow, e.payload()); err != nil {
				return err
			}
			sent++
		}
		return nil
	})
	if err != nil {
		return err
	}
	var e enc
	e.u64(sent)
	return c.writeFrame(msgDone, e.payload())
}

func (s *Server) handleValue(c *conn, ctx context.Context, expr string, gate replica.ReadOptions) error {
	compiled, err := xpath.Parse(expr)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	var val string
	err = s.withRead(gate, func(st *core.Store) error {
		d, err := xpath.FromStoreCtx(ctx, st)
		if err != nil {
			return err
		}
		val, err = compiled.EvalValue(d)
		return err
	})
	if err != nil {
		return err
	}
	var e enc
	e.str(val)
	return c.writeFrame(msgValueRes, e.payload())
}

func (s *Server) handleReadNode(c *conn, ctx context.Context, id core.NodeID, gate replica.ReadOptions) error {
	var xml string
	err := s.withRead(gate, func(st *core.Store) error {
		var err error
		xml, err = nodeXML(ctx, st, id)
		return err
	})
	if err != nil {
		return err
	}
	var e enc
	e.str(xml)
	return c.writeFrame(msgValueRes, e.payload())
}

// handleInsert runs one XUpdate primitive and commits it (Flush) before
// acknowledging — the ack means durable.
func (s *Server) handleInsert(c *conn, ctx context.Context, d *dec) error {
	opb, err := d.byt()
	if err != nil {
		return err
	}
	id, err := d.u64()
	if err != nil {
		return err
	}
	frag, err := d.str()
	if err != nil {
		return err
	}
	st, err := s.writeStore()
	if err != nil {
		return err
	}
	toks, err := xmltok.ParseFragmentString(frag, xmltok.ParseOptions{})
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	target := core.NodeID(id)
	var newID core.NodeID
	switch InsertOp(opb) {
	case InsertLast:
		newID, err = st.InsertIntoLastCtx(ctx, target, toks)
	case InsertFirst:
		newID, err = st.InsertIntoFirstCtx(ctx, target, toks)
	case InsertBefore:
		newID, err = st.InsertBeforeCtx(ctx, target, toks)
	case InsertAfter:
		newID, err = st.InsertAfterCtx(ctx, target, toks)
	case Replace:
		newID, err = st.ReplaceNodeCtx(ctx, target, toks)
	case ReplaceContent:
		newID, err = st.ReplaceContentCtx(ctx, target, toks)
	default:
		return fmt.Errorf("%w: unknown insert op %d", ErrBadRequest, opb)
	}
	if err != nil {
		return err
	}
	if err := st.Flush(); err != nil {
		return err
	}
	var e enc
	e.u64(uint64(newID))
	return c.writeFrame(msgNodeID, e.payload())
}

func (s *Server) handleDelete(c *conn, ctx context.Context, id core.NodeID) error {
	st, err := s.writeStore()
	if err != nil {
		return err
	}
	if err := st.DeleteNodeCtx(ctx, id); err != nil {
		return err
	}
	if err := st.Flush(); err != nil {
		return err
	}
	return c.writeFrame(msgOK, nil)
}

func (s *Server) handleLoad(c *conn, ctx context.Context, frag string) error {
	st, err := s.writeStore()
	if err != nil {
		return err
	}
	toks, err := xmltok.ParseFragmentString(frag, xmltok.ParseOptions{})
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	id, err := st.AppendCtx(ctx, toks)
	if err != nil {
		return err
	}
	if err := st.Flush(); err != nil {
		return err
	}
	var e enc
	e.u64(uint64(id))
	return c.writeFrame(msgNodeID, e.payload())
}
