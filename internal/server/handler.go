package server

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/replica"
	"repro/internal/token"
	"repro/internal/wal"
	"repro/internal/xmltok"
	"repro/internal/xpath"
)

// StatsReport is the msgStats / HTTP /stats payload: service-layer
// counters plus whichever backend is behind them.
type StatsReport struct {
	Server  ServedStats    `json:"server"`
	Role    string         `json:"role"` // "primary" | "replica"
	Store   *core.Stats    `json:"store,omitempty"`
	Replica *replica.Stats `json:"replica,omitempty"`

	// Failover is the coordinator's view (epoch, suspicion, election
	// counters) when this node runs in a fleet.
	Failover *failover.Status `json:"failover,omitempty"`
}

// HealthReport is the msgHealth / HTTP /readyz payload. Ready reflects
// the real store state: false while draining, degraded-read-only, or
// replica-stalled — exactly the conditions a load balancer should route
// around.
type HealthReport struct {
	Ready    bool               `json:"ready"`
	Draining bool               `json:"draining"`
	Role     string             `json:"role"`
	Reason   string             `json:"reason,omitempty"`
	Health   core.HealthSummary `json:"health"`
	Replica  *replica.Stats     `json:"replica,omitempty"`

	// Failover identity: which node this is, the leadership epoch it has
	// established, and whether it is fenced (deposed — permanently
	// refusing writes and segment ships). Zero-valued on standalone
	// servers.
	NodeID string `json:"node_id,omitempty"`
	Epoch  uint64 `json:"epoch,omitempty"`
	Fenced bool   `json:"fenced,omitempty"`

	// Replication position, surfaced top-level so load balancers and the
	// fleet client's freshest-replica routing read it without digging into
	// Replica. A primary reports its archive LSN as AppliedLSN.
	AppliedLSN  uint64 `json:"applied_lsn,omitempty"`
	LagSegments int    `json:"lag_segments,omitempty"`
	StallCause  string `json:"stall_cause,omitempty"`
}

func (s *Server) role() string {
	if s.opt.Follower != nil && s.promoted.Load() == nil {
		return "replica"
	}
	return "primary"
}

// withRead runs fn against the read backend. On a replica the caller's
// gate (MinLSN / MaxStaleness from the request header) is enforced; a
// primary — original or promoted in place — is never stale, so the gate
// is moot there.
func (s *Server) withRead(gate replica.ReadOptions, fn func(*core.Store) error) error {
	if p := s.promoted.Load(); p != nil {
		return fn(p)
	}
	if s.opt.Follower != nil {
		return s.opt.Follower.Read(gate, fn)
	}
	return fn(s.opt.Store)
}

// writeStore returns the mutable backend or the typed refusal.
func (s *Server) writeStore() (*core.Store, error) {
	if p := s.promoted.Load(); p != nil {
		return p, nil
	}
	if s.opt.Follower != nil {
		return nil, fmt.Errorf("%w: replica serves reads only", core.ErrReadOnly)
	}
	return s.opt.Store, nil
}

// statsReport assembles the full report.
func (s *Server) statsReport() StatsReport {
	rep := StatsReport{Server: s.Stats(), Role: s.role()}
	if p := s.promoted.Load(); p != nil {
		st := p.Stats()
		rep.Store = &st
	} else if s.opt.Follower != nil {
		rs := s.opt.Follower.Stats()
		rep.Replica = &rs
	} else {
		st := s.opt.Store.Stats()
		rep.Store = &st
	}
	if co := s.fo.Load(); co != nil {
		fs := co.Status()
		rep.Failover = &fs
	}
	return rep
}

// healthReport assembles the readiness view from live backend state.
func (s *Server) healthReport() HealthReport {
	h := HealthReport{Ready: true, Draining: s.draining.Load(), Role: s.role()}
	if h.Draining {
		h.Ready = false
		h.Reason = "draining"
	}
	if p := s.promoted.Load(); p != nil {
		h.Role = "primary"
		h.Health = p.Health()
		h.AppliedLSN = p.Stats().ArchiveLSN
	} else if s.opt.Follower != nil {
		rs := s.opt.Follower.Stats()
		h.Replica = &rs
		h.AppliedLSN = rs.AppliedLSN
		h.LagSegments = rs.LagSegments
		h.StallCause = rs.StallCause
		switch {
		case rs.Promoted:
			h.Role = "primary"
		case rs.Stalled && h.Ready:
			h.Ready = false
			h.Reason = "replica stalled: " + rs.StallCause
		}
		s.opt.Follower.Read(replica.ReadOptions{}, func(st *core.Store) error {
			h.Health = st.Health()
			return nil
		})
	} else {
		h.Health = s.opt.Store.Health()
		h.AppliedLSN = s.opt.Store.Stats().ArchiveLSN
	}
	if h.Health.Degraded && h.Ready {
		h.Ready = false
		h.Reason = "store degraded: " + h.Health.ReadOnlyCause
	}
	h.NodeID = s.opt.NodeID
	if co := s.fo.Load(); co != nil {
		h.Epoch = co.Epoch()
		if co.Fenced() {
			h.Fenced = true
			h.Ready = false
			h.Reason = "fenced: deposed under a newer leadership epoch"
		}
	}
	return h
}

// dispatch runs one decoded request. d has been advanced past the common
// header; what remains is op-specific.
func (s *Server) dispatch(c *conn, ctx context.Context, typ byte, d *dec, gate replica.ReadOptions) error {
	switch typ {
	case msgQuery:
		expr, err := d.str()
		if err != nil {
			return err
		}
		return s.handleQuery(c, ctx, expr, gate)
	case msgValue:
		expr, err := d.str()
		if err != nil {
			return err
		}
		return s.handleValue(c, ctx, expr, gate)
	case msgReadNode:
		id, err := d.u64()
		if err != nil {
			return err
		}
		return s.handleReadNode(c, ctx, core.NodeID(id), gate)
	case msgStats:
		return c.writeJSON(s.statsReport())
	case msgHealth:
		return c.writeJSON(s.healthReport())
	case msgInsert:
		return s.runMutation(c, d, func(d *dec) (byte, []byte, error) {
			return s.buildInsert(ctx, d)
		})
	case msgDelete:
		return s.runMutation(c, d, func(d *dec) (byte, []byte, error) {
			id, err := d.u64()
			if err != nil {
				return 0, nil, err
			}
			return s.buildDelete(ctx, core.NodeID(id))
		})
	case msgLoad:
		return s.runMutation(c, d, func(d *dec) (byte, []byte, error) {
			frag, err := d.str()
			if err != nil {
				return 0, nil, err
			}
			return s.buildLoad(ctx, frag)
		})
	case msgSegments:
		after, err := d.u64()
		if err != nil {
			return err
		}
		epoch, err := c.reqEpoch(d)
		if err != nil {
			return err
		}
		if err := s.checkShipEpoch(epoch); err != nil {
			return err
		}
		return s.handleSegments(c, after)
	case msgFetchSegment:
		lsn, err := d.u64()
		if err != nil {
			return err
		}
		epoch, err := c.reqEpoch(d)
		if err != nil {
			return err
		}
		if err := s.checkShipEpoch(epoch); err != nil {
			return err
		}
		return s.handleFetchSegment(c, ctx, lsn)
	default:
		return fmt.Errorf("%w: unknown request type 0x%02x", ErrProtocol, typ)
	}
}

// maxSegList caps one SEGMENTS response. A follower applies contiguously
// and polls again, so truncating a huge backlog costs one extra round trip
// per 4096 segments — and keeps the listing frame far under any frame cap.
const maxSegList = 4096

// archiveDir is the segment archive this server serves to followers: the
// configured one on a primary, the follower's own archive on a replica —
// which is what lets surviving replicas re-point at a promoted peer after
// failover (it owns the full history it applied).
func (s *Server) archiveDir() string {
	if s.opt.ArchiveDir != "" {
		return s.opt.ArchiveDir
	}
	if s.opt.Follower != nil {
		return s.opt.Follower.ArchiveDir()
	}
	return ""
}

// handleSegments lists archived segments beyond the follower's applied
// LSN: count, then (LSN, byte-size) pairs. Names are not sent — they are
// derivable (wal.SegmentFileName), and the wire stays minimal.
func (s *Server) handleSegments(c *conn, after uint64) error {
	dir := s.archiveDir()
	if dir == "" {
		return fmt.Errorf("%w: replication stream not enabled (server has no segment archive)", ErrBadRequest)
	}
	segs, err := wal.SegmentsAfter(dir, after)
	if err != nil {
		return err
	}
	if len(segs) > maxSegList {
		segs = segs[:maxSegList]
	}
	var e enc
	e.u64(uint64(len(segs)))
	for _, sg := range segs {
		e.u64(sg.LSN)
		e.u64(uint64(sg.Bytes))
	}
	return c.writeFrame(msgSegList, e.payload())
}

// handleFetchSegment streams one segment's raw bytes as msgSegData chunks
// sized under the negotiated frame cap, terminated by msgDone carrying the
// total so the follower can prove reassembly before validating content. A
// missing file crosses the wire as CodeSegmentGone (fs.ErrNotExist); a
// torn concurrent read is fine — the follower's CRC validation rejects it
// and refetches.
func (s *Server) handleFetchSegment(c *conn, ctx context.Context, lsn uint64) error {
	dir := s.archiveDir()
	if dir == "" {
		return fmt.Errorf("%w: replication stream not enabled (server has no segment archive)", ErrBadRequest)
	}
	data, err := os.ReadFile(filepath.Join(dir, wal.SegmentFileName(lsn)))
	if err != nil {
		return err
	}
	chunk := s.opt.MaxFrame - 64
	if chunk > 256<<10 {
		chunk = 256 << 10
	}
	for off := 0; off < len(data); off += chunk {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if err := c.writeFrame(msgSegData, data[off:end]); err != nil {
			return err
		}
	}
	var e enc
	e.u64(uint64(len(data)))
	return c.writeFrame(msgDone, e.payload())
}

func (c *conn) writeJSON(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return c.writeFrame(msgJSON, b)
}

// nodeXML renders one node's subtree under the caller's deadline —
// NodeXMLString's logic on top of the ctx-aware read path.
func nodeXML(ctx context.Context, st *core.Store, id core.NodeID) (string, error) {
	items, err := st.ReadNodeCtx(ctx, id)
	if err != nil {
		return "", err
	}
	toks := make([]core.Token, 0, len(items))
	for _, it := range items {
		toks = append(toks, it.Tok)
	}
	if len(toks) > 0 && toks[0].Kind == token.BeginAttribute {
		return fmt.Sprintf("%s=%q", toks[0].Name, toks[0].Value), nil
	}
	return xmltok.ToString(toks)
}

// handleQuery streams matches as they serialize: one msgRow per node,
// then msgDone with the count. Each row flushes under the write timeout,
// so a slow reader stalls its own session only — and only briefly.
func (s *Server) handleQuery(c *conn, ctx context.Context, expr string, gate replica.ReadOptions) error {
	if _, err := xpath.Parse(expr); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	var sent uint64
	err := s.withRead(gate, func(st *core.Store) error {
		// Cached-plan path: pushdown-eligible expressions stream ids off the
		// raw token sequence without building a navigational view.
		ids, err := xpath.QueryIDsCtx(ctx, st, expr)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			return fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		for _, id := range ids {
			if err := ctx.Err(); err != nil {
				return err
			}
			xml, err := nodeXML(ctx, st, id)
			if err != nil {
				return err
			}
			var e enc
			e.u64(uint64(id))
			e.str(xml)
			if err := c.writeFrame(msgRow, e.payload()); err != nil {
				return err
			}
			sent++
		}
		return nil
	})
	if err != nil {
		return err
	}
	var e enc
	e.u64(sent)
	return c.writeFrame(msgDone, e.payload())
}

func (s *Server) handleValue(c *conn, ctx context.Context, expr string, gate replica.ReadOptions) error {
	if _, err := xpath.Parse(expr); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	var val string
	err := s.withRead(gate, func(st *core.Store) error {
		var err error
		val, err = xpath.QueryValueCtx(ctx, st, expr)
		return err
	})
	if err != nil {
		return err
	}
	var e enc
	e.str(val)
	return c.writeFrame(msgValueRes, e.payload())
}

func (s *Server) handleReadNode(c *conn, ctx context.Context, id core.NodeID, gate replica.ReadOptions) error {
	var xml string
	err := s.withRead(gate, func(st *core.Store) error {
		var err error
		xml, err = nodeXML(ctx, st, id)
		return err
	})
	if err != nil {
		return err
	}
	var e enc
	e.str(xml)
	return c.writeFrame(msgValueRes, e.payload())
}

// runMutation wraps every mutating op with the idempotency-token protocol
// (wire v2) and the leadership-epoch fence (wire v3): each mutation
// payload leads with a token string — empty for "no dedup" — then the
// client's observed epoch (0 = unstamped). The fence runs first, before
// even the idempotency lookup: a fenced node must not replay cached acks,
// or a partitioned client could mistake them for live leadership.
//
// A token that matches a cached committed ack replays that ack verbatim
// without touching the store; a token whose sequence number fell below
// the cache's eviction horizon is refused with ErrIdemAmbiguous — the
// original outcome is unknowable and silently re-executing could
// double-apply. Otherwise the mutation runs, and on success its ack is
// cached before it is written, so even an ack lost on the wire is
// replayable. Failures are never cached — a retry after a shed or
// deadline must re-execute.
func (s *Server) runMutation(c *conn, d *dec, build func(d *dec) (byte, []byte, error)) error {
	tok, err := d.str()
	if err != nil {
		return err
	}
	epoch, err := c.reqEpoch(d)
	if err != nil {
		return err
	}
	if err := s.checkWriteEpoch(epoch); err != nil {
		return err
	}
	key := idemKey{gate: c.gate, token: tok}
	if tok != "" {
		e, found, evicted := s.idem.get(key)
		if found {
			return c.writeFrame(e.typ, e.payload)
		}
		if evicted {
			return fmt.Errorf("%w: token %q fell out of a %d-entry window", ErrIdemAmbiguous, tok, s.opt.IdemCacheSize)
		}
	}
	typ, payload, err := build(d)
	if err != nil {
		return err
	}
	if tok != "" {
		s.idem.put(key, idemEntry{typ: typ, payload: payload})
	}
	return c.writeFrame(typ, payload)
}

// buildInsert runs one XUpdate primitive and commits it (Flush) before
// acknowledging — the ack means durable.
func (s *Server) buildInsert(ctx context.Context, d *dec) (byte, []byte, error) {
	opb, err := d.byt()
	if err != nil {
		return 0, nil, err
	}
	id, err := d.u64()
	if err != nil {
		return 0, nil, err
	}
	frag, err := d.str()
	if err != nil {
		return 0, nil, err
	}
	st, err := s.writeStore()
	if err != nil {
		return 0, nil, err
	}
	toks, err := xmltok.ParseFragmentString(frag, xmltok.ParseOptions{})
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	target := core.NodeID(id)
	var newID core.NodeID
	switch InsertOp(opb) {
	case InsertLast:
		newID, err = st.InsertIntoLastCtx(ctx, target, toks)
	case InsertFirst:
		newID, err = st.InsertIntoFirstCtx(ctx, target, toks)
	case InsertBefore:
		newID, err = st.InsertBeforeCtx(ctx, target, toks)
	case InsertAfter:
		newID, err = st.InsertAfterCtx(ctx, target, toks)
	case Replace:
		newID, err = st.ReplaceNodeCtx(ctx, target, toks)
	case ReplaceContent:
		newID, err = st.ReplaceContentCtx(ctx, target, toks)
	default:
		return 0, nil, fmt.Errorf("%w: unknown insert op %d", ErrBadRequest, opb)
	}
	if err != nil {
		return 0, nil, err
	}
	if err := st.Flush(); err != nil {
		return 0, nil, err
	}
	var e enc
	e.u64(uint64(newID))
	return msgNodeID, e.payload(), nil
}

func (s *Server) buildDelete(ctx context.Context, id core.NodeID) (byte, []byte, error) {
	st, err := s.writeStore()
	if err != nil {
		return 0, nil, err
	}
	if err := st.DeleteNodeCtx(ctx, id); err != nil {
		return 0, nil, err
	}
	if err := st.Flush(); err != nil {
		return 0, nil, err
	}
	return msgOK, nil, nil
}

func (s *Server) buildLoad(ctx context.Context, frag string) (byte, []byte, error) {
	st, err := s.writeStore()
	if err != nil {
		return 0, nil, err
	}
	toks, err := xmltok.ParseFragmentString(frag, xmltok.ParseOptions{})
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	id, err := st.AppendCtx(ctx, toks)
	if err != nil {
		return 0, nil, err
	}
	if err := st.Flush(); err != nil {
		return 0, nil, err
	}
	var e enc
	e.u64(uint64(id))
	return msgNodeID, e.payload(), nil
}
