package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/xpath"
)

// HTTPHandler is the thin JSON facade over the same backend the wire
// protocol serves: health probes for orchestration, stats for operators,
// read-only query endpoints for curl-grade access. Mutations stay on the
// binary protocol. Requests pass the same drain cutoff and tenant-free
// admission as wire ops, and ?timeout= becomes a real context deadline.
//
//	GET /healthz            liveness: 200 while the process serves
//	GET /readyz             readiness: 503 when draining/degraded/stalled
//	GET /stats              full StatsReport
//	GET /query?expr=&timeout=&min_lsn=&max_staleness=
//	GET /value?expr=...     XPath string-value
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.httpHealthz)
	mux.HandleFunc("GET /readyz", s.httpReadyz)
	mux.HandleFunc("GET /stats", s.httpStats)
	mux.HandleFunc("GET /query", s.httpQuery)
	mux.HandleFunc("GET /value", s.httpValue)
	return mux
}

func httpJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// httpError maps a typed error chain onto an HTTP status plus the same
// stable code set the wire protocol sends.
func httpError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, core.ErrNoSuchNode):
		status = http.StatusNotFound
	case errors.Is(err, core.ErrOverloaded), errors.Is(err, ErrQuotaExceeded):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, replica.ErrTooStale):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	}
	httpJSON(w, status, map[string]any{
		"error": err.Error(),
		"codes": core.ErrCodesOf(err),
	})
}

func (s *Server) httpHealthz(w http.ResponseWriter, r *http.Request) {
	httpJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": s.draining.Load()})
}

func (s *Server) httpReadyz(w http.ResponseWriter, r *http.Request) {
	rep := s.healthReport()
	status := http.StatusOK
	if !rep.Ready {
		status = http.StatusServiceUnavailable
	}
	httpJSON(w, status, rep)
}

func (s *Server) httpStats(w http.ResponseWriter, r *http.Request) {
	httpJSON(w, http.StatusOK, s.statsReport())
}

// httpReadCtx builds the op context and replica gate from query params.
func httpReadCtx(r *http.Request) (context.Context, context.CancelFunc, replica.ReadOptions, error) {
	var gate replica.ReadOptions
	var timeout time.Duration
	q := r.URL.Query()
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, nil, gate, errors.Join(ErrBadRequest, errors.New("bad timeout: "+v))
		}
		timeout = d
	}
	if v := q.Get("min_lsn"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, nil, gate, errors.Join(ErrBadRequest, errors.New("bad min_lsn: "+v))
		}
		gate.MinLSN = n
	}
	if v := q.Get("max_staleness"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, nil, gate, errors.Join(ErrBadRequest, errors.New("bad max_staleness: "+v))
		}
		gate.MaxStaleness = d
	}
	if timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		return ctx, cancel, gate, nil
	}
	return r.Context(), func() {}, gate, nil
}

func (s *Server) httpQuery(w http.ResponseWriter, r *http.Request) {
	expr := r.URL.Query().Get("expr")
	if expr == "" {
		httpError(w, errors.Join(ErrBadRequest, errors.New("missing expr")))
		return
	}
	ctx, cancel, gate, err := httpReadCtx(r)
	if err != nil {
		httpError(w, err)
		return
	}
	defer cancel()
	finish, err := s.beginServerOp()
	if err != nil {
		httpError(w, err)
		return
	}
	defer finish()

	type row struct {
		ID  core.NodeID `json:"id"`
		XML string      `json:"xml"`
	}
	rows := []row{}
	err = s.withRead(gate, func(st *core.Store) error {
		ids, err := xpath.QueryIDsCtx(ctx, st, expr)
		if err != nil {
			return errors.Join(ErrBadRequest, err)
		}
		for _, id := range ids {
			xml, err := nodeXML(ctx, st, id)
			if err != nil {
				return err
			}
			rows = append(rows, row{ID: id, XML: xml})
		}
		return nil
	})
	if err != nil {
		httpError(w, err)
		return
	}
	httpJSON(w, http.StatusOK, rows)
}

func (s *Server) httpValue(w http.ResponseWriter, r *http.Request) {
	expr := r.URL.Query().Get("expr")
	if expr == "" {
		httpError(w, errors.Join(ErrBadRequest, errors.New("missing expr")))
		return
	}
	if _, err := xpath.Parse(expr); err != nil {
		httpError(w, errors.Join(ErrBadRequest, err))
		return
	}
	ctx, cancel, gate, err := httpReadCtx(r)
	if err != nil {
		httpError(w, err)
		return
	}
	defer cancel()
	finish, err := s.beginServerOp()
	if err != nil {
		httpError(w, err)
		return
	}
	defer finish()

	var val string
	err = s.withRead(gate, func(st *core.Store) error {
		var err error
		val, err = xpath.QueryValueCtx(ctx, st, expr)
		return err
	})
	if err != nil {
		httpError(w, err)
		return
	}
	httpJSON(w, http.StatusOK, map[string]string{"value": val})
}
