package server

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/retryx"
	"repro/internal/wal"
)

// NetTransport implements replica.Transport over the wire protocol: a
// follower tails a live axmlserved source (primary, or another follower
// when cascading) with no shared disk. Both calls ride the shared retryx
// loop — a connection cut, an admission shed, or a drain in progress earns
// a redial and another attempt, always bounded by the follower's context.
// Everything a DirTransport guarantees still holds: listings arrive sorted
// and duplicate-free (the server lists via wal.SegmentsAfter), fetched
// bytes are validated by the follower, and a vanished segment answers
// errors.Is(err, fs.ErrNotExist) exactly as a local read would.
type NetTransport struct {
	addr string
	opt  NetTransportOptions

	mu     sync.Mutex
	c      *Client
	closed bool
}

// NetTransportOptions tunes a network transport.
type NetTransportOptions struct {
	// Client configures each underlying session (auth token, timeouts).
	Client ClientOptions
	// Retry shapes the per-call retry loop. Zero value = retryx defaults.
	Retry retryx.Policy
	// Epoch, when set, supplies the leadership epoch stamped on every
	// segment request (wire v3 fencing): a follower wires its
	// coordinator's Epoch here, so a deposed old primary answering the
	// dial cannot feed it stale-timeline segments — it gets ErrFenced
	// instead.
	Epoch func() uint64
}

// NewNetTransport returns a transport tailing the segment archive served
// at addr. Dialing is lazy: a source that is down at construction time is
// simply retried on the first call.
func NewNetTransport(addr string, opt NetTransportOptions) *NetTransport {
	return &NetTransport{addr: addr, opt: opt}
}

var _ replica.Transport = (*NetTransport)(nil)

// session returns the live client, dialing if needed.
func (t *NetTransport) session() (*Client, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, core.ErrClosed
	}
	if t.c != nil {
		return t.c, nil
	}
	c, err := Dial(t.addr, t.opt.Client)
	if err != nil {
		return nil, err
	}
	t.c = c
	return c, nil
}

// drop discards a session after a transport-level failure so the next
// attempt redials. Only the exact failed session is dropped — a concurrent
// caller may already have replaced it.
func (t *NetTransport) drop(c *Client) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.c == c {
		t.c = nil
	}
	c.Close()
}

// retryable: connection-level failures (redial fixes a reset or a dead
// primary's half-open socket) plus whatever the registry classifies
// retryable (admission sheds, drains). A typed refusal like ErrAuth or a
// missing segment ends the loop at once.
func (t *NetTransport) retryable(err error) bool {
	return retryx.ConnError(err) || core.Retryable(err)
}

// do runs one transport call with redial-on-failure under the retry loop.
func (t *NetTransport) do(ctx context.Context, call func(c *Client) error) error {
	return retryx.Do(ctx, t.opt.Retry, t.retryable, func(ctx context.Context) error {
		c, err := t.session()
		if err != nil {
			return err
		}
		if t.opt.Epoch != nil {
			c.SetEpoch(t.opt.Epoch())
		}
		if err := call(c); err != nil {
			if retryx.ConnError(err) {
				t.drop(c)
			}
			return err
		}
		return nil
	})
}

// Segments implements replica.Transport.
func (t *NetTransport) Segments(ctx context.Context, after uint64) ([]wal.SegmentInfo, error) {
	var segs []wal.SegmentInfo
	err := t.do(ctx, func(c *Client) error {
		var cerr error
		segs, cerr = c.Segments(ctx, after)
		return cerr
	})
	if err != nil {
		return nil, err
	}
	return segs, nil
}

// Fetch implements replica.Transport.
func (t *NetTransport) Fetch(ctx context.Context, lsn uint64) ([]byte, error) {
	var data []byte
	err := t.do(ctx, func(c *Client) error {
		var cerr error
		data, cerr = c.FetchSegment(ctx, lsn)
		return cerr
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Close implements replica.Transport.
func (t *NetTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	if t.c != nil {
		err := t.c.Close()
		t.c = nil
		return err
	}
	return nil
}
