// Network replication transport end to end: a follower tails a live
// served primary over TCP — no shared disk — with the same validation and
// stall semantics a directory transport gives, including chunked fetch of
// segments larger than the negotiated frame cap and fs.ErrNotExist
// surviving the wire for the gap-vs-retry decision.
package server_test

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"testing"
	"time"

	axml "repro"
	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// walEnv is a served primary whose store archives WAL segments — the
// source a network follower tails.
type walEnv struct {
	*env
	wp   *wal.Pager
	arch string
	dir  string
	root core.NodeID
	n    int
}

func startWALPrimary(t *testing.T, opt server.Options) *walEnv {
	t.Helper()
	dir := t.TempDir()
	arch := filepath.Join(dir, "segments")
	wp, err := wal.OpenWithOptions(filepath.Join(dir, "primary.db"), 512, wal.Options{ArchiveDir: arch})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Mode: core.RangeOnly, PageSize: 512, Pager: wp}
	opt.ArchiveDir = arch
	e := start(t, cfg, opt)
	root, err := axml.LoadXMLString(e.st, `<log/>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.st.Flush(); err != nil {
		t.Fatal(err)
	}
	return &walEnv{env: e, wp: wp, arch: arch, dir: dir, root: root}
}

// commit inserts one element directly on the primary store and flushes —
// one archived segment per call.
func (w *walEnv) commit() uint64 {
	w.t.Helper()
	frag, err := axml.ParseFragment(fmt.Sprintf(`<e n="%d"/>`, w.n))
	if err != nil {
		w.t.Fatal(err)
	}
	w.n++
	if _, err := w.st.InsertIntoLast(w.root, frag); err != nil {
		w.t.Fatal(err)
	}
	if err := w.st.Flush(); err != nil {
		w.t.Fatal(err)
	}
	return w.wp.LSN()
}

// follower bootstraps a network follower (named so several can coexist)
// from an online backup of the served primary.
func (w *walEnv) follower(t *testing.T, name string, opt server.NetTransportOptions) *replica.Follower {
	t.Helper()
	base := filepath.Join(w.dir, name+".bak")
	if _, err := w.st.BackupTo(base); err != nil {
		t.Fatal(err)
	}
	tr := server.NewNetTransport(w.addr, opt)
	f, err := replica.Open(filepath.Join(w.dir, name+".db"), tr,
		replica.Options{Store: core.Config{Mode: core.RangeOnly, PageSize: 512}, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func verifyReplica(t *testing.T, f *replica.Follower) {
	t.Helper()
	if err := f.Read(replica.ReadOptions{}, func(s *core.Store) error { return s.Verify() }); err != nil {
		t.Fatalf("follower store fails verification: %v", err)
	}
}

func replicaXML(t *testing.T, f *replica.Follower) string {
	t.Helper()
	var x string
	if err := f.Read(replica.ReadOptions{}, func(s *core.Store) error {
		var err error
		x, err = s.XMLString()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return x
}

func TestNetTransportFollowerTailsServedPrimary(t *testing.T) {
	w := startWALPrimary(t, server.Options{})
	w.commit()
	f := w.follower(t, "follower", server.NetTransportOptions{})

	var last uint64
	for i := 0; i < 5; i++ {
		last = w.commit()
	}
	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.AppliedLSN != last || st.LagSegments != 0 {
		t.Fatalf("follower at LSN %d with %d lag segment(s), want %d and 0", st.AppliedLSN, st.LagSegments, last)
	}
	want, err := w.st.XMLString()
	if err != nil {
		t.Fatal(err)
	}
	if got := replicaXML(t, f); got != want {
		t.Fatalf("follower serves %q, primary has %q", got, want)
	}
	verifyReplica(t, f)
}

// TestNetTransportChunkedFetch forces segments bigger than the negotiated
// frame cap: the fetch must arrive chunked and reassemble byte-exact.
func TestNetTransportChunkedFetch(t *testing.T) {
	// A tiny frame cap makes every multi-page commit exceed one frame.
	w := startWALPrimary(t, server.Options{MaxFrame: 4096})
	w.commit()
	f := w.follower(t, "follower", server.NetTransportOptions{
		Client: server.ClientOptions{MaxFrame: 4096},
	})

	// One commit touching many pages => one segment far over the cap.
	var sb []byte
	for i := 0; i < 200; i++ {
		sb = append(sb, fmt.Sprintf(`<row id="%d">payload payload payload %d</row>`, i, i)...)
	}
	frag, err := axml.ParseFragment(string(sb))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.st.InsertIntoLast(w.root, frag); err != nil {
		t.Fatal(err)
	}
	if err := w.st.Flush(); err != nil {
		t.Fatal(err)
	}
	segs, err := wal.SegmentsAfter(w.arch, 0)
	if err != nil {
		t.Fatal(err)
	}
	var biggest int64
	for _, sg := range segs {
		if sg.Bytes > biggest {
			biggest = sg.Bytes
		}
	}
	if biggest <= 4096 {
		t.Fatalf("biggest segment %d bytes — does not exercise chunking", biggest)
	}

	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	want, err := w.st.XMLString()
	if err != nil {
		t.Fatal(err)
	}
	if got := replicaXML(t, f); got != want {
		t.Fatal("follower diverged after chunked fetch")
	}
	verifyReplica(t, f)
}

// TestNetTransportMissingSegmentIsNotExist pins the wire mapping the
// follower's stall logic depends on: a fetch for a pruned segment answers
// errors.Is(err, fs.ErrNotExist) across the network exactly as a local
// directory read would.
func TestNetTransportMissingSegmentIsNotExist(t *testing.T) {
	w := startWALPrimary(t, server.Options{})
	tr := server.NewNetTransport(w.addr, server.NetTransportOptions{})
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := tr.Fetch(ctx, 999999)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing segment: got %v, want fs.ErrNotExist across the wire", err)
	}
}

// TestNetTransportSurvivesConnectionCut: killing the transport's TCP
// session between polls must be invisible — the retry loop redials.
func TestNetTransportSurvivesConnectionCut(t *testing.T) {
	w := startWALPrimary(t, server.Options{})
	w.commit()
	f := w.follower(t, "follower", server.NetTransportOptions{})
	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Cut every served connection out from under the transport.
	w.srv.CloseClientConns()

	last := w.commit()
	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatalf("catch-up after connection cut: %v", err)
	}
	if st := f.Stats(); st.AppliedLSN != last {
		t.Fatalf("applied LSN %d, want %d", st.AppliedLSN, last)
	}
}
