// Wire-version back-compat: a v3 server must keep serving v2 sessions —
// their mutation and segment-ship payloads carry no leadership-epoch
// stamp — so a fleet upgrades rolling, not flag-day. Frames are
// hand-rolled like the chaos tests': the v2 layout is a compatibility
// surface, not something to borrow from the current encoder.
package server_test

import (
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	axml "repro"
	"repro/internal/server"
)

func rawHelloVer(ver uint64, token string) []byte {
	b := binary.AppendUvarint(nil, ver)
	b = binary.AppendUvarint(b, uint64(len(token)))
	return append(b, token...)
}

func rawStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// rawHeader is the common request header every version shares: deadline,
// minLSN, staleness.
func rawHeader() []byte {
	b := binary.AppendUvarint(nil, 0)
	b = binary.AppendUvarint(b, 0)
	return binary.AppendUvarint(b, 0)
}

func TestV2SessionServedWithoutEpochField(t *testing.T) {
	const (
		rawLoad     = 0x22
		rawSegments = 0x30
		rawNodeID   = 0x87
	)
	e := start(t, memCfg(), server.Options{})
	nc, err := net.DialTimeout("tcp", e.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := nc.Write(rawFrame(rawHello, rawHelloVer(2, ""))); err != nil {
		t.Fatal(err)
	}
	typ, _, err := readRawFrame(nc)
	if err != nil || typ != rawHelloOK {
		t.Fatalf("v2 handshake: type 0x%02x err %v — v2 clients must not be hard-refused", typ, err)
	}

	// A v2 LOAD: header, idempotency token, fragment — and no epoch field
	// between token and fragment.
	p := rawStr(rawHeader(), "v2-1")
	p = rawStr(p, `<r><a/></r>`)
	if _, err := nc.Write(rawFrame(rawLoad, p)); err != nil {
		t.Fatal(err)
	}
	typ, body, err := readRawFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if typ != rawNodeID {
		t.Fatalf("v2 load reply: type 0x%02x body %q", typ, body)
	}
	// The mutation really executed with the fields aligned correctly.
	if got, _ := axml.QueryValue(e.st, `count(//a)`); got != "1" {
		t.Fatalf("v2 load did not apply: count(//a) = %q", got)
	}

	// A v2 SEGMENTS request (just the after-LSN, no epoch) must decode
	// cleanly: this server has no archive, so the typed answer is the
	// bad-request refusal — a misaligned decode would surface as a
	// protocol error instead.
	p = binary.AppendUvarint(rawHeader(), 0)
	if _, err := nc.Write(rawFrame(rawSegments, p)); err != nil {
		t.Fatal(err)
	}
	typ, body, err = readRawFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if typ != rawErr || !strings.Contains(string(body), "not enabled") {
		t.Fatalf("v2 segments reply: type 0x%02x body %q, want the typed no-archive refusal", typ, body)
	}
}

func TestUnsupportedHelloVersionsRefused(t *testing.T) {
	e := start(t, memCfg(), server.Options{})
	for _, ver := range []uint64{0, 1, 4} {
		nc, err := net.DialTimeout("tcp", e.addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		nc.SetDeadline(time.Now().Add(10 * time.Second))
		if _, err := nc.Write(rawFrame(rawHello, rawHelloVer(ver, ""))); err != nil {
			t.Fatal(err)
		}
		typ, body, err := readRawFrame(nc)
		if err != nil || typ != rawErr {
			t.Fatalf("hello v%d: type 0x%02x body %q err %v, want error frame", ver, typ, body, err)
		}
		nc.Close()
	}
}
