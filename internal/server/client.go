package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/replica"
	"repro/internal/wal"
)

// ClientOptions configures Dial.
type ClientOptions struct {
	// Token authenticates the session when the server runs with tenants.
	Token string
	// DialTimeout bounds the TCP connect + handshake. Default 5s.
	DialTimeout time.Duration
	// MaxFrame caps response frames the client will accept. Default
	// DefaultMaxFrame; the handshake lowers it to the server's cap.
	MaxFrame int
	// IOTimeout bounds each frame read/write when the call's context
	// carries no deadline. Default 30s.
	IOTimeout time.Duration
	// Gate is the default replica read gate for read calls; per-call
	// contexts cannot express it, so it is session state.
	Gate replica.ReadOptions
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = 30 * time.Second
	}
	return o
}

// Row is one streamed query match.
type Row struct {
	ID  core.NodeID
	XML string
}

// Client is a wire-protocol session. It is safe for concurrent use; calls
// serialize on the single connection.
type Client struct {
	opt ClientOptions

	// epoch is the leadership epoch this session stamps on mutations and
	// segment-ship requests (wire v3). Zero means unstamped: the server
	// accepts it but cannot fence the caller against a deposed primary.
	// Fleet-aware callers set it from health reports.
	epoch atomic.Uint64

	mu        sync.Mutex
	nc        net.Conn
	br        *bufio.Reader
	sessionID uint64
	replica   bool
	closed    bool
}

// SetEpoch records the leadership epoch to stamp on subsequent mutations
// and segment fetches. Forward-only: a lower value never overwrites a
// higher one, so concurrent health probes cannot regress the fence.
func (c *Client) SetEpoch(epoch uint64) {
	for {
		cur := c.epoch.Load()
		if epoch <= cur || c.epoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// EpochHint returns the session's current epoch stamp.
func (c *Client) EpochHint() uint64 { return c.epoch.Load() }

// Dial connects, handshakes, and returns a live session.
func Dial(addr string, opt ClientOptions) (*Client, error) {
	opt = opt.withDefaults()
	nc, err := net.DialTimeout("tcp", addr, opt.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{opt: opt, nc: nc, br: bufio.NewReader(nc)}
	nc.SetDeadline(time.Now().Add(opt.DialTimeout))
	var e enc
	e.u64(ProtocolVersion)
	e.str(opt.Token)
	if err := writeFrame(nc, msgHello, e.payload()); err != nil {
		nc.Close()
		return nil, err
	}
	typ, payload, err := readFrame(c.br, opt.MaxFrame)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if typ == msgErr {
		nc.Close()
		return nil, decodeErr(payload)
	}
	if typ != msgHelloOK {
		nc.Close()
		return nil, fmt.Errorf("%w: expected hello-ok, got 0x%02x", ErrProtocol, typ)
	}
	d := dec{payload}
	if c.sessionID, err = d.u64(); err != nil {
		nc.Close()
		return nil, err
	}
	srvMax, err := d.u64()
	if err != nil {
		nc.Close()
		return nil, err
	}
	if int(srvMax) < c.opt.MaxFrame {
		c.opt.MaxFrame = int(srvMax)
	}
	role, err := d.byt()
	if err != nil {
		nc.Close()
		return nil, err
	}
	c.replica = role == 1
	nc.SetDeadline(time.Time{})
	return c, nil
}

// SessionID returns the server-assigned session id.
func (c *Client) SessionID() uint64 { return c.sessionID }

// IsReplica reports whether the session fronts a read replica.
func (c *Client) IsReplica() bool { return c.replica }

// Close ends the session.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return c.nc.Close()
}

// ioDeadline picks the wire deadline: the context's plus a small grace,
// else now+IOTimeout. The grace lets the server's *typed* deadline error
// (it received our deadline and enforced it store-side) win the race
// against our own socket timeout firing at the same instant.
func (c *Client) ioDeadline(ctx context.Context) time.Time {
	if dl, ok := ctx.Deadline(); ok {
		return dl.Add(250 * time.Millisecond)
	}
	return time.Now().Add(c.opt.IOTimeout)
}

// header encodes the common request header: the remaining deadline in
// milliseconds (this is deadline propagation: the server rebuilds a
// context with the same expiry) plus the session's replica read gate.
func (c *Client) header(ctx context.Context) (*enc, error) {
	var e enc
	var ms uint64
	if dl, ok := ctx.Deadline(); ok {
		left := time.Until(dl)
		if left <= 0 {
			return nil, context.DeadlineExceeded
		}
		ms = uint64(left / time.Millisecond)
		if ms == 0 {
			ms = 1
		}
	}
	e.u64(ms)
	e.u64(c.opt.Gate.MinLSN)
	e.u64(uint64(c.opt.Gate.MaxStaleness / time.Millisecond))
	return &e, nil
}

// roundTrip sends one request and reads response frames, handing each to
// fn until fn reports done. Any transport or protocol failure poisons the
// session (the stream can be mid-message), so the connection closes.
func (c *Client) roundTrip(ctx context.Context, typ byte, payload []byte, fn func(typ byte, payload []byte) (done bool, err error)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		// A poisoned or closed session is a connection-level condition, not
		// a protocol one: wrapping net.ErrClosed lets retry layers (fleet,
		// network transport) classify it as "drop this session and redial".
		return fmt.Errorf("client: session closed: %w", net.ErrClosed)
	}
	fail := func(err error) error {
		c.closed = true
		c.nc.Close()
		return err
	}
	c.nc.SetDeadline(c.ioDeadline(ctx))
	if err := writeFrame(c.nc, typ, payload); err != nil {
		return fail(err)
	}
	for {
		rtyp, rpayload, err := readFrame(c.br, c.opt.MaxFrame)
		if err != nil {
			// A cut at (or past) our own deadline is the deadline, whatever
			// shape the socket error took — the server may have been about
			// to say the same thing in a frame we never got to read.
			if ctxErr := ctx.Err(); ctxErr != nil {
				return fail(ctxErr)
			}
			if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
				return fail(context.DeadlineExceeded)
			}
			return fail(err)
		}
		if rtyp == msgErr {
			return decodeErr(rpayload)
		}
		done, err := fn(rtyp, rpayload)
		if err != nil {
			return fail(err)
		}
		if done {
			return nil
		}
	}
}

// expect adapts roundTrip for single-frame responses.
func (c *Client) expect(ctx context.Context, typ byte, payload []byte, want byte) ([]byte, error) {
	var out []byte
	err := c.roundTrip(ctx, typ, payload, func(rtyp byte, rpayload []byte) (bool, error) {
		if rtyp != want {
			return false, fmt.Errorf("%w: expected 0x%02x, got 0x%02x", ErrProtocol, want, rtyp)
		}
		out = rpayload
		return true, nil
	})
	return out, err
}

// Ping round-trips a no-op frame.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.expect(ctx, msgPing, nil, msgPong)
	return err
}

// QueryStream evaluates an XPath expression and streams each match to fn
// as it arrives; fn returning an error poisons the session (rows may
// still be in flight).
func (c *Client) QueryStream(ctx context.Context, expr string, fn func(Row) error) error {
	hdr, err := c.header(ctx)
	if err != nil {
		return err
	}
	hdr.str(expr)
	return c.roundTrip(ctx, msgQuery, hdr.payload(), func(rtyp byte, rpayload []byte) (bool, error) {
		switch rtyp {
		case msgRow:
			d := dec{rpayload}
			id, err := d.u64()
			if err != nil {
				return false, err
			}
			xml, err := d.str()
			if err != nil {
				return false, err
			}
			return false, fn(Row{ID: core.NodeID(id), XML: xml})
		case msgDone:
			return true, nil
		default:
			return false, fmt.Errorf("%w: unexpected frame 0x%02x in query stream", ErrProtocol, rtyp)
		}
	})
}

// Query collects a streamed query into memory.
func (c *Client) Query(ctx context.Context, expr string) ([]Row, error) {
	var rows []Row
	err := c.QueryStream(ctx, expr, func(r Row) error {
		rows = append(rows, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Value evaluates an XPath expression to its string value.
func (c *Client) Value(ctx context.Context, expr string) (string, error) {
	hdr, err := c.header(ctx)
	if err != nil {
		return "", err
	}
	hdr.str(expr)
	payload, err := c.expect(ctx, msgValue, hdr.payload(), msgValueRes)
	if err != nil {
		return "", err
	}
	d := dec{payload}
	return d.str()
}

// ReadNode renders one node's subtree as XML.
func (c *Client) ReadNode(ctx context.Context, id core.NodeID) (string, error) {
	hdr, err := c.header(ctx)
	if err != nil {
		return "", err
	}
	hdr.u64(uint64(id))
	payload, err := c.expect(ctx, msgReadNode, hdr.payload(), msgValueRes)
	if err != nil {
		return "", err
	}
	d := dec{payload}
	return d.str()
}

// Insert runs one XUpdate primitive against target and returns the new
// node's id. The ack means the change is committed.
func (c *Client) Insert(ctx context.Context, op InsertOp, target core.NodeID, frag string) (core.NodeID, error) {
	return c.InsertIdem(ctx, op, target, frag, "")
}

// InsertIdem is Insert carrying an idempotency token: re-sending the same
// token after an ambiguous outcome (connection cut before the ack arrived)
// replays the original committed ack instead of applying twice. An empty
// token disables dedup.
func (c *Client) InsertIdem(ctx context.Context, op InsertOp, target core.NodeID, frag, idemToken string) (core.NodeID, error) {
	hdr, err := c.header(ctx)
	if err != nil {
		return 0, err
	}
	hdr.str(idemToken)
	hdr.u64(c.epoch.Load())
	hdr.byt(byte(op))
	hdr.u64(uint64(target))
	hdr.str(frag)
	payload, err := c.expect(ctx, msgInsert, hdr.payload(), msgNodeID)
	if err != nil {
		return 0, err
	}
	d := dec{payload}
	id, err := d.u64()
	return core.NodeID(id), err
}

// Delete removes a node's subtree; the ack means committed.
func (c *Client) Delete(ctx context.Context, id core.NodeID) error {
	return c.DeleteIdem(ctx, id, "")
}

// DeleteIdem is Delete carrying an idempotency token (see InsertIdem).
func (c *Client) DeleteIdem(ctx context.Context, id core.NodeID, idemToken string) error {
	hdr, err := c.header(ctx)
	if err != nil {
		return err
	}
	hdr.str(idemToken)
	hdr.u64(c.epoch.Load())
	hdr.u64(uint64(id))
	_, err = c.expect(ctx, msgDelete, hdr.payload(), msgOK)
	return err
}

// Load appends a document or fragment at top level, returning the id of
// its first node.
func (c *Client) Load(ctx context.Context, frag string) (core.NodeID, error) {
	return c.LoadIdem(ctx, frag, "")
}

// LoadIdem is Load carrying an idempotency token (see InsertIdem).
func (c *Client) LoadIdem(ctx context.Context, frag, idemToken string) (core.NodeID, error) {
	hdr, err := c.header(ctx)
	if err != nil {
		return 0, err
	}
	hdr.str(idemToken)
	hdr.u64(c.epoch.Load())
	hdr.str(frag)
	payload, err := c.expect(ctx, msgLoad, hdr.payload(), msgNodeID)
	if err != nil {
		return 0, err
	}
	d := dec{payload}
	id, err := d.u64()
	return core.NodeID(id), err
}

// Segments lists the server's archived segments with LSN strictly greater
// than after — the network half of replica.Transport.Segments.
func (c *Client) Segments(ctx context.Context, after uint64) ([]wal.SegmentInfo, error) {
	hdr, err := c.header(ctx)
	if err != nil {
		return nil, err
	}
	hdr.u64(after)
	hdr.u64(c.epoch.Load())
	payload, err := c.expect(ctx, msgSegments, hdr.payload(), msgSegList)
	if err != nil {
		return nil, err
	}
	d := dec{payload}
	n, err := d.u64()
	if err != nil {
		return nil, err
	}
	if n > maxSegList {
		return nil, fmt.Errorf("%w: %d segments in one listing", ErrProtocol, n)
	}
	out := make([]wal.SegmentInfo, 0, n)
	for i := uint64(0); i < n; i++ {
		lsn, err := d.u64()
		if err != nil {
			return nil, err
		}
		size, err := d.u64()
		if err != nil {
			return nil, err
		}
		out = append(out, wal.SegmentInfo{LSN: lsn, Bytes: int64(size), Name: wal.SegmentFileName(lsn)})
	}
	return out, nil
}

// FetchSegment reassembles one segment's bytes from the chunked stream,
// verifying the declared total — the network half of
// replica.Transport.Fetch. Content validation (CRCs, page checksums) stays
// with the follower, exactly as for a directory transport.
func (c *Client) FetchSegment(ctx context.Context, lsn uint64) ([]byte, error) {
	hdr, err := c.header(ctx)
	if err != nil {
		return nil, err
	}
	hdr.u64(lsn)
	hdr.u64(c.epoch.Load())
	var buf []byte
	err = c.roundTrip(ctx, msgFetchSegment, hdr.payload(), func(rtyp byte, rpayload []byte) (bool, error) {
		switch rtyp {
		case msgSegData:
			buf = append(buf, rpayload...)
			return false, nil
		case msgDone:
			d := dec{rpayload}
			total, err := d.u64()
			if err != nil {
				return false, err
			}
			if total != uint64(len(buf)) {
				return false, fmt.Errorf("%w: segment stream carried %d bytes, declared %d", ErrProtocol, len(buf), total)
			}
			return true, nil
		default:
			return false, fmt.Errorf("%w: unexpected frame 0x%02x in segment stream", ErrProtocol, rtyp)
		}
	})
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// Lease delivers one failover lease heartbeat (wire v3). Coordinators use
// this through FleetPeers; it is exported so drills and tooling can speak
// the failover plane directly.
func (c *Client) Lease(ctx context.Context, req failover.LeaseRequest) (failover.LeaseReply, error) {
	var rep failover.LeaseReply
	hdr, err := c.header(ctx)
	if err != nil {
		return rep, err
	}
	hdr.u64(req.Epoch)
	hdr.str(req.LeaderID)
	hdr.u64(req.LSN)
	payload, err := c.expect(ctx, msgLease, hdr.payload(), msgLeaseAck)
	if err != nil {
		return rep, err
	}
	d := dec{payload}
	if rep.Epoch, err = d.u64(); err != nil {
		return rep, err
	}
	ok, err := d.byt()
	if err != nil {
		return rep, err
	}
	rep.OK = ok == 1
	return rep, nil
}

// RequestVote solicits one failover election vote (wire v3).
func (c *Client) RequestVote(ctx context.Context, req failover.VoteRequest) (failover.VoteReply, error) {
	var rep failover.VoteReply
	hdr, err := c.header(ctx)
	if err != nil {
		return rep, err
	}
	hdr.u64(req.Epoch)
	hdr.str(req.CandidateID)
	hdr.u64(req.LSN)
	payload, err := c.expect(ctx, msgVote, hdr.payload(), msgVoteRes)
	if err != nil {
		return rep, err
	}
	d := dec{payload}
	granted, err := d.byt()
	if err != nil {
		return rep, err
	}
	rep.Granted = granted == 1
	if rep.Epoch, err = d.u64(); err != nil {
		return rep, err
	}
	if rep.VotedEpoch, err = d.u64(); err != nil {
		return rep, err
	}
	if rep.VoterID, err = d.str(); err != nil {
		return rep, err
	}
	if rep.VoterLSN, err = d.u64(); err != nil {
		return rep, err
	}
	return rep, nil
}

// Stats fetches the server's full stats report.
func (c *Client) Stats(ctx context.Context) (StatsReport, error) {
	var rep StatsReport
	payload, err := c.jsonOp(ctx, msgStats)
	if err != nil {
		return rep, err
	}
	return rep, json.Unmarshal(payload, &rep)
}

// Health fetches the server's readiness view.
func (c *Client) Health(ctx context.Context) (HealthReport, error) {
	var rep HealthReport
	payload, err := c.jsonOp(ctx, msgHealth)
	if err != nil {
		return rep, err
	}
	return rep, json.Unmarshal(payload, &rep)
}

func (c *Client) jsonOp(ctx context.Context, typ byte) ([]byte, error) {
	hdr, err := c.header(ctx)
	if err != nil {
		return nil, err
	}
	return c.expect(ctx, typ, hdr.payload(), msgJSON)
}
