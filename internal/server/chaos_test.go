// Misbehaving-client chaos: slowloris dribble, silent idlers, oversized
// frames, mid-request disconnects, deadline storms, and a kill -9 of the
// server process mid-commit. The invariant throughout: the store stays
// Verify-clean, well-behaved clients keep being served, and a restarted
// server answers within one OpTimeout.
package server_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	axml "repro"
	"repro/internal/core"
	"repro/internal/server"
)

// Wire bytes pinned independently of the server package's constants: these
// values are the protocol's compatibility surface, so the chaos tests
// hand-roll frames rather than borrowing the implementation's encoder.
const (
	rawHello   = 0x01
	rawHelloOK = 0x80
	rawErr     = 0x81
)

func rawFrame(typ byte, payload []byte) []byte {
	b := make([]byte, 5, 5+len(payload))
	binary.BigEndian.PutUint32(b, uint32(1+len(payload)))
	b[4] = typ
	return append(b, payload...)
}

func rawHelloPayload(token string) []byte {
	b := binary.AppendUvarint(nil, 3) // protocol version
	b = binary.AppendUvarint(b, uint64(len(token)))
	return append(b, token...)
}

// rawHandshake opens a raw TCP session and completes the hello exchange.
func rawHandshake(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := nc.Write(rawFrame(rawHello, rawHelloPayload(""))); err != nil {
		t.Fatal(err)
	}
	typ, _, err := readRawFrame(nc)
	if err != nil || typ != rawHelloOK {
		t.Fatalf("handshake: type 0x%02x err %v", typ, err)
	}
	nc.SetDeadline(time.Time{})
	return nc
}

func readRawFrame(nc net.Conn) (byte, []byte, error) {
	hdr := make([]byte, 4)
	if _, err := ioReadFull(nc, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	body := make([]byte, n)
	if _, err := ioReadFull(nc, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

func ioReadFull(nc net.Conn, p []byte) (int, error) {
	read := 0
	for read < len(p) {
		n, err := nc.Read(p[read:])
		read += n
		if err != nil {
			return read, err
		}
	}
	return read, nil
}

// TestSlowlorisCut: a client that sends a frame header and then dribbles
// must be cut at the read timeout — it cannot pin a connection slot while
// honest clients wait.
func TestSlowlorisCut(t *testing.T) {
	e := start(t, memCfg(), server.Options{
		ReadTimeout: 150 * time.Millisecond,
		IdleTimeout: time.Second,
		MaxConns:    2,
	})
	nc := rawHandshake(t, e.addr)
	defer nc.Close()

	// Declare a 64-byte request, deliver two bytes, stall.
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, 64)
	nc.Write(hdr)
	nc.Write([]byte{0x10, 0x00})

	// The server must sever us well before the honest client would notice:
	// our next read returns EOF/reset within ~ReadTimeout.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	startWait := time.Now()
	if _, _, err := readRawFrame(nc); err == nil {
		t.Fatal("dribbled request got a response")
	}
	if cut := time.Since(startWait); cut > 2*time.Second {
		t.Fatalf("slowloris survived %v before the cut", cut)
	}
	// The slot is free again: with MaxConns=2 two honest clients serve.
	c1 := e.dial(server.ClientOptions{})
	c2 := e.dial(server.ClientOptions{})
	if err := c1.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.st.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestIdleSessionCut: a session that completes its handshake and then goes
// silent is reaped at the idle timeout.
func TestIdleSessionCut(t *testing.T) {
	e := start(t, memCfg(), server.Options{IdleTimeout: 100 * time.Millisecond})
	nc := rawHandshake(t, e.addr)
	defer nc.Close()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := readRawFrame(nc); err == nil {
		t.Fatal("idle session got an unsolicited frame")
	}
}

// TestOversizedFrameRefused: a frame whose declared size exceeds the cap
// is refused from the header alone with the typed error, and the session
// is closed — the framing can no longer be trusted.
func TestOversizedFrameRefused(t *testing.T) {
	e := start(t, memCfg(), server.Options{MaxFrame: 4096})
	c := e.dial(server.ClientOptions{MaxFrame: 1 << 20})
	ctx := context.Background()
	if _, err := c.Load(ctx, `<doc/>`); err != nil {
		t.Fatal(err)
	}
	_, err := c.Load(ctx, "<big>"+strings.Repeat("x", 64<<10)+"</big>")
	if !errors.Is(err, server.ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v, want ErrFrameTooLarge", err)
	}
	// The violation also shows in stats, and honest sessions still serve.
	if e.srv.Stats().FrameViolations == 0 {
		t.Fatal("frame violation not counted")
	}
	c2 := e.dial(server.ClientOptions{})
	if v, err := c2.Value(ctx, `count(//doc)`); err != nil || v != "1" {
		t.Fatalf("post-violation service: %q, %v", v, err)
	}
	if err := e.st.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestMidRequestDisconnect: clients that vanish mid-frame, repeatedly,
// must leave no residue — no leaked slots, no store damage.
func TestMidRequestDisconnect(t *testing.T) {
	e := start(t, memCfg(), server.Options{MaxConns: 4})
	c := e.dial(server.ClientOptions{})
	if _, err := c.Load(context.Background(), bigDoc(20)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		nc := rawHandshake(t, e.addr)
		hdr := make([]byte, 4)
		binary.BigEndian.PutUint32(hdr, 128)
		nc.Write(hdr)
		nc.Write([]byte{0x10, 0x00, 0x00}) // partial query request
		nc.Close()
	}
	// All slots recycled: a full complement of honest clients serves.
	waitFor(t, func() bool { return e.srv.Stats().ConnsActive <= 1 })
	for i := 0; i < 3; i++ {
		cc := e.dial(server.ClientOptions{})
		if _, err := cc.Query(context.Background(), `//row[1]`); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.st.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := e.st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineStormSoak: concurrent clients hammer reads and writes under
// injected latency with tiny, constantly-expiring deadlines, interleaved
// with mid-op disconnects. Every error must be a typed, expected shed;
// afterwards the store is Verify-clean and a fresh client is served
// within one OpTimeout.
func TestDeadlineStormSoak(t *testing.T) {
	e := start(t, slowCfg(), server.Options{})
	seed := e.dial(server.ClientOptions{})
	root, err := seed.Load(context.Background(), bigDoc(60))
	if err != nil {
		t.Fatal(err)
	}
	e.inj.ArmLatency(500 * time.Microsecond)

	const workers = 6
	var wg sync.WaitGroup
	var typed, untyped atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 25; i++ {
				c, err := server.Dial(e.addr, server.ClientOptions{})
				if err != nil {
					untyped.Add(1)
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(1+rng.Intn(20))*time.Millisecond)
				switch i % 4 {
				case 0:
					_, err = c.Query(ctx, `//row`)
				case 1:
					_, err = c.Insert(ctx, server.InsertLast, root, fmt.Sprintf(`<x w="%d" i="%d"/>`, w, i))
				case 2:
					_, err = c.Value(ctx, `count(//row)`)
				case 3:
					// Vanish mid-conversation: fire a request and hang up.
					go c.Value(ctx, `count(//x)`)
					time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
					c.Close()
					cancel()
					continue
				}
				cancel()
				c.Close()
				if err != nil {
					switch {
					case errors.Is(err, context.DeadlineExceeded),
						errors.Is(err, core.ErrOverloaded),
						errors.Is(err, server.ErrQuotaExceeded),
						errors.Is(err, core.ErrNoSuchNode):
						typed.Add(1)
					default:
						// Transport-level cuts (server severed us at our own
						// deadline) surface as net errors — acceptable storm
						// fallout, everything else is a bug.
						var ne net.Error
						if errors.As(err, &ne) || errors.Is(err, net.ErrClosed) {
							typed.Add(1)
						} else {
							t.Errorf("worker %d op %d: unexpected error %v", w, i, err)
							untyped.Add(1)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	e.inj.DisarmLatency()
	t.Logf("storm: %d typed sheds, %d untyped", typed.Load(), untyped.Load())

	// The service recovered: a fresh client is answered within OpTimeout.
	ctx, cancel := context.WithTimeout(context.Background(), memCfg().OpTimeout)
	defer cancel()
	c := e.dial(server.ClientOptions{})
	if _, err := c.Value(ctx, `count(//row)`); err != nil {
		t.Fatalf("post-storm service: %v", err)
	}
	if err := e.st.Verify(); err != nil {
		t.Fatalf("post-storm verify: %v", err)
	}
	if err := e.st.CheckInvariants(); err != nil {
		t.Fatalf("post-storm invariants: %v", err)
	}
}

const (
	helperEnv     = "AXMLSERVED_HELPER_DIR"
	helperAddrEnv = "AXMLSERVED_HELPER_ADDRFILE"
)

func helperCfg() axml.Config {
	return axml.Config{Mode: core.RangePartial, PageSize: 512, OpTimeout: 5 * time.Second}
}

// TestHelperServedProcess is not a test: it is the server process the
// kill -9 chaos tests sacrifice. It serves a WAL-backed store — including
// the replication stream, with a base backup published next to it so a
// follower in the parent process can bootstrap — until killed.
func TestHelperServedProcess(t *testing.T) {
	dir := os.Getenv(helperEnv)
	if dir == "" {
		t.Skip("helper process entry point")
	}
	st, err := axml.OpenFileWAL(filepath.Join(dir, "store.db"), helperCfg(), filepath.Join(dir, "segments"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.BackupTo(filepath.Join(dir, "base.bak")); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Options{Store: st, ArchiveDir: filepath.Join(dir, "segments")})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Atomic publish so the parent never reads a half-written address.
	tmp := os.Getenv(helperAddrEnv) + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, os.Getenv(helperAddrEnv)); err != nil {
		t.Fatal(err)
	}
	srv.Serve(ln) // until SIGKILL
}

// TestKill9MidCommit: SIGKILL the serving process while commits are in
// flight. Acked writes must survive WAL replay, the file must verify
// clean, and a restarted server must answer within one OpTimeout.
func TestKill9MidCommit(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperServedProcess$", "-test.v")
	cmd.Env = append(os.Environ(), helperEnv+"="+dir, helperAddrEnv+"="+addrFile)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	var addr string
	waitFor(t, func() bool {
		b, err := os.ReadFile(addrFile)
		if err != nil {
			return false
		}
		addr = string(b)
		return addr != ""
	})
	c, err := server.Dial(addr, server.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	root, err := c.Load(ctx, `<log/>`)
	if err != nil {
		t.Fatal(err)
	}

	// Hammer commits from two sessions; count only acked inserts.
	var acked, attempted atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		cc, err := server.Dial(addr, server.ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(cc *server.Client, w int) {
			defer wg.Done()
			defer cc.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				attempted.Add(1)
				if _, err := cc.Insert(ctx, server.InsertLast, root, fmt.Sprintf(`<e w="%d" i="%d"/>`, w, i)); err != nil {
					return // the kill landed mid-conversation
				}
				acked.Add(1)
			}
		}(cc, w)
	}
	// Let commits flow, then kill -9 mid-stream.
	waitFor(t, func() bool { return acked.Load() >= 20 })
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	killed = true
	cmd.Wait()
	close(stop)
	wg.Wait()
	c.Close()
	t.Logf("kill -9 after %d acked / %d attempted commits", acked.Load(), attempted.Load())

	// Restart: WAL replay must land between acked and attempted, verify
	// clean, and a served query must answer within one OpTimeout.
	restart := time.Now()
	st, err := axml.ReopenFileWAL(filepath.Join(dir, "store.db"), helperCfg(), filepath.Join(dir, "segments"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Verify(); err != nil {
		t.Fatalf("post-kill verify: %v", err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("post-kill invariants: %v", err)
	}
	got, err := axml.QueryValue(st, `count(//e)`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := strconv.ParseInt(got, 10, 64)
	if err != nil {
		t.Fatalf("count = %q", got)
	}
	if n < acked.Load() || n > attempted.Load() {
		t.Fatalf("replayed %d commits, want between %d acked and %d attempted", n, acked.Load(), attempted.Load())
	}

	srv, err := server.New(server.Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()
	opCtx, cancel := context.WithTimeout(context.Background(), helperCfg().OpTimeout)
	defer cancel()
	c2, err := server.Dial(ln.Addr().String(), server.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if v, err := c2.Value(opCtx, `count(//e)`); err != nil || v != got {
		t.Fatalf("restarted server: %q (want %q), err %v", v, got, err)
	}
	if within := time.Since(restart); within > helperCfg().OpTimeout {
		t.Fatalf("restart-to-answer took %v, budget one OpTimeout (%v)", within, helperCfg().OpTimeout)
	}
}
