package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	mrand "math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/replica"
	"repro/internal/retryx"
)

// FleetClient is the resilient, multi-endpoint face of the wire protocol:
// one handle over a primary and its read replicas that keeps answering
// while individual servers restart, drain, partition, or die.
//
//   - Reads route to the freshest healthy replica (ranked by applied
//     LSN) to offload the primary, then to the primary, and walk down
//     the order on failure — a killed endpoint degrades a read to the
//     next one, not to an error. Staleness is bounded server-side: a
//     replica that cannot satisfy the session's read gate answers
//     ErrTooStale and the walk continues to a fresher endpoint or the
//     primary. With HedgeDelay set, a second endpoint is raced after the
//     delay and the first success wins (safe: reads are idempotent, and
//     every endpoint has its own session).
//   - Writes go to the discovered primary, always carrying an
//     auto-generated idempotency token, so a write whose ack was lost in a
//     connection cut can be re-sent verbatim — the server replays the
//     committed ack instead of applying twice. That token is what makes
//     retrying a non-idempotent mutation after an ambiguous outcome safe.
//   - Every retry loop is the shared retryx policy, classified by the
//     error-code registry (core.Retryable) plus connection-level failures,
//     and bounded by the caller's context.
//
// A FleetClient is safe for concurrent use.
type FleetClient struct {
	opt     FleetOptions
	members []*member

	tokPrefix string
	tokSeq    atomic.Uint64

	// primaryIdx caches the last discovered primary (-1 = unknown); any
	// write failure invalidates it so the next write re-discovers, which
	// is how failover to a promoted replica happens.
	primaryIdx atomic.Int64

	// epoch is the highest leadership epoch any health probe has reported.
	// Writes stamp it (wire v3), so a deposed primary that still answers
	// the dial fences the request with ErrFenced instead of committing to
	// an abandoned timeline.
	epoch atomic.Uint64
}

// FleetOptions configures DialFleet.
type FleetOptions struct {
	// Client configures each endpoint's session (token, timeouts, gate).
	Client ClientOptions
	// Retry shapes every fleet-level retry loop. Zero = retryx defaults.
	Retry retryx.Policy
	// HealthTTL caches each endpoint's health probe. Default 500ms.
	HealthTTL time.Duration
	// HedgeDelay, when positive, races a second endpoint for a read that
	// has not answered within the delay. Zero disables hedging.
	HedgeDelay time.Duration
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.HealthTTL <= 0 {
		o.HealthTTL = 500 * time.Millisecond
	}
	return o
}

// member is one endpoint: a lazily dialed session plus a TTL-cached health
// probe.
type member struct {
	addr string

	mu sync.Mutex
	c  *Client

	hmu       sync.Mutex
	health    HealthReport
	healthErr error
	healthAt  time.Time
	healthTTL time.Duration // this probe's jittered lifetime
}

func (m *member) session(opt ClientOptions) (*Client, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.c != nil {
		return m.c, nil
	}
	c, err := Dial(m.addr, opt)
	if err != nil {
		return nil, err
	}
	m.c = c
	return c, nil
}

// drop discards a session after a connection-level failure so the next
// call redials. Only the exact failed session is dropped.
func (m *member) drop(c *Client) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.c == c {
		m.c = nil
	}
	c.Close()
}

// DialFleet builds a fleet handle over the given endpoints (typically the
// primary first, then replicas — but order is advisory; roles are
// discovered from health probes). Dialing is lazy: endpoints down at
// construction time are simply probed again when used.
func DialFleet(endpoints []string, opt FleetOptions) (*FleetClient, error) {
	if len(endpoints) == 0 {
		return nil, errors.New("server: fleet needs at least one endpoint")
	}
	var pre [8]byte
	if _, err := rand.Read(pre[:]); err != nil {
		return nil, err
	}
	f := &FleetClient{opt: opt.withDefaults(), tokPrefix: hex.EncodeToString(pre[:])}
	for _, ep := range endpoints {
		f.members = append(f.members, &member{addr: ep})
	}
	f.primaryIdx.Store(-1)
	return f, nil
}

// Close closes every live session.
func (f *FleetClient) Close() error {
	var first error
	for _, m := range f.members {
		m.mu.Lock()
		if m.c != nil {
			if err := m.c.Close(); err != nil && first == nil {
				first = err
			}
			m.c = nil
		}
		m.mu.Unlock()
	}
	return first
}

// newToken mints a fleet-unique idempotency token.
func (f *FleetClient) newToken() string {
	return fmt.Sprintf("%s-%d", f.tokPrefix, f.tokSeq.Add(1))
}

// probe returns the endpoint's health, cached under a jittered TTL. A
// probe failure is cached too — a dead endpoint is not re-dialed on every
// routing decision.
//
// The TTL is re-drawn uniformly from [HealthTTL/2, HealthTTL] on every
// probe. Without jitter, every fleet handle created in the same instant
// (a redeployed service tier, say) expires its caches in lockstep forever
// after, and each expiry is a synchronized probe volley at every endpoint
// — a thundering herd exactly when a failover has the fleet nervous.
// Jitter decorrelates the handles within a few cycles.
func (f *FleetClient) probe(ctx context.Context, m *member) (HealthReport, error) {
	m.hmu.Lock()
	defer m.hmu.Unlock()
	if !m.healthAt.IsZero() && time.Since(m.healthAt) < m.healthTTL {
		return m.health, m.healthErr
	}
	pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	var h HealthReport
	c, err := m.session(f.opt.Client)
	if err == nil {
		h, err = c.Health(pctx)
		if err != nil && retryx.ConnError(err) {
			m.drop(c)
		}
	}
	if err == nil {
		f.observeEpoch(h.Epoch)
	}
	m.health, m.healthErr, m.healthAt = h, err, time.Now()
	m.healthTTL = f.opt.HealthTTL/2 + time.Duration(mrand.Int64N(int64(f.opt.HealthTTL/2)+1))
	return h, err
}

// observeEpoch raises the fleet's epoch stamp; it never regresses.
func (f *FleetClient) observeEpoch(epoch uint64) {
	for {
		cur := f.epoch.Load()
		if epoch <= cur || f.epoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// invalidateHealth forgets a member's cached probe (after a failure that
// the cache would otherwise keep stale for a TTL).
func (m *member) invalidateHealth() {
	m.hmu.Lock()
	m.healthAt = time.Time{}
	m.hmu.Unlock()
}

// readOrder ranks every member for a read: healthy replicas by applied
// LSN (freshest wins) ahead of the primary — reads offload to replicas
// when any can serve — then the ready primary, then stalled/degraded
// members, then members whose probe failed. Nothing is excluded — routing
// is a preference, and a probe-dead endpoint may still answer the actual
// read (its health just cost it the front of the line).
func (f *FleetClient) readOrder(ctx context.Context) []*member {
	type ranked struct {
		m     *member
		score int64
	}
	rs := make([]ranked, 0, len(f.members))
	for _, m := range f.members {
		h, err := f.probe(ctx, m)
		var score int64
		switch {
		case err != nil:
			score = -2
		case h.StallCause != "" || !h.Ready:
			score = -1
		case h.Role == "primary":
			score = 0
		default:
			score = 1 + int64(h.AppliedLSN)
		}
		rs = append(rs, ranked{m, score})
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].score > rs[j].score })
	out := make([]*member, len(rs))
	for i, r := range rs {
		out[i] = r.m
	}
	return out
}

// routeElsewhere classifies a read failure as "this endpoint, not this
// request": connection cuts, sheds, drains, staleness-gate refusals, and
// stalls all mean another endpoint may answer — a malformed query means
// none will.
func routeElsewhere(err error) bool {
	return retryx.ConnError(err) || core.Retryable(err) ||
		errors.Is(err, replica.ErrTooStale) ||
		errors.Is(err, replica.ErrReplicaStalled) ||
		errors.Is(err, replica.ErrNotBootstrapped) ||
		errors.Is(err, core.ErrReadOnly) ||
		errors.Is(err, failover.ErrFenced)
}

// tryOn runs one read attempt against one member. The ctx is threaded
// into the RPC itself so a hedge winner actually cancels the losers.
func (f *FleetClient) tryOn(ctx context.Context, m *member, do func(ctx context.Context, c *Client) (any, error)) (any, error) {
	c, err := m.session(f.opt.Client)
	if err != nil {
		return nil, err
	}
	v, err := do(ctx, c)
	if err != nil {
		if retryx.ConnError(err) {
			m.drop(c)
			m.invalidateHealth()
		}
		return nil, err
	}
	return v, nil
}

// read routes one idempotent read: walk the ranked order, hedge if
// configured, and retry the whole walk (with refreshed health) on
// retryable failure — all under the caller's context.
func (f *FleetClient) read(ctx context.Context, do func(ctx context.Context, c *Client) (any, error)) (any, error) {
	var out any
	retryable := func(err error) bool { return retryx.ConnError(err) || core.Retryable(err) }
	err := retryx.Do(ctx, f.opt.Retry, retryable, func(ctx context.Context) error {
		order := f.readOrder(ctx)
		if f.opt.HedgeDelay > 0 && len(order) > 1 {
			v, err := f.hedged(ctx, order, do)
			if err != nil {
				return err
			}
			out = v
			return nil
		}
		var lastErr error
		for _, m := range order {
			v, err := f.tryOn(ctx, m, do)
			if err == nil {
				out = v
				return nil
			}
			lastErr = err
			if !routeElsewhere(err) {
				return err
			}
		}
		return lastErr
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// hedged races the read across the ranked order: the best endpoint goes
// first; every HedgeDelay without an answer launches the next. First
// success wins and cancels the rest. Reads only — each endpoint has its
// own session, and a canceled loser poisons nothing but itself.
func (f *FleetClient) hedged(ctx context.Context, order []*member, do func(ctx context.Context, c *Client) (any, error)) (any, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type res struct {
		v   any
		err error
	}
	ch := make(chan res, len(order))
	launched := 0
	launch := func() {
		m := order[launched]
		launched++
		go func() {
			v, err := f.tryOn(hctx, m, do)
			ch <- res{v, err}
		}()
	}
	launch()
	var lastErr error
	finished := 0
	for {
		var timer <-chan time.Time
		if launched < len(order) {
			timer = time.After(f.opt.HedgeDelay)
		}
		select {
		case r := <-ch:
			finished++
			if r.err == nil {
				return r.v, nil
			}
			lastErr = r.err
			if !routeElsewhere(r.err) {
				return nil, r.err
			}
			if launched < len(order) {
				launch() // a failed hedge immediately tries the next rank
			} else if finished == launched {
				return nil, lastErr
			}
		case <-timer:
			launch()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// primary returns the member currently serving as primary, discovering it
// from health probes when the cache is cold or was invalidated by a write
// failure. A promoted replica reports role "primary" and is discovered
// here — that is client-side failover.
func (f *FleetClient) primary(ctx context.Context) (*member, error) {
	if i := f.primaryIdx.Load(); i >= 0 {
		return f.members[i], nil
	}
	// Prefer the primary claiming the highest epoch: during the handover
	// window both the deposed primary and its successor can report role
	// "primary", and the epoch is the tiebreak that always picks the
	// successor. Fenced nodes are never candidates.
	var (
		best      *member
		bestIdx   int
		bestEpoch uint64
		lastErr   error
	)
	for i, m := range f.members {
		h, err := f.probe(ctx, m)
		if err != nil {
			lastErr = err
			continue
		}
		if h.Role != "primary" || h.Draining || h.Fenced {
			continue
		}
		if best == nil || h.Epoch > bestEpoch {
			best, bestIdx, bestEpoch = m, i, h.Epoch
		}
	}
	if best != nil {
		f.primaryIdx.Store(int64(bestIdx))
		return best, nil
	}
	if lastErr == nil {
		lastErr = errors.New("server: no endpoint reports role primary")
	}
	return nil, fmt.Errorf("fleet: primary discovery failed: %w", lastErr)
}

// write routes one mutation to the primary with an idempotency token. A
// connection cut after the request was sent is *ambiguous* — the mutation
// may have committed — and exactly why the token exists: the retry
// re-sends the same token and the server replays the committed ack
// instead of double-applying. ErrReadOnly earns a retry too: it is what a
// not-yet-promoted replica answers mid-failover, and rediscovery finds
// the new primary.
func (f *FleetClient) write(ctx context.Context, do func(c *Client, tok string) (any, error)) (any, error) {
	tok := f.newToken()
	var out any
	// ErrFenced joins the retryable set: it means "that node is a deposed
	// primary", and rediscovery — forced below by invalidating its cached
	// health — finds the successor.
	retryable := func(err error) bool {
		return retryx.ConnError(err) || core.Retryable(err) ||
			errors.Is(err, core.ErrReadOnly) || errors.Is(err, failover.ErrFenced)
	}
	err := retryx.Do(ctx, f.opt.Retry, retryable, func(ctx context.Context) error {
		m, err := f.primary(ctx)
		if err != nil {
			// Leave the cache cold and let every member's health expire
			// naturally; the next attempt re-probes.
			f.forgetPrimary()
			return err
		}
		c, err := m.session(f.opt.Client)
		if err != nil {
			f.forgetPrimary()
			return err
		}
		c.SetEpoch(f.epoch.Load())
		v, err := do(c, tok)
		if err != nil {
			if retryx.ConnError(err) {
				m.drop(c)
				m.invalidateHealth()
			}
			if errors.Is(err, failover.ErrFenced) {
				m.invalidateHealth()
			}
			if retryx.ConnError(err) || errors.Is(err, core.ErrReadOnly) ||
				errors.Is(err, ErrDraining) || errors.Is(err, failover.ErrFenced) {
				f.forgetPrimary()
			}
			return err
		}
		out = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (f *FleetClient) forgetPrimary() { f.primaryIdx.Store(-1) }

// Query evaluates an XPath expression on the freshest healthy endpoint.
func (f *FleetClient) Query(ctx context.Context, expr string) ([]Row, error) {
	v, err := f.read(ctx, func(ctx context.Context, c *Client) (any, error) { return c.Query(ctx, expr) })
	if err != nil {
		return nil, err
	}
	return v.([]Row), nil
}

// Value evaluates an XPath expression to its string value.
func (f *FleetClient) Value(ctx context.Context, expr string) (string, error) {
	v, err := f.read(ctx, func(ctx context.Context, c *Client) (any, error) { return c.Value(ctx, expr) })
	if err != nil {
		return "", err
	}
	return v.(string), nil
}

// ReadNode renders one node's subtree as XML.
func (f *FleetClient) ReadNode(ctx context.Context, id core.NodeID) (string, error) {
	v, err := f.read(ctx, func(ctx context.Context, c *Client) (any, error) { return c.ReadNode(ctx, id) })
	if err != nil {
		return "", err
	}
	return v.(string), nil
}

// Insert runs one XUpdate primitive on the primary (idempotency-tokened).
func (f *FleetClient) Insert(ctx context.Context, op InsertOp, target core.NodeID, frag string) (core.NodeID, error) {
	v, err := f.write(ctx, func(c *Client, tok string) (any, error) {
		return c.InsertIdem(ctx, op, target, frag, tok)
	})
	if err != nil {
		return 0, err
	}
	return v.(core.NodeID), nil
}

// Delete removes a node's subtree via the primary (idempotency-tokened).
func (f *FleetClient) Delete(ctx context.Context, id core.NodeID) error {
	_, err := f.write(ctx, func(c *Client, tok string) (any, error) {
		return nil, c.DeleteIdem(ctx, id, tok)
	})
	return err
}

// Load appends a document at top level via the primary
// (idempotency-tokened).
func (f *FleetClient) Load(ctx context.Context, frag string) (core.NodeID, error) {
	v, err := f.write(ctx, func(c *Client, tok string) (any, error) {
		return c.LoadIdem(ctx, frag, tok)
	})
	if err != nil {
		return 0, err
	}
	return v.(core.NodeID), nil
}

// PrimaryAddr reports the currently discovered primary's address —
// operational visibility into failover.
func (f *FleetClient) PrimaryAddr(ctx context.Context) (string, error) {
	m, err := f.primary(ctx)
	if err != nil {
		return "", err
	}
	return m.addr, nil
}
