package budget

import (
	"sync"
	"testing"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	b.Charge(Pool, 1<<40)
	b.Discharge(Pool, 1)
	b.NoteEviction(Partial)
	if b.NeedEvict(Pool) {
		t.Fatal("nil budget must never demand eviction")
	}
	if got := b.Excess(Pool); got != 0 {
		t.Fatalf("nil budget excess = %d, want 0", got)
	}
	if got := b.Limit(); got != 0 {
		t.Fatalf("nil budget limit = %d, want 0", got)
	}
	if s := b.Snapshot(); s != (Stats{}) {
		t.Fatalf("nil budget snapshot = %+v, want zero", s)
	}
}

func TestNewRejectsNonPositive(t *testing.T) {
	if New(0) != nil || New(-5) != nil {
		t.Fatal("New(<=0) must return nil (unlimited)")
	}
}

func TestChargeDischargeAccounting(t *testing.T) {
	b := New(1000)
	b.Charge(Pool, 300)
	b.Charge(Partial, 200)
	b.Charge(Checkpoints, 100)
	b.Discharge(Partial, 50)
	s := b.Snapshot()
	if s.Used != 550 || s.PoolBytes != 300 || s.PartialBytes != 150 || s.CheckpointBytes != 100 {
		t.Fatalf("accounting off: %+v", s)
	}
	if s.Limit != 1000 {
		t.Fatalf("limit = %d", s.Limit)
	}
}

func TestNeedEvictOnlyOverShareClasses(t *testing.T) {
	b := New(1000) // shares: pool 550, partial 220, checkpoints 130, plans 100
	b.Charge(Pool, 900)
	b.Charge(Partial, 200) // under its share
	if !b.NeedEvict(Pool) {
		t.Fatal("pool is over share and total over limit: must evict")
	}
	if b.NeedEvict(Partial) {
		t.Fatal("partial is under its share: must not be punished")
	}
	if b.NeedEvict(Checkpoints) {
		t.Fatal("checkpoints holds nothing: must not evict")
	}
}

func TestNoEvictionUnderLimit(t *testing.T) {
	b := New(1000)
	b.Charge(Pool, 999) // over pool's share but total under limit
	if b.NeedEvict(Pool) {
		t.Fatal("under the total limit nothing evicts")
	}
	if b.Excess(Pool) != 0 {
		t.Fatal("excess must be 0 under the limit")
	}
}

func TestPigeonholeSomeClassAlwaysEvictable(t *testing.T) {
	// However usage is distributed, if total > limit at least one class
	// must report NeedEvict.
	cases := [][numClasses]int64{
		{1100, 0, 0, 0},
		{551, 221, 131, 101},
		{0, 0, 1200, 0},
		{0, 0, 0, 1200},
		{300, 300, 300, 300},
	}
	for _, c := range cases {
		b := New(1000)
		b.Charge(Pool, c[0])
		b.Charge(Partial, c[1])
		b.Charge(Checkpoints, c[2])
		b.Charge(Plans, c[3])
		if !b.NeedEvict(Pool) && !b.NeedEvict(Partial) && !b.NeedEvict(Checkpoints) && !b.NeedEvict(Plans) {
			t.Fatalf("usage %v over limit but no class evictable", c)
		}
	}
}

func TestExcessDrainsBelowShare(t *testing.T) {
	b := New(1000)
	b.Charge(Pool, 700) // share 550, target 495
	b.Charge(Partial, 400)
	got := b.Excess(Pool)
	if got != 700-495 {
		t.Fatalf("pool excess = %d, want %d", got, 700-495)
	}
}

func TestConcurrentAccounting(t *testing.T) {
	b := New(1 << 20)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				b.Charge(Pool, 64)
				b.Charge(Partial, 32)
				b.Discharge(Pool, 64)
				b.Discharge(Partial, 32)
			}
		}()
	}
	wg.Wait()
	if s := b.Snapshot(); s.Used != 0 {
		t.Fatalf("balanced charge/discharge left %d bytes", s.Used)
	}
}
