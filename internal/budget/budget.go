// Package budget implements a process-wide memory budget shared by the
// store's caches: the buffer pool, the partial index, and the replay
// checkpoint table. The paper's partial index is already "a budgeted index
// with a replacement policy" (Stonebraker's partial indexes; Mahboubi &
// Darmont frame XML index memory the same way) — this package extends that
// discipline from one cache to every cache in the process.
//
// Design: accounting is deliberately decoupled from reclamation. Charge and
// Discharge only move atomic counters — they never call back into a
// consumer, so they are safe to invoke while holding any cache-internal
// lock. Consumers poll NeedEvict/Excess at their own safe points (after
// releasing their shard locks) and evict from their own LRU structures.
// This one-way dependency makes budget-driven eviction deadlock-free by
// construction.
//
// The budget is split into weighted class shares. When total usage exceeds
// the limit, at least one class necessarily exceeds its share (the shares
// sum to the whole), and that class is the one told to evict — a class
// under its share is never punished for another's appetite.
package budget

import "sync/atomic"

// Class identifies one budgeted consumer.
type Class int

const (
	// Pool is the buffer pool's page frames.
	Pool Class = iota
	// Partial is the partial (lazy) index's entries.
	Partial
	// Checkpoints is the replay-checkpoint table's runs.
	Checkpoints
	// Plans is the compiled query-plan cache.
	Plans

	numClasses
)

func (c Class) String() string {
	switch c {
	case Pool:
		return "pool"
	case Partial:
		return "partial"
	case Checkpoints:
		return "checkpoints"
	case Plans:
		return "plans"
	}
	return "unknown"
}

// shareNum/shareDen give each class its fraction of the limit. The pool
// dominates (page frames are the working set); the partial index, the
// checkpoint table and the plan cache split the rest. Shares sum to shareDen
// so over-limit totals always implicate at least one over-share class.
var shareNum = [numClasses]int64{55, 22, 13, 10}

const shareDen = 100

// evictTarget is the fraction of a class's share eviction drains down to
// (percent). Stopping below the share gives hysteresis: one new entry does
// not immediately re-trigger a sweep.
const evictTarget = 90

// Budget is a fixed memory limit with per-class weighted accounting. All
// methods are safe for concurrent use and safe on a nil receiver (a nil
// *Budget means "unlimited" and makes every operation a no-op).
type Budget struct {
	limit int64
	used  [numClasses]atomic.Int64
	total atomic.Int64

	evictions [numClasses]atomic.Uint64
}

// New returns a budget of limit bytes, or nil when limit <= 0 (unlimited).
func New(limit int64) *Budget {
	if limit <= 0 {
		return nil
	}
	return &Budget{limit: limit}
}

// Limit returns the configured byte limit (0 for a nil budget).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Charge records n bytes acquired by class c. It never blocks and never
// reclaims — consumers poll NeedEvict at their own safe points.
func (b *Budget) Charge(c Class, n int64) {
	if b == nil || n == 0 {
		return
	}
	b.used[c].Add(n)
	b.total.Add(n)
}

// Discharge records n bytes released by class c.
func (b *Budget) Discharge(c Class, n int64) {
	if b == nil || n == 0 {
		return
	}
	b.used[c].Add(-n)
	b.total.Add(-n)
}

// share returns class c's slice of the limit in bytes.
func (b *Budget) share(c Class) int64 {
	return b.limit * shareNum[c] / shareDen
}

// NeedEvict reports whether class c should evict now: the budget as a whole
// is over its limit and c is over its own share. Pigeonhole guarantees that
// an over-limit total always leaves at least one class with NeedEvict true.
func (b *Budget) NeedEvict(c Class) bool {
	if b == nil {
		return false
	}
	return b.total.Load() > b.limit && b.used[c].Load() > b.share(c)
}

// Excess returns how many bytes class c should free to drop back to
// evictTarget percent of its share (0 when no eviction is needed). Callers
// evict approximately this much from their own LRU and stop.
func (b *Budget) Excess(c Class) int64 {
	if b == nil || b.total.Load() <= b.limit {
		return 0
	}
	target := b.share(c) * evictTarget / 100
	excess := b.used[c].Load() - target
	if excess < 0 {
		return 0
	}
	return excess
}

// NoteEviction counts one budget-pressure eviction sweep by class c
// (distinct from capacity-driven LRU evictions, which the caches count
// themselves).
func (b *Budget) NoteEviction(c Class) {
	if b == nil {
		return
	}
	b.evictions[c].Add(1)
}

// Stats is a snapshot of budget accounting.
type Stats struct {
	Limit           int64  // configured byte limit (0 = unlimited)
	Used            int64  // total bytes charged across all classes
	PoolBytes       int64  // buffer-pool frames
	PartialBytes    int64  // partial-index entries
	CheckpointBytes int64  // replay-checkpoint runs
	PlanBytes       int64  // compiled query-plan cache entries
	Evictions       uint64 // budget-pressure eviction sweeps (all classes)
}

// Snapshot returns the current accounting (zero value for a nil budget).
func (b *Budget) Snapshot() Stats {
	if b == nil {
		return Stats{}
	}
	return Stats{
		Limit:           b.limit,
		Used:            b.total.Load(),
		PoolBytes:       b.used[Pool].Load(),
		PartialBytes:    b.used[Partial].Load(),
		CheckpointBytes: b.used[Checkpoints].Load(),
		PlanBytes:       b.used[Plans].Load(),
		Evictions: b.evictions[Pool].Load() +
			b.evictions[Partial].Load() +
			b.evictions[Checkpoints].Load() +
			b.evictions[Plans].Load(),
	}
}
