// Package bench is the experiment harness that regenerates the paper's
// evaluation (Section 7): the four-configuration micro-benchmark of Table 5
// (inserts, sequential scans, random reads, in kb/s) plus the figure-style
// series the paper's text discusses — the range-granularity sweep, the
// partial-index warm-up, mixed-workload ablations, storage overhead, and the
// orthogonal ID-scheme comparison. The same harness backs the root
// bench_test.go targets and the axmlbench CLI.
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Options sizes the experiments. The zero value is replaced by defaults
// sized to run the full suite in a few seconds.
type Options struct {
	// InsertBatches is the number of append operations in the insert
	// benchmark; each batch carries OrdersPerBatch purchase orders.
	InsertBatches  int
	OrdersPerBatch int
	// RandomReads is the number of point subtree reads per configuration.
	RandomReads int
	// Zipf skews the random-read key distribution (hot nodes repeat, as in
	// the paper's "repeated search for the same logical position"). 0
	// selects the default skew of 1.8; negative values select a uniform
	// distribution.
	Zipf float64
	// PartialCapacity bounds the partial index in partial configurations.
	PartialCapacity int
	// GranularRangeTokens is the chop size of the "many, granular entries"
	// configuration.
	GranularRangeTokens int
	// Seed makes runs reproducible.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.InsertBatches <= 0 {
		o.InsertBatches = 200
	}
	if o.OrdersPerBatch <= 0 {
		o.OrdersPerBatch = 50
	}
	if o.RandomReads <= 0 {
		o.RandomReads = 4000
	}
	if o.Zipf == 0 {
		o.Zipf = 1.8
	}
	if o.PartialCapacity <= 0 {
		o.PartialCapacity = 8192
	}
	if o.GranularRangeTokens <= 0 {
		o.GranularRangeTokens = 32
	}
	if o.Seed == 0 {
		o.Seed = 2005
	}
	return o
}

// Metric is one measured throughput figure.
type Metric struct {
	Ops     int
	Bytes   int64
	Seconds float64
}

// KBps returns the paper's metric: kilobytes of XML data per second.
func (m Metric) KBps() float64 {
	if m.Seconds <= 0 {
		return 0
	}
	return float64(m.Bytes) / 1024 / m.Seconds
}

func (m Metric) String() string {
	return fmt.Sprintf("%10.1f kb/s (%d ops, %.1f KB, %.3fs)",
		m.KBps(), m.Ops, float64(m.Bytes)/1024, m.Seconds)
}

// Configuration names one indexing setup of Table 5.
type Configuration struct {
	Name string
	Cfg  core.Config
}

// Table5Configs returns the paper's four configurations.
func Table5Configs(o Options) []Configuration {
	o = o.withDefaults()
	return []Configuration{
		{
			// "max. granularity": one index entry per node over finely
			// chopped ranges, exactly as the paper's row label says.
			Name: "Full Index (max. granularity)",
			Cfg:  core.Config{Mode: core.FullIndex, MaxRangeTokens: o.GranularRangeTokens},
		},
		{
			Name: "Range Index (many, granular entries)",
			Cfg:  core.Config{Mode: core.RangeOnly, MaxRangeTokens: o.GranularRangeTokens},
		},
		{
			Name: "Range Index (few, coarse, large entries)",
			Cfg:  core.Config{Mode: core.RangeOnly},
		},
		{
			Name: "Range Index (coarse) + Partial Index",
			Cfg:  core.Config{Mode: core.RangePartial, PartialCapacity: o.PartialCapacity},
		},
	}
}

// Row is one line of the Table 5 reproduction.
type Row struct {
	Config     string
	Insert     Metric
	SeqScan    Metric
	RandomRead Metric
	Stats      core.Stats
}

// RunTable5 reproduces the paper's Table 5: for each configuration, build a
// purchase-order document by repeated appends (insert speed), scan it end to
// end (sequential read speed), then perform random subtree reads (random
// read speed).
func RunTable5(o Options) ([]Row, error) {
	o = o.withDefaults()
	var rows []Row
	for _, cfg := range Table5Configs(o) {
		row, err := runOne(cfg, o)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runOne(c Configuration, o Options) (Row, error) {
	s, err := core.Open(c.Cfg)
	if err != nil {
		return Row{}, err
	}
	defer s.Close()
	gen := workload.New(o.Seed)

	// Insert: append batches of purchase orders.
	var insertBytes int64
	batches := make([][]core.Token, o.InsertBatches)
	for i := range batches {
		batch := make([]core.Token, 0, o.OrdersPerBatch*32)
		for j := 0; j < o.OrdersPerBatch; j++ {
			batch = append(batch, gen.PurchaseOrder(i*o.OrdersPerBatch+j)...)
		}
		batches[i] = batch
		insertBytes += int64(workload.EncodedBytes(batch))
	}
	start := time.Now()
	for _, batch := range batches {
		if _, err := s.Append(batch); err != nil {
			return Row{}, err
		}
	}
	insert := Metric{Ops: o.InsertBatches, Bytes: insertBytes, Seconds: time.Since(start).Seconds()}

	// Sequential scan: read every token back.
	start = time.Now()
	var scanBytes int64
	err = s.Scan(func(it core.Item) bool {
		scanBytes += int64(tokenBytes(it.Tok))
		return true
	})
	if err != nil {
		return Row{}, err
	}
	seq := Metric{Ops: 1, Bytes: scanBytes, Seconds: time.Since(start).Seconds()}

	// Random reads: point subtree reads over a (possibly skewed) key set.
	// The hot keys are scattered across the document (a permutation breaks
	// any correlation between popularity and storage position).
	st := s.Stats()
	maxID := st.Nodes
	keys := sampleKeys(gen, maxID, o.Zipf, o.RandomReads)
	var readBytes int64
	start = time.Now()
	for _, id := range keys {
		err := s.ScanNode(id, func(it core.Item) bool {
			readBytes += int64(tokenBytes(it.Tok))
			return true
		})
		if err != nil {
			return Row{}, err
		}
	}
	random := Metric{Ops: o.RandomReads, Bytes: readBytes, Seconds: time.Since(start).Seconds()}

	return Row{
		Config:     c.Name,
		Insert:     insert,
		SeqScan:    seq,
		RandomRead: random,
		Stats:      s.Stats(),
	}, nil
}

// tokenBytes approximates the XML data volume of one token (the kb in kb/s).
func tokenBytes(t core.Token) int {
	return 1 + len(t.Name) + len(t.Value)
}

// sampleKeys draws n node ids from [1, maxID]: Zipf-skewed popularity
// (zipf >= 0; 0 was replaced by the default earlier) scattered over the id
// space by a seeded permutation, or uniform for zipf < 0.
func sampleKeys(gen *workload.Gen, maxID uint64, zipf float64, n int) []core.NodeID {
	keys := make([]core.NodeID, n)
	if zipf < 0 {
		sample := gen.Uniform(maxID)
		for i := range keys {
			keys[i] = core.NodeID(sample())
		}
		return keys
	}
	perm := gen.Perm(int(maxID))
	sample := gen.Zipf(maxID, zipf)
	for i := range keys {
		keys[i] = core.NodeID(perm[sample()-1] + 1)
	}
	return keys
}

// FormatTable5 renders rows like the paper's Table 5.
func FormatTable5(rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-42s %14s %14s %14s\n", "Indexing approach", "Insert (kb/s)", "Seq.scan (kb/s)", "Random (kb/s)")
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", 42+3*15))
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-42s %14.2f %14.2f %14.2f\n",
			r.Config, r.Insert.KBps(), r.SeqScan.KBps(), r.RandomRead.KBps())
	}
	return sb.String()
}

// FormatStats renders the per-configuration store counters that explain the
// throughput differences (index entries, scans, splits).
func FormatStats(rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-42s %8s %10s %10s %12s %10s\n",
		"Indexing approach", "ranges", "idx entries", "full idx", "toks scanned", "partial hit%")
	for _, r := range rows {
		hitPct := 0.0
		if h := r.Stats.PartialHits + r.Stats.PartialMisses; h > 0 {
			hitPct = 100 * float64(r.Stats.PartialHits) / float64(h)
		}
		fmt.Fprintf(&sb, "%-42s %8d %10d %10d %12d %9.1f%%\n",
			r.Config, r.Stats.Ranges, r.Stats.RangeIndexEntries,
			r.Stats.FullIndexEntries, r.Stats.TokensScanned, hitPct)
	}
	return sb.String()
}
