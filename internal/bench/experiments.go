package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/idscheme"
	"repro/internal/token"
	"repro/internal/workload"
)

// E2 — range-granularity sweep. The paper's text: "an index containing many
// entries (even coarse-grained) also leads to performance decrease at insert
// time", while very coarse ranges make random reads scan far.

// SweepPoint is one granularity setting's measurements.
type SweepPoint struct {
	MaxRangeTokens int // 0 = unbounded (one range per insert batch)
	Insert         Metric
	RandomRead     Metric
	Ranges         int
}

// RunRangeSweep measures insert and random-read speed across range
// granularities under the plain range index.
func RunRangeSweep(o Options, granularities []int) ([]SweepPoint, error) {
	o = o.withDefaults()
	if len(granularities) == 0 {
		granularities = []int{8, 32, 128, 512, 2048, 0}
	}
	var out []SweepPoint
	for _, g := range granularities {
		cfg := Configuration{
			Name: fmt.Sprintf("maxRangeTokens=%d", g),
			Cfg:  core.Config{Mode: core.RangeOnly, MaxRangeTokens: g},
		}
		row, err := runOne(cfg, o)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			MaxRangeTokens: g,
			Insert:         row.Insert,
			RandomRead:     row.RandomRead,
			Ranges:         row.Stats.Ranges,
		})
	}
	return out, nil
}

// FormatSweep renders the sweep series.
func FormatSweep(points []SweepPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%16s %10s %14s %14s\n", "max range toks", "ranges", "Insert (kb/s)", "Random (kb/s)")
	for _, p := range points {
		label := fmt.Sprintf("%d", p.MaxRangeTokens)
		if p.MaxRangeTokens == 0 {
			label = "unbounded"
		}
		fmt.Fprintf(&sb, "%16s %10d %14.2f %14.2f\n", label, p.Ranges, p.Insert.KBps(), p.RandomRead.KBps())
	}
	return sb.String()
}

// E3 — partial-index warm-up: throughput and hit rate over successive read
// windows against a coarse store ("cache-like", Section 5).

// WarmupWindow is one window of the warm-up series.
type WarmupWindow struct {
	Window  int
	Reads   int
	KBps    float64
	HitRate float64
	Entries int
}

// RunPartialWarmup performs windows of skewed random reads on a coarse
// store with the partial index and reports per-window speed and hit rate.
func RunPartialWarmup(o Options, windows int) ([]WarmupWindow, error) {
	o = o.withDefaults()
	if windows <= 0 {
		windows = 10
	}
	s, err := core.Open(core.Config{Mode: core.RangePartial, PartialCapacity: o.PartialCapacity})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	gen := workload.New(o.Seed)
	if _, err := s.Append(gen.PurchaseOrdersDoc(o.InsertBatches * o.OrdersPerBatch)); err != nil {
		return nil, err
	}
	maxID := s.Stats().Nodes
	zipf := o.Zipf
	if zipf <= 0 {
		zipf = 1.4
	}
	keys := sampleKeys(gen, maxID, zipf, o.RandomReads)

	perWindow := o.RandomReads / windows
	if perWindow == 0 {
		perWindow = 1
	}
	var out []WarmupWindow
	prev := s.Stats()
	for w := 0; w < windows; w++ {
		var bytes int64
		start := time.Now()
		for i := 0; i < perWindow; i++ {
			id := keys[(w*perWindow+i)%len(keys)]
			err := s.ScanNode(id, func(it core.Item) bool {
				bytes += int64(tokenBytes(it.Tok))
				return true
			})
			if err != nil {
				return nil, err
			}
		}
		secs := time.Since(start).Seconds()
		st := s.Stats()
		lookups := (st.PartialHits + st.PartialMisses) - (prev.PartialHits + prev.PartialMisses)
		hits := st.PartialHits - prev.PartialHits
		hitRate := 0.0
		if lookups > 0 {
			hitRate = float64(hits) / float64(lookups)
		}
		kbps := 0.0
		if secs > 0 {
			kbps = float64(bytes) / 1024 / secs
		}
		out = append(out, WarmupWindow{
			Window: w + 1, Reads: perWindow, KBps: kbps,
			HitRate: hitRate, Entries: st.PartialEntries,
		})
		prev = st
	}
	return out, nil
}

// FormatWarmup renders the warm-up series.
func FormatWarmup(ws []WarmupWindow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s %8s %12s %9s %9s\n", "window", "reads", "kb/s", "hit rate", "entries")
	for _, w := range ws {
		fmt.Fprintf(&sb, "%8d %8d %12.1f %8.1f%% %9d\n",
			w.Window, w.Reads, w.KBps, 100*w.HitRate, w.Entries)
	}
	return sb.String()
}

// E4 — mixed read/update workloads across the three index modes: the
// adaptivity claim is that the lazy configuration tracks the best performer
// as the mix shifts.

// MixPoint is one (configuration, read fraction) measurement.
type MixPoint struct {
	Config       string
	ReadFraction float64
	OpsPerSec    float64
}

// RunMixedWorkload interleaves random subtree reads with insertIntoLast
// updates of random elements at the given read fractions.
func RunMixedWorkload(o Options, fractions []float64) ([]MixPoint, error) {
	o = o.withDefaults()
	if len(fractions) == 0 {
		fractions = []float64{0, 0.25, 0.5, 0.75, 1.0}
	}
	configs := []Configuration{
		{Name: "full", Cfg: core.Config{Mode: core.FullIndex, MaxRangeTokens: o.GranularRangeTokens}},
		{Name: "range", Cfg: core.Config{Mode: core.RangeOnly}},
		{Name: "range+partial", Cfg: core.Config{Mode: core.RangePartial, PartialCapacity: o.PartialCapacity}},
	}
	totalOps := o.RandomReads
	var out []MixPoint
	for _, frac := range fractions {
		for _, c := range configs {
			s, err := core.Open(c.Cfg)
			if err != nil {
				return nil, err
			}
			gen := workload.New(o.Seed)
			if _, err := s.Append(gen.PurchaseOrdersDoc(o.InsertBatches * o.OrdersPerBatch / 4)); err != nil {
				s.Close()
				return nil, err
			}
			maxID := s.Stats().Nodes
			keys := sampleKeys(gen, maxID, o.Zipf, totalOps)
			frag := gen.PurchaseOrder(999999)
			start := time.Now()
			for i := 0; i < totalOps; i++ {
				id := keys[i]
				if float64(i%100)/100 < frac {
					err = s.ScanNode(id, func(core.Item) bool { return true })
				} else {
					// Updates target element nodes; retarget on mismatch.
					if _, ierr := s.InsertAfter(id, frag); ierr == nil {
						err = nil
					} else {
						// Fall back to appending at the document tail.
						_, err = s.Append(frag)
					}
				}
				if err != nil {
					s.Close()
					return nil, err
				}
			}
			secs := time.Since(start).Seconds()
			s.Close()
			out = append(out, MixPoint{
				Config: c.Name, ReadFraction: frac,
				OpsPerSec: float64(totalOps) / secs,
			})
		}
	}
	return out, nil
}

// FormatMixed renders the mixed-workload matrix: one row per read fraction,
// one column per configuration.
func FormatMixed(points []MixPoint) string {
	configs := []string{}
	fractions := []float64{}
	byKey := map[string]float64{}
	seenC := map[string]bool{}
	seenF := map[float64]bool{}
	for _, p := range points {
		if !seenC[p.Config] {
			seenC[p.Config] = true
			configs = append(configs, p.Config)
		}
		if !seenF[p.ReadFraction] {
			seenF[p.ReadFraction] = true
			fractions = append(fractions, p.ReadFraction)
		}
		byKey[fmt.Sprintf("%s|%v", p.Config, p.ReadFraction)] = p.OpsPerSec
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%12s", "reads%")
	for _, c := range configs {
		fmt.Fprintf(&sb, " %16s", c)
	}
	sb.WriteString("  (ops/s)\n")
	for _, f := range fractions {
		fmt.Fprintf(&sb, "%11.0f%%", f*100)
		for _, c := range configs {
			fmt.Fprintf(&sb, " %16.0f", byKey[fmt.Sprintf("%s|%v", c, f)])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// E5 — storage overhead (desideratum 6 / Section 6.1): index bytes per
// stored node for each configuration.

// StorageRow reports the space accounting of one configuration.
type StorageRow struct {
	Config       string
	Nodes        uint64
	DataBytes    uint64
	IndexEntries int
	IndexBytes   uint64 // estimated in-memory index footprint
	BytesPerNode float64
}

// Estimated per-entry sizes: a range-index entry is a rangeInfo (~64 bytes
// with B+tree overhead); a full-index entry is key+value in the B+tree
// (~24 bytes); a partial entry is ~80 bytes with map overhead.
const (
	rangeEntryBytes   = 64
	fullEntryBytes    = 24
	partialEntryBytes = 80
)

// RunStorageOverhead loads the same document under each configuration and
// accounts for index space.
func RunStorageOverhead(o Options) ([]StorageRow, error) {
	o = o.withDefaults()
	var out []StorageRow
	for _, c := range Table5Configs(o) {
		s, err := core.Open(c.Cfg)
		if err != nil {
			return nil, err
		}
		gen := workload.New(o.Seed)
		if _, err := s.Append(gen.PurchaseOrdersDoc(o.InsertBatches * o.OrdersPerBatch)); err != nil {
			s.Close()
			return nil, err
		}
		// Touch some nodes so the partial index holds entries.
		maxID := s.Stats().Nodes
		sample := workload.New(o.Seed).Zipf(maxID, 1.3)
		for i := 0; i < o.RandomReads/4; i++ {
			s.ScanNode(core.NodeID(sample()), func(core.Item) bool { return false })
		}
		st := s.Stats()
		entries := st.RangeIndexEntries
		bytes := uint64(st.RangeIndexEntries * rangeEntryBytes)
		switch c.Cfg.Mode {
		case core.FullIndex:
			entries += st.FullIndexEntries
			bytes += uint64(st.FullIndexEntries * fullEntryBytes)
		case core.RangePartial:
			entries += st.PartialEntries
			bytes += uint64(st.PartialEntries * partialEntryBytes)
		}
		out = append(out, StorageRow{
			Config: c.Name, Nodes: st.Nodes, DataBytes: st.Bytes,
			IndexEntries: entries, IndexBytes: bytes,
			BytesPerNode: float64(bytes) / float64(st.Nodes),
		})
		s.Close()
	}
	return out, nil
}

// FormatStorage renders the storage accounting.
func FormatStorage(rows []StorageRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-42s %10s %12s %12s %12s %10s\n",
		"Indexing approach", "nodes", "data bytes", "idx entries", "idx bytes", "B/node")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-42s %10d %12d %12d %12d %10.2f\n",
			r.Config, r.Nodes, r.DataBytes, r.IndexEntries, r.IndexBytes, r.BytesPerNode)
	}
	return sb.String()
}

// E7 — adaptive coalescing ablation (future-work extension): a churn
// workload (interleaved deletes and re-inserts over a granular-loaded store)
// fragments the range structure; coalescing merges id-contiguous neighbours
// back together, keeping the range index small and scans short.

// CoalesceRow compares one configuration under churn.
type CoalesceRow struct {
	Config     string
	Ranges     int
	Merges     uint64
	ChurnSecs  float64
	ScanKBps   float64
	RandomKBps float64
}

// RunCoalesceAblation applies the same churn to a store with and without
// coalescing and compares the resulting fragmentation and read speed.
func RunCoalesceAblation(o Options) ([]CoalesceRow, error) {
	o = o.withDefaults()
	configs := []Configuration{
		{Name: "coalescing off", Cfg: core.Config{Mode: core.RangeOnly, MaxRangeTokens: o.GranularRangeTokens}},
		{Name: "coalescing on", Cfg: core.Config{Mode: core.RangeOnly, MaxRangeTokens: o.GranularRangeTokens, CoalesceBytes: 1 << 14}},
	}
	var out []CoalesceRow
	for _, c := range configs {
		s, err := core.Open(c.Cfg)
		if err != nil {
			return nil, err
		}
		gen := workload.New(o.Seed)
		if _, err := s.Append(gen.PurchaseOrdersDoc(o.InsertBatches * o.OrdersPerBatch / 4)); err != nil {
			s.Close()
			return nil, err
		}
		// Churn: delete a random purchase order, append a replacement at
		// the end, repeatedly.
		churnOps := o.RandomReads
		maxID := s.Stats().Nodes
		keys := sampleKeys(gen, maxID, -1, churnOps)
		start := time.Now()
		for i := 0; i < churnOps; i++ {
			id := keys[i]
			if err := s.DeleteNode(core.NodeID(id)); err != nil {
				continue // id may already be gone; churn on
			}
			if _, err := s.Append(gen.PurchaseOrder(100000 + i)); err != nil {
				s.Close()
				return nil, err
			}
		}
		churn := time.Since(start).Seconds()

		// Post-churn read speeds.
		start = time.Now()
		var scanBytes int64
		s.Scan(func(it core.Item) bool {
			scanBytes += int64(tokenBytes(it.Tok))
			return true
		})
		scanSecs := time.Since(start).Seconds()

		maxID = uint64(0)
		s.Scan(func(it core.Item) bool {
			if uint64(it.ID) > maxID {
				maxID = uint64(it.ID)
			}
			return true
		})
		reads := o.RandomReads
		var readBytes int64
		start = time.Now()
		done := 0
		for i := 0; done < reads; i++ {
			id := core.NodeID(gen.Uniform(maxID)())
			err := s.ScanNode(id, func(it core.Item) bool {
				readBytes += int64(tokenBytes(it.Tok))
				return true
			})
			if err == nil {
				done++
			}
			if i > reads*10 {
				break
			}
		}
		readSecs := time.Since(start).Seconds()

		st := s.Stats()
		out = append(out, CoalesceRow{
			Config: c.Name, Ranges: st.Ranges, Merges: st.Merges,
			ChurnSecs:  churn,
			ScanKBps:   float64(scanBytes) / 1024 / scanSecs,
			RandomKBps: float64(readBytes) / 1024 / readSecs,
		})
		s.Close()
	}
	return out, nil
}

// FormatCoalesce renders the ablation.
func FormatCoalesce(rows []CoalesceRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %10s %10s %12s %14s %14s\n",
		"config", "ranges", "merges", "churn (s)", "scan (kb/s)", "random (kb/s)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %10d %10d %12.3f %14.1f %14.1f\n",
			r.Config, r.Ranges, r.Merges, r.ChurnSecs, r.ScanKBps, r.RandomKBps)
	}
	return sb.String()
}

// E6 — ID scheme orthogonality (Section 6): label generation speed, label
// size and comparison cost for the sequential, Dewey and ORDPATH schemes.

// IDSchemeRow reports one scheme's characteristics over a document walk.
type IDSchemeRow struct {
	Scheme          string
	Labels          int
	GenPerSec       float64
	AvgLabelBytes   float64
	CmpPerSec       float64
	SupportsBetween bool
}

// RunIDSchemes walks the same document under each scheme.
func RunIDSchemes(o Options) ([]IDSchemeRow, error) {
	o = o.withDefaults()
	gen := workload.New(o.Seed)
	doc := gen.PurchaseOrdersDoc(o.InsertBatches * o.OrdersPerBatch / 4)
	schemes := []idscheme.Scheme{idscheme.Sequential{}, idscheme.Dewey{}, idscheme.OrdPath{}}
	var out []IDSchemeRow
	for _, sc := range schemes {
		// Generation.
		start := time.Now()
		var labels []idscheme.Label
		f := sc.NewFactory(sc.Initial())
		for _, t := range doc {
			if l, ok := f.Next(t); ok {
				labels = append(labels, l)
			}
		}
		genSecs := time.Since(start).Seconds()
		var totalBytes int
		for _, l := range labels {
			totalBytes += len(l)
		}
		// Comparison over adjacent pairs, repeated.
		const cmpRounds = 20
		start = time.Now()
		cmps := 0
		for round := 0; round < cmpRounds; round++ {
			for i := 1; i < len(labels); i++ {
				sc.Compare(labels[i-1], labels[i])
				cmps++
			}
		}
		cmpSecs := time.Since(start).Seconds()
		_, betweenErr := sc.Between(sc.Initial(), mustNext(sc))
		out = append(out, IDSchemeRow{
			Scheme:          sc.Name(),
			Labels:          len(labels),
			GenPerSec:       float64(len(labels)) / genSecs,
			AvgLabelBytes:   float64(totalBytes) / float64(len(labels)),
			CmpPerSec:       float64(cmps) / cmpSecs,
			SupportsBetween: betweenErr == nil,
		})
	}
	return out, nil
}

// mustNext produces a second sibling label for the Between probe.
func mustNext(sc idscheme.Scheme) idscheme.Label {
	f := sc.NewFactory(sc.Initial())
	frag := []token.Token{
		token.Elem("a"), token.EndElem(),
		token.Elem("b"), token.EndElem(),
	}
	var last idscheme.Label
	for _, t := range frag {
		if l, ok := f.Next(t); ok {
			last = l
		}
	}
	return last
}

// FormatIDSchemes renders the scheme comparison.
func FormatIDSchemes(rows []IDSchemeRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %10s %14s %12s %14s %16s\n",
		"scheme", "labels", "gen labels/s", "avg bytes", "compares/s", "insert-between")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %10d %14.0f %12.2f %14.0f %16v\n",
			r.Scheme, r.Labels, r.GenPerSec, r.AvgLabelBytes, r.CmpPerSec, r.SupportsBetween)
	}
	return sb.String()
}
