package bench

import (
	"strings"
	"testing"
)

// small returns options sized for fast unit tests.
func small() Options {
	return Options{
		InsertBatches:  20,
		OrdersPerBatch: 20,
		RandomReads:    400,
		Zipf:           1.6,
		Seed:           7,
	}
}

func TestRunTable5ShapeHolds(t *testing.T) {
	rows, err := RunTable5(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Config] = r
		if r.Insert.KBps() <= 0 || r.SeqScan.KBps() <= 0 || r.RandomRead.KBps() <= 0 {
			t.Errorf("%s: zero metric: %+v", r.Config, r)
		}
	}
	full := byName["Full Index (max. granularity)"]
	granular := byName["Range Index (many, granular entries)"]
	coarse := byName["Range Index (few, coarse, large entries)"]
	partial := byName["Range Index (coarse) + Partial Index"]

	// The paper's qualitative results (Table 5):
	// 1. Range configurations insert faster than the full index.
	if coarse.Insert.KBps() <= full.Insert.KBps() {
		t.Errorf("coarse insert (%.1f) should beat full index insert (%.1f)",
			coarse.Insert.KBps(), full.Insert.KBps())
	}
	// 2. Coarse ranges have the slowest random reads.
	if coarse.RandomRead.KBps() >= granular.RandomRead.KBps() {
		t.Errorf("coarse random (%.1f) should be slower than granular (%.1f)",
			coarse.RandomRead.KBps(), granular.RandomRead.KBps())
	}
	if coarse.RandomRead.KBps() >= full.RandomRead.KBps() {
		t.Errorf("coarse random (%.1f) should be slower than full (%.1f)",
			coarse.RandomRead.KBps(), full.RandomRead.KBps())
	}
	// 3. The partial index rescues the coarse configuration's random reads.
	// The margin used to be >2x, but replay checkpoints and the zero-copy
	// replay path rescued much of coarse's cost on their own; at this small
	// workload the remaining steady-state gap is a sub-256-token replay plus
	// a range binary search per read, so the bound asserts a clear win, not
	// the pre-checkpoint chasm.
	if partial.RandomRead.KBps() <= 1.2*coarse.RandomRead.KBps() {
		t.Errorf("partial random (%.1f) should clearly beat coarse (%.1f)",
			partial.RandomRead.KBps(), coarse.RandomRead.KBps())
	}
	// 4. Index population matches the configuration.
	if full.Stats.FullIndexEntries == 0 {
		t.Error("full config has no full-index entries")
	}
	if granular.Stats.RangeIndexEntries <= coarse.Stats.RangeIndexEntries {
		t.Error("granular config should have more range entries than coarse")
	}
	if partial.Stats.PartialHits == 0 {
		t.Error("partial index never hit")
	}
	// Formatting smoke checks.
	tbl := FormatTable5(rows)
	if !strings.Contains(tbl, "Partial Index") || !strings.Contains(tbl, "Insert") {
		t.Errorf("table formatting: %s", tbl)
	}
	st := FormatStats(rows)
	if !strings.Contains(st, "ranges") {
		t.Errorf("stats formatting: %s", st)
	}
}

func TestRunRangeSweep(t *testing.T) {
	o := small()
	// Large insert batches so the unbounded configuration's ranges are
	// genuinely coarse (thousands of tokens).
	o.InsertBatches, o.OrdersPerBatch = 8, 100
	points, err := RunRangeSweep(o, []int{16, 256, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// Finer granularity => more ranges.
	if points[0].Ranges <= points[1].Ranges || points[1].Ranges <= points[2].Ranges {
		t.Errorf("range counts not decreasing with granularity: %d %d %d",
			points[0].Ranges, points[1].Ranges, points[2].Ranges)
	}
	// Finer granularity => faster random reads than unbounded.
	if points[0].RandomRead.KBps() <= points[2].RandomRead.KBps() {
		t.Errorf("granular random (%.1f) should beat coarse (%.1f)",
			points[0].RandomRead.KBps(), points[2].RandomRead.KBps())
	}
	if s := FormatSweep(points); !strings.Contains(s, "unbounded") {
		t.Errorf("sweep formatting: %s", s)
	}
}

func TestRunPartialWarmup(t *testing.T) {
	ws, err := RunPartialWarmup(small(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 5 {
		t.Fatalf("got %d windows", len(ws))
	}
	// The lazy index must warm: final window hit rate far above the first.
	if ws[4].HitRate <= ws[0].HitRate {
		t.Errorf("hit rate did not improve: first %.2f, last %.2f", ws[0].HitRate, ws[4].HitRate)
	}
	if ws[4].Entries == 0 {
		t.Error("no partial entries after warmup")
	}
	if s := FormatWarmup(ws); !strings.Contains(s, "hit rate") {
		t.Errorf("warmup formatting: %s", s)
	}
}

func TestRunMixedWorkload(t *testing.T) {
	o := small()
	o.RandomReads = 150
	points, err := RunMixedWorkload(o, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 { // 2 fractions x 3 configs
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.OpsPerSec <= 0 {
			t.Errorf("%+v: zero throughput", p)
		}
	}
	if s := FormatMixed(points); !strings.Contains(s, "range+partial") {
		t.Errorf("mixed formatting: %s", s)
	}
}

func TestRunStorageOverhead(t *testing.T) {
	rows, err := RunStorageOverhead(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	var full, coarse StorageRow
	for _, r := range rows {
		if strings.HasPrefix(r.Config, "Full") {
			full = r
		}
		if strings.Contains(r.Config, "few, coarse") {
			coarse = r
		}
	}
	// The headline claim: per-node indexing costs far more space.
	if full.BytesPerNode <= 5*coarse.BytesPerNode {
		t.Errorf("full index %.2f B/node should dwarf coarse %.2f B/node",
			full.BytesPerNode, coarse.BytesPerNode)
	}
	if s := FormatStorage(rows); !strings.Contains(s, "B/node") {
		t.Errorf("storage formatting: %s", s)
	}
}

func TestRunCoalesceAblation(t *testing.T) {
	o := small()
	o.RandomReads = 100
	rows, err := RunCoalesceAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	off, on := rows[0], rows[1]
	if on.Merges == 0 {
		t.Error("coalescing never merged")
	}
	if on.Ranges >= off.Ranges {
		t.Errorf("coalescing ranges %d >= plain %d", on.Ranges, off.Ranges)
	}
	if s := FormatCoalesce(rows); !strings.Contains(s, "merges") {
		t.Errorf("formatting: %s", s)
	}
}

func TestRunIDSchemes(t *testing.T) {
	rows, err := RunIDSchemes(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]IDSchemeRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
		if r.Labels == 0 || r.GenPerSec <= 0 || r.CmpPerSec <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Scheme, r)
		}
	}
	// All schemes label the same node count (orthogonality).
	if byName["sequential"].Labels != byName["dewey"].Labels ||
		byName["dewey"].Labels != byName["ordpath"].Labels {
		t.Error("schemes disagree on node count")
	}
	if !byName["ordpath"].SupportsBetween {
		t.Error("ordpath must support insert-between")
	}
	if byName["sequential"].SupportsBetween {
		t.Error("sequential cannot support insert-between")
	}
	if byName["sequential"].AvgLabelBytes != 8 {
		t.Errorf("sequential label size %.1f", byName["sequential"].AvgLabelBytes)
	}
	if s := FormatIDSchemes(rows); !strings.Contains(s, "ordpath") {
		t.Errorf("idscheme formatting: %s", s)
	}
}

func TestMetricKBps(t *testing.T) {
	m := Metric{Ops: 10, Bytes: 10240, Seconds: 2}
	if m.KBps() != 5 {
		t.Errorf("KBps = %f", m.KBps())
	}
	if (Metric{}).KBps() != 0 {
		t.Error("zero metric should not divide by zero")
	}
	if !strings.Contains(m.String(), "kb/s") {
		t.Error("metric string")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.InsertBatches == 0 || o.RandomReads == 0 || o.Seed == 0 || o.PartialCapacity == 0 {
		t.Errorf("defaults missing: %+v", o)
	}
}
