package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New[string]()
	if tr.Len() != 0 {
		t.Fatal("empty tree has entries")
	}
	if _, ok := tr.Get(7); ok {
		t.Error("Get on empty tree")
	}
	if _, _, ok := tr.Floor(7); ok {
		t.Error("Floor on empty tree")
	}
	if _, _, ok := tr.Ceiling(7); ok {
		t.Error("Ceiling on empty tree")
	}
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree")
	}
	if tr.Delete(7) {
		t.Error("Delete on empty tree")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSetGet(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 1000; i++ {
		tr.Set(uint64(i*3), i)
	}
	if tr.Len() != 1000 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := tr.Get(uint64(i * 3))
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d, %v", i*3, v, ok)
		}
	}
	if _, ok := tr.Get(1); ok {
		t.Error("Get of absent key")
	}
	// Overwrite.
	tr.Set(30, -1)
	if v, _ := tr.Get(30); v != -1 {
		t.Error("overwrite failed")
	}
	if tr.Len() != 1000 {
		t.Error("overwrite changed size")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFloorCeiling(t *testing.T) {
	tr := New[string]()
	// Interval starts at 10, 20, ..., 1000 — like range index startIDs.
	for k := uint64(10); k <= 1000; k += 10 {
		tr.Set(k, "r")
	}
	cases := []struct {
		k         uint64
		floor     uint64
		floorOK   bool
		ceiling   uint64
		ceilingOK bool
	}{
		{5, 0, false, 10, true},
		{10, 10, true, 10, true},
		{15, 10, true, 20, true},
		{999, 990, true, 1000, true},
		{1000, 1000, true, 1000, true},
		{2000, 1000, true, 0, false},
	}
	for _, c := range cases {
		fk, _, ok := tr.Floor(c.k)
		if ok != c.floorOK || (ok && fk != c.floor) {
			t.Errorf("Floor(%d) = %d, %v; want %d, %v", c.k, fk, ok, c.floor, c.floorOK)
		}
		ck, _, ok := tr.Ceiling(c.k)
		if ok != c.ceilingOK || (ok && ck != c.ceiling) {
			t.Errorf("Ceiling(%d) = %d, %v; want %d, %v", c.k, ck, ok, c.ceiling, c.ceilingOK)
		}
	}
	if k, _, ok := tr.Min(); !ok || k != 10 {
		t.Errorf("Min = %d, %v", k, ok)
	}
	if k, _, ok := tr.Max(); !ok || k != 1000 {
		t.Errorf("Max = %d, %v", k, ok)
	}
}

func TestDelete(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 500; i++ {
		tr.Set(uint64(i), i)
	}
	for i := 0; i < 500; i += 2 {
		if !tr.Delete(uint64(i)) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tr.Len() != 250 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < 500; i++ {
		_, ok := tr.Get(uint64(i))
		if (i%2 == 0) == ok {
			t.Fatalf("Get(%d) = %v after deletes", i, ok)
		}
	}
	if tr.Delete(0) {
		t.Error("double delete")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Delete everything.
	for i := 1; i < 500; i += 2 {
		if !tr.Delete(uint64(i)) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d after full delete", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Tree is reusable.
	tr.Set(42, 42)
	if v, ok := tr.Get(42); !ok || v != 42 {
		t.Error("tree unusable after emptying")
	}
}

func TestAscend(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 300; i++ {
		tr.Set(uint64(i*2), i)
	}
	var keys []uint64
	tr.Ascend(100, 200, func(k uint64, v int) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 51 { // 100,102,...,200
		t.Fatalf("got %d keys", len(keys))
	}
	for i, k := range keys {
		if k != uint64(100+i*2) {
			t.Fatalf("keys[%d] = %d", i, k)
		}
	}
	// Early stop.
	n := 0
	tr.AscendAll(func(uint64, int) bool { n++; return n < 10 })
	if n != 10 {
		t.Errorf("early stop visited %d", n)
	}
	// Empty interval.
	n = 0
	tr.Ascend(1001, 2000, func(uint64, int) bool { n++; return true })
	if n != 0 {
		t.Errorf("out-of-range ascend visited %d", n)
	}
}

func TestHeightGrows(t *testing.T) {
	tr := New[int]()
	if tr.Height() != 1 {
		t.Fatal("empty tree height != 1")
	}
	for i := 0; i < 100000; i++ {
		tr.Set(uint64(i), i)
	}
	if h := tr.Height(); h < 3 {
		t.Errorf("height %d too small for 100k entries", h)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr := New[int]()
	ref := map[uint64]int{}
	for step := 0; step < 20000; step++ {
		k := uint64(r.Intn(2000))
		switch r.Intn(3) {
		case 0, 1:
			v := r.Int()
			tr.Set(k, v)
			ref[k] = v
		case 2:
			want := false
			if _, ok := ref[k]; ok {
				want = true
				delete(ref, k)
			}
			if got := tr.Delete(k); got != want {
				t.Fatalf("step %d: Delete(%d) = %v, want %v", step, k, got, want)
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("step %d: len %d, want %d", step, tr.Len(), len(ref))
		}
	}
	// Full comparison.
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = %d, %v; want %d", k, got, ok, v)
		}
	}
	var keys []uint64
	tr.AscendAll(func(k uint64, _ int) bool { keys = append(keys, k); return true })
	if len(keys) != len(ref) {
		t.Fatalf("ascend saw %d keys, want %d", len(keys), len(ref))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("ascend out of order")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestQuickFloorProperty(t *testing.T) {
	// Floor(k) is the max key <= k, verified against a sorted slice.
	f := func(keys []uint64, probe uint64) bool {
		tr := New[bool]()
		uniq := map[uint64]bool{}
		for _, k := range keys {
			tr.Set(k, true)
			uniq[k] = true
		}
		var want uint64
		found := false
		for k := range uniq {
			if k <= probe && (!found || k > want) {
				want, found = k, true
			}
		}
		gk, _, ok := tr.Floor(probe)
		if ok != found {
			return false
		}
		return !ok || gk == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDescendingInsert(t *testing.T) {
	tr := New[int]()
	for i := 5000; i > 0; i-- {
		tr.Set(uint64(i), i)
	}
	if tr.Len() != 5000 {
		t.Fatalf("len = %d", tr.Len())
	}
	prev := uint64(0)
	tr.AscendAll(func(k uint64, v int) bool {
		if k <= prev && prev != 0 {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		prev = k
		return true
	})
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func BenchmarkSetSequential(b *testing.B) {
	tr := New[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Set(uint64(i), i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New[int]()
	for i := 0; i < 1<<20; i++ {
		tr.Set(uint64(i), i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := tr.Get(uint64(i & (1<<20 - 1))); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkFloor(b *testing.B) {
	tr := New[int]()
	for i := 0; i < 1<<18; i++ {
		tr.Set(uint64(i*16), i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := tr.Floor(uint64(i&(1<<22-1)) + 16); !ok {
			b.Fatal("miss")
		}
	}
}
