// Package btree implements an in-memory B+tree with uint64 keys, used as the
// index substrate for both the coarse Range Index and the eager Full Index
// baseline. Keys are node identifiers; values are generic.
//
// The tree supports the operations the paper's indexes need: exact lookup,
// floor search (largest key <= k, how an ID interval is located from an
// arbitrary node id), ordered ascent over a key range, insert, delete and
// in-place value update. It is not safe for concurrent use; the store
// serializes access.
package btree

import "fmt"

// degree is the maximum number of keys per node. 64 keeps nodes within a few
// cache lines while staying shallow for millions of entries.
const degree = 64

type node[V any] struct {
	keys     []uint64
	vals     []V        // leaf only
	children []*node[V] // interior only
	next     *node[V]   // leaf chain for range scans
	prev     *node[V]
}

func (n *node[V]) leaf() bool { return n.children == nil }

// Tree is a B+tree from uint64 keys to V values.
type Tree[V any] struct {
	root *node[V]
	size int
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	return &Tree[V]{root: &node[V]{}}
}

// Len returns the number of entries.
func (t *Tree[V]) Len() int { return t.size }

// search returns the index of the first key >= k in n.keys.
func search(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the child to descend into for key k. Interior nodes
// hold separator keys: child i covers keys < keys[i]; the last child covers
// the rest.
func childIndex(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if k >= keys[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value for k.
func (t *Tree[V]) Get(k uint64) (V, bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[childIndex(n.keys, k)]
	}
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.vals[i], true
	}
	var zero V
	return zero, false
}

// Floor returns the largest entry with key <= k.
func (t *Tree[V]) Floor(k uint64) (uint64, V, bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[childIndex(n.keys, k)]
	}
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.keys[i], n.vals[i], true
	}
	if i > 0 {
		return n.keys[i-1], n.vals[i-1], true
	}
	// The floor may live in the previous leaf.
	if n.prev != nil && len(n.prev.keys) > 0 {
		p := n.prev
		return p.keys[len(p.keys)-1], p.vals[len(p.vals)-1], true
	}
	var zero V
	return 0, zero, false
}

// Ceiling returns the smallest entry with key >= k.
func (t *Tree[V]) Ceiling(k uint64) (uint64, V, bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[childIndex(n.keys, k)]
	}
	i := search(n.keys, k)
	if i < len(n.keys) {
		return n.keys[i], n.vals[i], true
	}
	if n.next != nil && len(n.next.keys) > 0 {
		nx := n.next
		return nx.keys[0], nx.vals[0], true
	}
	var zero V
	return 0, zero, false
}

// Min returns the smallest entry.
func (t *Tree[V]) Min() (uint64, V, bool) { return t.Ceiling(0) }

// Max returns the largest entry.
func (t *Tree[V]) Max() (uint64, V, bool) { return t.Floor(^uint64(0)) }

// Set inserts or replaces the value for k.
func (t *Tree[V]) Set(k uint64, v V) {
	nk, nc := t.insert(t.root, k, v)
	if nc != nil {
		t.root = &node[V]{
			keys:     []uint64{nk},
			children: []*node[V]{t.root, nc},
		}
	}
}

// insert adds k:v under n. If n splits, it returns the separator key and the
// new right sibling.
func (t *Tree[V]) insert(n *node[V], k uint64, v V) (uint64, *node[V]) {
	if n.leaf() {
		i := search(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			n.vals[i] = v
			return 0, nil
		}
		n.keys = insertAt(n.keys, i, k)
		n.vals = insertAt(n.vals, i, v)
		t.size++
		if len(n.keys) <= degree {
			return 0, nil
		}
		return t.splitLeaf(n)
	}
	ci := childIndex(n.keys, k)
	nk, nc := t.insert(n.children[ci], k, v)
	if nc == nil {
		return 0, nil
	}
	n.keys = insertAt(n.keys, ci, nk)
	n.children = insertAt(n.children, ci+1, nc)
	if len(n.keys) <= degree {
		return 0, nil
	}
	return t.splitInterior(n)
}

func (t *Tree[V]) splitLeaf(n *node[V]) (uint64, *node[V]) {
	mid := len(n.keys) / 2
	right := &node[V]{
		keys: append([]uint64(nil), n.keys[mid:]...),
		vals: append([]V(nil), n.vals[mid:]...),
		next: n.next,
		prev: n,
	}
	if n.next != nil {
		n.next.prev = right
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = right
	return right.keys[0], right
}

func (t *Tree[V]) splitInterior(n *node[V]) (uint64, *node[V]) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node[V]{
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]*node[V](nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

func insertAt[E any](s []E, i int, e E) []E {
	s = append(s, e)
	copy(s[i+1:], s[i:])
	s[i] = e
	return s
}

// Delete removes k, reporting whether it was present.
//
// Deletion uses lazy rebalancing: underfull leaves are tolerated (they never
// become empty except the root), which keeps the code simple at a small
// space cost — appropriate for index workloads where deletes are rarer than
// inserts.
func (t *Tree[V]) Delete(k uint64) bool {
	n := t.root
	var parents []*node[V]
	var idx []int
	for !n.leaf() {
		ci := childIndex(n.keys, k)
		parents = append(parents, n)
		idx = append(idx, ci)
		n = n.children[ci]
	}
	i := search(n.keys, k)
	if i >= len(n.keys) || n.keys[i] != k {
		return false
	}
	n.keys = removeAt(n.keys, i)
	n.vals = removeAt(n.vals, i)
	t.size--
	// Unlink empty leaves so scans stay O(live nodes).
	if len(n.keys) == 0 && len(parents) > 0 {
		if n.prev != nil {
			n.prev.next = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		}
		for level := len(parents) - 1; level >= 0; level-- {
			p, ci := parents[level], idx[level]
			p.children = removeAt(p.children, ci)
			if ci > 0 {
				p.keys = removeAt(p.keys, ci-1)
			} else if len(p.keys) > 0 {
				p.keys = removeAt(p.keys, 0)
			}
			if len(p.children) > 0 {
				break
			}
		}
		// Collapse trivial roots.
		for !t.root.leaf() && len(t.root.children) == 1 {
			t.root = t.root.children[0]
		}
	}
	return true
}

func removeAt[E any](s []E, i int) []E {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// Ascend calls fn for each entry with key in [from, to] in ascending order.
// fn returning false stops the scan.
func (t *Tree[V]) Ascend(from, to uint64, fn func(k uint64, v V) bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[childIndex(n.keys, from)]
	}
	i := search(n.keys, from)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if n.keys[i] > to {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// AscendAll visits every entry in ascending key order.
func (t *Tree[V]) AscendAll(fn func(k uint64, v V) bool) {
	t.Ascend(0, ^uint64(0), fn)
}

// Height returns the tree height (1 for a lone leaf); used in tests and
// stats.
func (t *Tree[V]) Height() int {
	h := 1
	for n := t.root; !n.leaf(); n = n.children[0] {
		h++
	}
	return h
}

// CheckInvariants verifies structural invariants for tests.
func (t *Tree[V]) CheckInvariants() error {
	count := 0
	var last *uint64
	err := t.check(t.root, nil, nil, &count, &last)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d, counted %d", t.size, count)
	}
	return nil
}

func (t *Tree[V]) check(n *node[V], lo, hi *uint64, count *int, last **uint64) error {
	if n.leaf() {
		if len(n.vals) != len(n.keys) {
			return fmt.Errorf("btree: leaf keys/vals mismatch")
		}
		for i := range n.keys {
			k := n.keys[i]
			if i > 0 && n.keys[i-1] >= k {
				return fmt.Errorf("btree: unsorted leaf keys")
			}
			if lo != nil && k < *lo {
				return fmt.Errorf("btree: key %d below bound %d", k, *lo)
			}
			if hi != nil && k >= *hi {
				return fmt.Errorf("btree: key %d above bound %d", k, *hi)
			}
			if *last != nil && **last >= k {
				return fmt.Errorf("btree: leaf chain out of order")
			}
			kk := k
			*last = &kk
			*count++
		}
		return nil
	}
	if len(n.children) != len(n.keys)+1 {
		return fmt.Errorf("btree: interior fanout mismatch")
	}
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = &n.keys[i-1]
		}
		if i < len(n.keys) {
			chi = &n.keys[i]
		}
		if err := t.check(c, clo, chi, count, last); err != nil {
			return err
		}
	}
	return nil
}
