package core

import (
	"path/filepath"
	"testing"

	"repro/internal/pagestore"
	"repro/internal/xmltok"
)

func TestReopenRebuildsIndexes(t *testing.T) {
	pager := pagestore.NewMemPager(1024)
	s, err := Open(Config{Mode: RangeOnly, PageSize: 1024, Pager: pager})
	if err != nil {
		t.Fatal(err)
	}
	doc := buildFlatDoc(50)
	if _, err := s.Append(doc); err != nil {
		t.Fatal(err)
	}
	// Mutate so the store has interesting structure (splits, new ids).
	if _, err := s.InsertIntoLast(2, xmltok.MustParseFragment(`<inserted/>`)); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteNode(5); err != nil {
		t.Fatal(err)
	}
	want, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantStats := s.Stats()
	meta := s.MetaPage()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Reopen over the same pager in a different mode (indexes are derived
	// state, so the mode is free to change between sessions).
	s2, err := Reopen(Config{Mode: FullIndex, PageSize: 1024}, pager, meta)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("reopened store has %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d: %v, want %v", i, got[i], want[i])
		}
	}
	st := s2.Stats()
	if st.Nodes != wantStats.Nodes || st.Tokens != wantStats.Tokens || st.Ranges != wantStats.Ranges {
		t.Errorf("reopened stats %+v, want %+v", st, wantStats)
	}
	if uint64(st.FullIndexEntries) != st.Nodes {
		t.Errorf("full index not rebuilt: %d entries for %d nodes", st.FullIndexEntries, st.Nodes)
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Error(err)
	}

	// New ids must not collide with pre-reopen ids.
	preMax := NodeID(0)
	for _, it := range want {
		if it.ID > preMax {
			preMax = it.ID
		}
	}
	newID, err := s2.Append(xmltok.MustParse(`<post-reopen/>`))
	if err != nil {
		t.Fatal(err)
	}
	if newID <= preMax {
		t.Errorf("id %d reused (max existing %d)", newID, preMax)
	}
}

func TestFilePagerPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.db")
	pager, err := pagestore.OpenFilePager(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(Config{Mode: RangeOnly, PageSize: 2048, Pager: pager})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(figure1()); err != nil {
		t.Fatal(err)
	}
	meta := s.MetaPage()
	wantXML, _ := s.XMLString()
	if err := s.Close(); err != nil { // Close flushes
		t.Fatal(err)
	}

	pager2, err := pagestore.OpenFilePager(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Reopen(Config{Mode: RangePartial, PageSize: 2048}, pager2, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	gotXML, err := s2.XMLString()
	if err != nil {
		t.Fatal(err)
	}
	if gotXML != wantXML {
		t.Errorf("persisted %q, got %q", wantXML, gotXML)
	}
	// The reopened store accepts updates.
	if _, err := s2.InsertIntoLast(1, xmltok.MustParseFragment(`<minute>30</minute>`)); err != nil {
		t.Fatal(err)
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestIDsNeverReused(t *testing.T) {
	// Stable identifiers (desideratum 5): once assigned, an id is never
	// given to another node, even after deletion.
	s := openStore(t, Config{})
	id1, _ := s.Append(figure1())
	if err := s.DeleteNode(id1); err != nil {
		t.Fatal(err)
	}
	id2, _ := s.Append(figure1())
	if id2 <= id1 {
		t.Errorf("id %d reused after delete (previous %d)", id2, id1)
	}
}
