package core

import (
	"strings"
	"testing"

	"repro/internal/xmltok"
)

// buildFlatDoc makes a document with n record children under one root.
func buildFlatDoc(n int) []Token {
	var sb strings.Builder
	sb.WriteString("<all>")
	for i := 0; i < n; i++ {
		sb.WriteString("<rec><f>value</f></rec>")
	}
	sb.WriteString("</all>")
	return xmltok.MustParse(sb.String())
}

func TestPartialIndexLearnsLazily(t *testing.T) {
	s := openStore(t, Config{Mode: RangePartial, PartialCapacity: 100})
	s.Append(buildFlatDoc(200))

	st := s.Stats()
	if st.PartialEntries != 0 {
		t.Fatalf("partial index should start empty, has %d", st.PartialEntries)
	}

	// First read of a node: miss, then the location is memorized.
	id := NodeID(300)
	if _, err := s.ReadNode(id); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.PartialMisses == 0 {
		t.Error("first read should miss")
	}
	if st.PartialEntries == 0 {
		t.Error("lookup should deposit an entry")
	}
	scannedAfterFirst := st.TokensScanned

	// Second read of the same node: hit, far fewer tokens scanned.
	if _, err := s.ReadNode(id); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.PartialHits == 0 {
		t.Error("second read should hit")
	}
	extraScanned := st.TokensScanned - scannedAfterFirst
	// The subtree has 4 tokens; a cold locate would scan ~hundreds.
	if extraScanned > 10 {
		t.Errorf("second read scanned %d tokens; the hit should skip the range scan", extraScanned)
	}
}

func TestPartialIndexEviction(t *testing.T) {
	s := openStore(t, Config{Mode: RangePartial, PartialCapacity: 10})
	s.Append(buildFlatDoc(100))
	// Touch many more distinct nodes than the capacity.
	for id := NodeID(2); id < 80; id += 3 {
		if _, err := s.ReadNode(id); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.PartialEntries > 10 {
		t.Errorf("partial index exceeded capacity: %d", st.PartialEntries)
	}
	if st.PartialEvictions == 0 {
		t.Error("expected evictions")
	}
}

func TestPartialIndexInvalidationOnSplit(t *testing.T) {
	s := openStore(t, Config{Mode: RangePartial, PartialCapacity: 100})
	s.Append(buildFlatDoc(50))

	// Warm the entry for a node near the end of the single range.
	id := NodeID(100)
	if _, err := s.ReadNode(id); err != nil {
		t.Fatal(err)
	}
	preHits := s.Stats().PartialHits

	// Split the range before that node by inserting near the front.
	if _, err := s.InsertIntoFirst(1, xmltok.MustParseFragment(`<early/>`)); err != nil {
		t.Fatal(err)
	}

	// The stale entry must not be trusted; the read still returns correct
	// data via the range index.
	items, err := s.ReadNode(id)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].ID != id {
		t.Fatalf("wrong node returned after split: %v", items[0])
	}
	st := s.Stats()
	if st.PartialInvalidations == 0 {
		t.Error("expected a lazy invalidation")
	}
	if st.PartialHits != preHits {
		t.Error("stale entry counted as hit")
	}
	// And the fresh location is re-learned: next read hits.
	s.ReadNode(id)
	if s.Stats().PartialHits != preHits+1 {
		t.Error("relearned entry should hit")
	}
}

func TestPartialEndTokenCaching(t *testing.T) {
	// locateEnd across a long subtree is expensive; the partial index must
	// memorize the end location so InsertIntoLast on the same target gets
	// cheap — the paper's purchase-order pattern.
	s := openStore(t, Config{Mode: RangePartial, PartialCapacity: 100})
	s.Append(buildFlatDoc(300))

	frag := xmltok.MustParseFragment(`<po/>`)
	// Two warm-up ops: the first locates cold and splits the load range
	// (invalidating what it just learned); the second re-learns the final
	// positions.
	for i := 0; i < 2; i++ {
		if _, err := s.InsertIntoLast(1, frag); err != nil {
			t.Fatal(err)
		}
	}
	scannedWarm := s.Stats().TokensScanned
	for i := 0; i < 10; i++ {
		if _, err := s.InsertIntoLast(1, frag); err != nil {
			t.Fatal(err)
		}
	}
	scannedPerOp := (s.Stats().TokensScanned - scannedWarm) / 10
	if scannedPerOp > 5 {
		t.Errorf("repeated insertIntoLast scans %d tokens/op; end caching broken", scannedPerOp)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFullIndexExactLookups(t *testing.T) {
	s := openStore(t, Config{Mode: FullIndex})
	s.Append(buildFlatDoc(100))
	st := s.Stats()
	if uint64(st.FullIndexEntries) != st.Nodes {
		t.Fatalf("full index has %d entries for %d nodes", st.FullIndexEntries, st.Nodes)
	}
	// Lookups never scan the range.
	pre := s.Stats().TokensScanned
	for id := NodeID(1); id <= 100; id++ {
		if !s.Exists(id) {
			t.Fatalf("node %d missing", id)
		}
	}
	if got := s.Stats().TokensScanned - pre; got != 0 {
		t.Errorf("full-index lookups scanned %d tokens", got)
	}
}

func TestFullIndexMaintainedAcrossSplits(t *testing.T) {
	s := openStore(t, Config{Mode: FullIndex})
	s.Append(buildFlatDoc(50))
	// Repeated mid-document inserts split ranges; all old and new entries
	// must remain exact.
	for i := 0; i < 20; i++ {
		if _, err := s.InsertIntoLast(2, xmltok.MustParseFragment(`<x/>`)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if uint64(st.FullIndexEntries) != st.Nodes {
		t.Fatalf("full index has %d entries for %d nodes", st.FullIndexEntries, st.Nodes)
	}
	pre := s.Stats().TokensScanned
	for id := NodeID(1); id <= NodeID(st.Nodes); id++ {
		if _, err := s.ReadNode(id); err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
	}
	// ReadNode scans subtree bodies but locates begins without scanning.
	_ = pre
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCoalescingMergesRanges(t *testing.T) {
	// Coalescing can only merge ranges whose id intervals are contiguous
	// (otherwise id regeneration would change), so a granular bulk load —
	// whose chunk intervals abut — is where it pays off: a delete inside one
	// chunk lets the surviving pieces fuse with their untouched neighbours.
	cfg := Config{Mode: RangeOnly, MaxRangeTokens: 8, CoalesceBytes: 1 << 16}
	s := openStore(t, cfg)
	ref := newRefStore()
	doc := buildFlatDoc(30)
	s.Append(doc)
	ref.append(doc)

	noCoalesce := openStore(t, Config{Mode: RangeOnly, MaxRangeTokens: 8})
	noCoalesce.Append(doc)

	ids := ref.elementIDs()
	for i := 1; i < len(ids); i += 6 {
		if err := s.DeleteNode(ids[i]); err != nil {
			t.Fatal(err)
		}
		noCoalesce.DeleteNode(ids[i])
		ref.deleteNode(ids[i])
	}
	compareStores(t, s, ref, "after fragmenting deletes")
	st := s.Stats()
	if st.Merges == 0 {
		t.Error("expected coalescing to merge ranges")
	}
	if st.Ranges >= noCoalesce.Stats().Ranges {
		t.Errorf("coalescing store has %d ranges, plain has %d",
			st.Ranges, noCoalesce.Stats().Ranges)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestStatsBasics(t *testing.T) {
	s := openStore(t, Config{Mode: RangePartial})
	st := s.Stats()
	if st.Nodes != 0 || st.Ranges != 0 {
		t.Errorf("fresh stats: %+v", st)
	}
	s.Append(figure1())
	st = s.Stats()
	if st.Nodes != 5 || st.Tokens != 8 || st.Ranges != 1 || st.RangeIndexEntries != 1 {
		t.Errorf("stats after figure1: %+v", st)
	}
	if st.Inserts != 1 {
		t.Errorf("inserts = %d", st.Inserts)
	}
	if s.Mode() != RangePartial {
		t.Errorf("mode = %v", s.Mode())
	}
}

func TestModeString(t *testing.T) {
	if RangeOnly.String() != "range" || RangePartial.String() != "range+partial" ||
		FullIndex.String() != "full" {
		t.Error("mode strings wrong")
	}
	if IndexMode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}
