package core

import (
	"fmt"

	"repro/internal/pagestore"
)

// Range splitting — the mechanism that makes every XUpdate insert cheap
// (Section 4.2): a split touches exactly one range (two record writes) and
// one or two range-index entries, never one entry per node.

// splitRange cuts ri at pos (strictly inside the range), leaving the head
// tokens in ri and creating a new range for the tail. The tail inherits the
// ID subinterval [ri.start+pos.nodesBefore, ri.end()], which is contiguous
// because ids were assigned in token order. Returns the tail range.
func (s *Store) splitRange(ri *rangeInfo, pos tokenPos) (*rangeInfo, error) {
	if pos.ri != ri || pos.byteOff <= 0 || pos.byteOff >= ri.bytes {
		return nil, fmt.Errorf("core: splitRange at invalid position %d of %v", pos.byteOff, ri)
	}
	tokenBytes, err := s.readRange(ri)
	if err != nil {
		return nil, err
	}
	headBytes := tokenBytes[:pos.byteOff]
	tailBytes := tokenBytes[pos.byteOff:]

	oldNodes, oldToks, oldStart := ri.nodes, ri.toks, ri.start
	headNodes, headToks := pos.nodesBefore, pos.tokIdx
	tailNodes := oldNodes - headNodes
	tailToks := oldToks - headToks
	if tailNodes < 0 || tailToks <= 0 {
		return nil, fmt.Errorf("core: split accounting error (head %d/%d of %v)", headNodes, headToks, ri)
	}

	tail := &rangeInfo{
		id:    s.allocRangeID(),
		start: oldStart + NodeID(headNodes),
		nodes: tailNodes,
		toks:  tailToks,
		bytes: len(tailBytes),
	}

	// Rewrite the head first (a shrink, so ri never relocates and the page
	// gains room for the tail record).
	if headNodes == 0 && oldNodes > 0 {
		// The head keeps no ids: pull ri out of the interval index.
		s.rindex.Delete(uint64(oldStart))
	}
	ri.nodes = headNodes
	ri.toks = headToks
	s.bytes -= uint64(ri.bytes - len(headBytes))
	ri.bytes = len(headBytes)
	if err := s.writeRangeRecord(ri, headBytes); err != nil {
		return nil, err
	}

	// Insert the tail record right after the head.
	rec := encodeRangeRecord(tail.id, tail.start, tail.nodes, tail.toks, tailBytes)
	loc, moves, err := s.recs.InsertAfter(ri.loc, rec)
	if err != nil {
		return nil, err
	}
	s.applyMoves(moves)
	tail.loc = loc

	// Register the tail without re-counting node/token aggregates (they
	// merely moved between ranges); only the byte total changes.
	s.byRange[tail.id] = tail
	s.byLoc[tail.loc] = tail
	if tail.nodes > 0 {
		s.rindex.Set(uint64(tail.start), tail)
	}
	s.bytes += uint64(tail.bytes)

	// The full index must be told that the tail's nodes changed range and
	// offsets — the eager maintenance cost the paper measures.
	if s.full != nil {
		if err := s.full.rebase(tail.start, tail.nodes, tail.id, int32(pos.byteOff), int32(pos.tokIdx)); err != nil {
			return nil, err
		}
	}
	s.splits++
	return tail, nil
}

// insertNewRange creates a range for the encoded fragment and splices its
// record in immediately before the token position pos (splitting pos.ri when
// pos falls strictly inside it). Returns the new range.
func (s *Store) insertNewRange(pos tokenPos, start NodeID, nodes, toks int, tokenBytes []byte) (*rangeInfo, error) {
	nr := &rangeInfo{
		id:    s.allocRangeID(),
		start: start,
		nodes: nodes,
		toks:  toks,
		bytes: len(tokenBytes),
	}
	rec := encodeRangeRecord(nr.id, nr.start, nr.nodes, nr.toks, tokenBytes)

	var loc pagestore.Loc
	var moves []pagestore.Move
	var err error
	switch {
	case pos.byteOff == 0:
		loc, moves, err = s.recs.InsertBefore(pos.ri.loc, rec)
	case pos.atRangeEnd():
		loc, moves, err = s.recs.InsertAfter(pos.ri.loc, rec)
	default:
		if _, err := s.splitRange(pos.ri, pos); err != nil {
			return nil, err
		}
		loc, moves, err = s.recs.InsertAfter(pos.ri.loc, rec)
	}
	if err != nil {
		return nil, err
	}
	s.applyMoves(moves)
	nr.loc = loc
	s.byRange[nr.id] = nr
	s.byLoc[nr.loc] = nr
	if nr.nodes > 0 {
		s.rindex.Set(uint64(nr.start), nr)
	}
	s.nodes += uint64(nr.nodes)
	s.tokens += uint64(nr.toks)
	s.bytes += uint64(nr.bytes)
	if s.full != nil {
		if err := s.full.addFragment(nr, tokenBytes); err != nil {
			return nil, err
		}
	}
	return nr, nil
}
