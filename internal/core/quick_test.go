package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/token"
)

// fragValue wraps a generated well-formed fragment for testing/quick.
type fragValue struct{ toks []Token }

// Generate implements quick.Generator: always a well-formed fragment.
func (fragValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(fragValue{toks: randomFrag(r)})
}

// Property: appending any well-formed fragment stores it losslessly, with
// sequential ids assigned to node-starting tokens in document order — the
// idFactory regeneration invariant the whole design rests on.
func TestQuickAppendRegeneratesIDs(t *testing.T) {
	f := func(fv fragValue, granular bool) bool {
		cfg := Config{Mode: RangeOnly}
		if granular {
			cfg.MaxRangeTokens = 3
		}
		s, err := Open(cfg)
		if err != nil {
			return false
		}
		defer s.Close()
		if _, err := s.Append(fv.toks); err != nil {
			return false
		}
		items, err := s.ReadAll()
		if err != nil || len(items) != len(fv.toks) {
			return false
		}
		next := NodeID(1)
		for i, it := range items {
			if it.Tok != fv.toks[i] {
				return false
			}
			if it.Tok.StartsNode() {
				if it.ID != next {
					return false
				}
				next++
			} else if it.ID != InvalidNode {
				return false
			}
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: splitting via an insert at any node position, then deleting the
// inserted node, restores the original content (ids of survivors included).
func TestQuickInsertDeleteRoundTrip(t *testing.T) {
	f := func(fv fragValue, target uint8, intoLast bool) bool {
		s, err := Open(Config{Mode: RangePartial, PartialCapacity: 16})
		if err != nil {
			return false
		}
		defer s.Close()
		if _, err := s.Append(fv.toks); err != nil {
			return false
		}
		before, err := s.ReadAll()
		if err != nil {
			return false
		}
		nodes := token.NodeCount(fv.toks)
		id := NodeID(int(target)%nodes + 1)
		frag := []Token{token.Elem("probe"), token.EndElem()}
		var newID NodeID
		if intoLast {
			newID, err = s.InsertAfter(id, frag)
		} else {
			newID, err = s.InsertBefore(id, frag)
		}
		if err != nil {
			// Attribute targets legitimately reject sibling inserts.
			return err != nil && s.CheckInvariants() == nil
		}
		if err := s.DeleteNode(newID); err != nil {
			return false
		}
		after, err := s.ReadAll()
		if err != nil || len(after) != len(before) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
