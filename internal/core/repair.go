package core

import (
	"encoding/binary"
	"fmt"
	"os"

	"repro/internal/btree"
	"repro/internal/pagestore"
	recov "repro/internal/recover"
)

// rangeCodec teaches the recovery layer this store's record semantics: a
// payload is a range record, validated end to end by replaying its token
// stream and cross-checking the header counts — node ids are never stored,
// so a record whose tokens replay to the declared counts is fully usable.
type rangeCodec struct{}

func (rangeCodec) Inspect(payload []byte) (recov.RecordMeta, error) {
	id, start, nodes, toks, tokenBytes, err := decodeRangeHeader(payload)
	if err != nil {
		return recov.RecordMeta{}, err
	}
	gotNodes, gotToks, err := countNodesInPrefix(tokenBytes, len(tokenBytes))
	if err != nil {
		return recov.RecordMeta{}, fmt.Errorf("core: range %d: token stream: %w", id, err)
	}
	if gotNodes != nodes || gotToks != toks {
		return recov.RecordMeta{}, fmt.Errorf("core: range %d: header claims %d nodes/%d tokens, stream replays to %d/%d", id, nodes, toks, gotNodes, gotToks)
	}
	meta := recov.RecordMeta{ID: uint64(id)}
	if nodes > 0 {
		meta.Key = uint64(start)
		meta.Span = uint64(nodes)
	}
	return meta, nil
}

func (rangeCodec) DecodeAlloc(user []byte) (nextKey, nextID uint64, ok bool) {
	if len(user) < 12 {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(user[0:]), uint64(binary.LittleEndian.Uint32(user[8:])), true
}

func (rangeCodec) EncodeAlloc(nextKey, nextID uint64) []byte {
	out := make([]byte, 12)
	binary.LittleEndian.PutUint64(out[0:], nextKey)
	binary.LittleEndian.PutUint32(out[8:], uint32(nextID))
	return out
}

// RepairReport is the outcome of a salvage pass, plus whether a rebuild
// was written.
type RepairReport struct {
	recov.Result
	Applied bool `json:"applied"`
}

// SalvageScan runs the read-only salvage pass over a raw pager: every page
// classified, the surviving record chain reassembled, losses quantified.
// It is the page-level half of verification and the dry run of repair.
func SalvageScan(pager pagestore.Pager, metaPage pagestore.PageID) (*RepairReport, error) {
	res, err := recov.Salvage(pager, metaPage, rangeCodec{})
	if err != nil {
		return nil, err
	}
	return &RepairReport{Result: *res}, nil
}

// RepairPager salvages the store behind pager and, when apply is set and
// the store needs it, rebuilds: salvaged ranges are written as a fresh
// generation, the meta page switched over, and the old generation zeroed.
// With a WAL-backed pager the rebuild is one atomic batch.
func RepairPager(pager pagestore.Pager, metaPage pagestore.PageID, apply bool) (*RepairReport, error) {
	res, err := recov.Salvage(pager, metaPage, rangeCodec{})
	if err != nil {
		return nil, err
	}
	rep := &RepairReport{Result: *res}
	if apply && !res.Clean {
		if err := recov.Rebuild(pager, metaPage, res, rangeCodec{}); err != nil {
			return rep, err
		}
		rep.Applied = true
	}
	return rep, nil
}

// Repair runs salvage over this store's own pages. With apply set it
// rewrites the store from whatever survives and — if the rebuild succeeds
// — clears a read-only degradation latch: the store is consistent again,
// even if data quarantined by the scan is gone.
//
// On a healthy store Repair(true) is a no-op (the salvage pass reports
// Clean and nothing is written). On a degraded store the dirty in-memory
// state is discarded first; the durable on-disk image is the salvage
// source of truth.
func (s *Store) Repair(apply bool) (*RepairReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if apply && s.cfg.ReadOnly {
		return nil, fmt.Errorf("%w: cannot repair a store opened read-only", ErrReadOnly)
	}
	degraded, _ := s.ReadOnly()
	pager := s.pool.Pager()
	if degraded {
		// Drop suspect buffered state so salvage sees only durable pages.
		if d, ok := pager.(interface{ DiscardPending() }); ok {
			d.DiscardPending()
		}
	} else if !s.cfg.ReadOnly {
		// Healthy store: make the in-memory state durable first so salvage
		// scans current data rather than racing the buffer pool.
		if err := s.flushLocked(); err != nil {
			return nil, err
		}
	}
	rep, err := RepairPager(pager, s.recs.MetaPage(), apply)
	if err != nil {
		return rep, err
	}
	if apply && (rep.Applied || degraded) {
		if err := s.reloadLocked(); err != nil {
			return rep, fmt.Errorf("core: repair applied but reload failed: %w", err)
		}
		s.degradeMu.Lock()
		s.corrupt = nil
		s.degradeMu.Unlock()
	}
	return rep, nil
}

// reloadLocked rebuilds every piece of in-memory state from the (just
// repaired) pages, as Reopen would: fresh buffer pool over the same pager,
// record store reopened at the same meta page, indexes reconstructed.
func (s *Store) reloadLocked() error {
	pager := s.pool.Pager()
	metaPage := s.recs.MetaPage()
	pool := pagestore.NewBufferPool(pager, s.cfg.PoolPages)
	recs, err := pagestore.OpenRecordStore(pool, metaPage)
	if err != nil {
		return err
	}
	s.pool = pool
	s.recs = recs
	s.rindex = btree.New[*rangeInfo]()
	s.byRange = make(map[RangeID]*rangeInfo)
	s.byLoc = make(map[pagestore.Loc]*rangeInfo)
	s.partial = nil
	s.full = nil
	s.nodes, s.tokens, s.bytes = 0, 0, 0
	s.nextID = 1
	s.nextRange = 1
	if err := s.initIndexes(); err != nil {
		return err
	}
	return s.rebuild()
}

// BackupTo streams a consistent snapshot of the live store into a new page
// file at dest, plus a restore sidecar at dest+".meta". Writers are held
// off for the duration (the store lock is exclusive); the image is flushed
// and committed first, so the backup cuts exactly at the current state.
func (s *Store) BackupTo(dest string) (recov.BackupMeta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var meta recov.BackupMeta
	if s.closed {
		return meta, ErrClosed
	}
	if ro, cause := s.ReadOnly(); ro {
		return meta, fmt.Errorf("%w: store is degraded (%v); repair before taking a backup", ErrReadOnly, cause)
	}
	if !s.cfg.ReadOnly {
		if err := s.flushLocked(); err != nil {
			return meta, err
		}
	}
	pager := s.pool.Pager()
	f, err := os.OpenFile(dest, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return meta, err
	}
	pages, err := recov.BackupPager(pager, f)
	if err != nil {
		f.Close()
		os.Remove(dest)
		return meta, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(dest)
		return meta, err
	}
	if err := f.Close(); err != nil {
		os.Remove(dest)
		return meta, err
	}
	var lsn uint64
	if l, ok := pager.(interface{ LSN() uint64 }); ok {
		lsn = l.LSN()
	}
	// Only an archiving pager's LSN is stable across reopens and thus a
	// roll-forward point; a journal-only (or plain) pager restarts its
	// count each open, so its backups must not be segment-replay bases.
	archiving := false
	if a, ok := pager.(interface{ Archiving() bool }); ok {
		archiving = a.Archiving()
	}
	meta = recov.BackupMeta{
		PageSize:      pager.PageSize(),
		Pages:         pages,
		MetaPage:      uint32(s.recs.MetaPage()),
		LSN:           lsn,
		NoRollForward: !archiving,
	}
	if err := recov.WriteBackupMeta(dest, meta); err != nil {
		os.Remove(dest)
		return recov.BackupMeta{}, err
	}
	return meta, nil
}
