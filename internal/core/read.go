package core

import (
	"context"
	"fmt"
	"io"

	"repro/internal/token"
	"repro/internal/xmltok"
)

// Read operations of the Table 1 interface: read() streams the entire data
// source in document order; read(id) returns one node's subtree. Node
// identifiers are regenerated during the scan by replaying the ID factory
// from each range's start id — they are never read from storage.
//
// Every outermost entry point passes admission control (beginOp) before
// taking the store lock and observes the operation context at page-fetch
// boundaries. Composite helpers (ReadAll, Tokens, WriteXML, ...) chain one
// gated call and add no gate of their own.

// Scan streams every token of the store in document order, with regenerated
// node ids. fn returning false stops the scan. A checksum failure surfaced
// by the scan degrades the store to read-only.
func (s *Store) Scan(fn func(Item) bool) error {
	return s.ScanCtx(context.Background(), fn)
}

// ScanCtx is Scan with cooperative cancellation and admission control: the
// context (plus the configured OpTimeout) is checked at every range fetch,
// so a deadline cuts a long scan short with context.DeadlineExceeded.
func (s *Store) ScanCtx(ctx context.Context, fn func(Item) bool) (err error) {
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return err
	}
	defer finish()
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.latchCorrupt(&err)
	if s.closed {
		return ErrClosed
	}
	sc := getScratch()
	defer putScratch(sc)
	ri, ok, err := s.firstRange()
	if err != nil || !ok {
		return err
	}
	for {
		tokenBytes, err := s.readRangeCtx(ctx, ri, sc)
		if err != nil {
			return err
		}
		r := newTokenReader(tokenBytes)
		cur := ri.start
		for r.More() {
			t, err := r.Next()
			if err != nil {
				return err
			}
			it := Item{Tok: t}
			if t.StartsNode() {
				it.ID = cur
				cur++
			}
			if !fn(it) {
				return nil
			}
		}
		nri, ok, err := s.nextRangeInfoCtx(ctx, ri)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		ri = nri
	}
}

// ReadAll materializes the full token sequence with ids.
func (s *Store) ReadAll() ([]Item, error) {
	return s.ReadAllCtx(context.Background())
}

// ReadAllCtx is ReadAll under a context.
func (s *Store) ReadAllCtx(ctx context.Context) ([]Item, error) {
	var out []Item
	err := s.ScanCtx(ctx, func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out, err
}

// Tokens returns the full token sequence without ids.
func (s *Store) Tokens() ([]Token, error) {
	var out []Token
	err := s.Scan(func(it Item) bool {
		out = append(out, it.Tok)
		return true
	})
	return out, err
}

// ScanNode streams the subtree of node id (begin through matching end) with
// regenerated ids. fn returning false stops early.
func (s *Store) ScanNode(id NodeID, fn func(Item) bool) error {
	return s.ScanNodeCtx(context.Background(), id, fn)
}

// ScanNodeCtx is ScanNode with cooperative cancellation and admission
// control.
//
// Readers share the lock: locate's writes (partial index, checkpoint table,
// scan counters) all go to internally-synchronized structures.
func (s *Store) ScanNodeCtx(ctx context.Context, id NodeID, fn func(Item) bool) (err error) {
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return err
	}
	defer finish()
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.latchCorrupt(&err)
	if s.closed {
		return ErrClosed
	}
	sc := getScratch()
	defer putScratch(sc)
	return s.scanNodeLocked(ctx, id, fn, sc)
}

func (s *Store) scanNodeLocked(ctx context.Context, id NodeID, fn func(Item) bool, sc *scratch) error {
	// Warm fast path: when the partial index knows both the begin and end
	// token positions within one range, read exactly that byte span — the
	// paper's "jump to the end of the given node" behaviour, with no range
	// scan and no whole-record copy.
	if s.partial != nil {
		if e, ok := s.partial.lookup(id); ok && e.hasEnd && e.endLen > 0 &&
			e.beginRange == e.endRange {
			ri := s.byRange[e.beginRange]
			if ri != nil && ri.version == e.beginVer && ri.version == e.endVer {
				s.nodeLookups.Add(1)
				s.partial.hit()
				span := int(e.endByte + e.endLen - e.beginByte)
				buf, err := s.recs.ReadSlice(ri.loc, rangeHeaderSize+int(e.beginByte), span)
				if err != nil {
					return err
				}
				r := newTokenReader(buf)
				cur := id
				depth := 0
				for r.More() {
					t, err := r.Next()
					if err != nil {
						return err
					}
					it := Item{Tok: t}
					if t.StartsNode() {
						it.ID = cur
						cur++
					}
					if t.IsBegin() {
						depth++
					} else if t.IsEnd() {
						depth--
					}
					if !fn(it) {
						return nil
					}
					if depth == 0 && t.IsEnd() {
						return nil
					}
				}
				return nil
			}
		}
	}
	begin, beginTok, tokenBytes, err := s.locateBegin(ctx, id, sc)
	if err != nil {
		return err
	}
	if !fn(Item{ID: id, Tok: beginTok}) {
		return nil
	}
	if !beginTok.IsBegin() {
		// Leaf node: the begin token is the whole subtree. Memorize it as
		// its own end so repeated reads take the warm fast path.
		if s.partial != nil {
			s.partial.recordEnd(id, begin.ri.id, begin.ri.version, begin.byteOff, begin.tokIdx,
				int32(begin.nodesBefore), int32(token.EncodedSize(beginTok)))
		}
		return nil
	}
	ri := begin.ri
	r := newTokenReader(tokenBytes)
	r.SetOffset(begin.byteOff)
	if _, err := r.Skip(); err != nil { // past the begin token
		return err
	}
	cur := id + 1
	depth := 1
	tokIdx := begin.tokIdx + 1
	nodesSeen := begin.nodesBefore + 1 // the begin token started a node
	scanned := uint64(0)
	defer func() { s.tokensScanned.Add(scanned) }()
	for {
		for r.More() {
			if scanned%locateCheckTokens == locateCheckTokens-1 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			off := r.Offset()
			t, err := r.Next()
			if err != nil {
				return err
			}
			scanned++
			it := Item{Tok: t}
			if t.StartsNode() {
				it.ID = cur
				cur++
				nodesSeen++
			}
			if t.IsBegin() {
				depth++
			} else if t.IsEnd() {
				depth--
			}
			if !fn(it) {
				return nil
			}
			if depth == 0 {
				// The subtree's end token: memorize its position so the
				// next read of this node takes the warm fast path.
				if s.partial != nil {
					s.partial.recordEnd(id, ri.id, ri.version, off, tokIdx,
						int32(nodesSeen), int32(r.Offset()-off))
				}
				return nil
			}
			tokIdx++
		}
		nri, ok, err := s.nextRangeInfoCtx(ctx, ri)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("core: unbalanced store: node %d has no end token", id)
		}
		ri = nri
		tokenBytes, err = s.readRangeCtx(ctx, ri, sc)
		if err != nil {
			return err
		}
		r = newTokenReader(tokenBytes)
		cur = ri.start
		tokIdx = 0
		nodesSeen = 0
	}
}

// ScanRawCtx streams every token of the store in document order as raw
// encoded bytes, with regenerated node ids (InvalidNode for tokens that do
// not start a node). It is the zero-allocation substrate of the pushed-down
// query executor: no Token structs are materialized and no strings are
// copied — use token.View inside fn to inspect names and values in place.
// The raw slice is only valid for the duration of the callback. fn returning
// false stops the scan.
func (s *Store) ScanRawCtx(ctx context.Context, fn func(id NodeID, raw []byte) bool) (err error) {
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return err
	}
	defer finish()
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.latchCorrupt(&err)
	if s.closed {
		return ErrClosed
	}
	sc := getScratch()
	defer putScratch(sc)
	ri, ok, err := s.firstRange()
	if err != nil || !ok {
		return err
	}
	scanned := uint64(0)
	defer func() { s.tokensScanned.Add(scanned) }()
	for {
		tokenBytes, err := s.readRangeCtx(ctx, ri, sc)
		if err != nil {
			return err
		}
		cur := ri.start
		off := 0
		for off < len(tokenBytes) {
			if scanned%locateCheckTokens == locateCheckTokens-1 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			size, err := token.Size(tokenBytes[off:])
			if err != nil {
				return err
			}
			scanned++
			id := InvalidNode
			if token.Kind(tokenBytes[off]).StartsNode() {
				id = cur
				cur++
			}
			if !fn(id, tokenBytes[off:off+size]) {
				return nil
			}
			off += size
		}
		nri, ok, err := s.nextRangeInfoCtx(ctx, ri)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		ri = nri
	}
}

// ScanNodeRawCtx streams the subtree of node id (begin through matching end)
// as raw encoded tokens, with the same contract as ScanRawCtx. It keeps
// ScanNode's warm partial-index fast path and end-position memorization.
func (s *Store) ScanNodeRawCtx(ctx context.Context, id NodeID, fn func(id NodeID, raw []byte) bool) (err error) {
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return err
	}
	defer finish()
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.latchCorrupt(&err)
	if s.closed {
		return ErrClosed
	}
	sc := getScratch()
	defer putScratch(sc)
	return s.scanNodeRawLocked(ctx, id, fn, sc)
}

func (s *Store) scanNodeRawLocked(ctx context.Context, id NodeID, fn func(id NodeID, raw []byte) bool, sc *scratch) error {
	// Warm fast path mirrors scanNodeLocked: both token positions known and
	// in one range — read exactly the subtree's byte span.
	if s.partial != nil {
		if e, ok := s.partial.lookup(id); ok && e.hasEnd && e.endLen > 0 &&
			e.beginRange == e.endRange {
			ri := s.byRange[e.beginRange]
			if ri != nil && ri.version == e.beginVer && ri.version == e.endVer {
				s.nodeLookups.Add(1)
				s.partial.hit()
				span := int(e.endByte + e.endLen - e.beginByte)
				buf, err := s.recs.ReadSlice(ri.loc, rangeHeaderSize+int(e.beginByte), span)
				if err != nil {
					return err
				}
				cur := id
				depth := 0
				off := 0
				for off < len(buf) {
					size, err := token.Size(buf[off:])
					if err != nil {
						return err
					}
					k := token.Kind(buf[off])
					nid := InvalidNode
					if k.StartsNode() {
						nid = cur
						cur++
					}
					if k.IsBegin() {
						depth++
					} else if k.IsEnd() {
						depth--
					}
					if !fn(nid, buf[off:off+size]) {
						return nil
					}
					if depth == 0 && k.IsEnd() {
						return nil
					}
					off += size
				}
				return nil
			}
		}
	}
	begin, beginTok, tokenBytes, err := s.locateBegin(ctx, id, sc)
	if err != nil {
		return err
	}
	beginSize, err := token.Size(tokenBytes[begin.byteOff:])
	if err != nil {
		return err
	}
	if !fn(id, tokenBytes[begin.byteOff:begin.byteOff+beginSize]) {
		return nil
	}
	if !beginTok.IsBegin() {
		// Leaf node: memorize it as its own end (see scanNodeLocked).
		if s.partial != nil {
			s.partial.recordEnd(id, begin.ri.id, begin.ri.version, begin.byteOff, begin.tokIdx,
				int32(begin.nodesBefore), int32(beginSize))
		}
		return nil
	}
	ri := begin.ri
	off := begin.byteOff + beginSize
	cur := id + 1
	depth := 1
	tokIdx := begin.tokIdx + 1
	nodesSeen := begin.nodesBefore + 1
	scanned := uint64(0)
	defer func() { s.tokensScanned.Add(scanned) }()
	for {
		for off < len(tokenBytes) {
			if scanned%locateCheckTokens == locateCheckTokens-1 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			size, err := token.Size(tokenBytes[off:])
			if err != nil {
				return err
			}
			scanned++
			k := token.Kind(tokenBytes[off])
			nid := InvalidNode
			if k.StartsNode() {
				nid = cur
				cur++
				nodesSeen++
			}
			if k.IsBegin() {
				depth++
			} else if k.IsEnd() {
				depth--
			}
			if !fn(nid, tokenBytes[off:off+size]) {
				return nil
			}
			if depth == 0 {
				if s.partial != nil {
					s.partial.recordEnd(id, ri.id, ri.version, off, tokIdx,
						int32(nodesSeen), int32(size))
				}
				return nil
			}
			tokIdx++
			off += size
		}
		nri, ok, err := s.nextRangeInfoCtx(ctx, ri)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("core: unbalanced store: node %d has no end token", id)
		}
		ri = nri
		tokenBytes, err = s.readRangeCtx(ctx, ri, sc)
		if err != nil {
			return err
		}
		off = 0
		cur = ri.start
		tokIdx = 0
		nodesSeen = 0
	}
}

// ReadNode returns the subtree of node id as items with regenerated ids.
func (s *Store) ReadNode(id NodeID) ([]Item, error) {
	return s.ReadNodeCtx(context.Background(), id)
}

// ReadNodeCtx is ReadNode under a context.
func (s *Store) ReadNodeCtx(ctx context.Context, id NodeID) ([]Item, error) {
	var out []Item
	err := s.ScanNodeCtx(ctx, id, func(it Item) bool {
		out = append(out, it)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// NodeTokens returns the subtree of node id as a plain token slice.
func (s *Store) NodeTokens(id NodeID) ([]Token, error) {
	items, err := s.ReadNode(id)
	if err != nil {
		return nil, err
	}
	out := make([]Token, len(items))
	for i, it := range items {
		out[i] = it.Tok
	}
	return out, nil
}

// Exists reports whether node id is present. This is a pure index lookup
// under the shared lock: every id inside a live range's interval
// [start, start+nodes) is live (deletes shrink or split intervals, never
// leave holes), so an interval-containment check answers the question
// without reading a single token. It never queues behind admission control.
func (s *Store) Exists(id NodeID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false
	}
	s.nodeLookups.Add(1)
	_, ri, ok := s.rindex.Floor(uint64(id))
	return ok && ri.contains(id)
}

// FirstNodeID returns the id of the first node in document order.
func (s *Store) FirstNodeID() (NodeID, bool, error) {
	return s.FirstNodeIDCtx(context.Background())
}

// FirstNodeIDCtx is FirstNodeID under a context.
func (s *Store) FirstNodeIDCtx(ctx context.Context) (NodeID, bool, error) {
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return InvalidNode, false, err
	}
	defer finish()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return InvalidNode, false, ErrClosed
	}
	ri, ok, err := s.firstRange()
	if err != nil || !ok {
		return InvalidNode, false, err
	}
	for {
		if ri.nodes > 0 {
			return ri.start, true, nil
		}
		nri, ok, err := s.nextRangeInfoCtx(ctx, ri)
		if err != nil || !ok {
			return InvalidNode, false, err
		}
		ri = nri
	}
}

// WriteXML serializes the whole store as XML text.
func (s *Store) WriteXML(w io.Writer) error {
	ser := xmltok.NewSerializer(w)
	err := s.Scan(func(it Item) bool {
		return ser.Write(it.Tok) == nil
	})
	if err != nil {
		return err
	}
	return ser.Flush()
}

// XMLString renders the whole store as an XML string.
func (s *Store) XMLString() (string, error) {
	toks, err := s.Tokens()
	if err != nil {
		return "", err
	}
	return xmltok.ToString(toks)
}

// NodeXMLString renders one node's subtree as an XML string. Attribute
// nodes, which have no standalone XML form, render as name="value".
func (s *Store) NodeXMLString(id NodeID) (string, error) {
	toks, err := s.NodeTokens(id)
	if err != nil {
		return "", err
	}
	if len(toks) > 0 && toks[0].Kind == token.BeginAttribute {
		return fmt.Sprintf("%s=%q", toks[0].Name, toks[0].Value), nil
	}
	return xmltok.ToString(toks)
}

// CheckInvariants validates cross-structure consistency: every range record
// agrees with its descriptor, id intervals are disjoint, document order is
// well-formed, and the aggregate counters add up. Tests lean on this. It is
// a diagnostic and bypasses admission control.
func (s *Store) CheckInvariants() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.checkInvariantsLocked()
}

func (s *Store) checkInvariantsLocked() error {
	var nodes, toks, bytes uint64
	ranges := 0
	seen := map[RangeID]bool{}
	var stack []token.Kind

	ri, ok, err := s.firstRange()
	if err != nil {
		return err
	}
	for ok {
		ranges++
		if seen[ri.id] {
			return fmt.Errorf("core: range %d appears twice in chain", ri.id)
		}
		seen[ri.id] = true
		if s.byRange[ri.id] != ri {
			return fmt.Errorf("core: byRange[%d] does not match chain entry", ri.id)
		}
		if s.byLoc[ri.loc] != ri {
			return fmt.Errorf("core: byLoc[%v] does not match chain entry", ri.loc)
		}
		tokenBytes, err := s.readRange(ri)
		if err != nil {
			return err
		}
		if len(tokenBytes) != ri.bytes {
			return fmt.Errorf("core: %v: record has %d bytes, descriptor %d", ri, len(tokenBytes), ri.bytes)
		}
		n, tk, err := countNodesInPrefix(tokenBytes, len(tokenBytes))
		if err != nil {
			return err
		}
		if n != ri.nodes || tk != ri.toks {
			return fmt.Errorf("core: %v: record has %d nodes/%d toks, descriptor %d/%d", ri, n, tk, ri.nodes, ri.toks)
		}
		if ri.nodes > 0 {
			got, ok := s.rindex.Get(uint64(ri.start))
			if !ok || got != ri {
				return fmt.Errorf("core: %v missing from range index", ri)
			}
		}
		// Token nesting across the whole sequence must balance.
		r := newTokenReader(tokenBytes)
		for r.More() {
			t, err := r.Next()
			if err != nil {
				return err
			}
			if t.IsBegin() {
				stack = append(stack, t.MatchingEnd())
			} else if t.IsEnd() {
				if len(stack) == 0 || stack[len(stack)-1] != t.Kind {
					return fmt.Errorf("core: %v: unbalanced token %s", ri, t.Kind)
				}
				stack = stack[:len(stack)-1]
			}
		}
		nodes += uint64(ri.nodes)
		toks += uint64(ri.toks)
		bytes += uint64(ri.bytes)
		ri, ok, err = func() (*rangeInfo, bool, error) { return s.nextRangeInfo(ri) }()
		if err != nil {
			return err
		}
	}
	if len(stack) != 0 {
		return fmt.Errorf("core: %d unclosed begin tokens at end of sequence", len(stack))
	}
	if ranges != len(s.byRange) {
		return fmt.Errorf("core: chain has %d ranges, byRange has %d", ranges, len(s.byRange))
	}
	if nodes != s.nodes || toks != s.tokens || bytes != s.bytes {
		return fmt.Errorf("core: counters nodes/toks/bytes %d/%d/%d, actual %d/%d/%d",
			s.nodes, s.tokens, s.bytes, nodes, toks, bytes)
	}
	// Interval disjointness: ascend the range index and check ordering by
	// start id with no overlap.
	var lastEnd uint64
	var bad error
	first := true
	s.rindex.AscendAll(func(k uint64, ri *rangeInfo) bool {
		if ri.nodes <= 0 {
			bad = fmt.Errorf("core: id-less range %v in range index", ri)
			return false
		}
		if uint64(ri.start) != k {
			bad = fmt.Errorf("core: range index key %d for %v", k, ri)
			return false
		}
		if !first && k <= lastEnd {
			bad = fmt.Errorf("core: overlapping intervals at %v", ri)
			return false
		}
		lastEnd = uint64(ri.end())
		first = false
		return true
	})
	if bad != nil {
		return bad
	}
	if err := s.recs.CheckInvariants(); err != nil {
		return err
	}
	return nil
}
