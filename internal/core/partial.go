package core

import "container/list"

// The partial (lazy) index — Section 5 of the paper.
//
// It is "a combination between a real index and a cache": every successful
// locate of a node's begin or end token deposits the exact (range, byte
// offset, token index) here, so a repeated lookup of the same logical
// position skips the range scan entirely. Capacity is bounded with LRU
// eviction, and entries invalidate lazily: each entry remembers the version
// of the range it points into, and a version mismatch (the range was split,
// merged, rewritten or deleted) makes the entry a miss. Nothing is updated
// eagerly — laziness all the way down.

// partialEntry caches the location of a node's begin token and, when known,
// its matching end token.
type partialEntry struct {
	id NodeID

	beginRange RangeID
	beginVer   uint32
	beginByte  int32
	beginTok   int32

	hasEnd         bool
	endRange       RangeID
	endVer         uint32
	endByte        int32
	endTok         int32
	endNodesBefore int32 // node-start tokens before the end token in its range
	endLen         int32 // encoded length of the end token

	// Structural extension (paper §9): parent links are stable for the
	// lifetime of a node, so no version stamp is needed.
	hasParent bool
	parentID  NodeID

	elem *list.Element
}

type partialStats struct {
	hits          uint64
	misses        uint64
	evictions     uint64
	invalidations uint64
}

type partialIndex struct {
	capacity int
	entries  map[NodeID]*partialEntry
	lru      *list.List // front = least recently used
	stats    partialStats
}

func newPartialIndex(capacity int) *partialIndex {
	if capacity <= 0 {
		capacity = 1
	}
	return &partialIndex{
		capacity: capacity,
		entries:  make(map[NodeID]*partialEntry, capacity),
		lru:      list.New(),
	}
}

func (px *partialIndex) len() int { return len(px.entries) }

// touch moves e to the most-recently-used position.
func (px *partialIndex) touch(e *partialEntry) {
	px.lru.MoveToBack(e.elem)
}

// lookup returns the entry for id if present (without validity checking —
// the store validates versions since it owns the range table).
func (px *partialIndex) lookup(id NodeID) *partialEntry {
	e, ok := px.entries[id]
	if !ok {
		return nil
	}
	px.touch(e)
	return e
}

// drop removes a (stale) entry.
func (px *partialIndex) drop(e *partialEntry) {
	px.lru.Remove(e.elem)
	delete(px.entries, e.id)
	px.stats.invalidations++
}

// recordBegin memorizes the begin-token location of id.
func (px *partialIndex) recordBegin(id NodeID, rng RangeID, ver uint32, byteOff, tokIdx int) *partialEntry {
	e := px.ensure(id)
	e.beginRange, e.beginVer = rng, ver
	e.beginByte, e.beginTok = int32(byteOff), int32(tokIdx)
	return e
}

// recordEnd memorizes the end-token location of id.
func (px *partialIndex) recordEnd(id NodeID, rng RangeID, ver uint32, byteOff, tokIdx int) *partialEntry {
	e := px.ensure(id)
	e.hasEnd = true
	e.endRange, e.endVer = rng, ver
	e.endByte, e.endTok = int32(byteOff), int32(tokIdx)
	return e
}

func (px *partialIndex) ensure(id NodeID) *partialEntry {
	if e, ok := px.entries[id]; ok {
		px.touch(e)
		return e
	}
	if len(px.entries) >= px.capacity {
		victim := px.lru.Front()
		if victim != nil {
			v := victim.Value.(*partialEntry)
			px.lru.Remove(victim)
			delete(px.entries, v.id)
			px.stats.evictions++
		}
	}
	e := &partialEntry{id: id}
	e.elem = px.lru.PushBack(e)
	px.entries[id] = e
	return e
}

// removeNode forgets id entirely (used when the node is deleted).
func (px *partialIndex) removeNode(id NodeID) {
	if e, ok := px.entries[id]; ok {
		px.lru.Remove(e.elem)
		delete(px.entries, id)
	}
}

// reset clears all entries (bulk operations).
func (px *partialIndex) reset() {
	px.entries = make(map[NodeID]*partialEntry, px.capacity)
	px.lru.Init()
}
