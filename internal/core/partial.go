package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/budget"
)

// The partial (lazy) index — Section 5 of the paper.
//
// It is "a combination between a real index and a cache": every successful
// locate of a node's begin or end token deposits the exact (range, byte
// offset, token index) here, so a repeated lookup of the same logical
// position skips the range scan entirely. Capacity is bounded with LRU
// eviction, and entries invalidate lazily: each entry remembers the version
// of the range it points into, and a version mismatch (the range was split,
// merged, rewritten or deleted) makes the entry a miss. Nothing is updated
// eagerly — laziness all the way down.
//
// The index is safe for concurrent use: entries are lock-striped by node id
// (each shard its own map and RWMutex) so lazy insertions from readers
// holding the store's shared lock contend only per stripe, and the counters
// are atomic. Lookups — the hot path of every warm read — take only the
// shard read lock and record recency with one atomic stamp; recency is
// therefore approximate under concurrency (and exact under serial access),
// and eviction scans the small shard for the oldest stamp. Lookups copy the
// entry out under the read lock — callers never hold pointers into a shard.

// partialEntry caches the location of a node's begin token and, when known,
// its matching end token. Callers receive copies; the canonical entry lives
// inside a shard.
type partialEntry struct {
	id NodeID

	beginRange RangeID
	beginVer   uint32
	beginByte  int32
	beginTok   int32

	hasEnd         bool
	endRange       RangeID
	endVer         uint32
	endByte        int32
	endTok         int32
	endNodesBefore int32 // node-start tokens before the end token in its range
	endLen         int32 // encoded length of the end token

	// Structural extension (paper §9): parent links are stable for the
	// lifetime of a node, so no version stamp is needed beyond the begin
	// validity gate.
	hasParent bool
	parentID  NodeID
}

// boxedEntry is the shard-resident form: the entry plus its recency stamp.
type boxedEntry struct {
	partialEntry
	used atomic.Uint64 // last-use stamp from the index clock
}

type partialStats struct {
	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
}

// Shard geometry: stay single-sharded for the small capacities tests pin
// exact LRU behavior on; stripe up to 16 ways for production capacities.
const (
	maxPartialShards      = 16
	partialShardThreshold = 64
)

type partialShard struct {
	mu       sync.RWMutex
	capacity int
	entries  map[NodeID]*boxedEntry
}

type partialIndex struct {
	shards []*partialShard
	clock  atomic.Uint64 // recency stamps
	stats  partialStats
	budget *budget.Budget // nil = unaccounted
}

// partialEntryCost approximates one resident entry's bytes for budget
// accounting: the boxed entry plus its map slot and LRU element.
const partialEntryCost = 192

func newPartialIndex(capacity int, b *budget.Budget) *partialIndex {
	if capacity <= 0 {
		capacity = 1
	}
	nshards := capacity / partialShardThreshold
	if nshards > maxPartialShards {
		nshards = maxPartialShards
	}
	if nshards < 1 {
		nshards = 1
	}
	px := &partialIndex{shards: make([]*partialShard, nshards), budget: b}
	per := capacity / nshards
	for i := range px.shards {
		px.shards[i] = &partialShard{
			capacity: per,
			entries:  make(map[NodeID]*boxedEntry, per),
		}
	}
	return px
}

// shedForBudget drops LRU entries while the partial index is over its budget
// share. Called after the caller released its shard lock; takes each shard
// lock in turn.
func (px *partialIndex) shedForBudget() {
	b := px.budget
	if b == nil || !b.NeedEvict(budget.Partial) {
		return
	}
	excess := b.Excess(budget.Partial)
	for _, sh := range px.shards {
		if excess <= 0 {
			return
		}
		sh.mu.Lock()
		for excess > 0 {
			v := oldestLocked(sh)
			if v == nil {
				break
			}
			delete(sh.entries, v.id)
			b.Discharge(budget.Partial, partialEntryCost)
			b.NoteEviction(budget.Partial)
			excess -= partialEntryCost
		}
		sh.mu.Unlock()
	}
}

func (px *partialIndex) shard(id NodeID) *partialShard {
	if len(px.shards) == 1 {
		return px.shards[0]
	}
	h := uint64(id) * 0x9e3779b97f4a7c15
	return px.shards[h>>59%uint64(len(px.shards))]
}

func (px *partialIndex) len() int {
	n := 0
	for _, sh := range px.shards {
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// oldestLocked returns the shard entry with the oldest recency stamp (the
// eviction victim). Caller holds sh.mu exclusively. Shards are small (a few
// dozen to a few hundred entries), so the scan is cheaper than maintaining a
// recency list would make every lookup.
func oldestLocked(sh *partialShard) *boxedEntry {
	var victim *boxedEntry
	var oldest uint64
	for _, b := range sh.entries {
		if u := b.used.Load(); victim == nil || u < oldest {
			victim, oldest = b, u
		}
	}
	return victim
}

func (px *partialIndex) hit()  { px.stats.hits.Add(1) }
func (px *partialIndex) miss() { px.stats.misses.Add(1) }

// lookup returns a copy of the entry for id if present (without validity
// checking — the store validates versions since it owns the range table).
// Read-locked: mutators hold the exclusive lock, so the copy is consistent,
// and the recency stamp is atomic.
func (px *partialIndex) lookup(id NodeID) (partialEntry, bool) {
	sh := px.shard(id)
	sh.mu.RLock()
	b, ok := sh.entries[id]
	var e partialEntry
	if ok {
		e = b.partialEntry
	}
	sh.mu.RUnlock()
	if !ok {
		return partialEntry{}, false
	}
	b.used.Store(px.clock.Add(1))
	return e, true
}

// dropStale removes the entry for id if its begin stamp still matches the
// stale copy the caller observed. A concurrent reader may have re-learned a
// fresh location in the meantime; that entry survives.
func (px *partialIndex) dropStale(stale partialEntry) {
	sh := px.shard(stale.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b, ok := sh.entries[stale.id]
	if !ok || b.beginRange != stale.beginRange || b.beginVer != stale.beginVer {
		return
	}
	delete(sh.entries, stale.id)
	px.budget.Discharge(budget.Partial, partialEntryCost)
	px.stats.invalidations.Add(1)
}

// ensureLocked returns the boxed entry for id, creating (and LRU-evicting)
// as needed. Caller holds sh.mu.
func (px *partialIndex) ensureLocked(sh *partialShard, id NodeID) *boxedEntry {
	if b, ok := sh.entries[id]; ok {
		b.used.Store(px.clock.Add(1))
		return b
	}
	if len(sh.entries) >= sh.capacity {
		if v := oldestLocked(sh); v != nil {
			delete(sh.entries, v.id)
			px.budget.Discharge(budget.Partial, partialEntryCost)
			px.stats.evictions.Add(1)
		}
	}
	b := &boxedEntry{}
	b.id = id
	b.used.Store(px.clock.Add(1))
	sh.entries[id] = b
	px.budget.Charge(budget.Partial, partialEntryCost)
	return b
}

// recordBegin memorizes the begin-token location of id.
func (px *partialIndex) recordBegin(id NodeID, rng RangeID, ver uint32, byteOff, tokIdx int) {
	defer px.shedForBudget() // after the shard lock is released
	sh := px.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := px.ensureLocked(sh, id)
	b.beginRange, b.beginVer = rng, ver
	b.beginByte, b.beginTok = int32(byteOff), int32(tokIdx)
}

// recordEnd memorizes the end-token location of id, with the node-start
// count before the end token and the end token's encoded length (the warm
// fast path of ScanNode needs both).
func (px *partialIndex) recordEnd(id NodeID, rng RangeID, ver uint32, byteOff, tokIdx int, nodesBefore, endLen int32) {
	defer px.shedForBudget() // after the shard lock is released
	sh := px.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := px.ensureLocked(sh, id)
	b.hasEnd = true
	b.endRange, b.endVer = rng, ver
	b.endByte, b.endTok = int32(byteOff), int32(tokIdx)
	b.endNodesBefore = nodesBefore
	b.endLen = endLen
}

// setParent memorizes the (stable) parent link of id.
func (px *partialIndex) setParent(id, parent NodeID) {
	defer px.shedForBudget() // after the shard lock is released
	sh := px.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := px.ensureLocked(sh, id)
	b.hasParent = true
	b.parentID = parent
}

// removeNode forgets id entirely (used when the node is deleted).
func (px *partialIndex) removeNode(id NodeID) {
	sh := px.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.entries[id]; ok {
		delete(sh.entries, id)
		px.budget.Discharge(budget.Partial, partialEntryCost)
	}
}

// reset clears all entries (bulk operations).
func (px *partialIndex) reset() {
	for _, sh := range px.shards {
		sh.mu.Lock()
		px.budget.Discharge(budget.Partial, int64(len(sh.entries))*partialEntryCost)
		sh.entries = make(map[NodeID]*boxedEntry, sh.capacity)
		sh.mu.Unlock()
	}
}
