package core

import "fmt"

// Span deletion. A deleted subtree occupies a contiguous run of tokens in
// document order, but not a contiguous run of node ids (descendants inserted
// later carry ids from other allocations). The token run is removed by
// normalizing its ends to range boundaries with at most two splits and then
// dropping whole ranges — each surviving range still covers a contiguous id
// interval.

// deleteSpan removes the tokens in [begin, endAfter) and returns the
// position where the span used to be (for replace operations). The returned
// position has ri == nil when the store became empty.
func (s *Store) deleteSpan(begin, endAfter tokenPos) (tokenPos, error) {
	if begin.ri == endAfter.ri && begin.byteOff == endAfter.byteOff {
		return begin, nil // empty span
	}

	// Normalize the right edge: after this, the span ends exactly at a
	// range boundary and `survivor` is the range that starts there (nil at
	// end of store).
	var survivor *rangeInfo
	switch {
	case endAfter.byteOff == 0:
		survivor = endAfter.ri
	case endAfter.atRangeEnd():
		nxt, ok, err := s.nextRangeInfo(endAfter.ri)
		if err != nil {
			return tokenPos{}, err
		}
		if ok {
			survivor = nxt
		}
	default:
		tail, err := s.splitRange(endAfter.ri, endAfter)
		if err != nil {
			return tokenPos{}, err
		}
		survivor = tail
	}

	// Normalize the left edge: keepHead is the surviving prefix of
	// begin.ri, firstDeleted the first range of the doomed run.
	var keepHead, firstDeleted *rangeInfo
	var prevKeep *rangeInfo
	if begin.byteOff == 0 {
		firstDeleted = begin.ri
		prev, ok, err := s.prevRangeInfo(begin.ri)
		if err != nil {
			return tokenPos{}, err
		}
		if ok {
			prevKeep = prev
		}
	} else {
		tail, err := s.splitRange(begin.ri, begin)
		if err != nil {
			return tokenPos{}, err
		}
		keepHead = begin.ri
		firstDeleted = tail
	}

	// Drop the doomed run.
	cur := firstDeleted
	for cur != nil && cur != survivor {
		nxt, ok, err := s.nextRangeInfo(cur)
		if err != nil {
			return tokenPos{}, err
		}
		if err := s.deleteWholeRange(cur); err != nil {
			return tokenPos{}, err
		}
		if !ok {
			cur = nil
			break
		}
		cur = nxt
	}
	if survivor != nil && cur != survivor {
		return tokenPos{}, fmt.Errorf("core: span walk missed survivor range %v", survivor)
	}

	// Report where the span was.
	switch {
	case survivor != nil:
		return tokenPos{ri: survivor}, nil
	case keepHead != nil:
		return tokenPos{
			ri: keepHead, tokIdx: keepHead.toks,
			byteOff: keepHead.bytes, nodesBefore: keepHead.nodes,
		}, nil
	case prevKeep != nil:
		return tokenPos{
			ri: prevKeep, tokIdx: prevKeep.toks,
			byteOff: prevKeep.bytes, nodesBefore: prevKeep.nodes,
		}, nil
	default:
		return tokenPos{}, nil // store is empty
	}
}

// deleteWholeRange drops a range: its index entries, its counters and its
// record.
func (s *Store) deleteWholeRange(ri *rangeInfo) error {
	if s.full != nil {
		if err := s.full.removeInterval(ri.start, ri.nodes); err != nil {
			return err
		}
	}
	loc := ri.loc
	s.unregister(ri)
	return s.recs.Delete(loc)
}
