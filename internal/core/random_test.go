package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pagestore"
	"repro/internal/token"
)

// randomFrag builds a small random well-formed fragment.
func randomFrag(r *rand.Rand) []Token {
	var out []Token
	names := []string{"a", "b", "item", "rec"}
	var build func(depth int)
	build = func(depth int) {
		switch r.Intn(5) {
		case 0, 1, 2: // element
			out = append(out, token.Elem(names[r.Intn(len(names))]))
			for a := 0; a < r.Intn(2); a++ {
				out = append(out, token.Attr("k", "v"), token.EndAttr())
			}
			if depth < 3 {
				for c := 0; c < r.Intn(3); c++ {
					build(depth + 1)
				}
			}
			out = append(out, token.EndElem())
		case 3:
			out = append(out, token.TextTok(fmt.Sprintf("t%d", r.Intn(100))))
		case 4:
			out = append(out, token.CommentTok("c"))
		}
	}
	for len(out) == 0 || r.Intn(3) == 0 {
		build(0)
	}
	return out
}

// TestRandomizedDifferential mirrors a long random operation sequence
// against the naive reference store under every index mode (and with
// coalescing enabled), comparing complete contents with regenerated ids
// after every operation and validating store invariants periodically.
func TestRandomizedDifferential(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"range-coarse", Config{Mode: RangeOnly, PageSize: 1024, PoolPages: 16}},
		{"range-granular", Config{Mode: RangeOnly, MaxRangeTokens: 8, PageSize: 1024, PoolPages: 16}},
		{"range+partial", Config{Mode: RangePartial, PartialCapacity: 32, PageSize: 1024, PoolPages: 16}},
		{"full", Config{Mode: FullIndex, PageSize: 1024, PoolPages: 16}},
		{"coalescing", Config{Mode: RangePartial, CoalesceBytes: 512, PageSize: 1024, PoolPages: 16}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(1234))
			// A named pager so the store can be flushed and reopened at the
			// end of the run.
			pager := pagestore.NewMemPager(tc.cfg.PageSize)
			tc.cfg.Pager = pager
			s := openStore(t, tc.cfg)
			ref := newRefStore()

			seed := randomFrag(r)
			if _, err := s.Append(seed); err != nil {
				t.Fatal(err)
			}
			ref.append(seed)

			const steps = 400
			for step := 0; step < steps; step++ {
				ids := ref.nodeIDs()
				elems := ref.elementIDs()
				op := r.Intn(100)
				ctx := fmt.Sprintf("step %d op %d", step, op)
				switch {
				case op < 15 || len(ids) == 0: // append
					frag := randomFrag(r)
					if _, err := s.Append(frag); err != nil {
						t.Fatalf("%s append: %v", ctx, err)
					}
					ref.append(frag)
				case op < 30: // insertBefore
					id := ids[r.Intn(len(ids))]
					if ref.items[indexOf(t, ref, id)].Tok.Kind == token.BeginAttribute {
						continue
					}
					frag := randomFrag(r)
					if _, err := s.InsertBefore(id, frag); err != nil {
						t.Fatalf("%s insertBefore(%d): %v", ctx, id, err)
					}
					ref.insertBefore(id, frag)
				case op < 45: // insertAfter
					id := ids[r.Intn(len(ids))]
					if ref.items[indexOf(t, ref, id)].Tok.Kind == token.BeginAttribute {
						continue
					}
					frag := randomFrag(r)
					if _, err := s.InsertAfter(id, frag); err != nil {
						t.Fatalf("%s insertAfter(%d): %v", ctx, id, err)
					}
					ref.insertAfter(id, frag)
				case op < 55 && len(elems) > 0: // insertIntoFirst
					id := elems[r.Intn(len(elems))]
					frag := randomFrag(r)
					if _, err := s.InsertIntoFirst(id, frag); err != nil {
						t.Fatalf("%s insertIntoFirst(%d): %v", ctx, id, err)
					}
					ref.insertIntoFirst(id, frag)
				case op < 65 && len(elems) > 0: // insertIntoLast
					id := elems[r.Intn(len(elems))]
					frag := randomFrag(r)
					if _, err := s.InsertIntoLast(id, frag); err != nil {
						t.Fatalf("%s insertIntoLast(%d): %v", ctx, id, err)
					}
					ref.insertIntoLast(id, frag)
				case op < 75: // random subtree read (drives the lazy index)
					id := ids[r.Intn(len(ids))]
					items, err := s.ReadNode(id)
					if err != nil {
						t.Fatalf("%s readNode(%d): %v", ctx, id, err)
					}
					i := indexOf(t, ref, id)
					end := ref.subtreeEnd(i)
					if len(items) != end-i {
						t.Fatalf("%s readNode(%d): %d items, want %d", ctx, id, len(items), end-i)
					}
					for j := range items {
						if items[j] != ref.items[i+j] {
							t.Fatalf("%s readNode(%d): item %d = {%d %s}, want {%d %s}",
								ctx, id, j, items[j].ID, items[j].Tok, ref.items[i+j].ID, ref.items[i+j].Tok)
						}
					}
				case op < 85: // delete
					id := ids[r.Intn(len(ids))]
					if err := s.DeleteNode(id); err != nil {
						t.Fatalf("%s delete(%d): %v", ctx, id, err)
					}
					ref.deleteNode(id)
				case op < 93: // replaceNode
					id := ids[r.Intn(len(ids))]
					if ref.items[indexOf(t, ref, id)].Tok.Kind == token.BeginAttribute {
						continue
					}
					frag := randomFrag(r)
					if _, err := s.ReplaceNode(id, frag); err != nil {
						t.Fatalf("%s replaceNode(%d): %v", ctx, id, err)
					}
					ref.replaceNode(id, frag)
				default: // replaceContent
					if len(elems) == 0 {
						continue
					}
					id := elems[r.Intn(len(elems))]
					frag := randomFrag(r)
					if _, err := s.ReplaceContent(id, frag); err != nil {
						t.Fatalf("%s replaceContent(%d): %v", ctx, id, err)
					}
					ref.replaceContent(id, frag)
				}
				compareStores(t, s, ref, ctx)
				if step%40 == 0 {
					if err := s.CheckInvariants(); err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Every live node remains individually addressable.
			for _, id := range ref.nodeIDs() {
				if !s.Exists(id) {
					t.Fatalf("node %d lost", id)
				}
			}
			t.Logf("final stats: %+v", s.Stats())

			// Flush and reopen from the pager: the rebuilt store must match
			// the reference exactly, and stay usable.
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			s2, err := Reopen(tc.cfg, pager, s.MetaPage())
			if err != nil {
				t.Fatal(err)
			}
			compareStores(t, s2, ref, "after reopen")
			if err := s2.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if _, err := s2.Append(randomFrag(r)); err != nil {
				t.Fatalf("append after reopen: %v", err)
			}
			if err := s2.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func indexOf(t *testing.T, ref *refStore, id NodeID) int {
	t.Helper()
	i, err := ref.findBegin(id)
	if err != nil {
		t.Fatal(err)
	}
	return i
}
