package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/token"
)

// Range record layout inside the page store.
//
// Each range is one record:
//
//	rangeID   uint32
//	startID   uint64
//	nodes     uint32
//	tokens    uint32
//	tokenBytes...
//
// Node identifiers are not stored with tokens; startID plus the ID factory
// replay over tokenBytes regenerates them. The header makes records
// self-describing, so the full set of indexes can be rebuilt by a single
// sequential scan (crash recovery / reopen).
const rangeHeaderSize = 4 + 8 + 4 + 4

func encodeRangeRecord(id RangeID, start NodeID, nodes, toks int, tokenBytes []byte) []byte {
	out := make([]byte, rangeHeaderSize+len(tokenBytes))
	binary.LittleEndian.PutUint32(out[0:], uint32(id))
	binary.LittleEndian.PutUint64(out[4:], uint64(start))
	binary.LittleEndian.PutUint32(out[12:], uint32(nodes))
	binary.LittleEndian.PutUint32(out[16:], uint32(toks))
	copy(out[rangeHeaderSize:], tokenBytes)
	return out
}

// decodeRangeHeader splits a record payload into its header fields and the
// token bytes (aliasing payload).
func decodeRangeHeader(payload []byte) (id RangeID, start NodeID, nodes, toks int, tokenBytes []byte, err error) {
	if len(payload) < rangeHeaderSize {
		return 0, 0, 0, 0, nil, fmt.Errorf("core: truncated range record (%d bytes)", len(payload))
	}
	id = RangeID(binary.LittleEndian.Uint32(payload[0:]))
	start = NodeID(binary.LittleEndian.Uint64(payload[4:]))
	nodes = int(binary.LittleEndian.Uint32(payload[12:]))
	toks = int(binary.LittleEndian.Uint32(payload[16:]))
	tokenBytes = payload[rangeHeaderSize:]
	return id, start, nodes, toks, tokenBytes, nil
}

// countNodesInPrefix returns how many node-starting tokens occur in the
// first `limit` bytes of encoded tokens, along with the token count.
func countNodesInPrefix(tokenBytes []byte, limit int) (nodes, toks int, err error) {
	r := token.NewReader(tokenBytes[:limit])
	for r.More() {
		t, err := r.Next()
		if err != nil {
			return 0, 0, err
		}
		if t.StartsNode() {
			nodes++
		}
		toks++
	}
	return nodes, toks, nil
}
