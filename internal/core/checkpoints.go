package core

import (
	"sort"
	"sync"

	"repro/internal/budget"
)

// Intra-range replay checkpoints — bounding the paper's coarse-range replay
// cost (Table 5's 33 kb/s random-read row).
//
// A coarse range makes every cold locate replay tokens from the range head
// until the target id's begin token. The checkpoint table memoizes the scan
// state every K tokens as a side effect of those replays: a later locate of
// any id in the same range resumes from the nearest checkpoint at or before
// the target instead of the head, so replay work per lookup drops from
// O(range) to O(K) once a range has been walked once.
//
// Like the partial index, the table is a cache, not an index: memory-only,
// never persisted, rebuilt lazily, and invalidated by the range version
// stamp — a split, merge or rewrite bumps the version and the stale entry
// becomes a miss. The table is lock-striped by range id so concurrent
// readers (holding the store's shared lock) can consult and publish
// checkpoints without serializing.

const (
	// checkpointInterval is K: tokens between checkpoints.
	checkpointInterval = 256
	// checkpointMinTokens gates memoization to ranges long enough for a
	// resume to actually save work.
	checkpointMinTokens = 2 * checkpointInterval
	// ckptShardCount stripes the table; maxCkptRangesPerShard bounds the
	// memoized ranges per stripe (table-wide: 16×64 ranges, each at most
	// toks/K checkpoints of 16 bytes).
	ckptShardCount        = 16
	maxCkptRangesPerShard = 64
)

// replayCheckpoint is one resumable scan state: the scan sits just before
// the token at byteOff (token index tokIdx), and the next node-starting
// token will be assigned id `next`.
type replayCheckpoint struct {
	next    NodeID
	tokIdx  int32
	byteOff int32
}

// rangeCheckpoints stamps a checkpoint run with the range version it was
// built against. The cps slice is immutable once published.
type rangeCheckpoints struct {
	version uint32
	cps     []replayCheckpoint
}

type ckptShard struct {
	mu sync.Mutex
	m  map[RangeID]rangeCheckpoints
}

type checkpointTable struct {
	shards [ckptShardCount]ckptShard
	budget *budget.Budget // nil = unaccounted
}

// ckptRunCost approximates the bytes of one published checkpoint run for
// budget accounting: 16 bytes per checkpoint plus map-slot overhead.
func ckptRunCost(n int) int64 { return int64(n)*16 + 64 }

func newCheckpointTable(b *budget.Budget) *checkpointTable {
	t := &checkpointTable{budget: b}
	for i := range t.shards {
		t.shards[i].m = make(map[RangeID]rangeCheckpoints)
	}
	return t
}

// shedForBudget drops memoized runs while the table is over its budget
// share. Called after publish has released its shard lock.
func (t *checkpointTable) shedForBudget() {
	b := t.budget
	if b == nil || !b.NeedEvict(budget.Checkpoints) {
		return
	}
	excess := b.Excess(budget.Checkpoints)
	for i := range t.shards {
		if excess <= 0 {
			return
		}
		sh := &t.shards[i]
		sh.mu.Lock()
		for rng, rc := range sh.m {
			if excess <= 0 {
				break
			}
			delete(sh.m, rng)
			cost := ckptRunCost(len(rc.cps))
			b.Discharge(budget.Checkpoints, cost)
			b.NoteEviction(budget.Checkpoints)
			excess -= cost
		}
		sh.mu.Unlock()
	}
}

func (t *checkpointTable) shard(rng RangeID) *ckptShard {
	h := uint32(rng) * 2654435769
	return &t.shards[h>>28%ckptShardCount]
}

// get returns the published checkpoints for rng at version ver, or nil. The
// returned slice is immutable — callers must not append to it in place.
func (t *checkpointTable) get(rng RangeID, ver uint32) []replayCheckpoint {
	sh := t.shard(rng)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rc, ok := sh.m[rng]
	if !ok || rc.version != ver {
		return nil
	}
	return rc.cps
}

// publish installs cps for rng at version ver unless a longer same-version
// run is already present (two readers may race to publish; the one that
// scanned further wins). The caller must not retain or mutate cps after
// publishing.
func (t *checkpointTable) publish(rng RangeID, ver uint32, cps []replayCheckpoint) {
	if len(cps) == 0 {
		return
	}
	defer t.shedForBudget() // after the shard lock is released
	sh := t.shard(rng)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if rc, ok := sh.m[rng]; ok {
		if rc.version == ver && len(rc.cps) >= len(cps) {
			return
		}
		t.budget.Discharge(budget.Checkpoints, ckptRunCost(len(rc.cps)))
	} else if len(sh.m) >= maxCkptRangesPerShard {
		// Bound memory: drop an arbitrary memoized range. Random-ish
		// eviction is fine for a cache that rebuilds in one scan.
		for k := range sh.m {
			t.budget.Discharge(budget.Checkpoints, ckptRunCost(len(sh.m[k].cps)))
			delete(sh.m, k)
			break
		}
	}
	sh.m[rng] = rangeCheckpoints{version: ver, cps: cps}
	t.budget.Charge(budget.Checkpoints, ckptRunCost(len(cps)))
}

// resumeFrom returns the last checkpoint at or before target (the next
// node-start id must not have passed it), plus the checkpoint prefix up to
// and including it. The prefix aliases the published slice and is shared
// with concurrent readers: a caller extending the run must clone it before
// appending. ok is false when no checkpoint helps.
func resumeFrom(cps []replayCheckpoint, target NodeID) (replayCheckpoint, []replayCheckpoint, bool) {
	i := sort.Search(len(cps), func(i int) bool { return cps[i].next > target })
	if i == 0 {
		return replayCheckpoint{}, nil, false
	}
	return cps[i-1], cps[:i], true
}
