// Admission control: a semaphore with a bounded wait queue in front of every
// public store operation. Under overload the store degrades predictably —
// excess work waits briefly, then is shed with a typed ErrOverloaded —
// instead of piling goroutines onto s.mu until latency and memory collapse.
// The paper's theme of bounded lazy structures (a partial index that refuses
// to grow past its budget) applied to concurrency itself.
package core

import (
	"context"
	"sync/atomic"
)

// AdmissionStats counts admission-control outcomes.
type AdmissionStats struct {
	Admitted uint64 // operations that acquired a slot
	Queued   uint64 // admitted operations that had to wait for a slot
	Shed     uint64 // operations rejected with ErrOverloaded (queue full)
	Expired  uint64 // operations whose context ended while queued
	InFlight int    // slots held right now
	Waiting  int    // operations queued right now
}

// admission is the gate itself. A nil *admission means admission control is
// off (MaxConcurrentOps < 0) and every method is a no-op.
//
// The slot semaphore is a buffered channel: goroutines blocked sending into
// it are released in FIFO order by the runtime, giving fair queuing without
// an explicit ticket list. The queue bound is enforced by a counter — an
// arrival that would make the queue exceed maxQueue is shed immediately.
type admission struct {
	sem      chan struct{}
	maxQueue int64

	waiting  atomic.Int64
	admitted atomic.Uint64
	queued   atomic.Uint64
	shed     atomic.Uint64
	expired  atomic.Uint64
}

// newAdmission builds a gate of `slots` concurrent operations and a wait
// queue of `queue`. Non-positive slots disable the gate.
func newAdmission(slots, queue int) *admission {
	if slots <= 0 {
		return nil
	}
	if queue < 0 {
		queue = 0
	}
	return &admission{sem: make(chan struct{}, slots), maxQueue: int64(queue)}
}

// acquire takes a slot, waiting in the bounded queue if none is free.
// It returns ErrOverloaded when the queue is full, or ctx.Err() when the
// context ends first.
func (a *admission) acquire(ctx context.Context) error {
	if a == nil {
		return nil
	}
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		return nil
	default:
	}
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		a.shed.Add(1)
		return ErrOverloaded
	}
	a.queued.Add(1)
	defer a.waiting.Add(-1)
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		return nil
	case <-ctx.Done():
		a.expired.Add(1)
		return ctx.Err()
	}
}

// release returns a slot.
func (a *admission) release() {
	if a != nil {
		<-a.sem
	}
}

// snapshot returns the current counters (zero value when the gate is off).
func (a *admission) snapshot() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	return AdmissionStats{
		Admitted: a.admitted.Load(),
		Queued:   a.queued.Load(),
		Shed:     a.shed.Load(),
		Expired:  a.expired.Load(),
		InFlight: len(a.sem),
		Waiting:  int(a.waiting.Load()),
	}
}

// criticalKey marks contexts that must not be shed or timed out.
type criticalKey struct{}

// WithCritical marks ctx as carrying a critical internal operation: it
// bypasses admission control and the configured OpTimeout. Transaction
// rollback uses it — shedding half of an abort would leave the store with
// partial effects that strict two-phase locking promised to undo.
func WithCritical(ctx context.Context) context.Context {
	return context.WithValue(ctx, criticalKey{}, true)
}

// isCritical reports whether WithCritical marked ctx.
func isCritical(ctx context.Context) bool {
	v, _ := ctx.Value(criticalKey{}).(bool)
	return v
}

// beginOp is the prologue of every public operation: it applies the
// configured OpTimeout (only when the caller brought no deadline of its
// own), then passes admission control. On success the returned context
// carries the deadline and finish must be deferred; on failure the typed
// error is returned as the operation's result.
//
// Only outermost entry points call beginOp. Internal code paths — and
// composite public helpers that chain other public calls — must not, or a
// held slot would wait on a second slot and the gate could self-deadlock.
func (s *Store) beginOp(ctx context.Context) (opCtx context.Context, finish func(), err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if isCritical(ctx) {
		return ctx, noopFinish, nil
	}
	var cancel context.CancelFunc
	if s.cfg.OpTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			ctx, cancel = context.WithTimeout(ctx, s.cfg.OpTimeout)
		}
	}
	if err := s.adm.acquire(ctx); err != nil {
		if cancel != nil {
			cancel()
		}
		return ctx, nil, err
	}
	if cancel == nil {
		// Common path (no per-op deadline): the cached release closure
		// avoids a per-operation allocation.
		return ctx, s.releaseFn, nil
	}
	return ctx, func() { s.adm.release(); cancel() }, nil
}

func noopFinish() {}
