package core

// Adaptive range coalescing (an extension from the paper's future-work
// discussion). Repeated updates fragment the token sequence into many tiny
// ranges, which bloats the range index and slows later inserts — the "many,
// granular entries" row of Table 5. When Config.CoalesceBytes > 0, the store
// merges a range with its document-order neighbours after a delete while
//
//   - the combined encoded size stays at or below CoalesceBytes, and
//   - the merged range still covers one contiguous id interval: either one
//     side has no ids at all, or the right side's interval starts exactly
//     where the left side's ends.
//
// The second condition is what keeps id regeneration correct: replaying the
// id factory over the merged token sequence must assign exactly the old ids.

// maybeCoalesce tries to merge ri with its neighbours.
func (s *Store) maybeCoalesce(ri *rangeInfo) {
	if s.cfg.CoalesceBytes <= 0 || ri == nil || s.byRange[ri.id] == nil {
		return
	}
	// Merge leftward first (prev absorbs ri), then rightward.
	if prev, ok, err := s.prevRangeInfo(ri); err == nil && ok {
		if merged, err := s.coalescePair(prev, ri); err == nil && merged {
			ri = prev
		}
	}
	if next, ok, err := s.nextRangeInfo(ri); err == nil && ok {
		s.coalescePair(ri, next)
	}
}

// coalescePair merges b (the document-order successor) into a when the
// policy allows. Reports whether a merge happened.
func (s *Store) coalescePair(a, b *rangeInfo) (bool, error) {
	if a.bytes+b.bytes > s.cfg.CoalesceBytes {
		return false, nil
	}
	if a.nodes > 0 && b.nodes > 0 && b.start != a.end()+1 {
		return false, nil // ids would not regenerate contiguously
	}
	aBytes, err := s.readRange(a)
	if err != nil {
		return false, err
	}
	bBytes, err := s.readRange(b)
	if err != nil {
		return false, err
	}

	oldABytes, oldAToks := a.bytes, a.toks

	// Merged identity: keep a's range id; the start id comes from whichever
	// side has ids (a wins when both do).
	newStart := a.start
	if a.nodes == 0 {
		newStart = b.start
	}
	// Index maintenance before mutating the descriptors.
	if a.nodes > 0 {
		s.rindex.Delete(uint64(a.start))
	}
	if b.nodes > 0 {
		s.rindex.Delete(uint64(b.start))
	}
	if s.full != nil && b.nodes > 0 {
		if err := s.full.rebase(b.start, b.nodes, a.id, int32(-oldABytes), int32(-oldAToks)); err != nil {
			return false, err
		}
	}

	// Drop b's record and descriptor (counters adjusted manually: the
	// content moves rather than disappears).
	delete(s.byRange, b.id)
	delete(s.byLoc, b.loc)
	if err := s.recs.Delete(b.loc); err != nil {
		return false, err
	}

	merged := make([]byte, 0, len(aBytes)+len(bBytes))
	merged = append(merged, aBytes...)
	merged = append(merged, bBytes...)
	a.start = newStart
	a.nodes += b.nodes
	a.toks += b.toks
	a.bytes = len(merged)
	if err := s.writeRangeRecord(a, merged); err != nil {
		return false, err
	}
	if a.nodes > 0 {
		s.rindex.Set(uint64(a.start), a)
	}
	s.merges++
	return true, nil
}
