// Overload-control tests: admission gating (shed, queue, expiry, critical
// bypass), end-to-end operation deadlines over slow I/O, and the shared
// memory budget. These pin the contract documented in DESIGN.md §10: under
// overload the store degrades predictably with typed errors, and a deadline
// can end a long scan but never half-apply an update or degrade the store.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/pagestore"
	"repro/internal/xmltok"
)

// parkReader starts a Scan that blocks inside its callback, holding one
// admission slot (and the store's shared lock) until release is closed.
// It returns once the reader is parked.
func parkReader(t *testing.T, s *Store) (release chan struct{}, done chan error) {
	t.Helper()
	parked := make(chan struct{})
	release = make(chan struct{})
	done = make(chan error, 1)
	go func() {
		first := true
		done <- s.Scan(func(Item) bool {
			if first {
				first = false
				close(parked)
				<-release
			}
			return false
		})
	}()
	select {
	case <-parked:
	case <-time.After(5 * time.Second):
		t.Fatal("reader never reached its callback")
	}
	return release, done
}

func TestAdmissionQueuesThenSheds(t *testing.T) {
	s := openStore(t, Config{MaxConcurrentOps: 1, MaxQueuedOps: 1})
	if _, err := s.Append(figure1()); err != nil {
		t.Fatal(err)
	}

	release, parkedDone := parkReader(t, s) // holds the only slot

	// A second reader fills the one queue seat.
	queuedDone := make(chan error, 1)
	go func() {
		_, err := s.ReadAllCtx(context.Background())
		queuedDone <- err
	}()
	waitFor(t, func() bool { return s.Stats().Admission.Waiting == 1 })

	// A third arrival finds slot and queue full: shed, typed, immediately.
	if _, err := s.ReadAll(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated store returned %v, want ErrOverloaded", err)
	}

	close(release)
	if err := <-parkedDone; err != nil {
		t.Fatalf("parked reader: %v", err)
	}
	if err := <-queuedDone; err != nil {
		t.Fatalf("queued reader should run once the slot frees: %v", err)
	}

	st := s.Stats().Admission
	if st.Shed != 1 || st.Queued != 1 || st.Admitted < 2 {
		t.Fatalf("counters = %+v, want 1 shed, 1 queued, >=2 admitted", st)
	}
	if st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("gate not drained: %+v", st)
	}
}

func TestAdmissionCriticalBypass(t *testing.T) {
	s := openStore(t, Config{MaxConcurrentOps: 1, MaxQueuedOps: 1})
	if _, err := s.Append(figure1()); err != nil {
		t.Fatal(err)
	}
	release, parkedDone := parkReader(t, s)
	defer func() { close(release); <-parkedDone }()

	// With the only slot held, a critical operation must neither queue nor
	// shed: rollback and repair paths depend on this.
	ctx, cancel := context.WithTimeout(WithCritical(context.Background()), 2*time.Second)
	defer cancel()
	if _, err := s.ReadAllCtx(ctx); err != nil {
		t.Fatalf("critical op blocked by a saturated gate: %v", err)
	}
}

func TestAdmissionQueuedOpExpires(t *testing.T) {
	s := openStore(t, Config{MaxConcurrentOps: 1, MaxQueuedOps: 4})
	if _, err := s.Append(figure1()); err != nil {
		t.Fatal(err)
	}
	release, parkedDone := parkReader(t, s)
	defer func() { close(release); <-parkedDone }()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.ReadAllCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued reader returned %v, want DeadlineExceeded", err)
	}
	if st := s.Stats().Admission; st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1 (%+v)", st.Expired, st)
	}
}

// TestOpTimeoutBoundsQueueWait pins that Config.OpTimeout applies even when
// the caller brings no context at all: a legacy no-ctx call stuck in the
// admission queue times out instead of waiting forever.
func TestOpTimeoutBoundsQueueWait(t *testing.T) {
	s := openStore(t, Config{MaxConcurrentOps: 1, MaxQueuedOps: 4, OpTimeout: 30 * time.Millisecond})
	if _, err := s.Append(figure1()); err != nil {
		t.Fatal(err)
	}
	// The parked reader holds its slot past its own deadline: it only
	// observes ctx at scan boundaries, and it is parked inside the callback.
	parked := make(chan struct{})
	release := make(chan struct{})
	parkedDone := make(chan error, 1)
	go func() {
		first := true
		parkedDone <- s.ScanCtx(context.Background(), func(Item) bool {
			if first {
				first = false
				close(parked)
				<-release
			}
			return false
		})
	}()
	<-parked
	defer func() { close(release); <-parkedDone }()

	start := time.Now()
	_, err := s.ReadAll()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued no-ctx reader returned %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("timeout took %v, want ~OpTimeout", el)
	}
}

func TestAdmissionDisabled(t *testing.T) {
	s := openStore(t, Config{MaxConcurrentOps: -1})
	if _, err := s.Append(figure1()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats().Admission; st.Admitted != 0 {
		t.Fatalf("disabled gate still counting: %+v", st)
	}
}

// syncedMemPager adds the no-op Sync a fault.InnerPager needs.
type syncedMemPager struct{ *pagestore.MemPager }

func (syncedMemPager) Sync() error { return nil }

// bigDoc builds a flat document with n children, each with an attribute and
// a text payload — enough token bytes to spread across many pages.
func bigDoc(n int) []Token {
	var b strings.Builder
	b.WriteString(`<doc>`)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<e i="%d">payload-%d-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx</e>`, i, i)
	}
	b.WriteString(`</doc>`)
	return xmltok.MustParse(b.String())
}

// TestDeadlineExceededDuringSlowScan is the deadline-propagation pin: with
// every page read slowed by injected latency, a full-document scan under
// OpTimeout must return context.DeadlineExceeded within about 2x the
// timeout (the checks sit at page-fetch boundaries, so overshoot is bounded
// by one page fetch), and the store must stay fully healthy afterwards —
// a deadline is load shedding, not a fault.
func TestDeadlineExceededDuringSlowScan(t *testing.T) {
	const (
		pageSize  = 4096
		opTimeout = 100 * time.Millisecond
		ioDelay   = 5 * time.Millisecond
	)
	inj := fault.NewInjector(fault.Config{})
	p := fault.NewPager(inj, syncedMemPager{pagestore.NewMemPager(pageSize)})
	s := openStore(t, Config{
		Mode: RangeOnly, Pager: p, PageSize: pageSize,
		PoolPages: 4, MaxRangeTokens: 64, OpTimeout: opTimeout,
	})
	root, err := s.Append(bigDoc(4000))
	if err != nil {
		t.Fatal(err)
	}

	inj.ArmLatency(ioDelay)
	start := time.Now()
	scanErr := s.ScanNode(root, func(Item) bool { return true })
	elapsed := time.Since(start)
	inj.DisarmLatency()

	if !errors.Is(scanErr, context.DeadlineExceeded) {
		t.Fatalf("slow scan returned %v, want DeadlineExceeded", scanErr)
	}
	if elapsed > 2*opTimeout {
		t.Errorf("deadline honored after %v, want within 2x OpTimeout (%v)", elapsed, 2*opTimeout)
	}

	// The store is not degraded: reads, writes and verification all work.
	if _, err := s.ReadNode(root + 1); err != nil {
		t.Fatalf("read after deadline: %v", err)
	}
	if _, err := s.InsertIntoLast(root, figure1()); err != nil {
		t.Fatalf("insert after deadline: %v", err)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("verify after deadline: %v", err)
	}
}

// TestDeadlineNeverHalfAppliesUpdate pins the mutator contract: a deadline
// that fires during an update's locate phase rejects the whole operation;
// one that fires after the apply phase began does not tear it. Either way
// CheckInvariants stays clean.
func TestDeadlineNeverHalfAppliesUpdate(t *testing.T) {
	const pageSize = 4096
	inj := fault.NewInjector(fault.Config{})
	p := fault.NewPager(inj, syncedMemPager{pagestore.NewMemPager(pageSize)})
	s := openStore(t, Config{
		Mode: RangeOnly, Pager: p, PageSize: pageSize,
		PoolPages: 4, MaxRangeTokens: 64, OpTimeout: 50 * time.Millisecond,
	})
	root, err := s.Append(bigDoc(4000))
	if err != nil {
		t.Fatal(err)
	}
	before := s.Stats()

	inj.ArmLatency(5 * time.Millisecond)
	// Locating the far end of the document walks enough slow pages to blow
	// the deadline before the splice starts.
	_, insErr := s.InsertIntoLast(root, figure1())
	inj.DisarmLatency()
	if !errors.Is(insErr, context.DeadlineExceeded) {
		t.Fatalf("slow insert returned %v, want DeadlineExceeded", insErr)
	}

	after := s.Stats()
	if after.Nodes != before.Nodes || after.Tokens != before.Tokens {
		t.Fatalf("timed-out insert changed the store: %d/%d nodes, %d/%d tokens",
			before.Nodes, after.Nodes, before.Tokens, after.Tokens)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after timed-out insert: %v", err)
	}
	// And with the disk fast again the same insert goes through.
	if _, err := s.InsertIntoLast(root, figure1()); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
}

// TestMemoryBudgetBoundsCaches loads and reads far more data than the
// budget allows and checks the accounting: the combined footprint of pool
// frames, partial entries and checkpoints settles at or under the limit,
// with budget-pressure evictions doing the shedding.
func TestMemoryBudgetBoundsCaches(t *testing.T) {
	const limit = int64(96 << 10)
	s := openStore(t, Config{
		Mode: RangePartial, PageSize: 4096, PoolPages: 1024,
		PartialCapacity: 1 << 16, MaxRangeTokens: 64, MemoryBudget: limit,
	})
	root, err := s.Append(bigDoc(4000)) // ~300KB of token bytes, 3x the budget
	if err != nil {
		t.Fatal(err)
	}
	// Random-ish reads warm every cache class: pool frames, partial-index
	// entries, replay checkpoints.
	for i := 0; i < 400; i++ {
		id := root + NodeID(1+(i*37)%8000)
		if _, err := s.ReadNode(id); err != nil && !errors.Is(err, ErrNoSuchNode) {
			t.Fatal(err)
		}
	}

	m := s.Stats().Memory
	if m.Limit != limit {
		t.Fatalf("Limit = %d, want %d", m.Limit, limit)
	}
	// One in-flight charge per class may still be above water when the
	// final deferred shed ran; allow a page of slack, no more.
	if slack := int64(4096 + 512); m.Used > limit+slack {
		t.Fatalf("Used = %d bytes, want <= %d (+%d slack): %+v", m.Used, limit, slack, m)
	}
	if m.Evictions == 0 {
		t.Fatalf("no budget-pressure evictions despite 3x oversubscription: %+v", m)
	}
	if m.PoolBytes+m.PartialBytes+m.CheckpointBytes != m.Used {
		t.Fatalf("class bytes do not sum to Used: %+v", m)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
