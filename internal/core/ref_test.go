package core

import (
	"fmt"
	"testing"

	"repro/internal/token"
)

// refStore is a naive reference implementation of the store semantics: the
// whole instance as one token slice with explicit ids. The differential
// tests mirror every operation against it and compare full contents.
type refStore struct {
	items  []Item
	nextID NodeID
}

func newRefStore() *refStore { return &refStore{nextID: 1} }

func (r *refStore) assign(frag []Token) []Item {
	out := make([]Item, len(frag))
	for i, t := range frag {
		out[i] = Item{Tok: t}
		if t.StartsNode() {
			out[i].ID = r.nextID
			r.nextID++
		}
	}
	return out
}

func (r *refStore) findBegin(id NodeID) (int, error) {
	for i, it := range r.items {
		if it.ID == id {
			return i, nil
		}
	}
	return 0, fmt.Errorf("ref: no node %d", id)
}

func (r *refStore) subtreeEnd(i int) int {
	if !r.items[i].Tok.IsBegin() {
		return i + 1
	}
	depth := 0
	for j := i; j < len(r.items); j++ {
		if r.items[j].Tok.IsBegin() {
			depth++
		} else if r.items[j].Tok.IsEnd() {
			depth--
			if depth == 0 {
				return j + 1
			}
		}
	}
	panic("ref: unbalanced")
}

func (r *refStore) spliceAt(pos int, frag []Token) {
	assigned := r.assign(frag)
	r.items = append(r.items[:pos], append(assigned, r.items[pos:]...)...)
}

func (r *refStore) append(frag []Token) {
	r.spliceAt(len(r.items), frag)
}

func (r *refStore) insertBefore(id NodeID, frag []Token) error {
	i, err := r.findBegin(id)
	if err != nil {
		return err
	}
	r.spliceAt(i, frag)
	return nil
}

func (r *refStore) insertAfter(id NodeID, frag []Token) error {
	i, err := r.findBegin(id)
	if err != nil {
		return err
	}
	r.spliceAt(r.subtreeEnd(i), frag)
	return nil
}

// skipAttrs returns the first index at or after i that is not part of an
// attribute block.
func (r *refStore) skipAttrs(i int) int {
	for i < len(r.items) && r.items[i].Tok.Kind == token.BeginAttribute {
		depth := 0
		for {
			if r.items[i].Tok.IsBegin() {
				depth++
			} else if r.items[i].Tok.IsEnd() {
				depth--
			}
			i++
			if depth == 0 {
				break
			}
		}
	}
	return i
}

func (r *refStore) insertIntoFirst(id NodeID, frag []Token) error {
	i, err := r.findBegin(id)
	if err != nil {
		return err
	}
	r.spliceAt(r.skipAttrs(i+1), frag)
	return nil
}

func (r *refStore) insertIntoLast(id NodeID, frag []Token) error {
	i, err := r.findBegin(id)
	if err != nil {
		return err
	}
	r.spliceAt(r.subtreeEnd(i)-1, frag)
	return nil
}

func (r *refStore) deleteNode(id NodeID) error {
	i, err := r.findBegin(id)
	if err != nil {
		return err
	}
	end := r.subtreeEnd(i)
	r.items = append(r.items[:i], r.items[end:]...)
	return nil
}

func (r *refStore) replaceNode(id NodeID, frag []Token) error {
	i, err := r.findBegin(id)
	if err != nil {
		return err
	}
	end := r.subtreeEnd(i)
	r.items = append(r.items[:i], r.items[end:]...)
	r.spliceAt(i, frag)
	return nil
}

func (r *refStore) replaceContent(id NodeID, frag []Token) error {
	i, err := r.findBegin(id)
	if err != nil {
		return err
	}
	end := r.subtreeEnd(i) // index past the end token
	cs := r.skipAttrs(i + 1)
	r.items = append(r.items[:cs], r.items[end-1:]...)
	r.spliceAt(cs, frag)
	return nil
}

// nodeIDs returns all live node ids in document order.
func (r *refStore) nodeIDs() []NodeID {
	var out []NodeID
	for _, it := range r.items {
		if it.ID != InvalidNode {
			out = append(out, it.ID)
		}
	}
	return out
}

// elementIDs returns ids of element nodes.
func (r *refStore) elementIDs() []NodeID {
	var out []NodeID
	for _, it := range r.items {
		if it.ID != InvalidNode && it.Tok.Kind == token.BeginElement {
			out = append(out, it.ID)
		}
	}
	return out
}

// compare checks that the real store contents match the reference exactly —
// same tokens, same regenerated ids, same order.
func compareStores(t *testing.T, s *Store, ref *refStore, ctx string) {
	t.Helper()
	got, err := s.ReadAll()
	if err != nil {
		t.Fatalf("%s: ReadAll: %v", ctx, err)
	}
	if len(got) != len(ref.items) {
		t.Fatalf("%s: store has %d items, ref has %d", ctx, len(got), len(ref.items))
	}
	for i := range got {
		if got[i].ID != ref.items[i].ID || got[i].Tok != ref.items[i].Tok {
			t.Fatalf("%s: item %d: store {%d %s}, ref {%d %s}",
				ctx, i, got[i].ID, got[i].Tok, ref.items[i].ID, ref.items[i].Tok)
		}
	}
}
