package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btree"
	"repro/internal/budget"
	"repro/internal/pagestore"
	"repro/internal/plancache"
	"repro/internal/token"
)

// newTokenReader is a local alias so files in this package read naturally.
func newTokenReader(b []byte) *token.Reader { return token.NewReader(b) }

// Config selects the store's indexing configuration and storage geometry.
// The zero value is usable: RangeOnly mode with default page geometry.
type Config struct {
	// Mode selects the indexing configuration (Table 5 axis).
	Mode IndexMode
	// MaxRangeTokens chops bulk loads (Append) into ranges of at most this
	// many tokens. 0 keeps each Append as a single range (the "few, coarse"
	// configuration); small values produce the "many, granular" one.
	MaxRangeTokens int
	// PartialCapacity bounds the partial index entry count (RangePartial
	// mode). Defaults to 4096.
	PartialCapacity int
	// PageSize is the storage block size in bytes (default 8192).
	PageSize int
	// PoolPages bounds the buffer pool (default 256 pages).
	PoolPages int
	// CoalesceBytes, when > 0, merges an adjacent pair of ranges after
	// deletions and splits while their combined encoded size stays at or
	// under this many bytes and their ID intervals remain contiguous (the
	// adaptive "anti-fragmentation" extension from the paper's future work).
	CoalesceBytes int
	// Pager supplies custom page storage (e.g. a file pager). Defaults to
	// an in-memory pager.
	Pager pagestore.Pager
	// ReadOnly opens the store for reads only: every mutating entry point
	// returns ErrReadOnly, and Close releases the pager without flushing.
	// Pair it with a read-only pager for cross-process shared access.
	// FullIndex mode is not supported read-only (its index lives in pages
	// it would have to allocate).
	ReadOnly bool
	// OpTimeout bounds each public operation end to end: when the caller's
	// context carries no deadline of its own, one of OpTimeout is attached.
	// Long locate scans and overflow-chain walks observe it at page-fetch
	// boundaries. 0 disables the store-imposed deadline.
	OpTimeout time.Duration
	// MaxConcurrentOps caps how many public operations run inside the store
	// at once; excess operations wait in a bounded FIFO queue and are shed
	// with ErrOverloaded when it fills. 0 means the default (128); negative
	// disables admission control.
	MaxConcurrentOps int
	// MaxQueuedOps bounds the admission wait queue. 0 means the default
	// (4x MaxConcurrentOps).
	MaxQueuedOps int
	// MemoryBudget caps the bytes held by the in-memory acceleration
	// structures combined — buffer-pool frames, partial-index entries,
	// replay checkpoints and the compiled query-plan cache — with
	// pressure-driven eviction when a structure exceeds its share. 0 means
	// unlimited.
	MemoryBudget int64
	// PlanCacheEntries bounds the compiled query-plan cache. 0 means the
	// default (512 plans); negative disables plan caching entirely (every
	// query re-parses and re-plans — the benchmark baseline).
	PlanCacheEntries int
}

func (c Config) withDefaults() Config {
	if c.PartialCapacity <= 0 {
		c.PartialCapacity = 4096
	}
	if c.PlanCacheEntries == 0 {
		c.PlanCacheEntries = 512
	}
	if c.PageSize <= 0 {
		c.PageSize = pagestore.DefaultPageSize
	}
	if c.PoolPages <= 0 {
		c.PoolPages = 256
	}
	if c.MaxConcurrentOps == 0 {
		c.MaxConcurrentOps = 128
	}
	if c.MaxQueuedOps <= 0 && c.MaxConcurrentOps > 0 {
		c.MaxQueuedOps = 4 * c.MaxConcurrentOps
	}
	return c
}

// Store is an adaptive XML store holding one XQuery Data Model sequence.
// All methods are safe for concurrent use (single writer, many readers).
type Store struct {
	mu  sync.RWMutex
	cfg Config

	pool *pagestore.BufferPool
	recs *pagestore.RecordStore

	rindex  *btree.Tree[*rangeInfo]      // startID -> range (nodes > 0 only)
	byRange map[RangeID]*rangeInfo       // all live ranges
	byLoc   map[pagestore.Loc]*rangeInfo // record address -> range

	partial *partialIndex // nil unless RangePartial
	full    *fullIndex    // nil unless FullIndex

	nextID    NodeID
	nextRange RangeID

	nodes  uint64
	tokens uint64
	bytes  uint64

	inserts, deletes, splits, merges uint64

	// Read-path counters are atomic: they are bumped by concurrent readers
	// holding only mu.RLock.
	tokensScanned, nodeLookups atomic.Uint64

	// checkpoints accelerates coarse-range locate replays; lock-striped and
	// memory-only (see checkpoints.go). Nil only before initIndexes.
	checkpoints *checkpointTable

	// adm gates public entry points under overload (nil = gate off).
	// releaseFn is the cached slot-release closure handed out by beginOp on
	// the common (no per-op deadline) path, so admission adds no allocation.
	adm       *admission
	releaseFn func()
	// budget is the shared memory budget across pool/partial/checkpoints/
	// plans (nil = unlimited).
	budget *budget.Budget

	// plans caches compiled query plans keyed by expression source; owned
	// here (not in the query packages) so its memory is charged to this
	// store's budget and its stats ride the store's snapshot. Nil when
	// disabled. The values are opaque to core.
	plans *plancache.Cache
	// query counts query-planner outcomes; bumped by the query layer via
	// the QueryCounters accessor.
	query QueryCounters

	// corrupt, once set, latches the store read-only: continuing to write
	// after a checksum mismatch or a failed WAL commit can only spread the
	// damage. Guarded by degradeMu, not mu, so read paths (holding mu.RLock)
	// can latch it too.
	degradeMu sync.Mutex
	corrupt   error

	closed bool
}

// degrade latches the store read-only. The first cause wins.
func (s *Store) degrade(cause error) {
	s.degradeMu.Lock()
	defer s.degradeMu.Unlock()
	if s.corrupt == nil {
		s.corrupt = cause
	}
}

// ReadOnly reports whether the store has degraded to read-only, and the
// error that caused it.
func (s *Store) ReadOnly() (bool, error) {
	s.degradeMu.Lock()
	defer s.degradeMu.Unlock()
	return s.corrupt != nil, s.corrupt
}

// writableLocked gates mutating entry points (s.mu held): closed stores and
// degraded stores reject writes, the latter with ErrReadOnly wrapping the
// original corruption error.
func (s *Store) writableLocked() error {
	if s.closed {
		return ErrClosed
	}
	if s.cfg.ReadOnly {
		return fmt.Errorf("%w: store opened read-only", ErrReadOnly)
	}
	s.degradeMu.Lock()
	defer s.degradeMu.Unlock()
	if s.corrupt != nil {
		return fmt.Errorf("%w: %v", ErrReadOnly, s.corrupt)
	}
	return nil
}

// latchCorrupt, deferred with a named return, degrades the store whenever
// an operation surfaces a page checksum failure.
func (s *Store) latchCorrupt(errp *error) {
	if errp == nil || *errp == nil {
		return
	}
	if errors.Is(*errp, pagestore.ErrCorruptPage) {
		s.degrade(*errp)
	}
}

// Open creates a fresh store with the given configuration.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.ReadOnly {
		// A fresh store has nothing to read; creation must write.
		return nil, fmt.Errorf("%w: cannot create a new store read-only", ErrReadOnly)
	}
	pager := cfg.Pager
	if pager == nil {
		pager = pagestore.NewMemPager(cfg.PageSize)
	}
	b := budget.New(cfg.MemoryBudget)
	pool := pagestore.NewBufferPool(pager, cfg.PoolPages)
	pool.SetBudget(b)
	recs, err := pagestore.CreateRecordStore(pool)
	if err != nil {
		return nil, err
	}
	s := &Store{
		cfg:       cfg,
		pool:      pool,
		recs:      recs,
		rindex:    btree.New[*rangeInfo](),
		byRange:   make(map[RangeID]*rangeInfo),
		byLoc:     make(map[pagestore.Loc]*rangeInfo),
		nextID:    1,
		nextRange: 1,
		budget:    b,
		adm:       newAdmission(cfg.MaxConcurrentOps, cfg.MaxQueuedOps),
	}
	s.releaseFn = func() { s.adm.release() }
	s.plans = plancache.New(cfg.PlanCacheEntries, b)
	if err := s.initIndexes(); err != nil {
		return nil, err
	}
	return s, nil
}

// Reopen rebuilds a store from an existing pager (written by a previous
// store using the same page size). The indexes are reconstructed with one
// sequential scan of the range records; the ID allocator state is restored
// from the meta page.
func Reopen(cfg Config, pager pagestore.Pager, metaPage pagestore.PageID) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.ReadOnly && cfg.Mode == FullIndex {
		return nil, fmt.Errorf("%w: FullIndex mode allocates index pages at open and cannot run read-only", ErrReadOnly)
	}
	cfg.Pager = pager
	b := budget.New(cfg.MemoryBudget)
	pool := pagestore.NewBufferPool(pager, cfg.PoolPages)
	pool.SetBudget(b)
	recs, err := pagestore.OpenRecordStore(pool, metaPage)
	if err != nil {
		return nil, err
	}
	s := &Store{
		cfg:       cfg,
		pool:      pool,
		recs:      recs,
		rindex:    btree.New[*rangeInfo](),
		byRange:   make(map[RangeID]*rangeInfo),
		byLoc:     make(map[pagestore.Loc]*rangeInfo),
		nextID:    1,
		nextRange: 1,
		budget:    b,
		adm:       newAdmission(cfg.MaxConcurrentOps, cfg.MaxQueuedOps),
	}
	s.releaseFn = func() { s.adm.release() }
	s.plans = plancache.New(cfg.PlanCacheEntries, b)
	if err := s.initIndexes(); err != nil {
		return nil, err
	}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) initIndexes() error {
	s.checkpoints = newCheckpointTable(s.budget)
	switch s.cfg.Mode {
	case RangePartial:
		s.partial = newPartialIndex(s.cfg.PartialCapacity, s.budget)
	case FullIndex:
		fx, err := newFullIndex(s.pool)
		if err != nil {
			return err
		}
		s.full = fx
	}
	return nil
}

// rebuild reconstructs all in-memory state from the record store.
func (s *Store) rebuild() error {
	var scanErr error
	err := s.recs.Scan(func(loc pagestore.Loc, payload []byte) bool {
		id, start, nodes, toks, tokenBytes, err := decodeRangeHeader(payload)
		if err != nil {
			scanErr = err
			return false
		}
		ri := &rangeInfo{
			id: id, start: start, nodes: nodes,
			loc: loc, toks: toks, bytes: len(tokenBytes),
		}
		s.register(ri)
		if s.full != nil {
			if err := s.full.addFragment(ri, tokenBytes); err != nil {
				scanErr = err
				return false
			}
		}
		if id >= s.nextRange {
			s.nextRange = id + 1
		}
		if nodes > 0 && start+NodeID(nodes) > s.nextID {
			s.nextID = start + NodeID(nodes)
		}
		return true
	})
	if err != nil {
		return err
	}
	if scanErr != nil {
		return scanErr
	}
	// Restore allocator high-water marks (they may exceed what live ranges
	// imply, because deleted ids are never reused).
	meta, err := s.recs.UserMeta()
	if err != nil {
		return err
	}
	if len(meta) >= 12 {
		id := NodeID(binary.LittleEndian.Uint64(meta[0:]))
		rng := RangeID(binary.LittleEndian.Uint32(meta[8:]))
		if id > s.nextID {
			s.nextID = id
		}
		if rng > s.nextRange {
			s.nextRange = rng
		}
	}
	return nil
}

// MetaPage returns the page id needed to Reopen this store later.
func (s *Store) MetaPage() pagestore.PageID { return s.recs.MetaPage() }

// Flush writes all dirty pages and the allocator state back to the pager.
// Pagers with atomic batch commit (write-ahead logged) are committed, so
// the flushed state is crash-consistent. A failed flush or commit degrades
// the store to read-only: the on-disk state is no longer known-good, and
// further writes could compound the damage (recovery on reopen repairs it).
func (s *Store) Flush() (err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.latchCorrupt(&err)
	if err := s.writableLocked(); err != nil {
		return err
	}
	return s.flushLocked()
}

// flushLocked is Flush's body, for callers already holding s.mu (repair
// and backup flush before reading raw pages).
func (s *Store) flushLocked() (err error) {
	if err = s.saveAllocState(); err != nil {
		return err
	}
	if err = s.pool.FlushAll(); err != nil {
		return err
	}
	if c, ok := s.pool.Pager().(interface{ Commit() error }); ok {
		if err = c.Commit(); err != nil {
			s.degrade(fmt.Errorf("wal commit failed: %w", err))
			return err
		}
	}
	return nil
}

func (s *Store) saveAllocState() error {
	meta := make([]byte, 12)
	binary.LittleEndian.PutUint64(meta[0:], uint64(s.nextID))
	binary.LittleEndian.PutUint32(meta[8:], uint32(s.nextRange))
	return s.recs.SetUserMeta(meta)
}

// Close flushes and shuts down the store. A degraded (read-only) store
// closes without writing anything: its dirty pages are suspect, and the
// on-disk state plus WAL recovery are the source of truth.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.plans.Reset()
	if s.cfg.ReadOnly {
		// Nothing was (or could be) written; just release the pager and
		// its shared advisory lock.
		return s.pool.Pager().Close()
	}
	if ro, _ := s.ReadOnly(); ro {
		// The operation that degraded the store already reported the
		// corruption; closing the file handles is all that is safe to do.
		return s.pool.Pager().Close()
	}
	if err := s.saveAllocState(); err != nil {
		return err
	}
	return s.pool.Close()
}

// Mode returns the active index mode.
func (s *Store) Mode() IndexMode { return s.cfg.Mode }

// PlanCache returns the store's compiled-plan cache (nil when disabled).
// The query packages key it by expression source; core stays agnostic to
// what the values are.
func (s *Store) PlanCache() *plancache.Cache { return s.plans }

// QueryCounters counts query-planner outcomes. The query layer (which runs
// outside the store lock) bumps these through the accessor; Stats snapshots
// them.
type QueryCounters struct {
	pushdownQueries    atomic.Uint64
	pushdownPredicates atomic.Uint64
	fallbackQueries    atomic.Uint64
}

// NotePushdown counts one query answered by a pushed-down index/scan probe
// that evaluated npreds predicates inside the scan.
func (q *QueryCounters) NotePushdown(npreds int) {
	q.pushdownQueries.Add(1)
	if npreds > 0 {
		q.pushdownPredicates.Add(uint64(npreds))
	}
}

// NoteFallback counts one query that fell back to the materializing
// evaluator.
func (q *QueryCounters) NoteFallback() { q.fallbackQueries.Add(1) }

// QueryCounters returns the store's query-outcome counters for the query
// layer to bump.
func (s *Store) QueryCounters() *QueryCounters { return &s.query }

// OpContext applies the store's configured OpTimeout to ctx (when ctx has no
// deadline of its own) for work that runs outside a store operation — query
// evaluation over an already-materialized view. The returned cancel must be
// called.
func (s *Store) OpContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.cfg.OpTimeout > 0 && !isCritical(ctx) {
		if _, has := ctx.Deadline(); !has {
			return context.WithTimeout(ctx, s.cfg.OpTimeout)
		}
	}
	return ctx, func() {}
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Ranges:            len(s.byRange),
		RangeIndexEntries: s.rindex.Len(),
		Nodes:             s.nodes,
		Tokens:            s.tokens,
		Bytes:             s.bytes,
		Inserts:           s.inserts,
		Deletes:           s.deletes,
		Splits:            s.splits,
		Merges:            s.merges,
		TokensScanned:     s.tokensScanned.Load(),
		NodeLookups:       s.nodeLookups.Load(),
		Pool:              s.pool.Stats(),
	}
	if s.full != nil {
		st.FullIndexEntries = s.full.len()
	}
	if s.partial != nil {
		st.PartialEntries = s.partial.len()
		st.PartialHits = s.partial.stats.hits.Load()
		st.PartialMisses = s.partial.stats.misses.Load()
		st.PartialEvictions = s.partial.stats.evictions.Load()
		st.PartialInvalidations = s.partial.stats.invalidations.Load()
	}
	ps := s.plans.Snapshot()
	st.PlanCacheEntries = ps.Entries
	st.PlanCacheBytes = ps.Bytes
	st.PlanCacheHits = ps.Hits
	st.PlanCacheMisses = ps.Misses
	st.PlanCacheEvictions = ps.Evictions
	st.PushdownQueries = s.query.pushdownQueries.Load()
	st.PushdownPredicates = s.query.pushdownPredicates.Load()
	st.FallbackQueries = s.query.fallbackQueries.Load()
	st.Admission = s.adm.snapshot()
	st.Memory = s.budget.Snapshot()
	st.Health = s.healthSummary(st.Memory)
	if as, ok := s.pool.Pager().(interface{ ArchiveStats() (int, int64) }); ok {
		st.ArchiveSegments, st.ArchiveBytes = as.ArchiveStats()
	}
	if hw, ok := s.pool.Pager().(interface {
		Archiving() bool
		LSN() uint64
	}); ok && hw.Archiving() {
		st.ArchiveLSN = hw.LSN()
	}
	return st
}

// ArchiveDir returns the WAL segment archive directory backing this store,
// or "" when the pager does not archive — the directory a replication
// source serves segments from.
func (s *Store) ArchiveDir() string {
	if ad, ok := s.pool.Pager().(interface{ ArchiveDir() string }); ok {
		return ad.ArchiveDir()
	}
	return ""
}

// Health returns the explicit health summary on its own — cheaper than a
// full Stats snapshot, and safe on a degraded store.
func (s *Store) Health() HealthSummary {
	return s.healthSummary(s.budget.Snapshot())
}

func (s *Store) healthSummary(mem budget.Stats) HealthSummary {
	h := HealthSummary{ReadOnly: s.cfg.ReadOnly}
	if s.cfg.ReadOnly {
		h.ReadOnlyCause = "opened read-only"
	}
	if degraded, cause := s.ReadOnly(); degraded {
		h.Degraded = true
		h.ReadOnly = true
		h.ReadOnlyCause = cause.Error()
	}
	if mem.Limit > 0 {
		h.BudgetPressure = float64(mem.Used) / float64(mem.Limit)
	}
	return h
}

// allocIDs reserves n contiguous node ids and returns the first.
func (s *Store) allocIDs(n int) NodeID {
	start := s.nextID
	s.nextID += NodeID(n)
	return start
}

func (s *Store) allocRangeID() RangeID {
	id := s.nextRange
	s.nextRange++
	return id
}

// register installs a rangeInfo into the lookup structures and counters.
func (s *Store) register(ri *rangeInfo) {
	s.byRange[ri.id] = ri
	s.byLoc[ri.loc] = ri
	if ri.nodes > 0 {
		s.rindex.Set(uint64(ri.start), ri)
	}
	s.nodes += uint64(ri.nodes)
	s.tokens += uint64(ri.toks)
	s.bytes += uint64(ri.bytes)
}

// unregister removes a rangeInfo from the lookup structures and counters.
// The record itself is deleted by the caller.
func (s *Store) unregister(ri *rangeInfo) {
	delete(s.byRange, ri.id)
	delete(s.byLoc, ri.loc)
	if ri.nodes > 0 {
		s.rindex.Delete(uint64(ri.start))
	}
	s.nodes -= uint64(ri.nodes)
	s.tokens -= uint64(ri.toks)
	s.bytes -= uint64(ri.bytes)
}

// applyMoves repairs byLoc and rangeInfo locations after page splits.
func (s *Store) applyMoves(moves []pagestore.Move) {
	for _, m := range moves {
		ri, ok := s.byLoc[m.From]
		if !ok {
			continue
		}
		delete(s.byLoc, m.From)
		ri.loc = m.To
		s.byLoc[m.To] = ri
	}
}

// scratch is a per-operation reusable range buffer. Read-only operations
// (scans, locates, navigation) funnel every range read of one operation
// through a single pooled scratch, so a random read of a 100+ KB coarse
// range costs zero heap allocation instead of a fresh copy per read — the
// allocation rate that made cold coarse reads degrade with core count by
// keeping the collector permanently busy.
//
// Alias discipline: a scratch holds at most ONE range's bytes; every
// readRangeCtx into the same scratch invalidates the previous contents.
// All scratch-using paths read ranges strictly sequentially and never keep
// two range buffers live at once. Mutating paths pass a nil scratch and get
// private copies, which may outlive subsequent reads.
type scratch struct{ buf []byte }

// scratchRetainBytes caps the capacity a pooled scratch keeps; an outlier
// range does not pin its footprint in the pool forever.
const scratchRetainBytes = 1 << 20

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

func putScratch(sc *scratch) {
	if cap(sc.buf) > scratchRetainBytes {
		sc.buf = nil
	}
	scratchPool.Put(sc)
}

// readRange returns the encoded token bytes of ri (a fresh copy).
func (s *Store) readRange(ri *rangeInfo) ([]byte, error) {
	return s.readRangeCtx(context.Background(), ri, nil)
}

// readRangeCtx is readRange with cooperative cancellation at page-fetch
// boundaries (a coarse range can span a long overflow chain). Mutation
// apply phases use plain readRange — past the point of no return an
// operation must run to completion.
//
// A non-nil sc reuses (and invalidates) the scratch's buffer; the returned
// bytes alias it and are valid only until the next read into the same
// scratch. A nil sc allocates a private copy.
func (s *Store) readRangeCtx(ctx context.Context, ri *rangeInfo, sc *scratch) ([]byte, error) {
	var payload []byte
	var err error
	if sc != nil {
		payload, err = s.recs.ReadCtxInto(ctx, ri.loc, sc.buf)
		if err == nil {
			sc.buf = payload
		}
	} else {
		payload, err = s.recs.ReadCtx(ctx, ri.loc)
	}
	if err != nil {
		return nil, err
	}
	id, _, _, _, tokenBytes, err := decodeRangeHeader(payload)
	if err != nil {
		return nil, err
	}
	if id != ri.id {
		return nil, fmt.Errorf("core: record at %v is range %d, expected %d", ri.loc, id, ri.id)
	}
	return tokenBytes, nil
}

// nextRangeInfoCtx is nextRangeInfo with a cancellation check, for read
// loops that walk many ranges under one deadline.
func (s *Store) nextRangeInfoCtx(ctx context.Context, ri *rangeInfo) (*rangeInfo, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	return s.nextRangeInfo(ri)
}

// nextRangeInfo returns the range following ri in document order.
func (s *Store) nextRangeInfo(ri *rangeInfo) (*rangeInfo, bool, error) {
	loc, ok, err := s.recs.Next(ri.loc)
	if err != nil || !ok {
		return nil, false, err
	}
	nri, ok := s.byLoc[loc]
	if !ok {
		return nil, false, fmt.Errorf("core: record at %v has no range info", loc)
	}
	return nri, true, nil
}

// prevRangeInfo returns the range preceding ri in document order.
func (s *Store) prevRangeInfo(ri *rangeInfo) (*rangeInfo, bool, error) {
	loc, ok, err := s.recs.Prev(ri.loc)
	if err != nil || !ok {
		return nil, false, err
	}
	pri, ok := s.byLoc[loc]
	if !ok {
		return nil, false, fmt.Errorf("core: record at %v has no range info", loc)
	}
	return pri, true, nil
}

// firstRange returns the first range in document order.
func (s *Store) firstRange() (*rangeInfo, bool, error) {
	loc, ok, err := s.recs.First()
	if err != nil || !ok {
		return nil, false, err
	}
	ri, ok := s.byLoc[loc]
	if !ok {
		return nil, false, fmt.Errorf("core: record at %v has no range info", loc)
	}
	return ri, true, nil
}

// writeRangeRecord rewrites ri's record after its content changed, fixing
// location maps for any relocations, and bumps the range version.
func (s *Store) writeRangeRecord(ri *rangeInfo, tokenBytes []byte) error {
	rec := encodeRangeRecord(ri.id, ri.start, ri.nodes, ri.toks, tokenBytes)
	oldLoc := ri.loc
	newLoc, moves, err := s.recs.Update(ri.loc, rec)
	if err != nil {
		return err
	}
	s.applyMoves(moves)
	if newLoc != oldLoc {
		// ri may have been moved by applyMoves already (it cannot: its From
		// would be oldLoc which is being replaced) — fix explicitly.
		delete(s.byLoc, ri.loc)
		ri.loc = newLoc
		s.byLoc[newLoc] = ri
	}
	ri.version++
	return nil
}
