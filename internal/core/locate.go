package core

import (
	"fmt"

	"repro/internal/token"
)

// tokenPos addresses one token (or the end-of-range position) inside a
// range: the token at index tokIdx, starting at byte byteOff of the range's
// encoded tokens. nodesBefore counts the node-starting tokens strictly
// before tokIdx — the quantity a split needs to partition the range's ID
// interval.
type tokenPos struct {
	ri          *rangeInfo
	tokIdx      int
	byteOff     int
	nodesBefore int
}

func (p tokenPos) atRangeEnd() bool { return p.byteOff >= p.ri.bytes }

// locateBegin finds the begin token of node id, consulting the indexes in
// the paper's priority order: full index (if configured), then partial
// index, then the coarse range index plus a scan. It returns the position,
// the decoded begin token, and the encoded token bytes of the containing
// range (for reuse by callers that keep scanning).
func (s *Store) locateBegin(id NodeID) (tokenPos, Token, []byte, error) {
	s.nodeLookups++

	// Full index: exact entry per node.
	if s.full != nil {
		e, ok, err := s.full.get(id)
		if err != nil {
			return tokenPos{}, Token{}, nil, err
		}
		if ok {
			ri := s.byRange[e.rng]
			if ri == nil {
				return tokenPos{}, Token{}, nil, fmt.Errorf("core: full index names dead range %d", e.rng)
			}
			tokenBytes, err := s.readRange(ri)
			if err != nil {
				return tokenPos{}, Token{}, nil, err
			}
			tok, _, err := token.Decode(tokenBytes[e.byteOff:])
			if err != nil {
				return tokenPos{}, Token{}, nil, err
			}
			pos := tokenPos{ri: ri, tokIdx: int(e.tokIdx), byteOff: int(e.byteOff), nodesBefore: int(id - ri.start)}
			return pos, tok, tokenBytes, nil
		}
		return tokenPos{}, Token{}, nil, fmt.Errorf("%w: %d", ErrNoSuchNode, id)
	}

	// Partial index: lazily learned exact positions.
	if s.partial != nil {
		if e := s.partial.lookup(id); e != nil {
			ri := s.byRange[e.beginRange]
			if ri != nil && ri.version == e.beginVer {
				s.partial.stats.hits++
				tokenBytes, err := s.readRange(ri)
				if err != nil {
					return tokenPos{}, Token{}, nil, err
				}
				tok, _, err := token.Decode(tokenBytes[e.beginByte:])
				if err != nil {
					return tokenPos{}, Token{}, nil, err
				}
				pos := tokenPos{ri: ri, tokIdx: int(e.beginTok), byteOff: int(e.beginByte), nodesBefore: int(id - ri.start)}
				return pos, tok, tokenBytes, nil
			}
			// Stale: the range was mutated or removed. Lazy invalidation.
			s.partial.drop(e)
		}
		s.partial.stats.misses++
	}

	// Coarse range index: floor search on interval start, then scan. The
	// scan classifies tokens by their kind byte and skips decoding names
	// and values until the target is found.
	_, ri, ok := s.rindex.Floor(uint64(id))
	if !ok || !ri.contains(id) {
		return tokenPos{}, Token{}, nil, fmt.Errorf("%w: %d", ErrNoSuchNode, id)
	}
	tokenBytes, err := s.readRange(ri)
	if err != nil {
		return tokenPos{}, Token{}, nil, err
	}
	r := newTokenReader(tokenBytes)
	cur := ri.start
	tokIdx := 0
	for r.More() {
		off := r.Offset()
		if token.Kind(tokenBytes[off]).StartsNode() {
			if cur == id {
				tok, _, err := token.Decode(tokenBytes[off:])
				if err != nil {
					return tokenPos{}, Token{}, nil, err
				}
				pos := tokenPos{ri: ri, tokIdx: tokIdx, byteOff: off, nodesBefore: int(id - ri.start)}
				if s.partial != nil {
					s.partial.recordBegin(id, ri.id, ri.version, off, tokIdx)
				}
				return pos, tok, tokenBytes, nil
			}
			cur++
		}
		if _, err := r.Skip(); err != nil {
			return tokenPos{}, Token{}, nil, err
		}
		s.tokensScanned++
		tokIdx++
	}
	return tokenPos{}, Token{}, nil, fmt.Errorf("core: range %v claims id %d but scan missed it", ri, id)
}

// locateEnd finds the end token of the node whose begin token is at `begin`
// (with the given decoded token). For leaf tokens the end is the begin
// itself. The returned token bytes belong to the range containing the end
// position.
//
// beginBytes are the encoded tokens of begin.ri, passed through to avoid a
// re-read when the scan starts in the same range.
func (s *Store) locateEnd(id NodeID, begin tokenPos, beginTok Token, beginBytes []byte) (tokenPos, []byte, error) {
	if !beginTok.IsBegin() {
		return begin, beginBytes, nil
	}

	// The partial index may know the end position already.
	if s.partial != nil {
		if e := s.partial.lookup(id); e != nil && e.hasEnd {
			ri := s.byRange[e.endRange]
			if ri != nil && ri.version == e.endVer {
				s.partial.stats.hits++
				var tokenBytes []byte
				var err error
				if ri == begin.ri {
					tokenBytes = beginBytes
				} else if tokenBytes, err = s.readRange(ri); err != nil {
					return tokenPos{}, nil, err
				}
				// endNodesBefore was stored in endTok's companion field via
				// nodesBefore packing; recompute cheaply when in the begin
				// range, otherwise scan-free value is stored.
				pos := tokenPos{ri: ri, tokIdx: int(e.endTok), byteOff: int(e.endByte), nodesBefore: int(e.endNodesBefore)}
				return pos, tokenBytes, nil
			}
		}
	}

	// Scan forward from the begin token, counting depth, crossing ranges in
	// document order as needed. Only token kinds are examined.
	ri := begin.ri
	tokenBytes := beginBytes
	r := newTokenReader(tokenBytes)
	r.SetOffset(begin.byteOff)
	tokIdx := begin.tokIdx
	nodesSeen := begin.nodesBefore
	depth := 0
	for {
		for r.More() {
			off := r.Offset()
			k, err := r.Skip()
			if err != nil {
				return tokenPos{}, nil, err
			}
			s.tokensScanned++
			if k.StartsNode() {
				nodesSeen++
			}
			if k.IsBegin() {
				depth++
			} else if k.IsEnd() {
				depth--
				if depth == 0 {
					pos := tokenPos{ri: ri, tokIdx: tokIdx, byteOff: off, nodesBefore: nodesSeen}
					if s.partial != nil {
						e := s.partial.recordEnd(id, ri.id, ri.version, off, tokIdx)
						e.endNodesBefore = int32(nodesSeen)
						e.endLen = int32(r.Offset() - off)
					}
					return pos, tokenBytes, nil
				}
			}
			tokIdx++
		}
		// Continue into the next range.
		nri, ok, err := s.nextRangeInfo(ri)
		if err != nil {
			return tokenPos{}, nil, err
		}
		if !ok {
			return tokenPos{}, nil, fmt.Errorf("core: unbalanced store: no end token for node %d", id)
		}
		ri = nri
		tokenBytes, err = s.readRange(ri)
		if err != nil {
			return tokenPos{}, nil, err
		}
		r = newTokenReader(tokenBytes)
		tokIdx = 0
		nodesSeen = 0
	}
}

// advance returns the position immediately after the token at pos (given the
// token bytes of pos.ri). The result may be the end-of-range position; it is
// never advanced into the next range (record-level inserts handle that
// boundary directly).
func advance(pos tokenPos, tokenBytes []byte) (tokenPos, error) {
	t, n, err := token.Decode(tokenBytes[pos.byteOff:])
	if err != nil {
		return tokenPos{}, err
	}
	nb := pos.nodesBefore
	if t.StartsNode() {
		nb++
	}
	return tokenPos{ri: pos.ri, tokIdx: pos.tokIdx + 1, byteOff: pos.byteOff + n, nodesBefore: nb}, nil
}

// skipAttributes advances pos (which must sit just after an element's begin
// token) past the element's attribute block, returning the position of the
// first content token (or the element's end token) plus the token bytes of
// the range it lies in. The scan crosses range boundaries, since a split may
// have cut through the attribute block.
func (s *Store) skipAttributes(pos tokenPos, tokenBytes []byte) (tokenPos, []byte, error) {
	depth := 0
	for {
		r := newTokenReader(tokenBytes)
		r.SetOffset(pos.byteOff)
		for !pos.atRangeEnd() {
			k := token.Kind(tokenBytes[pos.byteOff])
			if depth == 0 && k != token.BeginAttribute {
				return pos, tokenBytes, nil
			}
			if _, err := r.Skip(); err != nil {
				return tokenPos{}, nil, err
			}
			if k.IsBegin() {
				depth++
			} else if k.IsEnd() {
				depth--
			}
			if k.StartsNode() {
				pos.nodesBefore++
			}
			s.tokensScanned++
			pos.tokIdx++
			pos.byteOff = r.Offset()
		}
		nri, ok, err := s.nextRangeInfo(pos.ri)
		if err != nil {
			return tokenPos{}, nil, err
		}
		if !ok {
			// End of the sequence: valid boundary position.
			return pos, tokenBytes, nil
		}
		pos = tokenPos{ri: nri}
		tokenBytes, err = s.readRange(nri)
		if err != nil {
			return tokenPos{}, nil, err
		}
	}
}
