package core

import (
	"context"
	"fmt"

	"repro/internal/token"
)

// locateCheckTokens is how many in-memory tokens a locate scan classifies
// between context checks. Page fetches check the context on every fetch;
// this bounds the purely in-memory stretch of a very coarse range.
const locateCheckTokens = 8192

// tokenPos addresses one token (or the end-of-range position) inside a
// range: the token at index tokIdx, starting at byte byteOff of the range's
// encoded tokens. nodesBefore counts the node-starting tokens strictly
// before tokIdx — the quantity a split needs to partition the range's ID
// interval.
type tokenPos struct {
	ri          *rangeInfo
	tokIdx      int
	byteOff     int
	nodesBefore int
}

func (p tokenPos) atRangeEnd() bool { return p.byteOff >= p.ri.bytes }

// locateBegin finds the begin token of node id, consulting the indexes in
// the paper's priority order: full index (if configured), then partial
// index, then the coarse range index plus a scan resumed from the nearest
// replay checkpoint. It returns the position, the decoded begin token, and
// the encoded token bytes of the containing range (for reuse by callers
// that keep scanning).
//
// Safe under mu.RLock: the structures it reads are only mutated under the
// write lock, and the structures it writes (partial index, checkpoint
// table, counters) are internally synchronized.
//
// ctx is observed at page-fetch boundaries and every locateCheckTokens
// tokens of replay, so an operation deadline cuts a coarse-range replay
// short with context.DeadlineExceeded instead of running it to the end.
func (s *Store) locateBegin(ctx context.Context, id NodeID, sc *scratch) (tokenPos, Token, []byte, error) {
	s.nodeLookups.Add(1)

	// Full index: exact entry per node.
	if s.full != nil {
		e, ok, err := s.full.get(id)
		if err != nil {
			return tokenPos{}, Token{}, nil, err
		}
		if ok {
			ri := s.byRange[e.rng]
			if ri == nil {
				return tokenPos{}, Token{}, nil, fmt.Errorf("core: full index names dead range %d", e.rng)
			}
			tokenBytes, err := s.readRangeCtx(ctx, ri, sc)
			if err != nil {
				return tokenPos{}, Token{}, nil, err
			}
			tok, _, err := token.Decode(tokenBytes[e.byteOff:])
			if err != nil {
				return tokenPos{}, Token{}, nil, err
			}
			pos := tokenPos{ri: ri, tokIdx: int(e.tokIdx), byteOff: int(e.byteOff), nodesBefore: int(id - ri.start)}
			return pos, tok, tokenBytes, nil
		}
		return tokenPos{}, Token{}, nil, fmt.Errorf("%w: %d", ErrNoSuchNode, id)
	}

	// Partial index: lazily learned exact positions.
	if s.partial != nil {
		if e, ok := s.partial.lookup(id); ok {
			ri := s.byRange[e.beginRange]
			if ri != nil && ri.version == e.beginVer {
				s.partial.hit()
				tokenBytes, err := s.readRangeCtx(ctx, ri, sc)
				if err != nil {
					return tokenPos{}, Token{}, nil, err
				}
				tok, _, err := token.Decode(tokenBytes[e.beginByte:])
				if err != nil {
					return tokenPos{}, Token{}, nil, err
				}
				pos := tokenPos{ri: ri, tokIdx: int(e.beginTok), byteOff: int(e.beginByte), nodesBefore: int(id - ri.start)}
				return pos, tok, tokenBytes, nil
			}
			// Stale: the range was mutated or removed. Lazy invalidation.
			s.partial.dropStale(e)
		}
		s.partial.miss()
	}

	// Coarse range index: floor search on interval start, then a replay
	// scan. The scan classifies tokens by their kind byte and skips decoding
	// names and values until the target is found; it resumes from the
	// nearest intra-range checkpoint and deposits new checkpoints every
	// checkpointInterval tokens for the next locate to reuse.
	_, ri, ok := s.rindex.Floor(uint64(id))
	if !ok || !ri.contains(id) {
		return tokenPos{}, Token{}, nil, fmt.Errorf("%w: %d", ErrNoSuchNode, id)
	}
	tokenBytes, err := s.readRangeCtx(ctx, ri, sc)
	if err != nil {
		return tokenPos{}, Token{}, nil, err
	}
	cur := ri.start
	tokIdx := 0
	off := 0
	// prefix is the shared, immutable checkpoint run resumed from; builder
	// stays nil (no allocation) until this scan actually extends the run,
	// and only then clones the prefix into private storage.
	var prefix, builder []replayCheckpoint
	memoize := ri.toks >= checkpointMinTokens
	if memoize {
		if cps := s.checkpoints.get(ri.id, ri.version); cps != nil {
			if cp, pfx, ok := resumeFrom(cps, id); ok {
				cur, tokIdx, off = cp.next, int(cp.tokIdx), int(cp.byteOff)
				prefix = pfx
			}
		}
	}
	cpLen := len(prefix)
	scanned := uint64(0)
	for off < len(tokenBytes) {
		if scanned%locateCheckTokens == locateCheckTokens-1 {
			if err := ctx.Err(); err != nil {
				s.tokensScanned.Add(scanned)
				return tokenPos{}, Token{}, nil, err
			}
		}
		if memoize && tokIdx == (cpLen+1)*checkpointInterval {
			if builder == nil {
				builder = append(make([]replayCheckpoint, 0, cpLen+4), prefix...)
			}
			builder = append(builder, replayCheckpoint{next: cur, tokIdx: int32(tokIdx), byteOff: int32(off)})
			cpLen++
		}
		if token.Kind(tokenBytes[off]).StartsNode() {
			if cur == id {
				tok, _, err := token.Decode(tokenBytes[off:])
				if err != nil {
					return tokenPos{}, Token{}, nil, err
				}
				pos := tokenPos{ri: ri, tokIdx: tokIdx, byteOff: off, nodesBefore: int(id - ri.start)}
				if s.partial != nil {
					s.partial.recordBegin(id, ri.id, ri.version, off, tokIdx)
				}
				if builder != nil {
					s.checkpoints.publish(ri.id, ri.version, builder)
				}
				s.tokensScanned.Add(scanned)
				return pos, tok, tokenBytes, nil
			}
			cur++
		}
		n, err := token.Size(tokenBytes[off:])
		if err != nil {
			return tokenPos{}, Token{}, nil, err
		}
		off += n
		scanned++
		tokIdx++
	}
	s.tokensScanned.Add(scanned)
	return tokenPos{}, Token{}, nil, fmt.Errorf("core: range %v claims id %d but scan missed it", ri, id)
}

// locateEnd finds the end token of the node whose begin token is at `begin`
// (with the given decoded token). For leaf tokens the end is the begin
// itself. The returned token bytes belong to the range containing the end
// position.
//
// beginBytes are the encoded tokens of begin.ri, passed through to avoid a
// re-read when the scan starts in the same range.
func (s *Store) locateEnd(ctx context.Context, id NodeID, begin tokenPos, beginTok Token, beginBytes []byte, sc *scratch) (tokenPos, []byte, error) {
	if !beginTok.IsBegin() {
		return begin, beginBytes, nil
	}

	// The partial index may know the end position already.
	if s.partial != nil {
		if e, ok := s.partial.lookup(id); ok && e.hasEnd {
			ri := s.byRange[e.endRange]
			if ri != nil && ri.version == e.endVer {
				s.partial.hit()
				var tokenBytes []byte
				var err error
				if ri == begin.ri {
					tokenBytes = beginBytes
				} else if tokenBytes, err = s.readRangeCtx(ctx, ri, sc); err != nil {
					return tokenPos{}, nil, err
				}
				pos := tokenPos{ri: ri, tokIdx: int(e.endTok), byteOff: int(e.endByte), nodesBefore: int(e.endNodesBefore)}
				return pos, tokenBytes, nil
			}
		}
	}

	// Scan forward from the begin token, counting depth, crossing ranges in
	// document order as needed. Only token kinds are examined.
	ri := begin.ri
	tokenBytes := beginBytes
	off := begin.byteOff
	tokIdx := begin.tokIdx
	nodesSeen := begin.nodesBefore
	depth := 0
	scanned := uint64(0)
	for {
		for off < len(tokenBytes) {
			if scanned%locateCheckTokens == locateCheckTokens-1 {
				if err := ctx.Err(); err != nil {
					s.tokensScanned.Add(scanned)
					return tokenPos{}, nil, err
				}
			}
			k := token.Kind(tokenBytes[off])
			n, err := token.Size(tokenBytes[off:])
			if err != nil {
				s.tokensScanned.Add(scanned)
				return tokenPos{}, nil, err
			}
			scanned++
			if k.StartsNode() {
				nodesSeen++
			}
			if k.IsBegin() {
				depth++
			} else if k.IsEnd() {
				depth--
				if depth == 0 {
					pos := tokenPos{ri: ri, tokIdx: tokIdx, byteOff: off, nodesBefore: nodesSeen}
					if s.partial != nil {
						s.partial.recordEnd(id, ri.id, ri.version, off, tokIdx, int32(nodesSeen), int32(n))
					}
					s.tokensScanned.Add(scanned)
					return pos, tokenBytes, nil
				}
			}
			off += n
			tokIdx++
		}
		// Continue into the next range.
		nri, ok, err := s.nextRangeInfoCtx(ctx, ri)
		if err != nil {
			s.tokensScanned.Add(scanned)
			return tokenPos{}, nil, err
		}
		if !ok {
			s.tokensScanned.Add(scanned)
			return tokenPos{}, nil, fmt.Errorf("core: unbalanced store: no end token for node %d", id)
		}
		ri = nri
		tokenBytes, err = s.readRangeCtx(ctx, ri, sc)
		if err != nil {
			s.tokensScanned.Add(scanned)
			return tokenPos{}, nil, err
		}
		off = 0
		tokIdx = 0
		nodesSeen = 0
	}
}

// advance returns the position immediately after the token at pos (given the
// token bytes of pos.ri). The result may be the end-of-range position; it is
// never advanced into the next range (record-level inserts handle that
// boundary directly). Only the kind byte and encoded size are examined — no
// string decoding, no allocation.
func advance(pos tokenPos, tokenBytes []byte) (tokenPos, error) {
	k := token.Kind(tokenBytes[pos.byteOff])
	if !k.Valid() {
		return tokenPos{}, fmt.Errorf("core: invalid token kind %d at %d", tokenBytes[pos.byteOff], pos.byteOff)
	}
	n, err := token.Size(tokenBytes[pos.byteOff:])
	if err != nil {
		return tokenPos{}, err
	}
	nb := pos.nodesBefore
	if k.StartsNode() {
		nb++
	}
	return tokenPos{ri: pos.ri, tokIdx: pos.tokIdx + 1, byteOff: pos.byteOff + n, nodesBefore: nb}, nil
}

// skipAttributes advances pos (which must sit just after an element's begin
// token) past the element's attribute block, returning the position of the
// first content token (or the element's end token) plus the token bytes of
// the range it lies in. The scan crosses range boundaries, since a split may
// have cut through the attribute block. The walk reads kind bytes and
// encoded sizes only.
func (s *Store) skipAttributes(ctx context.Context, pos tokenPos, tokenBytes []byte, sc *scratch) (tokenPos, []byte, error) {
	depth := 0
	scanned := uint64(0)
	defer func() { s.tokensScanned.Add(scanned) }()
	for {
		for !pos.atRangeEnd() {
			if scanned%locateCheckTokens == locateCheckTokens-1 {
				if err := ctx.Err(); err != nil {
					return tokenPos{}, nil, err
				}
			}
			k := token.Kind(tokenBytes[pos.byteOff])
			if depth == 0 && k != token.BeginAttribute {
				return pos, tokenBytes, nil
			}
			n, err := token.Size(tokenBytes[pos.byteOff:])
			if err != nil {
				return tokenPos{}, nil, err
			}
			if k.IsBegin() {
				depth++
			} else if k.IsEnd() {
				depth--
			}
			if k.StartsNode() {
				pos.nodesBefore++
			}
			scanned++
			pos.tokIdx++
			pos.byteOff += n
		}
		nri, ok, err := s.nextRangeInfoCtx(ctx, pos.ri)
		if err != nil {
			return tokenPos{}, nil, err
		}
		if !ok {
			// End of the sequence: valid boundary position.
			return pos, tokenBytes, nil
		}
		pos = tokenPos{ri: nri}
		tokenBytes, err = s.readRangeCtx(ctx, nri, sc)
		if err != nil {
			return tokenPos{}, nil, err
		}
	}
}
