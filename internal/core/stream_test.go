package core

import (
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/token"
	"repro/internal/xmltok"
)

func sliceSource(toks []Token) func() (Token, error) {
	i := 0
	return func() (Token, error) {
		if i >= len(toks) {
			return Token{}, io.EOF
		}
		t := toks[i]
		i++
		return t, nil
	}
}

func TestAppendStreamMatchesAppend(t *testing.T) {
	doc := buildFlatDoc(200)

	a := openStore(t, Config{Mode: RangeOnly})
	if _, err := a.Append(doc); err != nil {
		t.Fatal(err)
	}
	b := openStore(t, Config{Mode: RangeOnly})
	first, err := b.AppendStream(sliceSource(doc))
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Errorf("first id = %d", first)
	}
	ia, _ := a.ReadAll()
	ib, _ := b.ReadAll()
	if len(ia) != len(ib) {
		t.Fatalf("lengths differ: %d vs %d", len(ia), len(ib))
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("item %d differs", i)
		}
	}
	// Streamed loads are chunked into ranges (default 1024 tokens).
	if b.Stats().Ranges < 1 {
		t.Error("no ranges")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAppendStreamChunking(t *testing.T) {
	s := openStore(t, Config{Mode: RangeOnly, MaxRangeTokens: 16})
	doc := buildFlatDoc(100)
	if _, err := s.AppendStream(sliceSource(doc)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Ranges < 10 {
		t.Errorf("chunking produced only %d ranges", st.Ranges)
	}
	// Every node addressable.
	for id := NodeID(1); id <= NodeID(st.Nodes); id += 13 {
		if !s.Exists(id) {
			t.Errorf("node %d missing", id)
		}
	}
}

func TestAppendStreamFromScanner(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<big>")
	for i := 0; i < 500; i++ {
		sb.WriteString("<rec><v>x</v></rec>")
	}
	sb.WriteString("</big>")

	s := openStore(t, Config{Mode: RangePartial})
	sc := xmltok.NewScanner(strings.NewReader(sb.String()))
	if _, err := s.AppendStream(sc.Next); err != nil {
		t.Fatal(err)
	}
	xml, err := s.XMLString()
	if err != nil {
		t.Fatal(err)
	}
	if xml != sb.String() {
		t.Error("streamed round trip mismatch")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAppendStreamErrors(t *testing.T) {
	s := openStore(t, Config{})
	// Unbalanced stream.
	if _, err := s.AppendStream(sliceSource([]Token{token.Elem("a")})); !errors.Is(err, ErrBadFragment) {
		t.Errorf("unclosed: %v", err)
	}
	// Stray end token.
	if _, err := s.AppendStream(sliceSource([]Token{token.EndElem()})); !errors.Is(err, ErrBadFragment) {
		t.Errorf("stray end: %v", err)
	}
	// Empty stream.
	if _, err := s.AppendStream(sliceSource(nil)); !errors.Is(err, ErrBadFragment) {
		t.Errorf("empty: %v", err)
	}
	// Source error propagates.
	boom := errors.New("boom")
	if _, err := s.AppendStream(func() (Token, error) { return Token{}, boom }); !errors.Is(err, boom) {
		t.Errorf("source error: %v", err)
	}
	// The store remains consistent after failed streams.
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCompactMergesFragmentation(t *testing.T) {
	s := openStore(t, Config{Mode: RangeOnly, MaxRangeTokens: 8})
	ref := newRefStore()
	doc := buildFlatDoc(60)
	s.Append(doc)
	ref.append(doc)
	before := s.Stats().Ranges
	if before < 20 {
		t.Fatalf("setup: only %d ranges", before)
	}
	merged, err := s.Compact(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	if merged == 0 {
		t.Fatal("compact merged nothing")
	}
	after := s.Stats().Ranges
	if after != 1 {
		t.Errorf("contiguous load should compact to 1 range, got %d", after)
	}
	compareStores(t, s, ref, "after compact")
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}

	// With update-driven gaps, compaction merges only what id regeneration
	// allows.
	if err := s.DeleteNode(5); err != nil {
		t.Fatal(err)
	}
	ref.deleteNode(5)
	if _, err := s.InsertIntoLast(2, xmltok.MustParseFragment(`<n/>`)); err != nil {
		t.Fatal(err)
	}
	ref.insertIntoLast(2, xmltok.MustParseFragment(`<n/>`))
	if _, err := s.Compact(1 << 16); err != nil {
		t.Fatal(err)
	}
	compareStores(t, s, ref, "after compact with gaps")
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCompactRespectsSizeBound(t *testing.T) {
	s := openStore(t, Config{Mode: RangeOnly, MaxRangeTokens: 8})
	s.Append(buildFlatDoc(60))
	// A tiny bound prevents most merges.
	merged, err := s.Compact(64)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Ranges < 5 {
		t.Errorf("tiny bound over-merged: %d ranges (merged %d)", st.Ranges, merged)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
