package core

import (
	"encoding/binary"

	"repro/internal/diskbtree"
	"repro/internal/pagestore"
)

// The full index — the baseline the paper argues against (Section 4.1).
//
// One entry per node, eagerly maintained, stored in a paged B+tree that
// shares the buffer pool with the XML data itself. This is deliberately the
// cost model the paper attributes to full indexing: every insert dirties
// index pages, every split rebases a batch of entries, the index competes
// with data for cache space, and "the vast majority of the entries will not
// even be used". The coarse range index, thousands of times smaller, stays
// in memory — that asymmetry is the paper's point.

type fullEntry struct {
	rng     RangeID
	byteOff int32 // byte offset of the node's begin token within the range
	tokIdx  int32 // token index of the begin token within the range
}

const fullEntrySize = 12

func encodeFullEntry(e fullEntry) []byte {
	out := make([]byte, fullEntrySize)
	binary.LittleEndian.PutUint32(out[0:], uint32(e.rng))
	binary.LittleEndian.PutUint32(out[4:], uint32(e.byteOff))
	binary.LittleEndian.PutUint32(out[8:], uint32(e.tokIdx))
	return out
}

func decodeFullEntry(b []byte) fullEntry {
	return fullEntry{
		rng:     RangeID(binary.LittleEndian.Uint32(b[0:])),
		byteOff: int32(binary.LittleEndian.Uint32(b[4:])),
		tokIdx:  int32(binary.LittleEndian.Uint32(b[8:])),
	}
}

type fullIndex struct {
	t *diskbtree.Tree
}

func newFullIndex(pool *pagestore.BufferPool) (*fullIndex, error) {
	t, err := diskbtree.New(pool, fullEntrySize)
	if err != nil {
		return nil, err
	}
	return &fullIndex{t: t}, nil
}

func (fx *fullIndex) len() int { return fx.t.Len() }

func (fx *fullIndex) get(id NodeID) (fullEntry, bool, error) {
	v, ok, err := fx.t.Get(uint64(id))
	if err != nil || !ok {
		return fullEntry{}, false, err
	}
	return decodeFullEntry(v), true, nil
}

func (fx *fullIndex) set(id NodeID, e fullEntry) error {
	return fx.t.Set(uint64(id), encodeFullEntry(e))
}

// addFragment indexes every node of a freshly inserted range by scanning its
// encoded tokens once.
func (fx *fullIndex) addFragment(ri *rangeInfo, tokenBytes []byte) error {
	return indexNodes(ri, tokenBytes, func(id NodeID, e fullEntry) error {
		return fx.set(id, e)
	})
}

// rebase rewrites the entries of nodes [start, start+n-1] after they moved
// from the head of a split range into the tail: the range changes and the
// offsets shift left by the head's size.
func (fx *fullIndex) rebase(start NodeID, n int, newRange RangeID, byteDelta, tokDelta int32) error {
	if n <= 0 {
		return nil
	}
	type upd struct {
		id NodeID
		e  fullEntry
	}
	var ups []upd
	err := fx.t.Ascend(uint64(start), uint64(start)+uint64(n)-1, func(k uint64, v []byte) bool {
		e := decodeFullEntry(v)
		e.rng = newRange
		e.byteOff -= byteDelta
		e.tokIdx -= tokDelta
		ups = append(ups, upd{NodeID(k), e})
		return true
	})
	if err != nil {
		return err
	}
	for _, u := range ups {
		if err := fx.set(u.id, u.e); err != nil {
			return err
		}
	}
	return nil
}

// removeInterval deletes the entries of nodes [start, start+n-1].
func (fx *fullIndex) removeInterval(start NodeID, n int) error {
	if n <= 0 {
		return nil
	}
	var keys []uint64
	err := fx.t.Ascend(uint64(start), uint64(start)+uint64(n)-1, func(k uint64, _ []byte) bool {
		keys = append(keys, k)
		return true
	})
	if err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := fx.t.Delete(k); err != nil {
			return err
		}
	}
	return nil
}

// indexNodes walks encoded tokens assigning ids from ri.start and invokes fn
// for each node-starting token.
func indexNodes(ri *rangeInfo, tokenBytes []byte, fn func(NodeID, fullEntry) error) error {
	r := newTokenReader(tokenBytes)
	cur := ri.start
	tokIdx := 0
	for r.More() {
		off := r.Offset()
		k, err := r.Skip()
		if err != nil {
			return err
		}
		if k.StartsNode() {
			if err := fn(cur, fullEntry{rng: ri.id, byteOff: int32(off), tokIdx: int32(tokIdx)}); err != nil {
				return err
			}
			cur++
		}
		tokIdx++
	}
	return nil
}
