package core

import (
	"context"
	"fmt"
	"io"

	"repro/internal/token"
)

// XUpdate operations — the store interface of the paper's Table 1.
//
// Every insert allocates a fresh contiguous batch of node ids and creates
// exactly one new range; when the insertion point falls strictly inside an
// existing range, that range is split in two. This is the example walked
// through in Section 4.5 of the paper.
//
// Mutators pass admission control (beginOp) before taking the exclusive
// lock. The operation context governs only the locate phase — once a
// mutation starts applying (deleteSpan, insertFragment, record writes) it
// runs to completion regardless of the deadline, so a timeout can never
// leave a half-applied update behind.

func checkFragment(frag []Token) error {
	if err := token.ValidateFragment(frag); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFragment, err)
	}
	return nil
}

// Append adds a fragment at the end of the stored sequence (bulk load path).
// When Config.MaxRangeTokens > 0 the fragment is chopped into ranges of at
// most that many tokens — the granularity knob of Table 5. It returns the id
// of the fragment's first node.
func (s *Store) Append(frag []Token) (NodeID, error) {
	return s.AppendCtx(context.Background(), frag)
}

// AppendCtx is Append under a context (admission control only — appends
// have no locate phase to cancel).
func (s *Store) AppendCtx(ctx context.Context, frag []Token) (_ NodeID, err error) {
	if err := checkFragment(frag); err != nil {
		return InvalidNode, err
	}
	_, finish, err := s.beginOp(ctx)
	if err != nil {
		return InvalidNode, err
	}
	defer finish()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.latchCorrupt(&err)
	if err := s.writableLocked(); err != nil {
		return InvalidNode, err
	}
	chunk := s.cfg.MaxRangeTokens
	if chunk <= 0 {
		chunk = len(frag)
	}
	firstID := s.nextID
	for off := 0; off < len(frag); off += chunk {
		end := off + chunk
		if end > len(frag) {
			end = len(frag)
		}
		part := frag[off:end]
		n := token.NodeCount(part)
		start := s.allocIDs(n)
		tokenBytes := token.EncodeAll(part)
		ri := &rangeInfo{
			id:    s.allocRangeID(),
			start: start,
			nodes: n,
			toks:  len(part),
			bytes: len(tokenBytes),
		}
		rec := encodeRangeRecord(ri.id, ri.start, ri.nodes, ri.toks, tokenBytes)
		loc, moves, err := s.recs.InsertLast(rec)
		if err != nil {
			return InvalidNode, err
		}
		s.applyMoves(moves)
		ri.loc = loc
		s.register(ri)
		if s.full != nil {
			if err := s.full.addFragment(ri, tokenBytes); err != nil {
				return InvalidNode, err
			}
		}
	}
	s.inserts++
	return firstID, nil
}

// AppendStream bulk-loads tokens from a pull source with constant memory:
// tokens are buffered only up to the range granularity (Config.
// MaxRangeTokens, default 1024 for streams) and flushed range by range. The
// source returns io.EOF after the last token. The stream must form a
// well-formed fragment; violations are detected incrementally and abort the
// load mid-way (ranges already appended remain — callers wanting atomicity
// should stage into a fresh store).
func (s *Store) AppendStream(next func() (Token, error)) (_ NodeID, err error) {
	_, finish, err := s.beginOp(nil)
	if err != nil {
		return InvalidNode, err
	}
	defer finish()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.latchCorrupt(&err)
	if err := s.writableLocked(); err != nil {
		return InvalidNode, err
	}
	chunk := s.cfg.MaxRangeTokens
	if chunk <= 0 {
		chunk = 1024
	}
	firstID := s.nextID
	var buf []Token
	depth := 0
	sawAny := false
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		n := token.NodeCount(buf)
		start := s.allocIDs(n)
		tokenBytes := token.EncodeAll(buf)
		ri := &rangeInfo{
			id:    s.allocRangeID(),
			start: start,
			nodes: n,
			toks:  len(buf),
			bytes: len(tokenBytes),
		}
		rec := encodeRangeRecord(ri.id, ri.start, ri.nodes, ri.toks, tokenBytes)
		loc, moves, err := s.recs.InsertLast(rec)
		if err != nil {
			return err
		}
		s.applyMoves(moves)
		ri.loc = loc
		s.register(ri)
		if s.full != nil {
			if err := s.full.addFragment(ri, tokenBytes); err != nil {
				return err
			}
		}
		buf = buf[:0]
		return nil
	}
	for {
		t, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return InvalidNode, err
		}
		// Incremental well-formedness: balance only (the full fragment
		// rules are enforced by the token source, typically xmltok).
		if t.IsBegin() {
			depth++
		} else if t.IsEnd() {
			depth--
			if depth < 0 {
				return InvalidNode, fmt.Errorf("%w: end token without begin", ErrBadFragment)
			}
		} else if !t.StartsNode() {
			return InvalidNode, fmt.Errorf("%w: invalid token kind %s", ErrBadFragment, t.Kind)
		}
		sawAny = true
		buf = append(buf, t)
		if len(buf) >= chunk {
			if err := flush(); err != nil {
				return InvalidNode, err
			}
		}
	}
	if depth != 0 {
		return InvalidNode, fmt.Errorf("%w: %d unclosed begin token(s)", ErrBadFragment, depth)
	}
	if !sawAny {
		return InvalidNode, fmt.Errorf("%w: empty stream", ErrBadFragment)
	}
	if err := flush(); err != nil {
		return InvalidNode, err
	}
	s.inserts++
	return firstID, nil
}

// Compact is a maintenance operation: one pass over the range chain merging
// every adjacent pair whose id intervals are contiguous (or where one side
// has no ids), up to maxRangeBytes per merged range (0 = a page's worth).
// It undoes update-driven fragmentation — the offline counterpart of the
// adaptive CoalesceBytes policy.
func (s *Store) Compact(maxRangeBytes int) (merged int, err error) {
	_, finish, err := s.beginOp(nil)
	if err != nil {
		return 0, err
	}
	defer finish()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.latchCorrupt(&err)
	if err := s.writableLocked(); err != nil {
		return 0, err
	}
	if maxRangeBytes <= 0 {
		maxRangeBytes = s.cfg.PageSize
	}
	saved := s.cfg.CoalesceBytes
	s.cfg.CoalesceBytes = maxRangeBytes
	defer func() { s.cfg.CoalesceBytes = saved }()

	ri, ok, err := s.firstRange()
	if err != nil {
		return 0, err
	}
	for ok {
		did, err := func() (bool, error) {
			nxt, ok2, err := s.nextRangeInfo(ri)
			if err != nil || !ok2 {
				return false, err
			}
			return s.coalescePair(ri, nxt)
		}()
		if err != nil {
			return merged, err
		}
		if did {
			merged++
			continue // ri absorbed its successor; try again from ri
		}
		nxt, ok2, err := s.nextRangeInfo(ri)
		if err != nil {
			return merged, err
		}
		ri, ok = nxt, ok2
	}
	return merged, nil
}

// insertFragment splices frag in immediately before pos, as one new range
// with fresh contiguous ids. Returns the first new id.
func (s *Store) insertFragment(pos tokenPos, frag []Token) (NodeID, error) {
	n := token.NodeCount(frag)
	start := s.allocIDs(n)
	tokenBytes := token.EncodeAll(frag)
	if _, err := s.insertNewRange(pos, start, n, len(frag), tokenBytes); err != nil {
		return InvalidNode, err
	}
	s.inserts++
	return start, nil
}

// InsertBefore inserts frag as the preceding sibling(s) of node id.
func (s *Store) InsertBefore(id NodeID, frag []Token) (NodeID, error) {
	return s.InsertBeforeCtx(context.Background(), id, frag)
}

// InsertBeforeCtx is InsertBefore under a context.
func (s *Store) InsertBeforeCtx(ctx context.Context, id NodeID, frag []Token) (_ NodeID, err error) {
	if err := checkFragment(frag); err != nil {
		return InvalidNode, err
	}
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return InvalidNode, err
	}
	defer finish()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.latchCorrupt(&err)
	if err := s.writableLocked(); err != nil {
		return InvalidNode, err
	}
	pos, tok, _, err := s.locateBegin(ctx, id, nil)
	if err != nil {
		return InvalidNode, err
	}
	if tok.Kind == token.BeginAttribute {
		return InvalidNode, ErrAttrContext
	}
	return s.insertFragment(pos, frag)
}

// InsertAfter inserts frag as the following sibling(s) of node id.
func (s *Store) InsertAfter(id NodeID, frag []Token) (NodeID, error) {
	return s.InsertAfterCtx(context.Background(), id, frag)
}

// InsertAfterCtx is InsertAfter under a context.
func (s *Store) InsertAfterCtx(ctx context.Context, id NodeID, frag []Token) (_ NodeID, err error) {
	if err := checkFragment(frag); err != nil {
		return InvalidNode, err
	}
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return InvalidNode, err
	}
	defer finish()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.latchCorrupt(&err)
	if err := s.writableLocked(); err != nil {
		return InvalidNode, err
	}
	begin, tok, tokenBytes, err := s.locateBegin(ctx, id, nil)
	if err != nil {
		return InvalidNode, err
	}
	if tok.Kind == token.BeginAttribute {
		return InvalidNode, ErrAttrContext
	}
	end, endBytes, err := s.locateEnd(ctx, id, begin, tok, tokenBytes, nil)
	if err != nil {
		return InvalidNode, err
	}
	after, err := advance(end, endBytes)
	if err != nil {
		return InvalidNode, err
	}
	return s.insertFragment(after, frag)
}

// InsertIntoFirst inserts frag as the first content of element id (after its
// attribute block).
func (s *Store) InsertIntoFirst(id NodeID, frag []Token) (NodeID, error) {
	return s.InsertIntoFirstCtx(context.Background(), id, frag)
}

// InsertIntoFirstCtx is InsertIntoFirst under a context.
func (s *Store) InsertIntoFirstCtx(ctx context.Context, id NodeID, frag []Token) (_ NodeID, err error) {
	if err := checkFragment(frag); err != nil {
		return InvalidNode, err
	}
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return InvalidNode, err
	}
	defer finish()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.latchCorrupt(&err)
	if err := s.writableLocked(); err != nil {
		return InvalidNode, err
	}
	begin, tok, tokenBytes, err := s.locateBegin(ctx, id, nil)
	if err != nil {
		return InvalidNode, err
	}
	if err := requireElement(tok); err != nil {
		return InvalidNode, err
	}
	pos, err := advance(begin, tokenBytes)
	if err != nil {
		return InvalidNode, err
	}
	pos, _, err = s.skipAttributes(ctx, pos, tokenBytes, nil)
	if err != nil {
		return InvalidNode, err
	}
	return s.insertFragment(pos, frag)
}

// InsertIntoLast inserts frag as the last content of element id — the
// paper's running example (insert a <purchase-order> as the last child of
// the root).
func (s *Store) InsertIntoLast(id NodeID, frag []Token) (NodeID, error) {
	return s.InsertIntoLastCtx(context.Background(), id, frag)
}

// InsertIntoLastCtx is InsertIntoLast under a context.
func (s *Store) InsertIntoLastCtx(ctx context.Context, id NodeID, frag []Token) (_ NodeID, err error) {
	if err := checkFragment(frag); err != nil {
		return InvalidNode, err
	}
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return InvalidNode, err
	}
	defer finish()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.latchCorrupt(&err)
	if err := s.writableLocked(); err != nil {
		return InvalidNode, err
	}
	begin, tok, tokenBytes, err := s.locateBegin(ctx, id, nil)
	if err != nil {
		return InvalidNode, err
	}
	if err := requireElement(tok); err != nil {
		return InvalidNode, err
	}
	end, _, err := s.locateEnd(ctx, id, begin, tok, tokenBytes, nil)
	if err != nil {
		return InvalidNode, err
	}
	return s.insertFragment(end, frag)
}

func requireElement(tok Token) error {
	switch tok.Kind {
	case token.BeginElement:
		return nil
	case token.BeginAttribute:
		return ErrIntoAttribute
	default:
		return fmt.Errorf("%w (found %s)", ErrNotElement, tok.Kind)
	}
}

// DeleteNode removes node id and its entire subtree.
func (s *Store) DeleteNode(id NodeID) error {
	return s.DeleteNodeCtx(context.Background(), id)
}

// DeleteNodeCtx is DeleteNode under a context.
func (s *Store) DeleteNodeCtx(ctx context.Context, id NodeID) (err error) {
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return err
	}
	defer finish()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.latchCorrupt(&err)
	if err := s.writableLocked(); err != nil {
		return err
	}
	begin, tok, tokenBytes, err := s.locateBegin(ctx, id, nil)
	if err != nil {
		return err
	}
	end, endBytes, err := s.locateEnd(ctx, id, begin, tok, tokenBytes, nil)
	if err != nil {
		return err
	}
	after, err := advance(end, endBytes)
	if err != nil {
		return err
	}
	pos, err := s.deleteSpan(begin, after)
	if err != nil {
		return err
	}
	if s.partial != nil {
		s.partial.removeNode(id)
	}
	s.deletes++
	s.maybeCoalesce(pos.ri)
	return nil
}

// ReplaceNode replaces node id (and subtree) with frag, returning the first
// new id.
func (s *Store) ReplaceNode(id NodeID, frag []Token) (NodeID, error) {
	return s.ReplaceNodeCtx(context.Background(), id, frag)
}

// ReplaceNodeCtx is ReplaceNode under a context.
func (s *Store) ReplaceNodeCtx(ctx context.Context, id NodeID, frag []Token) (_ NodeID, err error) {
	if err := checkFragment(frag); err != nil {
		return InvalidNode, err
	}
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return InvalidNode, err
	}
	defer finish()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.latchCorrupt(&err)
	if err := s.writableLocked(); err != nil {
		return InvalidNode, err
	}
	begin, tok, tokenBytes, err := s.locateBegin(ctx, id, nil)
	if err != nil {
		return InvalidNode, err
	}
	end, endBytes, err := s.locateEnd(ctx, id, begin, tok, tokenBytes, nil)
	if err != nil {
		return InvalidNode, err
	}
	after, err := advance(end, endBytes)
	if err != nil {
		return InvalidNode, err
	}
	pos, err := s.deleteSpan(begin, after)
	if err != nil {
		return InvalidNode, err
	}
	if s.partial != nil {
		s.partial.removeNode(id)
	}
	s.deletes++
	if pos.ri == nil {
		// The store became empty: plain append.
		n := token.NodeCount(frag)
		start := s.allocIDs(n)
		tokenBytes := token.EncodeAll(frag)
		ri := &rangeInfo{
			id: s.allocRangeID(), start: start, nodes: n,
			toks: len(frag), bytes: len(tokenBytes),
		}
		rec := encodeRangeRecord(ri.id, ri.start, ri.nodes, ri.toks, tokenBytes)
		loc, moves, err := s.recs.InsertLast(rec)
		if err != nil {
			return InvalidNode, err
		}
		s.applyMoves(moves)
		ri.loc = loc
		s.register(ri)
		if s.full != nil {
			if err := s.full.addFragment(ri, tokenBytes); err != nil {
				return InvalidNode, err
			}
		}
		s.inserts++
		return start, nil
	}
	return s.insertFragment(pos, frag)
}

// ReplaceContent replaces the content of element id (children; the attribute
// block is preserved) with frag. A nil/empty frag empties the element.
func (s *Store) ReplaceContent(id NodeID, frag []Token) (NodeID, error) {
	return s.ReplaceContentCtx(context.Background(), id, frag)
}

// ReplaceContentCtx is ReplaceContent under a context.
func (s *Store) ReplaceContentCtx(ctx context.Context, id NodeID, frag []Token) (_ NodeID, err error) {
	if len(frag) > 0 {
		if err := checkFragment(frag); err != nil {
			return InvalidNode, err
		}
	}
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return InvalidNode, err
	}
	defer finish()
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.latchCorrupt(&err)
	if err := s.writableLocked(); err != nil {
		return InvalidNode, err
	}
	begin, tok, tokenBytes, err := s.locateBegin(ctx, id, nil)
	if err != nil {
		return InvalidNode, err
	}
	if err := requireElement(tok); err != nil {
		return InvalidNode, err
	}
	end, _, err := s.locateEnd(ctx, id, begin, tok, tokenBytes, nil)
	if err != nil {
		return InvalidNode, err
	}
	contentStart, err := advance(begin, tokenBytes)
	if err != nil {
		return InvalidNode, err
	}
	contentStart, _, err = s.skipAttributes(ctx, contentStart, tokenBytes, nil)
	if err != nil {
		return InvalidNode, err
	}
	pos := end
	hasContent := !(contentStart.ri == end.ri && contentStart.tokIdx == end.tokIdx)
	if hasContent {
		pos, err = s.deleteSpan(contentStart, end)
		if err != nil {
			return InvalidNode, err
		}
		s.deletes++
	}
	if len(frag) == 0 {
		s.maybeCoalesce(pos.ri)
		return InvalidNode, nil
	}
	return s.insertFragment(pos, frag)
}
