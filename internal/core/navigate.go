package core

import (
	"context"
	"fmt"

	"repro/internal/token"
)

// Structural navigation — the extension sketched in the paper's future-work
// section: "Structural properties of the actual elements of the XQuery
// DataModel, such as hierarchical or sibling relationships can also be
// maintained by the Partial Index."
//
// All relations are computed from the flat token sequence (no parent
// pointers are stored), and the partial index memorizes what the
// computation discovers: sibling navigation reuses the cached end-token
// positions, and parent links — stable for the lifetime of a node — are
// cached unversioned.
//
// Each primitive (Parent, FirstChild, NextSibling, Attributes,
// CompareDocOrder) is one gated operation; the composites (PrevSibling,
// Children) chain gated primitives sequentially and hold at most one
// admission slot at a time.

// Parent returns the parent node of id (ok=false for top-level nodes).
// Attributes' parent is their owner element.
func (s *Store) Parent(id NodeID) (NodeID, bool, error) {
	return s.ParentCtx(context.Background(), id)
}

// ParentCtx is Parent under a context.
func (s *Store) ParentCtx(ctx context.Context, id NodeID) (NodeID, bool, error) {
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return InvalidNode, false, err
	}
	defer finish()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return InvalidNode, false, ErrClosed
	}
	// Cached parent links survive all mutations that keep the child alive:
	// deleting or replacing the parent removes the whole subtree, so a live
	// child's parent id can never be stale. The cache is gated on the
	// entry's begin-token validity, which any mutation that removes the
	// child necessarily invalidates.
	if s.partial != nil {
		if e, ok := s.partial.lookup(id); ok && e.hasParent {
			ri := s.byRange[e.beginRange]
			if ri != nil && ri.version == e.beginVer {
				s.partial.hit()
				if e.parentID == InvalidNode {
					return InvalidNode, false, nil
				}
				return e.parentID, true, nil
			}
		}
	}
	sc := getScratch()
	defer putScratch(sc)
	begin, _, _, err := s.locateBegin(ctx, id, sc)
	if err != nil {
		return InvalidNode, false, err
	}
	parent, ok, err := s.findEnclosing(ctx, begin, sc)
	if err != nil {
		return InvalidNode, false, err
	}
	if s.partial != nil {
		if ok {
			s.partial.setParent(id, parent)
		} else {
			s.partial.setParent(id, InvalidNode)
		}
	}
	return parent, ok, nil
}

// findEnclosing locates the node whose begin token is still open at pos
// (the parent): scan the prefix of pos's range tracking a begin stack, then
// walk earlier ranges leftward. Unmatched end tokens in a later range close
// begins in earlier ranges, so a deficit is carried: an earlier range's top
// `deficit` unmatched begins are already closed and must be skipped.
func (s *Store) findEnclosing(ctx context.Context, pos tokenPos, sc *scratch) (NodeID, bool, error) {
	ri := pos.ri
	limit := pos.byteOff
	deficit := 0
	for {
		stack, rangeDeficit, err := s.scanOpenBegins(ctx, ri, limit, sc)
		if err != nil {
			return InvalidNode, false, err
		}
		if len(stack) > deficit {
			return stack[len(stack)-1-deficit], true, nil
		}
		deficit += rangeDeficit - len(stack)
		if err := ctx.Err(); err != nil {
			return InvalidNode, false, err
		}
		prev, ok, err := s.prevRangeInfo(ri)
		if err != nil {
			return InvalidNode, false, err
		}
		if !ok {
			return InvalidNode, false, nil // top level
		}
		ri = prev
		limit = ri.bytes
	}
}

// scanOpenBegins scans the first `limit` bytes of ri and returns the node
// ids of the begins left unmatched within the window (bottom-up) and the
// number of end tokens that had no matching begin inside the window.
func (s *Store) scanOpenBegins(ctx context.Context, ri *rangeInfo, limit int, sc *scratch) ([]NodeID, int, error) {
	tokenBytes, err := s.readRangeCtx(ctx, ri, sc)
	if err != nil {
		return nil, 0, err
	}
	var stack []NodeID
	unmatchedEnds := 0
	cur := ri.start
	scanned := uint64(0)
	defer func() { s.tokensScanned.Add(scanned) }()
	r := newTokenReader(tokenBytes[:limit])
	for r.More() {
		if scanned%locateCheckTokens == locateCheckTokens-1 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
		}
		k, err := r.Skip()
		if err != nil {
			return nil, 0, err
		}
		scanned++
		var nodeID NodeID
		if k.StartsNode() {
			nodeID = cur
			cur++
		}
		if k.IsBegin() {
			stack = append(stack, nodeID)
		} else if k.IsEnd() {
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			} else {
				unmatchedEnds++
			}
		}
	}
	return stack, unmatchedEnds, nil
}

// FirstChild returns the first child node of element id (attributes are not
// children; use Attributes). ok=false when the element is empty.
func (s *Store) FirstChild(id NodeID) (NodeID, bool, error) {
	return s.FirstChildCtx(context.Background(), id)
}

// FirstChildCtx is FirstChild under a context.
func (s *Store) FirstChildCtx(ctx context.Context, id NodeID) (NodeID, bool, error) {
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return InvalidNode, false, err
	}
	defer finish()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return InvalidNode, false, ErrClosed
	}
	sc := getScratch()
	defer putScratch(sc)
	begin, tok, tokenBytes, err := s.locateBegin(ctx, id, sc)
	if err != nil {
		return InvalidNode, false, err
	}
	if !tok.IsBegin() {
		return InvalidNode, false, nil // leaves have no children
	}
	if tok.Kind == token.BeginAttribute {
		return InvalidNode, false, nil
	}
	pos, err := advance(begin, tokenBytes)
	if err != nil {
		return InvalidNode, false, err
	}
	pos, tokenBytes, err = s.skipAttributes(ctx, pos, tokenBytes, sc)
	if err != nil {
		return InvalidNode, false, err
	}
	pos, tokenBytes, ok, err := s.normalizeForward(ctx, pos, tokenBytes, sc)
	if err != nil || !ok {
		return InvalidNode, false, err
	}
	k := token.Kind(tokenBytes[pos.byteOff])
	if k.IsEnd() {
		return InvalidNode, false, nil // empty element
	}
	return pos.ri.start + NodeID(pos.nodesBefore), true, nil
}

// NextSibling returns the node following id under the same parent
// (attributes have no siblings in this API).
func (s *Store) NextSibling(id NodeID) (NodeID, bool, error) {
	return s.NextSiblingCtx(context.Background(), id)
}

// NextSiblingCtx is NextSibling under a context.
func (s *Store) NextSiblingCtx(ctx context.Context, id NodeID) (NodeID, bool, error) {
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return InvalidNode, false, err
	}
	defer finish()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return InvalidNode, false, ErrClosed
	}
	sc := getScratch()
	defer putScratch(sc)
	begin, tok, tokenBytes, err := s.locateBegin(ctx, id, sc)
	if err != nil {
		return InvalidNode, false, err
	}
	if tok.Kind == token.BeginAttribute {
		return InvalidNode, false, nil
	}
	end, endBytes, err := s.locateEnd(ctx, id, begin, tok, tokenBytes, sc)
	if err != nil {
		return InvalidNode, false, err
	}
	pos, err := advance(end, endBytes)
	if err != nil {
		return InvalidNode, false, err
	}
	pos, endBytes, ok, err := s.normalizeForward(ctx, pos, endBytes, sc)
	if err != nil || !ok {
		return InvalidNode, false, err
	}
	k := token.Kind(endBytes[pos.byteOff])
	if k.IsEnd() {
		return InvalidNode, false, nil // parent closes here
	}
	return pos.ri.start + NodeID(pos.nodesBefore), true, nil
}

// PrevSibling returns the node preceding id under the same parent.
func (s *Store) PrevSibling(id NodeID) (NodeID, bool, error) {
	return s.PrevSiblingCtx(context.Background(), id)
}

// PrevSiblingCtx is PrevSibling under a context. It is a composite: each
// step passes admission control on its own, so the walk never holds a slot
// across its whole duration.
func (s *Store) PrevSiblingCtx(ctx context.Context, id NodeID) (NodeID, bool, error) {
	// Computed via the parent: walk its children until id.
	parent, ok, err := s.ParentCtx(ctx, id)
	if err != nil {
		return InvalidNode, false, err
	}
	var cur NodeID
	if ok {
		cur, ok, err = s.FirstChildCtx(ctx, parent)
	} else {
		cur, ok, err = s.FirstNodeIDCtx(ctx)
	}
	if err != nil || !ok || cur == id {
		return InvalidNode, false, err
	}
	for {
		next, ok, err := s.NextSiblingCtx(ctx, cur)
		if err != nil {
			return InvalidNode, false, err
		}
		if !ok {
			return InvalidNode, false, fmt.Errorf("core: sibling walk missed node %d", id)
		}
		if next == id {
			return cur, true, nil
		}
		cur = next
	}
}

// Attributes returns the attribute node ids of element id in order.
func (s *Store) Attributes(id NodeID) ([]NodeID, error) {
	return s.AttributesCtx(context.Background(), id)
}

// AttributesCtx is Attributes under a context.
func (s *Store) AttributesCtx(ctx context.Context, id NodeID) ([]NodeID, error) {
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return nil, err
	}
	defer finish()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	sc := getScratch()
	defer putScratch(sc)
	begin, tok, tokenBytes, err := s.locateBegin(ctx, id, sc)
	if err != nil {
		return nil, err
	}
	if tok.Kind != token.BeginElement {
		return nil, nil
	}
	pos, err := advance(begin, tokenBytes)
	if err != nil {
		return nil, err
	}
	var out []NodeID
	depth := 0
	for {
		var ok bool
		pos, tokenBytes, ok, err = s.normalizeForward(ctx, pos, tokenBytes, sc)
		if err != nil || !ok {
			return out, err
		}
		k := token.Kind(tokenBytes[pos.byteOff])
		if depth == 0 {
			if k != token.BeginAttribute {
				return out, nil
			}
			out = append(out, pos.ri.start+NodeID(pos.nodesBefore))
		}
		// Step one token, tracking attribute nesting across ranges.
		r := newTokenReader(tokenBytes)
		r.SetOffset(pos.byteOff)
		if _, err := r.Skip(); err != nil {
			return nil, err
		}
		if k.StartsNode() {
			pos.nodesBefore++
		}
		if k.IsBegin() {
			depth++
		} else if k.IsEnd() {
			depth--
		}
		pos.tokIdx++
		pos.byteOff = r.Offset()
	}
}

// Children returns all child node ids of element id, in document order.
func (s *Store) Children(id NodeID) ([]NodeID, error) {
	return s.ChildrenCtx(context.Background(), id)
}

// ChildrenCtx is Children under a context (a composite of gated steps).
func (s *Store) ChildrenCtx(ctx context.Context, id NodeID) ([]NodeID, error) {
	var out []NodeID
	cur, ok, err := s.FirstChildCtx(ctx, id)
	if err != nil {
		return nil, err
	}
	for ok {
		out = append(out, cur)
		cur, ok, err = s.NextSiblingCtx(ctx, cur)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CompareDocOrder orders two live node ids by document position (-1, 0, 1)
// — the paper's §6.2: sequential ids are only insert-ordered, but the
// combination of range order in storage and id order inside ranges
// reconstructs document order at read time.
func (s *Store) CompareDocOrder(a, b NodeID) (int, error) {
	return s.CompareDocOrderCtx(context.Background(), a, b)
}

// CompareDocOrderCtx is CompareDocOrder under a context.
func (s *Store) CompareDocOrderCtx(ctx context.Context, a, b NodeID) (int, error) {
	ctx, finish, err := s.beginOp(ctx)
	if err != nil {
		return 0, err
	}
	defer finish()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	sc := getScratch()
	defer putScratch(sc)
	if a == b {
		if _, _, _, err := s.locateBegin(ctx, a, sc); err != nil {
			return 0, err
		}
		return 0, nil
	}
	posA, _, _, err := s.locateBegin(ctx, a, sc)
	if err != nil {
		return 0, err
	}
	posB, _, _, err := s.locateBegin(ctx, b, sc)
	if err != nil {
		return 0, err
	}
	if posA.ri == posB.ri {
		if posA.byteOff < posB.byteOff {
			return -1, nil
		}
		return 1, nil
	}
	// Walk the range chain in document order; the range seen first wins.
	ri, ok, err := s.firstRange()
	if err != nil {
		return 0, err
	}
	for ok {
		switch ri {
		case posA.ri:
			return -1, nil
		case posB.ri:
			return 1, nil
		}
		ri, ok, err = s.nextRangeInfoCtx(ctx, ri)
		if err != nil {
			return 0, err
		}
	}
	return 0, fmt.Errorf("core: ranges of %d and %d not found in chain", a, b)
}

// normalizeForward moves a boundary position (at range end) forward to the
// first token of the next non-empty range, returning ok=false at the end of
// the sequence. Positions already on a token are returned unchanged.
func (s *Store) normalizeForward(ctx context.Context, pos tokenPos, tokenBytes []byte, sc *scratch) (tokenPos, []byte, bool, error) {
	for pos.atRangeEnd() {
		nri, ok, err := s.nextRangeInfoCtx(ctx, pos.ri)
		if err != nil || !ok {
			return pos, tokenBytes, false, err
		}
		pos = tokenPos{ri: nri}
		tokenBytes, err = s.readRangeCtx(ctx, nri, sc)
		if err != nil {
			return pos, nil, false, err
		}
	}
	return pos, tokenBytes, true, nil
}
