package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/token"
	"repro/internal/xmltok"
)

var allModes = []IndexMode{RangeOnly, RangePartial, FullIndex}

func openStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func figure1() []Token {
	return xmltok.MustParse(`<ticket><hour>15</hour><name>Paul</name></ticket>`)
}

func TestAppendAndReadAll(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			s := openStore(t, Config{Mode: mode})
			first, err := s.Append(figure1())
			if err != nil {
				t.Fatal(err)
			}
			if first != 1 {
				t.Errorf("first id = %d, want 1", first)
			}
			items, err := s.ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			// Figure 1: ids 1..5 on ticket, hour, "15", name, "Paul".
			wantIDs := []NodeID{1, 2, 3, 0, 4, 5, 0, 0}
			if len(items) != len(wantIDs) {
				t.Fatalf("got %d items", len(items))
			}
			for i, want := range wantIDs {
				if items[i].ID != want {
					t.Errorf("item %d id = %d, want %d", i, items[i].ID, want)
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestXMLRoundTrip(t *testing.T) {
	src := `<orders date="2005-06-01"><order id="1"><item>widget</item></order><!--end--></orders>`
	s := openStore(t, Config{})
	if _, err := s.Append(xmltok.MustParse(src)); err != nil {
		t.Fatal(err)
	}
	got, err := s.XMLString()
	if err != nil {
		t.Fatal(err)
	}
	if got != src {
		t.Errorf("round trip:\n got %s\nwant %s", got, src)
	}
}

func TestReadNode(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			s := openStore(t, Config{Mode: mode})
			if _, err := s.Append(figure1()); err != nil {
				t.Fatal(err)
			}
			// Node 2 is <hour>15</hour>.
			xml, err := s.NodeXMLString(2)
			if err != nil {
				t.Fatal(err)
			}
			if xml != `<hour>15</hour>` {
				t.Errorf("node 2 = %q", xml)
			}
			// Node 3 is the text "15".
			items, err := s.ReadNode(3)
			if err != nil {
				t.Fatal(err)
			}
			if len(items) != 1 || items[0].Tok.Value != "15" {
				t.Errorf("node 3 = %v", items)
			}
			// Node 5 is the text "Paul".
			items, err = s.ReadNode(5)
			if err != nil {
				t.Fatal(err)
			}
			if len(items) != 1 || items[0].Tok.Value != "Paul" {
				t.Errorf("node 5 = %v", items)
			}
			// Whole document via node 1.
			xml, err = s.NodeXMLString(1)
			if err != nil {
				t.Fatal(err)
			}
			if xml != `<ticket><hour>15</hour><name>Paul</name></ticket>` {
				t.Errorf("node 1 = %q", xml)
			}
			// Subtree ids are regenerated correctly.
			items, err = s.ReadNode(1)
			if err != nil {
				t.Fatal(err)
			}
			wantIDs := []NodeID{1, 2, 3, 0, 4, 5, 0, 0}
			for i, want := range wantIDs {
				if items[i].ID != want {
					t.Errorf("subtree item %d id = %d, want %d", i, items[i].ID, want)
				}
			}
			// Missing node.
			if _, err := s.ReadNode(99); !errors.Is(err, ErrNoSuchNode) {
				t.Errorf("ReadNode(99) err = %v", err)
			}
			if s.Exists(99) {
				t.Error("Exists(99)")
			}
			if !s.Exists(4) {
				t.Error("!Exists(4)")
			}
		})
	}
}

// TestPaperSection45 walks the exact scenario of Section 4.5: two sibling
// trees with 100 nodes total, then insertIntoLast(60, <40 nodes>). The store
// must end with the three-interval structure of Table 3 plus the new range.
func TestPaperSection45(t *testing.T) {
	s := openStore(t, Config{Mode: RangeOnly})

	// Build two sibling nodes with 100 nodes total (50 each): a root element
	// with 49 child elements.
	mkTree := func(name string) []Token {
		toks := []Token{token.Elem(name)}
		for i := 0; i < 49; i++ {
			toks = append(toks, token.Elem("c"), token.EndElem())
		}
		return append(toks, token.EndElem())
	}
	if _, err := s.Append(mkTree("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(mkTree("second")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Nodes != 100 {
		t.Fatalf("nodes = %d, want 100", st.Nodes)
	}

	// 40 new nodes inserted as last child of node 60 (a <c/> inside the
	// second tree).
	frag := []Token{token.Elem("new")}
	for i := 0; i < 39; i++ {
		frag = append(frag, token.Elem("n"), token.EndElem())
	}
	frag = append(frag, token.EndElem())
	firstNew, err := s.InsertIntoLast(60, frag)
	if err != nil {
		t.Fatal(err)
	}
	if firstNew != 101 {
		t.Errorf("new ids start at %d, want 101", firstNew)
	}
	st = s.Stats()
	if st.Nodes != 140 {
		t.Errorf("nodes = %d, want 140", st.Nodes)
	}
	if st.Splits != 1 {
		t.Errorf("splits = %d, want 1", st.Splits)
	}
	// Table 3 structure: intervals [1..50] (untouched first tree is its own
	// range), and the second tree's range split around the insert, with the
	// new [101..140] range between the pieces.
	var intervals [][2]NodeID
	s.rindex.AscendAll(func(k uint64, ri *rangeInfo) bool {
		intervals = append(intervals, [2]NodeID{ri.start, ri.end()})
		return true
	})
	want := [][2]NodeID{{1, 50}, {51, 60}, {61, 100}, {101, 140}}
	if len(intervals) != len(want) {
		t.Fatalf("intervals = %v", intervals)
	}
	for i := range want {
		if intervals[i] != want[i] {
			t.Fatalf("intervals = %v, want %v", intervals, want)
		}
	}
	// The inserted subtree reads back under node 60.
	xml, err := s.NodeXMLString(60)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xml, "<new>") {
		t.Errorf("node 60 does not contain the insert: %s", xml)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertOperations(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			s := openStore(t, Config{Mode: mode})
			ref := newRefStore()
			doc := xmltok.MustParse(`<root><a>one</a><b/></root>`)
			if _, err := s.Append(doc); err != nil {
				t.Fatal(err)
			}
			ref.append(doc)
			compareStores(t, s, ref, "after load")

			// root=1, a=2, "one"=3, b=4
			frag := xmltok.MustParseFragment(`<x>new</x>`)
			if _, err := s.InsertBefore(2, frag); err != nil {
				t.Fatal(err)
			}
			ref.insertBefore(2, frag)
			compareStores(t, s, ref, "insertBefore")

			frag2 := xmltok.MustParseFragment(`<y/>`)
			if _, err := s.InsertAfter(2, frag2); err != nil {
				t.Fatal(err)
			}
			ref.insertAfter(2, frag2)
			compareStores(t, s, ref, "insertAfter")

			frag3 := xmltok.MustParseFragment(`first-text`)
			if _, err := s.InsertIntoFirst(4, frag3); err != nil {
				t.Fatal(err)
			}
			ref.insertIntoFirst(4, frag3)
			compareStores(t, s, ref, "insertIntoFirst")

			frag4 := xmltok.MustParseFragment(`<tail/>`)
			if _, err := s.InsertIntoLast(1, frag4); err != nil {
				t.Fatal(err)
			}
			ref.insertIntoLast(1, frag4)
			compareStores(t, s, ref, "insertIntoLast")

			if err := s.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestInsertIntoFirstSkipsAttributes(t *testing.T) {
	s := openStore(t, Config{})
	ref := newRefStore()
	doc := xmltok.MustParse(`<root a="1" b="2"><child/></root>`)
	if _, err := s.Append(doc); err != nil {
		t.Fatal(err)
	}
	ref.append(doc)
	frag := xmltok.MustParseFragment(`inserted`)
	if _, err := s.InsertIntoFirst(1, frag); err != nil {
		t.Fatal(err)
	}
	ref.insertIntoFirst(1, frag)
	compareStores(t, s, ref, "intoFirst with attrs")
	xml, _ := s.XMLString()
	want := `<root a="1" b="2">inserted<child/></root>`
	if xml != want {
		t.Errorf("got %s, want %s", xml, want)
	}
}

func TestInsertErrors(t *testing.T) {
	s := openStore(t, Config{})
	doc := xmltok.MustParse(`<root a="1">text</root>`)
	if _, err := s.Append(doc); err != nil {
		t.Fatal(err)
	}
	// root=1, attr a=2, text=3
	frag := xmltok.MustParseFragment(`<x/>`)
	if _, err := s.InsertIntoFirst(3, frag); !errors.Is(err, ErrNotElement) {
		t.Errorf("into text: %v", err)
	}
	if _, err := s.InsertIntoLast(2, frag); !errors.Is(err, ErrIntoAttribute) {
		t.Errorf("into attribute: %v", err)
	}
	if _, err := s.InsertBefore(2, frag); !errors.Is(err, ErrAttrContext) {
		t.Errorf("before attribute: %v", err)
	}
	if _, err := s.InsertAfter(2, frag); !errors.Is(err, ErrAttrContext) {
		t.Errorf("after attribute: %v", err)
	}
	if _, err := s.InsertBefore(77, frag); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("missing node: %v", err)
	}
	// Ill-formed fragments are rejected outright.
	if _, err := s.Append([]Token{token.Elem("open")}); !errors.Is(err, ErrBadFragment) {
		t.Errorf("bad fragment: %v", err)
	}
	if _, err := s.InsertBefore(1, nil); !errors.Is(err, ErrBadFragment) {
		t.Errorf("nil fragment: %v", err)
	}
}

func TestDeleteNode(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			s := openStore(t, Config{Mode: mode})
			ref := newRefStore()
			doc := xmltok.MustParse(`<root><a>one</a><b><c/>mid</b><d/></root>`)
			if _, err := s.Append(doc); err != nil {
				t.Fatal(err)
			}
			ref.append(doc)
			// root=1 a=2 "one"=3 b=4 c=5 "mid"=6 d=7
			if err := s.DeleteNode(4); err != nil { // subtree <b>...</b>
				t.Fatal(err)
			}
			ref.deleteNode(4)
			compareStores(t, s, ref, "delete subtree")
			// Deleted descendants are gone too.
			if s.Exists(5) || s.Exists(6) {
				t.Error("descendants survived delete")
			}
			if err := s.DeleteNode(4); !errors.Is(err, ErrNoSuchNode) {
				t.Errorf("double delete: %v", err)
			}
			// Delete a leaf.
			if err := s.DeleteNode(3); err != nil {
				t.Fatal(err)
			}
			ref.deleteNode(3)
			compareStores(t, s, ref, "delete leaf")
			// Delete the root: store becomes empty.
			if err := s.DeleteNode(1); err != nil {
				t.Fatal(err)
			}
			ref.deleteNode(1)
			compareStores(t, s, ref, "delete root")
			st := s.Stats()
			if st.Nodes != 0 || st.Tokens != 0 || st.Ranges != 0 {
				t.Errorf("post-delete stats: %+v", st)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Error(err)
			}
			// The store remains usable.
			if _, err := s.Append(figure1()); err != nil {
				t.Fatal(err)
			}
			ref.nextID = 8 // the real store consumed ids 1..7 already
			ref.append(figure1())
			compareStores(t, s, ref, "append after empty")
		})
	}
}

func TestDeleteAttribute(t *testing.T) {
	s := openStore(t, Config{})
	ref := newRefStore()
	doc := xmltok.MustParse(`<root a="1" b="2">t</root>`)
	s.Append(doc)
	ref.append(doc)
	// attr a = 2
	if err := s.DeleteNode(2); err != nil {
		t.Fatal(err)
	}
	ref.deleteNode(2)
	compareStores(t, s, ref, "delete attribute")
	xml, _ := s.XMLString()
	if xml != `<root b="2">t</root>` {
		t.Errorf("got %s", xml)
	}
}

func TestReplaceNode(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			s := openStore(t, Config{Mode: mode})
			ref := newRefStore()
			doc := xmltok.MustParse(`<root><a/><b>x</b><c/></root>`)
			s.Append(doc)
			ref.append(doc)
			// a=2, b=3, x=4, c=5
			frag := xmltok.MustParseFragment(`<replacement attr="v">body</replacement>`)
			newID, err := s.ReplaceNode(3, frag)
			if err != nil {
				t.Fatal(err)
			}
			ref.replaceNode(3, frag)
			compareStores(t, s, ref, "replaceNode")
			if newID == InvalidNode {
				t.Error("no new id returned")
			}
			if s.Exists(3) || s.Exists(4) {
				t.Error("replaced nodes survived")
			}
			// Replace the root entirely.
			frag2 := xmltok.MustParseFragment(`<newroot/>`)
			if _, err := s.ReplaceNode(1, frag2); err != nil {
				t.Fatal(err)
			}
			ref.replaceNode(1, frag2)
			compareStores(t, s, ref, "replace root")
			if err := s.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestReplaceContent(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			s := openStore(t, Config{Mode: mode})
			ref := newRefStore()
			doc := xmltok.MustParse(`<root k="v"><old1/><old2>x</old2></root>`)
			s.Append(doc)
			ref.append(doc)
			frag := xmltok.MustParseFragment(`fresh<content/>`)
			if _, err := s.ReplaceContent(1, frag); err != nil {
				t.Fatal(err)
			}
			ref.replaceContent(1, frag)
			compareStores(t, s, ref, "replaceContent")
			xml, _ := s.XMLString()
			want := `<root k="v">fresh<content/></root>`
			if xml != want {
				t.Errorf("got %s, want %s", xml, want)
			}
			// Empty the element.
			if _, err := s.ReplaceContent(1, nil); err != nil {
				t.Fatal(err)
			}
			ref.replaceContent(1, nil)
			compareStores(t, s, ref, "empty content")
			xml, _ = s.XMLString()
			if xml != `<root k="v"/>` {
				t.Errorf("got %s", xml)
			}
			// Refill an empty element.
			frag2 := xmltok.MustParseFragment(`<again/>`)
			if _, err := s.ReplaceContent(1, frag2); err != nil {
				t.Fatal(err)
			}
			ref.replaceContent(1, frag2)
			compareStores(t, s, ref, "refill content")
			if err := s.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestGranularLoad(t *testing.T) {
	// MaxRangeTokens chops bulk loads into many ranges; content unchanged.
	var sb strings.Builder
	sb.WriteString("<all>")
	for i := 0; i < 100; i++ {
		sb.WriteString("<rec><f>v</f></rec>")
	}
	sb.WriteString("</all>")
	doc := xmltok.MustParse(sb.String())

	coarse := openStore(t, Config{})
	granular := openStore(t, Config{MaxRangeTokens: 16})
	coarse.Append(doc)
	granular.Append(doc)

	cs, gs := coarse.Stats(), granular.Stats()
	if cs.Ranges != 1 {
		t.Errorf("coarse ranges = %d, want 1", cs.Ranges)
	}
	if gs.Ranges < 20 {
		t.Errorf("granular ranges = %d, want many", gs.Ranges)
	}
	cXML, _ := coarse.XMLString()
	gXML, _ := granular.XMLString()
	if cXML != gXML {
		t.Error("granularity changed content")
	}
	// Node ids identical under both granularities.
	ci, _ := coarse.ReadAll()
	gi, _ := granular.ReadAll()
	for i := range ci {
		if ci[i] != gi[i] {
			t.Fatalf("item %d differs: %v vs %v", i, ci[i], gi[i])
		}
	}
	if err := granular.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Random reads work against granular ranges.
	for id := NodeID(1); id <= NodeID(gs.Nodes); id += 17 {
		if !granular.Exists(id) {
			t.Errorf("node %d missing in granular store", id)
		}
	}
}

func TestClosedStore(t *testing.T) {
	s, _ := Open(Config{})
	s.Append(figure1())
	s.Close()
	if _, err := s.Append(figure1()); !errors.Is(err, ErrClosed) {
		t.Errorf("append: %v", err)
	}
	if _, err := s.ReadAll(); !errors.Is(err, ErrClosed) {
		t.Errorf("read: %v", err)
	}
	if err := s.DeleteNode(1); !errors.Is(err, ErrClosed) {
		t.Errorf("delete: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestEmptyStore(t *testing.T) {
	s := openStore(t, Config{})
	items, err := s.ReadAll()
	if err != nil || len(items) != 0 {
		t.Errorf("empty read: %v %v", items, err)
	}
	if _, ok, _ := s.FirstNodeID(); ok {
		t.Error("FirstNodeID on empty store")
	}
	if err := s.DeleteNode(1); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("delete on empty: %v", err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestPaperTable4 continues the Section 4.5 example under the partial
// index: after insertIntoLast(60, ...), the lookup positions are memorized
// (the paper's Table 4 — begin and end locations of node 60), so repeating
// the operation performs no range scan at all.
func TestPaperTable4(t *testing.T) {
	s := openStore(t, Config{Mode: RangePartial, PartialCapacity: 64})
	mkTree := func(name string) []Token {
		toks := []Token{token.Elem(name)}
		for i := 0; i < 49; i++ {
			toks = append(toks, token.Elem("c"), token.EndElem())
		}
		return append(toks, token.EndElem())
	}
	s.Append(mkTree("first"))
	s.Append(mkTree("second"))

	frag := []Token{token.Elem("new"), token.EndElem()}
	if _, err := s.InsertIntoLast(60, frag); err != nil {
		t.Fatal(err)
	}
	// Table 4: the partial index now knows node 60's positions. The insert
	// itself split the range, so the entry re-learns on the next touch;
	// from then on the operation is scan-free.
	if _, err := s.InsertIntoLast(60, frag); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PartialEntries == 0 {
		t.Fatal("partial index empty after lookups")
	}
	scanned := st.TokensScanned
	for i := 0; i < 5; i++ {
		if _, err := s.InsertIntoLast(60, frag); err != nil {
			t.Fatal(err)
		}
	}
	st = s.Stats()
	if perOp := (st.TokensScanned - scanned) / 5; perOp > 2 {
		t.Errorf("warm insertIntoLast(60) scans %d tokens/op; Table 4 memoization broken", perOp)
	}
	if st.PartialHits == 0 {
		t.Error("no partial hits")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
