// Stable wire codes for the typed error taxonomy (DESIGN.md §10/§12).
//
// Every sentinel a caller is expected to errors.Is against gets one integer
// code here, in a single registry, so the network service layer can map an
// error chain onto the wire and a client can reconstruct a chain for which
// errors.Is answers exactly as it would in-process. Codes are append-only
// and never renumbered: they are part of the wire protocol.
//
// The registry lives in core because core sits at the bottom of the import
// graph — everything that owns sentinels (txn, replica, recover, server)
// already imports core and registers its own in an init. core itself
// registers its sentinels plus those of the packages below it (pagestore,
// context).
package core

import (
	"context"
	"errors"
	"sort"
	"sync"

	"repro/internal/pagestore"
	recov "repro/internal/recover"
)

// ErrCode is a stable integer identifier of one typed error sentinel.
// Zero is reserved for "no error"; CodeUnknown tags errors outside the
// registered taxonomy.
type ErrCode uint32

// The code space, grouped by owning layer. Append-only.
const (
	CodeOK      ErrCode = 0
	CodeUnknown ErrCode = 1

	// core
	CodeNoSuchNode    ErrCode = 10
	CodeNotElement    ErrCode = 11
	CodeBadFragment   ErrCode = 12
	CodeClosed        ErrCode = 13
	CodeReadOnly      ErrCode = 14
	CodeOverloaded    ErrCode = 15
	CodeIntoAttribute ErrCode = 16
	CodeAttrContext   ErrCode = 17

	// time (context machinery: OpTimeout, caller deadlines, cancellation)
	CodeDeadlineExceeded ErrCode = 20
	CodeCanceled         ErrCode = 21

	// storage
	CodeCorruptPage  ErrCode = 30
	CodeStoreLocked  ErrCode = 31
	CodeReadOnlyFile ErrCode = 32

	// transactions / locking
	CodeDeadlock      ErrCode = 40
	CodeLockTimeout   ErrCode = 41
	CodeTxDone        ErrCode = 42
	CodeManagerClosed ErrCode = 43
	CodeStuckAborted  ErrCode = 44

	// replication
	CodeReplicaStalled    ErrCode = 50
	CodeTooStale          ErrCode = 51
	CodePromoted          ErrCode = 52
	CodeNotBootstrapped   ErrCode = 53
	CodeNoRollForwardBase ErrCode = 54

	// network service layer
	CodeAuth          ErrCode = 60
	CodeFrameTooLarge ErrCode = 61
	CodeProtocol      ErrCode = 62
	CodeDraining      ErrCode = 63
	CodeQuotaExceeded ErrCode = 64
	CodeBadRequest    ErrCode = 65
	// CodeSegmentGone carries fs.ErrNotExist across the wire: a replication
	// fetch for a segment the source no longer has. The network follower
	// needs errors.Is(err, fs.ErrNotExist) to answer the same as a local
	// directory read would — "gone" vs "failed to read" decides stall vs
	// retry. Registered by the server package, which owns the wire.
	CodeSegmentGone ErrCode = 66
	// CodeIdemAmbiguous: an idempotency token replayed after it fell out of
	// the server's dedup window. The original outcome is unknowable, so the
	// server refuses instead of risking a silent double-apply. Registered by
	// the server package. Not retryable: re-running the same token cannot
	// resolve the ambiguity — the caller must reconcile by reading.
	CodeIdemAmbiguous ErrCode = 67

	// failover
	// CodeFenced: the request (or the node serving it) carries a stale
	// leadership epoch. Registered by the failover package. Not retryable
	// against the same node; fleet clients rediscover the current primary.
	CodeFenced ErrCode = 70
)

// errEntry is one registered sentinel plus its machine-readable
// retryability classification.
type errEntry struct {
	sentinel  error
	retryable bool
}

var errReg = struct {
	sync.RWMutex
	byCode map[ErrCode]errEntry
	codes  []ErrCode // sorted, for deterministic enumeration
}{byCode: make(map[ErrCode]errEntry)}

// RegisterErrCode binds a sentinel error to its stable wire code and
// classifies its retryability. Each package registers its own sentinels in
// an init; registering the same code twice panics — a collision is a
// numbering bug, not a runtime condition.
//
// retryable means: the condition is transient and the *whole operation* is
// safe and sensible to re-run after a jittered backoff — an admission shed,
// a tenant quota shed, a deadlock victim, a drain in progress. It does NOT
// mean "might eventually work" (a corrupt page might be repaired someday;
// retrying does not repair it). The flag is the single source of truth the
// resilient client, the replication transports, and RunInTx all classify
// from — no layer keeps its own list of retryable sentinels.
func RegisterErrCode(code ErrCode, sentinel error, retryable bool) {
	if code == CodeOK || code == CodeUnknown || sentinel == nil {
		panic("core: RegisterErrCode: reserved code or nil sentinel")
	}
	errReg.Lock()
	defer errReg.Unlock()
	if _, dup := errReg.byCode[code]; dup {
		panic("core: RegisterErrCode: duplicate code")
	}
	errReg.byCode[code] = errEntry{sentinel: sentinel, retryable: retryable}
	errReg.codes = append(errReg.codes, code)
	sort.Slice(errReg.codes, func(i, j int) bool { return errReg.codes[i] < errReg.codes[j] })
}

// ErrCodesOf maps an error chain onto the wire: every registered sentinel
// the chain errors.Is-matches, as a sorted code list. An error matching
// nothing maps to [CodeUnknown]; nil maps to nil. Returning the full match
// set (not just a primary) is what lets multi-cause errors — a gated read
// shed both ErrTooStale and ErrReplicaStalled — survive the round trip.
func ErrCodesOf(err error) []ErrCode {
	if err == nil {
		return nil
	}
	errReg.RLock()
	defer errReg.RUnlock()
	var out []ErrCode
	for _, c := range errReg.codes {
		if errors.Is(err, errReg.byCode[c].sentinel) {
			out = append(out, c)
		}
	}
	if out == nil {
		out = []ErrCode{CodeUnknown}
	}
	return out
}

// Retryable reports whether err's chain matches any sentinel registered as
// retryable — the registry-driven answer to "should this operation be
// re-run after backoff?". An error outside the taxonomy answers false;
// transport-level conditions (connection resets, Temporary() device
// hiccups) never reach the registry and are classified by retryx.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	errReg.RLock()
	defer errReg.RUnlock()
	for _, c := range errReg.codes {
		e := errReg.byCode[c]
		if e.retryable && errors.Is(err, e.sentinel) {
			return true
		}
	}
	return false
}

// CodeRetryable reports the registered retryability of one wire code — how
// a client classifies an error that crossed the wire by code alone.
func CodeRetryable(code ErrCode) bool {
	errReg.RLock()
	defer errReg.RUnlock()
	return errReg.byCode[code].retryable
}

// RetryableCodes enumerates the codes registered retryable, ascending.
func RetryableCodes() []ErrCode {
	errReg.RLock()
	defer errReg.RUnlock()
	var out []ErrCode
	for _, c := range errReg.codes {
		if errReg.byCode[c].retryable {
			out = append(out, c)
		}
	}
	return out
}

// ErrCodeOf returns the first (lowest-numbered) matching code — the
// primary classification for metrics and logs.
func ErrCodeOf(err error) ErrCode {
	codes := ErrCodesOf(err)
	if len(codes) == 0 {
		return CodeOK
	}
	return codes[0]
}

// RegisteredErrCodes enumerates every registered code in ascending order —
// the wire-mapping tests sweep this to prove each sentinel round-trips.
func RegisteredErrCodes() []ErrCode {
	errReg.RLock()
	defer errReg.RUnlock()
	out := make([]ErrCode, len(errReg.codes))
	copy(out, errReg.codes)
	return out
}

// SentinelFor resolves a wire code back to its registered sentinel.
func SentinelFor(code ErrCode) (error, bool) {
	errReg.RLock()
	defer errReg.RUnlock()
	e, ok := errReg.byCode[code]
	return e.sentinel, ok
}

func init() {
	// Only ErrOverloaded is retryable here: an admission shed clears as
	// in-flight work drains. Everything else is either permanent (corrupt
	// page, missing node), a caller mistake (bad fragment), or the caller's
	// own deadline — retrying cannot help.
	RegisterErrCode(CodeNoSuchNode, ErrNoSuchNode, false)
	RegisterErrCode(CodeNotElement, ErrNotElement, false)
	RegisterErrCode(CodeBadFragment, ErrBadFragment, false)
	RegisterErrCode(CodeClosed, ErrClosed, false)
	RegisterErrCode(CodeReadOnly, ErrReadOnly, false)
	RegisterErrCode(CodeOverloaded, ErrOverloaded, true)
	RegisterErrCode(CodeIntoAttribute, ErrIntoAttribute, false)
	RegisterErrCode(CodeAttrContext, ErrAttrContext, false)

	RegisterErrCode(CodeDeadlineExceeded, context.DeadlineExceeded, false)
	RegisterErrCode(CodeCanceled, context.Canceled, false)

	RegisterErrCode(CodeCorruptPage, pagestore.ErrCorruptPage, false)
	RegisterErrCode(CodeStoreLocked, pagestore.ErrStoreLocked, false)
	RegisterErrCode(CodeReadOnlyFile, pagestore.ErrReadOnlyFile, false)

	// recover sits below core in the import graph (core/repair.go uses it),
	// so core registers its sentinel too.
	RegisterErrCode(CodeNoRollForwardBase, recov.ErrNoRollForwardBase, false)
}
