package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/token"
	"repro/internal/xmltok"
)

// Edge cases around range boundaries: attribute blocks split across ranges,
// huge text values (overflow records), zero-node ranges, and deep splits.

func TestAttributeBlockSplitAcrossRanges(t *testing.T) {
	// Tiny MaxRangeTokens forces the element's attribute block across
	// several ranges; insertIntoFirst must still land after the last
	// attribute, and Attributes must cross range boundaries.
	var sb strings.Builder
	sb.WriteString(`<e`)
	for i := 0; i < 10; i++ {
		sb.WriteString(` a` + string(rune('0'+i)) + `="v"`)
	}
	sb.WriteString(`><c/></e>`)
	s := openStore(t, Config{Mode: RangeOnly, MaxRangeTokens: 3})
	ref := newRefStore()
	doc := xmltok.MustParse(sb.String())
	if _, err := s.Append(doc); err != nil {
		t.Fatal(err)
	}
	ref.append(doc)
	if s.Stats().Ranges < 5 {
		t.Fatalf("want many ranges, got %d", s.Stats().Ranges)
	}
	frag := xmltok.MustParseFragment(`first-content`)
	if _, err := s.InsertIntoFirst(1, frag); err != nil {
		t.Fatal(err)
	}
	ref.insertIntoFirst(1, frag)
	compareStores(t, s, ref, "intoFirst across split attr block")

	attrs, err := s.Attributes(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 10 {
		t.Errorf("attributes across ranges: %d", len(attrs))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestHugeTextValuesOverflow(t *testing.T) {
	// A text node far larger than the page size exercises overflow chains
	// end to end, including splits of the containing range.
	big := strings.Repeat("The quick brown fox. ", 2000) // ~42 KB
	s := openStore(t, Config{Mode: RangePartial, PageSize: 1024, PoolPages: 16})
	doc := []Token{token.Elem("r"), token.TextTok(big), token.Elem("tail"), token.EndElem(), token.EndElem()}
	if _, err := s.Append(doc); err != nil {
		t.Fatal(err)
	}
	// Read the huge node back.
	items, err := s.ReadNode(2)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Tok.Value != big {
		t.Fatal("huge text corrupted")
	}
	// Split the range around the huge token.
	if _, err := s.InsertIntoLast(3, xmltok.MustParseFragment(`<x/>`)); err != nil {
		t.Fatal(err)
	}
	items, err = s.ReadNode(2)
	if err != nil || items[0].Tok.Value != big {
		t.Fatal("huge text corrupted after split")
	}
	// Warm read through the exact-span fast path.
	if _, err := s.ReadNode(2); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestZeroNodeRanges(t *testing.T) {
	// insertIntoLast of the only node splits its range into a head with
	// all ids and a tail holding only the end token (zero nodes).
	s := openStore(t, Config{Mode: RangeOnly})
	if _, err := s.Append(xmltok.MustParse(`<only/>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertIntoLast(1, xmltok.MustParseFragment(`<child/>`)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Ranges <= st.RangeIndexEntries {
		t.Errorf("expected an id-less range: ranges=%d indexed=%d", st.Ranges, st.RangeIndexEntries)
	}
	xml, _ := s.XMLString()
	if xml != `<only><child/></only>` {
		t.Errorf("got %s", xml)
	}
	// Further inserts into the zero-node range region.
	if _, err := s.InsertIntoLast(1, xmltok.MustParseFragment(`<child2/>`)); err != nil {
		t.Fatal(err)
	}
	xml, _ = s.XMLString()
	if xml != `<only><child/><child2/></only>` {
		t.Errorf("got %s", xml)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDeeplyNestedSplits(t *testing.T) {
	// Repeated insertIntoLast at increasing depth creates a begin-token
	// prefix and an end-token tail spread over many ranges.
	s := openStore(t, Config{Mode: RangePartial})
	id, err := s.Append(xmltok.MustParse(`<d0/>`))
	if err != nil {
		t.Fatal(err)
	}
	cur := id
	for i := 1; i <= 40; i++ {
		next, err := s.InsertIntoLast(cur, xmltok.MustParseFragment(`<d/>`))
		if err != nil {
			t.Fatalf("depth %d: %v", i, err)
		}
		cur = next
	}
	// The deepest node's ancestors chain back to the root.
	count := 0
	for n := cur; ; {
		p, ok, err := s.Parent(n)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
		n = p
	}
	if count != 40 {
		t.Errorf("ancestor chain length %d, want 40", count)
	}
	// Reads and subtree of the root are intact.
	xml, err := s.NodeXMLString(id)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(xml, "<d>") != 39 || !strings.Contains(xml, "<d/>") {
		t.Errorf("nesting lost: %d d-elements", strings.Count(xml, "<d>"))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSoakLargeRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// A heavier differential run with a larger document and page churn.
	s := openStore(t, Config{Mode: RangePartial, MaxRangeTokens: 64, PageSize: 2048, PoolPages: 32, CoalesceBytes: 4096})
	ref := newRefStore()
	doc := buildFlatDoc(500)
	if _, err := s.Append(doc); err != nil {
		t.Fatal(err)
	}
	ref.append(doc)
	r := rand.New(rand.NewSource(77))
	for step := 0; step < 300; step++ {
		ids := ref.nodeIDs()
		elems := ref.elementIDs()
		switch step % 5 {
		case 0:
			id := elems[r.Intn(len(elems))]
			frag := randomFrag(r)
			if _, err := s.InsertIntoLast(id, frag); err != nil {
				t.Fatal(err)
			}
			ref.insertIntoLast(id, frag)
		case 1:
			id := ids[r.Intn(len(ids))]
			if err := s.DeleteNode(id); err != nil {
				t.Fatal(err)
			}
			ref.deleteNode(id)
		case 2:
			id := ids[r.Intn(len(ids))]
			items, err := s.ReadNode(id)
			if err != nil || len(items) == 0 {
				t.Fatalf("read %d: %v", id, err)
			}
		case 3:
			id := elems[r.Intn(len(elems))]
			frag := randomFrag(r)
			if _, err := s.ReplaceContent(id, frag); err != nil {
				t.Fatal(err)
			}
			ref.replaceContent(id, frag)
		case 4:
			id := ids[r.Intn(len(ids))]
			if ref.items[indexOf(t, ref, id)].Tok.Kind == token.BeginAttribute {
				continue // attributes are not sibling-insert targets
			}
			frag := randomFrag(r)
			if _, err := s.InsertBefore(id, frag); err != nil {
				t.Fatal(err)
			}
			ref.insertBefore(id, frag)
		}
		if step%50 == 0 {
			compareStores(t, s, ref, "soak")
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	}
	compareStores(t, s, ref, "soak end")
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
