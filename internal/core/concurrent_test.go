package core

import (
	"sync"
	"testing"

	"repro/internal/xmltok"
)

// TestConcurrentReadersAndWriter exercises the store's internal locking:
// full scans, point reads, navigation and XUpdate ops from many goroutines
// must be race-free and never observe a torn document.
func TestConcurrentReadersAndWriter(t *testing.T) {
	s := openStore(t, Config{Mode: RangePartial, PartialCapacity: 256})
	if _, err := s.Append(buildFlatDoc(30)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: appends and deletes at the tail.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			id, err := s.Append(xmltok.MustParseFragment(`<w><x>1</x></w>`))
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			if i%2 == 0 {
				if err := s.DeleteNode(id); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}
		close(stop)
	}()

	// Scanners: the token nesting must always balance mid-flight.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				depth := 0
				err := s.Scan(func(it Item) bool {
					if it.Tok.IsBegin() {
						depth++
					} else if it.Tok.IsEnd() {
						depth--
					}
					return true
				})
				if err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				if depth != 0 {
					t.Errorf("torn scan: depth %d", depth)
					return
				}
			}
		}()
	}

	// Point readers over the stable prefix.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			id := NodeID(2 + seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.ReadNode(id); err != nil {
					t.Errorf("read %d: %v", id, err)
					return
				}
				if _, _, err := s.Parent(id); err != nil {
					t.Errorf("parent %d: %v", id, err)
					return
				}
			}
		}(g)
	}

	wg.Wait()
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
