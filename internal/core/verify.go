package core

import (
	"errors"
	"fmt"
)

// Verify scrubs the store's durable state end to end:
//
//   - every allocated page's checksum, read straight from the pager (the
//     buffer pool's clean cache is bypassed, so latent on-disk corruption
//     is found even for cached pages);
//   - the record layer's page chain and every overflow chain (page types,
//     chunk accounting, cycles);
//   - the store's cross-structure invariants (range index vs. records,
//     interval disjointness, token nesting, counters).
//
// All problems found are reported joined, not just the first. Checksum
// failures degrade the store to read-only as a side effect.
//
// Verify counts as one operation for admission control (a full scrub is
// expensive and should not dogpile an overloaded store), but runs to
// completion once admitted — it does not observe the operation deadline.
func (s *Store) Verify() (err error) {
	_, finish, err := s.beginOp(nil)
	if err != nil {
		return err
	}
	defer finish()
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.latchCorrupt(&err)
	if s.closed {
		return ErrClosed
	}
	var errs []error
	for _, e := range s.pool.Scrub() {
		errs = append(errs, fmt.Errorf("scrub: %w", e))
	}
	if e := s.recs.VerifyChains(); e != nil {
		errs = append(errs, fmt.Errorf("record chains: %w", e))
	}
	if e := s.checkInvariantsLocked(); e != nil {
		errs = append(errs, fmt.Errorf("invariants: %w", e))
	}
	return errors.Join(errs...)
}
