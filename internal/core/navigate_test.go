package core

import (
	"testing"

	"repro/internal/xmltok"
)

// navDoc: ids are
// 1=root 2=@r 3=a 4=b 5="x" 6=c 7=d 8=@k 9="y" 10=e
const navSrc = `<root r="1"><a><b>x</b><c/></a><d k="v">y</d><e/></root>`

func navStore(t *testing.T, mode IndexMode) *Store {
	t.Helper()
	s := openStore(t, Config{Mode: mode})
	if _, err := s.Append(xmltok.MustParse(navSrc)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNavigationBasics(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			s := navStore(t, mode)

			// Parent relations.
			parentCases := []struct {
				id     NodeID
				parent NodeID
				ok     bool
			}{
				{1, 0, false}, // root has no parent
				{2, 1, true},  // attribute's parent is its element
				{3, 1, true},
				{4, 3, true},
				{5, 4, true},
				{6, 3, true},
				{7, 1, true},
				{9, 7, true},
				{10, 1, true},
			}
			for _, c := range parentCases {
				p, ok, err := s.Parent(c.id)
				if err != nil {
					t.Fatalf("Parent(%d): %v", c.id, err)
				}
				if ok != c.ok || (ok && p != c.parent) {
					t.Errorf("Parent(%d) = %d,%v; want %d,%v", c.id, p, ok, c.parent, c.ok)
				}
			}

			// FirstChild skips attributes.
			fc, ok, err := s.FirstChild(1)
			if err != nil || !ok || fc != 3 {
				t.Errorf("FirstChild(root) = %d,%v,%v; want 3", fc, ok, err)
			}
			fc, ok, _ = s.FirstChild(7) // <d k="v">y</d> -> text y
			if !ok || fc != 9 {
				t.Errorf("FirstChild(d) = %d,%v; want 9", fc, ok)
			}
			if _, ok, _ := s.FirstChild(10); ok {
				t.Error("empty element has a child")
			}
			if _, ok, _ := s.FirstChild(5); ok {
				t.Error("text node has a child")
			}

			// Sibling chain under root: a(3) -> d(7) -> e(10).
			next, ok, _ := s.NextSibling(3)
			if !ok || next != 7 {
				t.Errorf("NextSibling(3) = %d,%v", next, ok)
			}
			next, ok, _ = s.NextSibling(7)
			if !ok || next != 10 {
				t.Errorf("NextSibling(7) = %d,%v", next, ok)
			}
			if _, ok, _ := s.NextSibling(10); ok {
				t.Error("last child has a next sibling")
			}
			if _, ok, _ := s.NextSibling(1); ok {
				t.Error("lone root has a next sibling")
			}

			prev, ok, _ := s.PrevSibling(7)
			if !ok || prev != 3 {
				t.Errorf("PrevSibling(7) = %d,%v", prev, ok)
			}
			if _, ok, _ := s.PrevSibling(3); ok {
				t.Error("first child has a prev sibling")
			}

			// Attributes.
			attrs, err := s.Attributes(1)
			if err != nil || len(attrs) != 1 || attrs[0] != 2 {
				t.Errorf("Attributes(root) = %v, %v", attrs, err)
			}
			attrs, _ = s.Attributes(3)
			if len(attrs) != 0 {
				t.Errorf("Attributes(a) = %v", attrs)
			}

			// Children.
			kids, err := s.Children(1)
			if err != nil {
				t.Fatal(err)
			}
			want := []NodeID{3, 7, 10}
			if len(kids) != len(want) {
				t.Fatalf("Children(root) = %v", kids)
			}
			for i := range want {
				if kids[i] != want[i] {
					t.Fatalf("Children(root) = %v, want %v", kids, want)
				}
			}
		})
	}
}

func TestNavigationAcrossSplits(t *testing.T) {
	// Splitting ranges with inserts must not break structural relations,
	// and navigation over multi-range subtrees must cross boundaries.
	s := navStore(t, RangePartial)
	// Split inside <a>: new node under b.
	newID, err := s.InsertIntoLast(4, xmltok.MustParseFragment(`<w/>`))
	if err != nil {
		t.Fatal(err)
	}
	p, ok, err := s.Parent(newID)
	if err != nil || !ok || p != 4 {
		t.Errorf("Parent(new) = %d,%v,%v; want 4", p, ok, err)
	}
	// b's children now: "x"(5), w(new).
	kids, _ := s.Children(4)
	if len(kids) != 2 || kids[0] != 5 || kids[1] != newID {
		t.Errorf("Children(b) = %v", kids)
	}
	// Old relations intact after the splits.
	if p, ok, _ := s.Parent(6); !ok || p != 3 {
		t.Errorf("Parent(c) = %d,%v", p, ok)
	}
	if next, ok, _ := s.NextSibling(3); !ok || next != 7 {
		t.Errorf("NextSibling(a) = %d,%v", next, ok)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNavigationTopLevelSiblings(t *testing.T) {
	s := openStore(t, Config{})
	s.Append(xmltok.MustParseFragment(`<a/><b/><c/>`))
	// a=1 b=2 c=3 at top level.
	if next, ok, _ := s.NextSibling(1); !ok || next != 2 {
		t.Errorf("NextSibling(1) = %d,%v", next, ok)
	}
	if prev, ok, _ := s.PrevSibling(3); !ok || prev != 2 {
		t.Errorf("PrevSibling(3) = %d,%v", prev, ok)
	}
	if _, ok, _ := s.Parent(2); ok {
		t.Error("top-level node has a parent")
	}
}

func TestParentCaching(t *testing.T) {
	s := navStore(t, RangePartial)
	// Deep node: parent lookup scans; second lookup must hit the cache.
	if _, _, err := s.Parent(5); err != nil {
		t.Fatal(err)
	}
	scanned := s.Stats().TokensScanned
	hits := s.Stats().PartialHits
	if _, _, err := s.Parent(5); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.TokensScanned != scanned {
		t.Errorf("cached parent lookup scanned %d tokens", st.TokensScanned-scanned)
	}
	if st.PartialHits <= hits {
		t.Error("cached parent lookup did not count as a hit")
	}
	// Deleting the subtree invalidates: Parent on the dead node errors.
	if err := s.DeleteNode(4); err != nil { // <b> and its text child 5
		t.Fatal(err)
	}
	if _, _, err := s.Parent(5); err == nil {
		t.Error("Parent of deleted node should fail")
	}
}

func TestNavigationDeepDocument(t *testing.T) {
	// Parent search across many ranges, including carried end-token
	// deficits: build <d1><d2>...<dN/>...</d2></d1> chopped into tiny
	// ranges, then ask for parents from the bottom.
	var src string
	const depth = 30
	for i := 0; i < depth; i++ {
		src += "<d>"
	}
	src += "<leaf/>"
	for i := 0; i < depth; i++ {
		src += "</d>"
	}
	s := openStore(t, Config{Mode: RangeOnly, MaxRangeTokens: 4})
	if _, err := s.Append(xmltok.MustParse(src)); err != nil {
		t.Fatal(err)
	}
	// leaf id = depth+1; its parent chain is depth, depth-1, ..., 1.
	id := NodeID(depth + 1)
	for want := NodeID(depth); want >= 1; want-- {
		p, ok, err := s.Parent(id)
		if err != nil || !ok {
			t.Fatalf("Parent(%d): %v %v", id, ok, err)
		}
		if p != want {
			t.Fatalf("Parent(%d) = %d, want %d", id, p, want)
		}
		id = p
	}
	if _, ok, _ := s.Parent(1); ok {
		t.Error("outermost element has a parent")
	}
}

func TestNavigationErrors(t *testing.T) {
	s := navStore(t, RangeOnly)
	if _, _, err := s.Parent(99); err == nil {
		t.Error("Parent of missing node")
	}
	if _, _, err := s.FirstChild(99); err == nil {
		t.Error("FirstChild of missing node")
	}
	if _, _, err := s.NextSibling(99); err == nil {
		t.Error("NextSibling of missing node")
	}
	if _, err := s.Attributes(99); err == nil {
		t.Error("Attributes of missing node")
	}
	// Attribute nodes: no children/siblings, but a parent.
	if _, ok, _ := s.FirstChild(2); ok {
		t.Error("attribute has a child")
	}
	if _, ok, _ := s.NextSibling(2); ok {
		t.Error("attribute has a sibling")
	}
	// Attributes of non-elements are empty.
	attrs, err := s.Attributes(5)
	if err != nil || len(attrs) != 0 {
		t.Errorf("Attributes(text) = %v, %v", attrs, err)
	}
	s.Close()
	if _, _, err := s.Parent(1); err == nil {
		t.Error("Parent on closed store")
	}
}

// Differential test: navigation answers must agree with a reference tree
// built from ReadAll, across random stores.
func TestNavigationDifferential(t *testing.T) {
	s := openStore(t, Config{Mode: RangePartial, MaxRangeTokens: 8, PageSize: 1024})
	doc := buildFlatDoc(40)
	if _, err := s.Append(doc); err != nil {
		t.Fatal(err)
	}
	// Shake the structure with a few updates.
	s.InsertIntoLast(2, xmltok.MustParseFragment(`<extra><deep/></extra>`))
	s.DeleteNode(10)
	s.InsertAfter(5, xmltok.MustParseFragment(`sibling-text`))

	items, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Reference: compute parent and sibling maps from the flat items.
	type rel struct {
		parent, next NodeID
		kids         []NodeID
		attrs        []NodeID
	}
	rels := map[NodeID]*rel{}
	get := func(id NodeID) *rel {
		if rels[id] == nil {
			rels[id] = &rel{}
		}
		return rels[id]
	}
	var stack []NodeID
	var lastSibling = map[NodeID]NodeID{} // parent -> previous child seen
	for _, it := range items {
		switch {
		case it.Tok.Kind.IsBegin() || it.Tok.StartsNode():
			if it.ID != InvalidNode {
				var parent NodeID
				if len(stack) > 0 {
					parent = stack[len(stack)-1]
				}
				get(it.ID).parent = parent
				isAttr := it.Tok.Kind.String() == "BEGIN_ATTRIBUTE"
				if isAttr {
					get(parent).attrs = append(get(parent).attrs, it.ID)
				} else {
					if prev, ok := lastSibling[parent]; ok {
						get(prev).next = it.ID
					}
					lastSibling[parent] = it.ID
					get(parent).kids = append(get(parent).kids, it.ID)
				}
			}
			if it.Tok.Kind.IsBegin() {
				stack = append(stack, it.ID)
			}
		case it.Tok.Kind.IsEnd():
			stack = stack[:len(stack)-1]
		}
	}
	for id, want := range rels {
		if id == InvalidNode {
			continue
		}
		p, ok, err := s.Parent(id)
		if err != nil {
			t.Fatalf("Parent(%d): %v", id, err)
		}
		if want.parent == InvalidNode {
			if ok {
				t.Errorf("Parent(%d) = %d, want none", id, p)
			}
		} else if !ok || p != want.parent {
			t.Errorf("Parent(%d) = %d,%v; want %d", id, p, ok, want.parent)
		}
		if want.next != InvalidNode {
			n, ok, err := s.NextSibling(id)
			if err != nil {
				t.Fatalf("NextSibling(%d): %v", id, err)
			}
			if !ok || n != want.next {
				t.Errorf("NextSibling(%d) = %d,%v; want %d", id, n, ok, want.next)
			}
		}
	}
}
