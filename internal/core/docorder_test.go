package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/xmltok"
)

// TestCompareDocOrder checks document-order comparison against the
// positions ReadAll reports, on a store whose ids are deliberately out of
// document order (mid-document inserts).
func TestCompareDocOrder(t *testing.T) {
	s := openStore(t, Config{Mode: RangePartial})
	if _, err := s.Append(xmltok.MustParse(`<r><a/><b/><c/></r>`)); err != nil {
		t.Fatal(err)
	}
	// Insert in the middle: new ids are larger but come earlier in document
	// order than <c>.
	if _, err := s.InsertAfter(2, xmltok.MustParseFragment(`<after-a/>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertIntoFirst(1, xmltok.MustParseFragment(`<front/>`)); err != nil {
		t.Fatal(err)
	}

	items, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	docPos := map[NodeID]int{}
	for i, it := range items {
		if it.ID != InvalidNode {
			docPos[it.ID] = i
		}
	}
	var ids []NodeID
	for id := range docPos {
		ids = append(ids, id)
	}
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		a := ids[r.Intn(len(ids))]
		b := ids[r.Intn(len(ids))]
		got, err := s.CompareDocOrder(a, b)
		if err != nil {
			t.Fatalf("CompareDocOrder(%d,%d): %v", a, b, err)
		}
		want := 0
		if docPos[a] < docPos[b] {
			want = -1
		} else if docPos[a] > docPos[b] {
			want = 1
		}
		if got != want {
			t.Fatalf("CompareDocOrder(%d,%d) = %d, want %d (pos %d vs %d)",
				a, b, got, want, docPos[a], docPos[b])
		}
	}
	// Errors for dead ids.
	if _, err := s.CompareDocOrder(1, 999); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("missing id: %v", err)
	}
	if _, err := s.CompareDocOrder(999, 999); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("missing self-compare: %v", err)
	}
}

func TestCompareDocOrderAcrossManyRanges(t *testing.T) {
	s := openStore(t, Config{Mode: RangeOnly, MaxRangeTokens: 4})
	if _, err := s.Append(buildFlatDoc(30)); err != nil {
		t.Fatal(err)
	}
	// Sequential load: ids are in document order; spot-check transitivity
	// across range boundaries.
	st := s.Stats()
	if st.Ranges < 10 {
		t.Fatalf("want many ranges, got %d", st.Ranges)
	}
	for a := NodeID(1); a+7 <= NodeID(st.Nodes); a += 7 {
		got, err := s.CompareDocOrder(a, a+7)
		if err != nil {
			t.Fatal(err)
		}
		if got != -1 {
			t.Fatalf("CompareDocOrder(%d,%d) = %d", a, a+7, got)
		}
		rev, _ := s.CompareDocOrder(a+7, a)
		if rev != 1 {
			t.Fatalf("reverse = %d", rev)
		}
	}
	if c, err := s.CompareDocOrder(5, 5); err != nil || c != 0 {
		t.Errorf("self compare: %d %v", c, err)
	}
}
