// Package workload generates the synthetic documents and access patterns
// used by the examples and the benchmark harness: the paper's purchase-order
// append workload (Section 4.1), the Figure 1 ticket documents, seeded
// random trees, and auction-style catalogs, plus skewed (Zipf) access
// distributions for the partial-index experiments.
//
// All generators are deterministic for a given seed, so experiment runs are
// reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/token"
)

// Gen is a seeded workload generator.
type Gen struct {
	r *rand.Rand
}

// New returns a generator with the given seed.
func New(seed int64) *Gen {
	return &Gen{r: rand.New(rand.NewSource(seed))}
}

var itemNames = []string{
	"widget", "sprocket", "gear", "flange", "bracket", "valve", "gasket",
	"bearing", "coupling", "fitting",
}

var customerNames = []string{
	"Acme Corp", "Globex", "Initech", "Umbrella", "Stark Industries",
	"Wayne Enterprises", "Tyrell", "Cyberdyne",
}

// PurchaseOrder builds one <purchase-order> fragment — the unit the paper's
// motivating workload appends as the last child of the root.
func (g *Gen) PurchaseOrder(seq int) []token.Token {
	lines := 1 + g.r.Intn(4)
	toks := []token.Token{
		token.Elem("purchase-order"),
		token.Attr("id", fmt.Sprintf("PO-%06d", seq)), token.EndAttr(),
		token.Attr("status", pick(g.r, "open", "shipped", "billed")), token.EndAttr(),
		token.Elem("customer"), token.TextTok(pick(g.r, customerNames...)), token.EndElem(),
		token.Elem("date"), token.TextTok(fmt.Sprintf("2005-%02d-%02d", 1+g.r.Intn(12), 1+g.r.Intn(28))), token.EndElem(),
	}
	for i := 0; i < lines; i++ {
		toks = append(toks,
			token.Elem("line"),
			token.Attr("no", fmt.Sprintf("%d", i+1)), token.EndAttr(),
			token.Elem("item"), token.TextTok(pick(g.r, itemNames...)), token.EndElem(),
			token.Elem("qty"), token.TextTok(fmt.Sprintf("%d", 1+g.r.Intn(100))), token.EndElem(),
			token.Elem("price"), token.TextTok(fmt.Sprintf("%d.%02d", 1+g.r.Intn(500), g.r.Intn(100))), token.EndElem(),
			token.EndElem(),
		)
	}
	return append(toks, token.EndElem())
}

// PurchaseOrdersDoc builds a <purchase-orders> document with n orders.
func (g *Gen) PurchaseOrdersDoc(n int) []token.Token {
	toks := []token.Token{token.Elem("purchase-orders")}
	for i := 0; i < n; i++ {
		toks = append(toks, g.PurchaseOrder(i)...)
	}
	return append(toks, token.EndElem())
}

// Ticket builds one ticket document in the shape of the paper's Figure 1.
func (g *Gen) Ticket(seq int) []token.Token {
	return []token.Token{
		token.Elem("ticket"),
		token.Elem("hour"), token.TextTok(fmt.Sprintf("%d", g.r.Intn(24))), token.EndElem(),
		token.Elem("name"), token.TextTok(pick(g.r, "Paul", "Anna", "Maria", "Jonas", "Petra")), token.EndElem(),
		token.EndElem(),
	}
}

// RandomDoc builds a random well-formed document with roughly the requested
// number of nodes, mixed depth, attributes and text.
func (g *Gen) RandomDoc(nodes int) []token.Token {
	toks := []token.Token{token.Elem("root")}
	count := 1
	var build func(depth int)
	build = func(depth int) {
		if count >= nodes {
			return
		}
		switch g.r.Intn(6) {
		case 0, 1, 2: // element
			toks = append(toks, token.Elem(pick(g.r, "a", "b", "section", "entry", "data")))
			count++
			if g.r.Intn(3) == 0 {
				toks = append(toks, token.Attr("k", fmt.Sprintf("v%d", g.r.Intn(1000))), token.EndAttr())
				count++
			}
			if depth < 8 {
				for c := 0; c < g.r.Intn(4) && count < nodes; c++ {
					build(depth + 1)
				}
			}
			toks = append(toks, token.EndElem())
		case 3, 4: // text
			toks = append(toks, token.TextTok(fmt.Sprintf("text-%d", g.r.Intn(10000))))
			count++
		case 5: // comment
			toks = append(toks, token.CommentTok("c"))
			count++
		}
	}
	for count < nodes {
		build(0)
	}
	return append(toks, token.EndElem())
}

// AuctionDoc builds an auction-site catalog (categories, sellers, open
// auctions) reminiscent of the XMark benchmark's structure, scaled by items.
func (g *Gen) AuctionDoc(items int) []token.Token {
	toks := []token.Token{token.Elem("site")}
	toks = append(toks, token.Elem("categories"))
	ncat := 1 + items/10
	for c := 0; c < ncat; c++ {
		toks = append(toks,
			token.Elem("category"),
			token.Attr("id", fmt.Sprintf("c%d", c)), token.EndAttr(),
			token.Elem("name"), token.TextTok(fmt.Sprintf("category-%d", c)), token.EndElem(),
			token.EndElem())
	}
	toks = append(toks, token.EndElem())
	toks = append(toks, token.Elem("open_auctions"))
	for i := 0; i < items; i++ {
		toks = append(toks,
			token.Elem("open_auction"),
			token.Attr("id", fmt.Sprintf("a%d", i)), token.EndAttr(),
			token.Elem("itemref"), token.TextTok(pick(g.r, itemNames...)), token.EndElem(),
			token.Elem("category"), token.TextTok(fmt.Sprintf("c%d", g.r.Intn(ncat))), token.EndElem(),
			token.Elem("initial"), token.TextTok(fmt.Sprintf("%d.%02d", g.r.Intn(1000), g.r.Intn(100))), token.EndElem(),
			token.Elem("bids"), token.TextTok(fmt.Sprintf("%d", g.r.Intn(50))), token.EndElem(),
			token.EndElem())
	}
	toks = append(toks, token.EndElem())
	return append(toks, token.EndElem())
}

// Zipf returns a skewed sampler over [1, max] with exponent s (> 1 skews
// harder toward small values). Used to model hot-node access patterns for
// the partial-index warm-up experiment.
func (g *Gen) Zipf(max uint64, s float64) func() uint64 {
	if s <= 1 {
		s = 1.1
	}
	z := rand.NewZipf(g.r, s, 1, max-1)
	return func() uint64 { return z.Uint64() + 1 }
}

// Uniform returns a uniform sampler over [1, max].
func (g *Gen) Uniform(max uint64) func() uint64 {
	return func() uint64 { return uint64(g.r.Int63n(int64(max))) + 1 }
}

// Perm returns a seeded permutation of [0, n), used to scatter skewed key
// popularity across the id space.
func (g *Gen) Perm(n int) []int { return g.r.Perm(n) }

// EncodedBytes returns the encoded size of a fragment — the data-volume
// basis of the paper's kb/s metrics.
func EncodedBytes(frag []token.Token) int {
	n := 0
	for _, t := range frag {
		n += token.EncodedSize(t)
	}
	return n
}

func pick[T any](r *rand.Rand, choices ...T) T {
	return choices[r.Intn(len(choices))]
}
