package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/token"
	"repro/internal/xpath"
)

func TestGeneratorsWellFormed(t *testing.T) {
	g := New(1)
	frags := map[string][]token.Token{
		"purchase-order":  g.PurchaseOrder(7),
		"purchase-orders": g.PurchaseOrdersDoc(20),
		"ticket":          g.Ticket(1),
		"random":          g.RandomDoc(500),
		"auction":         g.AuctionDoc(50),
	}
	for name, frag := range frags {
		if err := token.ValidateFragment(frag); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if token.NodeCount(frag) == 0 {
			t.Errorf("%s: empty fragment", name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New(42).PurchaseOrdersDoc(10)
	b := New(42).PurchaseOrdersDoc(10)
	if !token.Equal(a, b) {
		t.Error("same seed must generate identical documents")
	}
	c := New(43).PurchaseOrdersDoc(10)
	if token.Equal(a, c) {
		t.Error("different seeds should differ")
	}
}

func TestRandomDocNodeCount(t *testing.T) {
	for _, want := range []int{10, 100, 2000} {
		doc := New(7).RandomDoc(want)
		got := token.NodeCount(doc)
		if got < want || got > want+20 {
			t.Errorf("RandomDoc(%d) has %d nodes", want, got)
		}
	}
}

func TestDocsLoadIntoStore(t *testing.T) {
	g := New(3)
	docs := [][]token.Token{
		g.PurchaseOrdersDoc(30),
		g.RandomDoc(300),
		g.AuctionDoc(40),
	}
	for i, doc := range docs {
		s, err := core.Open(core.Config{Mode: core.RangePartial})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append(doc); err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Errorf("doc %d: %v", i, err)
		}
		s.Close()
	}
}

func TestPurchaseOrdersQueryable(t *testing.T) {
	s, _ := core.Open(core.Config{})
	defer s.Close()
	s.Append(New(9).PurchaseOrdersDoc(25))
	ids, err := xpath.QueryIDs(s, `//purchase-order`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 25 {
		t.Errorf("found %d purchase orders", len(ids))
	}
	ids, err = xpath.QueryIDs(s, `//purchase-order[@status="open"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 || len(ids) == 25 {
		t.Errorf("status filter looks degenerate: %d", len(ids))
	}
}

func TestZipfSkew(t *testing.T) {
	g := New(11)
	sample := g.Zipf(1000, 1.5)
	counts := map[uint64]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		v := sample()
		if v < 1 || v > 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	// The head must be much hotter than the tail.
	if counts[1] < 100*max(counts[900], 1)/10 {
		t.Errorf("zipf not skewed: head=%d tail=%d", counts[1], counts[900])
	}
}

func TestUniformRange(t *testing.T) {
	g := New(13)
	sample := g.Uniform(50)
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		v := sample()
		if v < 1 || v > 50 {
			t.Fatalf("uniform out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 45 {
		t.Errorf("uniform covered only %d of 50 values", len(seen))
	}
}

func TestEncodedBytes(t *testing.T) {
	frag := New(1).Ticket(0)
	n := EncodedBytes(frag)
	if n != len(token.EncodeAll(frag)) {
		t.Errorf("EncodedBytes = %d, encoding = %d", n, len(token.EncodeAll(frag)))
	}
}
