package xmltok

import (
	"testing"

	"repro/internal/token"
)

// FuzzParse feeds arbitrary bytes to the scanner: it must never panic, and
// anything it accepts must be a well-formed token sequence that survives a
// serialize→reparse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<ticket><hour>15</hour><name>Paul</name></ticket>`,
		`<a x="1" y='2'>text &amp; more</a>`,
		`<a><![CDATA[raw]]><!--c--><?pi d?></a>`,
		`<?xml version="1.0"?><!DOCTYPE a []><a>&#65;</a>`,
		`<日本語 名="値">テキスト</日本語>`,
		`<a`, `</a>`, `<a>&bogus;</a>`, `<<>>`, "",
		`<a b="&#x10FFFF;"/>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := ParseString(src, ParseOptions{})
		if err != nil {
			return // rejected input is fine
		}
		if err := token.ValidateFragment(toks); err != nil {
			t.Fatalf("accepted %q but tokens invalid: %v", src, err)
		}
		xml, err := ToString(toks)
		if err != nil {
			t.Fatalf("accepted %q but cannot serialize: %v", src, err)
		}
		back, err := ParseFragmentString(xml, ParseOptions{})
		if err != nil {
			t.Fatalf("own output %q does not reparse: %v", xml, err)
		}
		// Adjacent text runs merge in the reparse; normalize both sides.
		if !token.Equal(mergeAdjacentText(back), mergeAdjacentText(toks)) {
			t.Fatalf("round trip changed %q -> %q", src, xml)
		}
	})
}

// FuzzTokenCodec feeds arbitrary bytes to the binary token decoder: it must
// never panic or over-read, and every decoded prefix must re-encode to the
// same bytes.
func FuzzTokenCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(token.EncodeAll([]token.Token{
		token.Elem("a"), token.Attr("k", "v"), token.EndAttr(),
		token.TextTok("x"), token.EndElem(),
	}))
	f.Add([]byte{0xFF, 0x00, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		for pos < len(data) {
			tok, n, err := token.Decode(data[pos:])
			if err != nil {
				return
			}
			if n <= 0 || pos+n > len(data) {
				t.Fatalf("decode consumed %d of %d remaining", n, len(data)-pos)
			}
			re := token.Append(nil, tok)
			if string(re) != string(data[pos:pos+n]) {
				t.Fatalf("re-encode mismatch at %d", pos)
			}
			pos += n
		}
	})
}
