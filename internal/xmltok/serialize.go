package xmltok

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/token"
)

// Serializer writes a token stream back out as XML text. It is the inverse
// of the Scanner for well-formed streams and is used by the store's Read
// interface to hand XML back to applications.
type Serializer struct {
	w       *bufio.Writer
	stack   []string
	openTag bool // begin element written, '>' not yet emitted
	err     error
}

// NewSerializer returns a Serializer writing to w.
func NewSerializer(w io.Writer) *Serializer {
	return &Serializer{w: bufio.NewWriter(w)}
}

// Write emits one token.
func (s *Serializer) Write(t token.Token) error {
	if s.err != nil {
		return s.err
	}
	s.err = s.write(t)
	return s.err
}

func (s *Serializer) write(t token.Token) error {
	switch t.Kind {
	case token.BeginDocument, token.EndDocument:
		return nil // document brackets have no textual form
	case token.BeginElement:
		s.closeOpenTag()
		fmt.Fprintf(s.w, "<%s", t.Name)
		s.openTag = true
		s.stack = append(s.stack, t.Name)
	case token.BeginAttribute:
		if !s.openTag {
			return fmt.Errorf("xmltok: attribute %q outside element start", t.Name)
		}
		fmt.Fprintf(s.w, ` %s="%s"`, t.Name, EscapeAttr(t.Value))
	case token.EndAttribute:
		if !s.openTag {
			return fmt.Errorf("xmltok: end-attribute outside element start")
		}
	case token.EndElement:
		if len(s.stack) == 0 {
			return fmt.Errorf("xmltok: end element without open element")
		}
		name := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		if s.openTag {
			s.w.WriteString("/>")
			s.openTag = false
		} else {
			fmt.Fprintf(s.w, "</%s>", name)
		}
	case token.Text:
		s.closeOpenTag()
		s.w.WriteString(EscapeText(t.Value))
	case token.Comment:
		s.closeOpenTag()
		fmt.Fprintf(s.w, "<!--%s-->", t.Value)
	case token.PI:
		s.closeOpenTag()
		fmt.Fprintf(s.w, "<?%s %s?>", t.Name, t.Value)
	default:
		return fmt.Errorf("xmltok: cannot serialize %s", t.Kind)
	}
	return nil
}

func (s *Serializer) closeOpenTag() {
	if s.openTag {
		s.w.WriteByte('>')
		s.openTag = false
	}
}

// Flush completes serialization and flushes buffered output. It reports an
// error if elements remain open.
func (s *Serializer) Flush() error {
	if s.err != nil {
		return s.err
	}
	if len(s.stack) > 0 {
		return fmt.Errorf("xmltok: %d unclosed element(s) at flush", len(s.stack))
	}
	s.closeOpenTag()
	return s.w.Flush()
}

// Serialize writes the whole token sequence to w as XML.
func Serialize(w io.Writer, seq []token.Token) error {
	s := NewSerializer(w)
	for _, t := range seq {
		if err := s.Write(t); err != nil {
			return err
		}
	}
	return s.Flush()
}

// ToString renders a token sequence as an XML string, for tests, examples
// and the CLI.
func ToString(seq []token.Token) (string, error) {
	var sb strings.Builder
	if err := Serialize(&sb, seq); err != nil {
		return "", err
	}
	return sb.String(), nil
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
var attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")

// EscapeText escapes character data for element content.
func EscapeText(s string) string { return textEscaper.Replace(s) }

// EscapeAttr escapes character data for a double-quoted attribute value.
func EscapeAttr(s string) string { return attrEscaper.Replace(s) }
