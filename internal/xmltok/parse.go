package xmltok

import (
	"io"
	"strings"

	"repro/internal/token"
)

// ParseOptions controls materializing parses.
type ParseOptions struct {
	// StripWhitespace drops text tokens that consist entirely of XML
	// whitespace (typical pretty-printing indentation).
	StripWhitespace bool
	// DropComments drops comment tokens.
	DropComments bool
	// DropPIs drops processing-instruction tokens.
	DropPIs bool
}

func isAllSpace(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isSpace(s[i]) {
			return false
		}
	}
	return true
}

func collect(s *Scanner, opts ParseOptions) ([]token.Token, error) {
	var out []token.Token
	for {
		t, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		switch {
		case opts.StripWhitespace && t.Kind == token.Text && isAllSpace(t.Value):
			continue
		case opts.DropComments && t.Kind == token.Comment:
			continue
		case opts.DropPIs && t.Kind == token.PI:
			continue
		}
		out = append(out, t)
	}
}

// Parse tokenizes a complete XML document from r. The result is the token
// sequence of the root element and any surrounding comments/PIs; document
// bracket tokens are not emitted (the store holds XQuery Data Model
// sequences, not document nodes).
func Parse(r io.Reader, opts ParseOptions) ([]token.Token, error) {
	return collect(NewScanner(r), opts)
}

// ParseString is Parse over a string.
func ParseString(s string, opts ParseOptions) ([]token.Token, error) {
	return Parse(strings.NewReader(s), opts)
}

// ParseFragment tokenizes an XML fragment (any sequence of top-level nodes).
func ParseFragment(r io.Reader, opts ParseOptions) ([]token.Token, error) {
	return collect(NewFragmentScanner(r), opts)
}

// ParseFragmentString is ParseFragment over a string.
func ParseFragmentString(s string, opts ParseOptions) ([]token.Token, error) {
	return ParseFragment(strings.NewReader(s), opts)
}

// MustParse parses a trusted document literal, panicking on error. Intended
// for tests and examples.
func MustParse(s string) []token.Token {
	toks, err := ParseString(s, ParseOptions{StripWhitespace: true})
	if err != nil {
		panic(err)
	}
	return toks
}

// MustParseFragment parses a trusted fragment literal, panicking on error.
func MustParseFragment(s string) []token.Token {
	toks, err := ParseFragmentString(s, ParseOptions{StripWhitespace: true})
	if err != nil {
		panic(err)
	}
	return toks
}
