package xmltok

import (
	"io"
	"strings"
	"testing"

	"repro/internal/token"
)

func scanAll(t *testing.T, src string) []token.Token {
	t.Helper()
	toks, err := ParseString(src, ParseOptions{})
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return toks
}

func assertTokens(t *testing.T, got, want []token.Token) {
	t.Helper()
	if !token.Equal(got, want) {
		t.Errorf("token mismatch\n got: %v\nwant: %v", got, want)
	}
}

func TestFigure1(t *testing.T) {
	// The paper's Figure 1 document.
	src := `<ticket><hour>15</hour><name>Paul</name></ticket>`
	got := scanAll(t, src)
	want := []token.Token{
		token.Elem("ticket"),
		token.Elem("hour"), token.TextTok("15"), token.EndElem(),
		token.Elem("name"), token.TextTok("Paul"), token.EndElem(),
		token.EndElem(),
	}
	assertTokens(t, got, want)
	if token.NodeCount(got) != 5 {
		t.Errorf("expected 5 nodes as in Figure 1, got %d", token.NodeCount(got))
	}
}

func TestAttributesBecomeTokens(t *testing.T) {
	got := scanAll(t, `<a x="1" y='2'/>`)
	want := []token.Token{
		token.Elem("a"),
		token.Attr("x", "1"), token.EndAttr(),
		token.Attr("y", "2"), token.EndAttr(),
		token.EndElem(),
	}
	assertTokens(t, got, want)
}

func TestSelfClosingNested(t *testing.T) {
	got := scanAll(t, `<a><b/><c/></a>`)
	want := []token.Token{
		token.Elem("a"),
		token.Elem("b"), token.EndElem(),
		token.Elem("c"), token.EndElem(),
		token.EndElem(),
	}
	assertTokens(t, got, want)
}

func TestEntities(t *testing.T) {
	got := scanAll(t, `<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>`)
	want := []token.Token{
		token.Elem("a"), token.TextTok(`<x> & "y" 'z'`), token.EndElem(),
	}
	assertTokens(t, got, want)
}

func TestCharRefs(t *testing.T) {
	got := scanAll(t, `<a>&#65;&#x42;&#x1F600;</a>`)
	want := []token.Token{
		token.Elem("a"), token.TextTok("AB\U0001F600"), token.EndElem(),
	}
	assertTokens(t, got, want)
}

func TestEntityInAttribute(t *testing.T) {
	got := scanAll(t, `<a k="&amp;&lt;&#48;"/>`)
	want := []token.Token{
		token.Elem("a"), token.Attr("k", "&<0"), token.EndAttr(), token.EndElem(),
	}
	assertTokens(t, got, want)
}

func TestCDATA(t *testing.T) {
	got := scanAll(t, `<a><![CDATA[<not> & markup]]></a>`)
	want := []token.Token{
		token.Elem("a"), token.TextTok("<not> & markup"), token.EndElem(),
	}
	assertTokens(t, got, want)
}

func TestCDATAFoldedIntoText(t *testing.T) {
	got := scanAll(t, `<a>pre<![CDATA[mid]]>post</a>`)
	// The leading text run absorbs the CDATA and following text.
	want := []token.Token{
		token.Elem("a"), token.TextTok("premidpost"), token.EndElem(),
	}
	assertTokens(t, got, want)
}

func TestComments(t *testing.T) {
	got := scanAll(t, `<!-- head --><a><!--inner--></a><!-- tail -->`)
	want := []token.Token{
		token.CommentTok(" head "),
		token.Elem("a"), token.CommentTok("inner"), token.EndElem(),
		token.CommentTok(" tail "),
	}
	assertTokens(t, got, want)
}

func TestProcessingInstruction(t *testing.T) {
	got := scanAll(t, `<?xml version="1.0"?><?style href="a.css"?><a/>`)
	want := []token.Token{
		token.PITok("style", `href="a.css"`),
		token.Elem("a"), token.EndElem(),
	}
	assertTokens(t, got, want)
}

func TestDoctypeSkipped(t *testing.T) {
	got := scanAll(t, `<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>t</a>`)
	want := []token.Token{
		token.Elem("a"), token.TextTok("t"), token.EndElem(),
	}
	assertTokens(t, got, want)
}

func TestMixedContent(t *testing.T) {
	got := scanAll(t, `<p>one <b>two</b> three</p>`)
	want := []token.Token{
		token.Elem("p"), token.TextTok("one "),
		token.Elem("b"), token.TextTok("two"), token.EndElem(),
		token.TextTok(" three"), token.EndElem(),
	}
	assertTokens(t, got, want)
}

func TestNamespacePrefixesPreserved(t *testing.T) {
	got := scanAll(t, `<ns:a xmlns:ns="http://x" ns:k="v"/>`)
	want := []token.Token{
		token.Elem("ns:a"),
		token.Attr("xmlns:ns", "http://x"), token.EndAttr(),
		token.Attr("ns:k", "v"), token.EndAttr(),
		token.EndElem(),
	}
	assertTokens(t, got, want)
}

func TestUnicodeNamesAndText(t *testing.T) {
	got := scanAll(t, `<日本語 名="値">テキスト</日本語>`)
	want := []token.Token{
		token.Elem("日本語"),
		token.Attr("名", "値"), token.EndAttr(),
		token.TextTok("テキスト"),
		token.EndElem(),
	}
	assertTokens(t, got, want)
}

func TestFragmentMultipleRoots(t *testing.T) {
	toks, err := ParseFragmentString(`<a/><b/>text`, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []token.Token{
		token.Elem("a"), token.EndElem(),
		token.Elem("b"), token.EndElem(),
		token.TextTok("text"),
	}
	assertTokens(t, toks, want)
}

func TestParseOptionsFiltering(t *testing.T) {
	src := `<a> <!--c--> <?p d?> <b/> </a>`
	toks, err := ParseString(src, ParseOptions{
		StripWhitespace: true, DropComments: true, DropPIs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []token.Token{
		token.Elem("a"), token.Elem("b"), token.EndElem(), token.EndElem(),
	}
	assertTokens(t, toks, want)
}

func TestWellFormednessErrors(t *testing.T) {
	bad := []struct{ name, src string }{
		{"mismatched", `<a></b>`},
		{"unclosed", `<a>`},
		{"stray end", `</a>`},
		{"two roots", `<a/><b/>`},
		{"text outside root", `hello`},
		{"dup attr", `<a x="1" x="2"/>`},
		{"unquoted attr", `<a x=1/>`},
		{"lt in attr", `<a x="<"/>`},
		{"bad entity", `<a>&bogus;</a>`},
		{"bad charref", `<a>&#xZZ;</a>`},
		{"eof in comment", `<a><!-- never ends`},
		{"double dash comment", `<a><!-- x -- y --></a>`},
		{"eof in cdata", `<a><![CDATA[never`},
		{"eof in pi", `<a><?pi never`},
		{"bad name start", `<1a/>`},
		{"eof in tag", `<a x="v"`},
		{"content after root", `<a/>junk`},
		{"eof in attr value", `<a x="unterminated`},
		{"missing eq", `<a x "v"/>`},
		{"empty", ``},
		{"eof in doctype", `<!DOCTYPE a [`},
		{"bad bang", `<a><!WHAT></a>`},
		{"slash not close", `<a/x>`},
		{"entity too long", `<a>&aaaaaaaaaaaaaaaaaaaaaaaaaa;</a>`},
	}
	for _, c := range bad {
		if _, err := ParseString(c.src, ParseOptions{}); err == nil {
			t.Errorf("%s: expected error for %q", c.name, c.src)
		}
	}
}

func TestSyntaxErrorHasOffset(t *testing.T) {
	_, err := ParseString(`<a></b>`, ParseOptions{})
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("expected *SyntaxError, got %T: %v", err, err)
	}
	if se.Offset <= 0 {
		t.Errorf("offset should be positive: %d", se.Offset)
	}
	if !strings.Contains(se.Error(), "offset") {
		t.Errorf("error text: %q", se.Error())
	}
}

func TestScannerPullInterface(t *testing.T) {
	s := NewScanner(strings.NewReader(`<a k="v">x</a>`))
	var kinds []token.Kind
	for {
		tok, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, tok.Kind)
	}
	want := []token.Kind{
		token.BeginElement, token.BeginAttribute, token.EndAttribute,
		token.Text, token.EndElement,
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	// Error after EOF is sticky EOF.
	if _, err := s.Next(); err != io.EOF {
		t.Errorf("after EOF: %v", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse(`<a>`)
}

func TestMustParseFragment(t *testing.T) {
	toks := MustParseFragment(`<a/><b/>`)
	if len(toks) != 4 {
		t.Fatalf("got %d tokens", len(toks))
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseFragment should panic on bad input")
		}
	}()
	MustParseFragment(`<a>`)
}

func TestDeepNesting(t *testing.T) {
	var sb strings.Builder
	const depth = 2000
	for i := 0; i < depth; i++ {
		sb.WriteString("<d>")
	}
	sb.WriteString("x")
	for i := 0; i < depth; i++ {
		sb.WriteString("</d>")
	}
	toks := scanAll(t, sb.String())
	if token.NodeCount(toks) != depth+1 {
		t.Errorf("node count = %d", token.NodeCount(toks))
	}
	if err := token.ValidateFragment(toks); err != nil {
		t.Error(err)
	}
}

func TestWhitespaceHandling(t *testing.T) {
	// Whitespace inside elements is significant.
	got := scanAll(t, "<a>  \n\t</a>")
	want := []token.Token{
		token.Elem("a"), token.TextTok("  \n\t"), token.EndElem(),
	}
	assertTokens(t, got, want)
	// Whitespace around the root is not.
	got = scanAll(t, "  <a/>  ")
	assertTokens(t, got, []token.Token{token.Elem("a"), token.EndElem()})
}

func BenchmarkScan(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<orders>")
	for i := 0; i < 200; i++ {
		sb.WriteString(`<order id="7" status="open"><item>widget</item><qty>3</qty></order>`)
	}
	sb.WriteString("</orders>")
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(src, ParseOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
