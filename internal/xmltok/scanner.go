// Package xmltok is a from-scratch pull-based XML tokenizer and serializer.
//
// It converts XML text into the enriched-event token stream of the token
// package (the BEA/XQRL-style representation the paper builds on): elements
// produce begin/end tokens, each attribute produces its own begin/end pair,
// and character data, comments and processing instructions are single
// tokens. The scanner checks well-formedness (tag balance, attribute
// uniqueness, legal name characters) and decodes the five predefined
// entities plus numeric character references.
//
// Namespace prefixes are preserved literally in token names ("ns:local");
// the store treats names as opaque strings, which is sufficient for the
// paper's storage-level experiments.
package xmltok

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/token"
)

// SyntaxError describes a well-formedness violation with its byte offset in
// the input.
type SyntaxError struct {
	Offset int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xmltok: offset %d: %s", e.Offset, e.Msg)
}

// Scanner reads XML text and produces tokens one at a time.
type Scanner struct {
	r       *bufio.Reader
	off     int // bytes consumed so far
	stack   []string
	pending []token.Token // queued tokens not yet returned (attrs after element begin)
	started bool          // saw the root element begin
	done    bool          // saw the root element end
	fragOK  bool          // allow multiple top-level nodes (fragment mode)
	err     error
}

// NewScanner returns a scanner over a complete XML document: exactly one
// root element, optional prolog, comments and PIs around it.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{r: bufio.NewReader(r)}
}

// NewFragmentScanner returns a scanner that accepts a fragment: any sequence
// of elements, text, comments and PIs at top level.
func NewFragmentScanner(r io.Reader) *Scanner {
	return &Scanner{r: bufio.NewReader(r), fragOK: true}
}

// Next returns the next token, or io.EOF after the last one.
func (s *Scanner) Next() (token.Token, error) {
	if len(s.pending) > 0 {
		t := s.pending[0]
		s.pending = s.pending[1:]
		return t, nil
	}
	if s.err != nil {
		return token.Token{}, s.err
	}
	t, err := s.scan()
	if err != nil {
		s.err = err
	}
	return t, err
}

func (s *Scanner) errorf(format string, args ...any) error {
	return &SyntaxError{Offset: s.off, Msg: fmt.Sprintf(format, args...)}
}

func (s *Scanner) readByte() (byte, error) {
	b, err := s.r.ReadByte()
	if err == nil {
		s.off++
	}
	return b, err
}

func (s *Scanner) unreadByte() {
	if err := s.r.UnreadByte(); err == nil {
		s.off--
	}
}

func (s *Scanner) peekByte() (byte, error) {
	b, err := s.r.Peek(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\r' || b == '\n' }

func (s *Scanner) skipSpace() error {
	for {
		b, err := s.peekByte()
		if err != nil {
			return err
		}
		if !isSpace(b) {
			return nil
		}
		s.readByte()
	}
}

// scan produces the next token from the input.
func (s *Scanner) scan() (token.Token, error) {
	atTop := len(s.stack) == 0
	if atTop {
		// Between top-level constructs, whitespace is insignificant.
		if err := s.skipSpace(); err != nil {
			return s.finish(err)
		}
	}
	b, err := s.peekByte()
	if err != nil {
		return s.finish(err)
	}
	if b != '<' {
		if atTop {
			if !s.fragOK {
				return token.Token{}, s.errorf("character data outside root element")
			}
			return s.scanText()
		}
		return s.scanText()
	}
	s.readByte() // consume '<'
	b, err = s.peekByte()
	if err != nil {
		return token.Token{}, s.errorf("unexpected EOF after '<'")
	}
	switch {
	case b == '?':
		return s.scanPI()
	case b == '!':
		return s.scanBang()
	case b == '/':
		s.readByte()
		return s.scanEndTag()
	default:
		return s.scanStartTag()
	}
}

// finish maps io.EOF to either a clean end of input or an error about
// dangling state.
func (s *Scanner) finish(err error) (token.Token, error) {
	if err != io.EOF {
		return token.Token{}, err
	}
	if len(s.stack) > 0 {
		return token.Token{}, s.errorf("unexpected EOF: %d unclosed element(s), innermost <%s>", len(s.stack), s.stack[len(s.stack)-1])
	}
	if !s.fragOK && !s.started {
		return token.Token{}, s.errorf("no root element")
	}
	return token.Token{}, io.EOF
}

func isNameStart(r rune) bool {
	return r == '_' || r == ':' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return isNameStart(r) || r == '-' || r == '.' || unicode.IsDigit(r)
}

func (s *Scanner) scanName() (string, error) {
	var sb strings.Builder
	first := true
	for {
		r, err := s.readRune()
		if err != nil {
			if sb.Len() > 0 {
				return sb.String(), nil
			}
			return "", s.errorf("unexpected EOF in name")
		}
		if first {
			if !isNameStart(r) {
				s.unreadRune(r)
				return "", s.errorf("invalid name start character %q", r)
			}
			first = false
		} else if !isNameChar(r) {
			s.unreadRune(r)
			return sb.String(), nil
		}
		sb.WriteRune(r)
	}
}

// readRune reads one UTF-8 rune.
func (s *Scanner) readRune() (rune, error) {
	b, err := s.readByte()
	if err != nil {
		return 0, err
	}
	if b < utf8.RuneSelf {
		return rune(b), nil
	}
	// Multi-byte: collect continuation bytes.
	buf := []byte{b}
	for !utf8.FullRune(buf) && len(buf) < utf8.UTFMax {
		nb, err := s.readByte()
		if err != nil {
			break
		}
		buf = append(buf, nb)
	}
	r, _ := utf8.DecodeRune(buf)
	return r, nil
}

// unreadRune pushes back a single-byte rune; multi-byte runes are never
// pushed back by the scanner (names end at ASCII delimiters).
func (s *Scanner) unreadRune(r rune) {
	if r < utf8.RuneSelf {
		s.unreadByte()
	}
}

func (s *Scanner) scanStartTag() (token.Token, error) {
	if s.done && !s.fragOK {
		return token.Token{}, s.errorf("content after root element")
	}
	name, err := s.scanName()
	if err != nil {
		return token.Token{}, err
	}
	begin := token.Elem(name)
	var attrs []token.Token
	seen := map[string]bool{}
	selfClose := false
	for {
		if err := s.skipSpace(); err != nil {
			return token.Token{}, s.errorf("unexpected EOF in tag <%s>", name)
		}
		b, err := s.peekByte()
		if err != nil {
			return token.Token{}, s.errorf("unexpected EOF in tag <%s>", name)
		}
		if b == '>' {
			s.readByte()
			break
		}
		if b == '/' {
			s.readByte()
			b2, err := s.readByte()
			if err != nil || b2 != '>' {
				return token.Token{}, s.errorf("expected '>' after '/' in tag <%s>", name)
			}
			selfClose = true
			break
		}
		aname, err := s.scanName()
		if err != nil {
			return token.Token{}, err
		}
		if seen[aname] {
			return token.Token{}, s.errorf("duplicate attribute %q on <%s>", aname, name)
		}
		seen[aname] = true
		if err := s.skipSpace(); err != nil {
			return token.Token{}, s.errorf("unexpected EOF after attribute name")
		}
		b, err = s.readByte()
		if err != nil || b != '=' {
			return token.Token{}, s.errorf("expected '=' after attribute %q", aname)
		}
		if err := s.skipSpace(); err != nil {
			return token.Token{}, s.errorf("unexpected EOF after '='")
		}
		val, err := s.scanAttrValue()
		if err != nil {
			return token.Token{}, err
		}
		attrs = append(attrs, token.Attr(aname, val), token.EndAttr())
	}
	s.started = true
	if selfClose {
		attrs = append(attrs, token.EndElem())
		if len(s.stack) == 0 {
			s.done = true
		}
	} else {
		s.stack = append(s.stack, name)
	}
	s.pending = attrs
	return begin, nil
}

func (s *Scanner) scanAttrValue() (string, error) {
	q, err := s.readByte()
	if err != nil {
		return "", s.errorf("unexpected EOF before attribute value")
	}
	if q != '"' && q != '\'' {
		return "", s.errorf("attribute value must be quoted")
	}
	var sb strings.Builder
	for {
		b, err := s.readByte()
		if err != nil {
			return "", s.errorf("unexpected EOF in attribute value")
		}
		switch b {
		case q:
			return sb.String(), nil
		case '<':
			return "", s.errorf("'<' in attribute value")
		case '&':
			r, err := s.scanReference()
			if err != nil {
				return "", err
			}
			sb.WriteString(r)
		default:
			sb.WriteByte(b)
		}
	}
}

func (s *Scanner) scanEndTag() (token.Token, error) {
	name, err := s.scanName()
	if err != nil {
		return token.Token{}, err
	}
	if err := s.skipSpace(); err != nil {
		return token.Token{}, s.errorf("unexpected EOF in end tag </%s>", name)
	}
	b, err := s.readByte()
	if err != nil || b != '>' {
		return token.Token{}, s.errorf("expected '>' in end tag </%s>", name)
	}
	if len(s.stack) == 0 {
		return token.Token{}, s.errorf("end tag </%s> without open element", name)
	}
	top := s.stack[len(s.stack)-1]
	if top != name {
		return token.Token{}, s.errorf("end tag </%s> does not match open element <%s>", name, top)
	}
	s.stack = s.stack[:len(s.stack)-1]
	if len(s.stack) == 0 {
		s.done = true
	}
	return token.EndElem(), nil
}

// scanText accumulates character data until the next markup. Entity and
// character references are decoded. CDATA sections encountered mid-text are
// folded into the same text token.
func (s *Scanner) scanText() (token.Token, error) {
	var sb strings.Builder
	for {
		b, err := s.peekByte()
		if err != nil {
			break
		}
		if b == '<' {
			// CDATA folds into the current text run; other markup ends it.
			if s.peekCDATA() {
				if err := s.scanCDATA(&sb); err != nil {
					return token.Token{}, err
				}
				continue
			}
			break
		}
		s.readByte()
		if b == '&' {
			r, err := s.scanReference()
			if err != nil {
				return token.Token{}, err
			}
			sb.WriteString(r)
			continue
		}
		sb.WriteByte(b)
	}
	return token.TextTok(sb.String()), nil
}

func (s *Scanner) peekCDATA() bool {
	b, err := s.r.Peek(9)
	if err != nil {
		return false
	}
	return string(b) == "<![CDATA["
}

func (s *Scanner) scanCDATA(sb *strings.Builder) error {
	for i := 0; i < 9; i++ {
		s.readByte()
	}
	var tail [3]byte
	for {
		b, err := s.readByte()
		if err != nil {
			return s.errorf("unexpected EOF in CDATA section")
		}
		tail[0], tail[1], tail[2] = tail[1], tail[2], b
		sb.WriteByte(b)
		if tail == [3]byte{']', ']', '>'} {
			str := sb.String()
			sb.Reset()
			sb.WriteString(str[:len(str)-3])
			return nil
		}
	}
}

// scanReference decodes an entity or character reference after the '&'.
func (s *Scanner) scanReference() (string, error) {
	var sb strings.Builder
	for {
		b, err := s.readByte()
		if err != nil {
			return "", s.errorf("unexpected EOF in entity reference")
		}
		if b == ';' {
			break
		}
		if sb.Len() > 16 {
			return "", s.errorf("entity reference too long")
		}
		sb.WriteByte(b)
	}
	ref := sb.String()
	switch ref {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "apos":
		return "'", nil
	case "quot":
		return `"`, nil
	}
	if strings.HasPrefix(ref, "#") {
		num := ref[1:]
		base := 10
		if strings.HasPrefix(num, "x") || strings.HasPrefix(num, "X") {
			num, base = num[1:], 16
		}
		n, err := strconv.ParseUint(num, base, 32)
		if err != nil || !utf8.ValidRune(rune(n)) {
			return "", s.errorf("invalid character reference &%s;", ref)
		}
		return string(rune(n)), nil
	}
	return "", s.errorf("unknown entity &%s;", ref)
}

func (s *Scanner) scanPI() (token.Token, error) {
	s.readByte() // '?'
	name, err := s.scanName()
	if err != nil {
		return token.Token{}, err
	}
	var sb strings.Builder
	var tail [2]byte
	for {
		b, err := s.readByte()
		if err != nil {
			return token.Token{}, s.errorf("unexpected EOF in processing instruction")
		}
		tail[0], tail[1] = tail[1], b
		sb.WriteByte(b)
		if tail == [2]byte{'?', '>'} {
			data := strings.TrimLeft(sb.String()[:sb.Len()-2], " \t\r\n")
			if strings.EqualFold(name, "xml") {
				// XML declaration: swallow it, produce the following token.
				return s.scan()
			}
			return token.PITok(name, data), nil
		}
	}
}

// scanBang handles comments, CDATA at top of content, and DOCTYPE.
func (s *Scanner) scanBang() (token.Token, error) {
	s.readByte() // '!'
	b, err := s.r.Peek(2)
	if err != nil {
		return token.Token{}, s.errorf("unexpected EOF after '<!'")
	}
	switch {
	case string(b) == "--":
		s.readByte()
		s.readByte()
		return s.scanComment()
	case b[0] == '[':
		// CDATA outside scanText means element content beginning with CDATA.
		var sb strings.Builder
		// Back up conceptually: we already consumed "<!", so check "[CDATA[".
		head, err := s.r.Peek(7)
		if err != nil || string(head) != "[CDATA[" {
			return token.Token{}, s.errorf("malformed CDATA section")
		}
		for i := 0; i < 7; i++ {
			s.readByte()
		}
		var tail [3]byte
		for {
			c, err := s.readByte()
			if err != nil {
				return token.Token{}, s.errorf("unexpected EOF in CDATA section")
			}
			tail[0], tail[1], tail[2] = tail[1], tail[2], c
			sb.WriteByte(c)
			if tail == [3]byte{']', ']', '>'} {
				str := sb.String()
				return token.TextTok(str[:len(str)-3]), nil
			}
		}
	case b[0] == 'D' || b[0] == 'd':
		if err := s.skipDoctype(); err != nil {
			return token.Token{}, err
		}
		return s.scan()
	default:
		return token.Token{}, s.errorf("unsupported '<!' construct")
	}
}

func (s *Scanner) scanComment() (token.Token, error) {
	var sb strings.Builder
	var tail [3]byte
	for {
		b, err := s.readByte()
		if err != nil {
			return token.Token{}, s.errorf("unexpected EOF in comment")
		}
		tail[0], tail[1], tail[2] = tail[1], tail[2], b
		sb.WriteByte(b)
		if tail == [3]byte{'-', '-', '>'} {
			text := sb.String()
			text = text[:len(text)-3]
			if strings.Contains(text, "--") {
				return token.Token{}, s.errorf("'--' inside comment")
			}
			return token.CommentTok(text), nil
		}
	}
}

// skipDoctype consumes a DOCTYPE declaration, tracking bracket nesting for an
// internal subset. Entity declarations in the subset are not interpreted.
func (s *Scanner) skipDoctype() error {
	depth := 0
	for {
		b, err := s.readByte()
		if err != nil {
			return s.errorf("unexpected EOF in DOCTYPE")
		}
		switch b {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				return nil
			}
		}
	}
}
