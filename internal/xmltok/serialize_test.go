package xmltok

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/token"
)

func TestSerializeBasic(t *testing.T) {
	cases := []struct{ src, want string }{
		{`<a/>`, `<a/>`},
		{`<a></a>`, `<a/>`},
		{`<a x="1"/>`, `<a x="1"/>`},
		{`<a>text</a>`, `<a>text</a>`},
		{`<a><b/>mid<c/></a>`, `<a><b/>mid<c/></a>`},
		{`<a>&lt;&amp;&gt;</a>`, `<a>&lt;&amp;&gt;</a>`},
		{`<a k="&quot;x&quot;"/>`, `<a k="&quot;x&quot;"/>`},
		{`<a><!--c--><?p d?></a>`, `<a><!--c--><?p d?></a>`},
	}
	for _, c := range cases {
		toks, err := ParseString(c.src, ParseOptions{})
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		got, err := ToString(toks)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("serialize %q = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestSerializeErrors(t *testing.T) {
	bad := [][]token.Token{
		{token.EndElem()},
		{token.Attr("k", "v")}, // attr outside element start
		{token.Elem("a"), token.TextTok("x"), token.Attr("k", "v")}, // attr after content
		{token.EndAttr()},
		{{Kind: token.Invalid}},
	}
	for i, seq := range bad {
		if _, err := ToString(seq); err == nil {
			t.Errorf("case %d: expected serialize error", i)
		}
	}
	// Unclosed element is caught at Flush.
	s := NewSerializer(&strings.Builder{})
	if err := s.Write(token.Elem("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err == nil {
		t.Error("expected flush error for unclosed element")
	}
}

func TestSerializerStickyError(t *testing.T) {
	s := NewSerializer(&strings.Builder{})
	if err := s.Write(token.EndElem()); err == nil {
		t.Fatal("expected error")
	}
	if err := s.Write(token.Elem("a")); err == nil {
		t.Error("error should be sticky")
	}
	if err := s.Flush(); err == nil {
		t.Error("flush should report sticky error")
	}
}

func TestDocumentBracketsIgnored(t *testing.T) {
	seq := []token.Token{
		{Kind: token.BeginDocument},
		token.Elem("a"), token.EndElem(),
		{Kind: token.EndDocument},
	}
	got, err := ToString(seq)
	if err != nil {
		t.Fatal(err)
	}
	if got != `<a/>` {
		t.Errorf("got %q", got)
	}
}

func TestEscapeHelpers(t *testing.T) {
	if got := EscapeText(`a<b>&c`); got != `a&lt;b&gt;&amp;c` {
		t.Errorf("EscapeText: %q", got)
	}
	if got := EscapeAttr(`"a"&<`); got != `&quot;a&quot;&amp;&lt;` {
		t.Errorf("EscapeAttr: %q", got)
	}
}

// randomFragment builds a random well-formed token fragment.
func randomFragment(r *rand.Rand, maxNodes int) []token.Token {
	var out []token.Token
	var build func(depth int)
	names := []string{"a", "b", "item", "order", "x1"}
	nodes := 0
	build = func(depth int) {
		if nodes >= maxNodes {
			return
		}
		nodes++
		switch r.Intn(4) {
		case 0, 1: // element
			out = append(out, token.Elem(names[r.Intn(len(names))]))
			for a := 0; a < r.Intn(3); a++ {
				out = append(out,
					token.Attr(names[r.Intn(len(names))]+"_"+string(rune('a'+a)), "v"),
					token.EndAttr())
			}
			for c := 0; c < r.Intn(4) && depth < 6; c++ {
				build(depth + 1)
			}
			out = append(out, token.EndElem())
		case 2:
			out = append(out, token.TextTok("text-"+names[r.Intn(len(names))]))
		case 3:
			out = append(out, token.CommentTok("c"))
		}
	}
	for nodes < maxNodes {
		build(0)
	}
	return out
}

func TestPropertyRoundTrip(t *testing.T) {
	// Serializing and re-parsing any well-formed fragment must yield the
	// identical token sequence (text tokens here never abut, and no token
	// values need re-escaping beyond what serialize does).
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		frag := randomFragment(r, 30)
		if err := token.ValidateFragment(frag); err != nil {
			t.Fatalf("trial %d: generator produced invalid fragment: %v", trial, err)
		}
		xml, err := ToString(frag)
		if err != nil {
			t.Fatalf("trial %d: serialize: %v", trial, err)
		}
		back, err := ParseFragmentString(xml, ParseOptions{})
		if err != nil {
			t.Fatalf("trial %d: reparse %q: %v", trial, xml, err)
		}
		if !token.Equal(mergeAdjacentText(back), mergeAdjacentText(frag)) {
			t.Fatalf("trial %d: round trip mismatch\nxml: %s\n got: %v\nwant: %v",
				trial, xml, back, frag)
		}
	}
}

// mergeAdjacentText normalizes fragments where two text tokens are adjacent
// (the parser cannot distinguish them from one).
func mergeAdjacentText(seq []token.Token) []token.Token {
	var out []token.Token
	for _, t := range seq {
		if t.Kind == token.Text && len(out) > 0 && out[len(out)-1].Kind == token.Text {
			out[len(out)-1].Value += t.Value
			continue
		}
		out = append(out, t)
	}
	return out
}

func BenchmarkSerialize(b *testing.B) {
	frag := randomFragment(rand.New(rand.NewSource(1)), 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ToString(frag); err != nil {
			b.Fatal(err)
		}
	}
}
