// Package token defines the flat token representation of the XQuery Data
// Model used throughout the store.
//
// A Token is a materialized, enriched SAX event in the style of the BEA/XQRL
// streaming processor: elements produce begin/end token pairs, attributes are
// separated from their owner element and produce their own begin/end pairs,
// and text, comments and processing instructions are single tokens. The token
// is the most granular unit of XML data in the system; any contiguous token
// subsequence can act as a coarser unit (a Range, in the store's terms).
//
// Node identifiers are deliberately NOT part of a Token. The store assigns an
// identifier to every node-starting token at insert time and regenerates the
// identifiers on read by replaying an ID factory over the token sequence (see
// NodeCount and the idscheme package). Keeping identifiers out of the stored
// representation is what gives the store its low storage overhead.
package token

import "fmt"

// Kind identifies the kind of a token.
type Kind uint8

// Token kinds. BeginDocument/EndDocument bracket a document node;
// BeginElement/EndElement bracket an element and its content;
// BeginAttribute/EndAttribute bracket one attribute of the most recently
// begun element (attribute tokens appear immediately after their element's
// begin token, before any content). Text, Comment and PI are leaf tokens that
// are complete nodes by themselves.
const (
	Invalid Kind = iota
	BeginDocument
	EndDocument
	BeginElement
	EndElement
	BeginAttribute
	EndAttribute
	Text
	Comment
	PI

	numKinds
)

var kindNames = [...]string{
	Invalid:        "INVALID",
	BeginDocument:  "BEGIN_DOCUMENT",
	EndDocument:    "END_DOCUMENT",
	BeginElement:   "BEGIN_ELEMENT",
	EndElement:     "END_ELEMENT",
	BeginAttribute: "BEGIN_ATTRIBUTE",
	EndAttribute:   "END_ATTRIBUTE",
	Text:           "TEXT_TOKEN",
	Comment:        "COMMENT_TOKEN",
	PI:             "PI_TOKEN",
}

// String returns the conventional upper-case name of the kind, matching the
// notation used in the paper's Figure 1 (e.g. "BEGIN_ELEMENT", "TEXT_TOKEN").
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined token kinds.
func (k Kind) Valid() bool { return k > Invalid && k < numKinds }

// StartsNode reports whether tokens of this kind start a node (and thus
// receive an identifier). Kind-level predicates let scans classify tokens
// from their first encoded byte without decoding names and values.
func (k Kind) StartsNode() bool {
	switch k {
	case BeginDocument, BeginElement, BeginAttribute, Text, Comment, PI:
		return true
	}
	return false
}

// IsBegin reports whether the kind opens a nested region.
func (k Kind) IsBegin() bool {
	switch k {
	case BeginDocument, BeginElement, BeginAttribute:
		return true
	}
	return false
}

// IsEnd reports whether the kind closes a nested region.
func (k Kind) IsEnd() bool {
	switch k {
	case EndDocument, EndElement, EndAttribute:
		return true
	}
	return false
}

// Type is a PSVI (post-schema-validation infoset) type annotation attached to
// a token after schema validation. TypeUntyped means no schema validation has
// taken place. The schema package maps Type values to named schema types.
type Type uint32

// TypeUntyped is the annotation of tokens that have not been validated.
const TypeUntyped Type = 0

// Token is one enriched SAX event.
//
// Field usage by kind:
//
//	BeginElement    Name = element QName
//	BeginAttribute  Name = attribute QName, Value = attribute value
//	Text            Value = character data
//	Comment         Value = comment text
//	PI              Name = target, Value = data
//
// All other kinds carry no name or value. Type holds the PSVI annotation on
// node-starting tokens and is TypeUntyped otherwise.
type Token struct {
	Kind  Kind
	Name  string
	Value string
	Type  Type
}

// StartsNode reports whether this token is the first (or only) token of a
// node in the XQuery Data Model and therefore receives a node identifier
// from the store's ID factory.
func (t Token) StartsNode() bool { return t.Kind.StartsNode() }

// IsBegin reports whether the token opens a nested region that is closed by a
// matching end token.
func (t Token) IsBegin() bool { return t.Kind.IsBegin() }

// IsEnd reports whether the token closes a region opened by a begin token.
func (t Token) IsEnd() bool { return t.Kind.IsEnd() }

// MatchingEnd returns the end kind that closes this begin token.
// It panics if the token is not a begin token.
func (t Token) MatchingEnd() Kind {
	switch t.Kind {
	case BeginDocument:
		return EndDocument
	case BeginElement:
		return EndElement
	case BeginAttribute:
		return EndAttribute
	}
	panic("token: MatchingEnd on non-begin token " + t.Kind.String())
}

// String renders the token in the paper's Figure 1 notation, for debugging
// and tests.
func (t Token) String() string {
	switch t.Kind {
	case BeginElement, BeginAttribute:
		if t.Value != "" {
			return fmt.Sprintf("[%s %q=%q]", t.Kind, t.Name, t.Value)
		}
		return fmt.Sprintf("[%s %q]", t.Kind, t.Name)
	case Text, Comment:
		return fmt.Sprintf("[%s %q]", t.Kind, t.Value)
	case PI:
		return fmt.Sprintf("[%s %q %q]", t.Kind, t.Name, t.Value)
	default:
		return fmt.Sprintf("[%s]", t.Kind)
	}
}

// Equal reports whether two tokens are identical, including their PSVI
// annotation.
func (t Token) Equal(o Token) bool { return t == o }

// Convenience constructors. They keep test and workload code terse.

// Elem returns a BeginElement token for the given name.
func Elem(name string) Token { return Token{Kind: BeginElement, Name: name} }

// EndElem returns an EndElement token.
func EndElem() Token { return Token{Kind: EndElement} }

// Attr returns a BeginAttribute token carrying the attribute value.
func Attr(name, value string) Token {
	return Token{Kind: BeginAttribute, Name: name, Value: value}
}

// EndAttr returns an EndAttribute token.
func EndAttr() Token { return Token{Kind: EndAttribute} }

// TextTok returns a Text token.
func TextTok(value string) Token { return Token{Kind: Text, Value: value} }

// CommentTok returns a Comment token.
func CommentTok(value string) Token { return Token{Kind: Comment, Value: value} }

// PITok returns a processing-instruction token.
func PITok(target, data string) Token {
	return Token{Kind: PI, Name: target, Value: data}
}
