package token

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary token encoding.
//
// Tokens are stored as a compact, self-delimiting byte sequence so that a
// Range (a token subsequence) can be serialized into block storage and
// decoded token by token. The layout of one token is
//
//	kind    1 byte
//	type    uvarint  (PSVI annotation; omitted encoding value 0 is common)
//	nameLen uvarint, name bytes   (only for kinds that carry a name)
//	valLen  uvarint, value bytes  (only for kinds that carry a value)
//
// Kinds without name/value (end tokens, document brackets) occupy two bytes.
// Node identifiers are not encoded; they are regenerated on decode by the
// caller.

// Encoding errors.
var (
	ErrShortBuffer = errors.New("token: short buffer")
	ErrBadKind     = errors.New("token: invalid kind byte")
)

func kindHasName(k Kind) bool {
	switch k {
	case BeginElement, BeginAttribute, PI:
		return true
	}
	return false
}

func kindHasValue(k Kind) bool {
	switch k {
	case BeginAttribute, Text, Comment, PI:
		return true
	}
	return false
}

// EncodedSize returns the number of bytes Append will write for t.
func EncodedSize(t Token) int {
	n := 1 + uvarintLen(uint64(t.Type))
	if kindHasName(t.Kind) {
		n += uvarintLen(uint64(len(t.Name))) + len(t.Name)
	}
	if kindHasValue(t.Kind) {
		n += uvarintLen(uint64(len(t.Value))) + len(t.Value)
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Append encodes t and appends the bytes to dst, returning the extended
// slice.
func Append(dst []byte, t Token) []byte {
	dst = append(dst, byte(t.Kind))
	dst = binary.AppendUvarint(dst, uint64(t.Type))
	if kindHasName(t.Kind) {
		dst = binary.AppendUvarint(dst, uint64(len(t.Name)))
		dst = append(dst, t.Name...)
	}
	if kindHasValue(t.Kind) {
		dst = binary.AppendUvarint(dst, uint64(len(t.Value)))
		dst = append(dst, t.Value...)
	}
	return dst
}

// AppendAll encodes every token of seq, appending to dst.
func AppendAll(dst []byte, seq []Token) []byte {
	for _, t := range seq {
		dst = Append(dst, t)
	}
	return dst
}

// EncodeAll returns the binary encoding of seq.
func EncodeAll(seq []Token) []byte {
	n := 0
	for _, t := range seq {
		n += EncodedSize(t)
	}
	return AppendAll(make([]byte, 0, n), seq)
}

// Decode decodes one token from the front of b, returning the token and the
// number of bytes consumed.
func Decode(b []byte) (Token, int, error) {
	if len(b) == 0 {
		return Token{}, 0, ErrShortBuffer
	}
	k := Kind(b[0])
	if !k.Valid() {
		return Token{}, 0, fmt.Errorf("%w: %d", ErrBadKind, b[0])
	}
	pos := 1
	typ, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return Token{}, 0, ErrShortBuffer
	}
	pos += n
	t := Token{Kind: k, Type: Type(typ)}
	if kindHasName(k) {
		s, n, err := decodeString(b[pos:])
		if err != nil {
			return Token{}, 0, err
		}
		t.Name, pos = s, pos+n
	}
	if kindHasValue(k) {
		s, n, err := decodeString(b[pos:])
		if err != nil {
			return Token{}, 0, err
		}
		t.Value, pos = s, pos+n
	}
	return t, pos, nil
}

func decodeString(b []byte) (string, int, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 {
		return "", 0, ErrShortBuffer
	}
	end := n + int(l)
	if end > len(b) || int(l) < 0 {
		return "", 0, ErrShortBuffer
	}
	return string(b[n:end]), end, nil
}

// DecodeAll decodes the entire buffer into a token slice.
func DecodeAll(b []byte) ([]Token, error) {
	var out []Token
	for len(b) > 0 {
		t, n, err := Decode(b)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		b = b[n:]
	}
	return out, nil
}

// Reader decodes tokens one at a time from a byte buffer, tracking the byte
// offset of each token. It is the decoding half of the store's range scans.
type Reader struct {
	buf []byte
	off int
}

// NewReader returns a Reader over the encoded token bytes in buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Offset returns the byte offset of the next token to be decoded.
func (r *Reader) Offset() int { return r.off }

// SetOffset repositions the reader at the given byte offset. The offset must
// be a token boundary previously returned by Offset.
func (r *Reader) SetOffset(off int) { r.off = off }

// More reports whether any tokens remain.
func (r *Reader) More() bool { return r.off < len(r.buf) }

// Next decodes and returns the next token.
func (r *Reader) Next() (Token, error) {
	t, n, err := Decode(r.buf[r.off:])
	if err != nil {
		return Token{}, err
	}
	r.off += n
	return t, nil
}

// Skip decodes past the next token without materializing strings where
// possible, returning its kind.
func (r *Reader) Skip() (Kind, error) {
	b := r.buf[r.off:]
	if len(b) == 0 {
		return Invalid, ErrShortBuffer
	}
	n, err := Size(b)
	if err != nil {
		return Invalid, err
	}
	r.off += n
	return Kind(b[0]), nil
}

// Size returns the encoded length of the token at the front of b without
// decoding it: only the kind byte and the length prefixes are examined, no
// strings are materialized and nothing is allocated. This is what the
// store's replay scans use to step over tokens.
func Size(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, ErrShortBuffer
	}
	k := Kind(b[0])
	if !k.Valid() {
		return 0, fmt.Errorf("%w: %d", ErrBadKind, b[0])
	}
	pos := 1
	n := skipUvarint(b[pos:])
	if n < 0 {
		return 0, ErrShortBuffer
	}
	pos += n
	if kindHasName(k) {
		n, err := skipString(b[pos:])
		if err != nil {
			return 0, err
		}
		pos += n
	}
	if kindHasValue(k) {
		n, err := skipString(b[pos:])
		if err != nil {
			return 0, err
		}
		pos += n
	}
	return pos, nil
}

// View is a zero-allocation decoder: it returns the token's kind and its
// name/value as subslices of b (valid only while b is), plus the encoded
// length. Query scans use it to compare names and attribute values in place
// without materializing strings. Kinds without a name or value return nil
// slices.
func View(b []byte) (k Kind, name, value []byte, size int, err error) {
	if len(b) == 0 {
		return Invalid, nil, nil, 0, ErrShortBuffer
	}
	k = Kind(b[0])
	if !k.Valid() {
		return Invalid, nil, nil, 0, fmt.Errorf("%w: %d", ErrBadKind, b[0])
	}
	pos := 1
	n := skipUvarint(b[pos:])
	if n < 0 {
		return Invalid, nil, nil, 0, ErrShortBuffer
	}
	pos += n
	if kindHasName(k) {
		s, n, err := viewString(b[pos:])
		if err != nil {
			return Invalid, nil, nil, 0, err
		}
		name, pos = s, pos+n
	}
	if kindHasValue(k) {
		s, n, err := viewString(b[pos:])
		if err != nil {
			return Invalid, nil, nil, 0, err
		}
		value, pos = s, pos+n
	}
	return k, name, value, pos, nil
}

func viewString(b []byte) ([]byte, int, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, ErrShortBuffer
	}
	end := n + int(l)
	if end > len(b) || int(l) < 0 {
		return nil, 0, ErrShortBuffer
	}
	return b[n:end], end, nil
}

func skipUvarint(b []byte) int {
	for i := 0; i < len(b); i++ {
		if b[i] < 0x80 {
			return i + 1
		}
	}
	return -1
}

func skipString(b []byte) (int, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, ErrShortBuffer
	}
	end := n + int(l)
	if end > len(b) {
		return 0, ErrShortBuffer
	}
	return end, nil
}
