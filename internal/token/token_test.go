package token

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		BeginElement:   "BEGIN_ELEMENT",
		EndElement:     "END_ELEMENT",
		Text:           "TEXT_TOKEN",
		BeginAttribute: "BEGIN_ATTRIBUTE",
		EndAttribute:   "END_ATTRIBUTE",
		BeginDocument:  "BEGIN_DOCUMENT",
		EndDocument:    "END_DOCUMENT",
		Comment:        "COMMENT_TOKEN",
		PI:             "PI_TOKEN",
		Invalid:        "INVALID",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); got != "Kind(200)" {
		t.Errorf("out-of-range kind: %q", got)
	}
}

func TestKindValid(t *testing.T) {
	for k := BeginDocument; k < numKinds; k++ {
		if !k.Valid() {
			t.Errorf("kind %s should be valid", k)
		}
	}
	if Invalid.Valid() {
		t.Error("Invalid should not be Valid")
	}
	if Kind(99).Valid() {
		t.Error("Kind(99) should not be Valid")
	}
}

func TestStartsNode(t *testing.T) {
	starts := []Token{
		{Kind: BeginDocument}, Elem("a"), Attr("x", "1"), TextTok("t"),
		CommentTok("c"), PITok("p", "d"),
	}
	for _, tok := range starts {
		if !tok.StartsNode() {
			t.Errorf("%s should start a node", tok)
		}
	}
	nonStarts := []Token{{Kind: EndDocument}, EndElem(), EndAttr()}
	for _, tok := range nonStarts {
		if tok.StartsNode() {
			t.Errorf("%s should not start a node", tok)
		}
	}
}

func TestBeginEndMatching(t *testing.T) {
	pairs := map[Kind]Kind{
		BeginDocument:  EndDocument,
		BeginElement:   EndElement,
		BeginAttribute: EndAttribute,
	}
	for b, e := range pairs {
		tok := Token{Kind: b}
		if !tok.IsBegin() {
			t.Errorf("%s should be begin", b)
		}
		if got := tok.MatchingEnd(); got != e {
			t.Errorf("MatchingEnd(%s) = %s, want %s", b, got, e)
		}
		if !(Token{Kind: e}).IsEnd() {
			t.Errorf("%s should be end", e)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MatchingEnd on Text should panic")
		}
	}()
	TextTok("x").MatchingEnd()
}

func TestTokenString(t *testing.T) {
	cases := []struct {
		tok  Token
		want string
	}{
		{Elem("ticket"), `[BEGIN_ELEMENT "ticket"]`},
		{Attr("id", "7"), `[BEGIN_ATTRIBUTE "id"="7"]`},
		{TextTok("15"), `[TEXT_TOKEN "15"]`},
		{EndElem(), `[END_ELEMENT]`},
		{PITok("xml-stylesheet", "href=a"), `[PI_TOKEN "xml-stylesheet" "href=a"]`},
		{CommentTok("note"), `[COMMENT_TOKEN "note"]`},
	}
	for _, c := range cases {
		if got := c.tok.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// figure1Tokens is the exact token sequence from the paper's Figure 1.
func figure1Tokens() []Token {
	return []Token{
		Elem("ticket"),
		Elem("hour"), TextTok("15"), EndElem(),
		Elem("name"), TextTok("Paul"), EndElem(),
		EndElem(),
	}
}

func TestFigure1NodeCount(t *testing.T) {
	// Figure 1 assigns IDs 1..5: ticket, hour, "15", name, "Paul".
	if got := NodeCount(figure1Tokens()); got != 5 {
		t.Errorf("NodeCount = %d, want 5", got)
	}
}

func TestValidateFragment(t *testing.T) {
	valid := [][]Token{
		figure1Tokens(),
		{TextTok("lonely")},
		{Elem("a"), EndElem(), Elem("b"), EndElem()}, // sibling roots
		{Elem("a"), Attr("x", "1"), EndAttr(), TextTok("v"), EndElem()},
		{CommentTok("c"), PITok("t", "d")},
		{Elem("a"), Attr("x", "1"), EndAttr(), Attr("y", "2"), EndAttr(), EndElem()},
	}
	for i, seq := range valid {
		if err := ValidateFragment(seq); err != nil {
			t.Errorf("fragment %d should be valid: %v", i, err)
		}
	}
	invalid := []struct {
		name string
		seq  []Token
	}{
		{"empty", nil},
		{"unbalanced", []Token{Elem("a")}},
		{"stray end", []Token{EndElem()}},
		{"wrong end", []Token{Elem("a"), EndAttr()}},
		{"doc token", []Token{{Kind: BeginDocument}, {Kind: EndDocument}}},
		{"attr at top", []Token{Attr("x", "1"), EndAttr()}},
		{"attr after content", []Token{Elem("a"), TextTok("t"), Attr("x", "1"), EndAttr(), EndElem()}},
		{"text in attr", []Token{Elem("a"), Attr("x", "1"), TextTok("bad"), EndAttr(), EndElem()}},
		{"invalid token", []Token{{Kind: Invalid}}},
	}
	for _, c := range invalid {
		if err := ValidateFragment(c.seq); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSubtreeEnd(t *testing.T) {
	seq := figure1Tokens()
	end, err := SubtreeEnd(seq, 0)
	if err != nil || end != len(seq) {
		t.Fatalf("SubtreeEnd(0) = %d, %v; want %d", end, err, len(seq))
	}
	end, err = SubtreeEnd(seq, 1) // <hour>
	if err != nil || end != 4 {
		t.Fatalf("SubtreeEnd(1) = %d, %v; want 4", end, err)
	}
	end, err = SubtreeEnd(seq, 2) // text "15"
	if err != nil || end != 3 {
		t.Fatalf("SubtreeEnd(2) = %d, %v; want 3", end, err)
	}
	if _, err := SubtreeEnd(seq, 3); err == nil {
		t.Error("SubtreeEnd on END_ELEMENT should fail")
	}
	if _, err := SubtreeEnd(seq, -1); err == nil {
		t.Error("SubtreeEnd(-1) should fail")
	}
	if _, err := SubtreeEnd(seq, 99); err == nil {
		t.Error("SubtreeEnd(99) should fail")
	}
	if _, err := SubtreeEnd([]Token{Elem("a")}, 0); err == nil {
		t.Error("unbalanced subtree should fail")
	}
}

func TestTopLevelNodes(t *testing.T) {
	seq := []Token{
		Elem("a"), TextTok("1"), EndElem(),
		CommentTok("c"),
		Elem("b"), EndElem(),
	}
	starts, err := TopLevelNodes(seq)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 4}
	if len(starts) != len(want) {
		t.Fatalf("starts = %v, want %v", starts, want)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("starts = %v, want %v", starts, want)
		}
	}
	if _, err := TopLevelNodes([]Token{EndElem()}); err == nil {
		t.Error("expected error for stray end at top level")
	}
}

func TestEqualClone(t *testing.T) {
	a := figure1Tokens()
	b := Clone(a)
	if !Equal(a, b) {
		t.Error("clone should be equal")
	}
	b[0].Name = "other"
	if Equal(a, b) {
		t.Error("modified clone should differ")
	}
	if Equal(a, a[:3]) {
		t.Error("different lengths should differ")
	}
}

func TestTokenEqual(t *testing.T) {
	if !Elem("a").Equal(Elem("a")) {
		t.Error("identical tokens should be equal")
	}
	if Elem("a").Equal(Elem("b")) {
		t.Error("different names should differ")
	}
	x := Elem("a")
	x.Type = 7
	if Elem("a").Equal(x) {
		t.Error("different PSVI types should differ")
	}
}

func TestConstructors(t *testing.T) {
	if tok := Attr("k", "v"); tok.Kind != BeginAttribute || tok.Name != "k" || tok.Value != "v" {
		t.Errorf("Attr: %+v", tok)
	}
	if tok := PITok("t", "d"); tok.Kind != PI || tok.Name != "t" || tok.Value != "d" {
		t.Errorf("PITok: %+v", tok)
	}
	if tok := CommentTok("c"); tok.Kind != Comment || tok.Value != "c" {
		t.Errorf("CommentTok: %+v", tok)
	}
	if tok := EndAttr(); tok.Kind != EndAttribute {
		t.Errorf("EndAttr: %+v", tok)
	}
}

func TestNodeCountLargeNesting(t *testing.T) {
	var seq []Token
	const depth = 1000
	for i := 0; i < depth; i++ {
		seq = append(seq, Elem("d"))
	}
	seq = append(seq, TextTok("leaf"))
	for i := 0; i < depth; i++ {
		seq = append(seq, EndElem())
	}
	if err := ValidateFragment(seq); err != nil {
		t.Fatal(err)
	}
	if got := NodeCount(seq); got != depth+1 {
		t.Errorf("NodeCount = %d, want %d", got, depth+1)
	}
	end, err := SubtreeEnd(seq, 0)
	if err != nil || end != len(seq) {
		t.Errorf("SubtreeEnd = %d, %v", end, err)
	}
}

func TestStringContainsNoControl(t *testing.T) {
	tok := TextTok("line1\nline2")
	s := tok.String()
	if !strings.Contains(s, `\n`) {
		t.Errorf("String should quote newlines: %q", s)
	}
}
