package token

import (
	"errors"
	"fmt"
)

// Sequence utilities: well-formedness checks, node counting, subtree
// boundaries. These operate on materialized token slices; the store performs
// the same logic incrementally over encoded ranges.

// Well-formedness errors.
var (
	ErrUnbalanced   = errors.New("token: unbalanced begin/end tokens")
	ErrMisplacedEnd = errors.New("token: end token without matching begin")
	ErrBadAttribute = errors.New("token: attribute token outside element start")
	ErrEmptySeq     = errors.New("token: empty sequence")
)

// NodeCount returns the number of nodes (node-starting tokens) in seq. This
// is exactly the number of identifiers the store's ID factory allocates for
// the sequence.
func NodeCount(seq []Token) int {
	n := 0
	for _, t := range seq {
		if t.StartsNode() {
			n++
		}
	}
	return n
}

// ValidateFragment checks that seq is a well-formed fragment: a sequence of
// one or more complete nodes with balanced begin/end tokens, attributes only
// directly after an element begin (before content), and no document tokens.
func ValidateFragment(seq []Token) error {
	if len(seq) == 0 {
		return ErrEmptySeq
	}
	type frame struct {
		end     Kind
		content bool // true once non-attribute content has been seen
	}
	var stack []frame
	for i, t := range seq {
		switch t.Kind {
		case BeginDocument, EndDocument:
			return fmt.Errorf("token %d: document token inside fragment", i)
		case BeginElement:
			if len(stack) > 0 {
				stack[len(stack)-1].content = true
			}
			stack = append(stack, frame{end: EndElement})
		case BeginAttribute:
			if len(stack) == 0 || stack[len(stack)-1].end != EndElement || stack[len(stack)-1].content {
				return fmt.Errorf("token %d: %w", i, ErrBadAttribute)
			}
			stack = append(stack, frame{end: EndAttribute})
		case EndElement, EndAttribute:
			if len(stack) == 0 || stack[len(stack)-1].end != t.Kind {
				return fmt.Errorf("token %d: %w", i, ErrMisplacedEnd)
			}
			stack = stack[:len(stack)-1]
		case Text, Comment, PI:
			if len(stack) > 0 {
				top := &stack[len(stack)-1]
				if top.end == EndAttribute {
					return fmt.Errorf("token %d: content inside attribute", i)
				}
				top.content = true
			}
		case Invalid:
			return fmt.Errorf("token %d: invalid token", i)
		}
	}
	if len(stack) != 0 {
		return ErrUnbalanced
	}
	return nil
}

// SubtreeEnd returns the index just past the last token of the node starting
// at index i. For leaf tokens (Text, Comment, PI) that is i+1; for begin
// tokens it is the index just past the matching end token.
func SubtreeEnd(seq []Token, i int) (int, error) {
	if i < 0 || i >= len(seq) {
		return 0, fmt.Errorf("token: index %d out of range", i)
	}
	t := seq[i]
	if !t.StartsNode() {
		return 0, fmt.Errorf("token: token %d (%s) does not start a node", i, t.Kind)
	}
	if !t.IsBegin() {
		return i + 1, nil
	}
	depth := 0
	for j := i; j < len(seq); j++ {
		if seq[j].IsBegin() {
			depth++
		} else if seq[j].IsEnd() {
			depth--
			if depth == 0 {
				return j + 1, nil
			}
		}
	}
	return 0, ErrUnbalanced
}

// TopLevelNodes returns the start indices of the top-level nodes of a
// well-formed fragment.
func TopLevelNodes(seq []Token) ([]int, error) {
	var starts []int
	i := 0
	for i < len(seq) {
		if !seq[i].StartsNode() {
			return nil, fmt.Errorf("token: token %d (%s) at top level does not start a node", i, seq[i].Kind)
		}
		starts = append(starts, i)
		end, err := SubtreeEnd(seq, i)
		if err != nil {
			return nil, err
		}
		i = end
	}
	return starts, nil
}

// Equal reports whether two token sequences are element-wise identical.
func Equal(a, b []Token) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of seq.
func Clone(seq []Token) []Token {
	out := make([]Token, len(seq))
	copy(out, seq)
	return out
}
