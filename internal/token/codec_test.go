package token

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTripSingle(t *testing.T) {
	cases := []Token{
		Elem("ticket"),
		EndElem(),
		Attr("id", "12345"),
		EndAttr(),
		TextTok("hello world"),
		CommentTok("a comment"),
		PITok("target", "some data"),
		{Kind: BeginDocument},
		{Kind: EndDocument},
		{Kind: BeginElement, Name: "typed", Type: 42},
		{Kind: Text, Value: "", Type: 7},
		TextTok(""), // empty value
		Elem(""),    // empty name (degenerate but encodable)
	}
	for _, in := range cases {
		b := Append(nil, in)
		if len(b) != EncodedSize(in) {
			t.Errorf("%s: EncodedSize = %d, len = %d", in, EncodedSize(in), len(b))
		}
		out, n, err := Decode(b)
		if err != nil {
			t.Errorf("%s: decode error %v", in, err)
			continue
		}
		if n != len(b) {
			t.Errorf("%s: consumed %d of %d bytes", in, n, len(b))
		}
		if out != in {
			t.Errorf("round trip: got %s, want %s", out, in)
		}
	}
}

func TestRoundTripSequence(t *testing.T) {
	seq := []Token{
		Elem("ticket"),
		Elem("hour"), TextTok("15"), EndElem(),
		Elem("name"), TextTok("Paul"), EndElem(),
		EndElem(),
	}
	b := EncodeAll(seq)
	got, err := DecodeAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, seq) {
		t.Fatalf("got %v, want %v", got, seq)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("empty buffer should error")
	}
	if _, _, err := Decode([]byte{0}); err == nil {
		t.Error("invalid kind should error")
	}
	if _, _, err := Decode([]byte{99, 0}); err == nil {
		t.Error("out-of-range kind should error")
	}
	// Begin element with truncated name length.
	if _, _, err := Decode([]byte{byte(BeginElement), 0}); err == nil {
		t.Error("truncated name should error")
	}
	// Name length longer than buffer.
	if _, _, err := Decode([]byte{byte(BeginElement), 0, 10, 'a'}); err == nil {
		t.Error("short name should error")
	}
	// Truncated uvarint (continuation bit set, no more bytes).
	if _, _, err := Decode([]byte{byte(Text), 0x80}); err == nil {
		t.Error("truncated type varint should error")
	}
	if _, err := DecodeAll([]byte{byte(Text), 0, 0x80}); err == nil {
		t.Error("DecodeAll on corrupt tail should error")
	}
}

func randomToken(r *rand.Rand) Token {
	kinds := []Kind{
		BeginDocument, EndDocument, BeginElement, EndElement,
		BeginAttribute, EndAttribute, Text, Comment, PI,
	}
	k := kinds[r.Intn(len(kinds))]
	tok := Token{Kind: k, Type: Type(r.Intn(1 << 16))}
	rs := func(n int) string {
		b := make([]byte, r.Intn(n))
		r.Read(b)
		return string(b)
	}
	if kindHasName(k) {
		tok.Name = rs(40)
	}
	if kindHasValue(k) {
		tok.Value = rs(200)
	}
	return tok
}

// Generate implements quick.Generator so sequences only contain encodable
// field combinations.
func (Token) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomToken(r))
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seq []Token) bool {
		b := EncodeAll(seq)
		got, err := DecodeAll(b)
		if err != nil {
			return false
		}
		if len(got) == 0 && len(seq) == 0 {
			return true
		}
		return Equal(got, seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickEncodedSizeMatches(t *testing.T) {
	f := func(tok Token) bool {
		return len(Append(nil, tok)) == EncodedSize(tok)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReaderWalk(t *testing.T) {
	seq := []Token{
		Elem("a"), Attr("k", "v"), EndAttr(), TextTok("body"), EndElem(),
	}
	buf := EncodeAll(seq)
	r := NewReader(buf)
	var got []Token
	var offsets []int
	for r.More() {
		offsets = append(offsets, r.Offset())
		tok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tok)
	}
	if !Equal(got, seq) {
		t.Fatalf("walk mismatch: %v", got)
	}
	// Re-read the third token via SetOffset.
	r.SetOffset(offsets[2])
	tok, err := r.Next()
	if err != nil || tok.Kind != EndAttribute {
		t.Fatalf("SetOffset reread: %v %v", tok, err)
	}
}

func TestReaderSkip(t *testing.T) {
	seq := []Token{Elem("abc"), TextTok("hello"), EndElem()}
	buf := EncodeAll(seq)
	r := NewReader(buf)
	for i, want := range []Kind{BeginElement, Text, EndElement} {
		k, err := r.Skip()
		if err != nil {
			t.Fatal(err)
		}
		if k != want {
			t.Fatalf("skip %d: got %s, want %s", i, k, want)
		}
	}
	if r.More() {
		t.Error("reader should be exhausted")
	}
	if _, err := r.Skip(); err == nil {
		t.Error("skip past end should error")
	}
	// Skip must consume exactly the same bytes as Next.
	r1, r2 := NewReader(buf), NewReader(buf)
	for r1.More() {
		if _, err := r1.Skip(); err != nil {
			t.Fatal(err)
		}
		if _, err := r2.Next(); err != nil {
			t.Fatal(err)
		}
		if r1.Offset() != r2.Offset() {
			t.Fatalf("offset divergence: %d vs %d", r1.Offset(), r2.Offset())
		}
	}
}

func TestSkipErrors(t *testing.T) {
	bad := [][]byte{
		{0},                        // invalid kind
		{byte(BeginElement), 0x80}, // truncated type varint
		{byte(BeginElement), 0, 5}, // name shorter than declared
		{byte(Text), 0, 0x80},      // truncated value length
	}
	for i, b := range bad {
		r := NewReader(b)
		if _, err := r.Skip(); err == nil {
			t.Errorf("case %d: expected skip error", i)
		}
	}
}

func TestAppendAllGrowsBuffer(t *testing.T) {
	seq := make([]Token, 100)
	for i := range seq {
		seq[i] = TextTok(string(bytes.Repeat([]byte{'x'}, 100)))
	}
	b := AppendAll(make([]byte, 0, 8), seq)
	got, err := DecodeAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d tokens", len(got))
	}
}

func BenchmarkEncodeToken(b *testing.B) {
	tok := Elem("purchase-order")
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Append(buf[:0], tok)
	}
}

func BenchmarkDecodeToken(b *testing.B) {
	buf := Append(nil, Attr("status", "shipped"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaderSkip(b *testing.B) {
	seq := []Token{
		Elem("order"), Attr("id", "99"), EndAttr(), TextTok("some text content"), EndElem(),
	}
	buf := EncodeAll(seq)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		for r.More() {
			if _, err := r.Skip(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
