// The shared retry loop's contract: attempt budgets hold, non-retryable
// errors end the loop at once, and no combination of policy and failure
// can outlive the caller's context.
package retryx

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func TestSucceedsFirstTry(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{}, nil, func(context.Context) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestAttemptBudget(t *testing.T) {
	calls := 0
	p := Policy{MaxAttempts: 3, Initial: time.Microsecond, Max: time.Microsecond}
	err := Do(context.Background(), p, nil, func(context.Context) error {
		calls++
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err=%v, want errBoom", err)
	}
	if calls != 3 {
		t.Fatalf("calls=%d, want 3", calls)
	}
}

func TestNonRetryableEndsImmediately(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{}, func(error) bool { return false }, func(context.Context) error {
		calls++
		return errBoom
	})
	if !errors.Is(err, errBoom) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestEventualSuccess(t *testing.T) {
	calls := 0
	p := Policy{MaxAttempts: 5, Initial: time.Microsecond, Max: time.Microsecond}
	err := Do(context.Background(), p, nil, func(context.Context) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

// TestContextCutsBackoffSleep: a context that expires mid-backoff ends the
// loop immediately, and the returned error carries both the cutoff and the
// last cause.
func TestContextCutsBackoffSleep(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	p := Policy{MaxAttempts: 100, Initial: 10 * time.Second, Max: 10 * time.Second}
	start := time.Now()
	err := Do(ctx, p, nil, func(context.Context) error { return errBoom })
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("context did not cut the sleep: took %v", took)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want DeadlineExceeded in chain", err)
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("err=%v, want the underlying cause in chain", err)
	}
}

// TestExpiredContextNeverCallsOp: a context already done yields zero
// attempts — the op is never run against a caller that has given up.
func TestExpiredContextNeverCallsOp(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Do(ctx, Policy{}, nil, func(context.Context) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

// TestUnlimitedAttemptsRequireDeadline: the one shape this package must
// forbid — retry forever with nothing to stop it — is a typed refusal.
func TestUnlimitedAttemptsRequireDeadline(t *testing.T) {
	err := Do(context.Background(), Policy{MaxAttempts: -1}, nil, func(context.Context) error { return errBoom })
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err=%v, want ErrUnbounded", err)
	}
	// With a deadline the same policy is legal and the deadline bounds it.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	err = Do(ctx, Policy{MaxAttempts: -1, Initial: time.Millisecond, Max: time.Millisecond},
		nil, func(context.Context) error { return errBoom })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want DeadlineExceeded", err)
	}
}

type tempErr struct{ temp bool }

func (e tempErr) Error() string   { return "temp" }
func (e tempErr) Temporary() bool { return e.temp }

func TestTemporaryClassifier(t *testing.T) {
	if !Temporary(tempErr{true}) {
		t.Fatal("Temporary()=true error not classified temporary")
	}
	if Temporary(tempErr{false}) {
		t.Fatal("Temporary()=false error classified temporary")
	}
	if Temporary(errBoom) {
		t.Fatal("plain error classified temporary")
	}
	if !Temporary(fmt.Errorf("wrapped: %w", tempErr{true})) {
		t.Fatal("wrapped temporary error lost its classification")
	}
}

func TestConnErrorClassifier(t *testing.T) {
	conns := []error{
		io.EOF,
		io.ErrUnexpectedEOF,
		net.ErrClosed,
		syscall.ECONNRESET,
		syscall.ECONNREFUSED,
		syscall.EPIPE,
		&net.OpError{Op: "read", Err: syscall.ECONNRESET},
		fmt.Errorf("round trip: %w", io.EOF),
	}
	for _, err := range conns {
		if !ConnError(err) {
			t.Errorf("%v not classified as a connection error", err)
		}
	}
	for _, err := range []error{nil, errBoom, context.DeadlineExceeded} {
		if ConnError(err) {
			t.Errorf("%v wrongly classified as a connection error", err)
		}
	}
}

// TestBackoffCapsAtNearlyExpiredDeadline: the backoff sleep must cap at
// the context's remaining deadline, not the policy's. A caller with 30ms
// left and a 5s-backoff policy gets its answer when the deadline fires —
// never 5s later — and the error chain carries both the cutoff and the
// last cause.
func TestBackoffCapsAtNearlyExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	p := Policy{MaxAttempts: 3, Initial: 5 * time.Second, Max: 5 * time.Second}
	start := time.Now()
	err := Do(ctx, p, nil, func(context.Context) error { return errBoom })
	took := time.Since(start)
	if took > time.Second {
		t.Fatalf("backoff outlived the deadline: took %v with 30ms remaining", took)
	}
	if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, errBoom) {
		t.Fatalf("err=%v, want both DeadlineExceeded and the cause", err)
	}
}

// TestNearlyExpiredDeadlineStillRunsFirstAttempt: near-expiry must not
// preempt work that would succeed — as long as the context is alive when
// the loop starts, the op gets its first attempt.
func TestNearlyExpiredDeadlineStillRunsFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	calls := 0
	err := Do(ctx, Policy{Initial: time.Second, Max: time.Second}, nil, func(context.Context) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want success on the single pre-deadline attempt", err, calls)
	}
}

// TestBackoffTotalBoundedByDeadlineAcrossAttempts: many attempts with
// per-attempt backoff comparable to the whole deadline must still finish
// at the deadline — the sleeps do not stack past it.
func TestBackoffTotalBoundedByDeadlineAcrossAttempts(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	p := Policy{MaxAttempts: -1, Initial: 80 * time.Millisecond, Max: 80 * time.Millisecond}
	start := time.Now()
	err := Do(ctx, p, nil, func(context.Context) error { return errBoom })
	took := time.Since(start)
	if took > time.Second {
		t.Fatalf("stacked backoffs outlived the deadline: took %v", took)
	}
	if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, errBoom) {
		t.Fatalf("err=%v, want both DeadlineExceeded and the cause", err)
	}
}
