// Package retryx is the one retry loop the whole system shares: capped,
// jittered exponential backoff, always bounded by the caller's context.
//
// Before this package, three hand-rolled copies of the same loop lived in
// replica.DirTransport (Temporary() fetch errors), the follower's
// fetch-validate path, and txn.RunInTx (deadlock victims) — each with its
// own jitter, its own cap, and its own idea of when a context deadline
// cuts the loop. The resilient network client would have been a fourth.
// One policy, one loop, one guarantee: no retry path in the system can
// outlive the context that asked for the work.
//
// What counts as retryable is the caller's business — the typed-error
// registry (core.Retryable) classifies the taxonomy's sentinels, and the
// helpers below classify what never reaches the registry (Temporary()
// device hiccups, connection resets).
package retryx

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"syscall"
	"time"
)

// Policy shapes one retry loop. The zero value gives the defaults.
type Policy struct {
	// MaxAttempts bounds total attempts, the first included. 0 means the
	// default (5); 1 disables retrying; negative means retry until the
	// context expires — only safe with a context that has a deadline, so
	// Do refuses the combination of unlimited attempts and no deadline.
	MaxAttempts int
	// Initial is the first backoff (default 2ms), multiplied per attempt.
	Initial time.Duration
	// Max caps the backoff (default 250ms).
	Max time.Duration
}

const (
	defaultAttempts = 5
	defaultInitial  = 2 * time.Millisecond
	defaultMax      = 250 * time.Millisecond
)

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = defaultAttempts
	}
	if p.Initial <= 0 {
		p.Initial = defaultInitial
	}
	if p.Max <= 0 {
		p.Max = defaultMax
	}
	if p.Initial > p.Max {
		p.Initial = p.Max
	}
	return p
}

// ErrUnbounded refuses a retry loop that nothing bounds: unlimited
// attempts with a context that has no deadline would be the exact
// unbounded loop this package exists to forbid.
var ErrUnbounded = errors.New("retryx: unlimited attempts require a context deadline")

// Do runs op until it succeeds, fails non-retryably, exhausts the attempt
// budget, or the context ends. retryable decides which errors earn another
// attempt (nil means all of them). Backoff between attempts is jittered in
// [b/2, b) — decorrelating competing retriers so the losers of one
// collision do not collide again in lockstep — doubled per attempt up to
// the cap, and every sleep is interruptible: when the context ends
// mid-wait the loop returns immediately.
//
// The returned error is the last attempt's error; when the context cut the
// loop it is joined with the context's error so callers can errors.Is
// against either the cause or the cutoff.
func Do(ctx context.Context, p Policy, retryable func(error) bool, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	if p.MaxAttempts < 0 {
		if _, ok := ctx.Deadline(); !ok {
			return ErrUnbounded
		}
	}
	backoff := p.Initial
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		if retryable != nil && !retryable(err) {
			return err
		}
		if p.MaxAttempts > 0 && attempt >= p.MaxAttempts {
			return err
		}
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		select {
		case <-ctx.Done():
			return errors.Join(ctx.Err(), err)
		case <-time.After(d):
		}
		if backoff < p.Max {
			backoff *= 2
			if backoff > p.Max {
				backoff = p.Max
			}
		}
	}
}

// Temporary reports whether err speaks the Temporary() idiom and answers
// true — the shape the fault injector and real devices give transient I/O
// trouble. Deliberately narrow: an error that does not implement the
// interface is not temporary.
func Temporary(err error) bool {
	var te interface{ Temporary() bool }
	return errors.As(err, &te) && te.Temporary()
}

// ConnError reports whether err looks like the connection itself failing —
// a reset, a closed socket, an EOF mid-conversation, a refused or timed-out
// connect — as opposed to a typed refusal the far side sent on a healthy
// connection. These never reach the error-code registry (they are the
// absence of a response, not a response), so the resilient client
// classifies them here.
func ConnError(err error) bool {
	if err == nil {
		return false
	}
	// A context expiry is the caller giving up, never the connection — even
	// though context.DeadlineExceeded happens to satisfy net.Error.
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, syscall.ECONNABORTED) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}
