package schema

import (
	"fmt"
	"strings"

	"repro/internal/token"
)

// ValidationError locates a violation by element path.
type ValidationError struct {
	Path string
	Msg  string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("schema: %s: %s", e.Path, e.Msg)
}

// Validate checks a token fragment against the schema and returns a copy
// whose node-starting tokens carry PSVI type annotations. The original slice
// is not modified. Top-level elements must match global declarations.
func (s *Schema) Validate(frag []token.Token) ([]token.Token, error) {
	if err := token.ValidateFragment(frag); err != nil {
		return nil, err
	}
	out := make([]token.Token, len(frag))
	copy(out, frag)
	i := 0
	for i < len(out) {
		t := out[i]
		switch t.Kind {
		case token.BeginElement:
			decl, ok := s.Globals[t.Name]
			if !ok {
				return nil, &ValidationError{Path: "/" + t.Name, Msg: "no global declaration"}
			}
			n, err := s.validateElement(out, i, decl.Type, "/"+t.Name)
			if err != nil {
				return nil, err
			}
			i = n
		case token.Comment, token.PI:
			i++
		case token.Text:
			if strings.TrimSpace(t.Value) != "" {
				return nil, &ValidationError{Path: "/", Msg: "character data at top level"}
			}
			i++
		default:
			return nil, &ValidationError{Path: "/", Msg: fmt.Sprintf("unexpected %s at top level", t.Kind)}
		}
	}
	return out, nil
}

// validateElement annotates the element beginning at index i with typ and
// validates its attributes and content. Returns the index just past the
// element's end token.
func (s *Schema) validateElement(out []token.Token, i int, typ token.Type, path string) (int, error) {
	out[i].Type = typ
	i++

	ct, isComplex := s.complexFor(typ)

	// Attribute block.
	seenAttrs := map[string]bool{}
	for i < len(out) && out[i].Kind == token.BeginAttribute {
		a := out[i]
		var decl *AttributeDecl
		if isComplex {
			for k := range ct.Attrs {
				if ct.Attrs[k].Name == a.Name {
					decl = &ct.Attrs[k]
					break
				}
			}
			if decl == nil {
				return 0, &ValidationError{Path: path, Msg: fmt.Sprintf("undeclared attribute %q", a.Name)}
			}
			if err := checkSimple(decl.Type, a.Value); err != nil {
				return 0, &ValidationError{Path: path + "/@" + a.Name, Msg: err.Error()}
			}
			out[i].Type = decl.Type
		}
		seenAttrs[a.Name] = true
		i++ // begin attribute
		i++ // end attribute
	}
	if isComplex {
		for _, ad := range ct.Attrs {
			if ad.Required && !seenAttrs[ad.Name] {
				return 0, &ValidationError{Path: path, Msg: fmt.Sprintf("missing required attribute %q", ad.Name)}
			}
		}
	}

	if !isComplex {
		// Simple (or anyType/untyped) content: text only for true simple
		// types; anything for anyType.
		var text strings.Builder
		for i < len(out) && out[i].Kind != token.EndElement {
			switch out[i].Kind {
			case token.Text:
				text.WriteString(out[i].Value)
				if IsSimple(typ) {
					out[i].Type = typ
				}
				i++
			case token.Comment, token.PI:
				i++
			case token.BeginElement:
				if IsSimple(typ) {
					return 0, &ValidationError{Path: path, Msg: "element content in simple-typed element"}
				}
				// anyType: recurse untyped.
				n, err := s.validateElement(out, i, TypeAnyType, path+"/"+out[i].Name)
				if err != nil {
					return 0, err
				}
				i = n
			default:
				return 0, &ValidationError{Path: path, Msg: fmt.Sprintf("unexpected %s", out[i].Kind)}
			}
		}
		if IsSimple(typ) {
			if err := checkSimple(typ, text.String()); err != nil {
				return 0, &ValidationError{Path: path, Msg: err.Error()}
			}
		}
		return i + 1, nil // past EndElement
	}

	// Complex content: sequence with occurrence bounds.
	seqIdx := 0
	count := 0
	for i < len(out) && out[i].Kind != token.EndElement {
		switch out[i].Kind {
		case token.Text:
			if !ct.Mixed && strings.TrimSpace(out[i].Value) != "" {
				return 0, &ValidationError{Path: path, Msg: "character data in element-only content"}
			}
			i++
		case token.Comment, token.PI:
			i++
		case token.BeginElement:
			name := out[i].Name
			// Advance through the sequence to find the declaration.
			for {
				if seqIdx >= len(ct.Sequence) {
					return 0, &ValidationError{Path: path, Msg: fmt.Sprintf("unexpected element <%s>", name)}
				}
				d := ct.Sequence[seqIdx]
				if d.Name == name {
					if d.MaxOccurs >= 0 && count >= d.MaxOccurs {
						return 0, &ValidationError{Path: path, Msg: fmt.Sprintf("too many <%s> (max %d)", name, d.MaxOccurs)}
					}
					count++
					n, err := s.validateElement(out, i, d.Type, path+"/"+name)
					if err != nil {
						return 0, err
					}
					i = n
					break
				}
				// Move past d: check its minimum was met.
				if count < d.MinOccurs {
					return 0, &ValidationError{Path: path, Msg: fmt.Sprintf("expected <%s> (min %d, got %d)", d.Name, d.MinOccurs, count)}
				}
				seqIdx++
				count = 0
			}
		default:
			return 0, &ValidationError{Path: path, Msg: fmt.Sprintf("unexpected %s", out[i].Kind)}
		}
	}
	// Remaining declarations must be satisfied.
	for seqIdx < len(ct.Sequence) {
		d := ct.Sequence[seqIdx]
		if count < d.MinOccurs {
			return 0, &ValidationError{Path: path, Msg: fmt.Sprintf("expected <%s> (min %d, got %d)", d.Name, d.MinOccurs, count)}
		}
		seqIdx++
		count = 0
	}
	return i + 1, nil
}
