package schema

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/token"
	"repro/internal/xmltok"
)

const ticketSchema = `<schema>
  <element name="ticket" type="ticketType"/>
  <complexType name="ticketType">
    <element name="hour" type="xs:int"/>
    <element name="name" type="xs:string"/>
    <attribute name="id" type="xs:int" required="true"/>
  </complexType>
</schema>`

func TestParseSchema(t *testing.T) {
	s := MustParse(ticketSchema)
	decl, ok := s.Globals["ticket"]
	if !ok {
		t.Fatal("no global ticket declaration")
	}
	ct, ok := s.complexFor(decl.Type)
	if !ok {
		t.Fatal("ticket type is not complex")
	}
	if ct.Name != "ticketType" || len(ct.Sequence) != 2 || len(ct.Attrs) != 1 {
		t.Errorf("complex type: %+v", ct)
	}
	if ct.Sequence[0].Type != TypeInt || ct.Sequence[1].Type != TypeString {
		t.Error("sequence types wrong")
	}
	if !ct.Attrs[0].Required {
		t.Error("id should be required")
	}
}

func TestValidateAnnotates(t *testing.T) {
	s := MustParse(ticketSchema)
	doc := xmltok.MustParse(`<ticket id="7"><hour>15</hour><name>Paul</name></ticket>`)
	annotated, err := s.Validate(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if doc[0].Type != TypeUntyped {
		t.Error("input modified")
	}
	// ticket carries its complex type, hour xs:int, name xs:string.
	if annotated[0].Type < firstComplexType {
		t.Errorf("ticket type = %d", annotated[0].Type)
	}
	if s.TypeName(annotated[0].Type) != "ticketType" {
		t.Errorf("type name = %s", s.TypeName(annotated[0].Type))
	}
	var hourType, nameType, idType token.Type
	for _, tok := range annotated {
		switch {
		case tok.Kind == token.BeginElement && tok.Name == "hour":
			hourType = tok.Type
		case tok.Kind == token.BeginElement && tok.Name == "name":
			nameType = tok.Type
		case tok.Kind == token.BeginAttribute && tok.Name == "id":
			idType = tok.Type
		}
	}
	if hourType != TypeInt || nameType != TypeString || idType != TypeInt {
		t.Errorf("types: hour=%d name=%d id=%d", hourType, nameType, idType)
	}
}

func TestValidationErrors(t *testing.T) {
	s := MustParse(ticketSchema)
	cases := []struct{ name, doc, wantMsg string }{
		{"bad int", `<ticket id="7"><hour>late</hour><name>P</name></ticket>`, "xs:int"},
		{"bad attr int", `<ticket id="x"><hour>1</hour><name>P</name></ticket>`, "xs:int"},
		{"missing required attr", `<ticket><hour>1</hour><name>P</name></ticket>`, "required"},
		{"undeclared attr", `<ticket id="1" extra="x"><hour>1</hour><name>P</name></ticket>`, "undeclared"},
		{"unknown root", `<order/>`, "no global declaration"},
		{"wrong order", `<ticket id="1"><name>P</name><hour>1</hour></ticket>`, "expected"},
		{"missing element", `<ticket id="1"><hour>1</hour></ticket>`, "expected <name>"},
		{"extra element", `<ticket id="1"><hour>1</hour><name>P</name><x/></ticket>`, "unexpected element"},
		{"text in element-only", `<ticket id="1">stray<hour>1</hour><name>P</name></ticket>`, "character data"},
		{"element in simple", `<ticket id="1"><hour><x/></hour><name>P</name></ticket>`, "element content"},
	}
	for _, c := range cases {
		doc := xmltok.MustParse(c.doc)
		_, err := s.Validate(doc)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantMsg) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantMsg)
		}
	}
}

func TestOccurrenceBounds(t *testing.T) {
	s := MustParse(`<schema>
	  <element name="orders" type="ordersType"/>
	  <complexType name="ordersType">
	    <element name="order" type="xs:string" minOccurs="1" maxOccurs="3"/>
	  </complexType>
	</schema>`)
	ok := []string{
		`<orders><order>a</order></orders>`,
		`<orders><order>a</order><order>b</order><order>c</order></orders>`,
	}
	for _, doc := range ok {
		if _, err := s.Validate(xmltok.MustParse(doc)); err != nil {
			t.Errorf("%s: %v", doc, err)
		}
	}
	bad := []string{
		`<orders/>`,
		`<orders><order>a</order><order>b</order><order>c</order><order>d</order></orders>`,
	}
	for _, doc := range bad {
		if _, err := s.Validate(xmltok.MustParse(doc)); err == nil {
			t.Errorf("%s: expected error", doc)
		}
	}
}

func TestUnboundedAndOptional(t *testing.T) {
	s := MustParse(`<schema>
	  <element name="list" type="listType"/>
	  <complexType name="listType">
	    <element name="opt" type="xs:string" minOccurs="0"/>
	    <element name="item" type="xs:decimal" minOccurs="0" maxOccurs="unbounded"/>
	  </complexType>
	</schema>`)
	ok := []string{
		`<list/>`,
		`<list><opt>x</opt></list>`,
		`<list><item>1.5</item><item>2</item><item>3</item><item>4</item></list>`,
		`<list><opt>x</opt><item>1</item></list>`,
	}
	for _, doc := range ok {
		if _, err := s.Validate(xmltok.MustParse(doc)); err != nil {
			t.Errorf("%s: %v", doc, err)
		}
	}
}

func TestNestedComplexTypes(t *testing.T) {
	s := MustParse(`<schema>
	  <element name="po" type="poType"/>
	  <complexType name="poType">
	    <element name="line" type="lineType" minOccurs="0" maxOccurs="unbounded"/>
	  </complexType>
	  <complexType name="lineType">
	    <element name="sku" type="xs:string"/>
	    <element name="qty" type="xs:int"/>
	  </complexType>
	</schema>`)
	doc := xmltok.MustParse(`<po><line><sku>W-1</sku><qty>3</qty></line><line><sku>W-2</sku><qty>1</qty></line></po>`)
	annotated, err := s.Validate(doc)
	if err != nil {
		t.Fatal(err)
	}
	lineType := annotated[1].Type
	if s.TypeName(lineType) != "lineType" {
		t.Errorf("line type = %s", s.TypeName(lineType))
	}
}

func TestMixedContent(t *testing.T) {
	s := MustParse(`<schema>
	  <element name="p" type="pType"/>
	  <complexType name="pType" mixed="true">
	    <element name="b" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
	  </complexType>
	</schema>`)
	if _, err := s.Validate(xmltok.MustParse(`<p>one <b>two</b> three</p>`)); err != nil {
		t.Errorf("mixed content rejected: %v", err)
	}
}

func TestSimpleTypeChecks(t *testing.T) {
	cases := []struct {
		typ token.Type
		ok  []string
		bad []string
	}{
		{TypeInt, []string{"0", "-5", " 42 "}, []string{"", "4.5", "abc"}},
		{TypeDecimal, []string{"1.5", "-0.01", "3"}, []string{"x", ""}},
		{TypeBoolean, []string{"true", "false", "0", "1"}, []string{"yes", "TRUE"}},
		{TypeDate, []string{"2005-06-14"}, []string{"14/06/2005", "2005-13-01"}},
		{TypeString, []string{"", "anything"}, nil},
	}
	for _, c := range cases {
		for _, v := range c.ok {
			if err := checkSimple(c.typ, v); err != nil {
				t.Errorf("%s should accept %q: %v", builtinByType[c.typ], v, err)
			}
		}
		for _, v := range c.bad {
			if err := checkSimple(c.typ, v); err == nil {
				t.Errorf("%s should reject %q", builtinByType[c.typ], v)
			}
		}
	}
}

func TestSchemaParseErrors(t *testing.T) {
	bad := []string{
		`<notschema/>`,
		`<schema/>`, // no globals
		`<schema><element type="xs:int"/></schema>`,                         // element without name
		`<schema><element name="a" type="nosuch"/></schema>`,                // unknown type
		`<schema><attribute name="a"/></schema>`,                            // attribute outside complexType
		`<schema><complexType/></schema>`,                                   // nameless type
		`<schema><element name="a" type="xs:int" minOccurs="-1"/></schema>`, // bad occurs
		`<schema><element name="a" type="xs:int" maxOccurs="x"/></schema>`,  // bad occurs
		`<schema><bogus/></schema>`,                                         // unknown construct
		`<schema>text<element name="a"/></schema>`,                          // stray text
		`<schema><complexType name="t"><attribute name="a" type="t"/></complexType><element name="e" type="t"/></schema>`, // complex-typed attribute
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("expected parse error for %s", src)
		}
	}
	if _, err := ParseString(`<schema><element`); err == nil {
		t.Error("malformed XML should fail")
	}
}

func TestTypeNameFallbacks(t *testing.T) {
	s := New()
	if s.TypeName(TypeInt) != "xs:int" {
		t.Error("builtin name")
	}
	if !strings.Contains(s.TypeName(9999), "9999") {
		t.Error("unknown type should render its number")
	}
	var nilSchema *Schema
	if nilSchema.TypeName(TypeString) != "xs:string" {
		t.Error("nil schema should still name builtins")
	}
}

// PSVI end-to-end: annotations survive a round trip through the store —
// desideratum 7 (validate once, never re-evaluate the schema).
func TestPSVIThroughStore(t *testing.T) {
	s := MustParse(ticketSchema)
	doc := xmltok.MustParse(`<ticket id="9"><hour>8</hour><name>Ann</name></ticket>`)
	annotated, err := s.Validate(doc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Append(annotated); err != nil {
		t.Fatal(err)
	}
	back, err := st.Tokens()
	if err != nil {
		t.Fatal(err)
	}
	if !token.Equal(back, annotated) {
		t.Fatal("PSVI annotations lost in the store")
	}
	for _, tok := range back {
		if tok.Kind == token.BeginElement && tok.Name == "hour" && tok.Type != TypeInt {
			t.Error("hour annotation lost")
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	s := MustParse(ticketSchema)
	doc := xmltok.MustParse(`<ticket id="7"><hour>15</hour><name>Paul</name></ticket>`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Validate(doc); err != nil {
			b.Fatal(err)
		}
	}
}
