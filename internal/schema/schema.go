// Package schema implements a compact XML Schema subset and the PSVI
// (post-schema-validation infoset) support the paper lists as store
// desideratum 7: validating a token stream once and attaching type
// annotations to the tokens, so that schema evaluation is never repeated on
// reads.
//
// The subset covers what the store's experiments and examples need: global
// element declarations, named complex types with sequence content
// (minOccurs/maxOccurs), attribute declarations with required/optional, and
// the common built-in simple types with lexical validation.
package schema

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/token"
)

// Built-in simple types. Their token.Type annotation values are fixed so
// annotated documents remain readable across schema reloads.
const (
	TypeUntyped token.Type = iota
	TypeString
	TypeInt
	TypeDecimal
	TypeBoolean
	TypeDate
	TypeAnyType

	// firstComplexType is the first annotation value assigned to
	// schema-defined complex types.
	firstComplexType token.Type = 100
)

var builtinNames = map[string]token.Type{
	"xs:string":  TypeString,
	"xs:int":     TypeInt,
	"xs:integer": TypeInt,
	"xs:decimal": TypeDecimal,
	"xs:boolean": TypeBoolean,
	"xs:date":    TypeDate,
	"xs:anyType": TypeAnyType,
	"string":     TypeString,
	"int":        TypeInt,
	"integer":    TypeInt,
	"decimal":    TypeDecimal,
	"boolean":    TypeBoolean,
	"date":       TypeDate,
	"anyType":    TypeAnyType,
}

var builtinByType = map[token.Type]string{
	TypeUntyped: "untyped",
	TypeString:  "xs:string",
	TypeInt:     "xs:int",
	TypeDecimal: "xs:decimal",
	TypeBoolean: "xs:boolean",
	TypeDate:    "xs:date",
	TypeAnyType: "xs:anyType",
}

// checkSimple validates a lexical value against a built-in simple type.
func checkSimple(t token.Type, value string) error {
	v := strings.TrimSpace(value)
	switch t {
	case TypeString, TypeAnyType, TypeUntyped:
		return nil
	case TypeInt:
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			return fmt.Errorf("%q is not a valid xs:int", value)
		}
	case TypeDecimal:
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			return fmt.Errorf("%q is not a valid xs:decimal", value)
		}
	case TypeBoolean:
		switch v {
		case "true", "false", "0", "1":
		default:
			return fmt.Errorf("%q is not a valid xs:boolean", value)
		}
	case TypeDate:
		if _, err := time.Parse("2006-01-02", v); err != nil {
			return fmt.Errorf("%q is not a valid xs:date", value)
		}
	}
	return nil
}

// ElementDecl declares an element: either a simple-typed leaf or a reference
// to a complex type, with sequence occurrence bounds.
type ElementDecl struct {
	Name      string
	Type      token.Type // simple type or complex type annotation
	MinOccurs int
	MaxOccurs int // -1 = unbounded
}

// AttributeDecl declares one attribute of a complex type.
type AttributeDecl struct {
	Name     string
	Type     token.Type // simple types only
	Required bool
}

// ComplexType is a named type with sequence content and attributes.
type ComplexType struct {
	Name     string
	Anno     token.Type
	Sequence []ElementDecl
	Attrs    []AttributeDecl
	Mixed    bool // character data allowed between children
}

// Schema is a compiled schema: global element declarations plus named
// complex types.
type Schema struct {
	Globals  map[string]ElementDecl
	complex  map[string]*ComplexType // by name
	byAnno   map[token.Type]*ComplexType
	nextAnno token.Type
}

// New returns an empty schema (useful for building programmatically).
func New() *Schema {
	return &Schema{
		Globals:  make(map[string]ElementDecl),
		complex:  make(map[string]*ComplexType),
		byAnno:   make(map[token.Type]*ComplexType),
		nextAnno: firstComplexType,
	}
}

// AddComplexType registers a complex type and assigns its annotation.
func (s *Schema) AddComplexType(ct *ComplexType) token.Type {
	ct.Anno = s.nextAnno
	s.nextAnno++
	s.complex[ct.Name] = ct
	s.byAnno[ct.Anno] = ct
	return ct.Anno
}

// TypeName renders an annotation for humans ("xs:int", "ticketType",
// "untyped").
func (s *Schema) TypeName(t token.Type) string {
	if n, ok := builtinByType[t]; ok {
		return n
	}
	if s != nil {
		if ct, ok := s.byAnno[t]; ok {
			return ct.Name
		}
	}
	return fmt.Sprintf("type#%d", uint32(t))
}

// resolveType maps a type name in a schema document to an annotation.
func (s *Schema) resolveType(name string) (token.Type, error) {
	if t, ok := builtinNames[name]; ok {
		return t, nil
	}
	if ct, ok := s.complex[name]; ok {
		return ct.Anno, nil
	}
	return TypeUntyped, fmt.Errorf("schema: unknown type %q", name)
}

// complexFor returns the complex type for an annotation, if any.
func (s *Schema) complexFor(t token.Type) (*ComplexType, bool) {
	ct, ok := s.byAnno[t]
	return ct, ok
}

// IsSimple reports whether the annotation names a built-in simple type.
func IsSimple(t token.Type) bool {
	_, ok := builtinByType[t]
	return ok && t != TypeUntyped
}
