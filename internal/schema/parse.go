package schema

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/token"
	"repro/internal/xmltok"
)

// Schema documents are themselves XML, in a compact XSD-like dialect:
//
//	<schema>
//	  <element name="ticket" type="ticketType"/>
//	  <complexType name="ticketType" mixed="false">
//	    <element name="hour" type="xs:int" minOccurs="1" maxOccurs="1"/>
//	    <element name="name" type="xs:string"/>
//	    <attribute name="id" type="xs:int" required="true"/>
//	  </complexType>
//	</schema>
//
// Complex types may reference each other and themselves (recursion is
// resolved after all declarations are read).

// Parse reads a schema document.
func Parse(r io.Reader) (*Schema, error) {
	toks, err := xmltok.Parse(r, xmltok.ParseOptions{
		StripWhitespace: true, DropComments: true, DropPIs: true,
	})
	if err != nil {
		return nil, fmt.Errorf("schema: %w", err)
	}
	return fromTokens(toks)
}

// ParseString reads a schema document from a string.
func ParseString(src string) (*Schema, error) {
	return Parse(strings.NewReader(src))
}

// MustParse parses a trusted schema literal, panicking on error.
func MustParse(src string) *Schema {
	s, err := ParseString(src)
	if err != nil {
		panic(err)
	}
	return s
}

// rawDecl defers type resolution until all complex types are known.
type rawDecl struct {
	name, typ            string
	minOccurs, maxOccurs int
	required             bool
}

func fromTokens(toks []token.Token) (*Schema, error) {
	s := New()
	type rawComplex struct {
		name  string
		mixed bool
		elems []rawDecl
		attrs []rawDecl
	}
	var rawGlobals []rawDecl
	var rawTypes []*rawComplex

	i := 0
	next := func() (token.Token, bool) {
		if i >= len(toks) {
			return token.Token{}, false
		}
		t := toks[i]
		i++
		return t, true
	}
	root, ok := next()
	if !ok || root.Kind != token.BeginElement || root.Name != "schema" {
		return nil, fmt.Errorf("schema: document must start with <schema>")
	}
	// Walk the schema document.
	var curType *rawComplex
	depth := 1
	for depth > 0 {
		t, ok := next()
		if !ok {
			return nil, fmt.Errorf("schema: truncated document")
		}
		switch t.Kind {
		case token.BeginElement:
			depth++
			attrs, err := collectAttrs(toks, &i)
			if err != nil {
				return nil, err
			}
			switch t.Name {
			case "element":
				d, err := elementDecl(attrs)
				if err != nil {
					return nil, err
				}
				if curType != nil {
					curType.elems = append(curType.elems, d)
				} else {
					rawGlobals = append(rawGlobals, d)
				}
			case "attribute":
				if curType == nil {
					return nil, fmt.Errorf("schema: <attribute> outside <complexType>")
				}
				d, err := attributeDecl(attrs)
				if err != nil {
					return nil, err
				}
				curType.attrs = append(curType.attrs, d)
			case "complexType":
				if curType != nil {
					return nil, fmt.Errorf("schema: nested <complexType> not supported")
				}
				name := attrs["name"]
				if name == "" {
					return nil, fmt.Errorf("schema: <complexType> needs a name")
				}
				curType = &rawComplex{name: name, mixed: attrs["mixed"] == "true"}
				rawTypes = append(rawTypes, curType)
			default:
				return nil, fmt.Errorf("schema: unexpected element <%s>", t.Name)
			}
		case token.EndElement:
			depth--
			if depth == 1 && curType != nil {
				// Leaving... only close the complexType when its own end tag
				// arrives; elements inside close at depth 2.
			}
			if depth == 1 {
				curType = nil
			}
		case token.Text:
			return nil, fmt.Errorf("schema: unexpected text %q", t.Value)
		}
	}

	// Register complex types first so references resolve.
	for _, rt := range rawTypes {
		s.AddComplexType(&ComplexType{Name: rt.name, Mixed: rt.mixed})
	}
	for _, rt := range rawTypes {
		ct := s.complex[rt.name]
		for _, d := range rt.elems {
			t, err := s.resolveType(d.typ)
			if err != nil {
				return nil, err
			}
			ct.Sequence = append(ct.Sequence, ElementDecl{
				Name: d.name, Type: t, MinOccurs: d.minOccurs, MaxOccurs: d.maxOccurs,
			})
		}
		for _, d := range rt.attrs {
			t, err := s.resolveType(d.typ)
			if err != nil {
				return nil, err
			}
			if !IsSimple(t) && t != TypeUntyped {
				return nil, fmt.Errorf("schema: attribute %q must have a simple type", d.name)
			}
			ct.Attrs = append(ct.Attrs, AttributeDecl{Name: d.name, Type: t, Required: d.required})
		}
	}
	for _, d := range rawGlobals {
		t, err := s.resolveType(d.typ)
		if err != nil {
			return nil, err
		}
		s.Globals[d.name] = ElementDecl{
			Name: d.name, Type: t, MinOccurs: d.minOccurs, MaxOccurs: d.maxOccurs,
		}
	}
	if len(s.Globals) == 0 {
		return nil, fmt.Errorf("schema: no global element declarations")
	}
	return s, nil
}

// collectAttrs consumes the attribute token pairs following a begin-element.
func collectAttrs(toks []token.Token, i *int) (map[string]string, error) {
	attrs := map[string]string{}
	for *i < len(toks) && toks[*i].Kind == token.BeginAttribute {
		attrs[toks[*i].Name] = toks[*i].Value
		*i++
		if *i >= len(toks) || toks[*i].Kind != token.EndAttribute {
			return nil, fmt.Errorf("schema: malformed attribute tokens")
		}
		*i++
	}
	return attrs, nil
}

func elementDecl(attrs map[string]string) (rawDecl, error) {
	d := rawDecl{name: attrs["name"], typ: attrs["type"], minOccurs: 1, maxOccurs: 1}
	if d.name == "" {
		return d, fmt.Errorf("schema: <element> needs a name")
	}
	if d.typ == "" {
		d.typ = "xs:anyType"
	}
	if v, ok := attrs["minOccurs"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return d, fmt.Errorf("schema: bad minOccurs %q", v)
		}
		d.minOccurs = n
	}
	if v, ok := attrs["maxOccurs"]; ok {
		if v == "unbounded" {
			d.maxOccurs = -1
		} else {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return d, fmt.Errorf("schema: bad maxOccurs %q", v)
			}
			d.maxOccurs = n
		}
	}
	return d, nil
}

func attributeDecl(attrs map[string]string) (rawDecl, error) {
	d := rawDecl{name: attrs["name"], typ: attrs["type"], required: attrs["required"] == "true"}
	if d.name == "" {
		return d, fmt.Errorf("schema: <attribute> needs a name")
	}
	if d.typ == "" {
		d.typ = "xs:string"
	}
	return d, nil
}
