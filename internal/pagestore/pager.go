// Package pagestore is the block/page storage substrate of the XML store.
//
// It provides fixed-size pages (the paper's "blocks") behind a Pager
// interface with in-memory and file-backed implementations, an LRU buffer
// pool with pin/unpin semantics, and an ordered record layer: doubly-chained
// slotted pages holding variable-length records in a maintained order, with
// overflow chains for records larger than a page. The store serializes each
// Range as one record; document order is the record order along the page
// chain — exactly the storage model of Sections 3.3 and 4.4 of the paper.
package pagestore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// PageID identifies a page within a Pager. Zero is never a valid page.
type PageID uint32

// InvalidPage is the nil page id.
const InvalidPage PageID = 0

// Default geometry.
const (
	DefaultPageSize = 8192
	MinPageSize     = 512
)

// Pager errors.
var (
	ErrPageBounds = errors.New("pagestore: page id out of bounds")
	ErrClosed     = errors.New("pagestore: pager is closed")
	ErrFreedPage  = errors.New("pagestore: access to freed page")
	// ErrStoreLocked is returned by OpenFilePager when another process holds
	// the store file's advisory lock: a second writer would destroy the WAL
	// discipline, so opens fail fast instead of corrupting the store.
	ErrStoreLocked = errors.New("pagestore: store file locked by another process")
	// ErrReadOnlyFile is returned by mutating operations on a pager opened
	// with FileOpts.ReadOnly.
	ErrReadOnlyFile = errors.New("pagestore: pager opened read-only")
)

// Pager is raw page I/O: allocation, reads, writes and freeing.
// Implementations must be safe for concurrent use.
type Pager interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// Allocate reserves a new zeroed page and returns its id.
	Allocate() (PageID, error)
	// ReadPage fills buf (len == PageSize) with the page contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf (len == PageSize) as the page contents.
	WritePage(id PageID, buf []byte) error
	// Free returns the page to the allocator for reuse.
	Free(id PageID) error
	// PageCount returns the number of pages ever allocated and not freed.
	PageCount() int
	// Close releases resources.
	Close() error
}

// MemPager is an in-memory Pager. The zero value is not usable; call
// NewMemPager.
type MemPager struct {
	mu       sync.Mutex
	pageSize int
	pages    map[PageID][]byte
	free     []PageID
	next     PageID
	closed   bool
}

// NewMemPager returns an in-memory pager with the given page size
// (DefaultPageSize if size <= 0).
func NewMemPager(size int) *MemPager {
	if size <= 0 {
		size = DefaultPageSize
	}
	if size < MinPageSize {
		size = MinPageSize
	}
	return &MemPager{
		pageSize: size,
		pages:    make(map[PageID][]byte),
		next:     1,
	}
}

// PageSize implements Pager.
func (p *MemPager) PageSize() int { return p.pageSize }

// Allocate implements Pager.
func (p *MemPager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return InvalidPage, ErrClosed
	}
	var id PageID
	if n := len(p.free); n > 0 {
		id = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		id = p.next
		p.next++
	}
	p.pages[id] = make([]byte, p.pageSize)
	return id, nil
}

// check validates id for access: distinguishing never-allocated ids
// (ErrPageBounds) from freed ones (ErrFreedPage) keeps both pager
// implementations reporting the same error for the same misuse.
func (p *MemPager) check(id PageID) error {
	if p.closed {
		return ErrClosed
	}
	if id == InvalidPage || id >= p.next {
		return fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	if _, ok := p.pages[id]; !ok {
		return fmt.Errorf("%w: %d", ErrFreedPage, id)
	}
	return nil
}

// ReadPage implements Pager.
func (p *MemPager) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(id); err != nil {
		return err
	}
	copy(buf, p.pages[id])
	return nil
}

// WritePage implements Pager.
func (p *MemPager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(id); err != nil {
		return err
	}
	copy(p.pages[id], buf)
	return nil
}

// Free implements Pager.
func (p *MemPager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(id); err != nil {
		return err
	}
	delete(p.pages, id)
	p.free = append(p.free, id)
	return nil
}

// PageCount implements Pager.
func (p *MemPager) PageCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pages)
}

// MaxPageID returns the highest page id ever allocated (scrub extent).
func (p *MemPager) MaxPageID() PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next - 1
}

// Close implements Pager.
func (p *MemPager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.pages = nil
	return nil
}

// FilePager stores pages in a single file. Page id N lives at file offset
// N*pageSize (offset 0, page id 0, is a reserved header slot, which keeps
// id arithmetic trivial and id 0 invalid). Freed pages are tracked in memory
// and reused before the file grows; the free list is rebuilt as empty on
// reopen, which wastes at most the previously-freed pages.
//
// Opening takes an advisory flock on the file — exclusive for writable
// pagers, shared for read-only ones — so two OS processes can never both
// hold a writable view of the same store: the second open fails fast with
// ErrStoreLocked instead of silently destroying the WAL discipline.
type FilePager struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	npages   int // allocated pages, excluding the reserved slot
	highest  PageID
	free     []PageID
	freed    map[PageID]bool
	readOnly bool
	closed   bool
}

// FileOpts tunes OpenFilePagerOpts.
type FileOpts struct {
	// ReadOnly opens the file O_RDONLY under a shared advisory lock:
	// several read-only pagers may coexist, but a writable pager excludes
	// them (and vice versa). Mutating operations return ErrReadOnlyFile.
	ReadOnly bool
	// NoLock skips the advisory lock entirely (fault-injection harnesses
	// that reopen the same file in-process). Production opens must not use
	// it.
	NoLock bool
}

// OpenFilePager opens (creating if necessary) a writable page file at path
// under an exclusive advisory lock.
func OpenFilePager(path string, pageSize int) (*FilePager, error) {
	return OpenFilePagerOpts(path, pageSize, FileOpts{})
}

// OpenFilePagerOpts opens a page file with explicit locking/mutability
// options. If another process holds a conflicting advisory lock, it fails
// fast with ErrStoreLocked.
func OpenFilePagerOpts(path string, pageSize int, opts FileOpts) (*FilePager, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < MinPageSize {
		pageSize = MinPageSize
	}
	flags := os.O_RDWR | os.O_CREATE
	if opts.ReadOnly {
		flags = os.O_RDONLY
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	if !opts.NoLock {
		if err := flockFile(f, !opts.ReadOnly); err != nil {
			f.Close()
			return nil, err
		}
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	fp := &FilePager{f: f, pageSize: pageSize, freed: make(map[PageID]bool), readOnly: opts.ReadOnly}
	if st.Size() > 0 {
		n := st.Size() / int64(pageSize)
		if n > 0 {
			fp.highest = PageID(n - 1)
			fp.npages = int(n - 1)
		}
	}
	return fp, nil
}

// PageSize implements Pager.
func (p *FilePager) PageSize() int { return p.pageSize }

// Allocate implements Pager.
func (p *FilePager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return InvalidPage, ErrClosed
	}
	if p.readOnly {
		return InvalidPage, ErrReadOnlyFile
	}
	var id PageID
	if n := len(p.free); n > 0 {
		id = p.free[n-1]
		p.free = p.free[:n-1]
		delete(p.freed, id)
	} else {
		p.highest++
		id = p.highest
	}
	p.npages++
	// Extend the file with a zero page.
	zero := make([]byte, p.pageSize)
	if _, err := p.f.WriteAt(zero, int64(id)*int64(p.pageSize)); err != nil {
		return InvalidPage, err
	}
	return id, nil
}

func (p *FilePager) check(id PageID) error {
	if p.closed {
		return ErrClosed
	}
	if id == InvalidPage || id > p.highest {
		return fmt.Errorf("%w: %d", ErrPageBounds, id)
	}
	if p.freed[id] {
		return fmt.Errorf("%w: %d", ErrFreedPage, id)
	}
	return nil
}

// ReadPage implements Pager.
func (p *FilePager) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.check(id); err != nil {
		return err
	}
	_, err := p.f.ReadAt(buf[:p.pageSize], int64(id)*int64(p.pageSize))
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		// Page allocated but never written past: zero-fill.
		for i := range buf[:p.pageSize] {
			buf[i] = 0
		}
		return nil
	}
	return err
}

// WritePage implements Pager.
func (p *FilePager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.readOnly {
		return ErrReadOnlyFile
	}
	if err := p.check(id); err != nil {
		return err
	}
	_, err := p.f.WriteAt(buf[:p.pageSize], int64(id)*int64(p.pageSize))
	return err
}

// Free implements Pager.
func (p *FilePager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.readOnly {
		return ErrReadOnlyFile
	}
	if err := p.check(id); err != nil {
		return err
	}
	p.free = append(p.free, id)
	p.freed[id] = true
	p.npages--
	return nil
}

// PageCount implements Pager.
func (p *FilePager) PageCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.npages
}

// MaxPageID returns the highest page id ever allocated (scrub extent).
func (p *FilePager) MaxPageID() PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.highest
}

// Sync flushes the underlying file to stable storage. A read-only pager
// has nothing to flush.
func (p *FilePager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.readOnly {
		return nil
	}
	return p.f.Sync()
}

// Close implements Pager.
func (p *FilePager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	return p.f.Close()
}
