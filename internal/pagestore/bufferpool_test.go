package pagestore

import (
	"testing"
)

func newPool(t *testing.T, capacity int) *BufferPool {
	t.Helper()
	return NewBufferPool(NewMemPager(1024), capacity)
}

func TestPoolFetchNewPage(t *testing.T) {
	bp := newPool(t, 8)
	f, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	f.Data[0] = 0xAB
	if err := bp.Unpin(f, true); err != nil {
		t.Fatal(err)
	}
	g, err := bp.Fetch(f.ID)
	if err != nil {
		t.Fatal(err)
	}
	if g.Data[0] != 0xAB {
		t.Error("data lost")
	}
	bp.Unpin(g, false)
	st := bp.Stats()
	if st.Hits != 1 {
		t.Errorf("hits = %d, want 1", st.Hits)
	}
}

func TestPoolEvictionWritesBack(t *testing.T) {
	bp := newPool(t, 4)
	var ids []PageID
	// Create more pages than capacity, writing a signature in each.
	for i := 0; i < 10; i++ {
		f, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Data[0] = byte(i + 1)
		ids = append(ids, f.ID)
		bp.Unpin(f, true)
	}
	// All pages must read back correctly even though most were evicted.
	for i, id := range ids {
		f, err := bp.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data[0] != byte(i+1) {
			t.Errorf("page %d: data = %d, want %d", id, f.Data[0], i+1)
		}
		bp.Unpin(f, false)
	}
	st := bp.Stats()
	if st.Evictions == 0 {
		t.Error("expected evictions")
	}
	if st.Flushes == 0 {
		t.Error("expected flushes of dirty pages")
	}
	if st.Misses == 0 {
		t.Error("expected misses on re-fetch")
	}
}

func TestPoolPinnedPagesNotEvicted(t *testing.T) {
	bp := newPool(t, 4)
	var pinned []*Frame
	for i := 0; i < 4; i++ {
		f, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, f)
	}
	// Pool is full of pinned pages: next allocation must fail.
	if _, err := bp.NewPage(); err == nil {
		t.Fatal("expected ErrPoolFull")
	}
	// Releasing one pin makes room.
	bp.Unpin(pinned[0], false)
	if _, err := bp.NewPage(); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestPoolDoublePin(t *testing.T) {
	bp := newPool(t, 4)
	f, _ := bp.NewPage()
	bp.Unpin(f, true)
	a, _ := bp.Fetch(f.ID)
	b, _ := bp.Fetch(f.ID)
	if a != b {
		t.Fatal("same page should share a frame")
	}
	if bp.PinnedCount() != 1 {
		t.Fatalf("pinned count = %d", bp.PinnedCount())
	}
	bp.Unpin(a, false)
	if bp.PinnedCount() != 1 {
		t.Fatal("still one pin outstanding")
	}
	bp.Unpin(b, false)
	if bp.PinnedCount() != 0 {
		t.Fatal("all pins released")
	}
	if err := bp.Unpin(b, false); err == nil {
		t.Error("unpin below zero should fail")
	}
}

func TestPoolFlushAll(t *testing.T) {
	pager := NewMemPager(1024)
	bp := NewBufferPool(pager, 8)
	f, _ := bp.NewPage()
	f.Data[5] = 0x77
	bp.Unpin(f, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Verify directly via the pager.
	buf := make([]byte, 1024)
	if err := pager.ReadPage(f.ID, buf); err != nil {
		t.Fatal(err)
	}
	if buf[5] != 0x77 {
		t.Error("flush did not reach pager")
	}
}

func TestPoolFreePage(t *testing.T) {
	bp := newPool(t, 8)
	f, _ := bp.NewPage()
	id := f.ID
	if err := bp.FreePage(f); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Fetch(id); err == nil {
		t.Error("fetch of freed page should fail")
	}
	// Freeing a page with extra pins fails.
	g, _ := bp.NewPage()
	bp.Unpin(g, false)
	g1, _ := bp.Fetch(g.ID)
	g2, _ := bp.Fetch(g.ID)
	_ = g2
	if err := bp.FreePage(g1); err == nil {
		t.Error("free with multiple pins should fail")
	}
}

func TestPoolResetStats(t *testing.T) {
	bp := newPool(t, 4)
	f, _ := bp.NewPage()
	bp.Unpin(f, false)
	bp.Fetch(f.ID)
	if bp.Stats().Hits == 0 {
		t.Fatal("expected a hit")
	}
	bp.ResetStats()
	if s := bp.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Error("stats not reset")
	}
}

func TestPoolMinimumCapacity(t *testing.T) {
	bp := NewBufferPool(NewMemPager(1024), 1)
	if bp.capacity < 4 {
		t.Errorf("capacity = %d, want >= 4", bp.capacity)
	}
}

func TestPoolLRUOrder(t *testing.T) {
	bp := newPool(t, 4)
	var ids []PageID
	for i := 0; i < 4; i++ {
		f, _ := bp.NewPage()
		ids = append(ids, f.ID)
		bp.Unpin(f, false)
	}
	// Touch page 0 so it becomes most recently used.
	f, _ := bp.Fetch(ids[0])
	bp.Unpin(f, false)
	// Adding a new page must evict ids[1] (the LRU), not ids[0].
	g, _ := bp.NewPage()
	bp.Unpin(g, false)
	bp.ResetStats()
	h, _ := bp.Fetch(ids[0])
	bp.Unpin(h, false)
	if bp.Stats().Hits != 1 {
		t.Error("recently used page was evicted")
	}
	bp.ResetStats()
	k, _ := bp.Fetch(ids[1])
	bp.Unpin(k, false)
	if bp.Stats().Misses != 1 {
		t.Error("LRU page should have been evicted")
	}
}
