package pagestore

import (
	"errors"
	"path/filepath"
	"testing"
)

// Both pager implementations must report the same typed error for the same
// misuse: ErrFreedPage for any access to a freed-but-once-valid page
// (double free, read-after-free, write-after-free), ErrPageBounds for ids
// that were never allocated at all.
func TestPagerFreedAndBoundsErrors(t *testing.T) {
	impls := []struct {
		name string
		open func(t *testing.T) Pager
	}{
		{"mem", func(t *testing.T) Pager { return NewMemPager(512) }},
		{"file", func(t *testing.T) Pager {
			p, err := OpenFilePager(filepath.Join(t.TempDir(), "p.db"), 512)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
	}
	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) {
			p := impl.open(t)
			defer p.Close()
			a, err := p.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			b, err := p.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, p.PageSize())
			if err := p.Free(a); err != nil {
				t.Fatalf("first free: %v", err)
			}

			if err := p.Free(a); !errors.Is(err, ErrFreedPage) {
				t.Errorf("double free: got %v, want ErrFreedPage", err)
			}
			if err := p.ReadPage(a, buf); !errors.Is(err, ErrFreedPage) {
				t.Errorf("read after free: got %v, want ErrFreedPage", err)
			}
			if err := p.WritePage(a, buf); !errors.Is(err, ErrFreedPage) {
				t.Errorf("write after free: got %v, want ErrFreedPage", err)
			}

			// The untouched page keeps working.
			if err := p.WritePage(b, buf); err != nil {
				t.Errorf("write to live page: %v", err)
			}
			if err := p.ReadPage(b, buf); err != nil {
				t.Errorf("read of live page: %v", err)
			}

			// Never-allocated ids are a bounds error, not a freed error.
			if err := p.ReadPage(InvalidPage, buf); !errors.Is(err, ErrPageBounds) {
				t.Errorf("read of page 0: got %v, want ErrPageBounds", err)
			}
			if err := p.ReadPage(b+1000, buf); !errors.Is(err, ErrPageBounds) {
				t.Errorf("read past extent: got %v, want ErrPageBounds", err)
			}
			if err := p.Free(b + 1000); !errors.Is(err, ErrPageBounds) {
				t.Errorf("free past extent: got %v, want ErrPageBounds", err)
			}

			// A freed page can be reallocated and is valid again.
			c, err := p.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if c != a {
				t.Fatalf("allocator did not reuse freed page (got %d, want %d)", c, a)
			}
			if err := p.ReadPage(c, buf); err != nil {
				t.Errorf("read of reallocated page: %v", err)
			}
		})
	}
}
