package pagestore

import (
	"bytes"
	"testing"
)

const salvagePageSize = 512

// buildRealPages formats a record store with small inline records and one
// record big enough to overflow, flushes it, and returns every raw page
// image (checksummed, as it would sit on disk) plus the meta page id.
func buildRealPages(tb testing.TB) ([][]byte, PageID) {
	tb.Helper()
	p := NewMemPager(salvagePageSize)
	pool := NewBufferPool(p, 64)
	rs, err := CreateRecordStore(pool)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		rec := bytes.Repeat([]byte{byte('a' + i%26)}, 24+i%17)
		if _, _, err := rs.InsertLast(rec); err != nil {
			tb.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte{0xbe}, 3*salvagePageSize)
	if _, _, err := rs.InsertLast(big); err != nil {
		tb.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		tb.Fatal(err)
	}
	var pages [][]byte
	for id := PageID(1); ; id++ {
		buf := make([]byte, salvagePageSize)
		if err := p.ReadPage(id, buf); err != nil {
			break
		}
		pages = append(pages, buf)
	}
	if len(pages) < 4 {
		tb.Fatalf("only %d real pages built", len(pages))
	}
	return pages, rs.MetaPage()
}

// Every page of a freshly flushed store must classify as its real kind
// with no structural error — InspectPage must never reject a valid page.
func TestInspectPageClassifiesRealPages(t *testing.T) {
	pages, metaPage := buildRealPages(t)
	counts := map[PageKind]int{}
	for i, img := range pages {
		id := PageID(i + 1)
		if err := VerifyChecksum(id, img); err != nil {
			t.Fatalf("page %d: bad checksum on freshly flushed page: %v", id, err)
		}
		info := InspectPage(img)
		if info.Err != nil {
			t.Errorf("page %d: classified %v with error %v", id, info.Kind, info.Err)
		}
		counts[info.Kind]++
		if id == metaPage && info.Kind != KindMeta {
			t.Errorf("meta page %d classified as %v", id, info.Kind)
		}
		if info.Kind == KindData {
			for _, r := range info.Records {
				if _, err := DecodeStored(r.Stored); err != nil {
					t.Errorf("page %d: record slot %d undecodable: %v", id, r.Slot, err)
				}
			}
		}
	}
	if counts[KindMeta] != 1 || counts[KindData] == 0 || counts[KindOverflow] == 0 {
		t.Errorf("kind census %v: want exactly 1 meta, some data, some overflow", counts)
	}
	// A zeroed page is a valid free page, and a short buffer is not a panic.
	zero := make([]byte, salvagePageSize)
	if info := InspectPage(zero); info.Kind != KindFree || info.Err != nil {
		t.Errorf("zero page: %v / %v", info.Kind, info.Err)
	}
	if info := InspectPage(zero[:10]); info.Err == nil {
		t.Errorf("10-byte page image classified without error as %v", info.Kind)
	}
}

// The salvage classifier is the first thing that touches untrusted bytes
// after a crash, so it must never panic and never waver: same input, same
// classification, and any page it accepts as data must have fully
// decodable records.
func FuzzInspectPage(f *testing.F) {
	pages, _ := buildRealPages(f)
	for _, img := range pages {
		f.Add(img)
		// A torn variant of each real page.
		torn := append([]byte{}, img[:len(img)/2]...)
		f.Add(torn)
	}
	f.Add(make([]byte, salvagePageSize))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		info := InspectPage(b)
		again := InspectPage(b)
		if info.Kind != again.Kind || (info.Err == nil) != (again.Err == nil) {
			t.Fatalf("classification not deterministic: %v/%v vs %v/%v",
				info.Kind, info.Err, again.Kind, again.Err)
		}
		if info.Kind == KindData && info.Err == nil {
			for _, r := range info.Records {
				if _, err := DecodeStored(r.Stored); err != nil {
					t.Fatalf("accepted data page carries undecodable record: %v", err)
				}
			}
		}
	})
}
