package pagestore

import (
	"encoding/binary"
	"fmt"
)

// VerifyChains scrubs the record store's durable structures beyond the
// per-page invariants of CheckInvariants: the meta page type, the data page
// chain, and every overflow chain (page types, chunk bounds, chain length
// against the stub's total, cycle detection). It returns the first
// violation found.
func (rs *RecordStore) VerifyChains() error {
	mf, err := rs.pool.Fetch(rs.meta)
	if err != nil {
		return fmt.Errorf("meta page %d: %w", rs.meta, err)
	}
	typ := slotPage(mf.Data).typ()
	rs.pool.Unpin(mf, false)
	if typ != pageMeta {
		return fmt.Errorf("%w: page %d has type %d", ErrBadMeta, rs.meta, typ)
	}
	if err := rs.CheckInvariants(); err != nil {
		return err
	}
	// Walk every record; verify overflow stubs and their chains.
	page := rs.head
	for page != InvalidPage {
		f, err := rs.pool.Fetch(page)
		if err != nil {
			return err
		}
		p := slotPage(f.Data)
		for s := p.firstSlot(); s != nilSlot; s = p.slotNext(s) {
			if err := rs.verifyStored(Loc{page, s}, p.payload(s)); err != nil {
				rs.pool.Unpin(f, false)
				return err
			}
		}
		next := p.next()
		rs.pool.Unpin(f, false)
		page = next
	}
	return nil
}

// verifyStored checks one stored payload: inline records need no further
// validation; overflow stubs have their chain walked and measured.
func (rs *RecordStore) verifyStored(loc Loc, stored []byte) error {
	if len(stored) == 0 {
		return fmt.Errorf("pagestore: record %v: empty stored payload", loc)
	}
	switch stored[0] {
	case recInline:
		return nil
	case recOverflow:
	default:
		return fmt.Errorf("pagestore: record %v: unknown stub flag %d", loc, stored[0])
	}
	if len(stored) < stubSize {
		return fmt.Errorf("pagestore: record %v: truncated overflow stub", loc)
	}
	total := int(binary.LittleEndian.Uint32(stored[1:]))
	next := PageID(binary.LittleEndian.Uint32(stored[5:]))
	chunk := rs.pool.UsablePageSize() - ovflHeader
	maxPages := total/chunk + 2 // cycle bound: all chunks but the last are full
	got, pages := 0, 0
	for next != InvalidPage {
		pages++
		if pages > maxPages {
			return fmt.Errorf("pagestore: record %v: overflow chain cycle", loc)
		}
		f, err := rs.pool.Fetch(next)
		if err != nil {
			return fmt.Errorf("pagestore: record %v: overflow page %d: %w", loc, next, err)
		}
		typ := f.Data[0]
		used := int(binary.LittleEndian.Uint16(f.Data[2:]))
		nn := PageID(binary.LittleEndian.Uint32(f.Data[4:]))
		rs.pool.Unpin(f, false)
		if typ != pageOverflow {
			return fmt.Errorf("pagestore: record %v: overflow page %d has type %d", loc, next, typ)
		}
		if used <= 0 || used > chunk {
			return fmt.Errorf("pagestore: record %v: overflow page %d holds %d bytes (chunk max %d)", loc, next, used, chunk)
		}
		got += used
		next = nn
	}
	if got != total {
		return fmt.Errorf("pagestore: record %v: overflow chain holds %d bytes, stub says %d", loc, got, total)
	}
	return nil
}
