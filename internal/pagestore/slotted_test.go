package pagestore

import (
	"bytes"
	"math/rand"
	"testing"
)

func newPage(size int) slotPage {
	b := make([]byte, size)
	initDataPage(b)
	return slotPage(b)
}

func TestSlottedInsertOrder(t *testing.T) {
	p := newPage(1024)
	a := p.insertAfter(nilSlot, []byte("A"))
	b := p.insertAfter(a, []byte("B"))
	c := p.insertAfter(b, []byte("C"))
	if a == nilSlot || b == nilSlot || c == nilSlot {
		t.Fatal("insert failed")
	}
	order := p.slotsInOrder()
	if len(order) != 3 || order[0] != a || order[1] != b || order[2] != c {
		t.Fatalf("order = %v", order)
	}
	if p.nlive() != 3 {
		t.Fatalf("nlive = %d", p.nlive())
	}
	if string(p.payload(b)) != "B" {
		t.Fatalf("payload(b) = %q", p.payload(b))
	}
}

func TestSlottedInsertHeadAndMiddle(t *testing.T) {
	p := newPage(1024)
	b := p.insertAfter(nilSlot, []byte("B"))
	a := p.insertAfter(nilSlot, []byte("A")) // new head
	c := p.insertAfter(b, []byte("C"))
	m := p.insertAfter(a, []byte("M")) // between A and B
	got := p.slotsInOrder()
	want := []uint16{a, m, b, c}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if p.firstSlot() != a || p.lastSlot() != c {
		t.Fatalf("first/last = %d/%d", p.firstSlot(), p.lastSlot())
	}
}

func TestSlottedDelete(t *testing.T) {
	p := newPage(1024)
	a := p.insertAfter(nilSlot, []byte("A"))
	b := p.insertAfter(a, []byte("B"))
	c := p.insertAfter(b, []byte("C"))
	p.deleteSlot(b)
	got := p.slotsInOrder()
	if len(got) != 2 || got[0] != a || got[1] != c {
		t.Fatalf("order after delete = %v", got)
	}
	if p.live(b) {
		t.Error("deleted slot still live")
	}
	// Slot id is recycled.
	d := p.insertAfter(c, []byte("D"))
	if d != b {
		t.Errorf("expected slot reuse: got %d, want %d", d, b)
	}
	// Delete head and tail.
	p.deleteSlot(a)
	if p.firstSlot() != c {
		t.Error("head delete broken")
	}
	p.deleteSlot(d)
	if p.lastSlot() != c {
		t.Error("tail delete broken")
	}
	p.deleteSlot(c)
	if p.nlive() != 0 || p.firstSlot() != nilSlot || p.lastSlot() != nilSlot {
		t.Error("page should be empty")
	}
}

func TestSlottedCompact(t *testing.T) {
	p := newPage(512)
	var slots []uint16
	payload := bytes.Repeat([]byte("x"), 40)
	for {
		s := p.insertAfter(p.lastSlot(), payload)
		if s == nilSlot {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 5 {
		t.Fatalf("only %d inserts fit", len(slots))
	}
	// Delete every other record, then compaction should make room again.
	for i := 0; i < len(slots); i += 2 {
		p.deleteSlot(slots[i])
	}
	before := p.freeSpace()
	p.compact()
	after := p.freeSpace()
	if after <= before {
		t.Errorf("compaction did not reclaim space: %d -> %d", before, after)
	}
	// Surviving payloads intact, order preserved.
	for i := 1; i < len(slots); i += 2 {
		if !bytes.Equal(p.payload(slots[i]), payload) {
			t.Errorf("slot %d payload corrupted", slots[i])
		}
	}
}

func TestSlottedUpdateInPlace(t *testing.T) {
	p := newPage(512)
	s := p.insertAfter(nilSlot, []byte("hello"))
	// Shrink.
	if !p.updateInPlace(s, []byte("hi")) {
		t.Fatal("shrink should succeed")
	}
	if string(p.payload(s)) != "hi" {
		t.Fatalf("payload = %q", p.payload(s))
	}
	// Grow within free space.
	if !p.updateInPlace(s, []byte("a longer payload")) {
		t.Fatal("grow should succeed")
	}
	if string(p.payload(s)) != "a longer payload" {
		t.Fatalf("payload = %q", p.payload(s))
	}
	// Grow beyond page capacity fails.
	big := bytes.Repeat([]byte("z"), 1000)
	if p.updateInPlace(s, big) {
		t.Fatal("oversize grow should fail")
	}
}

func TestSlottedUpdateGrowTriggersCompact(t *testing.T) {
	p := newPage(512)
	a := p.insertAfter(nilSlot, bytes.Repeat([]byte("a"), 150))
	b := p.insertAfter(a, bytes.Repeat([]byte("b"), 150))
	c := p.insertAfter(b, bytes.Repeat([]byte("c"), 100))
	_ = c
	p.deleteSlot(a) // heap hole at the far end
	// Growing c needs the hole; only compaction exposes it.
	if !p.updateInPlace(c, bytes.Repeat([]byte("C"), 200)) {
		t.Fatal("grow with compaction should succeed")
	}
	if !bytes.Equal(p.payload(b), bytes.Repeat([]byte("b"), 150)) {
		t.Error("unrelated record corrupted by compaction")
	}
}

func TestSlottedFullPage(t *testing.T) {
	p := newPage(512)
	n := 0
	for {
		s := p.insertAfter(p.lastSlot(), []byte("0123456789"))
		if s == nilSlot {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("nothing fit")
	}
	// All records intact.
	count := 0
	for s := p.firstSlot(); s != nilSlot; s = p.slotNext(s) {
		if string(p.payload(s)) != "0123456789" {
			t.Fatal("payload corrupted")
		}
		count++
	}
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}

func TestSlottedRandomizedOps(t *testing.T) {
	// Property test: random inserts/deletes mirrored against a reference
	// slice must always agree.
	r := rand.New(rand.NewSource(7))
	p := newPage(2048)
	type rec struct {
		slot uint16
		data []byte
	}
	var ref []rec
	for step := 0; step < 2000; step++ {
		if r.Intn(3) != 0 || len(ref) == 0 {
			data := make([]byte, 1+r.Intn(60))
			r.Read(data)
			pos := r.Intn(len(ref) + 1)
			after := uint16(nilSlot)
			if pos > 0 {
				after = ref[pos-1].slot
			}
			s := p.insertAfter(after, data)
			if s == nilSlot {
				// Maybe only fragmentation: compaction must help when the
				// live bytes plus the new record fit.
				p.compact()
				s = p.insertAfter(after, data)
			}
			if s == nilSlot {
				// Page genuinely full: delete something instead.
				if len(ref) == 0 {
					t.Fatal("empty page rejected insert")
				}
				i := r.Intn(len(ref))
				p.deleteSlot(ref[i].slot)
				ref = append(ref[:i], ref[i+1:]...)
				continue
			}
			ref = append(ref[:pos], append([]rec{{s, data}}, ref[pos:]...)...)
		} else {
			i := r.Intn(len(ref))
			p.deleteSlot(ref[i].slot)
			ref = append(ref[:i], ref[i+1:]...)
		}
		if r.Intn(50) == 0 {
			p.compact()
		}
		// Verify.
		order := p.slotsInOrder()
		if len(order) != len(ref) {
			t.Fatalf("step %d: %d slots, want %d", step, len(order), len(ref))
		}
		for i, s := range order {
			if s != ref[i].slot || !bytes.Equal(p.payload(s), ref[i].data) {
				t.Fatalf("step %d: mismatch at %d", step, i)
			}
		}
		if p.nlive() != len(ref) {
			t.Fatalf("step %d: nlive = %d, want %d", step, p.nlive(), len(ref))
		}
	}
}
