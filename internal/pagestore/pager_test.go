package pagestore

import (
	"bytes"
	"path/filepath"
	"testing"
)

func testPagers(t *testing.T) map[string]Pager {
	t.Helper()
	fp, err := OpenFilePager(filepath.Join(t.TempDir(), "pages.db"), 1024)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Pager{
		"mem":  NewMemPager(1024),
		"file": fp,
	}
}

func TestPagerBasics(t *testing.T) {
	for name, p := range testPagers(t) {
		t.Run(name, func(t *testing.T) {
			defer p.Close()
			if p.PageSize() != 1024 {
				t.Fatalf("page size = %d", p.PageSize())
			}
			id1, err := p.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			id2, err := p.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id1 == InvalidPage || id2 == InvalidPage || id1 == id2 {
				t.Fatalf("bad ids: %d %d", id1, id2)
			}
			if p.PageCount() != 2 {
				t.Fatalf("count = %d", p.PageCount())
			}
			buf := make([]byte, 1024)
			for i := range buf {
				buf[i] = byte(i)
			}
			if err := p.WritePage(id1, buf); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 1024)
			if err := p.ReadPage(id1, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, buf) {
				t.Fatal("read != write")
			}
			// Fresh page reads as zeros.
			if err := p.ReadPage(id2, got); err != nil {
				t.Fatal(err)
			}
			for _, b := range got {
				if b != 0 {
					t.Fatal("fresh page not zeroed")
				}
			}
		})
	}
}

func TestPagerFreeAndReuse(t *testing.T) {
	for name, p := range testPagers(t) {
		t.Run(name, func(t *testing.T) {
			defer p.Close()
			id1, _ := p.Allocate()
			id2, _ := p.Allocate()
			if err := p.Free(id1); err != nil {
				t.Fatal(err)
			}
			if p.PageCount() != 1 {
				t.Fatalf("count after free = %d", p.PageCount())
			}
			buf := make([]byte, 1024)
			if err := p.ReadPage(id1, buf); err == nil {
				t.Error("read of freed page should fail")
			}
			if err := p.WritePage(id1, buf); err == nil {
				t.Error("write of freed page should fail")
			}
			if err := p.Free(id1); err == nil {
				t.Error("double free should fail")
			}
			// Freed id is reused.
			id3, err := p.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id3 != id1 {
				t.Errorf("expected reuse of %d, got %d", id1, id3)
			}
			_ = id2
		})
	}
}

func TestPagerInvalidIDs(t *testing.T) {
	fp, err := OpenFilePager(filepath.Join(t.TempDir(), "p.db"), 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer fp.Close()
	buf := make([]byte, 1024)
	if err := fp.ReadPage(InvalidPage, buf); err == nil {
		t.Error("read page 0 should fail")
	}
	if err := fp.ReadPage(999, buf); err == nil {
		t.Error("read unallocated page should fail")
	}
}

func TestPagerClosed(t *testing.T) {
	for name, p := range testPagers(t) {
		t.Run(name, func(t *testing.T) {
			id, _ := p.Allocate()
			p.Close()
			buf := make([]byte, 1024)
			if _, err := p.Allocate(); err == nil {
				t.Error("allocate after close should fail")
			}
			if err := p.ReadPage(id, buf); err == nil {
				t.Error("read after close should fail")
			}
			if err := p.WritePage(id, buf); err == nil {
				t.Error("write after close should fail")
			}
			if err := p.Free(id); err == nil {
				t.Error("free after close should fail")
			}
		})
	}
}

func TestFilePagerPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	fp, err := OpenFilePager(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := fp.Allocate()
	buf := make([]byte, 1024)
	copy(buf, "hello persistent world")
	if err := fp.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := fp.Sync(); err != nil {
		t.Fatal(err)
	}
	fp.Close()

	fp2, err := OpenFilePager(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer fp2.Close()
	got := make([]byte, 1024)
	if err := fp2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("hello persistent world")) {
		t.Errorf("persisted data lost: %q", got[:30])
	}
}

func TestPagerMinimumPageSize(t *testing.T) {
	p := NewMemPager(10)
	if p.PageSize() < MinPageSize {
		t.Errorf("page size %d below minimum", p.PageSize())
	}
	p2 := NewMemPager(0)
	if p2.PageSize() != DefaultPageSize {
		t.Errorf("default page size = %d", p2.PageSize())
	}
}
