package pagestore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func newRecordStore(t *testing.T, pageSize, poolPages int) *RecordStore {
	t.Helper()
	pool := NewBufferPool(NewMemPager(pageSize), poolPages)
	rs, err := CreateRecordStore(pool)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// collect returns all record payloads in order.
func collect(t *testing.T, rs *RecordStore) [][]byte {
	t.Helper()
	var out [][]byte
	err := rs.Scan(func(loc Loc, payload []byte) bool {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		out = append(out, cp)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRecordStoreAppendRead(t *testing.T) {
	rs := newRecordStore(t, 1024, 16)
	var locs []Loc
	for i := 0; i < 10; i++ {
		loc, moves, err := rs.InsertLast([]byte(fmt.Sprintf("record-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(moves) != 0 {
			// Moves can legally happen, but remap our locs if so.
			for _, m := range moves {
				for j := range locs {
					if locs[j] == m.From {
						locs[j] = m.To
					}
				}
			}
		}
		locs = append(locs, loc)
	}
	for i, loc := range locs {
		data, err := rs.Read(loc)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(data) != fmt.Sprintf("record-%02d", i) {
			t.Errorf("record %d = %q", i, data)
		}
	}
	if n, _ := rs.Len(); n != 10 {
		t.Errorf("len = %d", n)
	}
	if err := rs.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRecordStoreOrdering(t *testing.T) {
	rs := newRecordStore(t, 1024, 16)
	b, _, err := rs.InsertLast([]byte("B"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rs.InsertBefore(b, []byte("A")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rs.InsertAfter(b, []byte("D")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rs.InsertAfter(b, []byte("C")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rs.InsertFirst([]byte("0")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, rs)
	want := []string{"0", "A", "B", "C", "D"}
	if len(got) != len(want) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRecordStoreIteration(t *testing.T) {
	rs := newRecordStore(t, 512, 16)
	// Force multiple pages with chunky records.
	n := 20
	for i := 0; i < n; i++ {
		if _, _, err := rs.InsertLast(bytes.Repeat([]byte{byte('a' + i%26)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if pages, _ := rs.DataPages(); pages < 2 {
		t.Fatalf("expected multiple pages, got %d", pages)
	}
	// Forward iteration.
	loc, ok, err := rs.First()
	if err != nil || !ok {
		t.Fatal("First failed")
	}
	count := 1
	for {
		next, ok, err := rs.Next(loc)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		loc = next
		count++
	}
	if count != n {
		t.Errorf("forward count = %d, want %d", count, n)
	}
	// Backward iteration.
	loc, ok, err = rs.Last()
	if err != nil || !ok {
		t.Fatal("Last failed")
	}
	count = 1
	for {
		prev, ok, err := rs.Prev(loc)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		loc = prev
		count++
	}
	if count != n {
		t.Errorf("backward count = %d, want %d", count, n)
	}
}

func TestRecordStoreEmpty(t *testing.T) {
	rs := newRecordStore(t, 1024, 8)
	if _, ok, _ := rs.First(); ok {
		t.Error("First on empty store")
	}
	if _, ok, _ := rs.Last(); ok {
		t.Error("Last on empty store")
	}
	if n, _ := rs.Len(); n != 0 {
		t.Errorf("len = %d", n)
	}
	if _, err := rs.Read(Loc{Page: 2, Slot: 0}); err == nil {
		t.Error("read of nonexistent record should fail")
	}
}

func TestRecordStoreDelete(t *testing.T) {
	rs := newRecordStore(t, 512, 16)
	var locs []Loc
	remap := func(moves []Move) {
		for _, m := range moves {
			for j := range locs {
				if locs[j] == m.From {
					locs[j] = m.To
				}
			}
		}
	}
	for i := 0; i < 15; i++ {
		loc, moves, err := rs.InsertLast(bytes.Repeat([]byte{byte('0' + i%10)}, 80))
		if err != nil {
			t.Fatal(err)
		}
		remap(moves)
		locs = append(locs, loc)
	}
	pagesBefore, _ := rs.DataPages()
	// Delete the middle third.
	for i := 5; i < 10; i++ {
		if err := rs.Delete(locs[i]); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if n, _ := rs.Len(); n != 10 {
		t.Errorf("len = %d", n)
	}
	// Double delete fails.
	if err := rs.Delete(locs[5]); err == nil {
		t.Error("double delete should fail")
	}
	// Delete everything; empty pages get reclaimed.
	for i := 0; i < 5; i++ {
		if err := rs.Delete(locs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 10; i < 15; i++ {
		if err := rs.Delete(locs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := rs.Len(); n != 0 {
		t.Errorf("len = %d", n)
	}
	pagesAfter, _ := rs.DataPages()
	if pagesAfter >= pagesBefore {
		t.Errorf("pages not reclaimed: %d -> %d", pagesBefore, pagesAfter)
	}
	if pagesAfter != 1 {
		t.Errorf("empty store should keep one page, has %d", pagesAfter)
	}
	if err := rs.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRecordStoreSplitReportsMoves(t *testing.T) {
	rs := newRecordStore(t, 512, 32)
	// Fill one page.
	first, _, err := rs.InsertLast(bytes.Repeat([]byte("a"), 100))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := rs.InsertLast(bytes.Repeat([]byte("b"), 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Insert after the first record; the tail must move to a new page.
	var sawMoves bool
	for i := 0; i < 5; i++ {
		_, moves, err := rs.InsertAfter(first, bytes.Repeat([]byte("c"), 100))
		if err != nil {
			t.Fatal(err)
		}
		if len(moves) > 0 {
			sawMoves = true
			for _, m := range moves {
				if m.From == m.To {
					t.Error("no-op move reported")
				}
				// Moved record must be readable at its new location.
				if _, err := rs.Read(m.To); err != nil {
					t.Errorf("moved record unreadable: %v", err)
				}
				if first == m.From {
					first = m.To
				}
			}
		}
	}
	if !sawMoves {
		t.Error("expected at least one split with moves")
	}
	if err := rs.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRecordStoreOverflow(t *testing.T) {
	rs := newRecordStore(t, 512, 32)
	big := make([]byte, 5000)
	for i := range big {
		big[i] = byte(i * 7)
	}
	loc, _, err := rs.InsertLast(big)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rs.Read(loc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("overflow round trip corrupted")
	}
	pagesWithOvfl := rs.pool.Pager().PageCount()
	// Delete must reclaim the overflow chain.
	if err := rs.Delete(loc); err != nil {
		t.Fatal(err)
	}
	if after := rs.pool.Pager().PageCount(); after >= pagesWithOvfl {
		t.Errorf("overflow pages not reclaimed: %d -> %d", pagesWithOvfl, after)
	}
}

func TestRecordStoreOverflowMixedWithSmall(t *testing.T) {
	rs := newRecordStore(t, 512, 32)
	small1, _, _ := rs.InsertLast([]byte("small-1"))
	big := bytes.Repeat([]byte("B"), 3000)
	bigLoc, _, err := rs.InsertLast(big)
	if err != nil {
		t.Fatal(err)
	}
	small2, _, _ := rs.InsertLast([]byte("small-2"))
	recs := collect(t, rs)
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if string(recs[0]) != "small-1" || !bytes.Equal(recs[1], big) || string(recs[2]) != "small-2" {
		t.Error("order or content wrong with overflow record")
	}
	_ = small1
	_ = small2
	_ = bigLoc
}

func TestRecordStoreUpdate(t *testing.T) {
	rs := newRecordStore(t, 512, 32)
	loc, _, err := rs.InsertLast([]byte("initial"))
	if err != nil {
		t.Fatal(err)
	}
	// In-place (shrink).
	nl, moves, err := rs.Update(loc, []byte("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	if nl != loc || len(moves) != 0 {
		t.Error("shrink should stay in place")
	}
	if data, _ := rs.Read(nl); string(data) != "tiny" {
		t.Errorf("data = %q", data)
	}
	// Grow to overflow size.
	big := bytes.Repeat([]byte("G"), 4000)
	nl, _, err = rs.Update(nl, big)
	if err != nil {
		t.Fatal(err)
	}
	if data, _ := rs.Read(nl); !bytes.Equal(data, big) {
		t.Error("grown data mismatch")
	}
	// Shrink back from overflow; chain must be reclaimed.
	pages := rs.pool.Pager().PageCount()
	nl, _, err = rs.Update(nl, []byte("small again"))
	if err != nil {
		t.Fatal(err)
	}
	if after := rs.pool.Pager().PageCount(); after >= pages {
		t.Errorf("overflow not reclaimed on shrink: %d -> %d", pages, after)
	}
	if data, _ := rs.Read(nl); string(data) != "small again" {
		t.Errorf("data = %q", data)
	}
	if err := rs.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRecordStoreUpdatePreservesOrder(t *testing.T) {
	rs := newRecordStore(t, 512, 32)
	var locs []Loc
	for i := 0; i < 4; i++ {
		loc, _, err := rs.InsertLast([]byte(fmt.Sprintf("r%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		locs = append(locs, loc)
	}
	// Grow r1 so large it must relocate (page split).
	big := append([]byte("r1-"), bytes.Repeat([]byte("x"), 300)...)
	if _, _, err := rs.Update(locs[1], big); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, rs)
	if string(recs[0]) != "r0" || !bytes.HasPrefix(recs[1], []byte("r1-")) ||
		string(recs[2]) != "r2" || string(recs[3]) != "r3" {
		t.Errorf("order broken after relocating update: %q", recs)
	}
}

func TestRecordStoreUserMeta(t *testing.T) {
	rs := newRecordStore(t, 512, 8)
	if err := rs.SetUserMeta([]byte("allocator-state-42")); err != nil {
		t.Fatal(err)
	}
	got, err := rs.UserMeta()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "allocator-state-42" {
		t.Errorf("user meta = %q", got)
	}
	// Meta survives record operations that touch head/tail.
	for i := 0; i < 30; i++ {
		if _, _, err := rs.InsertLast(bytes.Repeat([]byte("m"), 100)); err != nil {
			t.Fatal(err)
		}
	}
	got, _ = rs.UserMeta()
	if string(got) != "allocator-state-42" {
		t.Errorf("user meta lost after inserts: %q", got)
	}
	// Oversize meta rejected.
	if err := rs.SetUserMeta(make([]byte, 600)); err == nil {
		t.Error("oversize meta should fail")
	}
}

func TestRecordStoreReopen(t *testing.T) {
	pool := NewBufferPool(NewMemPager(512), 16)
	rs, err := CreateRecordStore(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := rs.InsertLast([]byte(fmt.Sprintf("persist-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	rs.SetUserMeta([]byte("meta"))
	meta := rs.MetaPage()
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Reopen through a fresh pool over the same pager.
	pool2 := NewBufferPool(pool.Pager(), 16)
	rs2, err := OpenRecordStore(pool2, meta)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	rs2.Scan(func(_ Loc, p []byte) bool { got = append(got, string(p)); return true })
	if len(got) != 10 || got[0] != "persist-0" || got[9] != "persist-9" {
		t.Errorf("reopened records: %v", got)
	}
	um, _ := rs2.UserMeta()
	if string(um) != "meta" {
		t.Errorf("user meta after reopen: %q", um)
	}
	// Opening a non-meta page fails.
	if _, err := OpenRecordStore(pool2, rs2.head); err == nil {
		t.Error("open of data page as meta should fail")
	}
}

func TestRecordStoreRandomized(t *testing.T) {
	// Property test: random ordered inserts/deletes/updates mirrored
	// against a reference slice. Locations are remapped on every move.
	r := rand.New(rand.NewSource(99))
	rs := newRecordStore(t, 512, 64)
	type rec struct {
		loc  Loc
		data []byte
	}
	var ref []rec
	remap := func(moves []Move) {
		for _, m := range moves {
			for j := range ref {
				if ref[j].loc == m.From {
					ref[j].loc = m.To
				}
			}
		}
	}
	for step := 0; step < 1500; step++ {
		op := r.Intn(10)
		switch {
		case op < 5 || len(ref) == 0: // insert
			data := make([]byte, 1+r.Intn(200))
			r.Read(data)
			pos := r.Intn(len(ref) + 1)
			var loc Loc
			var moves []Move
			var err error
			if pos == len(ref) {
				loc, moves, err = rs.InsertLast(data)
			} else {
				loc, moves, err = rs.InsertBefore(ref[pos].loc, data)
			}
			if err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			remap(moves)
			ref = append(ref[:pos], append([]rec{{loc, data}}, ref[pos:]...)...)
		case op < 7: // delete
			i := r.Intn(len(ref))
			if err := rs.Delete(ref[i].loc); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			ref = append(ref[:i], ref[i+1:]...)
		default: // update
			i := r.Intn(len(ref))
			data := make([]byte, 1+r.Intn(400))
			r.Read(data)
			loc, moves, err := rs.Update(ref[i].loc, data)
			if err != nil {
				t.Fatalf("step %d update: %v", step, err)
			}
			remap(moves)
			ref[i].loc = loc
			ref[i].data = data
		}
		if step%100 == 0 {
			if err := rs.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	// Final verification: order and content.
	var got []rec
	rs.Scan(func(loc Loc, p []byte) bool {
		cp := make([]byte, len(p))
		copy(cp, p)
		got = append(got, rec{loc, cp})
		return true
	})
	if len(got) != len(ref) {
		t.Fatalf("got %d records, want %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i].loc != ref[i].loc {
			t.Fatalf("record %d: loc %v, want %v", i, got[i].loc, ref[i].loc)
		}
		if !bytes.Equal(got[i].data, ref[i].data) {
			t.Fatalf("record %d: content mismatch", i)
		}
		// Point reads agree.
		data, err := rs.Read(ref[i].loc)
		if err != nil || !bytes.Equal(data, ref[i].data) {
			t.Fatalf("record %d: point read mismatch: %v", i, err)
		}
	}
	if err := rs.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if rs.pool.PinnedCount() != 0 {
		t.Errorf("pin leak: %d frames pinned", rs.pool.PinnedCount())
	}
}

func TestRecordStoreScanEarlyStop(t *testing.T) {
	rs := newRecordStore(t, 1024, 8)
	for i := 0; i < 5; i++ {
		rs.InsertLast([]byte{byte(i)})
	}
	n := 0
	rs.Scan(func(Loc, []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("scan visited %d, want 3", n)
	}
}

func TestRecordStoreTooLarge(t *testing.T) {
	rs := newRecordStore(t, 512, 8)
	if _, _, err := rs.InsertLast(make([]byte, MaxRecordSize+1)); err == nil {
		t.Error("oversize record should fail")
	}
}

func BenchmarkRecordAppend(b *testing.B) {
	pool := NewBufferPool(NewMemPager(8192), 256)
	rs, _ := CreateRecordStore(pool)
	payload := bytes.Repeat([]byte("x"), 200)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if _, _, err := rs.InsertLast(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecordScan(b *testing.B) {
	pool := NewBufferPool(NewMemPager(8192), 256)
	rs, _ := CreateRecordStore(pool)
	payload := bytes.Repeat([]byte("x"), 200)
	for i := 0; i < 1000; i++ {
		rs.InsertLast(payload)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		rs.Scan(func(Loc, []byte) bool { n++; return true })
		if n != 1000 {
			b.Fatal("bad scan")
		}
	}
}
