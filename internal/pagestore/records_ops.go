package pagestore

import "fmt"

// Mutation and iteration operations of the RecordStore.

// InsertLast appends a record at the end of the sequence.
func (rs *RecordStore) InsertLast(data []byte) (Loc, []Move, error) {
	f, err := rs.pool.Fetch(rs.tail)
	if err != nil {
		return NilLoc, nil, err
	}
	last := slotPage(f.Data).lastSlot()
	rs.pool.Unpin(f, false)
	return rs.insertAt(rs.tail, last, data)
}

// InsertFirst prepends a record at the front of the sequence.
func (rs *RecordStore) InsertFirst(data []byte) (Loc, []Move, error) {
	return rs.insertAt(rs.head, nilSlot, data)
}

// InsertAfter places a record immediately after the record at loc.
func (rs *RecordStore) InsertAfter(loc Loc, data []byte) (Loc, []Move, error) {
	if err := rs.checkLive(loc); err != nil {
		return NilLoc, nil, err
	}
	return rs.insertAt(loc.Page, loc.Slot, data)
}

// InsertBefore places a record immediately before the record at loc.
func (rs *RecordStore) InsertBefore(loc Loc, data []byte) (Loc, []Move, error) {
	f, err := rs.pool.Fetch(loc.Page)
	if err != nil {
		return NilLoc, nil, err
	}
	p := slotPage(f.Data)
	if p.typ() != pageData || !p.live(loc.Slot) {
		rs.pool.Unpin(f, false)
		return NilLoc, nil, fmt.Errorf("%w: %v", ErrNoRecord, loc)
	}
	prev := p.slotPrev(loc.Slot)
	rs.pool.Unpin(f, false)
	return rs.insertAt(loc.Page, prev, data)
}

func (rs *RecordStore) checkLive(loc Loc) error {
	f, err := rs.pool.Fetch(loc.Page)
	if err != nil {
		return err
	}
	defer rs.pool.Unpin(f, false)
	p := slotPage(f.Data)
	if p.typ() != pageData || !p.live(loc.Slot) {
		return fmt.Errorf("%w: %v", ErrNoRecord, loc)
	}
	return nil
}

// insertAt inserts data (raw payload) after slot `after` on the given page
// (nilSlot = at the head of the page), splitting the page when necessary.
func (rs *RecordStore) insertAt(pageID PageID, after uint16, data []byte) (Loc, []Move, error) {
	stored, err := rs.encode(data)
	if err != nil {
		return NilLoc, nil, err
	}
	f, err := rs.pool.Fetch(pageID)
	if err != nil {
		return NilLoc, nil, err
	}
	p := slotPage(f.Data)
	if p.typ() != pageData {
		rs.pool.Unpin(f, false)
		return NilLoc, nil, fmt.Errorf("pagestore: page %d is not a data page", pageID)
	}

	// Fast path: direct insert.
	if s := p.insertAfter(after, stored); s != nilSlot {
		rs.pool.Unpin(f, true)
		return Loc{pageID, s}, nil, nil
	}
	// Second chance: compaction may create contiguous room.
	if rs.wouldFitAfterCompact(p, len(stored)) {
		p.compact()
		if s := p.insertAfter(after, stored); s != nilSlot {
			rs.pool.Unpin(f, true)
			return Loc{pageID, s}, nil, nil
		}
	}
	// Split: move every record after the insertion point to a new page.
	loc, moves, err := rs.splitInsert(f, after, stored)
	if err != nil {
		rs.pool.Unpin(f, true)
		return NilLoc, nil, err
	}
	rs.pool.Unpin(f, true)
	return loc, moves, nil
}

func (rs *RecordStore) wouldFitAfterCompact(p slotPage, n int) bool {
	slotCost := 0
	if p.freeSlot() == nilSlot {
		slotCost = slotSize
	}
	free := p.usable() - headerSize - p.nslots()*slotSize - p.usedBytes() - slotCost
	return free >= n
}

// splitInsert implements page splitting. f is the pinned, full page; the new
// record goes after slot `after`. Returns the new record location and the
// list of relocated records.
func (rs *RecordStore) splitInsert(f *Frame, after uint16, stored []byte) (Loc, []Move, error) {
	p := slotPage(f.Data)

	// Gather the tail: all records strictly after the insertion point.
	var tailSlots []uint16
	start := p.firstSlot()
	if after != nilSlot {
		start = p.slotNext(after)
	}
	for s := start; s != nilSlot; s = p.slotNext(s) {
		tailSlots = append(tailSlots, s)
	}

	// New page Q spliced after P in the chain.
	qf, err := rs.pool.NewPage()
	if err != nil {
		return NilLoc, nil, err
	}
	initDataPage(qf.Data)
	q := slotPage(qf.Data)
	if err := rs.linkAfter(f, qf); err != nil {
		rs.pool.Unpin(qf, true)
		return NilLoc, nil, err
	}

	// Move the tail records into Q, preserving order.
	var moves []Move
	qPrev := uint16(nilSlot)
	for _, s := range tailSlots {
		payload := p.payload(s)
		ns := q.insertAfter(qPrev, payload)
		if ns == nilSlot {
			rs.pool.Unpin(qf, true)
			return NilLoc, nil, fmt.Errorf("pagestore: split overflow moving %d bytes", len(payload))
		}
		moves = append(moves, Move{From: Loc{f.ID, s}, To: Loc{qf.ID, ns}})
		qPrev = ns
	}
	for _, s := range tailSlots {
		p.deleteSlot(s)
	}
	p.compact()

	// Place the new record: end of P, else head of Q, else its own page
	// between them.
	if s := p.insertAfter(after, stored); s != nilSlot {
		rs.pool.Unpin(qf, true)
		return Loc{f.ID, s}, moves, nil
	}
	if s := q.insertAfter(nilSlot, stored); s != nilSlot {
		rs.pool.Unpin(qf, true)
		return Loc{qf.ID, s}, moves, nil
	}
	rf, err := rs.pool.NewPage()
	if err != nil {
		rs.pool.Unpin(qf, true)
		return NilLoc, nil, err
	}
	initDataPage(rf.Data)
	r := slotPage(rf.Data)
	if err := rs.linkAfter(f, rf); err != nil {
		rs.pool.Unpin(rf, true)
		rs.pool.Unpin(qf, true)
		return NilLoc, nil, err
	}
	s := r.insertAfter(nilSlot, stored)
	rs.pool.Unpin(rf, true)
	rs.pool.Unpin(qf, true)
	if s == nilSlot {
		return NilLoc, nil, fmt.Errorf("pagestore: record does not fit an empty page")
	}
	return Loc{rf.ID, s}, moves, nil
}

// linkAfter splices the pinned new page nf into the chain right after the
// pinned page f.
func (rs *RecordStore) linkAfter(f, nf *Frame) error {
	p := slotPage(f.Data)
	np := slotPage(nf.Data)
	oldNext := p.next()
	np.setPrev(f.ID)
	np.setNext(oldNext)
	p.setNext(nf.ID)
	if oldNext != InvalidPage {
		of, err := rs.pool.Fetch(oldNext)
		if err != nil {
			return err
		}
		slotPage(of.Data).setPrev(nf.ID)
		rs.pool.Unpin(of, true)
	} else {
		rs.tail = nf.ID
		if err := rs.syncMeta(); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes the record at loc, freeing any overflow chain. Empty pages
// (other than the last remaining one) are unlinked and freed.
func (rs *RecordStore) Delete(loc Loc) error {
	f, err := rs.pool.Fetch(loc.Page)
	if err != nil {
		return err
	}
	p := slotPage(f.Data)
	if p.typ() != pageData || !p.live(loc.Slot) {
		rs.pool.Unpin(f, false)
		return fmt.Errorf("%w: %v", ErrNoRecord, loc)
	}
	stored := p.payload(loc.Slot)
	if err := rs.freeOverflow(stored); err != nil {
		rs.pool.Unpin(f, true)
		return err
	}
	p.deleteSlot(loc.Slot)
	if p.nlive() == 0 && rs.head != rs.tail {
		return rs.unlinkAndFree(f)
	}
	return rs.pool.Unpin(f, true)
}

// unlinkAndFree removes the pinned empty page f from the chain and frees it.
func (rs *RecordStore) unlinkAndFree(f *Frame) error {
	p := slotPage(f.Data)
	prev, next := p.prev(), p.next()
	if prev != InvalidPage {
		pf, err := rs.pool.Fetch(prev)
		if err != nil {
			rs.pool.Unpin(f, true)
			return err
		}
		slotPage(pf.Data).setNext(next)
		rs.pool.Unpin(pf, true)
	} else {
		rs.head = next
	}
	if next != InvalidPage {
		nf, err := rs.pool.Fetch(next)
		if err != nil {
			rs.pool.Unpin(f, true)
			return err
		}
		slotPage(nf.Data).setPrev(prev)
		rs.pool.Unpin(nf, true)
	} else {
		rs.tail = prev
	}
	if err := rs.syncMeta(); err != nil {
		rs.pool.Unpin(f, true)
		return err
	}
	return rs.pool.FreePage(f)
}

// Update replaces the payload of the record at loc. When the new payload
// fits in place the location is unchanged; otherwise the record is relocated
// (possibly splitting the page) and the new location plus any moves of other
// records are returned.
func (rs *RecordStore) Update(loc Loc, data []byte) (Loc, []Move, error) {
	stored, err := rs.encode(data)
	if err != nil {
		return NilLoc, nil, err
	}
	f, err := rs.pool.Fetch(loc.Page)
	if err != nil {
		return NilLoc, nil, err
	}
	p := slotPage(f.Data)
	if p.typ() != pageData || !p.live(loc.Slot) {
		rs.pool.Unpin(f, false)
		return NilLoc, nil, fmt.Errorf("%w: %v", ErrNoRecord, loc)
	}
	if err := rs.freeOverflow(p.payload(loc.Slot)); err != nil {
		rs.pool.Unpin(f, true)
		return NilLoc, nil, err
	}
	if p.updateInPlace(loc.Slot, stored) {
		rs.pool.Unpin(f, true)
		return loc, nil, nil
	}
	// Relocate: delete, then insert after the same predecessor.
	after := p.slotPrev(loc.Slot)
	p.deleteSlot(loc.Slot)
	rs.pool.Unpin(f, true)
	return rs.insertAt(loc.Page, after, data)
}

// First returns the location of the first record, or ok=false when empty.
func (rs *RecordStore) First() (Loc, bool, error) {
	return rs.firstFrom(rs.head)
}

func (rs *RecordStore) firstFrom(page PageID) (Loc, bool, error) {
	for page != InvalidPage {
		f, err := rs.pool.Fetch(page)
		if err != nil {
			return NilLoc, false, err
		}
		p := slotPage(f.Data)
		s := p.firstSlot()
		next := p.next()
		rs.pool.Unpin(f, false)
		if s != nilSlot {
			return Loc{page, s}, true, nil
		}
		page = next
	}
	return NilLoc, false, nil
}

// Last returns the location of the last record, or ok=false when empty.
func (rs *RecordStore) Last() (Loc, bool, error) {
	page := rs.tail
	for page != InvalidPage {
		f, err := rs.pool.Fetch(page)
		if err != nil {
			return NilLoc, false, err
		}
		p := slotPage(f.Data)
		s := p.lastSlot()
		prev := p.prev()
		rs.pool.Unpin(f, false)
		if s != nilSlot {
			return Loc{page, s}, true, nil
		}
		page = prev
	}
	return NilLoc, false, nil
}

// Next returns the location following loc in record order.
func (rs *RecordStore) Next(loc Loc) (Loc, bool, error) {
	f, err := rs.pool.Fetch(loc.Page)
	if err != nil {
		return NilLoc, false, err
	}
	p := slotPage(f.Data)
	if !p.live(loc.Slot) {
		rs.pool.Unpin(f, false)
		return NilLoc, false, fmt.Errorf("%w: %v", ErrNoRecord, loc)
	}
	s := p.slotNext(loc.Slot)
	next := p.next()
	rs.pool.Unpin(f, false)
	if s != nilSlot {
		return Loc{loc.Page, s}, true, nil
	}
	return rs.firstFrom(next)
}

// Prev returns the location preceding loc in record order.
func (rs *RecordStore) Prev(loc Loc) (Loc, bool, error) {
	f, err := rs.pool.Fetch(loc.Page)
	if err != nil {
		return NilLoc, false, err
	}
	p := slotPage(f.Data)
	if !p.live(loc.Slot) {
		rs.pool.Unpin(f, false)
		return NilLoc, false, fmt.Errorf("%w: %v", ErrNoRecord, loc)
	}
	s := p.slotPrev(loc.Slot)
	prev := p.prev()
	rs.pool.Unpin(f, false)
	if s != nilSlot {
		return Loc{loc.Page, s}, true, nil
	}
	for prev != InvalidPage {
		f, err := rs.pool.Fetch(prev)
		if err != nil {
			return NilLoc, false, err
		}
		p := slotPage(f.Data)
		s := p.lastSlot()
		pp := p.prev()
		rs.pool.Unpin(f, false)
		if s != nilSlot {
			return Loc{prev, s}, true, nil
		}
		prev = pp
	}
	return NilLoc, false, nil
}

// Scan calls fn for each record in order with its location and resolved
// payload. fn returning false stops the scan.
func (rs *RecordStore) Scan(fn func(loc Loc, payload []byte) bool) error {
	page := rs.head
	for page != InvalidPage {
		f, err := rs.pool.Fetch(page)
		if err != nil {
			return err
		}
		p := slotPage(f.Data)
		for s := p.firstSlot(); s != nilSlot; s = p.slotNext(s) {
			payload, err := rs.resolve(p.payload(s))
			if err != nil {
				rs.pool.Unpin(f, false)
				return err
			}
			if !fn(Loc{page, s}, payload) {
				rs.pool.Unpin(f, false)
				return nil
			}
		}
		next := p.next()
		rs.pool.Unpin(f, false)
		page = next
	}
	return nil
}

// Len returns the number of records (by walking the chain).
func (rs *RecordStore) Len() (int, error) {
	n := 0
	page := rs.head
	for page != InvalidPage {
		f, err := rs.pool.Fetch(page)
		if err != nil {
			return 0, err
		}
		p := slotPage(f.Data)
		n += p.nlive()
		next := p.next()
		rs.pool.Unpin(f, false)
		page = next
	}
	return n, nil
}

// DataPages returns the number of pages in the record chain.
func (rs *RecordStore) DataPages() (int, error) {
	n := 0
	page := rs.head
	for page != InvalidPage {
		f, err := rs.pool.Fetch(page)
		if err != nil {
			return 0, err
		}
		next := slotPage(f.Data).next()
		rs.pool.Unpin(f, false)
		page = next
		n++
	}
	return n, nil
}

// CheckInvariants verifies chain and page-level invariants; it is used by
// tests and returns the first violation found.
func (rs *RecordStore) CheckInvariants() error {
	page := rs.head
	var prev PageID
	for page != InvalidPage {
		f, err := rs.pool.Fetch(page)
		if err != nil {
			return err
		}
		p := slotPage(f.Data)
		if p.typ() != pageData {
			rs.pool.Unpin(f, false)
			return fmt.Errorf("page %d: not a data page", page)
		}
		if p.prev() != prev {
			rs.pool.Unpin(f, false)
			return fmt.Errorf("page %d: prev = %d, want %d", page, p.prev(), prev)
		}
		// Order list must be consistent with nlive and doubly linked.
		count := 0
		ps := uint16(nilSlot)
		for s := p.firstSlot(); s != nilSlot; s = p.slotNext(s) {
			if p.slotPrev(s) != ps {
				rs.pool.Unpin(f, false)
				return fmt.Errorf("page %d slot %d: bad prev link", page, s)
			}
			if !p.live(s) {
				rs.pool.Unpin(f, false)
				return fmt.Errorf("page %d slot %d: dead slot in order list", page, s)
			}
			off := int(p.slotPayloadOff(s))
			if off < p.heapStart() || off+int(p.slotLen(s)) > p.usable() {
				rs.pool.Unpin(f, false)
				return fmt.Errorf("page %d slot %d: payload out of heap", page, s)
			}
			ps = s
			count++
			if count > p.nslots() {
				rs.pool.Unpin(f, false)
				return fmt.Errorf("page %d: order list cycle", page)
			}
		}
		if p.lastSlot() != ps {
			rs.pool.Unpin(f, false)
			return fmt.Errorf("page %d: lastSlot = %d, want %d", page, p.lastSlot(), ps)
		}
		if count != p.nlive() {
			rs.pool.Unpin(f, false)
			return fmt.Errorf("page %d: nlive = %d, order list has %d", page, p.nlive(), count)
		}
		next := p.next()
		rs.pool.Unpin(f, false)
		prev = page
		page = next
	}
	if prev != rs.tail {
		return fmt.Errorf("tail = %d, chain ends at %d", rs.tail, prev)
	}
	return nil
}
