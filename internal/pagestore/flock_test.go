//go:build unix

package pagestore

import (
	"errors"
	"path/filepath"
	"testing"
)

func TestSecondWritableOpenFailsFast(t *testing.T) {
	path := filepath.Join(t.TempDir(), "locked.db")
	p1, err := OpenFilePager(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	// A second writable open of the same store must fail with the typed
	// error, not wait and not succeed.
	if _, err := OpenFilePager(path, 1024); !errors.Is(err, ErrStoreLocked) {
		t.Fatalf("second open: got %v, want ErrStoreLocked", err)
	}
	// A read-only open is excluded by the writer too.
	if _, err := OpenFilePagerOpts(path, 1024, FileOpts{ReadOnly: true}); !errors.Is(err, ErrStoreLocked) {
		t.Fatalf("read-only open under writer: got %v, want ErrStoreLocked", err)
	}
	// Close releases the lock; the store is reusable.
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := OpenFilePager(path, 1024)
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	p2.Close()
}

func TestReadOnlyOpensShareTheLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.db")
	// Seed a page so read-only opens have something to read.
	w, err := OpenFilePager(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	id, err := w.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	copy(buf, "read-only payload")
	if err := w.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r1, err := OpenFilePagerOpts(path, 1024, FileOpts{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	r2, err := OpenFilePagerOpts(path, 1024, FileOpts{ReadOnly: true})
	if err != nil {
		t.Fatalf("two read-only opens must coexist: %v", err)
	}
	defer r2.Close()
	// A writer is excluded while readers hold the shared lock.
	if _, err := OpenFilePager(path, 1024); !errors.Is(err, ErrStoreLocked) {
		t.Fatalf("writer under readers: got %v, want ErrStoreLocked", err)
	}
	// Reads work; every mutation is rejected with the typed error.
	got := make([]byte, 1024)
	if err := r1.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if string(got[:17]) != "read-only payload" {
		t.Errorf("read-only read returned %q", got[:17])
	}
	if _, err := r1.Allocate(); !errors.Is(err, ErrReadOnlyFile) {
		t.Errorf("Allocate: %v", err)
	}
	if err := r1.WritePage(id, buf); !errors.Is(err, ErrReadOnlyFile) {
		t.Errorf("WritePage: %v", err)
	}
	if err := r1.Free(id); !errors.Is(err, ErrReadOnlyFile) {
		t.Errorf("Free: %v", err)
	}
	if err := r1.Sync(); err != nil {
		t.Errorf("Sync on read-only pager: %v", err)
	}
}

func TestNoLockOptSkipsExclusion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nolock.db")
	p1, err := OpenFilePager(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	// Harness escape hatch: NoLock bypasses the advisory lock.
	p2, err := OpenFilePagerOpts(path, 1024, FileOpts{NoLock: true})
	if err != nil {
		t.Fatalf("NoLock open: %v", err)
	}
	p2.Close()
}
