//go:build !unix

package pagestore

import "os"

// flockFile is a no-op on platforms without flock semantics: cross-process
// exclusion is only enforced on unix. Single-process discipline (the lock
// manager) is unaffected.
func flockFile(f *os.File, exclusive bool) error { return nil }
