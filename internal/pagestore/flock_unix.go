//go:build unix

package pagestore

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// flockFile takes an advisory lock on f without blocking: exclusive for
// writable pagers, shared for read-only ones. A conflicting holder in
// another process yields ErrStoreLocked immediately (fail-fast, never a
// silent wait on someone else's store). The lock is tied to the open file
// description, so Close releases it.
func flockFile(f *os.File, exclusive bool) error {
	how := syscall.LOCK_SH
	if exclusive {
		how = syscall.LOCK_EX
	}
	err := syscall.Flock(int(f.Fd()), how|syscall.LOCK_NB)
	if err == nil {
		return nil
	}
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return fmt.Errorf("%w: %s", ErrStoreLocked, f.Name())
	}
	return fmt.Errorf("pagestore: flock %s: %w", f.Name(), err)
}
