package pagestore

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
)

// RecordStore maintains an ordered sequence of variable-length records on a
// doubly-chained list of slotted pages. The store's Ranges are records; the
// page chain order is document order. Records have stable addresses (page,
// slot) that change only on page splits; every split reports the relocations
// so the caller can repair its indexes.
//
// Records larger than a page are transparently spilled to overflow chains; a
// small stub remains in the slotted page so ordering and addressing are
// uniform.

// Loc addresses a record.
type Loc struct {
	Page PageID
	Slot uint16
}

// NilLoc is the zero, invalid location.
var NilLoc = Loc{}

// IsNil reports whether the location is unset.
func (l Loc) IsNil() bool { return l.Page == InvalidPage }

func (l Loc) String() string { return fmt.Sprintf("(%d.%d)", l.Page, l.Slot) }

// Move records a relocation of a record during a page split.
type Move struct {
	From, To Loc
}

// Record store errors.
var (
	ErrNoRecord  = errors.New("pagestore: no record at location")
	ErrTooLarge  = errors.New("pagestore: record exceeds maximum size")
	ErrBadMeta   = errors.New("pagestore: malformed meta page")
	ErrBadHandle = errors.New("pagestore: operation on empty store")
)

// Payload stubs: first byte distinguishes inline from overflowed records.
const (
	recInline   = 0
	recOverflow = 1
	stubSize    = 1 + 4 + 4 // flag + total length + first overflow page
)

// Overflow page header: type, flags, used(2), next(4).
const ovflHeader = 8

// MaxRecordSize bounds a record's total payload.
const MaxRecordSize = 1 << 30

// RecordStore is not safe for concurrent use; the owning store serializes
// access.
type RecordStore struct {
	pool *BufferPool
	meta PageID // meta page id
	head PageID // first data page
	tail PageID // last data page
}

// CreateRecordStore formats a new store on the pool: a meta page plus one
// empty data page.
func CreateRecordStore(pool *BufferPool) (*RecordStore, error) {
	mf, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(mf, true)
	df, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(df, true)
	initDataPage(df.Data)

	rs := &RecordStore{pool: pool, meta: mf.ID, head: df.ID, tail: df.ID}
	rs.writeMeta(mf.Data, nil)
	return rs, nil
}

// OpenRecordStore reopens a store whose meta page id is known (by
// convention, the first allocated page).
func OpenRecordStore(pool *BufferPool, meta PageID) (*RecordStore, error) {
	mf, err := pool.Fetch(meta)
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(mf, false)
	p := slotPage(mf.Data)
	if p.typ() != pageMeta {
		return nil, ErrBadMeta
	}
	rs := &RecordStore{
		pool: pool,
		meta: meta,
		head: PageID(binary.LittleEndian.Uint32(mf.Data[2:])),
		tail: PageID(binary.LittleEndian.Uint32(mf.Data[6:])),
	}
	return rs, nil
}

// MetaPage returns the meta page id (persist it to reopen the store).
func (rs *RecordStore) MetaPage() PageID { return rs.meta }

// Pool returns the underlying buffer pool.
func (rs *RecordStore) Pool() *BufferPool { return rs.pool }

// writeMeta lays out the meta page: type byte, flags, head, tail, user blob.
func (rs *RecordStore) writeMeta(b []byte, user []byte) {
	b[0] = pageMeta
	b[1] = 0
	binary.LittleEndian.PutUint32(b[2:], uint32(rs.head))
	binary.LittleEndian.PutUint32(b[6:], uint32(rs.tail))
	binary.LittleEndian.PutUint16(b[10:], uint16(len(user)))
	copy(b[12:], user)
}

func (rs *RecordStore) syncMeta() error {
	mf, err := rs.pool.Fetch(rs.meta)
	if err != nil {
		return err
	}
	defer rs.pool.Unpin(mf, true)
	// Preserve the user blob.
	ul := binary.LittleEndian.Uint16(mf.Data[10:])
	user := make([]byte, ul)
	copy(user, mf.Data[12:12+int(ul)])
	rs.writeMeta(mf.Data, user)
	return nil
}

// SetUserMeta stores an application blob (up to page size - 12 bytes) in the
// meta page. The core store persists its ID allocator state here.
func (rs *RecordStore) SetUserMeta(user []byte) error {
	if len(user) > rs.pool.UsablePageSize()-12 {
		return ErrTooLarge
	}
	mf, err := rs.pool.Fetch(rs.meta)
	if err != nil {
		return err
	}
	defer rs.pool.Unpin(mf, true)
	rs.writeMeta(mf.Data, user)
	return nil
}

// UserMeta returns the application blob from the meta page.
func (rs *RecordStore) UserMeta() ([]byte, error) {
	mf, err := rs.pool.Fetch(rs.meta)
	if err != nil {
		return nil, err
	}
	defer rs.pool.Unpin(mf, false)
	ul := int(binary.LittleEndian.Uint16(mf.Data[10:]))
	out := make([]byte, ul)
	copy(out, mf.Data[12:12+ul])
	return out, nil
}

// inlineMax is the largest payload stored directly in a data page.
func (rs *RecordStore) inlineMax() int {
	return rs.pool.UsablePageSize() - headerSize - slotSize
}

// Read returns a copy of the record payload at loc.
func (rs *RecordStore) Read(loc Loc) ([]byte, error) {
	return rs.ReadCtx(context.Background(), loc)
}

// ReadCtx is Read with cooperative cancellation: ctx is checked before the
// first page view and again between overflow-chain hops, so a deadline or
// cancellation stops a long chain walk at the next page boundary instead of
// running it to completion. Records read whole stay whole — cancellation
// never returns a partial payload.
func (rs *RecordStore) ReadCtx(ctx context.Context, loc Loc) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []byte
	var total int
	next := InvalidPage
	err := rs.pool.View(loc.Page, func(data []byte) error {
		p := slotPage(data)
		if p.typ() != pageData || !p.live(loc.Slot) {
			return fmt.Errorf("%w: %v", ErrNoRecord, loc)
		}
		stored := p.payload(loc.Slot)
		if len(stored) == 0 {
			return fmt.Errorf("pagestore: empty stored payload")
		}
		if stored[0] == recInline {
			out = make([]byte, len(stored)-1)
			copy(out, stored[1:])
			return nil
		}
		if len(stored) < stubSize {
			return fmt.Errorf("pagestore: truncated overflow stub")
		}
		total = int(binary.LittleEndian.Uint32(stored[1:]))
		next = PageID(binary.LittleEndian.Uint32(stored[5:]))
		return nil
	})
	if err != nil || next == InvalidPage {
		return out, err
	}
	out = make([]byte, 0, total)
	for next != InvalidPage {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		err := rs.pool.View(next, func(data []byte) error {
			used := int(binary.LittleEndian.Uint16(data[2:]))
			out = append(out, data[ovflHeader:ovflHeader+used]...)
			next = PageID(binary.LittleEndian.Uint32(data[4:]))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if len(out) != total {
		return nil, fmt.Errorf("pagestore: overflow chain length %d, want %d", len(out), total)
	}
	return out, nil
}

// ReadCtxInto is ReadCtx reading into the caller's buffer: the payload is
// appended to dst[:0] and the (possibly grown) slice returned, so a reader
// that walks many records can reuse one scratch allocation. dst may be nil.
func (rs *RecordStore) ReadCtxInto(ctx context.Context, loc Loc, dst []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := dst[:0]
	var total int
	next := InvalidPage
	err := rs.pool.View(loc.Page, func(data []byte) error {
		p := slotPage(data)
		if p.typ() != pageData || !p.live(loc.Slot) {
			return fmt.Errorf("%w: %v", ErrNoRecord, loc)
		}
		stored := p.payload(loc.Slot)
		if len(stored) == 0 {
			return fmt.Errorf("pagestore: empty stored payload")
		}
		if stored[0] == recInline {
			out = append(out, stored[1:]...)
			return nil
		}
		if len(stored) < stubSize {
			return fmt.Errorf("pagestore: truncated overflow stub")
		}
		total = int(binary.LittleEndian.Uint32(stored[1:]))
		next = PageID(binary.LittleEndian.Uint32(stored[5:]))
		return nil
	})
	if err != nil || next == InvalidPage {
		return out, err
	}
	for next != InvalidPage {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		err := rs.pool.View(next, func(data []byte) error {
			used := int(binary.LittleEndian.Uint16(data[2:]))
			out = append(out, data[ovflHeader:ovflHeader+used]...)
			next = PageID(binary.LittleEndian.Uint32(data[4:]))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if len(out) != total {
		return nil, fmt.Errorf("pagestore: overflow chain length %d, want %d", len(out), total)
	}
	return out, nil
}

// ReadSlice returns payload[off : off+length] of the record at loc without
// materializing the rest of the record — the cheap path for indexed point
// reads into large records.
func (rs *RecordStore) ReadSlice(loc Loc, off, length int) ([]byte, error) {
	if off < 0 || length < 0 {
		return nil, fmt.Errorf("pagestore: negative slice bounds")
	}
	var out []byte
	var total int
	next := InvalidPage
	err := rs.pool.View(loc.Page, func(data []byte) error {
		p := slotPage(data)
		if p.typ() != pageData || !p.live(loc.Slot) {
			return fmt.Errorf("%w: %v", ErrNoRecord, loc)
		}
		stored := p.payload(loc.Slot)
		if len(stored) == 0 {
			return fmt.Errorf("pagestore: empty stored payload")
		}
		if stored[0] == recInline {
			body := stored[1:]
			if off+length > len(body) {
				return fmt.Errorf("pagestore: slice [%d:%d] beyond record of %d bytes", off, off+length, len(body))
			}
			out = make([]byte, length)
			copy(out, body[off:off+length])
			return nil
		}
		if len(stored) < stubSize {
			return fmt.Errorf("pagestore: truncated overflow stub")
		}
		total = int(binary.LittleEndian.Uint32(stored[1:]))
		next = PageID(binary.LittleEndian.Uint32(stored[5:]))
		return nil
	})
	if err != nil || next == InvalidPage {
		return out, err
	}
	// Overflowed record: walk the chain, skipping chunks before off.
	if off+length > total {
		return nil, fmt.Errorf("pagestore: slice [%d:%d] beyond record of %d bytes", off, off+length, total)
	}
	out = make([]byte, 0, length)
	pos := 0
	for next != InvalidPage && len(out) < length {
		err := rs.pool.View(next, func(data []byte) error {
			used := int(binary.LittleEndian.Uint16(data[2:]))
			chunk := data[ovflHeader : ovflHeader+used]
			if pos+used > off {
				lo := 0
				if off > pos {
					lo = off - pos
				}
				hi := used
				if pos+hi > off+length {
					hi = off + length - pos
				}
				out = append(out, chunk[lo:hi]...)
			}
			pos += used
			next = PageID(binary.LittleEndian.Uint32(data[4:]))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if len(out) != length {
		return nil, fmt.Errorf("pagestore: overflow chain ended early (%d of %d bytes)", len(out), length)
	}
	return out, nil
}

// resolve expands a stored payload, following overflow chains.
func (rs *RecordStore) resolve(stored []byte) ([]byte, error) {
	if len(stored) == 0 {
		return nil, fmt.Errorf("pagestore: empty stored payload")
	}
	if stored[0] == recInline {
		out := make([]byte, len(stored)-1)
		copy(out, stored[1:])
		return out, nil
	}
	if len(stored) < stubSize {
		return nil, fmt.Errorf("pagestore: truncated overflow stub")
	}
	total := int(binary.LittleEndian.Uint32(stored[1:]))
	next := PageID(binary.LittleEndian.Uint32(stored[5:]))
	out := make([]byte, 0, total)
	for next != InvalidPage {
		f, err := rs.pool.Fetch(next)
		if err != nil {
			return nil, err
		}
		used := int(binary.LittleEndian.Uint16(f.Data[2:]))
		out = append(out, f.Data[ovflHeader:ovflHeader+used]...)
		next = PageID(binary.LittleEndian.Uint32(f.Data[4:]))
		rs.pool.Unpin(f, false)
	}
	if len(out) != total {
		return nil, fmt.Errorf("pagestore: overflow chain length %d, want %d", len(out), total)
	}
	return out, nil
}

// encode prepares the stored form of data, spilling to overflow if needed.
func (rs *RecordStore) encode(data []byte) ([]byte, error) {
	if len(data) > MaxRecordSize {
		return nil, ErrTooLarge
	}
	if len(data)+1 <= rs.inlineMax() {
		out := make([]byte, len(data)+1)
		out[0] = recInline
		copy(out[1:], data)
		return out, nil
	}
	first, err := rs.writeOverflow(data)
	if err != nil {
		return nil, err
	}
	stub := make([]byte, stubSize)
	stub[0] = recOverflow
	binary.LittleEndian.PutUint32(stub[1:], uint32(len(data)))
	binary.LittleEndian.PutUint32(stub[5:], uint32(first))
	return stub, nil
}

func (rs *RecordStore) writeOverflow(data []byte) (PageID, error) {
	chunk := rs.pool.UsablePageSize() - ovflHeader
	var first, prev PageID
	var prevFrame *Frame
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		f, err := rs.pool.NewPage()
		if err != nil {
			return InvalidPage, err
		}
		f.Data[0] = pageOverflow
		f.Data[1] = 0
		binary.LittleEndian.PutUint16(f.Data[2:], uint16(end-off))
		binary.LittleEndian.PutUint32(f.Data[4:], 0)
		copy(f.Data[ovflHeader:], data[off:end])
		if prev == InvalidPage {
			first = f.ID
		} else {
			binary.LittleEndian.PutUint32(prevFrame.Data[4:], uint32(f.ID))
			rs.pool.Unpin(prevFrame, true)
		}
		prev, prevFrame = f.ID, f
	}
	if prevFrame != nil {
		rs.pool.Unpin(prevFrame, true)
	}
	return first, nil
}

// freeOverflow releases an overflow chain referenced by a stored payload.
func (rs *RecordStore) freeOverflow(stored []byte) error {
	if len(stored) == 0 || stored[0] != recOverflow {
		return nil
	}
	next := PageID(binary.LittleEndian.Uint32(stored[5:]))
	for next != InvalidPage {
		f, err := rs.pool.Fetch(next)
		if err != nil {
			return err
		}
		nn := PageID(binary.LittleEndian.Uint32(f.Data[4:]))
		if err := rs.pool.FreePage(f); err != nil {
			return err
		}
		next = nn
	}
	return nil
}
