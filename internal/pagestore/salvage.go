package pagestore

import (
	"encoding/binary"
	"fmt"
)

// Raw page inspection for the recovery subsystem.
//
// InspectPage classifies an arbitrary page image using nothing but the
// slotted-page layout invariants — no buffer pool, no record store, no
// assumption that the image came from a healthy file. It is the first line
// of the salvage pipeline: pages whose checksum verifies but whose structure
// lies are caught here, before their contents can mislead the chain walk.
//
// The function must never panic, whatever bytes it is handed: every offset
// and length read from the image is bounds-checked before use. The fuzz
// target in salvage_test.go holds it to that.

// PageKind is the salvage-level classification of a raw page image.
type PageKind int

const (
	// KindFree is an unused page (type byte 0, e.g. freshly allocated).
	KindFree PageKind = iota
	// KindMeta is a record-store meta page.
	KindMeta
	// KindData is a slotted data page.
	KindData
	// KindOverflow is an overflow-chain page.
	KindOverflow
	// KindUnknown is a page whose type byte matches no known layout
	// (index pages of other subsystems land here; see diskbtree.InspectNode).
	KindUnknown
)

func (k PageKind) String() string {
	switch k {
	case KindFree:
		return "free"
	case KindMeta:
		return "meta"
	case KindData:
		return "data"
	case KindOverflow:
		return "overflow"
	}
	return "unknown"
}

// RawRecord is one live record payload found on a data page, in record
// order. Stored is the stored form (inline body or overflow stub), copied
// out of the page image.
type RawRecord struct {
	Slot   uint16
	Stored []byte
}

// PageInfo is the result of classifying one raw page image.
type PageInfo struct {
	Kind PageKind
	// Err reports a structural violation for the claimed kind; the page
	// should be quarantined, not trusted. Kind keeps the claimed type.
	Err error

	// Data pages.
	Next, Prev PageID
	Records    []RawRecord

	// Meta pages.
	MetaHead, MetaTail PageID
	MetaUser           []byte

	// Overflow pages.
	OvflUsed int
	OvflNext PageID
}

// InspectPage classifies a full page image (including the checksum trailer,
// which it ignores — verify separately with VerifyChecksum). It never
// panics on arbitrary input.
func InspectPage(b []byte) PageInfo {
	if len(b) < headerSize+PageTrailerSize {
		return PageInfo{Kind: KindUnknown, Err: fmt.Errorf("pagestore: image of %d bytes is smaller than a page header", len(b))}
	}
	switch b[0] {
	case pageFree:
		return PageInfo{Kind: KindFree}
	case pageMeta:
		return inspectMeta(b)
	case pageData:
		return inspectData(b)
	case pageOverflow:
		return inspectOverflow(b)
	}
	return PageInfo{Kind: KindUnknown, Err: fmt.Errorf("pagestore: unknown page type %#x", b[0])}
}

func inspectMeta(b []byte) PageInfo {
	info := PageInfo{Kind: KindMeta}
	usable := len(b) - PageTrailerSize
	ul := int(binary.LittleEndian.Uint16(b[10:]))
	if 12+ul > usable {
		info.Err = fmt.Errorf("pagestore: meta user blob of %d bytes overruns the page", ul)
		return info
	}
	info.MetaHead = PageID(binary.LittleEndian.Uint32(b[2:]))
	info.MetaTail = PageID(binary.LittleEndian.Uint32(b[6:]))
	info.MetaUser = append([]byte(nil), b[12:12+ul]...)
	if info.MetaHead == InvalidPage || info.MetaTail == InvalidPage {
		info.Err = fmt.Errorf("pagestore: meta page names invalid chain endpoints (head %d, tail %d)", info.MetaHead, info.MetaTail)
	}
	return info
}

func inspectData(b []byte) PageInfo {
	p := slotPage(b)
	info := PageInfo{Kind: KindData, Next: p.next(), Prev: p.prev()}
	usable := p.usable()
	nslots := p.nslots()
	heap := p.heapStart()
	if headerSize+nslots*slotSize > heap {
		info.Err = fmt.Errorf("pagestore: slot table (%d slots) overruns heap start %d", nslots, heap)
		return info
	}
	if heap > usable {
		info.Err = fmt.Errorf("pagestore: heap start %d beyond usable size %d", heap, usable)
		return info
	}
	// Walk the record-order list, validating every hop. The visit counter
	// bounds cycles: a healthy list visits each slot at most once.
	var (
		visited = make(map[uint16]bool, nslots)
		prev    = uint16(nilSlot)
		last    = uint16(nilSlot)
		count   int
	)
	for s := p.firstSlot(); s != nilSlot; s = p.slotNext(s) {
		if int(s) >= nslots {
			info.Err = fmt.Errorf("pagestore: order list names slot %d of %d", s, nslots)
			return info
		}
		if visited[s] {
			info.Err = fmt.Errorf("pagestore: order list cycles at slot %d", s)
			return info
		}
		visited[s] = true
		off := p.slotPayloadOff(s)
		length := p.slotLen(s)
		if off == nilSlot {
			info.Err = fmt.Errorf("pagestore: order list includes free slot %d", s)
			return info
		}
		if int(off) < heap || int(off)+int(length) > usable {
			info.Err = fmt.Errorf("pagestore: slot %d payload [%d:%d] outside heap [%d:%d]", s, off, int(off)+int(length), heap, usable)
			return info
		}
		if p.slotPrev(s) != prev {
			info.Err = fmt.Errorf("pagestore: slot %d back-link %d, want %d", s, p.slotPrev(s), prev)
			return info
		}
		stored := append([]byte(nil), b[off:int(off)+int(length)]...)
		if _, err := DecodeStored(stored); err != nil {
			info.Err = fmt.Errorf("pagestore: slot %d: %w", s, err)
			return info
		}
		info.Records = append(info.Records, RawRecord{Slot: s, Stored: stored})
		prev, last = s, s
		count++
	}
	if count != p.nlive() {
		info.Err = fmt.Errorf("pagestore: order list has %d records, header says %d", count, p.nlive())
		return info
	}
	if p.lastSlot() != last {
		info.Err = fmt.Errorf("pagestore: last slot %d, order list ends at %d", p.lastSlot(), last)
		return info
	}
	return info
}

func inspectOverflow(b []byte) PageInfo {
	info := PageInfo{Kind: KindOverflow}
	used := int(binary.LittleEndian.Uint16(b[2:]))
	max := len(b) - PageTrailerSize - ovflHeader
	if used <= 0 || used > max {
		info.Err = fmt.Errorf("pagestore: overflow page holds %d bytes (chunk max %d)", used, max)
		return info
	}
	info.OvflUsed = used
	info.OvflNext = PageID(binary.LittleEndian.Uint32(b[4:]))
	return info
}

// StoredRef is the decoded form of a stored record payload: either the
// inline body or an overflow-chain reference.
type StoredRef struct {
	Inline bool
	Data   []byte // inline body (aliases the input slice)
	Total  int    // overflow: total record bytes
	First  PageID // overflow: first chain page
}

// DecodeStored splits a stored payload into inline body or overflow stub.
// It performs only shape validation; overflow chains are resolved by the
// caller (see OverflowChunk for the per-page capacity).
func DecodeStored(stored []byte) (StoredRef, error) {
	if len(stored) == 0 {
		return StoredRef{}, fmt.Errorf("empty stored payload")
	}
	switch stored[0] {
	case recInline:
		return StoredRef{Inline: true, Data: stored[1:]}, nil
	case recOverflow:
		if len(stored) < stubSize {
			return StoredRef{}, fmt.Errorf("truncated overflow stub (%d bytes)", len(stored))
		}
		total := int(binary.LittleEndian.Uint32(stored[1:]))
		first := PageID(binary.LittleEndian.Uint32(stored[5:]))
		if total < 0 || total > MaxRecordSize {
			return StoredRef{}, fmt.Errorf("overflow stub total %d out of range", total)
		}
		if first == InvalidPage {
			return StoredRef{}, fmt.Errorf("overflow stub with no chain")
		}
		return StoredRef{Total: total, First: first}, nil
	}
	return StoredRef{}, fmt.Errorf("unknown stub flag %d", stored[0])
}

// OverflowChunk returns the payload capacity of one overflow page for the
// given (full) page size.
func OverflowChunk(pageSize int) int {
	return pageSize - PageTrailerSize - ovflHeader
}

// ReadOverflowData returns the chunk bytes of an overflow page image whose
// PageInfo has already validated the header (aliases the image).
func ReadOverflowData(b []byte, used int) []byte {
	return b[ovflHeader : ovflHeader+used]
}
