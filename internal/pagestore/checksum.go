package pagestore

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Per-page checksums.
//
// The last PageTrailerSize bytes of every page are reserved for a CRC32
// (IEEE) of the rest of the page. The trailer is stamped by the buffer pool
// when a page is written back to the pager and verified when a page is
// fetched from the pager, so corruption introduced below the pool — torn
// writes, bit rot, faulty media — is detected at the first read instead of
// propagating into the store's structures.
//
// A trailer of zero means "no checksum": freshly allocated pages read back
// as all zeros and are accepted, which also keeps page files written before
// checksumming existed readable. A computed CRC of zero is mapped to 1 so
// that zero stays unambiguous.

// PageTrailerSize is the number of bytes at the end of every page reserved
// for the page checksum. Page layouts (slotted pages, overflow pages, index
// nodes) must not place data there.
const PageTrailerSize = 4

// ErrCorruptPage reports a page whose contents do not match its checksum.
var ErrCorruptPage = errors.New("pagestore: page checksum mismatch")

// pageCRC computes the checksum of a page image (excluding the trailer),
// mapping 0 to 1 so that a zero trailer always means "unchecksummed".
func pageCRC(body []byte) uint32 {
	c := crc32.ChecksumIEEE(body)
	if c == 0 {
		c = 1
	}
	return c
}

// StampChecksum writes the checksum trailer of a full page image in place.
func StampChecksum(page []byte) {
	n := len(page)
	c := pageCRC(page[:n-PageTrailerSize])
	page[n-4] = byte(c)
	page[n-3] = byte(c >> 8)
	page[n-2] = byte(c >> 16)
	page[n-1] = byte(c >> 24)
}

// VerifyChecksum checks a full page image against its trailer. A zero
// trailer (never-stamped page) passes. The returned error wraps
// ErrCorruptPage.
func VerifyChecksum(id PageID, page []byte) error {
	n := len(page)
	stored := uint32(page[n-4]) | uint32(page[n-3])<<8 |
		uint32(page[n-2])<<16 | uint32(page[n-1])<<24
	if stored == 0 {
		return nil
	}
	if got := pageCRC(page[:n-PageTrailerSize]); got != stored {
		return fmt.Errorf("%w: page %d (stored %08x, computed %08x)",
			ErrCorruptPage, id, stored, got)
	}
	return nil
}
