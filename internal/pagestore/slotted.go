package pagestore

import "encoding/binary"

// Slotted data pages.
//
// A data page holds variable-length record payloads in a heap growing down
// from the end of the page, addressed through a slot table growing up from
// the header. Slot ids are stable for the life of a record on the page: the
// record order is maintained as a doubly-linked list threaded through the
// slot entries, so inserting or deleting a record never renumbers its
// neighbours. Records therefore only "move" (change address) when a page
// splits — the caller receives explicit move notifications for index
// maintenance.
//
// Layout:
//
//	header  (24 bytes)
//	  0  type       byte   (pageData, pageOverflow, pageMeta)
//	  1  flags      byte
//	  2  nslots     uint16  slot table size, including free slots
//	  4  nlive      uint16  live records
//	  6  heapStart  uint16  lowest offset occupied by the heap
//	  8  firstSlot  uint16  order list head (nilSlot if empty)
//	  10 lastSlot   uint16  order list tail
//	  12 freeSlot   uint16  free slot chain head
//	  14 next       uint32  next page in document-order chain
//	  18 prev       uint32  previous page
//	  22 (reserved) uint16
//	slot table (8 bytes per slot, from offset 24)
//	  +0 off   uint16  heap offset of payload (nilSlot when slot is free)
//	  +2 len   uint16  payload length
//	  +4 next  uint16  next slot in record order / next free slot
//	  +6 prev  uint16  previous slot in record order
//	free space
//	heap (grows down from the page end)

// Page types.
const (
	pageFree     = 0
	pageData     = 1
	pageOverflow = 2
	pageMeta     = 3
)

const (
	headerSize = 24
	slotSize   = 8
	nilSlot    = 0xFFFF
)

type slotPage []byte

func (p slotPage) typ() byte     { return p[0] }
func (p slotPage) setTyp(t byte) { p[0] = t }
func (p slotPage) nslots() int   { return int(binary.LittleEndian.Uint16(p[2:])) }
func (p slotPage) setNslots(n int) {
	binary.LittleEndian.PutUint16(p[2:], uint16(n))
}
func (p slotPage) nlive() int { return int(binary.LittleEndian.Uint16(p[4:])) }
func (p slotPage) setNlive(n int) {
	binary.LittleEndian.PutUint16(p[4:], uint16(n))
}
func (p slotPage) heapStart() int { return int(binary.LittleEndian.Uint16(p[6:])) }
func (p slotPage) setHeapStart(n int) {
	binary.LittleEndian.PutUint16(p[6:], uint16(n))
}
func (p slotPage) firstSlot() uint16 { return binary.LittleEndian.Uint16(p[8:]) }
func (p slotPage) setFirstSlot(s uint16) {
	binary.LittleEndian.PutUint16(p[8:], s)
}
func (p slotPage) lastSlot() uint16 { return binary.LittleEndian.Uint16(p[10:]) }
func (p slotPage) setLastSlot(s uint16) {
	binary.LittleEndian.PutUint16(p[10:], s)
}
func (p slotPage) freeSlot() uint16 { return binary.LittleEndian.Uint16(p[12:]) }
func (p slotPage) setFreeSlot(s uint16) {
	binary.LittleEndian.PutUint16(p[12:], s)
}
func (p slotPage) next() PageID { return PageID(binary.LittleEndian.Uint32(p[14:])) }
func (p slotPage) setNext(id PageID) {
	binary.LittleEndian.PutUint32(p[14:], uint32(id))
}
func (p slotPage) prev() PageID { return PageID(binary.LittleEndian.Uint32(p[18:])) }
func (p slotPage) setPrev(id PageID) {
	binary.LittleEndian.PutUint32(p[18:], uint32(id))
}

func slotOff(s uint16) int { return headerSize + int(s)*slotSize }

func (p slotPage) slotPayloadOff(s uint16) uint16 {
	return binary.LittleEndian.Uint16(p[slotOff(s):])
}
func (p slotPage) setSlotPayloadOff(s, v uint16) {
	binary.LittleEndian.PutUint16(p[slotOff(s):], v)
}
func (p slotPage) slotLen(s uint16) uint16 {
	return binary.LittleEndian.Uint16(p[slotOff(s)+2:])
}
func (p slotPage) setSlotLen(s, v uint16) {
	binary.LittleEndian.PutUint16(p[slotOff(s)+2:], v)
}
func (p slotPage) slotNext(s uint16) uint16 {
	return binary.LittleEndian.Uint16(p[slotOff(s)+4:])
}
func (p slotPage) setSlotNext(s, v uint16) {
	binary.LittleEndian.PutUint16(p[slotOff(s)+4:], v)
}
func (p slotPage) slotPrev(s uint16) uint16 {
	return binary.LittleEndian.Uint16(p[slotOff(s)+6:])
}
func (p slotPage) setSlotPrev(s, v uint16) {
	binary.LittleEndian.PutUint16(p[slotOff(s)+6:], v)
}

// usable returns the page bytes available to the slotted layout: the heap
// grows down from here, leaving the checksum trailer untouched.
func (p slotPage) usable() int { return len(p) - PageTrailerSize }

// initDataPage formats b as an empty data page.
func initDataPage(b []byte) {
	for i := range b[:headerSize] {
		b[i] = 0
	}
	p := slotPage(b)
	p.setTyp(pageData)
	p.setHeapStart(p.usable())
	p.setFirstSlot(nilSlot)
	p.setLastSlot(nilSlot)
	p.setFreeSlot(nilSlot)
}

// payload returns the record bytes of a live slot (aliasing the page buffer).
func (p slotPage) payload(s uint16) []byte {
	off := p.slotPayloadOff(s)
	return p[off : off+p.slotLen(s)]
}

// live reports whether slot s holds a record.
func (p slotPage) live(s uint16) bool {
	return int(s) < p.nslots() && p.slotPayloadOff(s) != nilSlot
}

// freeSpace returns the bytes available for one more payload including a
// possibly-new slot entry.
func (p slotPage) freeSpace() int {
	slotCost := 0
	if p.freeSlot() == nilSlot {
		slotCost = slotSize
	}
	return p.heapStart() - (headerSize + p.nslots()*slotSize) - slotCost
}

// capacityFor reports whether a payload of length n fits, possibly after
// compaction.
func (p slotPage) capacityFor(n int) bool { return p.freeSpace() >= n }

// allocSlot grabs a slot id from the free chain or extends the table.
// Returns nilSlot if there is no room to extend.
func (p slotPage) allocSlot() uint16 {
	if s := p.freeSlot(); s != nilSlot {
		p.setFreeSlot(p.slotNext(s))
		return s
	}
	n := p.nslots()
	if headerSize+(n+1)*slotSize > p.heapStart() {
		return nilSlot
	}
	p.setNslots(n + 1)
	return uint16(n)
}

func (p slotPage) releaseSlot(s uint16) {
	p.setSlotPayloadOff(s, nilSlot)
	p.setSlotLen(s, 0)
	p.setSlotNext(s, p.freeSlot())
	p.setSlotPrev(s, nilSlot)
	p.setFreeSlot(s)
}

// insertPayload writes the payload into the heap and returns its offset.
// The caller has verified capacity (possibly calling compact first).
func (p slotPage) insertPayload(data []byte) uint16 {
	off := p.heapStart() - len(data)
	copy(p[off:], data)
	p.setHeapStart(off)
	return uint16(off)
}

// insertAfter inserts a record after slot `after` in record order
// (after == nilSlot means insert at the head). It returns the new slot id,
// or nilSlot if the page lacks space (caller should compact or split).
func (p slotPage) insertAfter(after uint16, data []byte) uint16 {
	if !p.capacityFor(len(data)) {
		return nilSlot
	}
	s := p.allocSlot()
	if s == nilSlot {
		return nilSlot
	}
	off := p.insertPayload(data)
	p.setSlotPayloadOff(s, off)
	p.setSlotLen(s, uint16(len(data)))

	var nxt uint16
	if after == nilSlot {
		nxt = p.firstSlot()
		p.setFirstSlot(s)
	} else {
		nxt = p.slotNext(after)
		p.setSlotNext(after, s)
	}
	p.setSlotPrev(s, after)
	p.setSlotNext(s, nxt)
	if nxt == nilSlot {
		p.setLastSlot(s)
	} else {
		p.setSlotPrev(nxt, s)
	}
	p.setNlive(p.nlive() + 1)
	return s
}

// deleteSlot removes the record in slot s from the order list and frees its
// slot. Heap space is reclaimed on the next compaction.
func (p slotPage) deleteSlot(s uint16) {
	prev, next := p.slotPrev(s), p.slotNext(s)
	if prev == nilSlot {
		p.setFirstSlot(next)
	} else {
		p.setSlotNext(prev, next)
	}
	if next == nilSlot {
		p.setLastSlot(prev)
	} else {
		p.setSlotPrev(next, prev)
	}
	p.releaseSlot(s)
	p.setNlive(p.nlive() - 1)
}

// compact repacks the heap so that free space is contiguous. Slot ids and
// record order are unchanged.
func (p slotPage) compact() {
	type rec struct {
		slot uint16
		data []byte
	}
	var recs []rec
	for s := p.firstSlot(); s != nilSlot; s = p.slotNext(s) {
		data := make([]byte, p.slotLen(s))
		copy(data, p.payload(s))
		recs = append(recs, rec{s, data})
	}
	p.setHeapStart(p.usable())
	for _, r := range recs {
		off := p.insertPayload(r.data)
		p.setSlotPayloadOff(r.slot, off)
	}
}

// updateInPlace replaces the payload of slot s if space permits (after
// compaction when needed). Reports success. On failure the old payload is
// discarded (slot length zero) and the caller must complete the relocation
// by deleting the slot and inserting the new payload elsewhere.
func (p slotPage) updateInPlace(s uint16, data []byte) bool {
	if len(data) <= int(p.slotLen(s)) {
		// Shrinking or equal: overwrite in place, truncate length.
		off := p.slotPayloadOff(s)
		copy(p[off:], data)
		p.setSlotLen(s, uint16(len(data)))
		return true
	}
	// Growing: needs heap room for the new copy (old copy freed lazily).
	need := len(data)
	if p.heapStart()-(headerSize+p.nslots()*slotSize) < need {
		// Compact with the old record logically removed.
		p.setSlotLen(s, 0)
		p.compact()
		if p.heapStart()-(headerSize+p.nslots()*slotSize) < need {
			return false
		}
	}
	off := p.insertPayload(data)
	p.setSlotPayloadOff(s, off)
	p.setSlotLen(s, uint16(len(data)))
	return true
}

// slotsInOrder returns the live slots in record order (testing helper).
func (p slotPage) slotsInOrder() []uint16 {
	var out []uint16
	for s := p.firstSlot(); s != nilSlot; s = p.slotNext(s) {
		out = append(out, s)
	}
	return out
}

// usedBytes returns the payload bytes of all live records.
func (p slotPage) usedBytes() int {
	n := 0
	for s := p.firstSlot(); s != nilSlot; s = p.slotNext(s) {
		n += int(p.slotLen(s))
	}
	return n
}
