package pagestore

import "os"

// FlockFile takes the store's advisory lock on an already-open file handle:
// exclusive for a writer, shared for readers. It exists for subsystems that
// manage a raw store-file handle outside a FilePager — the replication
// follower writes shipped page images with plain WriteAt but must still
// exclude every other opener of the file (a concurrent FilePager would
// destroy the apply discipline). A conflicting holder in another process
// yields ErrStoreLocked immediately; the lock is released by closing f. On
// platforms without flock semantics this is a no-op, matching FilePager.
func FlockFile(f *os.File, exclusive bool) error {
	return flockFile(f, exclusive)
}
