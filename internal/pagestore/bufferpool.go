package pagestore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/budget"
)

// Buffer pool errors.
var (
	ErrPoolFull   = errors.New("pagestore: buffer pool full of pinned pages")
	ErrNotPinned  = errors.New("pagestore: unpin of page that is not pinned")
	ErrDoubleFree = errors.New("pagestore: freeing page with pins")
)

// Frame is a page resident in the buffer pool. The Data slice is valid while
// the frame is pinned; callers must not retain it past Unpin.
type Frame struct {
	ID    PageID
	Data  []byte
	pins  int
	dirty bool
	stamp atomic.Uint64 // last-use stamp from the pool clock
}

// PoolStats counts buffer pool traffic. Reads of XML data flow through the
// pool, so these numbers drive the experiments' I/O accounting.
type PoolStats struct {
	Hits      uint64 // Fetch satisfied from memory
	Misses    uint64 // Fetch required pager read
	Evictions uint64 // clean or flushed frames dropped for space
	Flushes   uint64 // dirty pages written back
}

// Shard geometry. Shards multiply only when the pool is big enough that each
// shard keeps a useful working set: small pools (tests pin them tightly)
// stay single-sharded and behave exactly like the classic one-mutex pool.
const (
	maxPoolShards      = 16
	minFramesPerShard  = 32
	poolShardThreshold = 2 * minFramesPerShard
)

// poolShard is one lock stripe: its own frame table and lock. Pages hash to
// exactly one shard, so concurrent reads of distinct pages contend only when
// they collide on a stripe — and resident-page Views share the read lock, so
// point reads of the same hot page scale with cores. Recency lives in
// per-frame atomic stamps rather than a list: stamps need no exclusive
// section on the hit path, and eviction scans the shard for the oldest
// unpinned frame (shards are small, evictions are the cold path).
type poolShard struct {
	mu       sync.RWMutex
	capacity int
	frames   map[PageID]*Frame
}

// BufferPool caches pages with pin-count-aware, approximately-LRU eviction
// (exact under serial access; stamps may interleave under concurrency). It
// is safe for concurrent use: the frame tables are lock-striped by page id
// and the traffic counters are atomic. Pin/unpin semantics, checksum-on-miss,
// and flush-before-evict ordering are identical to the single-mutex pool.
type BufferPool struct {
	pager    Pager
	capacity int
	shards   []*poolShard
	budget   *budget.Budget // nil = unaccounted; set before first use

	clock     atomic.Uint64 // recency stamps
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	flushes   atomic.Uint64
}

// frameOverhead approximates the per-frame bookkeeping bytes beyond the page
// data itself (Frame struct, map entry, LRU element) for budget accounting.
const frameOverhead = 128

// frameCost is the budget charge for one resident frame.
func (bp *BufferPool) frameCost() int64 {
	return int64(bp.pager.PageSize()) + frameOverhead
}

// SetBudget attaches a shared memory budget: every resident frame is charged
// against it, and Fetch/View/NewPage shed cold frames when the pool is over
// its share. Must be called before the pool sees traffic — frames created
// earlier would be uncharged and unbalance the accounting. A nil budget (the
// default) disables accounting.
func (bp *BufferPool) SetBudget(b *budget.Budget) { bp.budget = b }

// NewBufferPool wraps pager with a pool of at most capacity resident pages
// (minimum 4), striped into up to maxPoolShards lock shards.
func NewBufferPool(pager Pager, capacity int) *BufferPool {
	if capacity < 4 {
		capacity = 4
	}
	nshards := capacity / poolShardThreshold
	if nshards > maxPoolShards {
		nshards = maxPoolShards
	}
	if nshards < 1 {
		nshards = 1
	}
	bp := &BufferPool{
		pager:    pager,
		capacity: capacity,
		shards:   make([]*poolShard, nshards),
	}
	per := capacity / nshards
	for i := range bp.shards {
		bp.shards[i] = &poolShard{
			capacity: per,
			frames:   make(map[PageID]*Frame),
		}
	}
	return bp
}

// shard returns the lock stripe owning page id.
func (bp *BufferPool) shard(id PageID) *poolShard {
	if len(bp.shards) == 1 {
		return bp.shards[0]
	}
	// Fibonacci hashing spreads sequentially-allocated page ids evenly.
	h := uint32(id) * 2654435769
	return bp.shards[h>>27%uint32(len(bp.shards))]
}

// Pager returns the underlying pager.
func (bp *BufferPool) Pager() Pager { return bp.pager }

// PageSize returns the page size of the underlying pager.
func (bp *BufferPool) PageSize() int { return bp.pager.PageSize() }

// UsablePageSize returns the page bytes available to layouts built on the
// pool: the page size minus the reserved checksum trailer.
func (bp *BufferPool) UsablePageSize() int {
	return bp.pager.PageSize() - PageTrailerSize
}

// Shards returns the number of lock stripes (introspection and tests).
func (bp *BufferPool) Shards() int { return len(bp.shards) }

// Stats returns a snapshot of the pool counters.
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{
		Hits:      bp.hits.Load(),
		Misses:    bp.misses.Load(),
		Evictions: bp.evictions.Load(),
		Flushes:   bp.flushes.Load(),
	}
}

// ResetStats zeroes the pool counters.
func (bp *BufferPool) ResetStats() {
	bp.hits.Store(0)
	bp.misses.Store(0)
	bp.evictions.Store(0)
	bp.flushes.Store(0)
}

// Fetch pins the page in memory and returns its frame.
func (bp *BufferPool) Fetch(id PageID) (*Frame, error) {
	defer bp.shedForBudget() // after the shard lock is released
	sh := bp.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f, ok := sh.frames[id]; ok {
		bp.hits.Add(1)
		f.stamp.Store(bp.clock.Add(1))
		f.pins++
		return f, nil
	}
	bp.misses.Add(1)
	f, err := bp.newFrameLocked(sh, id)
	if err != nil {
		return nil, err
	}
	if err := bp.pager.ReadPage(id, f.Data); err != nil {
		bp.dropFrameLocked(sh, id)
		return nil, err
	}
	if err := VerifyChecksum(id, f.Data); err != nil {
		bp.dropFrameLocked(sh, id)
		return nil, err
	}
	return f, nil
}

// View runs fn over the page's bytes under the shard lock, without taking a
// pin: one lock acquisition instead of a Fetch/Unpin pair. This is the
// point-read fast path — fn must be short, must not retain the data slice,
// and must not call back into the pool. A resident page needs only the
// shard READ lock (frames cannot be evicted or mutated while any reader
// holds it — evictions and fills take the write lock), so concurrent point
// reads of the same hot page proceed in parallel; only a miss-fill takes
// the exclusive lock. Residency and checksum-on-miss match Fetch exactly.
func (bp *BufferPool) View(id PageID, fn func(data []byte) error) error {
	sh := bp.shard(id)
	sh.mu.RLock()
	if f, ok := sh.frames[id]; ok {
		bp.hits.Add(1)
		f.stamp.Store(bp.clock.Add(1))
		err := fn(f.Data)
		sh.mu.RUnlock()
		return err
	}
	sh.mu.RUnlock()
	defer bp.shedForBudget() // after the shard lock is released
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.frames[id]
	if ok {
		// Raced with another filler; the frame is resident and valid.
		bp.hits.Add(1)
		f.stamp.Store(bp.clock.Add(1))
	} else {
		bp.misses.Add(1)
		var err error
		f, err = bp.newFrameLocked(sh, id)
		if err != nil {
			return err
		}
		if err := bp.pager.ReadPage(id, f.Data); err != nil {
			bp.dropFrameLocked(sh, id)
			return err
		}
		if err := VerifyChecksum(id, f.Data); err != nil {
			bp.dropFrameLocked(sh, id)
			return err
		}
		// newFrameLocked pins; View's protection is the shard lock itself.
		f.pins = 0
	}
	return fn(f.Data)
}

// NewPage allocates a fresh page and returns it pinned and dirty.
func (bp *BufferPool) NewPage() (*Frame, error) {
	defer bp.shedForBudget() // after the shard lock is released
	id, err := bp.pager.Allocate()
	if err != nil {
		return nil, err
	}
	sh := bp.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, err := bp.newFrameLocked(sh, id)
	if err != nil {
		bp.pager.Free(id)
		return nil, err
	}
	f.dirty = true
	return f, nil
}

// newFrameLocked makes room in sh and installs a pinned frame for id.
func (bp *BufferPool) newFrameLocked(sh *poolShard, id PageID) (*Frame, error) {
	if len(sh.frames) >= sh.capacity {
		if err := bp.evictLocked(sh); err != nil {
			return nil, err
		}
	}
	f := &Frame{ID: id, Data: make([]byte, bp.pager.PageSize()), pins: 1}
	f.stamp.Store(bp.clock.Add(1))
	sh.frames[id] = f
	bp.budget.Charge(budget.Pool, bp.frameCost())
	return f, nil
}

// dropFrameLocked removes a frame that never became valid (read or checksum
// failure after newFrameLocked), reversing its budget charge.
func (bp *BufferPool) dropFrameLocked(sh *poolShard, id PageID) {
	delete(sh.frames, id)
	bp.budget.Discharge(budget.Pool, bp.frameCost())
}

// evictLocked drops the unpinned frame with the oldest recency stamp,
// flushing it first if dirty. Caller holds sh.mu exclusively.
func (bp *BufferPool) evictLocked(sh *poolShard) error {
	var f *Frame
	var oldest uint64
	for _, c := range sh.frames {
		if c.pins > 0 {
			continue
		}
		if u := c.stamp.Load(); f == nil || u < oldest {
			f, oldest = c, u
		}
	}
	if f == nil {
		return ErrPoolFull
	}
	if f.dirty {
		StampChecksum(f.Data)
		if err := bp.pager.WritePage(f.ID, f.Data); err != nil {
			return err
		}
		bp.flushes.Add(1)
	}
	delete(sh.frames, f.ID)
	bp.budget.Discharge(budget.Pool, bp.frameCost())
	bp.evictions.Add(1)
	return nil
}

// shedForBudget drops cold frames while the pool is over its budget share.
// Runs after the caller has released its shard lock: eviction here takes
// each shard lock in turn, so it must never run under one. Dirty frames are
// written back by evictLocked as usual; a write-back failure (degraded
// store) stops the sweep for that shard rather than spinning.
func (bp *BufferPool) shedForBudget() {
	b := bp.budget
	if b == nil || !b.NeedEvict(budget.Pool) {
		return
	}
	excess := b.Excess(budget.Pool)
	for _, sh := range bp.shards {
		if excess <= 0 {
			return
		}
		sh.mu.Lock()
		for excess > 0 {
			if err := bp.evictLocked(sh); err != nil {
				break
			}
			b.NoteEviction(budget.Pool)
			excess -= bp.frameCost()
		}
		sh.mu.Unlock()
	}
}

// Unpin releases one pin. If dirty is true the frame is marked for
// write-back before eviction.
func (bp *BufferPool) Unpin(f *Frame, dirty bool) error {
	sh := bp.shard(f.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f.pins <= 0 {
		return fmt.Errorf("%w: page %d", ErrNotPinned, f.ID)
	}
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins == 0 {
		f.stamp.Store(bp.clock.Add(1))
	}
	return nil
}

// FreePage removes the page from the pool and returns it to the pager. The
// page must not be pinned (beyond the caller's single pin, which is
// consumed).
func (bp *BufferPool) FreePage(f *Frame) error {
	sh := bp.shard(f.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f.pins != 1 {
		return fmt.Errorf("%w: page %d has %d pins", ErrDoubleFree, f.ID, f.pins)
	}
	f.pins = 0
	delete(sh.frames, f.ID)
	bp.budget.Discharge(budget.Pool, bp.frameCost())
	return bp.pager.Free(f.ID)
}

// FlushAll writes back every dirty frame. Pinned frames are flushed too
// (their contents at this instant). Shards are drained one at a time;
// callers needing a consistent flush point (WAL commit) already exclude
// writers.
func (bp *BufferPool) FlushAll() error {
	for _, sh := range bp.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.dirty {
				StampChecksum(f.Data)
				if err := bp.pager.WritePage(f.ID, f.Data); err != nil {
					sh.mu.Unlock()
					return err
				}
				f.dirty = false
				bp.flushes.Add(1)
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// Scrub verifies the checksum of every page the pager holds, reading the
// pager's copy directly (cache bypassed). Pages resident and dirty in the
// pool are skipped — their pager copy is legitimately stale until the next
// flush — as are freed and out-of-bounds ids. One error per corrupt page is
// returned, each wrapping ErrCorruptPage.
func (bp *BufferPool) Scrub() []error {
	type extenter interface{ MaxPageID() PageID }
	ext, ok := bp.pager.(extenter)
	if !ok {
		return nil
	}
	max := ext.MaxPageID()
	buf := make([]byte, bp.pager.PageSize())
	var errs []error
	for id := PageID(1); id <= max; id++ {
		sh := bp.shard(id)
		sh.mu.Lock()
		f, resident := sh.frames[id]
		skip := resident && f.dirty
		sh.mu.Unlock()
		if skip {
			continue
		}
		if err := bp.pager.ReadPage(id, buf); err != nil {
			if errors.Is(err, ErrFreedPage) || errors.Is(err, ErrPageBounds) {
				continue
			}
			errs = append(errs, err)
			continue
		}
		if err := VerifyChecksum(id, buf); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// PinnedCount returns the number of currently pinned frames (for tests and
// leak checks).
func (bp *BufferPool) PinnedCount() int {
	n := 0
	for _, sh := range bp.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.pins > 0 {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Close flushes and releases the pool and the underlying pager.
func (bp *BufferPool) Close() error {
	if err := bp.FlushAll(); err != nil {
		return err
	}
	return bp.pager.Close()
}
