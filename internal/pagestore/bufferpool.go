package pagestore

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// Buffer pool errors.
var (
	ErrPoolFull   = errors.New("pagestore: buffer pool full of pinned pages")
	ErrNotPinned  = errors.New("pagestore: unpin of page that is not pinned")
	ErrDoubleFree = errors.New("pagestore: freeing page with pins")
)

// Frame is a page resident in the buffer pool. The Data slice is valid while
// the frame is pinned; callers must not retain it past Unpin.
type Frame struct {
	ID    PageID
	Data  []byte
	pins  int
	dirty bool
	elem  *list.Element // position in the LRU list when unpinned
}

// PoolStats counts buffer pool traffic. Reads of XML data flow through the
// pool, so these numbers drive the experiments' I/O accounting.
type PoolStats struct {
	Hits      uint64 // Fetch satisfied from memory
	Misses    uint64 // Fetch required pager read
	Evictions uint64 // clean or flushed frames dropped for space
	Flushes   uint64 // dirty pages written back
}

// BufferPool caches pages with pin-count-aware LRU eviction.
type BufferPool struct {
	mu       sync.Mutex
	pager    Pager
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // unpinned frames, front = least recently used
	stats    PoolStats
}

// NewBufferPool wraps pager with a pool of at most capacity resident pages
// (minimum 4).
func NewBufferPool(pager Pager, capacity int) *BufferPool {
	if capacity < 4 {
		capacity = 4
	}
	return &BufferPool{
		pager:    pager,
		capacity: capacity,
		frames:   make(map[PageID]*Frame),
		lru:      list.New(),
	}
}

// Pager returns the underlying pager.
func (bp *BufferPool) Pager() Pager { return bp.pager }

// PageSize returns the page size of the underlying pager.
func (bp *BufferPool) PageSize() int { return bp.pager.PageSize() }

// UsablePageSize returns the page bytes available to layouts built on the
// pool: the page size minus the reserved checksum trailer.
func (bp *BufferPool) UsablePageSize() int {
	return bp.pager.PageSize() - PageTrailerSize
}

// Stats returns a snapshot of the pool counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the pool counters.
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = PoolStats{}
}

// Fetch pins the page in memory and returns its frame.
func (bp *BufferPool) Fetch(id PageID) (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		bp.pin(f)
		return f, nil
	}
	bp.stats.Misses++
	f, err := bp.newFrameLocked(id)
	if err != nil {
		return nil, err
	}
	if err := bp.pager.ReadPage(id, f.Data); err != nil {
		delete(bp.frames, id)
		return nil, err
	}
	if err := VerifyChecksum(id, f.Data); err != nil {
		delete(bp.frames, id)
		return nil, err
	}
	return f, nil
}

// NewPage allocates a fresh page and returns it pinned and dirty.
func (bp *BufferPool) NewPage() (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	id, err := bp.pager.Allocate()
	if err != nil {
		return nil, err
	}
	f, err := bp.newFrameLocked(id)
	if err != nil {
		bp.pager.Free(id)
		return nil, err
	}
	f.dirty = true
	return f, nil
}

// newFrameLocked makes room and installs a pinned frame for id.
func (bp *BufferPool) newFrameLocked(id PageID) (*Frame, error) {
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictLocked(); err != nil {
			return nil, err
		}
	}
	f := &Frame{ID: id, Data: make([]byte, bp.pager.PageSize()), pins: 1}
	bp.frames[id] = f
	return f, nil
}

func (bp *BufferPool) evictLocked() error {
	e := bp.lru.Front()
	if e == nil {
		return ErrPoolFull
	}
	f := e.Value.(*Frame)
	if f.dirty {
		StampChecksum(f.Data)
		if err := bp.pager.WritePage(f.ID, f.Data); err != nil {
			return err
		}
		bp.stats.Flushes++
	}
	bp.lru.Remove(e)
	delete(bp.frames, f.ID)
	bp.stats.Evictions++
	return nil
}

func (bp *BufferPool) pin(f *Frame) {
	if f.pins == 0 && f.elem != nil {
		bp.lru.Remove(f.elem)
		f.elem = nil
	}
	f.pins++
}

// Unpin releases one pin. If dirty is true the frame is marked for
// write-back before eviction.
func (bp *BufferPool) Unpin(f *Frame, dirty bool) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f.pins <= 0 {
		return fmt.Errorf("%w: page %d", ErrNotPinned, f.ID)
	}
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins == 0 {
		f.elem = bp.lru.PushBack(f)
	}
	return nil
}

// FreePage removes the page from the pool and returns it to the pager. The
// page must not be pinned (beyond the caller's single pin, which is
// consumed).
func (bp *BufferPool) FreePage(f *Frame) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f.pins != 1 {
		return fmt.Errorf("%w: page %d has %d pins", ErrDoubleFree, f.ID, f.pins)
	}
	f.pins = 0
	delete(bp.frames, f.ID)
	return bp.pager.Free(f.ID)
}

// FlushAll writes back every dirty frame. Pinned frames are flushed too
// (their contents at this instant).
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		if f.dirty {
			StampChecksum(f.Data)
			if err := bp.pager.WritePage(f.ID, f.Data); err != nil {
				return err
			}
			f.dirty = false
			bp.stats.Flushes++
		}
	}
	return nil
}

// Scrub verifies the checksum of every page the pager holds, reading the
// pager's copy directly (cache bypassed). Pages resident and dirty in the
// pool are skipped — their pager copy is legitimately stale until the next
// flush — as are freed and out-of-bounds ids. One error per corrupt page is
// returned, each wrapping ErrCorruptPage.
func (bp *BufferPool) Scrub() []error {
	type extenter interface{ MaxPageID() PageID }
	ext, ok := bp.pager.(extenter)
	if !ok {
		return nil
	}
	max := ext.MaxPageID()
	buf := make([]byte, bp.pager.PageSize())
	var errs []error
	for id := PageID(1); id <= max; id++ {
		bp.mu.Lock()
		f, resident := bp.frames[id]
		skip := resident && f.dirty
		bp.mu.Unlock()
		if skip {
			continue
		}
		if err := bp.pager.ReadPage(id, buf); err != nil {
			if errors.Is(err, ErrFreedPage) || errors.Is(err, ErrPageBounds) {
				continue
			}
			errs = append(errs, err)
			continue
		}
		if err := VerifyChecksum(id, buf); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// PinnedCount returns the number of currently pinned frames (for tests and
// leak checks).
func (bp *BufferPool) PinnedCount() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, f := range bp.frames {
		if f.pins > 0 {
			n++
		}
	}
	return n
}

// Close flushes and releases the pool and the underlying pager.
func (bp *BufferPool) Close() error {
	if err := bp.FlushAll(); err != nil {
		return err
	}
	return bp.pager.Close()
}
