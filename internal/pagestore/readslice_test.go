package pagestore

import (
	"bytes"
	"testing"
)

func TestReadSliceInline(t *testing.T) {
	rs := newRecordStore(t, 1024, 8)
	data := []byte("0123456789abcdef")
	loc, _, err := rs.InsertLast(data)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ off, length int }{
		{0, 16}, {0, 0}, {5, 5}, {15, 1}, {16, 0},
	}
	for _, c := range cases {
		got, err := rs.ReadSlice(loc, c.off, c.length)
		if err != nil {
			t.Fatalf("ReadSlice(%d,%d): %v", c.off, c.length, err)
		}
		if !bytes.Equal(got, data[c.off:c.off+c.length]) {
			t.Errorf("ReadSlice(%d,%d) = %q", c.off, c.length, got)
		}
	}
	// Out of bounds.
	if _, err := rs.ReadSlice(loc, 10, 10); err == nil {
		t.Error("over-read should fail")
	}
	if _, err := rs.ReadSlice(loc, -1, 2); err == nil {
		t.Error("negative offset should fail")
	}
	if _, err := rs.ReadSlice(loc, 0, -2); err == nil {
		t.Error("negative length should fail")
	}
	if _, err := rs.ReadSlice(Loc{Page: 99, Slot: 0}, 0, 1); err == nil {
		t.Error("bad loc should fail")
	}
}

func TestReadSliceOverflow(t *testing.T) {
	rs := newRecordStore(t, 512, 32)
	// Spans ~8 overflow pages.
	data := make([]byte, 4000)
	for i := range data {
		data[i] = byte(i * 13)
	}
	loc, _, err := rs.InsertLast(data)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ off, length int }{
		{0, 4000},    // whole record
		{0, 100},     // first chunk only
		{450, 200},   // crosses a chunk boundary
		{3900, 100},  // tail
		{1000, 2500}, // many chunks
		{3999, 1},
	}
	for _, c := range cases {
		got, err := rs.ReadSlice(loc, c.off, c.length)
		if err != nil {
			t.Fatalf("ReadSlice(%d,%d): %v", c.off, c.length, err)
		}
		if !bytes.Equal(got, data[c.off:c.off+c.length]) {
			t.Errorf("ReadSlice(%d,%d) mismatch", c.off, c.length)
		}
	}
	if _, err := rs.ReadSlice(loc, 3999, 2); err == nil {
		t.Error("overflow over-read should fail")
	}
}

func TestReadSliceAgainstFullRead(t *testing.T) {
	// Property: every slice agrees with the full Read.
	rs := newRecordStore(t, 512, 32)
	sizes := []int{1, 100, 490, 491, 5000}
	for _, n := range sizes {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i*7 + n)
		}
		loc, _, err := rs.InsertLast(data)
		if err != nil {
			t.Fatal(err)
		}
		full, err := rs.Read(loc)
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < n; off += 1 + n/7 {
			for _, l := range []int{0, 1, n / 3, n - off} {
				if l < 0 || off+l > n {
					continue
				}
				got, err := rs.ReadSlice(loc, off, l)
				if err != nil {
					t.Fatalf("size %d ReadSlice(%d,%d): %v", n, off, l, err)
				}
				if !bytes.Equal(got, full[off:off+l]) {
					t.Fatalf("size %d slice (%d,%d) mismatch", n, off, l)
				}
			}
		}
	}
}
