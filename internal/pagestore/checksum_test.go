package pagestore

import (
	"errors"
	"testing"
)

func TestChecksumStampAndVerify(t *testing.T) {
	page := make([]byte, 512)
	for i := range page {
		page[i] = byte(i * 7)
	}
	StampChecksum(page)
	if err := VerifyChecksum(3, page); err != nil {
		t.Fatalf("freshly stamped page: %v", err)
	}
	// Any body corruption breaks verification.
	page[10] ^= 0x40
	if err := VerifyChecksum(3, page); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("corrupted body: got %v, want ErrCorruptPage", err)
	}
	page[10] ^= 0x40
	// So does trailer corruption.
	page[len(page)-1] ^= 0x01
	if err := VerifyChecksum(3, page); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("corrupted trailer: got %v, want ErrCorruptPage", err)
	}
}

func TestChecksumZeroTrailerAccepted(t *testing.T) {
	// A zero trailer means "unchecksummed": fresh zero-extended pages and
	// pages written before checksums existed must still read.
	zero := make([]byte, 512)
	if err := VerifyChecksum(1, zero); err != nil {
		t.Fatalf("all-zero page: %v", err)
	}
	legacy := make([]byte, 512)
	legacy[0] = 0x42 // body content, trailer zero
	if err := VerifyChecksum(2, legacy); err != nil {
		t.Fatalf("unchecksummed page with content: %v", err)
	}
}

func TestPoolStampsOnWriteBackAndVerifiesOnFetch(t *testing.T) {
	pager := NewMemPager(512)
	pool := NewBufferPool(pager, 4)
	f, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID
	copy(f.Data, "checksummed content")
	if err := pool.Unpin(f, true); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// The written-back image carries a valid checksum.
	raw := make([]byte, 512)
	if err := pager.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	if err := VerifyChecksum(id, raw); err != nil {
		t.Fatalf("flushed page: %v", err)
	}
	// Corrupt the stored copy behind the pool's back; a fresh pool (cold
	// cache) must refuse the page.
	raw[5] ^= 0x10
	if err := pager.WritePage(id, raw); err != nil {
		t.Fatal(err)
	}
	cold := NewBufferPool(pager, 4)
	if _, err := cold.Fetch(id); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("fetch of corrupt page: got %v, want ErrCorruptPage", err)
	}
}

func TestScrubFindsCorruptPages(t *testing.T) {
	pager := NewMemPager(512)
	pool := NewBufferPool(pager, 4)
	var ids []PageID
	for i := 0; i < 3; i++ {
		f, err := pool.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Data[0] = byte(i + 1)
		ids = append(ids, f.ID)
		if err := pool.Unpin(f, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if errs := pool.Scrub(); len(errs) != 0 {
		t.Fatalf("clean store scrub: %v", errs)
	}
	// Corrupt the middle page's stored image only.
	raw := make([]byte, 512)
	if err := pager.ReadPage(ids[1], raw); err != nil {
		t.Fatal(err)
	}
	raw[100] ^= 0x80
	if err := pager.WritePage(ids[1], raw); err != nil {
		t.Fatal(err)
	}
	errs := pool.Scrub()
	if len(errs) != 1 {
		t.Fatalf("scrub found %d errors, want 1: %v", len(errs), errs)
	}
	if !errors.Is(errs[0], ErrCorruptPage) {
		t.Fatalf("scrub error: %v", errs[0])
	}
	// Freed pages are skipped, not reported.
	f, err := pool.Fetch(ids[2])
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.FreePage(f); err != nil {
		t.Fatal(err)
	}
	if errs := pool.Scrub(); len(errs) != 1 {
		t.Fatalf("scrub after free found %d errors, want 1", len(errs))
	}
}
