package recover

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/pagestore"
	"repro/internal/wal"
)

// RestoreOptions configures Restore.
type RestoreOptions struct {
	// PageSize must match the backup (cross-checked against the sidecar).
	PageSize int
	// ArchiveDir holds the WAL segments to roll forward with. Empty means
	// restore the base backup as-is.
	ArchiveDir string
	// TargetLSN is the commit to stop at (point-in-time). Zero restores to
	// the base backup's LSN when ArchiveDir is empty, or to the newest
	// archived segment otherwise.
	TargetLSN uint64
	// WrapFile wraps the destination file for fault injection in tests.
	WrapFile func(wal.File) wal.File
}

// RestoreInfo reports what a restore did.
type RestoreInfo struct {
	PagesCopied     uint32
	SegmentsApplied int
	FinalLSN        uint64
}

// restoreTmpSuffix names the staging file a restore builds before the
// atomic rename.
const restoreTmpSuffix = ".restore-tmp"

// Restore materializes the store state at opt.TargetLSN into destPath:
// the base backup's pages, then every archived segment in (base LSN,
// target] replayed in order. The whole image is staged in a temporary
// file, fsynced, and renamed onto destPath — the rename is the one atomic
// step, so a crashed restore leaves at most a stale *.restore-tmp and
// never a half-written destination.
func Restore(basePath, destPath string, opt RestoreOptions) (RestoreInfo, error) {
	var info RestoreInfo
	meta, err := ReadBackupMeta(basePath)
	if err != nil {
		return info, fmt.Errorf("recover: restore: %w", err)
	}
	if opt.PageSize != 0 && opt.PageSize != meta.PageSize {
		return info, fmt.Errorf("recover: restore: page size %d requested, backup has %d", opt.PageSize, meta.PageSize)
	}
	// A backup cut without the store's archive in hand records an LSN that
	// may undercount the commits already in its page image; replaying
	// segments over it could produce a hybrid of two commits. Such a base
	// can only be materialized as-is.
	if meta.NoRollForward && (opt.ArchiveDir != "" || opt.TargetLSN != 0) {
		return info, fmt.Errorf("recover: restore: backup %s was taken without the store's segment archive, so its LSN %d is not a roll-forward point; restore it as-is (no archive directory, no target LSN), or take backups with the archive configured", basePath, meta.LSN)
	}
	target := opt.TargetLSN
	if target != 0 && target < meta.LSN {
		return info, fmt.Errorf("recover: restore: target LSN %d predates the base backup (LSN %d); use an older backup", target, meta.LSN)
	}
	if target == 0 && opt.ArchiveDir != "" {
		if target, err = wal.MaxArchivedLSN(opt.ArchiveDir); err != nil {
			return info, err
		}
		if target < meta.LSN {
			target = meta.LSN
		}
	}
	if _, err := os.Stat(destPath); err == nil {
		return info, fmt.Errorf("recover: restore: %s already exists; refusing to overwrite a live store", destPath)
	}
	if _, err := os.Stat(destPath + ".wal"); err == nil {
		return info, fmt.Errorf("recover: restore: %s.wal exists; refusing to restore under a live WAL", destPath)
	}

	tmpPath := destPath + restoreTmpSuffix
	raw, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return info, err
	}
	var f wal.File = raw
	if opt.WrapFile != nil {
		f = opt.WrapFile(f)
	}
	fail := func(err error) (RestoreInfo, error) {
		f.Close()
		os.Remove(tmpPath)
		return info, err
	}

	// Lay down the base image, verifying every page on the way in.
	base, err := os.ReadFile(basePath)
	if err != nil {
		return fail(err)
	}
	ps := meta.PageSize
	if len(base) != int(meta.Pages)*ps {
		return fail(fmt.Errorf("recover: restore: base is %d bytes, sidecar says %d pages of %d", len(base), meta.Pages, ps))
	}
	for id := pagestore.PageID(1); int(id) < int(meta.Pages); id++ {
		pg := base[int(id)*ps : (int(id)+1)*ps]
		if err := pagestore.VerifyChecksum(id, pg); err != nil {
			return fail(fmt.Errorf("recover: restore: base backup is damaged: %w", err))
		}
	}
	if _, err := f.WriteAt(base, 0); err != nil {
		return fail(err)
	}
	info.PagesCopied = meta.Pages
	info.FinalLSN = meta.LSN

	// Roll forward: archived segments are a contiguous LSN sequence; a gap
	// means the archive cannot reach the target.
	for lsn := meta.LSN + 1; lsn <= target; lsn++ {
		segPath := filepath.Join(opt.ArchiveDir, wal.SegmentFileName(lsn))
		pages, segLSN, err := wal.ReadSegment(segPath, ps)
		if err != nil {
			if os.IsNotExist(err) {
				return fail(fmt.Errorf("recover: restore: archive gap: segment %d missing (have up to %d, target %d)", lsn, lsn-1, target))
			}
			return fail(err)
		}
		if segLSN != 0 && segLSN != lsn {
			return fail(fmt.Errorf("recover: restore: segment file %s carries LSN %d", wal.SegmentFileName(lsn), segLSN))
		}
		for _, p := range pages {
			if _, err := f.WriteAt(p.Data, int64(p.ID)*int64(ps)); err != nil {
				return fail(err)
			}
		}
		info.SegmentsApplied++
		info.FinalLSN = lsn
	}

	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmpPath)
		return info, err
	}
	// The atomic switch: only now does destPath come into existence.
	if err := os.Rename(tmpPath, destPath); err != nil {
		os.Remove(tmpPath)
		return info, err
	}
	return info, nil
}
