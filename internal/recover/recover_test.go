// End-to-end salvage and rebuild tests, driven through the public axml
// wrappers the CLI uses. The acceptance scenario: corrupt N random
// non-adjacent pages of a store, repair it, and demand that every range
// not hit survives, that the lost node-id intervals are reported exactly,
// and that the repaired store verifies clean.
package recover_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"testing"

	axml "repro"
	"repro/internal/pagestore"
)

const pgSize = 512

// nightlyScale widens a workload in the nightly CI profile (AXML_NIGHTLY).
func nightlyScale(normal, nightly int) int {
	if os.Getenv("AXML_NIGHTLY") != "" {
		return nightly
	}
	return normal
}

func testCfg() axml.Config {
	return axml.Config{Mode: axml.RangeOnly, PageSize: pgSize}
}

// fragXML returns the i-th test fragment. Each one becomes exactly one
// range (MaxRangeTokens 0), so one record on disk.
func fragXML(i int) string {
	return fmt.Sprintf(`<r id="%d"><v>item number %d of the salvage corpus</v></r>`, i, i)
}

// buildStore creates a store file of n independently-appended fragments
// and returns its path. Sequential appends give ascending, contiguous
// node ids — fragment order and id order coincide.
func buildStore(t *testing.T, dir string, n int) string {
	t.Helper()
	db := filepath.Join(dir, "store.db")
	s, err := axml.OpenFile(db, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		frag, err := axml.ParseFragment(fragXML(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append(frag); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return db
}

// rec is one range record located by a raw page scan: which page holds it
// and which node-id interval it covers.
type rec struct {
	page       int
	start, end uint64
}

// scanRecords raw-reads the store file and returns every range record with
// its page and id interval, sorted by start id (= fragment order), plus
// the sorted list of data pages. This reimplements just enough of the
// record layout (rangeID u32 | startID u64 | nodes u32 | ...) to keep the
// test independent of the salvage code it is checking.
func scanRecords(t *testing.T, db string) ([]rec, []int) {
	t.Helper()
	data, err := os.ReadFile(db)
	if err != nil {
		t.Fatal(err)
	}
	var recs []rec
	var dataPages []int
	for pg := 1; (pg+1)*pgSize <= len(data); pg++ {
		info := pagestore.InspectPage(data[pg*pgSize : (pg+1)*pgSize])
		if info.Kind != pagestore.KindData || info.Err != nil {
			continue
		}
		dataPages = append(dataPages, pg)
		for _, r := range info.Records {
			ref, err := pagestore.DecodeStored(r.Stored)
			if err != nil {
				t.Fatalf("page %d: undecodable record: %v", pg, err)
			}
			if !ref.Inline {
				t.Fatalf("page %d: unexpected overflow record in small-fragment store", pg)
			}
			if len(ref.Data) < 20 {
				t.Fatalf("page %d: short range record (%d bytes)", pg, len(ref.Data))
			}
			start := binary.LittleEndian.Uint64(ref.Data[4:12])
			nodes := binary.LittleEndian.Uint32(ref.Data[12:16])
			if nodes == 0 {
				continue
			}
			recs = append(recs, rec{page: pg, start: start, end: start + uint64(nodes) - 1})
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].start < recs[j].start })
	return recs, dataPages
}

// corruptPage flips a byte in the page body (not the checksum trailer).
func corruptPage(t *testing.T, db string, pg int) {
	t.Helper()
	f, err := os.OpenFile(db, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := int64(pg)*pgSize + 60
	buf := []byte{0}
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0x5a
	if _, err := f.WriteAt(buf, off); err != nil {
		t.Fatal(err)
	}
}

func xmlOf(t *testing.T, db string) string {
	t.Helper()
	s, err := axml.ReopenFile(db, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	xml, err := s.XMLString()
	if err != nil {
		t.Fatal(err)
	}
	return xml
}

// mergeIntervals collapses sorted id intervals, joining adjacent ones the
// way the salvage report does.
func mergeIntervals(ivs []axml.Interval) []axml.Interval {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	var out []axml.Interval
	for _, iv := range ivs {
		if n := len(out); n > 0 && iv.Start <= out[n-1].End+1 {
			if iv.End > out[n-1].End {
				out[n-1].End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// The headline acceptance test: corrupt several non-adjacent pages, repair,
// and check the survivors, the reported losses, and the final verify.
func TestRepairCorruptPages(t *testing.T) {
	dir := t.TempDir()
	const frags = 40
	db := buildStore(t, dir, frags)
	recs, dataPages := scanRecords(t, db)
	if len(recs) != frags {
		t.Fatalf("raw scan found %d records, want %d", len(recs), frags)
	}
	if len(dataPages) < 5 {
		t.Fatalf("only %d data pages; store too small for a multi-page corruption test", len(dataPages))
	}

	// Pick non-adjacent victims: the 2nd and 4th data page.
	victims := map[int]bool{dataPages[1]: true, dataPages[3]: true}
	var expectLost []axml.Interval
	var survivors []int // fragment indexes, in order
	for i, r := range recs {
		if victims[r.page] {
			expectLost = append(expectLost, axml.Interval{Start: r.start, End: r.end})
		} else {
			survivors = append(survivors, i)
		}
	}
	expectLost = mergeIntervals(expectLost)
	if len(expectLost) < 2 {
		t.Fatalf("victim pages did not yield two disjoint lost intervals: %+v", expectLost)
	}
	for pg := range victims {
		corruptPage(t, db, pg)
	}

	// Dry run first: reports the damage, changes nothing.
	dry, err := axml.RepairFile(db, testCfg(), false, "")
	if err != nil {
		t.Fatalf("dry run: %v", err)
	}
	if dry.Clean || dry.Applied {
		t.Fatalf("dry run on corrupt store: clean=%v applied=%v", dry.Clean, dry.Applied)
	}
	if _, err := axml.VerifyFileReport(db, testCfg()); err == nil {
		t.Fatal("store verifies clean after a dry run found damage")
	}

	rep, err := axml.RepairFile(db, testCfg(), true, "")
	if err != nil {
		t.Fatalf("repair -apply: %v", err)
	}
	if !rep.Applied {
		t.Fatal("repair did not apply a rebuild")
	}
	if len(rep.BadPages) != len(victims) {
		t.Errorf("reported %d bad pages, corrupted %d", len(rep.BadPages), len(victims))
	}
	if got, want := fmt.Sprint(rep.Missing), fmt.Sprint(expectLost); got != want {
		t.Errorf("lost intervals:\n  got  %s\n  want %s", got, want)
	}
	if rep.Salvaged != len(survivors) {
		t.Errorf("salvaged %d records, want %d", rep.Salvaged, len(survivors))
	}

	if _, err := axml.VerifyFileReport(db, testCfg()); err != nil {
		t.Errorf("verify after repair: %v", err)
	}

	// The repaired document must be exactly the surviving fragments in
	// order — compare against a store built from only those fragments.
	want, err := axml.Open(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer want.Close()
	for _, i := range survivors {
		frag, err := axml.ParseFragment(fragXML(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := want.Append(frag); err != nil {
			t.Fatal(err)
		}
	}
	wantXML, err := want.XMLString()
	if err != nil {
		t.Fatal(err)
	}
	if got := xmlOf(t, db); got != wantXML {
		t.Errorf("repaired document:\n  got  %q\n  want %q", got, wantXML)
	}
}

func readDB(t *testing.T, db string) []byte {
	t.Helper()
	b, err := os.ReadFile(db)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Repair must be idempotent: on a clean store it is a byte-level no-op,
// and a second repair after a real one changes nothing further.
func TestRepairIdempotence(t *testing.T) {
	dir := t.TempDir()
	db := buildStore(t, dir, 12)

	before := readDB(t, db)
	rep, err := axml.RepairFile(db, testCfg(), true, "")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean || rep.Applied {
		t.Fatalf("repair of clean store: clean=%v applied=%v", rep.Clean, rep.Applied)
	}
	if !bytes.Equal(before, readDB(t, db)) {
		t.Error("repairing a clean store changed the file")
	}

	_, dataPages := scanRecords(t, db)
	corruptPage(t, db, dataPages[len(dataPages)/2])
	if _, err := axml.RepairFile(db, testCfg(), true, ""); err != nil {
		t.Fatal(err)
	}
	afterFirst := readDB(t, db)

	rep2, err := axml.RepairFile(db, testCfg(), true, "")
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean || rep2.Applied {
		t.Fatalf("second repair: clean=%v applied=%v, want a no-op", rep2.Clean, rep2.Applied)
	}
	if !bytes.Equal(afterFirst, readDB(t, db)) {
		t.Error("second repair changed the already-repaired file")
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	in, err := os.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if _, err := io.Copy(out, in); err != nil {
		t.Fatal(err)
	}
	if err := out.Sync(); err != nil {
		t.Fatal(err)
	}
}
