// Package recover is the storage stack's self-healing layer: salvage and
// rebuild, online backup, and point-in-time restore.
//
// The paper's storage model makes recovery unusually tractable: node
// identifiers are never stored, every index is derivable, and each range
// record is self-describing (id, start id, counts, then the token bytes).
// The token sequence held in the chained data pages is therefore the sole
// source of truth — everything else can be thrown away and regenerated. The
// salvage scanner exploits exactly that:
//
//  1. every page is read raw (no buffer pool, no record store) and
//     classified by its CRC trailer plus layout invariants
//     (pagestore.InspectPage, diskbtree.InspectNode);
//  2. surviving data pages are reassembled into chain fragments along
//     reciprocal next/prev links; fragments anchored by the meta page or
//     severed by a corrupt page are trusted, unanchored fragments are
//     presumed stale (freed pages persist on disk with valid checksums —
//     resurrecting them would be silent data corruption, the opposite of
//     repair);
//  3. each record is resolved (overflow chains walked raw), validated by
//     the caller's Codec (the core store replays the token stream and
//     cross-checks the header counts), and checked for identifier
//     conflicts against everything already accepted;
//  4. what cannot be recovered is quarantined into a reported "lost" set
//     with the missing identifier intervals, instead of failing the store.
//
// Rebuild then writes the accepted records as a fresh generation —
// side-by-side with the damaged one — and switches over by copying the new
// meta image onto the store's meta page id, all inside one WAL batch: a
// crash at any I/O boundary leaves the store either fully repaired or
// untouched.
package recover

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/diskbtree"
	"repro/internal/pagestore"
)

// RecordMeta is what the owning store's Codec distills from one record
// payload: its identity and the key interval it covers.
type RecordMeta struct {
	// ID is the record's own identifier (the store's range id).
	ID uint64 `json:"id"`
	// Key is the first key the record covers (the range's start node id).
	// Meaningless when Span is zero.
	Key uint64 `json:"key"`
	// Span is the number of keys covered; zero marks a keyless record.
	Span uint64 `json:"span"`
}

// End returns the last key covered (inclusive). Only meaningful for
// Span > 0.
func (m RecordMeta) End() uint64 { return m.Key + m.Span - 1 }

// Codec teaches the recovery layer the owning store's record semantics
// without importing it (core implements this, avoiding an import cycle).
type Codec interface {
	// Inspect validates one record payload end to end (the core store
	// replays its token stream) and returns its identity. An error marks
	// the record lost.
	Inspect(payload []byte) (RecordMeta, error)
	// DecodeAlloc parses the allocator state from the meta page's user
	// blob; ok is false when the blob is absent or malformed.
	DecodeAlloc(user []byte) (nextKey, nextID uint64, ok bool)
	// EncodeAlloc serializes allocator state for the rebuilt meta page.
	EncodeAlloc(nextKey, nextID uint64) []byte
}

// PageFault describes one quarantined page.
type PageFault struct {
	Page   uint32 `json:"page"`
	Kind   string `json:"kind"` // "unreadable", "checksum", "structure", "meta", "unknown"
	Reason string `json:"reason"`
}

// Interval is an inclusive key interval.
type Interval struct {
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
}

// SalvagedRecord is one accepted record, in rebuilt document order.
type SalvagedRecord struct {
	Meta    RecordMeta
	Payload []byte
}

// Result is a salvage report. It doubles as the dry-run output of repair
// and the page-level half of verification reports.
type Result struct {
	PageSize   int    `json:"page_size"`
	MetaPage   uint32 `json:"meta_page"`
	Pages      int    `json:"pages_scanned"`
	DataPages  int    `json:"data_pages"`
	IndexPages int    `json:"index_pages"`

	BadPages []PageFault `json:"bad_pages,omitempty"`

	// Salvaged counts accepted records; Lost counts records inside trusted
	// fragments that could not be recovered (unresolvable overflow chain,
	// failed validation); Conflicts counts records rejected because their
	// identity clashed with already-accepted data (stale resurrections).
	Salvaged  int `json:"salvaged_records"`
	Lost      int `json:"lost_records"`
	Conflicts int `json:"conflicting_records"`

	// OrphanPages are structurally valid pages reachable from no trusted
	// chain fragment — typically pages freed before a reopen, whose stale
	// contents persist with valid checksums. They are never salvaged and
	// are zeroed by rebuild.
	OrphanPages []uint32 `json:"orphan_pages,omitempty"`

	// Missing lists key intervals in [1, NextKey) covered by no accepted
	// record. After corruption these are the lost ranges; note that keys
	// legitimately deleted before the damage also appear here, since the
	// allocator never reuses them.
	Missing []Interval `json:"missing_ids,omitempty"`

	NextKey uint64 `json:"next_key"`
	NextID  uint64 `json:"next_record_id"`

	// Clean reports that the store needs no repair: meta page good, one
	// complete head-to-tail chain, every record valid, no conflicts, no
	// bad pages.
	Clean bool     `json:"clean"`
	Notes []string `json:"notes,omitempty"`

	records    []SalvagedRecord
	allocPages []pagestore.PageID // every allocated page id the scan saw
}

// Records returns the accepted records in rebuilt document order.
func (r *Result) Records() []SalvagedRecord { return r.records }

// ErrNoExtent is returned when the pager cannot report its page extent.
var ErrNoExtent = errors.New("recover: pager does not expose MaxPageID; cannot scan raw pages")

type ovflPage struct {
	used int
	next pagestore.PageID
	data []byte
}

// Salvage scans every raw page behind p and reconstructs the record
// sequence without opening the store. It never writes.
func Salvage(p pagestore.Pager, metaPage pagestore.PageID, codec Codec) (*Result, error) {
	ext, ok := p.(interface{ MaxPageID() pagestore.PageID })
	if !ok {
		return nil, ErrNoExtent
	}
	if ext.MaxPageID() == pagestore.InvalidPage {
		// Any store that ever held data has an extent of at least its meta
		// page. A zero extent means the extent is unavailable (a wrapper in
		// the stack swallowed MaxPageID) or the file is empty; either way a
		// scan would see nothing and a subsequent rebuild would replace the
		// store with an empty generation while reporting zero losses.
		// Refuse rather than "salvage" a store we cannot see.
		return nil, fmt.Errorf("%w: pager reports a zero page extent", ErrNoExtent)
	}
	res := &Result{PageSize: p.PageSize(), MetaPage: uint32(metaPage)}

	var (
		max       = ext.MaxPageID()
		buf       = make([]byte, p.PageSize())
		dataPages = make(map[pagestore.PageID]pagestore.PageInfo)
		ovfl      = make(map[pagestore.PageID]ovflPage)
		bad       = make(map[pagestore.PageID]PageFault)
		allocated []pagestore.PageID
		metaOK    bool
		metaInfo  pagestore.PageInfo
	)
	quarantine := func(id pagestore.PageID, kind string, err error) {
		bad[id] = PageFault{Page: uint32(id), Kind: kind, Reason: err.Error()}
	}
	for id := pagestore.PageID(1); id <= max; id++ {
		if err := p.ReadPage(id, buf); err != nil {
			if errors.Is(err, pagestore.ErrFreedPage) || errors.Is(err, pagestore.ErrPageBounds) {
				continue // not allocated: nothing to salvage
			}
			allocated = append(allocated, id)
			quarantine(id, "unreadable", err)
			continue
		}
		allocated = append(allocated, id)
		if err := pagestore.VerifyChecksum(id, buf); err != nil {
			quarantine(id, "checksum", err)
			continue
		}
		info := pagestore.InspectPage(buf)
		if id == metaPage {
			if info.Kind == pagestore.KindMeta && info.Err == nil {
				metaOK = true
				metaInfo = info
			} else {
				err := info.Err
				if err == nil {
					err = fmt.Errorf("recover: meta page has kind %v", info.Kind)
				}
				quarantine(id, "meta", err)
			}
			continue
		}
		switch info.Kind {
		case pagestore.KindFree:
			// Unused; ignore.
		case pagestore.KindData:
			if info.Err != nil {
				quarantine(id, "structure", info.Err)
				break
			}
			dataPages[id] = info
		case pagestore.KindOverflow:
			if info.Err != nil {
				quarantine(id, "structure", info.Err)
				break
			}
			chunk := append([]byte(nil), pagestore.ReadOverflowData(buf, info.OvflUsed)...)
			ovfl[id] = ovflPage{used: info.OvflUsed, next: info.OvflNext, data: chunk}
		case pagestore.KindMeta:
			// A meta page that is not the store's meta page: a stale
			// generation. Derivable noise; rebuild zeroes it.
			res.OrphanPages = append(res.OrphanPages, uint32(id))
			res.Notes = append(res.Notes, fmt.Sprintf("page %d: stale meta page (old generation)", id))
		default:
			if isNode, nerr := diskbtree.InspectNode(buf); isNode && nerr == nil {
				// Index pages are derivable state: recognized, never
				// salvaged, rebuilt from the token sequence on reopen.
				res.IndexPages++
				break
			}
			err := info.Err
			if err == nil {
				err = fmt.Errorf("recover: unclassifiable page")
			}
			quarantine(id, "unknown", err)
		}
	}
	res.Pages = len(allocated)
	res.DataPages = len(dataPages)
	res.allocPages = allocated

	fragments, cyclePages := assembleFragments(dataPages)
	for _, id := range cyclePages {
		res.OrphanPages = append(res.OrphanPages, uint32(id))
		res.Notes = append(res.Notes, fmt.Sprintf("page %d: part of a page-chain cycle", id))
	}

	// Anchoring: decide which fragments to trust. Freed pages persist on
	// disk with valid checksums, so an unanchored fragment is presumed
	// stale — resurrecting deleted data would be silent corruption.
	headFrag := -1
	var accepted []int
	for i, frag := range fragments {
		first, last := frag[0], frag[len(frag)-1]
		fi, li := dataPages[first], dataPages[last]
		anchored := false
		if metaOK {
			for _, pg := range frag {
				if pg == metaInfo.MetaHead {
					anchored = true
					headFrag = i
				}
				if pg == metaInfo.MetaTail {
					anchored = true
				}
			}
		} else if fi.Prev == pagestore.InvalidPage {
			// The meta page itself is lost: trust fragments that claim to
			// start the chain.
			anchored = true
			res.Notes = append(res.Notes, fmt.Sprintf("page %d: accepted as chain head (meta page lost)", first))
		}
		if _, severed := bad[fi.Prev]; severed {
			anchored = true // predecessor destroyed; this fragment was cut off
		}
		if _, severed := bad[li.Next]; severed {
			anchored = true
		}
		if anchored {
			accepted = append(accepted, i)
		} else {
			for _, pg := range frag {
				res.OrphanPages = append(res.OrphanPages, uint32(pg))
			}
			n := 0
			for _, pg := range frag {
				n += len(dataPages[pg].Records)
			}
			if n > 0 {
				res.Notes = append(res.Notes, fmt.Sprintf("pages %v: unanchored fragment with %d record(s) presumed stale, not salvaged", frag, n))
			}
		}
	}

	// chainComplete: the head fragment runs head → tail and terminates.
	chainComplete := false
	if metaOK && headFrag >= 0 {
		frag := fragments[headFrag]
		first, last := frag[0], frag[len(frag)-1]
		chainComplete = first == metaInfo.MetaHead &&
			last == metaInfo.MetaTail &&
			dataPages[last].Next == pagestore.InvalidPage &&
			dataPages[first].Prev == pagestore.InvalidPage
	}

	// Extract and validate records fragment by fragment.
	consumed := make(map[pagestore.PageID]bool)
	type fragRecords struct {
		frag int
		recs []SalvagedRecord
	}
	extracted := make([]fragRecords, 0, len(accepted))
	for _, i := range accepted {
		fr := fragRecords{frag: i}
		for _, pg := range fragments[i] {
			for _, raw := range dataPages[pg].Records {
				payload, err := resolveStored(raw.Stored, ovfl, bad, consumed, res.PageSize)
				if err != nil {
					res.Lost++
					res.Notes = append(res.Notes, fmt.Sprintf("page %d slot %d: %v", pg, raw.Slot, err))
					continue
				}
				meta, err := codec.Inspect(payload)
				if err != nil {
					res.Lost++
					res.Notes = append(res.Notes, fmt.Sprintf("page %d slot %d: invalid record: %v", pg, raw.Slot, err))
					continue
				}
				fr.recs = append(fr.recs, SalvagedRecord{Meta: meta, Payload: payload})
			}
		}
		extracted = append(extracted, fr)
	}

	// Overflow pages no accepted record consumed are stale.
	for id := range ovfl {
		if !consumed[id] {
			res.OrphanPages = append(res.OrphanPages, uint32(id))
		}
	}

	// Order fragments: head first, then ascending by first covered key.
	// With sequentially loaded content key order is document order; after
	// arbitrary middle-of-document inserts the relative order of severed
	// fragments is a best-effort heuristic (the linking pages that knew it
	// are the ones destroyed) — flagged below so the report says so.
	sort.SliceStable(extracted, func(a, b int) bool {
		fa, fb := extracted[a], extracted[b]
		if fa.frag == headFrag || fb.frag == headFrag {
			return fa.frag == headFrag && fb.frag != headFrag
		}
		ka, kb := minKey(fa.recs), minKey(fb.recs)
		if ka != kb {
			return ka < kb
		}
		return fragments[fa.frag][0] < fragments[fb.frag][0]
	})
	if n := len(extracted); n > 2 || (n == 2 && headFrag < 0) {
		res.Notes = append(res.Notes, fmt.Sprintf("%d disconnected fragments: relative order reconstructed from key intervals (exact for sequentially loaded content)", n))
	}

	// Conflict pass: accept records in order, rejecting key-interval
	// overlaps and duplicate record ids — the accepted-first (head
	// fragment) copy wins.
	var cov coverage
	seenIDs := make(map[uint64]bool)
	for _, fr := range extracted {
		for _, rec := range fr.recs {
			if seenIDs[rec.Meta.ID] {
				res.Conflicts++
				res.Notes = append(res.Notes, fmt.Sprintf("record id %d: duplicate of an already-salvaged record, rejected", rec.Meta.ID))
				continue
			}
			if rec.Meta.Span > 0 && cov.overlaps(rec.Meta.Key, rec.Meta.End()) {
				res.Conflicts++
				res.Notes = append(res.Notes, fmt.Sprintf("record id %d: keys [%d..%d] overlap already-salvaged data, rejected", rec.Meta.ID, rec.Meta.Key, rec.Meta.End()))
				continue
			}
			if rec.Meta.Span > 0 {
				cov.add(rec.Meta.Key, rec.Meta.End())
			}
			seenIDs[rec.Meta.ID] = true
			res.records = append(res.records, rec)
		}
	}
	res.Salvaged = len(res.records)

	// Allocator state: trust the meta blob when present, never below what
	// the salvaged records imply.
	res.NextKey, res.NextID = 1, 1
	if metaOK {
		if nk, ni, ok := codec.DecodeAlloc(metaInfo.MetaUser); ok {
			res.NextKey, res.NextID = nk, ni
		}
	}
	for _, rec := range res.records {
		if rec.Meta.Span > 0 && rec.Meta.End()+1 > res.NextKey {
			res.NextKey = rec.Meta.End() + 1
		}
		if rec.Meta.ID+1 > res.NextID {
			res.NextID = rec.Meta.ID + 1
		}
	}

	res.Missing = cov.gaps(1, res.NextKey-1)
	for id, f := range bad {
		_ = id
		res.BadPages = append(res.BadPages, f)
	}
	sort.Slice(res.BadPages, func(a, b int) bool { return res.BadPages[a].Page < res.BadPages[b].Page })
	sort.Slice(res.OrphanPages, func(a, b int) bool { return res.OrphanPages[a] < res.OrphanPages[b] })

	res.Clean = metaOK && chainComplete && len(bad) == 0 && res.Lost == 0 && res.Conflicts == 0
	return res, nil
}

// assembleFragments partitions the valid data pages into maximal paths
// along reciprocal next/prev links. Pages trapped in a pointer cycle with
// no entry are returned separately.
func assembleFragments(dataPages map[pagestore.PageID]pagestore.PageInfo) ([][]pagestore.PageID, []pagestore.PageID) {
	recip := func(a, b pagestore.PageID) bool {
		ia, ok := dataPages[a]
		if !ok {
			return false
		}
		ib, ok := dataPages[b]
		return ok && ia.Next == b && ib.Prev == a
	}
	var starts []pagestore.PageID
	for id, info := range dataPages {
		if info.Prev == pagestore.InvalidPage || !recip(info.Prev, id) {
			starts = append(starts, id)
		}
	}
	sort.Slice(starts, func(a, b int) bool { return starts[a] < starts[b] })
	seen := make(map[pagestore.PageID]bool, len(dataPages))
	var fragments [][]pagestore.PageID
	for _, s := range starts {
		var frag []pagestore.PageID
		for cur := s; !seen[cur]; {
			seen[cur] = true
			frag = append(frag, cur)
			n := dataPages[cur].Next
			if n == pagestore.InvalidPage || !recip(cur, n) {
				break
			}
			cur = n
		}
		fragments = append(fragments, frag)
	}
	var cycles []pagestore.PageID
	for id := range dataPages {
		if !seen[id] {
			cycles = append(cycles, id)
		}
	}
	sort.Slice(cycles, func(a, b int) bool { return cycles[a] < cycles[b] })
	return fragments, cycles
}

// resolveStored expands a stored payload, walking overflow chains against
// the raw page map. Chains touching bad or missing pages fail; consumed
// pages are marked so leftovers can be reported as orphans.
func resolveStored(stored []byte, ovfl map[pagestore.PageID]ovflPage, bad map[pagestore.PageID]PageFault, consumed map[pagestore.PageID]bool, pageSize int) ([]byte, error) {
	ref, err := pagestore.DecodeStored(stored)
	if err != nil {
		return nil, err
	}
	if ref.Inline {
		return append([]byte(nil), ref.Data...), nil
	}
	chunk := pagestore.OverflowChunk(pageSize)
	maxPages := ref.Total/chunk + 2
	out := make([]byte, 0, ref.Total)
	walked := make([]pagestore.PageID, 0, maxPages)
	next := ref.First
	for next != pagestore.InvalidPage {
		if len(walked) >= maxPages {
			return nil, fmt.Errorf("overflow chain cycle at page %d", next)
		}
		if f, isBad := bad[next]; isBad {
			return nil, fmt.Errorf("overflow page %d is quarantined (%s)", next, f.Kind)
		}
		op, ok := ovfl[next]
		if !ok {
			return nil, fmt.Errorf("overflow page %d missing or not an overflow page", next)
		}
		walked = append(walked, next)
		out = append(out, op.data...)
		next = op.next
	}
	if len(out) != ref.Total {
		return nil, fmt.Errorf("overflow chain holds %d bytes, stub says %d", len(out), ref.Total)
	}
	for _, id := range walked {
		consumed[id] = true
	}
	return out, nil
}

// minKey returns the smallest covered key among recs (MaxUint64 if none).
func minKey(recs []SalvagedRecord) uint64 {
	min := ^uint64(0)
	for _, r := range recs {
		if r.Meta.Span > 0 && r.Meta.Key < min {
			min = r.Meta.Key
		}
	}
	return min
}

// coverage is a set of disjoint inclusive intervals, kept sorted.
type coverage struct {
	ivs []Interval
}

func (c *coverage) overlaps(start, end uint64) bool {
	i := sort.Search(len(c.ivs), func(i int) bool { return c.ivs[i].End >= start })
	return i < len(c.ivs) && c.ivs[i].Start <= end
}

func (c *coverage) add(start, end uint64) {
	i := sort.Search(len(c.ivs), func(i int) bool { return c.ivs[i].Start > start })
	c.ivs = append(c.ivs, Interval{})
	copy(c.ivs[i+1:], c.ivs[i:])
	c.ivs[i] = Interval{Start: start, End: end}
}

// gaps returns the sub-intervals of [lo, hi] covered by no interval.
func (c *coverage) gaps(lo, hi uint64) []Interval {
	if hi < lo {
		return nil
	}
	var out []Interval
	cur := lo
	for _, iv := range c.ivs {
		if iv.End < cur {
			continue
		}
		if iv.Start > hi {
			break
		}
		if iv.Start > cur {
			out = append(out, Interval{Start: cur, End: iv.Start - 1})
		}
		if iv.End+1 > cur {
			cur = iv.End + 1
		}
		if cur > hi {
			return out
		}
	}
	if cur <= hi {
		out = append(out, Interval{Start: cur, End: hi})
	}
	return out
}
